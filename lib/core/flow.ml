module Config = Sqed_proc.Config
module Synth = Sqed_synth
module Qed = Sqed_qed

type synthesized_case = {
  case : string;
  programs : Synth.Program.t list;
  chosen : Synth.Program.t option;
  elapsed : float;
}

let builtin_table cfg =
  let p = Qed.Partition.make Qed.Partition.Edsep cfg in
  Qed.Equiv_table.builtin ~xlen:cfg.Config.xlen ~n_temp:p.Qed.Partition.n_temp

let key_of_case case =
  match
    List.find_opt
      (fun op -> Sqed_isa.Insn.rop_name op = case)
      Sqed_isa.Insn.all_rops
  with
  | Some op -> Qed.Equiv_table.Kr op
  | None -> (
      match
        List.find_opt
          (fun op -> Sqed_isa.Insn.iop_name op = case)
          Sqed_isa.Insn.all_iops
      with
      | Some op -> Qed.Equiv_table.Ki op
      | None -> invalid_arg ("Flow.key_of_case: " ^ case))

(* A usable table entry writes its E destination once, fits the partition's
   temporaries, and is not a same-name single line. *)
let usable partition spec_name p =
  Synth.Program.temps_needed p <= partition.Qed.Partition.n_temp
  && (Synth.Program.n_components p > 1
     ||
     match Synth.Program.components p with
     | [ c ] -> c.Synth.Component.name <> spec_name
     | _ -> true)

let choose partition spec_name programs =
  let candidates = List.filter (usable partition spec_name) programs in
  let better a b =
    compare
      (Synth.Program.n_insns a, Synth.Program.n_components a)
      (Synth.Program.n_insns b, Synth.Program.n_components b)
  in
  match List.sort better candidates with p :: _ -> Some p | [] -> None

let synthesize_table ?options ?cases ?jobs ?pool cfg =
  let options =
    match options with
    | Some o ->
        { o with Synth.Engine.config = { o.Synth.Engine.config with Synth.Cegis.xlen = cfg.Config.xlen } }
    | None ->
        {
          Synth.Engine.default_options with
          Synth.Engine.config =
            { Synth.Cegis.default_config with Synth.Cegis.xlen = cfg.Config.xlen };
        }
  in
  let cases =
    match cases with
    | Some cs -> cs
    | None -> List.map (fun s -> s.Synth.Component.g_name) Synth.Library_.specs
  in
  let partition = Qed.Partition.make Qed.Partition.Edsep cfg in
  (* One synthesis task per original instruction; each worker domain owns
     its solvers and term universe, results return in case order.  A
     case whose task failed (crash survived retries, budget exhausted)
     degrades to its built-in template instead of killing the campaign:
     it contributes no programs, so [chosen = None] below selects the
     fallback entry. *)
  let results =
    List.map
      (fun (v : Synth.Campaign.case_verdict) ->
        let case = v.Synth.Campaign.vcase in
        match v.Synth.Campaign.verdict with
        | Sqed_resil.Verdict.Ok result ->
            let programs = result.Synth.Engine.programs in
            {
              case;
              programs;
              chosen = choose partition case programs;
              elapsed = result.Synth.Engine.elapsed;
            }
        | Sqed_resil.Verdict.Unknown _ | Sqed_resil.Verdict.Failed _ ->
            { case; programs = []; chosen = None; elapsed = 0.0 })
      (Synth.Campaign.synthesize_verdicts ?jobs ?pool ~options
         ~library:Synth.Library_.default cases)
  in
  let entries =
    List.filter_map
      (fun r ->
        match r.chosen with
        | Some p -> Some (key_of_case r.case, p)
        | None -> None)
      results
  in
  let table =
    Qed.Equiv_table.of_synthesis entries ~fallback:(builtin_table cfg)
  in
  (* Independent cross-check against the golden interpreter before the
     table reaches the verifier; a conversion bug here would silently
     weaken the method. *)
  (match Qed.Equiv_table.validate ~cfg ~partition table with
  | Ok () -> ()
  | Error e -> failwith ("Flow.synthesize_table: invalid table: " ^ e));
  (table, results)
