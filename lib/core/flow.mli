(** The end-to-end SEPE-SQED flow of Fig. 1: synthesize semantically
    equivalent programs with HPF-CEGIS (upper half), build the EDSEP-V
    equivalence table from them, then verify the DUV (lower half). *)

module Config = Sqed_proc.Config

type synthesized_case = {
  case : string;  (** the original instruction's mnemonic *)
  programs : Sqed_synth.Program.t list;
  chosen : Sqed_synth.Program.t option;
      (** program installed in the table (shortest that fits the
          partition's temporaries, avoiding same-name single lines) *)
  elapsed : float;
}

val synthesize_table :
  ?options:Sqed_synth.Engine.options ->
  ?cases:string list ->
  ?jobs:int ->
  ?pool:Sqed_par.Pool.t ->
  Config.t ->
  Sqed_qed.Equiv_table.t * synthesized_case list
(** Run HPF-CEGIS per case at the configuration's XLEN and fold the
    results into an equivalence table (classes without a usable
    synthesized program keep their built-in template).  [?jobs] fans the
    per-instruction runs out over that many worker domains (default: the
    [SEPE_JOBS] environment knob, see {!Sqed_par.Pool.default_jobs});
    [?pool] reuses a caller-owned pool instead (useful to read
    {!Sqed_par.Pool.stats} afterwards).

    The fan-out is supervised ({!Sqed_synth.Campaign.synthesize_verdicts}):
    a case whose synthesis task crashes or exhausts its budget degrades
    to its built-in template ([chosen = None], no programs) rather than
    aborting the whole table. *)

val builtin_table : Config.t -> Sqed_qed.Equiv_table.t
