module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Qed_top = Sqed_qed.Qed_top
module Engine = Sqed_bmc.Engine

type method_ = Sqed | Sepe_sqed

let method_name = function Sqed -> "SQED" | Sepe_sqed -> "SEPE-SQED"

type result = {
  method_ : method_;
  bug : Bug.t option;
  bound : int;
  outcome : Engine.outcome;
  stats : Engine.stats;
}

let min_cex_depth ~method_ ?bug cfg =
  match bug with
  | None -> None
  | Some bug -> (
      match Bug.table1_row bug with
      | None -> None
      | Some row ->
          let scheme =
            match method_ with
            | Sqed -> Sqed_qed.Partition.Eddi
            | Sepe_sqed -> Sqed_qed.Partition.Edsep
          in
          let p = Sqed_qed.Partition.make scheme cfg in
          let table =
            match method_ with
            | Sqed -> Sqed_qed.Equiv_table.duplicate
            | Sepe_sqed ->
                Sqed_qed.Equiv_table.builtin ~xlen:cfg.Config.xlen
                  ~n_temp:p.Sqed_qed.Partition.n_temp
          in
          let key =
            match
              List.find_opt
                (fun op -> Sqed_isa.Insn.rop_name op = row)
                Sqed_isa.Insn.all_rops
            with
            | Some op -> Some (Sqed_qed.Equiv_table.Kr op)
            | None -> (
                match
                  List.find_opt
                    (fun op -> Sqed_isa.Insn.iop_name op = row)
                    Sqed_isa.Insn.all_iops
                with
                | Some op -> Some (Sqed_qed.Equiv_table.Ki op)
                | None ->
                    if row = "SW" then Some Sqed_qed.Equiv_table.Ksw else None)
          in
          Option.map
            (fun key -> Sqed_qed.Equiv_table.seq_len table key + 6)
            key)

let run ?bug ?table ?check_mem ?focus ?core ?max_conflicts ?time_budget
    ?start_bound ?progress ~method_ ~bound cfg =
  let model =
    match method_ with
    | Sqed -> Qed_top.eddi ?bug ?check_mem ?focus ?core cfg
    | Sepe_sqed -> Qed_top.edsep ?bug ?check_mem ?focus ?core ?table cfg
  in
  let outcome, stats =
    Engine.check ?max_conflicts ?time_budget ?start_bound ?progress ~bound
      model
  in
  { method_; bug; bound; outcome; stats }

let detected r =
  match r.outcome with
  | Engine.Counterexample _ -> true
  | Engine.No_counterexample | Engine.Gave_up _ -> false

let trace r =
  match r.outcome with
  | Engine.Counterexample t -> Some t
  | Engine.No_counterexample | Engine.Gave_up _ -> None

let outcome_to_string r =
  match r.outcome with
  | Engine.Counterexample t ->
      Printf.sprintf "bug found at depth %d (%.2fs)" t.Sqed_bmc.Trace.length
        r.stats.Engine.solve_time
  | Engine.No_counterexample ->
      Printf.sprintf "no counterexample up to bound %d (%.2fs)" r.bound
        r.stats.Engine.solve_time
  | Engine.Gave_up k ->
      let why =
        match r.stats.Engine.gave_up with
        | Some reason ->
            Printf.sprintf ", %s" (Sqed_resil.Budget.string_of_reason reason)
        | None -> ""
      in
      Printf.sprintf "gave up at depth %d (%.2fs%s)" k
        r.stats.Engine.solve_time why
