(** Top-level verification driver: build the chosen QED model around the
    (optionally mutated) core and bounded-model-check the universal
    property [QED-ready => QED-consistent]. *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug

type method_ = Sqed | Sepe_sqed

val method_name : method_ -> string

type result = {
  method_ : method_;
  bug : Bug.t option;
  bound : int;
  outcome : Sqed_bmc.Engine.outcome;
  stats : Sqed_bmc.Engine.stats;
}

val min_cex_depth : method_:method_ -> ?bug:Bug.t -> Config.t -> int option
(** Lower bound on the depth of any counterexample exposing the given
    single-instruction bug: the original instruction, its full
    duplicate/equivalent sequence, the pipeline drain and the QED-ready
    evaluation.  [None] when no class-based bound applies (multi-instruction
    bugs, or no bug). *)

val run :
  ?bug:Bug.t ->
  ?table:Sqed_qed.Equiv_table.t ->
  ?check_mem:bool ->
  ?focus:Sqed_qed.Equiv_table.key ->
  ?core:Sqed_qed.Qed_top.core ->
  ?max_conflicts:int ->
  ?time_budget:float ->
  ?start_bound:int ->
  ?progress:(int -> float -> unit) ->
  method_:method_ ->
  bound:int ->
  Config.t ->
  result

val detected : result -> bool
(** True when a counterexample (bug trace) was found. *)

val trace : result -> Sqed_bmc.Trace.t option

val outcome_to_string : result -> string
