module Sat = Sqed_sat.Sat
module Metrics = Sqed_obs.Metrics

(* [smt.aig.nodes] counts allocated nodes (inputs + ANDs); [struct_hits]
   counts AND constructions answered by the hash table; [rewrites] counts
   one-level rule applications that avoided a node; [pg_skipped_clauses]
   tracks the clauses currently avoided by polarity-aware conversion (it
   decreases when a missing polarity half is emitted later).  [smt.gates]
   is shared with the direct Tseitin path: one tick per AND node, the AIG
   analogue of one emitted gate.

   Construction is the blaster's hottest loop (tens of millions of [and_]
   calls in a fig3 run), so the graph buffers the counts in plain fields
   and flushes to the registry at conversion boundaries instead of paying
   a domain-local-storage access per node. *)
let m_nodes = Metrics.counter "smt.aig.nodes"
let m_struct_hits = Metrics.counter "smt.aig.struct_hits"
let m_rewrites = Metrics.counter "smt.aig.rewrites"
let m_pg_skipped = Metrics.counter "smt.aig.pg_skipped_clauses"
let m_gates = Metrics.counter "smt.gates"

type edge = int

let etrue = 0
let efalse = 1
let enot e = e lxor 1
let node_of e = e lsr 1
let is_compl e = e land 1 = 1
let is_const e = e lsr 1 = 0
let is_true e = e = etrue
let is_false e = e = efalse

type t = {
  sat : Sat.t;
  (* Per-node storage.  [lhs.(n) = -1] marks a primary input; node 0 is
     the constant and uses neither side.  AND children are edges with
     [lhs <= rhs] (normalized for hashing). *)
  mutable lhs : int array;
  mutable rhs : int array;
  mutable lit : Sat.lit array; (* materialized SAT literal, or -1 *)
  mutable pol : Bytes.t; (* bit 0: positive half emitted; bit 1: negative *)
  mutable n : int;
  (* Open-addressing structural hash table over AND node ids; -1 = empty. *)
  mutable table : int array;
  mutable mask : int;
  mutable entries : int;
  (* Work stack for CNF conversion, packed as [4 * node + polarity_mask]. *)
  mutable stack : int array;
  mutable stack_sz : int;
  (* Buffered metric deltas, flushed at conversion boundaries. *)
  mutable c_nodes : int;
  mutable c_ands : int;
  mutable c_struct : int;
  mutable c_rewrites : int;
  mutable c_pg : int;
}

let create sat =
  let v = Sat.new_var sat in
  let tl = Sat.pos v in
  Sat.add_clause sat [ tl ];
  Sat.freeze sat v;
  let cap = 1024 in
  let t =
    {
      sat;
      lhs = Array.make cap (-1);
      rhs = Array.make cap (-1);
      lit = Array.make cap (-1);
      pol = Bytes.make cap '\000';
      n = 1;
      table = Array.make 2048 (-1);
      mask = 2047;
      entries = 0;
      stack = Array.make 256 0;
      stack_sz = 0;
      c_nodes = 0;
      c_ands = 0;
      c_struct = 0;
      c_rewrites = 0;
      c_pg = 0;
    }
  in
  t.lit.(0) <- tl;
  t

let flush_metrics t =
  if t.c_nodes <> 0 then begin
    Metrics.add m_nodes t.c_nodes;
    t.c_nodes <- 0
  end;
  if t.c_ands <> 0 then begin
    Metrics.add m_gates t.c_ands;
    t.c_ands <- 0
  end;
  if t.c_struct <> 0 then begin
    Metrics.add m_struct_hits t.c_struct;
    t.c_struct <- 0
  end;
  if t.c_rewrites <> 0 then begin
    Metrics.add m_rewrites t.c_rewrites;
    t.c_rewrites <- 0
  end;
  if t.c_pg <> 0 then begin
    Metrics.add m_pg_skipped t.c_pg;
    t.c_pg <- 0
  end

let true_lit t = t.lit.(0)

let num_nodes t =
  (* inputs + ANDs + the constant node *)
  t.n

let grow t =
  let cap = Array.length t.lhs in
  let cap' = 2 * cap in
  let ext a =
    let d = Array.make cap' (-1) in
    Array.blit a 0 d 0 cap;
    d
  in
  t.lhs <- ext t.lhs;
  t.rhs <- ext t.rhs;
  t.lit <- ext t.lit;
  let p = Bytes.make cap' '\000' in
  Bytes.blit t.pol 0 p 0 cap;
  t.pol <- p

let hash_pair l r =
  let h = (l * 0x9e3779b1) lxor (r * 0x85ebca6b) in
  (h lxor (h lsr 16)) land max_int

let rec insert_raw t id =
  let i = ref (hash_pair t.lhs.(id) t.rhs.(id) land t.mask) in
  while t.table.(!i) >= 0 do
    i := (!i + 1) land t.mask
  done;
  t.table.(!i) <- id

and rehash t =
  let old = t.table in
  let size = 2 * (t.mask + 1) in
  t.table <- Array.make size (-1);
  t.mask <- size - 1;
  Array.iter (fun id -> if id >= 0 then insert_raw t id) old

let fresh_input t =
  if t.n = Array.length t.lhs then grow t;
  let id = t.n in
  t.n <- id + 1;
  let v = Sat.new_var t.sat in
  t.lit.(id) <- Sat.pos v;
  Sat.freeze t.sat v;
  t.c_nodes <- t.c_nodes + 1;
  2 * id

(* One-level rewrite rules over the operands' children (Brummayer–Biere
   style).  All return a folded edge, or the sentinel [-1] for "no rule
   applies" — sentinel-coded so the hot path allocates nothing. *)
let no_rule = -1

let rec and_ t a b =
  if a = efalse || b = efalse then efalse
  else if a = etrue then b
  else if b = etrue then a
  else if a = b then a
  else if a = enot b then efalse
  else begin
    let r = rewrite t a b in
    if r >= 0 then begin
      t.c_rewrites <- t.c_rewrites + 1;
      r
    end
    else begin
      let l, r = if a <= b then (a, b) else (b, a) in
      lookup_or_create t l r
    end
  end

and rewrite t a b =
  let r = rewrite1 t a b in
  if r >= 0 then r
  else begin
    let r = rewrite1 t b a in
    if r >= 0 then r else rewrite2 t a b
  end

and rewrite1 t a b =
  let n = a lsr 1 in
  if n = 0 || t.lhs.(n) < 0 then no_rule
  else begin
    let a0 = t.lhs.(n) and a1 = t.rhs.(n) in
    if a land 1 = 0 then
      if b = a0 || b = a1 then a (* idempotence: (x&y)&x = x&y *)
      else if b = a0 lxor 1 || b = a1 lxor 1 then efalse (* contradiction *)
      else no_rule
    else if b = a0 lxor 1 || b = a1 lxor 1 then b
      (* subsumption: ~(x&y) & ~x = ~x *)
    else if b = a0 then and_ t a0 (a1 lxor 1)
      (* substitution: ~(x&y) & x = x & ~y *)
    else if b = a1 then and_ t a1 (a0 lxor 1)
    else no_rule
  end

and rewrite2 t a b =
  let na = a lsr 1 and nb = b lsr 1 in
  if na = 0 || nb = 0 || t.lhs.(na) < 0 || t.lhs.(nb) < 0 then no_rule
  else begin
    let a0 = t.lhs.(na) and a1 = t.rhs.(na) in
    let b0 = t.lhs.(nb) and b1 = t.rhs.(nb) in
    if a land 1 = 1 && b land 1 = 1 then
      (* resolution: ~(x&y) & ~(x&~y) = ~x *)
      if (a0 = b0 && a1 = b1 lxor 1) || (a0 = b1 && a1 = b0 lxor 1) then
        a0 lxor 1
      else if (a1 = b0 && a0 = b1 lxor 1) || (a1 = b1 && a0 = b0 lxor 1) then
        a1 lxor 1
      else no_rule
    else if a land 1 = 0 && b land 1 = 0 then
      (* contradiction across operands: (..&x..) & (..&~x..) = false *)
      if
        a0 = b0 lxor 1 || a0 = b1 lxor 1 || a1 = b0 lxor 1 || a1 = b1 lxor 1
      then efalse
      else no_rule
    else no_rule
  end

and lookup_or_create t l r =
  let i = ref (hash_pair l r land t.mask) in
  let found = ref (-1) in
  while !found < 0 && t.table.(!i) >= 0 do
    let id = t.table.(!i) in
    if t.lhs.(id) = l && t.rhs.(id) = r then found := id
    else i := (!i + 1) land t.mask
  done;
  if !found >= 0 then begin
    t.c_struct <- t.c_struct + 1;
    2 * !found
  end
  else begin
    if t.n = Array.length t.lhs then grow t;
    let id = t.n in
    t.n <- id + 1;
    t.lhs.(id) <- l;
    t.rhs.(id) <- r;
    t.table.(!i) <- id;
    t.entries <- t.entries + 1;
    if 2 * t.entries > t.mask then rehash t;
    t.c_nodes <- t.c_nodes + 1;
    t.c_ands <- t.c_ands + 1;
    2 * id
  end

let or_ t a b = enot (and_ t (enot a) (enot b))

(* a^b = ~(a&b) & ~(~a&~b): the inner AND(a,b) is exactly a full adder's
   carry term, so adder sum and carry share one node. *)
let xor_ t a b = and_ t (enot (and_ t a b)) (enot (and_ t (enot a) (enot b)))

let mux t s a b = enot (and_ t (enot (and_ t s a)) (enot (and_ t (enot s) b)))

let and_many t arr =
  if Array.length arr = 0 then etrue
  else begin
    let cur = ref (Array.copy arr) in
    while Array.length !cur > 1 do
      let a = !cur in
      let m = Array.length a in
      let half = (m + 1) / 2 in
      let nxt = Array.make half etrue in
      for i = 0 to (m / 2) - 1 do
        nxt.(i) <- and_ t a.(2 * i) a.((2 * i) + 1)
      done;
      if m land 1 = 1 then nxt.(half - 1) <- a.(m - 1);
      cur := nxt
    done;
    (!cur).(0)
  end

let or_many t arr = enot (and_many t (Array.map enot arr))

(* -- CNF conversion ----------------------------------------------------- *)

type polarity = Pos | Neg | Both

let lit_of_node t n =
  if t.lit.(n) >= 0 then t.lit.(n)
  else begin
    let l = Sat.pos (Sat.new_var t.sat) in
    t.lit.(n) <- l;
    l
  end

let lit t e =
  let l = lit_of_node t (node_of e) in
  if is_compl e then Sat.negate l else l

let freeze t e = Sat.freeze t.sat (Sat.var_of (lit t e))
let check_budget t =
  (* Feed the live node count to the sampler before the budget poll so
     a mid-conversion sample sees the instance as it grows. *)
  Sqed_obs.Sampler.note_aig_nodes t.n;
  Sat.check_budget t.sat

(* Polarity masks: bit 0 = positive (lit -> cone), bit 1 = negative. *)
let mask_of = function Pos -> 1 | Neg -> 2 | Both -> 3
let flip m = ((m land 1) lsl 1) lor ((m lsr 1) land 1)

let push t n m =
  if t.stack_sz = Array.length t.stack then begin
    let d = Array.make (2 * t.stack_sz) 0 in
    Array.blit t.stack 0 d 0 t.stack_sz;
    t.stack <- d
  end;
  t.stack.(t.stack_sz) <- (4 * n) lor m;
  t.stack_sz <- t.stack_sz + 1

let push_edge t e m =
  let n = e lsr 1 in
  if n > 0 && t.lhs.(n) >= 0 then
    push t n (if e land 1 = 1 then flip m else m)

let process_stack t =
  while t.stack_sz > 0 do
    (* Cooperative cancellation point, checked BEFORE popping: each
       node's polarity-byte update plus its clauses is atomic, and an
       aborted conversion leaves the unprocessed items on the stack —
       they are definitional obligations of literals already handed
       out, so [drain] must run them before the next solve.  Clearing
       the stack instead would be unsound. *)
    Sat.check_budget t.sat;
    t.stack_sz <- t.stack_sz - 1;
    let item = t.stack.(t.stack_sz) in
    let n = item lsr 2 and want = item land 3 in
    let have = Char.code (Bytes.get t.pol n) in
    let need = want land lnot have land 3 in
    if need <> 0 then begin
      Bytes.set t.pol n (Char.chr (have lor need));
      let g = lit_of_node t n in
      let l = t.lhs.(n) and r = t.rhs.(n) in
      (* A node whose children are both complemented ANDs sharing an
         opposite pair is an ITE (XOR when the branches are each other's
         complements): emitting it as 2 clauses per polarity beats
         recursing through the decomposed pair, which costs more clauses
         *and* two extra gate variables. *)
      let s = ref (-1) and th = ref (-1) and el = ref (-1) in
      (if l land 1 = 1 && r land 1 = 1 then begin
         let ln = l lsr 1 and rn = r lsr 1 in
         if t.lhs.(ln) >= 0 && t.lhs.(rn) >= 0 then begin
           let x0 = t.lhs.(ln) and x1 = t.rhs.(ln) in
           let y0 = t.lhs.(rn) and y1 = t.rhs.(rn) in
           if x0 = y0 lxor 1 then begin
             s := x0;
             th := x1 lxor 1;
             el := y1 lxor 1
           end
           else if x0 = y1 lxor 1 then begin
             s := x0;
             th := x1 lxor 1;
             el := y0 lxor 1
           end
           else if x1 = y0 lxor 1 then begin
             s := x1;
             th := x0 lxor 1;
             el := y1 lxor 1
           end
           else if x1 = y1 lxor 1 then begin
             s := x1;
             th := x0 lxor 1;
             el := y0 lxor 1
           end
         end
       end);
      let cpos, cneg =
        if !s >= 0 then begin
          (* node = if s then th else el *)
          let ls = lit t !s and lt = lit t !th and le = lit t !el in
          if need land 1 <> 0 then begin
            Sat.add_clause t.sat [ Sat.negate g; Sat.negate ls; lt ];
            Sat.add_clause t.sat [ Sat.negate g; ls; le ];
            push_edge t !s 3;
            push_edge t !th 1;
            push_edge t !el 1
          end;
          if need land 2 <> 0 then begin
            Sat.add_clause t.sat [ g; Sat.negate ls; Sat.negate lt ];
            Sat.add_clause t.sat [ g; ls; Sat.negate le ];
            push_edge t !s 3;
            push_edge t !th 2;
            push_edge t !el 2
          end;
          (2, 2)
        end
        else begin
          let la = lit t l and lb = lit t r in
          if need land 1 <> 0 then begin
            Sat.add_clause t.sat [ Sat.negate g; la ];
            Sat.add_clause t.sat [ Sat.negate g; lb ];
            push_edge t l 1;
            push_edge t r 1
          end;
          if need land 2 <> 0 then begin
            Sat.add_clause t.sat [ g; Sat.negate la; Sat.negate lb ];
            push_edge t l 2;
            push_edge t r 2
          end;
          (2, 1)
        end
      in
      (* pg_skipped tracks clauses *currently* avoided: pay down the debt
         when the other half is emitted later. *)
      let pending m =
        (if m land 1 = 0 then cpos else 0) + if m land 2 = 0 then cneg else 0
      in
      let after = have lor need in
      t.c_pg <-
        t.c_pg + if have = 0 then pending after else pending after - pending have
    end
  done

let encode t root pol =
  push_edge t root (mask_of pol);
  process_stack t;
  flush_metrics t

let drain t =
  if t.stack_sz > 0 then process_stack t;
  flush_metrics t

let assert_edge t e =
  if is_true e then ()
  else if is_false e then Sat.add_clause t.sat []
  else begin
    encode t e Pos;
    Sat.add_clause t.sat [ lit t e ]
  end

let assume_lit t e =
  if is_const e then lit t e
  else begin
    encode t e Pos;
    lit t e
  end
