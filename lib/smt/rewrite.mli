(** Term simplification beyond the smart constructors' local folding.

    [simplify] rewrites bottom-up (memoized over the DAG) with
    equivalence-preserving rules that the one-level constructors cannot
    see:

    - constant re-association: [(x @ c1) @ c2 --> x @ (c1 @ c2)] for
      associative-commutative [add]/[and]/[or]/[xor];
    - boolean ite collapse: [ite c 1 0 --> c], [ite c 0 1 --> not c],
      [ite c a a --> a];
    - equality rules: [eq (xor a b) 0 --> eq a b],
      [eq (sub a b) 0 --> eq a b], [not (not x) --> x];
    - extract-through-concat and extract-through-extend narrowing.

    The result always evaluates identically to the input (tested by a
    random-assignment differential property). *)

val simplify : Term.t -> Term.t

val gate_estimate : Term.t -> int
(** Rough cost metric: number of DAG nodes weighted by operator kind
    (multiplications and divisions dominate).  Used to report what a
    rewrite bought. *)
