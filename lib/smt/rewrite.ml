module Bv = Sqed_bv.Bv
module Metrics = Sqed_obs.Metrics

(* One bottom-up pass with memoization; rules are applied after children
   are simplified, and the smart constructors re-fold anything that became
   constant. *)

let m_nodes = Metrics.counter "smt.rewrite_nodes"
let m_hits = Metrics.counter "smt.rewrite_hits"

let is_const t = Term.is_const t

let rec simplify_memo cache t =
  match Hashtbl.find_opt cache t.Term.id with
  | Some r -> r
  | None ->
      let r = rewrite cache t in
      Metrics.incr m_nodes;
      (* Physical inequality is exact here: terms are hash-consed, so a
         rewrite that changed anything returns a different node. *)
      if r != t then Metrics.incr m_hits;
      Hashtbl.replace cache t.Term.id r;
      r

and rewrite cache t =
  let s x = simplify_memo cache x in
  match t.Term.node with
  | Term.Var _ | Term.Const _ -> t
  | Term.Not a -> Term.not_ (s a)
  | Term.Neg a -> Term.neg (s a)
  | Term.And (a, b) -> assoc_const cache Term.and_ (fun n -> match n with Term.And (x, y) -> Some (x, y) | _ -> None) (s a) (s b)
  | Term.Or (a, b) -> assoc_const cache Term.or_ (fun n -> match n with Term.Or (x, y) -> Some (x, y) | _ -> None) (s a) (s b)
  | Term.Xor (a, b) -> assoc_const cache Term.xor (fun n -> match n with Term.Xor (x, y) -> Some (x, y) | _ -> None) (s a) (s b)
  | Term.Add (a, b) -> assoc_const cache Term.add (fun n -> match n with Term.Add (x, y) -> Some (x, y) | _ -> None) (s a) (s b)
  | Term.Sub (a, b) -> Term.sub (s a) (s b)
  | Term.Mul (a, b) -> Term.mul (s a) (s b)
  | Term.Udiv (a, b) -> Term.udiv (s a) (s b)
  | Term.Urem (a, b) -> Term.urem (s a) (s b)
  | Term.Shl (a, b) -> Term.shl (s a) (s b)
  | Term.Lshr (a, b) -> Term.lshr (s a) (s b)
  | Term.Ashr (a, b) -> Term.ashr (s a) (s b)
  | Term.Eq (a, b) -> eq_rule (s a) (s b)
  | Term.Ult (a, b) -> Term.ult (s a) (s b)
  | Term.Slt (a, b) -> Term.slt (s a) (s b)
  | Term.Ite (c, a, b) -> ite_rule (s c) (s a) (s b)
  | Term.Extract (hi, lo, a) -> extract_rule hi lo (s a)
  | Term.Zext (w, a) -> Term.zext (s a) w
  | Term.Sext (w, a) -> Term.sext (s a) w
  | Term.Concat (a, b) -> Term.concat (s a) (s b)

(* (x @ c1) @ c2 --> x @ (c1 @ c2) for an AC operator [op]. *)
and assoc_const _cache op destruct a b =
  let split t =
    match (destruct t.Term.node, is_const t) with
    | _, Some _ -> (None, Some t)
    | Some (x, y), _ -> (
        match (is_const x, is_const y) with
        | Some _, None -> (Some y, Some x)
        | None, Some _ -> (Some x, Some y)
        | _ -> (Some t, None))
    | None, None -> (Some t, None)
  in
  let xa, ca = split a and xb, cb = split b in
  match (xa, ca, xb, cb) with
  | Some x, Some c1, Some y, Some c2 -> op (op x y) (op c1 c2)
  | Some x, Some c1, None, Some c2 | None, Some c2, Some x, Some c1 ->
      op x (op c1 c2)
  | _ -> op a b

and eq_rule a b =
  let rule x c =
    (* eq (xor p q) 0 --> eq p q;  eq (sub p q) 0 --> eq p q *)
    if Term.is_const c = Some (Bv.zero (Term.width c)) then
      match x.Term.node with
      | Term.Xor (p, q) | Term.Sub (p, q) -> Some (Term.eq p q)
      | Term.Not p ->
          (* eq (not p) 0 --> eq p ones *)
          Some (Term.eq p (Term.const (Bv.ones (Term.width p))))
      | _ -> None
    else None
  in
  match (rule a b, rule b a) with
  | Some r, _ | _, Some r -> r
  | None, None -> (
      (* eq (ite c k1 k2) k --> c / not c when all constants differ/match *)
      match (a.Term.node, is_const b) with
      | Term.Ite (c, x, y), Some kb -> (
          match (is_const x, is_const y) with
          | Some kx, Some ky ->
              if Bv.equal kx kb && not (Bv.equal ky kb) then c
              else if Bv.equal ky kb && not (Bv.equal kx kb) then Term.not_ c
              else if Bv.equal kx kb && Bv.equal ky kb then Term.tt
              else Term.ff
          | _ -> Term.eq a b)
      | _ -> Term.eq a b)

and ite_rule c a b =
  if Term.width a = 1 then
    match (is_const a, is_const b) with
    | Some x, Some y when Bv.to_int x = 1 && Bv.to_int y = 0 -> c
    | Some x, Some y when Bv.to_int x = 0 && Bv.to_int y = 1 -> Term.not_ c
    | _ -> ite_notc c a b
  else ite_notc c a b

and ite_notc c a b =
  match c.Term.node with
  | Term.Not c' -> Term.ite c' b a
  | _ -> Term.ite c a b

and extract_rule hi lo a =
  match a.Term.node with
  | Term.Concat (h, l) ->
      let wl = Term.width l in
      if hi < wl then extract_rule hi lo l
      else if lo >= wl then extract_rule (hi - wl) (lo - wl) h
      else Term.extract ~hi ~lo a
  | Term.Zext (_, x) ->
      let wx = Term.width x in
      if hi < wx then extract_rule hi lo x
      else if lo >= wx then Term.of_int ~width:(hi - lo + 1) 0
      else Term.extract ~hi ~lo a
  | Term.Sext (_, x) ->
      let wx = Term.width x in
      if hi < wx then extract_rule hi lo x else Term.extract ~hi ~lo a
  | _ -> Term.extract ~hi ~lo a

let simplify t =
  let cache = Hashtbl.create 256 in
  simplify_memo cache t

let gate_estimate t =
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  let rec go t =
    if not (Hashtbl.mem seen t.Term.id) then begin
      Hashtbl.add seen t.Term.id ();
      let w = Term.width t in
      let cost =
        match t.Term.node with
        | Term.Var _ | Term.Const _ -> 0
        | Term.Not _ | Term.Extract _ | Term.Zext _ | Term.Sext _
        | Term.Concat _ ->
            0
        | Term.And _ | Term.Or _ | Term.Xor _ | Term.Ite _ -> w
        | Term.Add _ | Term.Sub _ | Term.Neg _ -> 3 * w
        | Term.Eq _ | Term.Ult _ | Term.Slt _ -> 2 * w
        | Term.Shl _ | Term.Lshr _ | Term.Ashr _ ->
            let rec log2up n k = if 1 lsl k >= n then k else log2up n (k + 1) in
            w * log2up (max 2 w) 1
        | Term.Mul _ -> 6 * w * w
        | Term.Udiv _ | Term.Urem _ -> 8 * w * w
      in
      total := !total + cost;
      match t.Term.node with
      | Term.Var _ | Term.Const _ -> ()
      | Term.Not a | Term.Neg a | Term.Extract (_, _, a) | Term.Zext (_, a)
      | Term.Sext (_, a) ->
          go a
      | Term.And (a, b) | Term.Or (a, b) | Term.Xor (a, b) | Term.Add (a, b)
      | Term.Sub (a, b) | Term.Mul (a, b) | Term.Udiv (a, b)
      | Term.Urem (a, b) | Term.Shl (a, b) | Term.Lshr (a, b)
      | Term.Ashr (a, b) | Term.Eq (a, b) | Term.Ult (a, b) | Term.Slt (a, b)
      | Term.Concat (a, b) ->
          go a;
          go b
      | Term.Ite (c, a, b) ->
          go c;
          go a;
          go b
    end
  in
  go t;
  !total
