(** A parser for the QF_BV fragment of SMT-LIB 2, covering what this
    library's own emitter produces plus the constructs common in
    hand-written and tool-generated bit-vector scripts:

    - [set-logic] / [set-info] / [set-option] (accepted, ignored)
    - [declare-const] and zero-arity [declare-fun] with [(_ BitVec n)] and
      [Bool] sorts (Bool becomes a width-1 vector)
    - [assert] over: binary/hex/decimal literals ([#b...], [#x...],
      [(_ bvN w)]), the core operators ([=], [distinct], [ite], [not],
      [and], [or], [xor], [=>]), the QF_BV operators ([bvadd bvsub bvmul
      bvudiv bvurem bvand bvor bvxor bvnot bvneg bvshl bvlshr bvashr
      bvult bvule bvugt bvuge bvslt bvsle concat]), indexed
      [extract]/[zero_extend]/[sign_extend], and [let] bindings
    - [check-sat] / [exit] (markers)

    The result is the list of asserted width-1 terms, ready for
    {!Solver.assert_}. *)

type script = {
  assertions : Term.t list;
  declarations : (string * int) list;  (** name, width *)
  check_sat : bool;  (** a [check-sat] command was present *)
}

val parse : string -> (script, string) result
(** Errors carry a human-readable message with the offending s-expression. *)

val solve_script : ?max_conflicts:int -> string -> (Solver.result * (string * Sqed_bv.Bv.t) list, string) result
(** Parse and solve; on [Sat], returns the model of the declared
    constants. *)
