(** QF_BV satisfiability on top of {!Bitblast} and {!Sqed_sat.Sat}.

    A solver instance accumulates assertions (incremental: more assertions
    may be added after a [check]).  Checking under assumptions does not
    retract anything.

    Every instance runs the SAT core's CNF preprocessor ({!Sqed_sat.Simplify})
    by default: the bit-blaster freezes each literal it hands out, so the
    simplifier only ever eliminates gate-internal variables and
    incremental use (more assertions, assumptions, further [check]s) stays
    sound.  Opt out per instance with [~simplify:false] or globally with
    {!simplify_default}.

    Bit-blasting goes through the {!Aig} gate layer by default (structural
    hashing, rewriting, polarity-aware CNF conversion); [~aig:false] or
    {!aig_default} falls back to direct Tseitin emission. *)

module Bv = Sqed_bv.Bv

type t

type result = Sat | Unsat | Unknown

val simplify_default : bool ref
(** Default for [create]'s [?simplify] (initially [true]); the CLI and
    bench `--no-simplify` flag sets it to [false] for the whole run. *)

val aig_default : bool ref
(** Default for [create]'s [?aig] (initially [true]); the CLI and bench
    `--no-aig` flag sets it to [false] for the whole run. *)

val portfolio_default : int ref
(** Default for [create]'s [?portfolio] (initially [1], i.e. single
    engine); the CLI and bench `--portfolio K` flag raises it for the
    whole run. *)

val portfolio_deterministic_default : bool ref
(** Default for [create]'s [?portfolio_deterministic] (initially
    [false]); the `--portfolio-deterministic` flag turns the portfolio's
    reproducible single-domain round-robin mode on for the whole run. *)

val create :
  ?simplify:bool ->
  ?aig:bool ->
  ?portfolio:int ->
  ?portfolio_deterministic:bool ->
  unit ->
  t
(** [portfolio] is the portfolio width this solver may use (clamped to
    at least 1).  Width alone changes nothing: a [check] dispatches to
    {!Sqed_sat.Portfolio.solve} only while {!set_portfolio_active} has
    gated the portfolio on, so callers decide per query whether the
    clone/spawn overhead is worth it (the BMC engine enables it past a
    depth threshold). *)

val set_portfolio_active : t -> bool -> unit
(** Per-query portfolio gate (off on a fresh solver).  No-op unless the
    solver was created with a portfolio width above 1. *)

val portfolio_width : t -> int
(** The width this solver was created with (1 = single engine). *)

val last_unknown : t -> Sqed_resil.Budget.reason option
(** Why the most recent {!check} returned [Unknown]: the SAT core's
    {!Sqed_sat.Sat.last_interrupt}, or the budget-exhaustion reason when
    encoding work raised before the search started.  [None] after
    [Sat]/[Unsat]. *)

val assert_ : t -> Term.t -> unit
(** Assert a width-1 term.  Under an installed {!set_budget} (or an
    ambient per-task budget) this may raise
    {!Sqed_resil.Budget.Exhausted} mid-encoding; the partial work is
    remembered and finished automatically by the next {!check}. *)

val check :
  ?assumptions:Term.t list -> ?max_conflicts:int -> ?deadline:float -> t -> result
(** [deadline] is an absolute wall-clock instant bounding the whole
    call — bit-blasting of assumptions and pending asserts as well as
    the CDCL search (encoding dominates on blast-heavy instances).
    Budget exhaustion anywhere in the call yields [Unknown]; the solver
    stays reusable (incremental state intact, unfinished encoding
    completed on the next call). *)

val set_budget : t -> Sqed_resil.Budget.t -> unit
(** Install a budget governing every subsequent [assert_]/[check]
    ({!Sqed_resil.Budget.unlimited} to clear). *)

val budget : t -> Sqed_resil.Budget.t

val model_var : t -> Term.t -> Bv.t
(** Value of a variable term in the last model.  Variables the solver never
    saw evaluate to zero.  Raises [Failure] without a model. *)

val model_value : t -> Term.t -> Bv.t
(** Evaluate an arbitrary term under the last model's variable values. *)

val num_clauses : t -> int
val num_vars : t -> int

val to_dimacs : t -> string
(** The bit-blasted clause database in DIMACS format (assertions only),
    for archiving hard instances and external cross-checks. *)

val stats : t -> Sqed_sat.Sat.stats

val check_valid : ?max_conflicts:int -> Term.t -> result * (string * Bv.t) list
(** One-shot validity check of a width-1 term: returns [Unsat] if the term
    is valid (its negation has no model), or [Sat] with a countermodel
    (variable assignments) otherwise. *)
