(** QF_BV satisfiability on top of {!Bitblast} and {!Sqed_sat.Sat}.

    A solver instance accumulates assertions (incremental: more assertions
    may be added after a [check]).  Checking under assumptions does not
    retract anything. *)

module Bv = Sqed_bv.Bv

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val assert_ : t -> Term.t -> unit
(** Assert a width-1 term. *)

val check :
  ?assumptions:Term.t list -> ?max_conflicts:int -> ?deadline:float -> t -> result
(** [deadline] is an absolute wall-clock instant enforced inside the
    search loop. *)

val model_var : t -> Term.t -> Bv.t
(** Value of a variable term in the last model.  Variables the solver never
    saw evaluate to zero.  Raises [Failure] without a model. *)

val model_value : t -> Term.t -> Bv.t
(** Evaluate an arbitrary term under the last model's variable values. *)

val num_clauses : t -> int
val num_vars : t -> int

val to_dimacs : t -> string
(** The bit-blasted clause database in DIMACS format (assertions only),
    for archiving hard instances and external cross-checks. *)

val stats : t -> Sqed_sat.Sat.stats

val check_valid : ?max_conflicts:int -> Term.t -> result * (string * Bv.t) list
(** One-shot validity check of a width-1 term: returns [Unsat] if the term
    is valid (its negation has no model), or [Sat] with a countermodel
    (variable assignments) otherwise. *)
