(** And-Inverter Graph between the bit-blaster and the CNF solver.

    The blaster builds word-level circuits as AIG edges instead of emitting
    Tseitin clauses directly.  Construction performs two-level structural
    hashing: AND nodes are hash-consed on their (normalized) children, and
    constant / idempotence / absorption / contradiction folding plus a
    bounded set of one-level rewrite rules (subsumption, substitution,
    resolution — Brummayer–Biere style) run before a node is allocated, so
    the shared XOR/ITE/adder chains the blaster emits collapse onto one
    node each.

    CNF conversion is {e polarity-aware} (Plaisted–Greenbaum): a node
    referenced only positively gets the [lit -> cone] half of its Tseitin
    clauses, only negatively the converse half, and the missing half is
    emitted later if a new root ever needs it.  XOR and ITE shapes are
    detected structurally at conversion time and encoded compactly (2
    clauses per polarity) rather than through their decomposed AND pairs.
    Conversion is incremental: each (node, polarity) is emitted at most
    once per solver lifetime, so repeated [check] calls over shared cones
    pay nothing for already-converted structure.

    Incremental soundness: primary inputs carry pre-allocated, frozen SAT
    variables; internal gate variables are deliberately {e not} frozen —
    if {!Sqed_sat.Simplify} eliminates one between checks, any later clause
    we emit over it (the other polarity half, or a new parent's defining
    clauses) triggers the SAT core's restore-on-add machinery, which
    reinstates the eliminated definition first. *)

module Sat = Sqed_sat.Sat

type t

type edge = int
(** A complemented edge: [2 * node + complement].  Node 0 is the constant
    TRUE node, so [etrue = 0] and [efalse = 1].  Edges are plain ints so
    callers can store them in arrays and compare them directly. *)

val create : Sat.t -> t
(** Allocates the constant-true SAT variable (unit-asserted and frozen),
    exactly as the direct Tseitin path does. *)

val etrue : edge
val efalse : edge
val enot : edge -> edge
val is_true : edge -> bool
val is_false : edge -> bool
val is_const : edge -> bool

val fresh_input : t -> edge
(** A primary input, backed by a fresh frozen SAT variable. *)

(** {1 Construction (hash-consed, folding, rewriting)} *)

val and_ : t -> edge -> edge -> edge
val or_ : t -> edge -> edge -> edge
val xor_ : t -> edge -> edge -> edge
(** Built as [AND(not AND(a,b), not AND(not a, not b))] so the inner
    [AND(a,b)] structurally hashes with a full adder's carry term. *)

val mux : t -> edge -> edge -> edge -> edge
(** [mux t s a b] is [if s then a else b]. *)

val and_many : t -> edge array -> edge
(** Balanced AND tree (empty array is [etrue]); keeps comparator and
    reduction chains shallow so local rewriting sees both operands. *)

val or_many : t -> edge array -> edge

val num_nodes : t -> int

(** {1 CNF conversion (incremental Plaisted–Greenbaum)} *)

type polarity = Pos | Neg | Both

val encode : t -> edge -> polarity -> unit
(** Emit the still-missing clause halves of the edge's cone for the given
    polarity ([Pos] means "the edge's literal may be constrained true").
    Complement bits flip the polarity on the way down.  Idempotent per
    (node, polarity).

    Conversion honors the solver's budget ({!Sat.check_budget}) between
    nodes; on {!Sqed_resil.Budget.Exhausted} the unconverted work stays
    queued and MUST be completed via {!drain} before the next solve —
    {!Bitblast} and {!Solver} take care of this. *)

val drain : t -> unit
(** Finish any conversion work left queued by a budget-aborted
    {!encode}.  No-op when nothing is pending; may itself raise
    {!Sqed_resil.Budget.Exhausted} (leaving the remainder queued). *)

val lit : t -> edge -> Sat.lit
(** The SAT literal of an edge, materializing the node's variable if
    needed.  Emits no clauses — combine with {!encode} (or use
    {!assert_edge} / {!assume_lit}). *)

val freeze : t -> edge -> unit
(** Freeze the edge's underlying variable (for literals that escape to
    callers who may emit their own clauses over them). *)

val check_budget : t -> unit
(** {!Sat.check_budget} on the underlying solver. *)

val assert_edge : t -> edge -> unit
(** Encode the positive-polarity cone and add the edge's literal as a
    unit clause.  [etrue] is a no-op; [efalse] makes the instance
    unsatisfiable. *)

val assume_lit : t -> edge -> Sat.lit
(** Encode the positive-polarity cone and return the literal for use in
    [Sat.solve ~assumptions] (which freezes it for the call). *)

val true_lit : t -> Sat.lit
