module Bv = Sqed_bv.Bv

(* Terms print close to SMT-LIB already; constants need the #b form. *)
let rec emit buf (t : Term.t) =
  let bin name a b =
    Buffer.add_string buf ("(" ^ name ^ " ");
    emit buf a;
    Buffer.add_char buf ' ';
    emit buf b;
    Buffer.add_char buf ')'
  in
  match t.Term.node with
  | Term.Var (s, _) -> Buffer.add_string buf s
  | Term.Const v -> Buffer.add_string buf ("#b" ^ Bv.to_binary_string v)
  | Term.Not a ->
      Buffer.add_string buf "(bvnot ";
      emit buf a;
      Buffer.add_char buf ')'
  | Term.Neg a ->
      Buffer.add_string buf "(bvneg ";
      emit buf a;
      Buffer.add_char buf ')'
  | Term.And (a, b) -> bin "bvand" a b
  | Term.Or (a, b) -> bin "bvor" a b
  | Term.Xor (a, b) -> bin "bvxor" a b
  | Term.Add (a, b) -> bin "bvadd" a b
  | Term.Sub (a, b) -> bin "bvsub" a b
  | Term.Mul (a, b) -> bin "bvmul" a b
  | Term.Udiv (a, b) -> bin "bvudiv" a b
  | Term.Urem (a, b) -> bin "bvurem" a b
  | Term.Shl (a, b) -> bin "bvshl" a b
  | Term.Lshr (a, b) -> bin "bvlshr" a b
  | Term.Ashr (a, b) -> bin "bvashr" a b
  | Term.Eq (a, b) ->
      (* Booleans are width-1 vectors here; (= _ _) is an SMT Bool, so wrap
         it back into a vector to stay well-sorted. *)
      Buffer.add_string buf "(ite ";
      bin "=" a b;
      Buffer.add_string buf " #b1 #b0)"
  | Term.Ult (a, b) ->
      Buffer.add_string buf "(ite ";
      bin "bvult" a b;
      Buffer.add_string buf " #b1 #b0)"
  | Term.Slt (a, b) ->
      Buffer.add_string buf "(ite ";
      bin "bvslt" a b;
      Buffer.add_string buf " #b1 #b0)"
  | Term.Ite (c, a, b) ->
      Buffer.add_string buf "(ite (= ";
      emit buf c;
      Buffer.add_string buf " #b1) ";
      emit buf a;
      Buffer.add_char buf ' ';
      emit buf b;
      Buffer.add_char buf ')'
  | Term.Extract (hi, lo, a) ->
      Buffer.add_string buf (Printf.sprintf "((_ extract %d %d) " hi lo);
      emit buf a;
      Buffer.add_char buf ')'
  | Term.Zext (w, a) ->
      Buffer.add_string buf
        (Printf.sprintf "((_ zero_extend %d) " (w - Term.width a));
      emit buf a;
      Buffer.add_char buf ')'
  | Term.Sext (w, a) ->
      Buffer.add_string buf
        (Printf.sprintf "((_ sign_extend %d) " (w - Term.width a));
      emit buf a;
      Buffer.add_char buf ')'
  | Term.Concat (a, b) -> bin "concat" a b

let term_to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let declarations ts =
  let vars = List.concat_map Term.vars ts |> List.sort_uniq Stdlib.compare in
  String.concat "\n"
    (List.map
       (fun (name, w) ->
         Printf.sprintf "(declare-const %s (_ BitVec %d))" name w)
       vars)

let assert_term t =
  if Term.width t <> 1 then invalid_arg "Smtlib.assert_term: width <> 1";
  Printf.sprintf "(assert (= %s #b1))" (term_to_string t)

let script ts =
  String.concat "\n"
    ([ "(set-logic QF_BV)"; declarations ts ]
    @ List.map assert_term ts
    @ [ "(check-sat)" ])
