module Bv = Sqed_bv.Bv

type t = { id : int; width : int; node : node }

and node =
  | Var of string * int
  | Const of Bv.t
  | Not of t
  | Neg of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ite of t * t * t
  | Extract of int * int * t
  | Zext of int * t
  | Sext of int * t
  | Concat of t * t

let width t = t.width
let equal a b = a == b
let compare a b = Stdlib.compare a.id b.id
let hash t = t.id

(* -- hash-consing ------------------------------------------------------ *)

(* The key hashes/compares children by id, so consing is O(1) per node. *)
module Key = struct
  type nonrec t = node

  let child_ids = function
    | Var (s, w) -> [ Hashtbl.hash s; w ]
    | Const b -> [ Bv.hash b ]
    | Not a -> [ 1; a.id ]
    | Neg a -> [ 2; a.id ]
    | And (a, b) -> [ 3; a.id; b.id ]
    | Or (a, b) -> [ 4; a.id; b.id ]
    | Xor (a, b) -> [ 5; a.id; b.id ]
    | Add (a, b) -> [ 6; a.id; b.id ]
    | Sub (a, b) -> [ 7; a.id; b.id ]
    | Mul (a, b) -> [ 8; a.id; b.id ]
    | Udiv (a, b) -> [ 9; a.id; b.id ]
    | Urem (a, b) -> [ 10; a.id; b.id ]
    | Shl (a, b) -> [ 11; a.id; b.id ]
    | Lshr (a, b) -> [ 12; a.id; b.id ]
    | Ashr (a, b) -> [ 13; a.id; b.id ]
    | Eq (a, b) -> [ 14; a.id; b.id ]
    | Ult (a, b) -> [ 15; a.id; b.id ]
    | Slt (a, b) -> [ 16; a.id; b.id ]
    | Ite (c, a, b) -> [ 17; c.id; a.id; b.id ]
    | Extract (hi, lo, a) -> [ 18; hi; lo; a.id ]
    | Zext (w, a) -> [ 19; w; a.id ]
    | Sext (w, a) -> [ 20; w; a.id ]
    | Concat (a, b) -> [ 21; a.id; b.id ]

  let hash n = Hashtbl.hash (child_ids n)

  let equal a b =
    match (a, b) with
    | Var (s1, w1), Var (s2, w2) -> String.equal s1 s2 && w1 = w2
    | Const b1, Const b2 -> Bv.equal b1 b2
    | Not a1, Not a2 | Neg a1, Neg a2 -> a1 == a2
    | And (a1, b1), And (a2, b2)
    | Or (a1, b1), Or (a2, b2)
    | Xor (a1, b1), Xor (a2, b2)
    | Add (a1, b1), Add (a2, b2)
    | Sub (a1, b1), Sub (a2, b2)
    | Mul (a1, b1), Mul (a2, b2)
    | Udiv (a1, b1), Udiv (a2, b2)
    | Urem (a1, b1), Urem (a2, b2)
    | Shl (a1, b1), Shl (a2, b2)
    | Lshr (a1, b1), Lshr (a2, b2)
    | Ashr (a1, b1), Ashr (a2, b2)
    | Eq (a1, b1), Eq (a2, b2)
    | Ult (a1, b1), Ult (a2, b2)
    | Slt (a1, b1), Slt (a2, b2)
    | Concat (a1, b1), Concat (a2, b2) ->
        a1 == a2 && b1 == b2
    | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
    | Extract (h1, l1, a1), Extract (h2, l2, a2) ->
        h1 = h2 && l1 = l2 && a1 == a2
    | Zext (w1, a1), Zext (w2, a2) | Sext (w1, a1), Sext (w2, a2) ->
        w1 = w2 && a1 == a2
    | _ -> false
end

module Tbl = Hashtbl.Make (Key)

(* Each domain owns an independent term universe (hash-consing table and id
   allocator) behind [Domain.DLS], so solver campaigns can run on worker
   domains without locking the hot consing path.  Ids are handed out in
   disjoint blocks off a global atomic counter: terms built on different
   domains are never physically equal, but their ids never collide either,
   so id-keyed caches (bit-blaster, eval, rewrite) stay correct even when a
   worker's terms flow back to the caller.  Sharing is only guaranteed
   within one domain; structurally equal terms from two domains compare
   unequal, which costs sharing, never soundness. *)

let id_block_bits = 20
let next_block = Atomic.make 0

type manager = { table : t Tbl.t; mutable next_id : int; mutable id_limit : int }

let manager_key =
  Domain.DLS.new_key (fun () ->
      { table = Tbl.create 4096; next_id = 0; id_limit = 0 })

let intern width node =
  let m = Domain.DLS.get manager_key in
  match Tbl.find_opt m.table node with
  | Some t -> t
  | None ->
      if m.next_id >= m.id_limit then begin
        let b = Atomic.fetch_and_add next_block 1 in
        m.next_id <- b lsl id_block_bits;
        m.id_limit <- (b + 1) lsl id_block_bits
      end;
      let t = { id = m.next_id; width; node } in
      m.next_id <- m.next_id + 1;
      Tbl.add m.table node t;
      t

(* -- leaves ------------------------------------------------------------ *)

let const b = intern (Bv.width b) (Const b)
let of_int ~width n = const (Bv.of_int ~width n)
let tt = const (Bv.one 1)
let ff = const (Bv.zero 1)
let of_bool b = if b then tt else ff

let var name w =
  if w <= 0 then invalid_arg "Term.var: width must be positive";
  (* The same name at different widths denotes distinct variables; within
     one solver instance a name is only ever used at one width. *)
  intern w (Var (name, w))

let is_const t = match t.node with Const b -> Some b | _ -> None

let is_zero t = match t.node with Const b -> Bv.is_zero b | _ -> false
let is_ones t = match t.node with Const b -> Bv.equal b (Bv.ones t.width) | _ -> false

let check2 op a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Term.%s: width mismatch (%d vs %d)" op a.width b.width)

(* -- constructors with folding ----------------------------------------- *)

let not_ a =
  match a.node with
  | Const b -> const (Bv.lognot b)
  | Not x -> x
  | _ -> intern a.width (Not a)

let neg a =
  match a.node with
  | Const b -> const (Bv.neg b)
  | Neg x -> x
  | _ -> intern a.width (Neg a)

let and_ a b =
  check2 "and_" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.logand x y)
  | _ ->
      if is_zero a || is_zero b then const (Bv.zero a.width)
      else if is_ones a then b
      else if is_ones b then a
      else if a == b then a
      else intern a.width (And (a, b))

let or_ a b =
  check2 "or_" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.logor x y)
  | _ ->
      if is_ones a || is_ones b then const (Bv.ones a.width)
      else if is_zero a then b
      else if is_zero b then a
      else if a == b then a
      else intern a.width (Or (a, b))

let xor a b =
  check2 "xor" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.logxor x y)
  | _ ->
      if is_zero a then b
      else if is_zero b then a
      else if a == b then const (Bv.zero a.width)
      else if is_ones a then not_ b
      else if is_ones b then not_ a
      else intern a.width (Xor (a, b))

let add a b =
  check2 "add" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.add x y)
  | _ ->
      if is_zero a then b
      else if is_zero b then a
      else intern a.width (Add (a, b))

let sub a b =
  check2 "sub" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.sub x y)
  | _ -> if is_zero b then a else if a == b then const (Bv.zero a.width)
         else intern a.width (Sub (a, b))

let mul a b =
  check2 "mul" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.mul x y)
  | _ ->
      if is_zero a || is_zero b then const (Bv.zero a.width)
      else if is_const a = Some (Bv.one a.width) then b
      else if is_const b = Some (Bv.one a.width) then a
      else intern a.width (Mul (a, b))

let udiv a b =
  check2 "udiv" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.udiv x y)
  | _ -> intern a.width (Udiv (a, b))

let urem a b =
  check2 "urem" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.urem x y)
  | _ -> intern a.width (Urem (a, b))

let shl a b =
  check2 "shl" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.shl_bv x y)
  | _ -> if is_zero b then a else intern a.width (Shl (a, b))

let lshr a b =
  check2 "lshr" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.lshr_bv x y)
  | _ -> if is_zero b then a else intern a.width (Lshr (a, b))

let ashr a b =
  check2 "ashr" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bv.ashr_bv x y)
  | _ -> if is_zero b then a else intern a.width (Ashr (a, b))

let eq a b =
  check2 "eq" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> of_bool (Bv.equal x y)
  | _ -> if a == b then tt else intern 1 (Eq (a, b))

let ult a b =
  check2 "ult" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> of_bool (Bv.ult x y)
  | _ -> if a == b then ff else intern 1 (Ult (a, b))

let slt a b =
  check2 "slt" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> of_bool (Bv.slt x y)
  | _ -> if a == b then ff else intern 1 (Slt (a, b))

let ule a b = not_ (ult b a)
let ugt a b = ult b a
let uge a b = not_ (ult a b)
let sle a b = not_ (slt b a)
let distinct a b = not_ (eq a b)

let ite c a b =
  if c.width <> 1 then invalid_arg "Term.ite: condition must have width 1";
  check2 "ite" a b;
  match c.node with
  | Const v -> if Bv.is_zero v then b else a
  | _ -> if a == b then a else intern a.width (Ite (c, a, b))

let extract ~hi ~lo a =
  if lo < 0 || hi < lo || hi >= a.width then
    invalid_arg "Term.extract: bad bounds";
  if lo = 0 && hi = a.width - 1 then a
  else
    match a.node with
    | Const b -> const (Bv.extract ~hi ~lo b)
    | Extract (_, lo', x) -> intern (hi - lo + 1) (Extract (hi + lo', lo + lo', x))
    | _ -> intern (hi - lo + 1) (Extract (hi, lo, a))

let zext a w =
  if w < a.width then invalid_arg "Term.zext: smaller target";
  if w = a.width then a
  else match a.node with
    | Const b -> const (Bv.zext b w)
    | _ -> intern w (Zext (w, a))

let sext a w =
  if w < a.width then invalid_arg "Term.sext: smaller target";
  if w = a.width then a
  else match a.node with
    | Const b -> const (Bv.sext b w)
    | _ -> intern w (Sext (w, a))

let concat hi lo =
  match (is_const hi, is_const lo) with
  | Some x, Some y -> const (Bv.concat x y)
  | _ -> intern (hi.width + lo.width) (Concat (hi, lo))

let bit t i = extract ~hi:i ~lo:i t

let redor t = distinct t (const (Bv.zero t.width))
let redand t = eq t (const (Bv.ones t.width))

let implies a b = or_ (not_ a) b

let conj = function
  | [] -> tt
  | x :: xs -> List.fold_left and_ x xs

let disj = function
  | [] -> ff
  | x :: xs -> List.fold_left or_ x xs

(* -- evaluation --------------------------------------------------------- *)

let eval lookup t =
  let cache : (int, Bv.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt cache t.id with
    | Some v -> v
    | None ->
        let v =
          match t.node with
          | Var (s, w) ->
              let v = lookup s in
              if Bv.width v <> w then
                invalid_arg ("Term.eval: width mismatch for variable " ^ s);
              v
          | Const b -> b
          | Not a -> Bv.lognot (go a)
          | Neg a -> Bv.neg (go a)
          | And (a, b) -> Bv.logand (go a) (go b)
          | Or (a, b) -> Bv.logor (go a) (go b)
          | Xor (a, b) -> Bv.logxor (go a) (go b)
          | Add (a, b) -> Bv.add (go a) (go b)
          | Sub (a, b) -> Bv.sub (go a) (go b)
          | Mul (a, b) -> Bv.mul (go a) (go b)
          | Udiv (a, b) -> Bv.udiv (go a) (go b)
          | Urem (a, b) -> Bv.urem (go a) (go b)
          | Shl (a, b) -> Bv.shl_bv (go a) (go b)
          | Lshr (a, b) -> Bv.lshr_bv (go a) (go b)
          | Ashr (a, b) -> Bv.ashr_bv (go a) (go b)
          | Eq (a, b) -> Bv.of_bool (Bv.equal (go a) (go b))
          | Ult (a, b) -> Bv.of_bool (Bv.ult (go a) (go b))
          | Slt (a, b) -> Bv.of_bool (Bv.slt (go a) (go b))
          | Ite (c, a, b) -> if Bv.is_zero (go c) then go b else go a
          | Extract (hi, lo, a) -> Bv.extract ~hi ~lo (go a)
          | Zext (w, a) -> Bv.zext (go a) w
          | Sext (w, a) -> Bv.sext (go a) w
          | Concat (a, b) -> Bv.concat (go a) (go b)
        in
        Hashtbl.add cache t.id v;
        v
  in
  go t

let vars t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      match t.node with
      | Var (s, w) -> acc := (s, w) :: !acc
      | Const _ -> ()
      | Not a | Neg a | Extract (_, _, a) | Zext (_, a) | Sext (_, a) -> go a
      | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
      | Mul (a, b) | Udiv (a, b) | Urem (a, b) | Shl (a, b) | Lshr (a, b)
      | Ashr (a, b) | Eq (a, b) | Ult (a, b) | Slt (a, b) | Concat (a, b) ->
          go a; go b
      | Ite (c, a, b) -> go c; go a; go b
    end
  in
  go t;
  List.sort_uniq Stdlib.compare !acc

let size t =
  let seen = Hashtbl.create 16 in
  let n = ref 0 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      incr n;
      match t.node with
      | Var _ | Const _ -> ()
      | Not a | Neg a | Extract (_, _, a) | Zext (_, a) | Sext (_, a) -> go a
      | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
      | Mul (a, b) | Udiv (a, b) | Urem (a, b) | Shl (a, b) | Lshr (a, b)
      | Ashr (a, b) | Eq (a, b) | Ult (a, b) | Slt (a, b) | Concat (a, b) ->
          go a; go b
      | Ite (c, a, b) -> go c; go a; go b
    end
  in
  go t;
  !n

let rec pp fmt t =
  let bin name a b = Format.fprintf fmt "(%s %a %a)" name pp a pp b in
  match t.node with
  | Var (s, _) -> Format.pp_print_string fmt s
  | Const b -> Bv.pp fmt b
  | Not a -> Format.fprintf fmt "(bvnot %a)" pp a
  | Neg a -> Format.fprintf fmt "(bvneg %a)" pp a
  | And (a, b) -> bin "bvand" a b
  | Or (a, b) -> bin "bvor" a b
  | Xor (a, b) -> bin "bvxor" a b
  | Add (a, b) -> bin "bvadd" a b
  | Sub (a, b) -> bin "bvsub" a b
  | Mul (a, b) -> bin "bvmul" a b
  | Udiv (a, b) -> bin "bvudiv" a b
  | Urem (a, b) -> bin "bvurem" a b
  | Shl (a, b) -> bin "bvshl" a b
  | Lshr (a, b) -> bin "bvlshr" a b
  | Ashr (a, b) -> bin "bvashr" a b
  | Eq (a, b) -> bin "=" a b
  | Ult (a, b) -> bin "bvult" a b
  | Slt (a, b) -> bin "bvslt" a b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | Extract (hi, lo, a) ->
      Format.fprintf fmt "((_ extract %d %d) %a)" hi lo pp a
  | Zext (w, a) ->
      Format.fprintf fmt "((_ zero_extend %d) %a)" (w - a.width) pp a
  | Sext (w, a) ->
      Format.fprintf fmt "((_ sign_extend %d) %a)" (w - a.width) pp a
  | Concat (a, b) -> bin "concat" a b

let to_string t = Format.asprintf "%a" pp t
