module Bv = Sqed_bv.Bv
module Sat = Sqed_sat.Sat
module Metrics = Sqed_obs.Metrics
module Budget = Sqed_resil.Budget
module Fault = Sqed_resil.Fault

(* Gate counts only tick when a gate is actually emitted — the constant-
   propagation short-circuits above each counter don't cost clauses, so
   they shouldn't count.  (The AIG backend ticks the same counter per
   hash-consed AND node, in [Aig].) *)
let m_gates = Metrics.counter "smt.gates"
let m_cache_hits = Metrics.counter "smt.blast_cache_hits"

(* The word-level circuits (adders, shifters, dividers, comparators) are
   written once against this signature and instantiated twice: over raw
   SAT literals with immediate Tseitin emission (the historical path, kept
   verbatim for `--no-aig`), and over {!Aig} edges, where clauses only
   materialize later, polarity-aware, at assert/assume time. *)
module type GATES = sig
  type ctx
  type wire

  val true_w : ctx -> wire
  val not_w : wire -> wire
  val and_w : ctx -> wire -> wire -> wire
  val xor_w : ctx -> wire -> wire -> wire
  val mux_w : ctx -> wire -> wire -> wire -> wire

  val and_fold : ctx -> wire array -> wire
  (** Reduce an array of wires by AND.  The direct backend folds left
      (preserving its historical clause stream); the AIG backend builds a
      balanced tree so local rewriting sees shallow chains. *)

  val or_fold : ctx -> wire array -> wire

  val fresh_var : ctx -> wire
  (** A fresh primary input (one bit of a declared variable). *)

  val publish : ctx -> wire array -> unit
  (** Hook run on every wire vector that enters the blast cache.  The
      direct backend freezes the literals against preprocessing (future
      incremental blasts emit clauses over them); the AIG backend does
      nothing — edges carry no clauses until they are encoded. *)

  val check : ctx -> unit
  (** Cooperative cancellation point ({!Sat.check_budget} on the
      underlying solver), polled per blasted term and inside the
      quadratic word circuits so a deadline bounds encoding time too. *)
end

module Circuits (G : GATES) = struct
  type t = {
    ctx : G.ctx;
    cache : (int, G.wire array) Hashtbl.t; (* term id -> wires *)
    vars : (string * int, G.wire array) Hashtbl.t; (* (name, width) *)
  }

  let make ctx = { ctx; cache = Hashtbl.create 1024; vars = Hashtbl.create 64 }
  let false_w c = G.not_w (G.true_w c)
  let or_w c a b = G.not_w (G.and_w c (G.not_w a) (G.not_w b))

  let full_adder c a b cin =
    let axb = G.xor_w c a b in
    let sum = G.xor_w c axb cin in
    let cout = or_w c (G.and_w c a b) (G.and_w c axb cin) in
    (sum, cout)

  (* -- word-level circuits ---------------------------------------------- *)

  let adder c x y cin =
    let w = Array.length x in
    let out = Array.make w (false_w c) in
    let carry = ref cin in
    for i = 0 to w - 1 do
      let s, co = full_adder c x.(i) y.(i) !carry in
      out.(i) <- s;
      carry := co
    done;
    out

  let negate_vec x = Array.map G.not_w x
  let subtractor c x y = adder c x (negate_vec y) (G.true_w c)

  let const_vec c v =
    Array.init (Bv.width v) (fun i ->
        if Bv.get v i then G.true_w c else false_w c)

  let zero_vec c w = Array.make w (false_w c)

  let multiplier c x y =
    let w = Array.length x in
    let acc = ref (zero_vec c w) in
    for i = 0 to w - 1 do
      (* O(w^2) gates: the single dominant encoding cost, so poll the
         budget per partial product, not just per term. *)
      G.check c;
      (* Partial product of y_i with x shifted left by i, truncated to w. *)
      let pp =
        Array.init w (fun j ->
            if j < i then false_w c else G.and_w c y.(i) x.(j - i))
      in
      acc := adder c !acc pp (false_w c)
    done;
    !acc

  let ult_vec c x y =
    (* Ripple comparison from LSB: lt_i = (~x_i & y_i) | ((x_i == y_i) & lt). *)
    let lt = ref (false_w c) in
    for i = 0 to Array.length x - 1 do
      let xi_lt = G.and_w c (G.not_w x.(i)) y.(i) in
      let eq_i = G.not_w (G.xor_w c x.(i) y.(i)) in
      lt := or_w c xi_lt (G.and_w c eq_i !lt)
    done;
    !lt

  let slt_vec c x y =
    let w = Array.length x in
    let x' = Array.copy x and y' = Array.copy y in
    x'.(w - 1) <- G.not_w x.(w - 1);
    y'.(w - 1) <- G.not_w y.(w - 1);
    ult_vec c x' y'

  let eq_vec c x y =
    G.and_fold c
      (Array.init (Array.length x) (fun i ->
           G.not_w (G.xor_w c x.(i) y.(i))))

  let num_stage_bits w =
    let rec go n = if 1 lsl n >= w then n else go (n + 1) in
    if w <= 1 then 0 else go 1

  (* Barrel shifter.  [dir] selects left/right; [fill] is the wire shifted
     in (false for shl/lshr, the sign for ashr).  Amount bits beyond the
     stages force the all-fill result. *)
  let shifter c ~left ~fill x amt =
    let w = Array.length x in
    let k = num_stage_bits w in
    let cur = ref (Array.copy x) in
    for s = 0 to min (k - 1) (Array.length amt - 1) do
      G.check c;
      let dist = 1 lsl s in
      let prev = !cur in
      cur :=
        Array.init w (fun i ->
            let src = if left then i - dist else i + dist in
            let shifted = if src < 0 || src >= w then fill else prev.(src) in
            G.mux_w c amt.(s) shifted prev.(i))
    done;
    (* Stages cover amounts in [0, 2^k); since 2^k >= w, every amount that
       fits the stage bits either shifts correctly or (when >= w) already
       produces the all-fill vector.  Any amount bit >= k set means the
       amount is >= 2^k >= w: force the all-fill result. *)
    let overflow =
      if Array.length amt <= k then false_w c
      else G.or_fold c (Array.sub amt k (Array.length amt - k))
    in
    Array.map (fun l -> G.mux_w c overflow fill l) !cur

  let divider c x y =
    (* Restoring long division, MSB first: returns (quotient, remainder),
       with the SMT-LIB convention for division by zero. *)
    let w = Array.length x in
    let q = Array.make w (false_w c) in
    let r = ref (zero_vec c w) in
    for i = w - 1 downto 0 do
      (* Also O(w^2): a subtractor and comparator per step. *)
      G.check c;
      (* r = (r << 1) | x_i *)
      let r' = Array.init w (fun j -> if j = 0 then x.(i) else !r.(j - 1)) in
      let ge = G.not_w (ult_vec c r' y) in
      q.(i) <- ge;
      let diff = subtractor c r' y in
      r := Array.init w (fun j -> G.mux_w c ge diff.(j) r'.(j))
    done;
    let yzero = eq_vec c y (zero_vec c w) in
    let qz = Array.map (fun l -> G.mux_w c yzero (G.true_w c) l) q in
    let rz = Array.init w (fun j -> G.mux_w c yzero x.(j) !r.(j)) in
    (qz, rz)

  (* -- main translation -------------------------------------------------- *)

  let rec blast b (t : Term.t) =
    match Hashtbl.find_opt b.cache t.Term.id with
    | Some ws ->
        Metrics.incr m_cache_hits;
        ws
    | None ->
        let c = b.ctx in
        (* Only fully-blasted terms enter the cache, so aborting here
           (before any gate of this term exists) is always consistent:
           a later retry recomputes exactly the missing suffix. *)
        G.check c;
        let ws =
          match t.Term.node with
          | Term.Var (name, w) -> (
              match Hashtbl.find_opt b.vars (name, w) with
              | Some ws -> ws
              | None ->
                  let ws = Array.init w (fun _ -> G.fresh_var c) in
                  Hashtbl.add b.vars (name, w) ws;
                  G.publish c ws;
                  ws)
          | Term.Const v -> const_vec c v
          | Term.Not a -> negate_vec (blast b a)
          | Term.Neg a ->
              let x = blast b a in
              adder c (negate_vec x) (zero_vec c (Array.length x)) (G.true_w c)
          | Term.And (a, d) -> Array.map2 (G.and_w c) (blast b a) (blast b d)
          | Term.Or (a, d) -> Array.map2 (or_w c) (blast b a) (blast b d)
          | Term.Xor (a, d) -> Array.map2 (G.xor_w c) (blast b a) (blast b d)
          | Term.Add (a, d) -> adder c (blast b a) (blast b d) (false_w c)
          | Term.Sub (a, d) -> subtractor c (blast b a) (blast b d)
          | Term.Mul (a, d) -> multiplier c (blast b a) (blast b d)
          | Term.Udiv (a, d) -> fst (divider c (blast b a) (blast b d))
          | Term.Urem (a, d) -> snd (divider c (blast b a) (blast b d))
          | Term.Shl (a, d) ->
              shifter c ~left:true ~fill:(false_w c) (blast b a) (blast b d)
          | Term.Lshr (a, d) ->
              shifter c ~left:false ~fill:(false_w c) (blast b a) (blast b d)
          | Term.Ashr (a, d) ->
              let x = blast b a in
              shifter c ~left:false ~fill:x.(Array.length x - 1) x (blast b d)
          | Term.Eq (a, d) -> [| eq_vec c (blast b a) (blast b d) |]
          | Term.Ult (a, d) -> [| ult_vec c (blast b a) (blast b d) |]
          | Term.Slt (a, d) -> [| slt_vec c (blast b a) (blast b d) |]
          | Term.Ite (s, a, d) ->
              let sel = (blast b s).(0) in
              Array.map2 (fun x y -> G.mux_w c sel x y) (blast b a) (blast b d)
          | Term.Extract (hi, lo, a) ->
              let x = blast b a in
              Array.sub x lo (hi - lo + 1)
          | Term.Zext (w, a) ->
              let x = blast b a in
              Array.init w (fun i ->
                  if i < Array.length x then x.(i) else false_w c)
          | Term.Sext (w, a) ->
              let x = blast b a in
              let n = Array.length x in
              Array.init w (fun i -> if i < n then x.(i) else x.(n - 1))
          | Term.Concat (hi, lo) ->
              let h = blast b hi and l = blast b lo in
              Array.append l h
        in
        assert (Array.length ws = t.Term.width);
        Hashtbl.add b.cache t.Term.id ws;
        G.publish c ws;
        ws
end

(* -- direct Tseitin backend (the historical path, used by --no-aig) ----- *)

module Direct_gates = struct
  type ctx = { sat : Sat.t; tlit : Sat.lit }
  type wire = Sat.lit

  let true_w c = c.tlit
  let not_w = Sat.negate
  let fresh_var c = Sat.pos (Sat.new_var c.sat)
  let is_t c l = l = c.tlit
  let is_f c l = l = Sat.negate c.tlit

  let and_w c a b =
    if is_f c a || is_f c b then Sat.negate c.tlit
    else if is_t c a then b
    else if is_t c b then a
    else if a = b then a
    else if a = Sat.negate b then Sat.negate c.tlit
    else begin
      Metrics.incr m_gates;
      let g = fresh_var c in
      Sat.add_clause c.sat [ Sat.negate g; a ];
      Sat.add_clause c.sat [ Sat.negate g; b ];
      Sat.add_clause c.sat [ g; Sat.negate a; Sat.negate b ];
      g
    end

  let xor_w c a b =
    if is_f c a then b
    else if is_f c b then a
    else if is_t c a then Sat.negate b
    else if is_t c b then Sat.negate a
    else if a = b then Sat.negate c.tlit
    else if a = Sat.negate b then c.tlit
    else begin
      Metrics.incr m_gates;
      let g = fresh_var c in
      Sat.add_clause c.sat [ Sat.negate g; a; b ];
      Sat.add_clause c.sat [ Sat.negate g; Sat.negate a; Sat.negate b ];
      Sat.add_clause c.sat [ g; Sat.negate a; b ];
      Sat.add_clause c.sat [ g; a; Sat.negate b ];
      g
    end

  let mux_w c sel a b =
    (* sel ? a : b *)
    if a = b then a
    else if is_t c sel then a
    else if is_f c sel then b
    else begin
      Metrics.incr m_gates;
      let g = fresh_var c in
      Sat.add_clause c.sat [ Sat.negate sel; Sat.negate a; g ];
      Sat.add_clause c.sat [ Sat.negate sel; a; Sat.negate g ];
      Sat.add_clause c.sat [ sel; Sat.negate b; g ];
      Sat.add_clause c.sat [ sel; b; Sat.negate g ];
      g
    end

  let and_fold c arr = Array.fold_left (and_w c) c.tlit arr

  let or_fold c arr =
    Sat.negate
      (Array.fold_left
         (fun acc w -> and_w c acc (Sat.negate w))
         c.tlit arr)

  (* Every literal the blaster hands out (cached term outputs, declared
     variables, the constant-true literal) must survive the SAT core's
     preprocessing verbatim: a later incremental blast will emit new
     clauses over it, and elimination would have removed its defining
     clauses.  Freezing at cache-insertion time exempts exactly those
     literals; the Tseitin-internal gates (adder carries, partial products,
     shifter muxes) are never cached and remain fair game. *)
  let publish c ws = Array.iter (fun l -> Sat.freeze c.sat (Sat.var_of l)) ws
  let check c = Sat.check_budget c.sat
end

(* -- AIG backend --------------------------------------------------------- *)

module Aig_gates = struct
  type ctx = Aig.t
  type wire = Aig.edge

  let true_w _ = Aig.etrue
  let not_w = Aig.enot
  let and_w = Aig.and_
  let xor_w = Aig.xor_
  let mux_w = Aig.mux
  let and_fold = Aig.and_many
  let or_fold = Aig.or_many
  let fresh_var = Aig.fresh_input
  let publish _ _ = ()
  let check = Aig.check_budget
end

module DC = Circuits (Direct_gates)
module AC = Circuits (Aig_gates)

type backend = Direct of DC.t | Aig of AC.t

(* A budget-aborted [assert_bool] leaves the constraint half-encoded:
   completed sub-terms sit in the cache (sound — their defining clauses
   are emitted) but the top-level unit clause is missing, and the AIG
   backend may hold queued conversion work for literals already handed
   out.  [pending] remembers such asserts (oldest first) so [complete]
   can replay them before the next solve. *)
type t = { backend : backend; mutable pending : Term.t list }

let create ?(aig = true) sat =
  let backend =
    if aig then Aig (AC.make (Aig.create sat))
    else begin
      let v = Sat.new_var sat in
      let tlit = Sat.pos v in
      Sat.add_clause sat [ tlit ];
      Sat.freeze sat v;
      Direct (DC.make { Direct_gates.sat; tlit })
    end
  in
  { backend; pending = [] }

let uses_aig t = match t.backend with Aig _ -> true | Direct _ -> false

let true_lit t =
  match t.backend with
  | Direct b -> b.DC.ctx.Direct_gates.tlit
  | Aig b -> Aig.true_lit b.AC.ctx

let false_lit t = Sat.negate (true_lit t)

let blast t term =
  Fault.check "smt.bitblast";
  match t.backend with
  | Direct b -> DC.blast b term
  | Aig b ->
      (* These literals escape to the caller, who may constrain them in
         either phase and emit clauses over them: encode both polarity
         halves and freeze. *)
      let g = b.AC.ctx in
      Array.map
        (fun e ->
          Aig.encode g e Aig.Both;
          Aig.freeze g e;
          Aig.lit g e)
        (AC.blast b term)

let blast_bool t term =
  if Term.width term <> 1 then invalid_arg "Bitblast.blast_bool: width <> 1";
  (blast t term).(0)

let do_assert t term =
  match t.backend with
  | Direct b -> Sat.add_clause b.DC.ctx.Direct_gates.sat [ (DC.blast b term).(0) ]
  | Aig b -> Aig.assert_edge b.AC.ctx (AC.blast b term).(0)

let assert_bool t term =
  if Term.width term <> 1 then invalid_arg "Bitblast.assert_bool: width <> 1";
  Fault.check "smt.bitblast";
  try do_assert t term
  with Budget.Exhausted _ as e ->
    t.pending <- t.pending @ [ term ];
    raise e

let complete t =
  (* Replayed pending asserts are rare (only after a budget abort) and
     worth a flight-recorder note: they explain surprise re-encoding
     time in the next check. *)
  (match t.pending with
  | [] -> ()
  | pending ->
      Sqed_obs.Log.info "smt.blast.replay"
        [ ("pending", Sqed_obs.Log.I (List.length pending)) ]);
  (match t.backend with
  | Aig b -> Aig.drain b.AC.ctx
  | Direct _ -> ());
  let rec go () =
    match t.pending with
    | [] -> ()
    | term :: rest ->
        (* [do_assert], not [assert_bool]: if the budget dies again the
           term must stay at the head, not be re-queued at the tail. *)
        do_assert t term;
        t.pending <- rest;
        go ()
  in
  go ()

let assume_bool t term =
  if Term.width term <> 1 then invalid_arg "Bitblast.assume_bool: width <> 1";
  Fault.check "smt.bitblast";
  match t.backend with
  | Direct b -> (DC.blast b term).(0)
  | Aig b -> Aig.assume_lit b.AC.ctx (AC.blast b term).(0)

let var_lits t name ~width =
  match t.backend with
  | Direct b -> Hashtbl.find_opt b.DC.vars (name, width)
  | Aig b ->
      Option.map
        (Array.map (Aig.lit b.AC.ctx))
        (Hashtbl.find_opt b.AC.vars (name, width))
