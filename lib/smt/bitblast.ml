module Bv = Sqed_bv.Bv
module Sat = Sqed_sat.Sat
module Metrics = Sqed_obs.Metrics

(* Gate counts only tick when a gate is actually emitted — the constant-
   propagation short-circuits above each counter don't cost clauses, so
   they shouldn't count. *)
let m_gates = Metrics.counter "smt.gates"
let m_cache_hits = Metrics.counter "smt.blast_cache_hits"

type t = {
  sat : Sat.t;
  cache : (int, Sat.lit array) Hashtbl.t; (* term id -> lits *)
  vars : (string * int, Sat.lit array) Hashtbl.t; (* (name, width) *)
  tlit : Sat.lit;
}

(* Every literal the blaster hands out (cached term outputs, declared
   variables, the constant-true literal) must survive the SAT core's
   preprocessing verbatim: a later incremental blast will emit new
   clauses over it, and elimination would have removed its defining
   clauses.  Freezing at cache-insertion time exempts exactly those
   literals; the Tseitin-internal gates (adder carries, partial products,
   shifter muxes) are never cached and remain fair game. *)
let freeze_lits sat lits =
  Array.iter (fun l -> Sat.freeze sat (Sat.var_of l)) lits

let create sat =
  let v = Sat.new_var sat in
  let tlit = Sat.pos v in
  Sat.add_clause sat [ tlit ];
  Sat.freeze sat v;
  { sat; cache = Hashtbl.create 1024; vars = Hashtbl.create 64; tlit }

let true_lit b = b.tlit
let false_lit b = Sat.negate b.tlit

let fresh b = Sat.pos (Sat.new_var b.sat)

let is_true b l = l = b.tlit
let is_false b l = l = Sat.negate b.tlit

(* -- gates (with constant propagation) --------------------------------- *)

let and_gate b a c =
  if is_false b a || is_false b c then false_lit b
  else if is_true b a then c
  else if is_true b c then a
  else if a = c then a
  else if a = Sat.negate c then false_lit b
  else begin
    Metrics.incr m_gates;
    let g = fresh b in
    Sat.add_clause b.sat [ Sat.negate g; a ];
    Sat.add_clause b.sat [ Sat.negate g; c ];
    Sat.add_clause b.sat [ g; Sat.negate a; Sat.negate c ];
    g
  end

let or_gate b a c = Sat.negate (and_gate b (Sat.negate a) (Sat.negate c))

let xor_gate b a c =
  if is_false b a then c
  else if is_false b c then a
  else if is_true b a then Sat.negate c
  else if is_true b c then Sat.negate a
  else if a = c then false_lit b
  else if a = Sat.negate c then true_lit b
  else begin
    Metrics.incr m_gates;
    let g = fresh b in
    Sat.add_clause b.sat [ Sat.negate g; a; c ];
    Sat.add_clause b.sat [ Sat.negate g; Sat.negate a; Sat.negate c ];
    Sat.add_clause b.sat [ g; Sat.negate a; c ];
    Sat.add_clause b.sat [ g; a; Sat.negate c ];
    g
  end

let mux_gate b sel a c =
  (* sel ? a : c *)
  if a = c then a
  else if is_true b sel then a
  else if is_false b sel then c
  else begin
    Metrics.incr m_gates;
    let g = fresh b in
    Sat.add_clause b.sat [ Sat.negate sel; Sat.negate a; g ];
    Sat.add_clause b.sat [ Sat.negate sel; a; Sat.negate g ];
    Sat.add_clause b.sat [ sel; Sat.negate c; g ];
    Sat.add_clause b.sat [ sel; c; Sat.negate g ];
    g
  end

let full_adder b a c cin =
  let axc = xor_gate b a c in
  let sum = xor_gate b axc cin in
  let cout = or_gate b (and_gate b a c) (and_gate b axc cin) in
  (sum, cout)

(* -- word-level circuits ------------------------------------------------ *)

let adder b x y cin =
  let w = Array.length x in
  let out = Array.make w (false_lit b) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder b x.(i) y.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out

let negate_vec x = Array.map Sat.negate x

let subtractor b x y = adder b x (negate_vec y) (true_lit b)

let const_vec b v =
  Array.init (Bv.width v) (fun i ->
      if Bv.get v i then true_lit b else false_lit b)

let zero_vec b w = Array.make w (false_lit b)

let multiplier b x y =
  let w = Array.length x in
  let acc = ref (zero_vec b w) in
  for i = 0 to w - 1 do
    (* Partial product of y_i with x shifted left by i, truncated to w. *)
    let pp =
      Array.init w (fun j ->
          if j < i then false_lit b else and_gate b y.(i) x.(j - i))
    in
    acc := adder b !acc pp (false_lit b)
  done;
  !acc

let ult_vec b x y =
  (* Ripple comparison from LSB: lt_i = (~x_i & y_i) | ((x_i == y_i) & lt). *)
  let lt = ref (false_lit b) in
  for i = 0 to Array.length x - 1 do
    let xi_lt = and_gate b (Sat.negate x.(i)) y.(i) in
    let eq_i = Sat.negate (xor_gate b x.(i) y.(i)) in
    lt := or_gate b xi_lt (and_gate b eq_i !lt)
  done;
  !lt

let slt_vec b x y =
  let w = Array.length x in
  let x' = Array.copy x and y' = Array.copy y in
  x'.(w - 1) <- Sat.negate x.(w - 1);
  y'.(w - 1) <- Sat.negate y.(w - 1);
  ult_vec b x' y'

let eq_vec b x y =
  let acc = ref (true_lit b) in
  for i = 0 to Array.length x - 1 do
    acc := and_gate b !acc (Sat.negate (xor_gate b x.(i) y.(i)))
  done;
  !acc

let num_stage_bits w =
  let rec go n = if 1 lsl n >= w then n else go (n + 1) in
  if w <= 1 then 0 else go 1

(* Barrel shifter.  [dir] selects left/right; [fill] is the literal shifted
   in (false for shl/lshr, the sign for ashr).  Amount bits beyond the
   stages force the all-fill result. *)
let shifter b ~left ~fill x amt =
  let w = Array.length x in
  let k = num_stage_bits w in
  let cur = ref (Array.copy x) in
  for s = 0 to min (k - 1) (Array.length amt - 1) do
    let dist = 1 lsl s in
    let prev = !cur in
    cur :=
      Array.init w (fun i ->
          let src = if left then i - dist else i + dist in
          let shifted = if src < 0 || src >= w then fill else prev.(src) in
          mux_gate b amt.(s) shifted prev.(i))
  done;
  (* Stages cover amounts in [0, 2^k); since 2^k >= w, every amount that
     fits the stage bits either shifts correctly or (when >= w) already
     produces the all-fill vector.  Any amount bit >= k set means the
     amount is >= 2^k >= w: force the all-fill result. *)
  let overflow = ref (false_lit b) in
  for i = k to Array.length amt - 1 do
    overflow := or_gate b !overflow amt.(i)
  done;
  Array.map (fun l -> mux_gate b !overflow fill l) !cur

let divider b x y =
  (* Restoring long division, MSB first: returns (quotient, remainder),
     with the SMT-LIB convention for division by zero. *)
  let w = Array.length x in
  let q = Array.make w (false_lit b) in
  let r = ref (zero_vec b w) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | x_i *)
    let r' = Array.init w (fun j -> if j = 0 then x.(i) else !r.(j - 1)) in
    let ge = Sat.negate (ult_vec b r' y) in
    q.(i) <- ge;
    let diff = subtractor b r' y in
    r := Array.init w (fun j -> mux_gate b ge diff.(j) r'.(j))
  done;
  let yzero = eq_vec b y (zero_vec b w) in
  let qz = Array.map (fun l -> mux_gate b yzero (true_lit b) l) q in
  let rz = Array.init w (fun j -> mux_gate b yzero x.(j) !r.(j)) in
  (qz, rz)

(* -- main translation ---------------------------------------------------- *)

let rec blast b (t : Term.t) =
  match Hashtbl.find_opt b.cache t.Term.id with
  | Some lits ->
      Metrics.incr m_cache_hits;
      lits
  | None ->
      let lits =
        match t.Term.node with
        | Term.Var (name, w) -> (
            match Hashtbl.find_opt b.vars (name, w) with
            | Some lits -> lits
            | None ->
                let lits = Array.init w (fun _ -> fresh b) in
                Hashtbl.add b.vars (name, w) lits;
                freeze_lits b.sat lits;
                lits)
        | Term.Const v -> const_vec b v
        | Term.Not a -> negate_vec (blast b a)
        | Term.Neg a ->
            let x = blast b a in
            adder b (negate_vec x) (zero_vec b (Array.length x)) (true_lit b)
        | Term.And (a, c) -> Array.map2 (and_gate b) (blast b a) (blast b c)
        | Term.Or (a, c) -> Array.map2 (or_gate b) (blast b a) (blast b c)
        | Term.Xor (a, c) -> Array.map2 (xor_gate b) (blast b a) (blast b c)
        | Term.Add (a, c) -> adder b (blast b a) (blast b c) (false_lit b)
        | Term.Sub (a, c) -> subtractor b (blast b a) (blast b c)
        | Term.Mul (a, c) -> multiplier b (blast b a) (blast b c)
        | Term.Udiv (a, c) -> fst (divider b (blast b a) (blast b c))
        | Term.Urem (a, c) -> snd (divider b (blast b a) (blast b c))
        | Term.Shl (a, c) ->
            shifter b ~left:true ~fill:(false_lit b) (blast b a) (blast b c)
        | Term.Lshr (a, c) ->
            shifter b ~left:false ~fill:(false_lit b) (blast b a) (blast b c)
        | Term.Ashr (a, c) ->
            let x = blast b a in
            shifter b ~left:false ~fill:x.(Array.length x - 1) x (blast b c)
        | Term.Eq (a, c) -> [| eq_vec b (blast b a) (blast b c) |]
        | Term.Ult (a, c) -> [| ult_vec b (blast b a) (blast b c) |]
        | Term.Slt (a, c) -> [| slt_vec b (blast b a) (blast b c) |]
        | Term.Ite (c, a, d) ->
            let sel = (blast b c).(0) in
            Array.map2 (fun x y -> mux_gate b sel x y) (blast b a) (blast b d)
        | Term.Extract (hi, lo, a) ->
            let x = blast b a in
            Array.sub x lo (hi - lo + 1)
        | Term.Zext (w, a) ->
            let x = blast b a in
            Array.init w (fun i ->
                if i < Array.length x then x.(i) else false_lit b)
        | Term.Sext (w, a) ->
            let x = blast b a in
            let n = Array.length x in
            Array.init w (fun i -> if i < n then x.(i) else x.(n - 1))
        | Term.Concat (hi, lo) ->
            let h = blast b hi and l = blast b lo in
            Array.append l h
      in
      assert (Array.length lits = t.Term.width);
      Hashtbl.add b.cache t.Term.id lits;
      freeze_lits b.sat lits;
      lits

let blast_bool b t =
  if Term.width t <> 1 then invalid_arg "Bitblast.blast_bool: width <> 1";
  (blast b t).(0)

let assert_bool b t = Sat.add_clause b.sat [ blast_bool b t ]

let var_lits b name ~width = Hashtbl.find_opt b.vars (name, width)
