module Bv = Sqed_bv.Bv
module Sat = Sqed_sat.Sat
module Portfolio = Sqed_sat.Portfolio
module Metrics = Sqed_obs.Metrics
module Trace = Sqed_obs.Trace
module Log = Sqed_obs.Log
module Budget = Sqed_resil.Budget

let sp_check = Trace.kind ~cat:"smt" "smt.check"
let sp_blast = Trace.kind ~cat:"smt" "smt.bitblast"
let m_checks = Metrics.counter "smt.check_calls"
let h_check_us = Metrics.histogram "smt.check_latency_us"

type result = Sat | Unsat | Unknown

type t = {
  sat : Sat.t;
  blaster : Bitblast.t;
  mutable has_model : bool;
  portfolio : int;
  portfolio_det : bool;
  (* The per-query gate: the BMC engine flips this on only for deep
     bounds, so cheap shallow queries (and every CEGIS candidate) never
     pay clone/spawn overhead even when `--portfolio K` is global. *)
  mutable portfolio_active : bool;
  mutable last_unknown : Budget.reason option;
}

(* CNF preprocessing is on for every solver unless the caller opts out —
   [~simplify:false] per instance, or the [simplify_default] switch for a
   whole run (the `--no-simplify` CLI/bench flag flips it). *)
let simplify_default = ref true

(* Likewise the AIG gate layer: [~aig:false] per instance, or the
   [aig_default] switch (the `--no-aig` CLI/bench flag) to fall back to
   direct Tseitin emission for a whole run. *)
let aig_default = ref true

(* Portfolio width for every new solver: 1 (single engine) unless the
   `--portfolio K` CLI/bench flag raises it for the run.  Width alone
   does not engage the portfolio — a query also needs the
   [set_portfolio_active] gate, which only deep BMC bounds (and the
   DIMACS front-end) turn on. *)
let portfolio_default = ref 1

(* Reproducible-CI mode for the portfolio (`--portfolio-deterministic`):
   fixed round-robin scheduling on one domain instead of a parallel
   race. *)
let portfolio_deterministic_default = ref false

let create ?simplify ?aig ?portfolio ?portfolio_deterministic () =
  let sat = Sat.create () in
  let on = match simplify with Some b -> b | None -> !simplify_default in
  Sat.set_simplify sat on;
  let aig_on = match aig with Some b -> b | None -> !aig_default in
  let k =
    match portfolio with Some k -> max 1 k | None -> max 1 !portfolio_default
  in
  let det =
    match portfolio_deterministic with
    | Some b -> b
    | None -> !portfolio_deterministic_default
  in
  {
    sat;
    blaster = Bitblast.create ~aig:aig_on sat;
    has_model = false;
    portfolio = k;
    portfolio_det = det;
    portfolio_active = false;
    last_unknown = None;
  }

let set_portfolio_active s b = s.portfolio_active <- b
let portfolio_width s = s.portfolio
let last_unknown s = s.last_unknown

let set_budget s b = Sat.set_budget s.sat b
let budget s = Sat.budget s.sat

let assert_ s t =
  if Term.width t <> 1 then invalid_arg "Solver.assert_: width <> 1";
  s.has_model <- false;
  (* May raise [Budget.Exhausted] mid-encoding when a budget is
     installed; the half-done work is remembered and finished by the
     next [check] (which also re-raises nothing: it maps to Unknown). *)
  Trace.with_span sp_blast (fun () -> Bitblast.assert_bool s.blaster t)

let check ?(assumptions = []) ?max_conflicts ?deadline s =
  Trace.with_span sp_check (fun () ->
      s.has_model <- false;
      Metrics.incr m_checks;
      let t0 = if !Metrics.enabled then Unix.gettimeofday () else 0.0 in
      (* A per-call deadline must bound the *whole* check — encoding
         included, which dominates on blast-heavy instances — so install
         it as the solver budget for the duration of the call, merged
         with (never loosening) any budget the caller installed. *)
      let installed = Sat.budget s.sat in
      let conflicts0 = (Sat.stats s.sat).Sat.conflicts in
      (match deadline with
      | Some d when d < Budget.deadline installed ->
          Sat.set_budget s.sat (Budget.create ~deadline:d ())
      | _ -> ());
      let restore () =
        if Sat.budget s.sat != installed then begin
          (* Conflicts spent under the temporary budget still count
             against the installed one. *)
          Budget.charge installed
            ((Sat.stats s.sat).Sat.conflicts - conflicts0);
          Sat.set_budget s.sat installed
        end
      in
      s.last_unknown <- None;
      let r =
        try
          Fun.protect ~finally:restore (fun () ->
              (* Finish encoding work a budget-aborted assert left
                 behind — solving with missing definitional clauses
                 would be unsound. *)
              Bitblast.complete s.blaster;
              let assumption_lits =
                Trace.with_span sp_blast (fun () ->
                    List.map
                      (fun t -> Bitblast.assume_bool s.blaster t)
                      assumptions)
              in
              let verdict =
                if s.portfolio > 1 && s.portfolio_active then
                  Portfolio.solve ~k:s.portfolio
                    ~deterministic:s.portfolio_det
                    ~assumptions:assumption_lits ?max_conflicts ?deadline
                    s.sat
                else
                  Sat.solve ~assumptions:assumption_lits ?max_conflicts
                    ?deadline s.sat
              in
              match verdict with
              | Sat.Sat ->
                  s.has_model <- true;
                  Sat
              | Sat.Unsat -> Unsat
              | Sat.Unknown ->
                  s.last_unknown <- Sat.last_interrupt s.sat;
                  Unknown)
        with Budget.Exhausted reason ->
          s.last_unknown <- Some reason;
          Unknown
      in
      if !Metrics.enabled then
        Metrics.observe_us h_check_us ((Unix.gettimeofday () -. t0) *. 1e6);
      if Log.logs Log.Debug then
        Log.debug "smt.check"
          [
            ( "result",
              Log.Str
                (match r with
                | Sat -> "sat"
                | Unsat -> "unsat"
                | Unknown -> "unknown") );
            ("assumptions", Log.I (List.length assumptions));
          ];
      r)

let model_var s t =
  if not s.has_model then failwith "Solver.model_var: no model";
  match t.Term.node with
  | Term.Var (name, w) -> (
      match Bitblast.var_lits s.blaster name ~width:w with
      | None -> Bv.zero w
      | Some lits ->
          Bv.of_bits (Array.map (fun l -> Sat.lit_value s.sat l) lits))
  | _ -> invalid_arg "Solver.model_var: not a variable"

let model_value s t =
  if not s.has_model then failwith "Solver.model_value: no model";
  (* Unblasted variables are unconstrained; their widths come from the
     term's own variable list. *)
  let widths = Term.vars t in
  let lookup name =
    let w = try List.assoc name widths with Not_found -> 1 in
    match Bitblast.var_lits s.blaster name ~width:w with
    | Some lits -> Bv.of_bits (Array.map (fun l -> Sat.lit_value s.sat l) lits)
    | None -> Bv.zero w
  in
  Term.eval lookup t

let to_dimacs s = Sat.to_dimacs s.sat

let num_clauses s = Sat.num_clauses s.sat
let num_vars s = Sat.num_vars s.sat
let stats s = Sat.stats s.sat

let check_valid ?max_conflicts t =
  let s = create () in
  assert_ s (Term.not_ t);
  match check ?max_conflicts s with
  | Unsat -> (Unsat, [])
  | Sat ->
      let model =
        List.map
          (fun (name, w) -> (name, model_var s (Term.var name w)))
          (Term.vars t)
      in
      (Sat, model)
  | Unknown -> (Unknown, [])
