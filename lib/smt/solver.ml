module Bv = Sqed_bv.Bv
module Sat = Sqed_sat.Sat

type result = Sat | Unsat | Unknown

type t = {
  sat : Sat.t;
  blaster : Bitblast.t;
  mutable has_model : bool;
}

let create () =
  let sat = Sat.create () in
  { sat; blaster = Bitblast.create sat; has_model = false }

let assert_ s t =
  if Term.width t <> 1 then invalid_arg "Solver.assert_: width <> 1";
  s.has_model <- false;
  Bitblast.assert_bool s.blaster t

let check ?(assumptions = []) ?max_conflicts ?deadline s =
  s.has_model <- false;
  let assumption_lits =
    List.map (fun t -> Bitblast.blast_bool s.blaster t) assumptions
  in
  match
    Sat.solve ~assumptions:assumption_lits ?max_conflicts ?deadline s.sat
  with
  | Sat.Sat ->
      s.has_model <- true;
      Sat
  | Sat.Unsat -> Unsat
  | Sat.Unknown -> Unknown

let model_var s t =
  if not s.has_model then failwith "Solver.model_var: no model";
  match t.Term.node with
  | Term.Var (name, w) -> (
      match Bitblast.var_lits s.blaster name ~width:w with
      | None -> Bv.zero w
      | Some lits ->
          Bv.of_bits (Array.map (fun l -> Sat.lit_value s.sat l) lits))
  | _ -> invalid_arg "Solver.model_var: not a variable"

let model_value s t =
  if not s.has_model then failwith "Solver.model_value: no model";
  (* Unblasted variables are unconstrained; their widths come from the
     term's own variable list. *)
  let widths = Term.vars t in
  let lookup name =
    let w = try List.assoc name widths with Not_found -> 1 in
    match Bitblast.var_lits s.blaster name ~width:w with
    | Some lits -> Bv.of_bits (Array.map (fun l -> Sat.lit_value s.sat l) lits)
    | None -> Bv.zero w
  in
  Term.eval lookup t

let to_dimacs s = Sat.to_dimacs s.sat

let num_clauses s = Sat.num_clauses s.sat
let num_vars s = Sat.num_vars s.sat
let stats s = Sat.stats s.sat

let check_valid ?max_conflicts t =
  let s = create () in
  assert_ s (Term.not_ t);
  match check ?max_conflicts s with
  | Unsat -> (Unsat, [])
  | Sat ->
      let model =
        List.map
          (fun (name, w) -> (name, model_var s (Term.var name w)))
          (Term.vars t)
      in
      (Sat, model)
  | Unknown -> (Unknown, [])
