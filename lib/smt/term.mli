(** Hash-consed QF_BV terms with constant folding.

    Terms are hash-consed per domain: within one domain, structurally equal
    terms are physically equal and carry the same [id], which the
    bit-blaster exploits for sharing.  Each domain owns an independent term
    universe ([Domain.DLS]); ids are drawn from disjoint blocks, so terms
    from different domains never collide in id-keyed caches, they merely
    don't share.  A solver instance and all terms it sees should be built
    on a single domain.  Booleans are bitvectors of width 1.  All
    constructors check operand widths and raise [Invalid_argument] on
    mismatch. *)

module Bv = Sqed_bv.Bv

type t = private { id : int; width : int; node : node }

and node =
  | Var of string * int
  | Const of Bv.t
  | Not of t
  | Neg of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ite of t * t * t
  | Extract of int * int * t
  | Zext of int * t
  | Sext of int * t
  | Concat of t * t

val width : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Leaves} *)

val var : string -> int -> t
(** [var name width].  The same name used at different widths denotes
    distinct variables (hash-consing keys on both); a single solver
    instance must use each name at one width only. *)

val const : Bv.t -> t
val of_int : width:int -> int -> t
val tt : t
val ff : t
val of_bool : bool -> t

(** {1 Bitvector operators} *)

val not_ : t -> t
val neg : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val eq : t -> t -> t
val distinct : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val ite : t -> t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val zext : t -> int -> t
val sext : t -> int -> t
val concat : t -> t -> t
(** [concat hi lo]. *)

val bit : t -> int -> t
(** [bit t i] extracts bit [i] as a width-1 term. *)

val redor : t -> t
val redand : t -> t

(** {1 Boolean helpers (width-1 terms)} *)

val implies : t -> t -> t
val conj : t list -> t
val disj : t list -> t

(** {1 Misc} *)

val is_const : t -> Bv.t option
val eval : (string -> Bv.t) -> t -> Bv.t
(** Concrete evaluation; [lookup] supplies variable values and is applied
    once per distinct variable occurrence (results are memoized per call). *)

val vars : t -> (string * int) list
(** Free variables, sorted by name, without duplicates. *)

val size : t -> int
(** Number of distinct subterms (DAG size). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
