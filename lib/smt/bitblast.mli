(** Tseitin bit-blasting of QF_BV terms onto the CDCL solver.

    Each term is lowered to a vector of SAT literals (LSB first); the
    translation is memoized per term id, so shared sub-DAGs are encoded
    once.  Word-level operators use standard circuits: ripple-carry
    adders, shift-and-add multipliers, barrel shifters, long-division
    restoring dividers and borrow-chain comparators. *)

type t

val create : Sqed_sat.Sat.t -> t

val true_lit : t -> Sqed_sat.Sat.lit
val false_lit : t -> Sqed_sat.Sat.lit

val blast : t -> Term.t -> Sqed_sat.Sat.lit array
(** Literals of the term, least-significant bit first. *)

val blast_bool : t -> Term.t -> Sqed_sat.Sat.lit
(** The single literal of a width-1 term. *)

val assert_bool : t -> Term.t -> unit
(** Assert a width-1 term as a unit clause. *)

val var_lits : t -> string -> width:int -> Sqed_sat.Sat.lit array option
(** Literals allocated for a variable, if it was blasted. *)
