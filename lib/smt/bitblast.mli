(** Bit-blasting of QF_BV terms onto the CDCL solver.

    Each term is lowered to a vector of wires (LSB first); the translation
    is memoized per term id, so shared sub-DAGs are encoded once.
    Word-level operators use standard circuits: ripple-carry adders,
    shift-and-add multipliers, barrel shifters, long-division restoring
    dividers and borrow-chain comparators.

    Two backends share those circuits.  With [~aig:true] (the default)
    circuits are built into an {!Aig} — hash-consed, rewritten, and only
    converted to CNF (polarity-aware, incrementally) when a root is
    asserted or assumed.  With [~aig:false] the historical direct path
    emits Tseitin clauses immediately as each gate is built. *)

type t

val create : ?aig:bool -> Sqed_sat.Sat.t -> t
val uses_aig : t -> bool

val true_lit : t -> Sqed_sat.Sat.lit
val false_lit : t -> Sqed_sat.Sat.lit

val blast : t -> Term.t -> Sqed_sat.Sat.lit array
(** Literals of the term, least-significant bit first.  On the AIG backend
    this forces both polarity halves of each bit's cone into the CNF and
    freezes the literals, since they escape to the caller; prefer
    {!assert_bool} / {!assume_bool}, which encode only the needed
    polarity. *)

val blast_bool : t -> Term.t -> Sqed_sat.Sat.lit
(** The single literal of a width-1 term (both polarities, as {!blast}). *)

val assert_bool : t -> Term.t -> unit
(** Assert a width-1 term as a unit clause (positive-polarity cone only on
    the AIG backend).

    Blasting honors the solver's budget ({!Sqed_sat.Sat.check_budget}):
    on {!Sqed_resil.Budget.Exhausted} the partially-encoded assert is
    remembered and MUST be finished via {!complete} before the next
    solve ({!Solver.check} does this automatically). *)

val complete : t -> unit
(** Finish any encoding work left over from budget-aborted operations:
    drains the AIG conversion queue and replays pending asserts.  No-op
    when nothing is outstanding; may itself raise
    {!Sqed_resil.Budget.Exhausted} (and remain completable later). *)

val assume_bool : t -> Term.t -> Sqed_sat.Sat.lit
(** Literal for a width-1 term to be passed to [Sat.solve ~assumptions]
    (positive-polarity cone only on the AIG backend; [solve] freezes
    assumption variables for the call). *)

val var_lits : t -> string -> width:int -> Sqed_sat.Sat.lit array option
(** Literals allocated for a variable, if it was blasted. *)
