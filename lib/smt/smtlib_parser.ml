module Bv = Sqed_bv.Bv

(* ------------------------------------------------------------------ *)
(* S-expression reader                                                 *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let tokenize text =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    (match text.[!i] with
    | ';' ->
        flush ();
        while !i < n && text.[!i] <> '\n' do
          incr i
        done
    | '(' ->
        flush ();
        tokens := "(" :: !tokens
    | ')' ->
        flush ();
        tokens := ")" :: !tokens
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | '|' ->
        (* quoted symbol *)
        flush ();
        incr i;
        while !i < n && text.[!i] <> '|' do
          Buffer.add_char buf text.[!i];
          incr i
        done;
        flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !tokens

let read_sexps tokens =
  let rec read = function
    | [] -> raise (Parse_error "unexpected end of input")
    | "(" :: rest ->
        let items, rest = read_list [] rest in
        (List items, rest)
    | ")" :: _ -> raise (Parse_error "unexpected )")
    | atom :: rest -> (Atom atom, rest)
  and read_list acc = function
    | ")" :: rest -> (List.rev acc, rest)
    | [] -> raise (Parse_error "missing )")
    | tokens ->
        let item, rest = read tokens in
        read_list (item :: acc) rest
  in
  let rec top acc = function
    | [] -> List.rev acc
    | tokens ->
        let item, rest = read tokens in
        top (item :: acc) rest
  in
  top [] tokens

let rec sexp_to_string = function
  | Atom a -> a
  | List items ->
      "(" ^ String.concat " " (List.map sexp_to_string items) ^ ")"

(* ------------------------------------------------------------------ *)
(* Term construction                                                   *)
(* ------------------------------------------------------------------ *)

type env = { consts : (string, int) Hashtbl.t; lets : (string * Term.t) list }

let fail sexp msg =
  raise (Parse_error (msg ^ ": " ^ sexp_to_string sexp))

let parse_literal atom =
  let n = String.length atom in
  if n > 2 && atom.[0] = '#' && atom.[1] = 'b' then
    Some (Term.const (Bv.of_binary_string (String.sub atom 2 (n - 2))))
  else if n > 2 && atom.[0] = '#' && atom.[1] = 'x' then
    Some
      (Term.const
         (Bv.of_hex_string ~width:(4 * (n - 2)) (String.sub atom 2 (n - 2))))
  else None

let as_bool t =
  (* Our booleans are width-1 vectors already. *)
  if Term.width t = 1 then t
  else raise (Parse_error "expected a boolean (width-1) term")

let rec term env sexp =
  match sexp with
  | Atom "true" -> Term.tt
  | Atom "false" -> Term.ff
  | Atom a -> (
      match parse_literal a with
      | Some t -> t
      | None -> (
          match List.assoc_opt a env.lets with
          | Some t -> t
          | None -> (
              match Hashtbl.find_opt env.consts a with
              | Some w -> Term.var a w
              | None -> fail sexp "unknown symbol")))
  | List [ Atom "_"; Atom bv; Atom w ]
    when String.length bv > 2 && String.sub bv 0 2 = "bv" ->
      let v = int_of_string (String.sub bv 2 (String.length bv - 2)) in
      Term.of_int ~width:(int_of_string w) v
  | List (Atom "let" :: List bindings :: body) ->
      let lets =
        List.fold_left
          (fun acc b ->
            match b with
            | List [ Atom name; value ] -> (name, term { env with lets = acc } value) :: acc
            | _ -> fail b "malformed let binding")
          env.lets bindings
      in
      (match body with
      | [ body ] -> term { env with lets } body
      | _ -> fail sexp "let body")
  | List [ List [ Atom "_"; Atom "extract"; Atom hi; Atom lo ]; x ] ->
      Term.extract ~hi:(int_of_string hi) ~lo:(int_of_string lo) (term env x)
  | List [ List [ Atom "_"; Atom "zero_extend"; Atom k ]; x ] ->
      let t = term env x in
      Term.zext t (Term.width t + int_of_string k)
  | List [ List [ Atom "_"; Atom "sign_extend"; Atom k ]; x ] ->
      let t = term env x in
      Term.sext t (Term.width t + int_of_string k)
  | List (Atom op :: args) -> apply env sexp op (List.map (term env) args)
  | _ -> fail sexp "cannot parse term"

and apply env sexp op args =
  let chain f = function
    | x :: rest -> List.fold_left f x rest
    | [] -> fail sexp "empty application"
  in
  let bin f = match args with [ a; b ] -> f a b | _ -> fail sexp "arity 2" in
  let un f = match args with [ a ] -> f a | _ -> fail sexp "arity 1" in
  ignore env;
  match op with
  | "=" -> (
      match args with
      | [ a; b ] -> Term.eq a b
      | a :: rest ->
          Term.conj (List.map (fun b -> Term.eq a b) rest)
      | [] -> fail sexp "arity")
  | "distinct" -> bin Term.distinct
  | "ite" -> (
      match args with
      | [ c; a; b ] -> Term.ite (as_bool c) a b
      | _ -> fail sexp "arity 3")
  | "not" -> un (fun a -> Term.not_ (as_bool a))
  | "and" -> chain (fun a b -> Term.and_ (as_bool a) (as_bool b)) args
  | "or" -> chain (fun a b -> Term.or_ (as_bool a) (as_bool b)) args
  | "xor" -> chain (fun a b -> Term.xor (as_bool a) (as_bool b)) args
  | "=>" -> (
      match List.rev args with
      | last :: rev_rest ->
          List.fold_left
            (fun acc a -> Term.implies (as_bool a) acc)
            (as_bool last) rev_rest
      | [] -> fail sexp "arity")
  | "bvadd" -> chain Term.add args
  | "bvsub" -> bin Term.sub
  | "bvmul" -> chain Term.mul args
  | "bvudiv" -> bin Term.udiv
  | "bvurem" -> bin Term.urem
  | "bvand" -> chain Term.and_ args
  | "bvor" -> chain Term.or_ args
  | "bvxor" -> chain Term.xor args
  | "bvnot" -> un Term.not_
  | "bvneg" -> un Term.neg
  | "bvshl" -> bin Term.shl
  | "bvlshr" -> bin Term.lshr
  | "bvashr" -> bin Term.ashr
  | "bvult" -> bin Term.ult
  | "bvule" -> bin Term.ule
  | "bvugt" -> bin Term.ugt
  | "bvuge" -> bin Term.uge
  | "bvslt" -> bin Term.slt
  | "bvsle" -> bin Term.sle
  | "concat" -> chain Term.concat args
  | _ -> fail sexp ("unsupported operator " ^ op)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

type script = {
  assertions : Term.t list;
  declarations : (string * int) list;
  check_sat : bool;
}

let sort_width sexp =
  match sexp with
  | List [ Atom "_"; Atom "BitVec"; Atom w ] -> int_of_string w
  | Atom "Bool" -> 1
  | _ -> fail sexp "unsupported sort"

let parse text =
  try
    let sexps = read_sexps (tokenize text) in
    let consts = Hashtbl.create 16 in
    let decls = ref [] in
    let assertions = ref [] in
    let check_sat = ref false in
    List.iter
      (fun sexp ->
        match sexp with
        | List (Atom ("set-logic" | "set-info" | "set-option") :: _) -> ()
        | List [ Atom "declare-const"; Atom name; sort ] ->
            let w = sort_width sort in
            Hashtbl.replace consts name w;
            decls := (name, w) :: !decls
        | List [ Atom "declare-fun"; Atom name; List []; sort ] ->
            let w = sort_width sort in
            Hashtbl.replace consts name w;
            decls := (name, w) :: !decls
        | List [ Atom "assert"; body ] ->
            let t = term { consts; lets = [] } body in
            assertions := as_bool t :: !assertions
        | List [ Atom "check-sat" ] -> check_sat := true
        | List [ Atom "exit" ] -> ()
        | _ -> fail sexp "unsupported command")
      sexps;
    Ok
      {
        assertions = List.rev !assertions;
        declarations = List.rev !decls;
        check_sat = !check_sat;
      }
  with
  | Parse_error e -> Error e
  | Invalid_argument e -> Error e
  | Failure e -> Error e

let solve_script ?max_conflicts text =
  match parse text with
  | Error e -> Error e
  | Ok script ->
      let solver = Solver.create () in
      (* A script is one standalone query: if the run set a portfolio
         width, this is exactly the hard one-shot check it is for. *)
      Solver.set_portfolio_active solver true;
      List.iter (Solver.assert_ solver) script.assertions;
      let result = Solver.check ?max_conflicts solver in
      let model =
        match result with
        | Solver.Sat ->
            List.map
              (fun (name, w) -> (name, Solver.model_var solver (Term.var name w)))
              script.declarations
        | Solver.Unsat | Solver.Unknown -> []
      in
      Ok (result, model)
