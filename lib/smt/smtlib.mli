(** SMT-LIB 2 emission, for debugging and for cross-checking queries against
    external solvers offline. *)

val declarations : Term.t list -> string
(** [declare-const] lines for every free variable of the given terms. *)

val assert_term : Term.t -> string
(** An [(assert ...)] line for a width-1 term. *)

val script : Term.t list -> string
(** A complete [QF_BV] script asserting each term, ending in [check-sat]. *)
