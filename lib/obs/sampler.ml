(* Periodic per-domain time-series sampler.

   Each domain keeps its latest reported live values (conflicts,
   propagations, learnts, AIG nodes) in domain-local state and appends
   a sample row to its own ring when the interval has elapsed — no
   locks on the hot path, same registration scheme as [Trace]/[Log]. *)

let enabled = ref false
let interval_us = ref 50_000
let set_interval_us n = interval_us := max 0 n

let m_samples = Metrics.counter "obs.sampler.samples"

type sample = {
  sm_ts : float;
  sm_conflicts_s : float;
  sm_props_s : float;
  sm_learnts : int;
  sm_aig_nodes : int;
  sm_heap_words : int;
}

let ring_capacity = 2048

type dstate = {
  d_dom : int;
  mutable d_buf : sample array; (* [||] until the first sample *)
  mutable d_next : int;
  mutable d_count : int;
  (* Latest live values reported by the owning hot loops. *)
  mutable d_conflicts : int;
  mutable d_props : int;
  mutable d_learnts : int;
  mutable d_aig : int;
  (* Previous sample, for rate computation. *)
  mutable d_prev_ts : float; (* seconds, absolute *)
  mutable d_prev_conflicts : int;
  mutable d_prev_props : int;
}

let states_mu = Mutex.create ()
let states : dstate list ref = ref []
let epoch = ref (Unix.gettimeofday ())

let state_key =
  Domain.DLS.new_key (fun () ->
      let d =
        {
          d_dom = (Domain.self () :> int);
          d_buf = [||];
          d_next = 0;
          d_count = 0;
          d_conflicts = 0;
          d_props = 0;
          d_learnts = 0;
          d_aig = 0;
          d_prev_ts = 0.0;
          d_prev_conflicts = 0;
          d_prev_props = 0;
        }
      in
      Mutex.lock states_mu;
      states := d :: !states;
      Mutex.unlock states_mu;
      d)

let sample_now d now =
  let dt = now -. d.d_prev_ts in
  let rate cur prev = if dt <= 0.0 then 0.0 else float_of_int (cur - prev) /. dt in
  let s =
    {
      sm_ts = (now -. !epoch) *. 1e6;
      sm_conflicts_s =
        (if d.d_prev_ts = 0.0 then 0.0 else rate d.d_conflicts d.d_prev_conflicts);
      sm_props_s =
        (if d.d_prev_ts = 0.0 then 0.0 else rate d.d_props d.d_prev_props);
      sm_learnts = d.d_learnts;
      sm_aig_nodes = d.d_aig;
      sm_heap_words = (Gc.quick_stat ()).Gc.heap_words;
    }
  in
  if Array.length d.d_buf = 0 then d.d_buf <- Array.make ring_capacity s
  else d.d_buf.(d.d_next) <- s;
  d.d_next <- (d.d_next + 1) mod ring_capacity;
  d.d_count <- d.d_count + 1;
  d.d_prev_ts <- now;
  d.d_prev_conflicts <- d.d_conflicts;
  d.d_prev_props <- d.d_props;
  Metrics.add_always m_samples 1

let maybe_sample d =
  let now = Unix.gettimeofday () in
  if (now -. d.d_prev_ts) *. 1e6 >= float_of_int !interval_us then
    sample_now d now

let poll_sat ~conflicts ~propagations ~learnts =
  if !enabled then begin
    let d = Domain.DLS.get state_key in
    d.d_conflicts <- conflicts;
    d.d_props <- propagations;
    d.d_learnts <- learnts;
    maybe_sample d
  end;
  Progress.beat ()

(* Racy global tick: only a throttle, precision is irrelevant. *)
let tick = ref 0

let poll_quick () =
  if !enabled then begin
    incr tick;
    let d = Domain.DLS.get state_key in
    (* Tick-count fallback: until this domain has recorded its first
       sample, bypass the 1/64 mask so a run short on polls (a fast
       bench cell, a test) still leaves a series behind instead of a
       blank sparkline. *)
    if d.d_count = 0 || !tick land 63 = 0 then maybe_sample d
  end;
  Progress.beat ()

let note_aig_nodes n =
  if !enabled then begin
    let d = Domain.DLS.get state_key in
    d.d_aig <- n
  end

let kept d =
  if d.d_count >= Array.length d.d_buf then
    (* Oldest-first: the slice from d_next wraps around. *)
    List.init (Array.length d.d_buf) (fun i ->
        d.d_buf.((d.d_next + i) mod Array.length d.d_buf))
  else Array.to_list (Array.sub d.d_buf 0 d.d_count)

let series () =
  Mutex.lock states_mu;
  let all = List.map (fun d -> (d.d_dom, kept d)) !states in
  Mutex.unlock states_mu;
  List.sort (fun (a, _) (b, _) -> compare a b)
    (List.filter (fun (_, s) -> s <> []) all)

let sample_json s =
  Json.Obj
    [
      ("ts_us", Json.Float s.sm_ts);
      ("conflicts_s", Json.Float s.sm_conflicts_s);
      ("props_s", Json.Float s.sm_props_s);
      ("learnts", Json.Int s.sm_learnts);
      ("aig_nodes", Json.Int s.sm_aig_nodes);
      ("heap_words", Json.Int s.sm_heap_words);
    ]

let to_json () =
  Json.Obj
    [
      ("interval_us", Json.Int !interval_us);
      ( "domains",
        Json.List
          (List.map
             (fun (dom, samples) ->
               Json.Obj
                 [
                   ("dom", Json.Int dom);
                   ("samples", Json.List (List.map sample_json samples));
                 ])
             (series ())) );
    ]

let reset () =
  Mutex.lock states_mu;
  List.iter
    (fun d ->
      d.d_buf <- [||];
      d.d_next <- 0;
      d.d_count <- 0;
      d.d_conflicts <- 0;
      d.d_props <- 0;
      d.d_learnts <- 0;
      d.d_aig <- 0;
      d.d_prev_ts <- 0.0;
      d.d_prev_conflicts <- 0;
      d.d_prev_props <- 0)
    !states;
  Mutex.unlock states_mu;
  epoch := Unix.gettimeofday ()
