(** Leveled, domain-safe structured logger: the event-log half of the
    flight recorder.

    Every record carries a monotonic timestamp (microseconds since the
    log epoch), the emitting domain id, an event name and typed
    key/value fields. Records at {!Info} and above always land in a
    bounded per-domain in-memory ring — even with no sink attached — so
    the tail of the flight can be dumped into crash/degraded-exit
    summaries. Attaching a sink with {!set_sink} additionally streams
    records as JSON-lines to a file (or stderr for ["-"]).

    Hot-path call sites emit at {!Debug} and guard with {!logs}, which
    costs one comparison against a cached threshold when logging is
    quiet — the same discipline as [Metrics.enabled]. *)

(** Severity, in increasing order. *)
type level = Debug | Info | Warn | Error

(** Typed field values; rendered as the matching JSON scalar. *)
type field = Str of string | I of int | F of float | B of bool

type event = {
  lg_ts : float;  (** microseconds since the log epoch *)
  lg_dom : int;  (** emitting domain id *)
  lg_level : level;
  lg_ev : string;  (** event name, dot-separated ["layer.thing.verb"] *)
  lg_fields : (string * field) list;
}

val ring_capacity : int
(** Events retained per domain; older records are overwritten. *)

val logs : level -> bool
(** [logs lvl] is true when a record at [lvl] would be captured. Use it
    to guard field construction at hot sites; {!Debug} records are
    captured only while a [Debug]-level sink is attached. *)

val debug : string -> (string * field) list -> unit
val info : string -> (string * field) list -> unit
val warn : string -> (string * field) list -> unit
val error : string -> (string * field) list -> unit

(** {1 Sink} *)

val set_sink : ?level:level -> string -> unit
(** Open [path] and stream subsequent records at [level] (default
    {!Info}) or above to it as JSON-lines, one object per line:
    [{"ts_us":…,"dom":…,"level":…,"ev":…,"fields":{…}}]. Path ["-"]
    selects stderr so CI pipelines can capture the stream without temp
    files. [Warn]/[Error] records flush immediately; the rest on
    {!close_sink}. Replaces any previous sink. *)

val close_sink : unit -> unit
(** Flush and detach the sink ([stderr] is flushed, not closed). *)

(** {1 Ring inspection} *)

val tail : ?min_level:level -> int -> event list
(** Last [n] captured events at [min_level] (default {!Debug}) or
    above, merged across domains in timestamp order. *)

val dump_tail : ?min_level:level -> int -> out_channel -> unit
(** Write {!tail} as JSON-lines; used by degraded-exit summaries. *)

val dropped : unit -> int
(** Events overwritten in the rings since the last {!reset}. *)

val to_json : event -> Json.t

val reset : unit -> unit
(** Clear the rings and restart the epoch; the sink is left attached.
    Test helper. *)
