(** Self-contained per-run HTML report plus a machine-readable
    [run.json] sidecar.

    {!write} snapshots the whole flight recorder — metrics registry,
    sampler series, log-ring tail, trace drop count — together with the
    per-case verdict rows the campaign pushed through {!note_case}, and
    renders a single HTML file with no external assets: stat tiles,
    inline-SVG sparklines per sampler series, the phase-timer table,
    histogram summaries, the verdict table and the log tail. The
    sidecar (same path with a [.json] extension) carries the same data
    as checked JSON so CI re-parses it with [Json.parse].

    Case rows are plain data pushed by the campaign drivers ([lib/exp],
    [lib/synth], the CLIs) — the dependency points that way because
    [lib/resil] links against this library, not the reverse. *)

(** Per-case outcome, mirroring [lib/resil] verdicts plus the
    checkpoint-resume case. *)
type status = Ok | Unknown | Failed | Skipped

type case_row = {
  rc_key : string;  (** stable case key, e.g. the journal key *)
  rc_status : status;
  rc_detail : string;  (** human-readable verdict detail *)
  rc_dur : float;  (** seconds; 0 when unknown (e.g. resumed) *)
}

val note_case : case_row -> unit
(** Append a row to the run's verdict table. Thread-safe. *)

val cases : unit -> case_row list
(** Rows noted so far, in arrival order. *)

val run_payload : ?title:string -> ?cmdline:string -> unit -> Json.t
(** The machine-readable run snapshot ([schema sepe.flight/1]): the
    same object {!write} puts in the sidecar, for callers that archive
    it elsewhere — e.g. appending to a {!History} ledger. *)

val write :
  ?title:string -> ?cmdline:string -> ?history:Json.t list ->
  path:string -> unit -> string
(** Write the HTML report to [path] and the sidecar next to it;
    returns the sidecar path.  [history] (ledger entries, oldest
    first) adds a cross-run section: per-metric sparklines across the
    archived runs with this run appended, noise-band verdicts from
    {!Diff}, regression rows highlighted. *)

val reset : unit -> unit
(** Drop noted cases and restart the run clock. Test helper. *)
