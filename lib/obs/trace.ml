(* Span tracer with Chrome trace_event export.

   Spans are recorded as complete ("ph":"X") events: we time the bracket
   with [Fun.protect] so a raised exception still closes the span, and
   emit one event at close with the begin timestamp and duration. Each
   domain appends to its own buffer (registered in a global list that
   outlives the domain), so the hot path takes no lock; [events] /
   [export] merge and sort at the end. *)

let enabled = ref false

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : float; (* microseconds since trace epoch *)
  ev_dur : float; (* microseconds *)
  ev_tid : int;
  ev_depth : int;
  ev_args : (string * string) list;
}

type kind = { k_name : string; k_cat : string; k_timer : Metrics.timer }

let kind ?(cat = "sepe") name =
  { k_name = name; k_cat = cat; k_timer = Metrics.timer name }

let name_of k = k.k_name

(* -- per-domain buffers -------------------------------------------------- *)

let max_events_per_domain = 200_000

(* Each domain records into a bounded ring and overwrites its *oldest*
   events once full (Perfetto's ring mode).  Keeping the newest events
   matters: a long synthesis phase must not evict the short BMC phase
   that runs after it from the trace.  [b_count] is total pushes, so
   [count - cap] is the number overwritten. *)
type buffer = {
  b_tid : int;
  mutable b_ring : event array; (* [||] until the first push *)
  mutable b_next : int; (* next write slot *)
  mutable b_count : int; (* total events pushed, may exceed the cap *)
  mutable b_depth : int;
}

let buffers_mu = Mutex.create ()
let buffers : buffer list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_ring = [||];
          b_next = 0;
          b_count = 0;
          b_depth = 0;
        }
      in
      Mutex.lock buffers_mu;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mu;
      b)

let epoch = ref (Unix.gettimeofday ())

let push b ev =
  if Array.length b.b_ring = 0 then
    b.b_ring <- Array.make max_events_per_domain ev
  else b.b_ring.(b.b_next) <- ev;
  b.b_next <- (b.b_next + 1) mod max_events_per_domain;
  b.b_count <- b.b_count + 1

let kept_events b =
  (* In no particular order -- [events] sorts by timestamp anyway. *)
  if b.b_count >= Array.length b.b_ring then Array.to_list b.b_ring
  else Array.to_list (Array.sub b.b_ring 0 b.b_count)

(* -- spans --------------------------------------------------------------- *)

let span_with ~name ~cat ~timer ~args f =
  let metrics_on = !Metrics.enabled in
  let tracing_on = !enabled in
  if not (metrics_on || tracing_on) then f ()
  else begin
    let buf = if tracing_on then Some (Domain.DLS.get buffer_key) else None in
    (match buf with Some b -> b.b_depth <- b.b_depth + 1 | None -> ());
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dur_us = (Unix.gettimeofday () -. t0) *. 1e6 in
        if metrics_on then Metrics.timer_add timer dur_us;
        match buf with
        | Some b ->
            b.b_depth <- b.b_depth - 1;
            push b
              {
                ev_name = name;
                ev_cat = cat;
                ev_ts = (t0 -. !epoch) *. 1e6;
                ev_dur = dur_us;
                ev_tid = b.b_tid;
                ev_depth = b.b_depth;
                ev_args = args;
              }
        | None -> ())
      f
  end

let with_span ?(args = []) k f =
  span_with ~name:k.k_name ~cat:k.k_cat ~timer:k.k_timer ~args f

let with_span_named ?(cat = "sepe") name f =
  if not (!Metrics.enabled || !enabled) then f ()
  else span_with ~name ~cat ~timer:(Metrics.timer name) ~args:[] f

(* -- collection and export ----------------------------------------------- *)

let events () =
  Mutex.lock buffers_mu;
  let all = List.concat_map kept_events !buffers in
  Mutex.unlock buffers_mu;
  (* Start-time order; at equal timestamps the longer span is the
     enclosing one and must come first (events are recorded at close, so
     a parent and its first child can share a start tick). *)
  List.sort
    (fun a b ->
      let c = compare a.ev_ts b.ev_ts in
      if c <> 0 then c else compare b.ev_dur a.ev_dur)
    all

let dropped () =
  Mutex.lock buffers_mu;
  let d =
    List.fold_left
      (fun acc b -> acc + max 0 (b.b_count - Array.length b.b_ring))
      0 !buffers
  in
  Mutex.unlock buffers_mu;
  d

let event_json ev =
  Json.Obj
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String "X");
      ("ts", Json.Float ev.ev_ts);
      ("dur", Json.Float ev.ev_dur);
      ("pid", Json.Int 0);
      ("tid", Json.Int ev.ev_tid);
      ( "args",
        Json.Obj
          (("depth", Json.String (string_of_int ev.ev_depth))
          :: List.map (fun (k, v) -> (k, Json.String v)) ev.ev_args) );
    ]

(* Ring evictions are silent while the trace records; surfacing them at
   export time (counter + warn log) is enough, since that is when the
   gap becomes observable.  [surfaced] makes repeated exports add only
   the delta to the counter. *)
let m_dropped = Metrics.counter "obs.trace.dropped"
let surfaced = ref 0

let surface_dropped () =
  let d = dropped () in
  if d > !surfaced then begin
    Metrics.add_always m_dropped (d - !surfaced);
    surfaced := d
  end;
  if d > 0 then
    Log.warn "obs.trace.dropped"
      [ ("events", Log.I d); ("ring_capacity", Log.I max_events_per_domain) ]

let export path =
  let evs = events () in
  surface_dropped ();
  let to_stdout = path = "-" in
  let oc = if to_stdout then stdout else open_out path in
  Fun.protect
    ~finally:(fun () -> if to_stdout then flush oc else close_out oc)
    (fun () ->
      (* A JSON array with one event per line: valid JSON for Perfetto /
         chrome://tracing, greppable line-by-line. *)
      output_string oc "[\n";
      List.iteri
        (fun i ev ->
          if i > 0 then output_string oc ",\n";
          output_string oc (Json.to_string (event_json ev)))
        evs;
      output_string oc "\n]\n")

let validate_export path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Json.parse text with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok (Json.List evs) ->
      let check i ev =
        let str_member k =
          match Json.member k ev with Some (Json.String s) -> Some s | _ -> None
        in
        let num_member k =
          match Json.member k ev with
          | Some (Json.Float _ | Json.Int _) -> true
          | _ -> false
        in
        if str_member "name" = None then
          Error (Printf.sprintf "event %d: missing name" i)
        else if str_member "ph" <> Some "X" then
          Error (Printf.sprintf "event %d: ph must be \"X\"" i)
        else if not (num_member "ts" && num_member "dur") then
          Error (Printf.sprintf "event %d: missing ts/dur" i)
        else if
          match Json.member "tid" ev with
          | Some j -> Json.to_int_opt j = None
          | None -> true
        then Error (Printf.sprintf "event %d: missing tid" i)
        else Ok ()
      in
      let rec go i = function
        | [] -> Ok (List.length evs)
        | ev :: rest -> (
            match check i ev with Ok () -> go (i + 1) rest | Error e -> Error e)
      in
      go 0 evs
  | Ok _ -> Error "top-level value is not an array"

let reset () =
  Mutex.lock buffers_mu;
  List.iter
    (fun b ->
      b.b_ring <- [||];
      b.b_next <- 0;
      b.b_count <- 0;
      b.b_depth <- 0)
    !buffers;
  Mutex.unlock buffers_mu;
  surfaced := 0;
  epoch := Unix.gettimeofday ()
