(** Global metrics registry: counters, gauges, log-scale histograms and
    phase timers.

    Counters are sharded per domain (plain-int cells in domain-local
    storage) so hot-path increments never touch a shared cache line; all
    other instrument types use [Atomic]. Every observation is gated on
    {!enabled} — when it is false the cost per event is one boolean load. *)

val enabled : bool ref
(** Master switch. Instrumented code checks this on every observation;
    flip it before the workload starts. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Intern a counter by name. Repeated calls with the same name (from any
    module) return the same handle. Call at module-init time. *)

val add : counter -> int -> unit
val incr : counter -> unit

val add_always : counter -> int -> unit
(** Unconditional add, ignoring {!enabled}. Used for bookkeeping that
    must work even with observability off (e.g. pool worker stats backing
    [--stats]). *)

val counter_value : counter -> int
(** Sum across all per-domain stores, including finished domains. *)

val find_counter : string -> int
(** Value of the named counter, or [0] if never registered. *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> int -> unit

(** {1 Histograms}

    Log2 buckets: values [<= 1] land in bucket 0; bucket [i] covers
    [[2{^i}, 2{^i+1})]. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit
val observe_us : histogram -> float -> unit
val bucket_of : int -> int

(** {1 Timers}

    One (calls, total time) accumulator per span kind, fed by
    [Trace.with_span]; the basis of the [--metrics] phase table. *)

type timer

val timer : string -> timer

val timer_add : timer -> float -> unit
(** [timer_add t us] records one call of [us] microseconds.
    Not gated on {!enabled}; callers guard. *)

(** {1 Snapshot and reporting} *)

val to_json : unit -> Json.t
val counters_snapshot : unit -> (string * int) list
val report : unit -> string
(** Human-readable phase table: timers sorted by total time, then
    nonzero counters, gauges, and histogram summaries. *)

val reset : unit -> unit
(** Zero every registered instrument (registrations are kept). *)
