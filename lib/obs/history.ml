(* Append-only JSONL run ledger.

   Same crash-safety contract as the resil checkpoint journal (one
   flushed line per record, torn tail tolerated on load) but living in
   lib/obs because the report renderer and the diff engine both read
   it, and lib/resil already links against this library. *)

let schema = "sepe.ledger/1"

(* -- provenance ---------------------------------------------------------- *)

(* First line of a subprocess, or None when it fails to run, exits
   nonzero, or prints nothing.  Used only at entry-build time (once per
   run), so the fork cost is irrelevant. *)
let read_cmd cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> line
    | _ -> None
  with _ -> None

let git_stamp () =
  match read_cmd "git rev-parse --short HEAD 2>/dev/null" with
  | None -> (Json.String "unknown", Json.Null)
  | Some commit ->
      let dirty =
        match read_cmd "git status --porcelain -uno 2>/dev/null" with
        | Some line when line <> "" -> true
        | _ -> false
      in
      (Json.String commit, Json.Bool dirty)

let provenance ~config () =
  let commit, dirty = git_stamp () in
  Json.Obj
    [
      ("git_commit", commit);
      ("git_dirty", dirty);
      ("hostname", Json.String (try Unix.gethostname () with _ -> "unknown"));
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("ocaml", Json.String Sys.ocaml_version);
      ("config", Json.Obj config);
    ]

let entry ~kind ~label ~provenance ~run =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("kind", Json.String kind);
      ("label", Json.String label);
      ("recorded_unix_s", Json.Float (Unix.gettimeofday ()));
      ("provenance", provenance);
      ("run", run);
    ]

(* -- file ---------------------------------------------------------------- *)

let append path e =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string e);
      output_char oc '\n';
      flush oc)

type loaded = { entries : Json.t list; dropped : int }

let load path =
  if not (Sys.file_exists path) then { entries = []; dropped = 0 }
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
    in
    let entries, dropped =
      List.fold_left
        (fun (acc, dropped) line ->
          match Json.parse line with
          | Ok (Json.Obj _ as j)
            when Json.member "schema" j = Some (Json.String schema) ->
              (j :: acc, dropped)
          | Ok _ | Error _ -> (acc, dropped + 1))
        ([], 0) lines
    in
    { entries = List.rev entries; dropped }
  end

(* -- accessors ----------------------------------------------------------- *)

let run_of e = Json.member "run" e

let config_of e =
  Option.bind (Json.member "provenance" e) (Json.member "config")

let compatible a b =
  match (config_of a, config_of b) with
  | Some ca, Some cb -> ca = cb
  | _ -> false

let summary_line idx e =
  let str k d =
    match Option.bind (Json.member k e) Json.to_string_opt with
    | Some s -> s
    | None -> d
  in
  let ts =
    match Option.bind (Json.member "recorded_unix_s" e) Json.to_float_opt with
    | Some t ->
        let tm = Unix.gmtime t in
        Printf.sprintf "%04d-%02d-%02dT%02d:%02dZ" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    | None -> "????-??-??"
  in
  let prov k =
    match
      Option.bind (Json.member "provenance" e) (fun p ->
          Option.bind (Json.member k p) Json.to_string_opt)
    with
    | Some s -> s
    | None -> "?"
  in
  let dirty =
    match
      Option.bind (Json.member "provenance" e) (Json.member "git_dirty")
    with
    | Some (Json.Bool true) -> "+"
    | _ -> ""
  in
  (* Headline wall: the flight payload's wall_s, else the sum of the
     bench payload's per-experiment walls. *)
  let wall =
    match run_of e with
    | None -> None
    | Some run -> (
        match Option.bind (Json.member "wall_s" run) Json.to_float_opt with
        | Some w -> Some w
        | None -> (
            match Json.member "experiments" run with
            | Some (Json.List exps) ->
                Some
                  (List.fold_left
                     (fun acc x ->
                       match
                         Option.bind (Json.member "wall_s" x) Json.to_float_opt
                       with
                       | Some w -> acc +. w
                       | None -> acc)
                     0.0 exps)
            | _ -> None))
  in
  Printf.sprintf "%3d  %s  %-5s %-18s %s%s  %s" idx ts (str "kind" "?")
    (str "label" "?") (prov "git_commit") dirty
    (match wall with Some w -> Printf.sprintf "%8.1fs" w | None -> "       -")
