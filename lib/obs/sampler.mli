(** Low-overhead periodic time-series sampler.

    Piggybacks on the cooperative check points that already exist for
    budget polling (the CDCL 1024-conflict poll, bit-blast word loops,
    pool worker boundaries): each call site reports the live values it
    owns ({!poll_sat}, {!note_aig_nodes}) or just offers a sampling
    opportunity ({!poll_quick}), and the sampler records a row into the
    calling domain's ring buffer whenever {!interval} has elapsed —
    conflict and propagation rates, learnt-DB size, AIG node count and
    [Gc.quick_stat] heap words.

    With {!enabled} unset every entry point costs one boolean load
    (plus one for the {!Progress} heartbeat it forwards), matching the
    [Metrics.enabled] discipline. Live values must be pushed by the
    owning hot loop because solver counters are only flushed to the
    metrics registry when a solve returns. *)

val enabled : bool ref
(** Master switch; set by [--report] (the report embeds the series). *)

val set_interval_us : int -> unit
(** Minimum microseconds between samples on one domain (default
    50_000). [0] samples on every poll — test use. *)

type sample = {
  sm_ts : float;  (** microseconds since the sampler epoch *)
  sm_conflicts_s : float;  (** conflict rate since the previous sample *)
  sm_props_s : float;  (** propagation rate since the previous sample *)
  sm_learnts : int;  (** learnt-clause DB size at the sample *)
  sm_aig_nodes : int;  (** AIG node count at the sample *)
  sm_heap_words : int;  (** [Gc.quick_stat] major-heap words *)
}

val poll_sat : conflicts:int -> propagations:int -> learnts:int -> unit
(** Report live CDCL totals and maybe sample; called from the solver's
    1024-conflict poll. Also forwards a {!Progress.beat}. *)

val poll_quick : unit -> unit
(** Sampling opportunity with no new values (bit-blast word loops, pool
    workers); tick-masked internally so even the enabled path only
    reads the clock every 64th call — except before the calling
    domain's first sample, where the mask is bypassed so short runs
    still record a series. Also forwards a {!Progress.beat}. *)

val note_aig_nodes : int -> unit
(** Report the current AIG node count for the calling domain. *)

val series : unit -> (int * sample list) list
(** Per-domain series, oldest sample first, sorted by domain id. *)

val to_json : unit -> Json.t
(** [{"interval_us":…,"domains":[{"dom":…,"samples":[…]}]}] — embedded
    in [run.json]. *)

val reset : unit -> unit
(** Drop all series and restart the epoch. Test helper. *)
