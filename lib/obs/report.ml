(* Per-run HTML report + run.json sidecar.

   The HTML is a single file with no external assets: styles inline,
   charts as inline SVG sparklines built from the sampler series.
   Light/dark are both shipped via CSS custom properties under
   prefers-color-scheme; status cells pair an icon glyph with a text
   label so color never carries meaning alone. *)

type status = Ok | Unknown | Failed | Skipped

type case_row = {
  rc_key : string;
  rc_status : status;
  rc_detail : string;
  rc_dur : float;
}

let started = ref (Unix.gettimeofday ())
let cases_mu = Mutex.create ()
let noted : case_row list ref = ref []

let note_case r =
  Mutex.lock cases_mu;
  noted := r :: !noted;
  Mutex.unlock cases_mu

let cases () =
  Mutex.lock cases_mu;
  let r = List.rev !noted in
  Mutex.unlock cases_mu;
  r

let reset () =
  Mutex.lock cases_mu;
  noted := [];
  Mutex.unlock cases_mu;
  started := Unix.gettimeofday ()

(* -- formatting helpers -------------------------------------------------- *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let humanize v =
  let a = abs_float v in
  if a >= 1e9 then Printf.sprintf "%.1fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if a >= 1e4 then Printf.sprintf "%.1fk" (v /. 1e3)
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let fmt_us us =
  if us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.1fms" (us /. 1e3)
  else Printf.sprintf "%.0fus" us

let status_name = function
  | Ok -> "ok"
  | Unknown -> "unknown"
  | Failed -> "failed"
  | Skipped -> "skipped"

(* Icon glyph + label + status class: color never stands alone. *)
let status_cell = function
  | Ok -> {|<span class="st st-ok">&#10003; ok</span>|}
  | Unknown -> {|<span class="st st-warn">? unknown</span>|}
  | Failed -> {|<span class="st st-crit">&#10007; failed</span>|}
  | Skipped -> {|<span class="st st-skip">&#8635; resumed</span>|}

(* -- sparklines ----------------------------------------------------------- *)

(* One measure per chart; when several domains contributed a series they
   overlay as polylines in the same hue (same measure, repeated units),
   so no legend is needed. *)
let sparkline_svg series =
  let w = 260.0 and h = 40.0 and pad = 3.0 in
  let all = List.concat series in
  match all with
  | [] -> ""
  | _ ->
      let lo = List.fold_left min infinity all in
      let hi = List.fold_left max neg_infinity all in
      let span = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
      let poly pts =
        let n = List.length pts in
        if n = 0 then ""
        else
          let step = if n <= 1 then 0.0 else (w -. (2.0 *. pad)) /. float_of_int (n - 1) in
          let coords =
            List.mapi
              (fun i v ->
                let x = pad +. (float_of_int i *. step) in
                let y = h -. pad -. ((v -. lo) /. span *. (h -. (2.0 *. pad))) in
                Printf.sprintf "%.1f,%.1f" x y)
              pts
          in
          Printf.sprintf
            {|<polyline points="%s" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round" stroke-linecap="round" opacity="%s"/>|}
            (String.concat " " coords)
            (if List.length series > 1 then "0.65" else "1")
      in
      Printf.sprintf
        {|<svg viewBox="0 0 %.0f %.0f" width="%.0f" height="%.0f" role="img">%s</svg>|}
        w h w h
        (String.concat "" (List.map poly series))

let spark_row ~name ~unit_ series =
  let all = List.concat series in
  if all = [] then ""
  else
    let lo = List.fold_left min infinity all in
    let hi = List.fold_left max neg_infinity all in
    let last = List.nth all (List.length all - 1) in
    Printf.sprintf
      {|<div class="spark"><div class="spark-head"><span class="spark-name">%s</span><span class="spark-stats">min %s · max %s · last %s%s</span></div>%s</div>|}
      (html_escape name) (humanize lo) (humanize hi) (humanize last)
      (html_escape unit_) (sparkline_svg series)

(* -- run.json ------------------------------------------------------------- *)

let case_json r =
  Json.Obj
    [
      ("key", Json.String r.rc_key);
      ("status", Json.String (status_name r.rc_status));
      ("detail", Json.String r.rc_detail);
      ("dur_s", Json.Float r.rc_dur);
    ]

let run_json ~title ~cmdline ~now =
  Json.Obj
    [
      ("schema", Json.String "sepe.flight/1");
      ("title", Json.String title);
      ("cmdline", Json.String cmdline);
      ("generated_unix_s", Json.Float now);
      ("wall_s", Json.Float (now -. !started));
      ("metrics", Metrics.to_json ());
      ("samples", Sampler.to_json ());
      ("trace_dropped", Json.Int (Trace.dropped ()));
      ("log_dropped", Json.Int (Log.dropped ()));
      ("cases", Json.List (List.map case_json (cases ())));
      ("log_tail", Json.List (List.map Log.to_json (Log.tail 100)));
    ]

let run_payload ?(title = "sepe-sqed run") ?(cmdline = "") () =
  run_json ~title ~cmdline ~now:(Unix.gettimeofday ())

(* -- HTML ----------------------------------------------------------------- *)

let style =
  {|<style>
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px; line-height: 1.45;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 14px; margin: 28px 0 8px; color: var(--text-secondary);
     text-transform: uppercase; letter-spacing: .04em; }
.sub { color: var(--text-secondary); font-size: 13px; margin-bottom: 20px; }
code { font-family: ui-monospace, monospace; font-size: 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 10px 16px; min-width: 110px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--text-secondary); }
.sparks { display: flex; flex-wrap: wrap; gap: 12px; }
.spark { background: var(--surface-1); border: 1px solid var(--border);
         border-radius: 8px; padding: 10px 12px; }
.spark-head { display: flex; justify-content: space-between; gap: 16px;
              font-size: 12px; margin-bottom: 4px; }
.spark-name { color: var(--text-primary); font-weight: 600; }
.spark-stats { color: var(--text-secondary); font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; background: var(--surface-1);
        border: 1px solid var(--border); border-radius: 8px; font-size: 13px; }
th, td { text-align: left; padding: 5px 12px; border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:last-child td { border-bottom: none; }
.st { font-weight: 600; }
.st-ok { color: var(--good); }
.st-warn { color: var(--warning); }
.st-crit { color: var(--critical); }
.st-skip { color: var(--text-secondary); }
.log { background: var(--surface-1); border: 1px solid var(--border);
       border-radius: 8px; padding: 10px 12px; font-family: ui-monospace, monospace;
       font-size: 12px; white-space: pre-wrap; overflow-x: auto; }
.log .lw { color: var(--warning); } .log .le { color: var(--critical); }
tr.hist-regressed td { background: color-mix(in srgb, var(--critical) 12%, transparent); }
.foot { margin-top: 24px; color: var(--muted); font-size: 12px; }
</style>|}

let tile ~k ~v =
  Printf.sprintf {|<div class="tile"><div class="v">%s</div><div class="k">%s</div></div>|}
    (html_escape v) (html_escape k)

let obj_members = function Json.Obj kvs -> kvs | _ -> []

let timers_table metrics =
  let timers =
    match Json.member "timers" metrics with Some t -> obj_members t | None -> []
  in
  let rows =
    timers
    |> List.filter_map (fun (name, j) ->
           match
             ( Json.member "calls" j,
               Json.member "total_us" j,
               Json.member "mean_us" j )
           with
           | Some calls, Some total, Some mean ->
               let total_us =
                 Option.value ~default:0.0 (Json.to_float_opt total)
               in
               if total_us <= 0.0 then None
               else
                 Some
                   ( name,
                     Option.value ~default:0 (Json.to_int_opt calls),
                     total_us,
                     Option.value ~default:0.0 (Json.to_float_opt mean) )
           | _ -> None)
    |> List.sort (fun (_, _, a, _) (_, _, b, _) -> compare b a)
  in
  if rows = [] then "<p class=\"sub\">no timers recorded</p>"
  else
    "<table><tr><th>phase</th><th>calls</th><th>total</th><th>mean</th></tr>"
    ^ String.concat ""
        (List.map
           (fun (name, calls, total, mean) ->
             Printf.sprintf
               {|<tr><td><code>%s</code></td><td class="num">%d</td><td class="num">%s</td><td class="num">%s</td></tr>|}
               (html_escape name) calls (fmt_us total) (fmt_us mean))
           rows)
    ^ "</table>"

let counters_table metrics =
  let counters =
    match Json.member "counters" metrics with
    | Some c -> obj_members c
    | None -> []
  in
  let rows =
    counters
    |> List.filter_map (fun (name, j) ->
           match Json.to_int_opt j with
           | Some v when v > 0 -> Some (name, v)
           | _ -> None)
  in
  if rows = [] then "<p class=\"sub\">no counters recorded</p>"
  else
    "<table><tr><th>counter</th><th>value</th></tr>"
    ^ String.concat ""
        (List.map
           (fun (name, v) ->
             Printf.sprintf
               {|<tr><td><code>%s</code></td><td class="num">%s</td></tr>|}
               (html_escape name)
               (humanize (float_of_int v)))
           rows)
    ^ "</table>"

let histograms_table metrics =
  let hs =
    match Json.member "histograms" metrics with
    | Some h -> obj_members h
    | None -> []
  in
  let rows =
    hs
    |> List.filter_map (fun (name, j) ->
           match (Json.member "count" j, Json.member "sum" j) with
           | Some c, Some s -> (
               match (Json.to_int_opt c, Json.to_int_opt s) with
               | Some c, Some s when c > 0 -> Some (name, c, s)
               | _ -> None)
           | _ -> None)
  in
  if rows = [] then "<p class=\"sub\">no histograms recorded</p>"
  else
    "<table><tr><th>histogram</th><th>count</th><th>sum</th><th>mean</th></tr>"
    ^ String.concat ""
        (List.map
           (fun (name, c, s) ->
             Printf.sprintf
               {|<tr><td><code>%s</code></td><td class="num">%d</td><td class="num">%s</td><td class="num">%s</td></tr>|}
               (html_escape name) c
               (humanize (float_of_int s))
               (humanize (float_of_int s /. float_of_int c)))
           rows)
    ^ "</table>"

let cases_table rows =
  if rows = [] then "<p class=\"sub\">no cases recorded</p>"
  else
    "<table><tr><th>case</th><th>verdict</th><th>detail</th><th>time</th></tr>"
    ^ String.concat ""
        (List.map
           (fun r ->
             Printf.sprintf
               {|<tr><td><code>%s</code></td><td>%s</td><td>%s</td><td class="num">%s</td></tr>|}
               (html_escape r.rc_key) (status_cell r.rc_status)
               (html_escape r.rc_detail)
               (if r.rc_dur > 0.0 then Printf.sprintf "%.1fs" r.rc_dur else "–"))
           rows)
    ^ "</table>"

let log_tail_html () =
  let evs = Log.tail 50 in
  if evs = [] then "<p class=\"sub\">log ring empty</p>"
  else
    let line e =
      let cls =
        match e.Log.lg_level with
        | Log.Warn -> " class=\"lw\""
        | Log.Error -> " class=\"le\""
        | _ -> ""
      in
      Printf.sprintf "<span%s>%s</span>" cls
        (html_escape (Json.to_string (Log.to_json e)))
    in
    {|<div class="log">|} ^ String.concat "\n" (List.map line evs) ^ "</div>"

let sparks_html () =
  let per_series extract =
    List.map (fun (_dom, samples) -> List.map extract samples) (Sampler.series ())
    |> List.filter (fun l -> l <> [])
  in
  let blocks =
    [
      spark_row ~name:"conflicts/s" ~unit_:""
        (per_series (fun s -> s.Sampler.sm_conflicts_s));
      spark_row ~name:"propagations/s" ~unit_:""
        (per_series (fun s -> s.Sampler.sm_props_s));
      spark_row ~name:"learnt clauses" ~unit_:""
        (per_series (fun s -> float_of_int s.Sampler.sm_learnts));
      spark_row ~name:"AIG nodes" ~unit_:""
        (per_series (fun s -> float_of_int s.Sampler.sm_aig_nodes));
      spark_row ~name:"heap words" ~unit_:""
        (per_series (fun s -> float_of_int s.Sampler.sm_heap_words));
    ]
    |> List.filter (fun b -> b <> "")
  in
  if blocks = [] then begin
    (* A blank time-series section usually means an instrumentation
       regression (sampler never enabled, poll sites unplugged), not an
       uninteresting run — say so in the flight log too. *)
    if !Sampler.enabled then
      Log.warn "obs.report.empty_series"
        [ ("hint", Log.Str "sampler enabled but no samples recorded") ];
    "<p class=\"sub\">no samples recorded (sampler off or run too short)</p>"
  end
  else {|<div class="sparks">|} ^ String.concat "" blocks ^ "</div>"

(* -- cross-run history ----------------------------------------------------- *)

(* One row per tracked metric: sparkline over the ledger values with
   this run appended, the noise band, and where this run landed.
   Counters are shown only when they left the band — fifty flat counter
   rows would bury the signal. *)
let history_html history cur =
  let payloads = List.filter_map History.run_of history in
  if payloads = [] then ""
  else
    let deltas = Diff.compare_history ~history:payloads ~cur () in
    let shown =
      List.filter
        (fun d ->
          Diff.gated d.Diff.dl_metric
          || d.Diff.dl_verdict = Diff.Regressed
          || d.Diff.dl_verdict = Diff.Improved)
        deltas
    in
    if shown = [] then ""
    else
      let verdict_cell = function
        | Diff.Regressed -> {|<span class="st st-crit">&#10007; regressed</span>|}
        | Diff.Improved -> {|<span class="st st-ok">&#10003; improved</span>|}
        | Diff.Within -> {|<span class="st st-skip">within band</span>|}
        | Diff.Insufficient ->
            {|<span class="st st-skip">insufficient history</span>|}
        | Diff.Fresh -> {|<span class="st st-warn">new metric</span>|}
      in
      let history_metrics = List.map Diff.metrics_of_payload payloads in
      let row d =
        let name = d.Diff.dl_metric in
        let values =
          List.filter_map (List.assoc_opt name) history_metrics
          @ [ d.Diff.dl_cur ]
        in
        let band_cell =
          match d.Diff.dl_band with
          | Some b when b.Diff.bd_n >= 2 ->
              Printf.sprintf "%s&nbsp;&hellip;&nbsp;%s" (humanize b.Diff.bd_lo)
                (humanize b.Diff.bd_hi)
          | _ -> "&ndash;"
        in
        Printf.sprintf
          {|<tr%s><td><code>%s</code></td><td>%s</td><td class="num">%s</td><td class="num">%s</td><td>%s</td></tr>|}
          (if d.Diff.dl_verdict = Diff.Regressed then
             {| class="hist-regressed"|}
           else "")
          (html_escape name)
          (sparkline_svg [ values ])
          band_cell
          (humanize d.Diff.dl_cur)
          (verdict_cell d.Diff.dl_verdict)
      in
      Printf.sprintf
        {|<h2>History (%d archived runs)</h2>
<table><tr><th>metric</th><th>trend</th><th>noise band</th><th>this run</th><th>verdict</th></tr>%s</table>|}
        (List.length payloads)
        (String.concat "" (List.map row shown))

let html ~title ~cmdline ~history ~now =
  let metrics = Metrics.to_json () in
  let rows = cases () in
  let count st = List.length (List.filter (fun r -> r.rc_status = st) rows) in
  let find name =
    match Json.member "counters" metrics with
    | Some c -> (
        match Json.member name c with
        | Some j -> Option.value ~default:0 (Json.to_int_opt j)
        | None -> 0)
    | None -> 0
  in
  let tiles =
    [
      tile ~k:"wall time" ~v:(Printf.sprintf "%.1fs" (now -. !started));
      tile ~k:"cases ok" ~v:(string_of_int (count Ok));
      tile ~k:"unknown" ~v:(string_of_int (count Unknown));
      tile ~k:"failed" ~v:(string_of_int (count Failed));
      tile ~k:"resumed" ~v:(string_of_int (count Skipped));
      tile ~k:"conflicts" ~v:(humanize (float_of_int (find "sat.conflicts")));
      tile ~k:"propagations"
        ~v:(humanize (float_of_int (find "sat.propagations")));
    ]
  in
  let trace_dropped = Trace.dropped () in
  let log_dropped = Log.dropped () in
  Printf.sprintf
    {|<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>%s</title>%s</head>
<body class="viz-root">
<h1>%s</h1>
<p class="sub">generated %s · <code>%s</code></p>
<div class="tiles">%s</div>
<h2>Time series</h2>
%s
%s
<h2>Cases</h2>
%s
<h2>Phase timers</h2>
%s
<h2>Histograms</h2>
%s
<h2>Counters</h2>
%s
<h2>Event log (tail)</h2>
%s
<p class="foot">trace events dropped: %d · log records overwritten: %d · sepe-sqed flight recorder</p>
</body></html>
|}
    (html_escape title) style (html_escape title)
    (let tm = Unix.gmtime now in
     Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
       (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
       tm.Unix.tm_sec)
    (html_escape cmdline)
    (String.concat "" tiles)
    (sparks_html ())
    (history_html history (run_json ~title ~cmdline ~now))
    (cases_table rows) (timers_table metrics)
    (histograms_table metrics) (counters_table metrics) (log_tail_html ())
    trace_dropped log_dropped

let sidecar_path path =
  let base =
    if Filename.check_suffix path ".html" then Filename.chop_suffix path ".html"
    else path
  in
  base ^ ".json"

let write ?(title = "sepe-sqed run") ?(cmdline = "") ?(history = []) ~path () =
  let now = Unix.gettimeofday () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (html ~title ~cmdline ~history ~now));
  let side = sidecar_path path in
  let oc = open_out side in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (run_json ~title ~cmdline ~now));
      output_char oc '\n');
  side
