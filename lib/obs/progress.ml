(* Live campaign status line.

   One global campaign at a time, guarded by a mutex; heartbeats are
   throttled per domain (tick mask + a 100ms window) before they touch
   the lock, so per-check-point cost stays negligible. Rendering
   rewrites a single stderr line with \r + erase-to-EOL. *)

let enabled = ref false

(* Set only while a campaign is active *and* [enabled]; [beat]'s fast
   path is this single boolean load. *)
let active = ref false

type state = {
  mutable label : string;
  mutable total : int;
  mutable done_ : int;
  mutable sum_dur : float;
  mutable t0 : float;
  mutable task_budget : float; (* seconds; 0 = unknown *)
  mutable jobs : int;
  mutable out : out_channel;
  mutable last_render : float;
  (* In-flight tasks: domain id -> (worker slot, last heartbeat). *)
  inflight : (int, int * float) Hashtbl.t;
  (* Worker slots already flagged as stalled (warn once each). *)
  stalled : (int, unit) Hashtbl.t;
}

let mu = Mutex.create ()

let st =
  {
    label = "";
    total = 0;
    done_ = 0;
    sum_dur = 0.0;
    t0 = 0.0;
    task_budget = 0.0;
    jobs = 1;
    out = stderr;
    last_render = 0.0;
    inflight = Hashtbl.create 8;
    stalled = Hashtbl.create 8;
  }

let stall_factor = 2.0

let eta ~done_ ~total ~sum_dur ~jobs =
  if done_ <= 0 then None
  else
    let mean = sum_dur /. float_of_int done_ in
    let remaining = max 0 (total - done_) in
    Some (mean *. float_of_int remaining /. float_of_int (max 1 jobs))

let fmt_secs s =
  if s < 60.0 then Printf.sprintf "%.1fs" s
  else Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)

(* Call with [mu] held. *)
let line_locked now =
  if not !active then ""
  else begin
    let eta_s =
      match
        eta ~done_:st.done_ ~total:st.total ~sum_dur:st.sum_dur ~jobs:st.jobs
      with
      | None -> "--"
      | Some s -> "~" ^ fmt_secs s
    in
    let n_stalled =
      if st.task_budget <= 0.0 then 0
      else
        Hashtbl.fold
          (fun _ (_, hb) acc ->
            if now -. hb > stall_factor *. st.task_budget then acc + 1 else acc)
          st.inflight 0
    in
    Printf.sprintf "[%s] %d/%d done | elapsed %s | eta %s | %d running%s"
      st.label st.done_ st.total
      (fmt_secs (now -. st.t0))
      eta_s
      (Hashtbl.length st.inflight)
      (if n_stalled > 0 then Printf.sprintf " | %d STALLED?" n_stalled else "")
  end

let render_line () =
  Mutex.lock mu;
  let s = line_locked (Unix.gettimeofday ()) in
  Mutex.unlock mu;
  s

(* Call with [mu] held. *)
let render_locked now =
  if now -. st.last_render >= 0.15 then begin
    st.last_render <- now;
    (* Warn once per worker slot that crosses the stall threshold. *)
    if st.task_budget > 0.0 then
      Hashtbl.iter
        (fun _dom (w, hb) ->
          if
            now -. hb > stall_factor *. st.task_budget
            && not (Hashtbl.mem st.stalled w)
          then begin
            Hashtbl.replace st.stalled w ();
            Log.warn "obs.progress.stall"
              [
                ("worker", Log.I w);
                ("silent_s", Log.F (now -. hb));
                ("budget_s", Log.F st.task_budget);
              ]
          end)
        st.inflight;
    output_string st.out ("\r\027[K" ^ line_locked now);
    flush st.out
  end

let task_begin w =
  if !active then begin
    let now = Unix.gettimeofday () in
    Mutex.lock mu;
    Hashtbl.replace st.inflight (Domain.self () :> int) (w, now);
    render_locked now;
    Mutex.unlock mu
  end

let task_end dur =
  if !active then begin
    let now = Unix.gettimeofday () in
    Mutex.lock mu;
    Hashtbl.remove st.inflight (Domain.self () :> int);
    st.done_ <- st.done_ + 1;
    st.sum_dur <- st.sum_dur +. dur;
    (* A finished case always repaints, budget throttle aside. *)
    st.last_render <- 0.0;
    render_locked now;
    Mutex.unlock mu
  end

(* Per-domain beat throttle: a cheap racy tick counter keeps the clock
   read off the per-term bit-blast path; the 100ms window keeps the
   mutex off the per-1024-conflicts path. *)
let beat_tick = ref 0
let beat_last_key = Domain.DLS.new_key (fun () -> ref 0.0)

let beat () =
  if !active then begin
    incr beat_tick;
    if !beat_tick land 255 = 0 then begin
      let last = Domain.DLS.get beat_last_key in
      let now = Unix.gettimeofday () in
      if now -. !last >= 0.1 then begin
        last := now;
        Mutex.lock mu;
        let dom = (Domain.self () :> int) in
        (match Hashtbl.find_opt st.inflight dom with
        | Some (w, _) -> Hashtbl.replace st.inflight dom (w, now)
        | None -> ());
        render_locked now;
        Mutex.unlock mu
      end
    end
  end

let start ?(out = stderr) ?(task_budget = 0.0) ?(jobs = 1) ~total label =
  Mutex.lock mu;
  st.label <- label;
  st.total <- total;
  st.done_ <- 0;
  st.sum_dur <- 0.0;
  st.t0 <- Unix.gettimeofday ();
  st.task_budget <- task_budget;
  st.jobs <- jobs;
  st.out <- out;
  st.last_render <- 0.0;
  Hashtbl.reset st.inflight;
  Hashtbl.reset st.stalled;
  active := true;
  Mutex.unlock mu

let finish () =
  Mutex.lock mu;
  if !active then begin
    active := false;
    output_string st.out "\r\027[K";
    flush st.out
  end;
  Mutex.unlock mu

let with_campaign ?out ?task_budget ?jobs ~total label f =
  if (not !enabled) || !active || total <= 0 then f ()
  else begin
    start ?out ?task_budget ?jobs ~total label;
    Fun.protect ~finally:finish f
  end
