(** Live campaign telemetry: a single rewriting TTY status line showing
    cases done/total, ETA, in-flight workers and stall warnings.

    A campaign is opened with {!with_campaign} around a pool fan-out;
    [Pool] marks task boundaries with {!task_begin}/{!task_end}, and
    the cooperative check points inside solver code call {!beat} so a
    worker grinding through one long solve still proves liveness. ETA
    is projected from completed-case durations ({!eta}); a worker whose
    last heartbeat is older than [stall_factor ×] the per-case budget
    is flagged as stalled and logged once through {!Log}.

    Everything is inert until {!enabled} is set (the [--progress] flag)
    and a campaign is active: {!beat} then costs one boolean load plus
    a tick-masked clock read. The line renders to stderr so it never
    corrupts piped stdout output. *)

val enabled : bool ref
(** Master switch, flipped by [--progress]. *)

val with_campaign :
  ?out:out_channel ->
  ?task_budget:float ->
  ?jobs:int ->
  total:int ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_campaign ~total label f] runs [f] with a live status line
    (cleared on exit, even on exceptions). [task_budget] is the
    per-case budget in seconds, used for stall detection; [jobs] the
    worker count, used by the ETA projection. Nested calls and calls
    with {!enabled} unset run [f] unchanged. *)

val task_begin : int -> unit
(** Mark the calling domain as running a task on worker slot [w]. *)

val task_end : float -> unit
(** Mark a case complete with its duration in seconds. *)

val beat : unit -> unit
(** Heartbeat from a cooperative check point; also refreshes the
    rendered line (throttled). Safe from any domain at any time. *)

val eta : done_:int -> total:int -> sum_dur:float -> jobs:int -> float option
(** Projected seconds remaining given [done_] completed cases taking
    [sum_dur] seconds in total across [jobs] parallel workers; [None]
    until the first case completes. Pure — unit-tested directly. *)

val render_line : unit -> string
(** Current status line (without the carriage-return prefix); exposed
    for tests. Empty when no campaign is active. *)
