(* Pure run-vs-run and run-vs-history comparison.

   The noise band is median +- max(k*MAD, rel_floor*|median|, abs_floor):
   MAD gives robustness against one outlier run in the history, the
   relative floor keeps a degenerate MAD (identical history values, or
   a 2-entry history) from flagging ordinary jitter, and the absolute
   floor stops sub-second experiments from tripping on scheduler noise. *)

type band = {
  bd_median : float;
  bd_mad : float;
  bd_lo : float;
  bd_hi : float;
  bd_n : int;
}

let median vs =
  match List.sort compare vs with
  | [] -> Float.nan
  | sorted ->
      let n = List.length sorted in
      if n land 1 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let band ?(k = 4.0) ?(rel_floor = 0.35) ?(abs_floor = 0.0) vs =
  match List.filter (fun v -> Float.is_finite v) vs with
  | [] -> None
  | vs ->
      let m = median vs in
      let mad = median (List.map (fun v -> abs_float (v -. m)) vs) in
      let half =
        Float.max (k *. mad) (Float.max (rel_floor *. abs_float m) abs_floor)
      in
      Some
        {
          bd_median = m;
          bd_mad = mad;
          bd_lo = m -. half;
          bd_hi = m +. half;
          bd_n = List.length vs;
        }

type verdict = Improved | Within | Regressed | Insufficient | Fresh

type delta = {
  dl_metric : string;
  dl_base : float;
  dl_cur : float;
  dl_band : band option;
  dl_verdict : verdict;
}

let delta_pct d =
  if Float.is_finite d.dl_base && d.dl_base <> 0.0 && Float.is_finite d.dl_cur
  then Some ((d.dl_cur -. d.dl_base) /. d.dl_base *. 100.0)
  else None

(* -- payload flattening --------------------------------------------------- *)

let metrics_of_payload j =
  let experiments =
    match Json.member "experiments" j with
    | Some (Json.List exps) ->
        List.concat_map
          (fun e ->
            match
              Option.bind (Json.member "name" e) Json.to_string_opt
            with
            | Some name ->
                List.filter_map
                  (fun key ->
                    Option.map
                      (fun v -> (Printf.sprintf "exp.%s.%s" name key, v))
                      (Option.bind (Json.member key e) Json.to_float_opt))
                  [ "wall_s"; "clauses"; "conflicts" ]
            | None -> [])
          exps
    | _ -> []
  in
  let run_wall =
    match Option.bind (Json.member "wall_s" j) Json.to_float_opt with
    | Some w -> [ ("run.wall_s", w) ]
    | None -> []
  in
  let registry prefix section =
    match Option.bind (Json.member "metrics" j) (Json.member section) with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (name, v) ->
            Option.map (fun f -> (prefix ^ name, f)) (Json.to_float_opt v))
          kvs
    | _ -> []
  in
  experiments @ run_wall
  @ registry "counter." "counters"
  @ registry "gauge." "gauges"

let gated name =
  name = "run.wall_s"
  || String.length name > 4
     && String.sub name 0 4 = "exp."

(* -- comparisons ---------------------------------------------------------- *)

let compare_runs ?(rel_floor = 0.35) ~base ~cur () =
  let base_metrics = metrics_of_payload base in
  List.map
    (fun (name, v) ->
      match List.assoc_opt name base_metrics with
      | None ->
          {
            dl_metric = name;
            dl_base = Float.nan;
            dl_cur = v;
            dl_band = None;
            dl_verdict = Fresh;
          }
      | Some b ->
          let verdict =
            if not (gated name) then Within
            else if v > b +. (rel_floor *. abs_float b) then Regressed
            else if v < b -. (rel_floor *. abs_float b) then Improved
            else Within
          in
          {
            dl_metric = name;
            dl_base = b;
            dl_cur = v;
            dl_band = None;
            dl_verdict = verdict;
          })
    (metrics_of_payload cur)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

(* The history floor is wider than the A/B one: fig3 --fast wall spans
   39-54s across identical same-machine runs (worse under CI load), and
   with a short history MAD is too small to absorb that, so the relative
   floor alone must cover the documented jitter with margin. *)
let compare_history ?k ?(rel_floor = 0.6) ?(abs_floor = 1.0) ?(window = 20)
    ?(min_history = 2) ~history ~cur () =
  let history = List.map metrics_of_payload (last_n window history) in
  List.map
    (fun (name, v) ->
      let baseline = List.filter_map (List.assoc_opt name) history in
      match band ?k ~rel_floor ~abs_floor baseline with
      | None ->
          {
            dl_metric = name;
            dl_base = Float.nan;
            dl_cur = v;
            dl_band = None;
            dl_verdict = Fresh;
          }
      | Some b ->
          let verdict =
            if b.bd_n < min_history then Insufficient
            else if v > b.bd_hi then Regressed
            else if v < b.bd_lo then Improved
            else Within
          in
          {
            dl_metric = name;
            dl_base = b.bd_median;
            dl_cur = v;
            dl_band = Some b;
            dl_verdict = verdict;
          })
    (metrics_of_payload cur)

let regressions ds =
  List.filter (fun d -> gated d.dl_metric && d.dl_verdict = Regressed) ds

(* -- rendering ------------------------------------------------------------ *)

let verdict_name = function
  | Improved -> "improved"
  | Within -> "within"
  | Regressed -> "REGRESSED"
  | Insufficient -> "insufficient-history"
  | Fresh -> "new"

let fmt_v v =
  if not (Float.is_finite v) then "-"
  else if abs_float v >= 1e6 then Printf.sprintf "%.3g" v
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let to_string d =
  let pct =
    match delta_pct d with
    | Some p -> Printf.sprintf "%+6.1f%%" p
    | None -> "      -"
  in
  let band_str =
    match d.dl_band with
    | Some b ->
        Printf.sprintf " band [%s, %s] over %d" (fmt_v b.bd_lo) (fmt_v b.bd_hi)
          b.bd_n
    | None -> ""
  in
  Printf.sprintf "%-28s %12s -> %12s %s  %s%s" d.dl_metric (fmt_v d.dl_base)
    (fmt_v d.dl_cur) pct (verdict_name d.dl_verdict) band_str
