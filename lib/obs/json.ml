(* Minimal JSON: enough to emit every observability artifact (metrics
   snapshots, Chrome trace events) and to re-parse them with a *checked*
   parser, so tests and the @obs-smoke alias can validate emitted files
   without an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ---------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.3f" f)
  | String s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add_into buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          add_into buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add_into buf j;
  Buffer.contents buf

(* -- checked parsing ---------------------------------------------------- *)

exception Bad of string * int

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Encode the code point as UTF-8 (surrogates are kept as-is
                 bytes-wise; trace/metrics emitters never produce them). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control char in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail ("bad number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing data at offset %d" !pos)
    else Ok v
  with Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

(* -- accessors ----------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
