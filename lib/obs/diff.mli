(** Pure differential engine over archived run payloads.

    Compares two runs, or one run against the history a ledger holds,
    metric by metric.  Metrics are extracted uniformly from both
    payload shapes the ledger archives — bench summaries
    ([exp.<name>.wall_s/clauses/conflicts] per experiment record) and
    flight-recorder sidecars ([run.wall_s]) — plus every metrics
    counter as [counter.<name>] and every gauge as [gauge.<name>].

    History comparisons are gated through a robust noise band: median
    {m \pm} [k]·MAD over the last [window] config-compatible entries,
    widened to a relative floor so a degenerate MAD (identical history
    values) or a short history does not turn ordinary jitter into a
    false regression.  The band needs at least [min_history] points;
    below that, gated metrics report {!Insufficient} and the sentinel
    passes — archaeology needs history before it can gate.

    Everything here is pure (no clock, no filesystem): callers load
    the ledger with {!History.load} and hand the payloads over. *)

(** {1 Noise bands} *)

type band = {
  bd_median : float;
  bd_mad : float;  (** median absolute deviation from [bd_median] *)
  bd_lo : float;
  bd_hi : float;
  bd_n : int;  (** history points the band was computed over *)
}

val median : float list -> float
(** Median of a non-empty list; [nan] on an empty one. *)

val band : ?k:float -> ?rel_floor:float -> ?abs_floor:float ->
  float list -> band option
(** [band vs] is the noise band of the finite values in [vs]:
    half-width [max (k *. mad) (rel_floor *. |median|) abs_floor]
    around the median.  Defaults: [k = 4.0], [rel_floor = 0.35],
    [abs_floor = 0.0].  [None] when no finite values remain (empty
    history, all-NaN baselines). *)

(** {1 Deltas} *)

(** Where the current value landed relative to the baseline. *)
type verdict =
  | Improved  (** below the band — faster/smaller than history *)
  | Within  (** inside the band, or an ungated two-run delta *)
  | Regressed  (** above the band (or threshold): the sentinel trips *)
  | Insufficient  (** fewer than [min_history] usable baseline points *)
  | Fresh  (** metric absent from the baseline entirely *)

type delta = {
  dl_metric : string;
  dl_base : float;  (** other run's value, or the history median; [nan] when {!Fresh} *)
  dl_cur : float;
  dl_band : band option;  (** present for history comparisons *)
  dl_verdict : verdict;
}

val delta_pct : delta -> float option
(** Relative change [(cur - base) / base * 100.], when the base is
    finite and nonzero. *)

val metrics_of_payload : Json.t -> (string * float) list
(** Flatten a run payload into named metrics (see the module
    preamble).  Unknown shapes flatten to an empty list. *)

val gated : string -> bool
(** Is this metric in the sentinel's gate set?  Wall seconds, clauses
    and conflicts per experiment plus the whole-run wall — the
    headline performance claims.  Counter deltas are reported but
    never fail a run: too many of them legitimately track workload
    growth. *)

val compare_runs : ?rel_floor:float -> base:Json.t -> cur:Json.t ->
  unit -> delta list
(** Two-run A/B diff: every metric of [cur] against the same metric of
    [base].  Gated metrics more than [rel_floor] (default 0.35) above
    the base are {!Regressed}, more than [rel_floor] below {!Improved};
    everything else {!Within}.  Metrics missing from [base] are
    {!Fresh}. *)

val compare_history : ?k:float -> ?rel_floor:float -> ?abs_floor:float ->
  ?window:int -> ?min_history:int ->
  history:Json.t list -> cur:Json.t -> unit -> delta list
(** [cur] against the noise bands of the last [window] (default 20)
    payloads of [history] (oldest first).  [min_history] (default 2)
    is the fewest baseline points a gated verdict needs;
    [abs_floor] defaults to [1.0] — one second or one unit, below
    which nothing is worth flagging — and [rel_floor] to [0.6],
    wider than the A/B default because the documented fig3 wall
    jitter (39–54s across identical runs, worse under CI load) must
    fit inside the band even while the history is too short for MAD
    to absorb it. *)

val regressions : delta list -> delta list
(** The deltas that should fail a gated run: {!Regressed} verdicts on
    {!gated} metrics. *)

val to_string : delta -> string
(** One aligned human-readable line: metric, baseline, current, change
    and verdict. *)
