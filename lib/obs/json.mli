(** Minimal JSON printer + checked parser used by the observability layer.

    The parser is intentionally strict: it rejects trailing garbage, raw
    control characters in strings, and malformed escapes, so it doubles as
    the validator for emitted trace/metrics files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val parse : string -> (t, string) result
(** Parse a complete JSON document. [Error msg] carries a byte offset. *)

val member : string -> t -> t option
(** [member k j] is the value bound to [k] when [j] is an object. *)

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts [Float] and [Int] (integral floats round-trip as either). *)

val to_string_opt : t -> string option
