(* Structured event log with an always-on bounded ring.

   Same shape as [Trace]: each domain appends to its own ring buffer
   (registered in a global list that outlives the domain) so emission
   takes no lock; [tail] merges and sorts on demand. The sink is the
   only shared mutable channel and is written under a mutex. *)

type level = Debug | Info | Warn | Error

let int_of_level = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type field = Str of string | I of int | F of float | B of bool

type event = {
  lg_ts : float;
  lg_dom : int;
  lg_level : level;
  lg_ev : string;
  lg_fields : (string * field) list;
}

let m_records = Metrics.counter "obs.log.records"
let m_dropped = Metrics.counter "obs.log.dropped"

let epoch = ref (Unix.gettimeofday ())

(* Records at [capture_level] or above reach the ring.  Info+ is always
   on (the ring exists precisely so a crash has something to dump); the
   threshold only drops to Debug while a Debug sink is attached. *)
let capture_level = ref (int_of_level Info)
let logs lvl = int_of_level lvl >= !capture_level

(* -- per-domain rings ---------------------------------------------------- *)

let ring_capacity = 512

type ring = {
  r_dom : int;
  mutable r_buf : event array; (* [||] until the first push *)
  mutable r_next : int;
  mutable r_count : int; (* total pushes, may exceed the cap *)
}

let rings_mu = Mutex.create ()
let rings : ring list ref = ref []

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        { r_dom = (Domain.self () :> int); r_buf = [||]; r_next = 0; r_count = 0 }
      in
      Mutex.lock rings_mu;
      rings := r :: !rings;
      Mutex.unlock rings_mu;
      r)

let push r ev =
  if Array.length r.r_buf = 0 then r.r_buf <- Array.make ring_capacity ev
  else begin
    if r.r_count >= ring_capacity then Metrics.add_always m_dropped 1;
    r.r_buf.(r.r_next) <- ev
  end;
  r.r_next <- (r.r_next + 1) mod ring_capacity;
  r.r_count <- r.r_count + 1

let kept r =
  if r.r_count >= Array.length r.r_buf then Array.to_list r.r_buf
  else Array.to_list (Array.sub r.r_buf 0 r.r_count)

(* -- sink ---------------------------------------------------------------- *)

let sink_mu = Mutex.create ()
let sink : out_channel option ref = ref None
let sink_is_std = ref false
let sink_level = ref (int_of_level Info)

let field_json = function
  | Str s -> Json.String s
  | I n -> Json.Int n
  | F x -> Json.Float x
  | B b -> Json.Bool b

let to_json e =
  Json.Obj
    [
      ("ts_us", Json.Float e.lg_ts);
      ("dom", Json.Int e.lg_dom);
      ("level", Json.String (level_name e.lg_level));
      ("ev", Json.String e.lg_ev);
      ("fields", Json.Obj (List.map (fun (k, v) -> (k, field_json v)) e.lg_fields));
    ]

let write_sink e =
  Mutex.lock sink_mu;
  (match !sink with
  | Some oc ->
      output_string oc (Json.to_string (to_json e));
      output_char oc '\n';
      if int_of_level e.lg_level >= int_of_level Warn then flush oc
  | None -> ());
  Mutex.unlock sink_mu

let set_sink ?(level = Info) path =
  Mutex.lock sink_mu;
  (match !sink with
  | Some oc ->
      if !sink_is_std then flush oc else close_out_noerr oc
  | None -> ());
  let oc, std = if path = "-" then (stderr, true) else (open_out path, false) in
  sink := Some oc;
  sink_is_std := std;
  sink_level := int_of_level level;
  capture_level := min !capture_level (int_of_level level);
  Mutex.unlock sink_mu

let close_sink () =
  Mutex.lock sink_mu;
  (match !sink with
  | Some oc -> if !sink_is_std then flush oc else close_out_noerr oc
  | None -> ());
  sink := None;
  sink_level := int_of_level Info;
  capture_level := int_of_level Info;
  Mutex.unlock sink_mu

(* -- emission ------------------------------------------------------------ *)

let emit level ev fields =
  let li = int_of_level level in
  if li >= !capture_level then begin
    let e =
      {
        lg_ts = (Unix.gettimeofday () -. !epoch) *. 1e6;
        lg_dom = (Domain.self () :> int);
        lg_level = level;
        lg_ev = ev;
        lg_fields = fields;
      }
    in
    push (Domain.DLS.get ring_key) e;
    Metrics.add_always m_records 1;
    if !sink <> None && li >= !sink_level then write_sink e
  end

let debug ev fields = emit Debug ev fields
let info ev fields = emit Info ev fields
let warn ev fields = emit Warn ev fields
let error ev fields = emit Error ev fields

(* -- ring inspection ----------------------------------------------------- *)

let events ?(min_level = Debug) () =
  Mutex.lock rings_mu;
  let all = List.concat_map kept !rings in
  Mutex.unlock rings_mu;
  let all =
    List.filter (fun e -> int_of_level e.lg_level >= int_of_level min_level) all
  in
  List.sort
    (fun a b ->
      let c = compare a.lg_ts b.lg_ts in
      if c <> 0 then c else compare a.lg_dom b.lg_dom)
    all

let tail ?min_level n =
  let evs = events ?min_level () in
  let len = List.length evs in
  if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs

let dump_tail ?min_level n oc =
  List.iter
    (fun e ->
      output_string oc (Json.to_string (to_json e));
      output_char oc '\n')
    (tail ?min_level n);
  flush oc

let dropped () =
  Mutex.lock rings_mu;
  let d =
    List.fold_left
      (fun acc r -> acc + max 0 (r.r_count - Array.length r.r_buf))
      0 !rings
  in
  Mutex.unlock rings_mu;
  d

let reset () =
  Mutex.lock rings_mu;
  List.iter
    (fun r ->
      r.r_buf <- [||];
      r.r_next <- 0;
      r.r_count <- 0)
    !rings;
  Mutex.unlock rings_mu;
  epoch := Unix.gettimeofday ()
