(* Global metrics registry.

   Counters are the hot path (gate construction, clause pushes, unit
   propagation) so they avoid shared atomics entirely: each domain owns a
   plain-int cell array keyed by a dense counter id (domain-local storage),
   and reads sum across all per-domain stores. Gauges, histograms and
   timers fire orders of magnitude less often and use [Atomic] directly.

   Everything observable is gated on the single [enabled] flag; when it is
   false the per-event cost is one boolean load. *)

let enabled = ref false

let registry_mu = Mutex.create ()

(* -- counters ----------------------------------------------------------- *)

type counter = int

let max_counters = 512
let counter_names = Array.make max_counters ""
let n_counters = ref 0
let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 64

(* Every per-domain store ever created; entries outlive their domain so
   counts from finished workers are never lost. *)
let stores : int array list ref = ref []

let store_key =
  Domain.DLS.new_key (fun () ->
      let a = Array.make max_counters 0 in
      Mutex.lock registry_mu;
      stores := a :: !stores;
      Mutex.unlock registry_mu;
      a)

let counter name =
  Mutex.lock registry_mu;
  let id =
    match Hashtbl.find_opt counter_ids name with
    | Some id -> id
    | None ->
        let id = !n_counters in
        if id >= max_counters then begin
          Mutex.unlock registry_mu;
          invalid_arg ("Metrics.counter: registry full: " ^ name)
        end;
        incr n_counters;
        counter_names.(id) <- name;
        Hashtbl.add counter_ids name id;
        id
  in
  Mutex.unlock registry_mu;
  id

let add_always c n =
  let a = Domain.DLS.get store_key in
  a.(c) <- a.(c) + n

let add c n = if !enabled then add_always c n
let incr c = add c 1

let counter_value c =
  Mutex.lock registry_mu;
  let v = List.fold_left (fun acc a -> acc + a.(c)) 0 !stores in
  Mutex.unlock registry_mu;
  v

let find_counter name =
  Mutex.lock registry_mu;
  let id = Hashtbl.find_opt counter_ids name in
  Mutex.unlock registry_mu;
  match id with None -> 0 | Some c -> counter_value c

(* -- gauges ------------------------------------------------------------- *)

type gauge = { g_name : string; g_value : int Atomic.t }

let gauges : gauge list ref = ref []

let gauge name =
  Mutex.lock registry_mu;
  let g =
    match List.find_opt (fun g -> g.g_name = name) !gauges with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_value = Atomic.make 0 } in
        gauges := g :: !gauges;
        g
  in
  Mutex.unlock registry_mu;
  g

let set g v = if !enabled then Atomic.set g.g_value v

(* -- histograms --------------------------------------------------------- *)

(* Log2 buckets: values <= 1 land in bucket 0; bucket [i] covers
   [2^i, 2^(i+1)). 48 buckets cover any int we will ever observe. *)

let n_buckets = 48

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

let histograms : histogram list ref = ref []

let histogram name =
  Mutex.lock registry_mu;
  let h =
    match List.find_opt (fun h -> h.h_name = name) !histograms with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
          }
        in
        histograms := h :: !histograms;
        h
  in
  Mutex.unlock registry_mu;
  h

let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      Stdlib.incr b
    done;
    min !b (n_buckets - 1)
  end

let observe h v =
  if !enabled then begin
    Atomic.incr h.h_buckets.(bucket_of v);
    Atomic.incr h.h_count;
    ignore (Atomic.fetch_and_add h.h_sum (max 0 v))
  end

let observe_us h us = observe h (int_of_float us)

(* -- timers ------------------------------------------------------------- *)

(* Fed by [Trace.with_span] when metrics are on: one (calls, total_us)
   accumulator per span kind, which is what the phase table reports. *)

type timer = {
  t_name : string;
  t_calls : int Atomic.t;
  t_total_us : int Atomic.t;
}

let timers : timer list ref = ref []

let timer name =
  Mutex.lock registry_mu;
  let t =
    match List.find_opt (fun t -> t.t_name = name) !timers with
    | Some t -> t
    | None ->
        let t =
          { t_name = name; t_calls = Atomic.make 0; t_total_us = Atomic.make 0 }
        in
        timers := t :: !timers;
        t
  in
  Mutex.unlock registry_mu;
  t

let timer_add t us =
  Atomic.incr t.t_calls;
  ignore (Atomic.fetch_and_add t.t_total_us (int_of_float us))

(* -- snapshot ----------------------------------------------------------- *)

let counters_snapshot () =
  Mutex.lock registry_mu;
  let n = !n_counters in
  let sums = Array.make n 0 in
  List.iter
    (fun a ->
      for i = 0 to n - 1 do
        sums.(i) <- sums.(i) + a.(i)
      done)
    !stores;
  let out = List.init n (fun i -> (counter_names.(i), sums.(i))) in
  Mutex.unlock registry_mu;
  List.sort compare out

let to_json () =
  let counters =
    List.map (fun (name, v) -> (name, Json.Int v)) (counters_snapshot ())
  in
  let gauges =
    !gauges
    |> List.map (fun g -> (g.g_name, Json.Int (Atomic.get g.g_value)))
    |> List.sort compare
  in
  let timers =
    !timers
    |> List.map (fun t ->
           let calls = Atomic.get t.t_calls in
           let total = Atomic.get t.t_total_us in
           ( t.t_name,
             Json.Obj
               [
                 ("calls", Json.Int calls);
                 ("total_us", Json.Int total);
                 ( "mean_us",
                   Json.Float
                     (if calls = 0 then 0.0
                      else float_of_int total /. float_of_int calls) );
               ] ))
    |> List.sort compare
  in
  let histograms =
    !histograms
    |> List.map (fun h ->
           let buckets = ref [] in
           for i = n_buckets - 1 downto 0 do
             let c = Atomic.get h.h_buckets.(i) in
             if c > 0 then
               buckets :=
                 Json.Obj [ ("pow2", Json.Int i); ("count", Json.Int c) ]
                 :: !buckets
           done;
           ( h.h_name,
             Json.Obj
               [
                 ("count", Json.Int (Atomic.get h.h_count));
                 ("sum", Json.Int (Atomic.get h.h_sum));
                 ("buckets", Json.List !buckets);
               ] ))
    |> List.sort compare
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("timers", Json.Obj timers);
      ("histograms", Json.Obj histograms);
    ]

let report () =
  let b = Buffer.create 1024 in
  let timers =
    !timers
    |> List.filter (fun t -> Atomic.get t.t_calls > 0)
    |> List.sort (fun a b ->
           compare (Atomic.get b.t_total_us) (Atomic.get a.t_total_us))
  in
  if timers <> [] then begin
    Buffer.add_string b "phase                            calls     total_ms   mean_us\n";
    Buffer.add_string b "-----                            -----     --------   -------\n";
    List.iter
      (fun t ->
        let calls = Atomic.get t.t_calls in
        let total = Atomic.get t.t_total_us in
        Buffer.add_string b
          (Printf.sprintf "%-30s %8d %12.1f %9.1f\n" t.t_name calls
             (float_of_int total /. 1000.)
             (float_of_int total /. float_of_int (max 1 calls))))
      timers
  end;
  let counters = List.filter (fun (_, v) -> v <> 0) (counters_snapshot ()) in
  if counters <> [] then begin
    Buffer.add_string b "\ncounter                                       value\n";
    Buffer.add_string b "-------                                       -----\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-40s %10d\n" name v))
      counters
  end;
  let gauges =
    List.filter (fun g -> Atomic.get g.g_value <> 0) !gauges
    |> List.sort (fun a b -> compare a.g_name b.g_name)
  in
  if gauges <> [] then begin
    Buffer.add_string b "\ngauge                                         value\n";
    Buffer.add_string b "-----                                         -----\n";
    List.iter
      (fun g ->
        Buffer.add_string b
          (Printf.sprintf "%-40s %10d\n" g.g_name (Atomic.get g.g_value)))
      gauges
  end;
  let hists =
    List.filter (fun h -> Atomic.get h.h_count > 0) !histograms
    |> List.sort (fun a b -> compare a.h_name b.h_name)
  in
  if hists <> [] then begin
    Buffer.add_string b
      "\nhistogram                           count        sum      mean\n";
    Buffer.add_string b
      "---------                           -----        ---      ----\n";
    List.iter
      (fun h ->
        let count = Atomic.get h.h_count in
        let sum = Atomic.get h.h_sum in
        Buffer.add_string b
          (Printf.sprintf "%-30s %10d %10d %9.1f\n" h.h_name count sum
             (float_of_int sum /. float_of_int (max 1 count))))
      hists
  end;
  Buffer.contents b

let reset () =
  Mutex.lock registry_mu;
  List.iter (fun a -> Array.fill a 0 (Array.length a) 0) !stores;
  List.iter (fun g -> Atomic.set g.g_value 0) !gauges;
  List.iter
    (fun h ->
      Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0)
    !histograms;
  List.iter
    (fun t ->
      Atomic.set t.t_calls 0;
      Atomic.set t.t_total_us 0)
    !timers;
  Mutex.unlock registry_mu
