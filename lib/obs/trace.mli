(** Span tracer with Chrome [trace_event] export.

    Spans are timing brackets around pipeline phases. When tracing is on,
    each closed span becomes a complete ("ph":"X") event in a per-domain
    buffer; {!export} merges the buffers into a JSON array that opens in
    [chrome://tracing] / Perfetto. When only metrics are on, spans feed
    the per-kind {!Metrics.timer} and no events are stored. When neither
    flag is set, {!with_span} is a single boolean check around [f ()]. *)

val enabled : bool ref
(** Tracing switch (independent of [Metrics.enabled]). *)

type kind
(** A statically-registered span name + category, carrying its phase
    timer. Create once at module-init time. *)

val kind : ?cat:string -> string -> kind
val name_of : kind -> string

val with_span : ?args:(string * string) list -> kind -> (unit -> 'a) -> 'a
(** Run [f] inside a span. Exception-safe: the span closes (and the
    timer records) even if [f] raises. *)

val with_span_named : ?cat:string -> string -> (unit -> 'a) -> 'a
(** Dynamic-name variant for cold paths (e.g. per-experiment brackets). *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : float;  (** microseconds since trace epoch *)
  ev_dur : float;  (** microseconds *)
  ev_tid : int;  (** domain id *)
  ev_depth : int;  (** nesting depth within its domain at begin time *)
  ev_args : (string * string) list;
}

val events : unit -> event list
(** All recorded events, merged across domains, sorted by start time. *)

val dropped : unit -> int
(** Events overwritten because a per-domain ring buffer wrapped (the
    newest events are kept, the oldest evicted). *)

val export : string -> unit
(** Write the Chrome trace JSON array (one event per line) to a file, or
    to stdout when the path is ["-"]. Also surfaces ring evictions: the
    total is added to the [obs.trace.dropped] counter and, when nonzero,
    a [warn] record is emitted through {!Log}. *)

val validate_export : string -> (int, string) result
(** Re-parse an exported trace with the checked JSON parser and verify
    the trace_event shape; [Ok n] is the event count. *)

val reset : unit -> unit
(** Drop all buffered events and restart the trace epoch. *)
