(** Persistent cross-run ledger: an append-only, torn-line-tolerant
    JSONL archive of run records.

    Every archived run is one JSON object per line (schema
    {!schema} = [sepe.ledger/1]) wrapping the run's machine-readable
    payload — a [run.json] flight-recorder snapshot or a bench summary —
    together with environment {!provenance}: git commit and dirty flag,
    hostname, core count, OCaml version and the solver configuration in
    force.  Appends are a single buffered write followed by a flush (the
    same discipline as the [lib/resil] checkpoint journal), so a crash
    can lose at most the line being written; {!load} silently drops a
    torn trailing line and counts it, which keeps a ledger shared by
    interrupted runs safe to keep appending to.

    The ledger is the substrate for the differential engine ({!Diff})
    and the perf-regression sentinel: [bench --baseline] compares the
    run it just finished against the config-compatible tail of a
    ledger, and [sepe runs list|show|compare] browse one from the
    shell. *)

val schema : string
(** The entry schema tag, [sepe.ledger/1]. *)

(** {1 Building entries} *)

val provenance : config:(string * Json.t) list -> unit -> Json.t
(** Environment stamp for a new entry: [git_commit] (short hash, or
    ["unknown"] outside a work tree), [git_dirty], [hostname], [cores]
    (recommended domain count), [ocaml] (compiler version) and the
    caller-supplied [config] object — by convention the
    [{jobs, fast, simplify, aig, portfolio}] knobs that make two runs
    comparable. *)

val entry :
  kind:string -> label:string -> provenance:Json.t -> run:Json.t -> Json.t
(** Wrap a run payload as one ledger entry: [kind] is the producing
    binary (["bench"] or ["sepe"]), [label] the experiment or
    subcommand, [run] the machine-readable payload archived verbatim.
    The entry is stamped with the current wall-clock time. *)

(** {1 The file} *)

val append : string -> Json.t -> unit
(** [append path e] appends [e] as one line to [path] (creating it if
    needed) and flushes.  Raises [Sys_error] when the file cannot be
    opened or written. *)

type loaded = {
  entries : Json.t list;  (** parseable entries, oldest first *)
  dropped : int;  (** torn or malformed lines silently skipped *)
}

val load : string -> loaded
(** Read a ledger back.  A missing file is an empty ledger; a torn
    trailing line (or any unparseable line) is dropped and counted, not
    an error. *)

(** {1 Entry accessors} *)

val run_of : Json.t -> Json.t option
(** The archived run payload of an entry. *)

val config_of : Json.t -> Json.t option
(** The provenance config object of an entry. *)

val compatible : Json.t -> Json.t -> bool
(** [compatible a b] is true when both entries carry a provenance
    config and the configs are structurally equal — the gate that keeps
    the sentinel from comparing, say, a [--no-aig] run against an AIG
    baseline.  Entries without a config are never compatible. *)

val summary_line : int -> Json.t -> string
(** One human-readable line for [sepe runs list]: index, UTC
    timestamp, kind/label, git stamp and headline wall seconds. *)
