(* The synthesis campaign: one equivalent-program synthesis task per
   original instruction, fanned out over a domain pool.  Lives outside
   Engine because Engine is below Hpf/Iterative in the module order. *)

module Pool = Sqed_par.Pool

type engine = Hpf | Iterative

type case_result = { case : string; result : Engine.result }

let run_case ~engine ~options ~library case =
  let spec = Library_.spec case in
  let result =
    match engine with
    | Hpf -> Hpf.synthesize ~options ~spec ~library ()
    | Iterative -> Iterative.synthesize ~options ~spec ~library
  in
  { case; result }

let synthesize_all ?(engine = Hpf) ?jobs ?pool ~options ~library cases =
  let run = run_case ~engine ~options ~library in
  match pool with
  | Some p -> Pool.map p run cases
  | None -> Pool.with_pool ?jobs (fun p -> Pool.map p run cases)
