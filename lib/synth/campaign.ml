(* The synthesis campaign: one equivalent-program synthesis task per
   original instruction, fanned out over a domain pool.  Lives outside
   Engine because Engine is below Hpf/Iterative in the module order. *)

module Pool = Sqed_par.Pool

type engine = Hpf | Iterative

type case_result = { case : string; result : Engine.result }

let run_case ~engine ~options ~library case =
  let spec = Library_.spec case in
  let result =
    match engine with
    | Hpf -> Hpf.synthesize ~options ~spec ~library ()
    | Iterative -> Iterative.synthesize ~options ~spec ~library
  in
  { case; result }

let synthesize_all ?(engine = Hpf) ?jobs ?pool ~options ~library cases =
  let run = run_case ~engine ~options ~library in
  match pool with
  | Some p -> Pool.map p run cases
  | None -> Pool.with_pool ?jobs (fun p -> Pool.map p run cases)

type case_verdict = {
  vcase : string;
  verdict : Engine.result Sqed_resil.Verdict.t;
}

let synthesize_verdicts ?(engine = Hpf) ?jobs ?pool ?retries ?task_deadline
    ~options ~library cases =
  let run = run_case ~engine ~options ~library in
  let go p = Pool.map_result p ?retries ?task_deadline run cases in
  let results =
    (* Campaign-level progress: a single rewriting status line when
       --progress is on; a no-op (and no nesting conflict when a caller
       such as fig3 already opened one) otherwise. *)
    Sqed_obs.Progress.with_campaign
      ?task_budget:task_deadline
      ?jobs:(match pool with Some p -> Some (Pool.jobs p) | None -> jobs)
      ~total:(List.length cases) "synth"
      (fun () ->
        match pool with Some p -> go p | None -> Pool.with_pool ?jobs go)
  in
  List.map2
    (fun case r ->
      match r with
      | Ok { result; _ } -> { vcase = case; verdict = Sqed_resil.Verdict.Ok result }
      | Error (e : Pool.task_error) ->
          let msg = Printf.sprintf "%s (attempts: %d)" e.Pool.error e.Pool.attempts in
          if e.Pool.exhausted then
            { vcase = case; verdict = Sqed_resil.Verdict.Unknown msg }
          else { vcase = case; verdict = Sqed_resil.Verdict.Failed msg })
    cases results
