(** Loop-free dataflow programs over library components.

    A program is an ordered list of lines; each line applies one component
    to arguments that are either program inputs or outputs of earlier lines
    (the linear-order location discipline of Gulwani et al.).  The output
    of the last line is the program output. *)

module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term

type arg = Input of int | Line of int

type line = {
  comp : Component.t;
  args : arg list;  (** one per component input, in order *)
  attr_values : Bv.t list;  (** one per component attribute *)
}

type t = {
  spec_inputs : Component.input_kind list;
  lines : line list;
}

val n_components : t -> int

val n_insns : t -> int
(** Instructions after expansion of every component. *)

val components : t -> Component.t list

val sem : xlen:int -> t -> Term.t list -> Term.t
(** Symbolic output given terms for the program inputs. *)

val eval : xlen:int -> t -> Bv.t list -> Bv.t
(** Concrete evaluation (via constant terms). *)

val to_insns :
  xlen:int ->
  t ->
  dst:int ->
  inputs:[ `Reg of int | `Imm of int ] list ->
  temps:int list ->
  Sqed_isa.Insn.t list
(** Compile to an instruction sequence.  Line outputs and component-internal
    scratch values draw distinct registers from [temps]; the final line
    writes [dst] exactly once.  Raises [Failure] if [temps] is too short. *)

val temps_needed : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
