(** Parallel synthesis campaigns: fans one HPF-CEGIS (or iterative-CEGIS)
    run per original instruction out to a {!Sqed_par.Pool} of worker
    domains.  Each task builds its own solver and term universe (terms are
    domain-local, see {!Sqed_smt.Term}), so tasks share nothing and the
    campaign scales with cores.  Results come back in input order and are
    identical to the sequential path run case by case. *)

type engine = Hpf | Iterative

type case_result = { case : string; result : Engine.result }

val run_case :
  engine:engine ->
  options:Engine.options ->
  library:Component.t list ->
  string ->
  case_result
(** Synthesize one case (an instruction name from {!Library_}). *)

val synthesize_all :
  ?engine:engine ->
  ?jobs:int ->
  ?pool:Sqed_par.Pool.t ->
  options:Engine.options ->
  library:Component.t list ->
  string list ->
  case_result list
(** [synthesize_all ~options ~library cases] synthesizes every case in
    parallel.  [?pool] reuses a caller-owned pool; otherwise a fresh pool
    of [?jobs] workers (default {!Sqed_par.Pool.default_jobs}, i.e. the
    [SEPE_JOBS] environment knob) is created for the call.  A crashing
    case aborts the whole campaign (first exception re-raised); use
    {!synthesize_verdicts} for fault-tolerant campaigns. *)

type case_verdict = {
  vcase : string;
  verdict : Engine.result Sqed_resil.Verdict.t;
}

val synthesize_verdicts :
  ?engine:engine ->
  ?jobs:int ->
  ?pool:Sqed_par.Pool.t ->
  ?retries:int ->
  ?task_deadline:float ->
  options:Engine.options ->
  library:Component.t list ->
  string list ->
  case_verdict list
(** Fault-tolerant variant of {!synthesize_all}: runs every case via
    {!Sqed_par.Pool.map_result} (bounded retries, optional soft per-task
    deadline) and reports a per-case verdict instead of dying on the
    first failure — [Failed] for a crash that survived retries,
    [Unknown] when the task's budget was exhausted.  Results come back
    in input order. *)
