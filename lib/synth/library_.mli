(** The shipped component library (Section 6.1: 29 components — 10 NIC,
    10 DIC, 9 CIC — collectively covering the RV32IM classes), plus one
    immediate-input form ([IMMIN]) that materializes the original
    instruction's immediate field into a register; the paper describes this
    "first form" of I-type components in Section 4.1, and it is required to
    synthesize I-type originals such as XORI whose immediate is universally
    quantified. *)

val nics : Component.t list
(** ADD SUB SLL SLT SLTU XOR SRL SRA OR AND (all operands as inputs). *)

val dics : Component.t list
(** ADDI SLTI SLTIU XORI ORI ANDI SLLI SRLI SRAI LUI with the immediate as
    internal attribute. *)

val cics : Component.t list
(** NEG NOT MULC ADD3 ANDN SMEAR SRACORE MULHUC MHCORR — composites chosen,
    per the paper's CIC rationale, so that every evaluated original
    instruction (including SRA and MULH) has a structurally different
    equivalent within three components. *)

val imm_input : Component.t

val default : Component.t list
(** [nics @ dics @ cics @ [imm_input]] — 30 components. *)

val find : string -> Component.t
(** Look up a component by label; raises [Not_found]. *)

val specs : Component.spec list
(** The original-instruction cases used in the synthesis evaluation
    (Fig. 3): the Table-1 instruction list minus SW (memory instructions
    are transformed by a dedicated rule, not synthesized). *)

val spec : string -> Component.spec
(** Look up a spec by mnemonic (any R-type or I-type ALU instruction). *)
