(** Symbolic-location component-based CEGIS (Gulwani et al.'s encoding):
    the component order and wiring are first-order location variables
    solved together with the internal attributes, so one incremental SMT
    session decides a whole multiset.

    This is the engine behind both the per-multiset [CEGIS(g, S)] call of
    Algorithm 1 (components = the multiset, every component required to be
    used) and the classical whole-library baseline (components = the
    entire library, used once each, dead components allowed). *)

type outcome = Complete | Budget_exhausted

val synthesize :
  config:Cegis.config ->
  spec:Component.spec ->
  components:Component.t list ->
  require_all_used:bool ->
  max_programs:int ->
  ?deadline:float ->
  stats:Cegis.stats ->
  unit ->
  Program.t list * outcome
(** Verified programs, wiring-distinct (each solution's location
    assignment is blocked before searching for the next).  [deadline] is
    an absolute [Unix.gettimeofday] instant. *)
