module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term
module Solver = Sqed_smt.Solver
module Metrics = Sqed_obs.Metrics
module Trace = Sqed_obs.Trace

let sp_multiset = Trace.kind ~cat:"synth" "synth.multiset"
let sp_iter = Trace.kind ~cat:"synth" "cegis.iteration"
let m_iters = Metrics.counter "synth.cegis_iterations"
let m_solver_calls = Metrics.counter "synth.solver_calls"
let m_counterexamples = Metrics.counter "synth.counterexamples"
let m_programs = Metrics.counter "synth.programs_found"
let m_multisets = Metrics.counter "synth.multisets"
let h_multiset_size = Metrics.histogram "synth.multiset_size"

type outcome = Complete | Budget_exhausted

(* Atomic: see Cegis.fresh. *)
let fresh =
  let n = Atomic.make 0 in
  fun prefix -> Printf.sprintf "%s~%d" prefix (Atomic.fetch_and_add n 1)

let loc_width n_locs =
  let rec go k = if 1 lsl k >= n_locs then k else go (k + 1) in
  max 1 (go 1)

let synthesize ~config:cfg ~spec ~components ~require_all_used ~max_programs
    ?deadline ~stats () =
  (* Strengthened input constraint: components named like the specification
     cannot appear in an equivalent program (identity wirings through
     pass-through lines would let the program execute the original
     instruction on the original values).  In multiset mode such multisets
     fail immediately. *)
  if
    require_all_used
    && List.exists
         (fun c -> c.Component.name = spec.Component.g_name)
         components
  then begin
    stats.Cegis.multisets_tried <- stats.Cegis.multisets_tried + 1;
    Metrics.incr m_multisets;
    ([], Complete)
  end
  else begin
  Trace.with_span
    ~args:[ ("size", string_of_int (List.length components)) ]
    sp_multiset
  @@ fun () ->
  Metrics.incr m_multisets;
  Metrics.observe h_multiset_size (List.length components);
  let xlen = cfg.Cegis.xlen in
  let comps = Array.of_list components in
  let n = Array.length comps in
  let spec_inputs = Array.of_list spec.Component.g_inputs in
  let n_in = Array.length spec_inputs in
  let n_locs = n_in + n in
  let lw = loc_width (n_locs + 1) in
  let loc i = Term.of_int ~width:lw i in
  let solver = Solver.create () in
  let assert_ t = Solver.assert_ solver t in
  let l_out = Array.init n (fun _ -> Term.var (fresh "lo") lw) in
  let l_in =
    Array.init n (fun j ->
        Array.of_list
          (List.map (fun _ -> Term.var (fresh "li") lw) comps.(j).Component.inputs))
  in
  let attr_vars =
    Array.init n (fun j ->
        List.map (fun w -> Term.var (fresh "la") w) comps.(j).Component.attrs)
  in
  let imm_input_locs =
    List.concat
      (List.mapi
         (fun i k -> if k = Component.Imm12 then [ i ] else [])
         (Array.to_list spec_inputs))
  in
  let reg_input_locs =
    List.concat
      (List.mapi
         (fun i k -> if k = Component.Reg then [ i ] else [])
         (Array.to_list spec_inputs))
  in
  (* ψ_wfp: output locations are the line slots, pairwise distinct. *)
  Array.iter
    (fun lo ->
      assert_ (Term.ule (loc n_in) lo);
      assert_ (Term.ult lo (loc n_locs)))
    l_out;
  for j = 0 to n - 1 do
    for k = j + 1 to n - 1 do
      assert_ (Term.distinct l_out.(j) l_out.(k))
    done
  done;
  (* Inputs: kind compatibility and acyclicity. *)
  for j = 0 to n - 1 do
    List.iteri
      (fun x kind ->
        let li = l_in.(j).(x) in
        (match kind with
        | Component.Imm12 ->
            assert_
              (Term.disj (List.map (fun i -> Term.eq li (loc i)) imm_input_locs))
        | Component.Reg ->
            let ok =
              List.map (fun i -> Term.eq li (loc i)) reg_input_locs
              @ [ Term.ule (loc n_in) li ]
            in
            assert_ (Term.disj ok);
            assert_ (Term.ult li (loc n_locs)));
        assert_ (Term.ult li l_out.(j)))
      comps.(j).Component.inputs
  done;
  (* The program output is the line at the last location. *)
  let out_loc = n_locs - 1 in
  (* Input constraint (Section 4.1): same-name components must not be wired
     identically to the specification's inputs. *)
  for j = 0 to n - 1 do
    if comps.(j).Component.name = spec.Component.g_name then begin
      let identity =
        List.mapi (fun x _ -> Term.eq l_in.(j).(x) (loc x))
          comps.(j).Component.inputs
      in
      match identity with
      | [] -> ()
      | _ -> assert_ (Term.not_ (Term.conj identity))
    end
  done;
  (* Relevance: in multiset mode every component's output must be read (or
     be the program output), so a size-n multiset yields n-component
     programs — exactly the iterative-CEGIS discipline. *)
  if require_all_used then
    for j = 0 to n - 1 do
      let consumers =
        List.concat
          (List.init n (fun k ->
               if k = j then []
               else
                 Array.to_list
                   (Array.map (fun li -> Term.eq li l_out.(j)) l_in.(k))))
      in
      assert_ (Term.disj (Term.eq l_out.(j) (loc out_loc) :: consumers))
    done;
  (* ψ_conn + φ_lib per example. *)
  let add_example ex =
    let ex = Array.of_list ex in
    let v =
      Array.init n_locs (fun i ->
          if i < n_in then Term.const ex.(i) else Term.var (fresh "lv") xlen)
    in
    let value_at li kind =
      let candidates =
        match kind with
        | Component.Imm12 -> imm_input_locs
        | Component.Reg -> reg_input_locs @ List.init n (fun j -> n_in + j)
      in
      match candidates with
      | [] ->
          (* No compatible source exists (e.g. an Imm12 input with an
             R-type specification): ψ_wfp already forces UNSAT, any value
             of the right width will do here. *)
          Term.of_int ~width:(Component.spec_input_width ~xlen kind) 0
      | first :: rest ->
          List.fold_left
            (fun acc i -> Term.ite (Term.eq li (loc i)) v.(i) acc)
            v.(first) rest
    in
    for j = 0 to n - 1 do
      let args =
        List.mapi
          (fun x kind -> value_at l_in.(j).(x) kind)
          comps.(j).Component.inputs
      in
      let out = comps.(j).Component.sem ~xlen args attr_vars.(j) in
      for p = n_in to n_locs - 1 do
        assert_ (Term.implies (Term.eq l_out.(j) (loc p)) (Term.eq v.(p) out))
      done
    done;
    let spec_out =
      spec.Component.g_sem ~xlen (Array.to_list (Array.map Term.const ex))
    in
    assert_ (Term.eq v.(out_loc) spec_out)
  in
  let decode_model () =
    let order =
      List.sort
        (fun (_, a) (_, b) -> compare a b)
        (List.init n (fun j ->
             (j, Bv.to_int (Solver.model_var solver l_out.(j)))))
    in
    let line_of_loc = Hashtbl.create 16 in
    List.iteri
      (fun line (_, outloc) -> Hashtbl.replace line_of_loc outloc line)
      order;
    let lines =
      List.map
        (fun (j, _) ->
          let args =
            List.mapi
              (fun x _ ->
                let li = Bv.to_int (Solver.model_var solver l_in.(j).(x)) in
                if li < n_in then Program.Input li
                else Program.Line (Hashtbl.find line_of_loc li))
              comps.(j).Component.inputs
          in
          let attrs = List.map (Solver.model_var solver) attr_vars.(j) in
          { Program.comp = comps.(j); args; attr_values = attrs })
        order
    in
    { Program.spec_inputs = spec.Component.g_inputs; lines }
  in
  let block_current_wiring () =
    (* Forbid this exact (order, wiring) assignment. *)
    let eqs = ref [] in
    Array.iter
      (fun lo -> eqs := Term.eq lo (Term.const (Solver.model_var solver lo)) :: !eqs)
      l_out;
    Array.iter
      (fun lis ->
        Array.iter
          (fun li ->
            eqs := Term.eq li (Term.const (Solver.model_var solver li)) :: !eqs)
          lis)
      l_in;
    assert_ (Term.not_ (Term.conj !eqs))
  in
  let over_deadline () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  List.iter add_example (Cegis.initial_examples cfg spec);
  let found = ref [] in
  (* One guess-verify round, bracketed by its own span.  The recursion
     lives in [loop] *outside* the span so nesting depth stays flat — a
     span per iteration, not a span tower. *)
  let step examples_added =
    stats.Cegis.cegis_iterations <- stats.Cegis.cegis_iterations + 1;
    stats.Cegis.solver_calls <- stats.Cegis.solver_calls + 1;
    Metrics.incr m_iters;
    Metrics.incr m_solver_calls;
    match
      Solver.check ?max_conflicts:cfg.Cegis.max_conflicts ?deadline solver
    with
    | Solver.Unsat -> `Done Complete
    | Solver.Unknown -> `Done Budget_exhausted
    | Solver.Sat -> (
        let program = decode_model () in
        stats.Cegis.solver_calls <- stats.Cegis.solver_calls + 1;
        stats.Cegis.verify_calls <- stats.Cegis.verify_calls + 1;
        Metrics.incr m_solver_calls;
        let s2 = Solver.create () in
        let input_vars =
          List.map
            (fun kind ->
              Term.var (fresh "lvin") (Component.spec_input_width ~xlen kind))
            spec.Component.g_inputs
        in
        let lhs = Program.sem ~xlen program input_vars in
        let rhs = spec.Component.g_sem ~xlen input_vars in
        Solver.assert_ s2 (Term.distinct lhs rhs);
        match
          Solver.check ?max_conflicts:cfg.Cegis.max_conflicts ?deadline s2
        with
        | Solver.Unsat ->
            found := program :: !found;
            Metrics.incr m_programs;
            block_current_wiring ();
            `Continue examples_added
        | Solver.Unknown -> `Done Budget_exhausted
        | Solver.Sat ->
            let ex = List.map (Solver.model_var s2) input_vars in
            add_example ex;
            Metrics.incr m_counterexamples;
            `Continue (examples_added + 1))
  in
  let rec loop examples_added =
    if List.length !found >= max_programs then Complete
    else if examples_added > 8 * cfg.Cegis.max_cegis_iters then Budget_exhausted
    else if over_deadline () then Budget_exhausted
    else
      match Trace.with_span sp_iter (fun () -> step examples_added) with
      | `Done outcome -> outcome
      | `Continue examples_added -> loop examples_added
  in
  let outcome = loop 0 in
  stats.Cegis.multisets_tried <- stats.Cegis.multisets_tried + 1;
  (List.rev !found, outcome)
  end
