(** HPF-CEGIS — CEGIS based on the highest priority first (Algorithm 1,
    Section 4.2), the paper's synthesis contribution.

    Each component j carries a choice weight c_j and an exclusion weight
    e_j (both start at 1 and are incremented by 1).  Each round selects the
    pending multiset with the highest priority

    priority = (Σ_j (c_j − α·χ_j)) / (Σ_j e_j)

    where χ_j = 1 when component j has the same name as the original
    instruction g (penalizing datapath overlap).  On a successful
    synthesis, the multiset's components have their choice weights
    increased; on failure, their exclusion weights.  Iteration stops once
    [k] countable programs exist. *)

val priority :
  alpha:int ->
  weights:(string, int * int) Hashtbl.t ->
  g_name:string ->
  Component.t list ->
  float
(** Exposed for tests and ablation benches. *)

(** The multiset pool is [combinations_with_replacement library n_max]
    (the paper's line 5 uses a fixed multiset size); priority ties are
    broken by a seed-shuffled pool order. *)
val synthesize :
  ?alpha:int ->
  options:Engine.options ->
  spec:Component.spec ->
  library:Component.t list ->
  unit ->
  Engine.result
