(** Options and results shared by the three synthesis engines
    (classical/Brahma, iterative, HPF). *)

type options = {
  config : Cegis.config;
  n_max : int;  (** largest multiset size *)
  k : int;  (** stop once this many programs of >= [min_components] exist *)
  min_components : int;
      (** the paper counts only programs "consisting of at least three
          components" towards the early-stop threshold *)
  seed : int;  (** shuffle seed for the iterative baseline *)
  time_budget : float option;  (** wall-clock seconds *)
}

val default_options : options

type result = {
  programs : Program.t list;
  stats : Cegis.stats;
  multisets_total : int;
  elapsed : float;
  budget_exhausted : bool;
}

val countable : options -> Program.t -> bool
(** Does a program count towards [k]? *)

val now : unit -> float

val over_budget : options -> started:float -> bool
