(** Counterexample-guided inductive synthesis over one multiset.

    For every well-formed skeleton of the multiset: if the skeleton has no
    free attributes, a single equivalence query decides it; otherwise the
    classic CEGIS loop alternates finite synthesis (choose attribute values
    consistent with the current example set) and verification (find an
    input on which candidate and specification differ, which becomes a new
    example). *)

module Bv = Sqed_bv.Bv

type stats = {
  mutable solver_calls : int;
  mutable verify_calls : int;
  mutable multisets_tried : int;
  mutable skeletons_tried : int;
  mutable cegis_iterations : int;
}

val mk_stats : unit -> stats

type config = {
  xlen : int;  (** synthesis width *)
  max_cegis_iters : int;  (** examples added before giving up *)
  max_conflicts : int option;  (** per-query SAT effort budget *)
  max_programs_per_multiset : int;
}

val default_config : config

val initial_examples : config -> Component.spec -> Bv.t list list
(** Corner-case and pseudo-random inputs seeding the example set (also used
    by the classical baseline). *)

val verify_equivalence :
  config -> spec:Component.spec -> Program.t -> stats -> bool
(** One-shot check that a fully concrete program matches the specification
    for all inputs. *)

val synthesize_multiset :
  config ->
  spec:Component.spec ->
  multiset:Component.t list ->
  stats ->
  Program.t list
(** All (up to the configured cap) verified programs obtainable from the
    multiset. *)
