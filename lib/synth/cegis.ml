module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term
module Solver = Sqed_smt.Solver
module Metrics = Sqed_obs.Metrics

(* Same registry names as Locsynth: [Metrics.counter] interns by name, so
   both engines share one counter per metric. *)
let m_iters = Metrics.counter "synth.cegis_iterations"
let m_solver_calls = Metrics.counter "synth.solver_calls"
let m_counterexamples = Metrics.counter "synth.counterexamples"
let m_multisets = Metrics.counter "synth.multisets"
let m_skeletons = Metrics.counter "synth.skeletons"

type stats = {
  mutable solver_calls : int;
  mutable verify_calls : int;
  mutable multisets_tried : int;
  mutable skeletons_tried : int;
  mutable cegis_iterations : int;
}

let mk_stats () =
  {
    solver_calls = 0;
    verify_calls = 0;
    multisets_tried = 0;
    skeletons_tried = 0;
    cegis_iterations = 0;
  }

type config = {
  xlen : int;
  max_cegis_iters : int;
  max_conflicts : int option;
  max_programs_per_multiset : int;
}

let default_config =
  {
    xlen = 8;
    max_cegis_iters = 12;
    max_conflicts = Some 200_000;
    max_programs_per_multiset = 4;
  }

(* Atomic so concurrent synthesis tasks on worker domains never mint the
   same variable name (names only need to be unique per solver instance,
   but uniqueness across the process is cheap and simpler to reason about). *)
let fresh =
  let n = Atomic.make 0 in
  fun prefix -> Printf.sprintf "%s!%d" prefix (Atomic.fetch_and_add n 1)

let input_width cfg kind = Component.spec_input_width ~xlen:cfg.xlen kind

(* Fixed plus random example inputs seeding the CEGIS loop. *)
let initial_examples cfg spec =
  let rng = Random.State.make [| 0x5e9e |] in
  let corner w =
    [ Bv.zero w; Bv.one w; Bv.ones w; Bv.min_signed w ]
  in
  let widths = List.map (input_width cfg) spec.Component.g_inputs in
  let fixed =
    List.init 4 (fun i -> List.map (fun w -> List.nth (corner w) i) widths)
  in
  let random = List.init 4 (fun _ -> List.map (Bv.random rng) widths) in
  fixed @ random

let verify_equivalence cfg ~spec program stats =
  stats.verify_calls <- stats.verify_calls + 1;
  stats.solver_calls <- stats.solver_calls + 1;
  Metrics.incr m_solver_calls;
  let inputs =
    List.map
      (fun kind -> Term.var (fresh "vin") (input_width cfg kind))
      spec.Component.g_inputs
  in
  let lhs = Program.sem ~xlen:cfg.xlen program inputs in
  let rhs = spec.Component.g_sem ~xlen:cfg.xlen inputs in
  let r, _ =
    Solver.check_valid ?max_conflicts:cfg.max_conflicts (Term.eq lhs rhs)
  in
  r = Solver.Unsat

(* Verification query that also returns the countermodel inputs. *)
let find_counterexample cfg ~spec program stats =
  stats.solver_calls <- stats.solver_calls + 1;
  Metrics.incr m_solver_calls;
  let s = Solver.create () in
  let input_vars =
    List.map
      (fun kind -> Term.var (fresh "cin") (input_width cfg kind))
      spec.Component.g_inputs
  in
  let lhs = Program.sem ~xlen:cfg.xlen program input_vars in
  let rhs = spec.Component.g_sem ~xlen:cfg.xlen input_vars in
  Solver.assert_ s (Term.distinct lhs rhs);
  match Solver.check ?max_conflicts:cfg.max_conflicts s with
  | Solver.Unsat -> `Equivalent
  | Solver.Sat ->
      Metrics.incr m_counterexamples;
      `Counterexample (List.map (Solver.model_var s) input_vars)
  | Solver.Unknown -> `GaveUp

(* CEGIS over the attribute values of one skeleton. *)
(* Cheap concrete screening: a fully concrete program that disagrees with
   the specification on any seed example cannot be equivalent, and most
   candidates die here without touching the solver. *)
let concretely_plausible cfg ~spec program =
  List.for_all
    (fun ex ->
      let out = Program.eval ~xlen:cfg.xlen program ex in
      let expected =
        Term.eval
          (fun _ -> assert false)
          (spec.Component.g_sem ~xlen:cfg.xlen (List.map Term.const ex))
      in
      Bv.equal out expected)
    (initial_examples cfg spec)

let solve_skeleton cfg ~spec skeleton stats =
  stats.skeletons_tried <- stats.skeletons_tried + 1;
  Metrics.incr m_skeletons;
  let widths = Topology.attr_widths skeleton in
  if widths = [] then begin
    let program = Topology.to_program skeleton [] in
    if not (concretely_plausible cfg ~spec program) then None
    else
      match find_counterexample cfg ~spec program stats with
      | `Equivalent -> Some program
      | `Counterexample _ | `GaveUp -> None
  end
  else begin
    let attr_vars = List.map (fun w -> Term.var (fresh "attr") w) widths in
    let solver = Solver.create () in
    let add_example ex =
      (* Assert P_A(ex) == spec(ex) with the attributes still symbolic:
         build the program semantics over variable attributes by temporary
         substitution through Topology.to_program on constant inputs. *)
      let input_terms = List.map Term.const ex in
      let lhs =
        (* Program.sem needs concrete attribute values; instead rebuild the
           line terms manually with attr variables. *)
        let inputs = Array.of_list input_terms in
        let outs = Array.make (List.length skeleton.Topology.sk_lines) Term.tt in
        let attr_queue = ref attr_vars in
        List.iteri
          (fun i (c, args) ->
            let take_attrs =
              List.map
                (fun _ ->
                  match !attr_queue with
                  | [] -> assert false
                  | a :: rest ->
                      attr_queue := rest;
                      a)
                c.Component.attrs
            in
            let resolve = function
              | Program.Input k -> inputs.(k)
              | Program.Line j -> outs.(j)
            in
            outs.(i) <-
              c.Component.sem ~xlen:cfg.xlen (List.map resolve args) take_attrs)
          skeleton.Topology.sk_lines;
        outs.(Array.length outs - 1)
      in
      let rhs = spec.Component.g_sem ~xlen:cfg.xlen input_terms in
      Solver.assert_ solver (Term.eq lhs rhs)
    in
    List.iter add_example (initial_examples cfg spec);
    let rec loop iters =
      if iters > cfg.max_cegis_iters then None
      else begin
        stats.cegis_iterations <- stats.cegis_iterations + 1;
        stats.solver_calls <- stats.solver_calls + 1;
        Metrics.incr m_iters;
        Metrics.incr m_solver_calls;
        match Solver.check ?max_conflicts:cfg.max_conflicts solver with
        | Solver.Unsat | Solver.Unknown -> None
        | Solver.Sat -> (
            let attr_values = List.map (Solver.model_var solver) attr_vars in
            let program = Topology.to_program skeleton attr_values in
            match find_counterexample cfg ~spec program stats with
            | `Equivalent -> Some program
            | `GaveUp -> None
            | `Counterexample ex ->
                add_example ex;
                loop (iters + 1))
      end
    in
    loop 1
  end

let synthesize_multiset cfg ~spec ~multiset stats =
  stats.multisets_tried <- stats.multisets_tried + 1;
  Metrics.incr m_multisets;
  let skeletons = Topology.enumerate ~spec multiset in
  let rec go acc = function
    | [] -> List.rev acc
    | _ when List.length acc >= cfg.max_programs_per_multiset -> List.rev acc
    | sk :: rest -> (
        match solve_skeleton cfg ~spec sk stats with
        | Some p -> go (p :: acc) rest
        | None -> go acc rest)
  in
  go [] skeletons
