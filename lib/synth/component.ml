module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term
module Insn = Sqed_isa.Insn

type cls = NIC | DIC | CIC

type input_kind = Reg | Imm12

type t = {
  label : string;
  name : string;
  cls : cls;
  inputs : input_kind list;
  attrs : int list;
  sem : xlen:int -> Term.t list -> Term.t list -> Term.t;
  n_temps : int;
  instantiate :
    xlen:int ->
    dst:int ->
    srcs:[ `Reg of int | `Imm of int ] list ->
    attrs:Bv.t list ->
    temps:int list ->
    Insn.t list;
}

let arity c = List.length (List.filter (fun k -> k = Reg) c.inputs)
let imm_arity c = List.length (List.filter (fun k -> k = Imm12) c.inputs)

let cls_name = function NIC -> "NIC" | DIC -> "DIC" | CIC -> "CIC"

let pp fmt c =
  Format.fprintf fmt "%s(%s/%s)" c.label c.name (cls_name c.cls)

type spec = {
  g_name : string;
  g_inputs : input_kind list;
  g_sem : xlen:int -> Term.t list -> Term.t;
}

let spec_input_width ~xlen = function Reg -> xlen | Imm12 -> 12

let spec_of_rop op =
  {
    g_name = Insn.rop_name op;
    g_inputs = [ Reg; Reg ];
    g_sem =
      (fun ~xlen args ->
        match args with
        | [ a; b ] -> Sqed_isa.Semantics.r_result ~xlen op a b
        | _ -> invalid_arg "spec_of_rop: arity");
  }

let spec_of_iop op =
  {
    g_name = Insn.iop_name op;
    g_inputs = [ Reg; Imm12 ];
    g_sem =
      (fun ~xlen args ->
        match args with
        | [ a; imm ] -> Sqed_isa.Semantics.i_result ~xlen op a ~imm
        | _ -> invalid_arg "spec_of_iop: arity");
  }
