let combinations_with_replacement items n =
  let items = Array.of_list items in
  let len = Array.length items in
  if n = 0 then [ [] ]
  else begin
    let out = ref [] in
    (* Non-decreasing index tuples of length n. *)
    let rec go start acc k =
      if k = 0 then out := List.rev acc :: !out
      else
        for i = start to len - 1 do
          go i (items.(i) :: acc) (k - 1)
        done
    in
    go 0 [] n;
    List.rev !out
  end

let up_to items n =
  List.concat_map
    (fun k -> combinations_with_replacement items k)
    (List.init n (fun i -> i + 1))

let count n k =
  let binom n k =
    let k = min k (n - k) in
    let r = ref 1 in
    for i = 1 to k do
      (* Left-to-right product stays integral at every step. *)
      r := !r * (n - k + i) / i
    done;
    !r
  in
  binom (n + k - 1) k

let shuffle ~seed xs =
  let rng = Random.State.make [| seed |] in
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a
