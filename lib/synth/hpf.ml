let priority ~alpha ~weights ~g_name multiset =
  let cs, es =
    List.fold_left
      (fun (cs, es) comp ->
        let c, e =
          match Hashtbl.find_opt weights comp.Component.label with
          | Some w -> w
          | None -> (1, 1)
        in
        let chi = if comp.Component.name = g_name then 1 else 0 in
        (cs + c - (alpha * chi), es + e))
      (0, 0) multiset
  in
  Float.of_int cs /. Float.of_int es

let bump_choice weights multiset =
  List.iter
    (fun comp ->
      let label = comp.Component.label in
      let c, e =
        match Hashtbl.find_opt weights label with Some w -> w | None -> (1, 1)
      in
      Hashtbl.replace weights label (c + 1, e))
    multiset

let bump_exclusion weights multiset =
  List.iter
    (fun comp ->
      let label = comp.Component.label in
      let c, e =
        match Hashtbl.find_opt weights label with Some w -> w | None -> (1, 1)
      in
      Hashtbl.replace weights label (c, e + 1))
    multiset

let g_library_size = Sqed_obs.Metrics.gauge "synth.library_size"

let synthesize ?(alpha = 1) ~options ~spec ~library () =
  let started = Engine.now () in
  let stats = Cegis.mk_stats () in
  Sqed_obs.Metrics.set g_library_size (List.length library);
  (* Line 2: initialize the weight dictionary. *)
  let weights : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun c -> Hashtbl.replace weights c.Component.label (1, 1))
    library;
  (* Algorithm 1 line 5: combinations with replacement at the fixed size
     n (small multisets cannot contribute >=3-component programs anyway);
     ties between equal priorities are broken randomly, mirroring the
     shuffle applied to the iterative baseline. *)
  let pool =
    Array.of_list
      (Multiset.shuffle ~seed:options.Engine.seed
         (Multiset.combinations_with_replacement library options.Engine.n_max))
  in
  let alive = Array.make (Array.length pool) true in
  let remaining = ref (Array.length pool) in
  let g_name = spec.Component.g_name in
  let programs = ref [] in
  let countable_found = ref 0 in
  let exhausted = ref false in
  (* Line 8: iterate, always taking the highest-priority pending multiset. *)
  let continue = ref true in
  while !continue && !remaining > 0 do
    if !countable_found >= options.Engine.k then continue := false
    else if Engine.over_budget options ~started then begin
      exhausted := true;
      continue := false
    end
    else begin
      let best = ref (-1) in
      let best_p = ref neg_infinity in
      Array.iteri
        (fun i ms ->
          if alive.(i) then begin
            let p = priority ~alpha ~weights ~g_name ms in
            if p > !best_p then begin
              best_p := p;
              best := i
            end
          end)
        pool;
      let i = !best in
      alive.(i) <- false;
      decr remaining;
      let ms = pool.(i) in
      let deadline =
        Option.map (fun b -> started +. b) options.Engine.time_budget
      in
      let found, _ =
        Locsynth.synthesize ~config:options.Engine.config ~spec
          ~components:ms ~require_all_used:true
          ~max_programs:options.Engine.config.Cegis.max_programs_per_multiset
          ?deadline ~stats ()
      in
      if found = [] then bump_exclusion weights ms (* line 13 *)
      else begin
        bump_choice weights ms (* line 16 *);
        List.iter
          (fun p ->
            programs := p :: !programs;
            if Engine.countable options p then incr countable_found)
          found
      end
    end
  done;
  {
    Engine.programs = List.rev !programs;
    stats;
    multisets_total = Array.length pool;
    elapsed = Engine.now () -. started;
    budget_exhausted = !exhausted;
  }
