module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term

type arg = Input of int | Line of int

type line = { comp : Component.t; args : arg list; attr_values : Bv.t list }

type t = { spec_inputs : Component.input_kind list; lines : line list }

let n_components p = List.length p.lines

let components p = List.map (fun l -> l.comp) p.lines

let sem ~xlen p input_terms =
  if List.length input_terms <> List.length p.spec_inputs then
    invalid_arg "Program.sem: input arity mismatch";
  let inputs = Array.of_list input_terms in
  let outs = Array.make (List.length p.lines) None in
  List.iteri
    (fun i l ->
      let resolve = function
        | Input k -> inputs.(k)
        | Line j -> (
            match outs.(j) with Some t -> t | None -> assert false)
      in
      let args = List.map resolve l.args in
      let attrs = List.map Term.const l.attr_values in
      outs.(i) <- Some (l.comp.Component.sem ~xlen args attrs))
    p.lines;
  match outs.(Array.length outs - 1) with
  | Some t -> t
  | None -> invalid_arg "Program.sem: empty program"

let eval ~xlen p input_values =
  let term = sem ~xlen p (List.map Term.const input_values) in
  Term.eval (fun _ -> assert false) term

let temps_needed p =
  let internal = List.fold_left (fun acc l -> acc + l.comp.Component.n_temps) 0 p.lines in
  internal + (List.length p.lines - 1)

let n_insns p =
  List.fold_left
    (fun acc l ->
      (* Count instructions by instantiating with placeholder registers. *)
      let comp = l.comp in
      let srcs =
        List.map
          (function Component.Reg -> `Reg 0 | Component.Imm12 -> `Imm 0)
          comp.Component.inputs
      in
      let temps = List.init comp.Component.n_temps (fun _ -> 0) in
      acc
      + List.length
          (comp.Component.instantiate ~xlen:32 ~dst:1 ~srcs
             ~attrs:l.attr_values ~temps))
    0 p.lines

let to_insns ~xlen p ~dst ~inputs ~temps =
  if List.length inputs <> List.length p.spec_inputs then
    invalid_arg "Program.to_insns: input arity mismatch";
  let pool = ref temps in
  let take_temp () =
    match !pool with
    | [] -> failwith "Program.to_insns: temp registers exhausted"
    | t :: rest ->
        pool := rest;
        t
  in
  let inputs = Array.of_list inputs in
  let n = List.length p.lines in
  let line_regs = Array.make n 0 in
  let code = ref [] in
  List.iteri
    (fun i l ->
      let out_reg = if i = n - 1 then dst else take_temp () in
      line_regs.(i) <- out_reg;
      let srcs =
        List.map2
          (fun kind arg ->
            match (kind, arg) with
            | Component.Reg, Input k -> (
                match inputs.(k) with
                | `Reg r -> `Reg r
                | `Imm _ ->
                    failwith "Program.to_insns: register input wired to imm")
            | Component.Reg, Line j -> `Reg line_regs.(j)
            | Component.Imm12, Input k -> (
                match inputs.(k) with
                | `Imm v -> `Imm v
                | `Reg _ ->
                    failwith "Program.to_insns: imm input wired to register")
            | Component.Imm12, Line _ ->
                failwith "Program.to_insns: imm input wired to a line")
          l.comp.Component.inputs l.args
      in
      let internal = List.init l.comp.Component.n_temps (fun _ -> take_temp ()) in
      let insns =
        l.comp.Component.instantiate ~xlen ~dst:out_reg ~srcs
          ~attrs:l.attr_values ~temps:internal
      in
      code := !code @ insns)
    p.lines;
  !code

let arg_to_string = function
  | Input k -> Printf.sprintf "in%d" k
  | Line j -> Printf.sprintf "t%d" j

let to_string p =
  String.concat "; "
    (List.mapi
       (fun i l ->
         let attrs =
           match l.attr_values with
           | [] -> ""
           | vs ->
               "#"
               ^ String.concat ","
                   (List.map (fun v -> string_of_int (Bv.to_signed_int v)) vs)
         in
         Printf.sprintf "t%d = %s%s(%s)" i l.comp.Component.label attrs
           (String.concat ", " (List.map arg_to_string l.args)))
       p.lines)

let pp fmt p = Format.pp_print_string fmt (to_string p)

let equal a b =
  a.spec_inputs = b.spec_inputs
  && List.length a.lines = List.length b.lines
  && List.for_all2
       (fun la lb ->
         la.comp.Component.label = lb.comp.Component.label
         && la.args = lb.args
         && List.for_all2 Bv.equal la.attr_values lb.attr_values)
       a.lines b.lines
