type options = {
  config : Cegis.config;
  n_max : int;
  k : int;
  min_components : int;
  seed : int;
  time_budget : float option;
}

let default_options =
  {
    config = Cegis.default_config;
    n_max = 3;
    k = 5;
    min_components = 3;
    seed = 1;
    time_budget = None;
  }

type result = {
  programs : Program.t list;
  stats : Cegis.stats;
  multisets_total : int;
  elapsed : float;
  budget_exhausted : bool;
}

let countable opts p = Program.n_components p >= opts.min_components

let now = Unix.gettimeofday

let over_budget opts ~started =
  match opts.time_budget with
  | None -> false
  | Some b -> now () -. started > b
