(** Iterative CEGIS (Buchwald et al., Section 2.2): enumerate multisets of
    increasing size by combinations with replacement, shuffle them (with the
    engine seed) and run component-based CEGIS on each in turn until [k]
    countable programs are found. *)

val synthesize :
  options:Engine.options ->
  spec:Component.spec ->
  library:Component.t list ->
  Engine.result
