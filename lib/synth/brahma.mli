(** Classical component-based CEGIS (Gulwani et al.): one synthesis query
    with first-order location variables over the {e entire} library, every
    component appearing once as a line of the candidate program.

    With a realistic library this does not terminate in a practical budget
    (Section 6.1: "Classical CEGIS failed to synthesize a single original
    instruction even after several weeks"); it is implemented faithfully as
    the failing baseline and is exercised under an explicit budget. *)

type outcome =
  | Synthesized of Program.t
  | Budget_exhausted
  | No_program

val synthesize :
  options:Engine.options ->
  spec:Component.spec ->
  library:Component.t list ->
  outcome * Cegis.stats * float
(** Returns the outcome, query statistics, and elapsed seconds. *)
