let synthesize ~options ~spec ~library =
  let started = Engine.now () in
  let stats = Cegis.mk_stats () in
  let multisets =
    Multiset.up_to library options.Engine.n_max
    |> Multiset.shuffle ~seed:options.Engine.seed
  in
  let total = List.length multisets in
  let programs = ref [] in
  let countable_found = ref 0 in
  let exhausted = ref false in
  let rec go = function
    | [] -> ()
    | _ when !countable_found >= options.Engine.k -> ()
    | _ when Engine.over_budget options ~started ->
        exhausted := true
    | ms :: rest ->
        let deadline =
          Option.map (fun b -> started +. b) options.Engine.time_budget
        in
        let found, _ =
          Locsynth.synthesize ~config:options.Engine.config ~spec
            ~components:ms ~require_all_used:true
            ~max_programs:options.Engine.config.Cegis.max_programs_per_multiset
            ?deadline ~stats ()
        in
        List.iter
          (fun p ->
            programs := p :: !programs;
            if Engine.countable options p then incr countable_found)
          found;
        go rest
  in
  go multisets;
  {
    Engine.programs = List.rev !programs;
    stats;
    multisets_total = total;
    elapsed = Engine.now () -. started;
    budget_exhausted = !exhausted;
  }
