module Bv = Sqed_bv.Bv

type skeleton = {
  sk_inputs : Component.input_kind list;
  sk_lines : (Component.t * Program.arg list) list;
}

(* Distinct permutations of a multiset, deduplicated by component label. *)
let distinct_permutations comps =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
        (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x ys)
  in
  let perms =
    List.fold_left
      (fun acc c -> List.concat_map (insert_everywhere c) acc)
      [ [] ] comps
  in
  let key p = List.map (fun c -> c.Component.label) p in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let k = key p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    perms

let cartesian (choices : 'a list list) : 'a list list =
  List.fold_right
    (fun options acc ->
      List.concat_map (fun o -> List.map (fun rest -> o :: rest) acc) options)
    choices [ [] ]

(* Sources available to a component input at line [i]. *)
let sources ~spec_inputs ~line_idx kind =
  let input_srcs =
    List.concat
      (List.mapi
         (fun idx k -> if k = kind then [ Program.Input idx ] else [])
         spec_inputs)
  in
  match kind with
  | Component.Imm12 -> input_srcs
  | Component.Reg ->
      input_srcs @ List.init line_idx (fun j -> Program.Line j)

let well_formed ~spec (lines : (Component.t * Program.arg list) list) =
  let n = List.length lines in
  (* No dead lines. *)
  let used = Array.make n false in
  used.(n - 1) <- true;
  List.iter
    (fun (_, args) ->
      List.iter (function Program.Line j -> used.(j) <- true | _ -> ()) args)
    lines;
  Array.for_all Fun.id used
  &&
  (* Strengthened input constraint (Section 4.1): components sharing the
     specification's name are excluded outright — identity wirings through
     pass-through lines would otherwise let the "equivalent" program run
     the original instruction on the original values, which defeats
     single-instruction-bug detection. *)
  List.for_all
    (fun (c, _args) -> c.Component.name <> spec.Component.g_name)
    lines

let enumerate ~spec multiset =
  let spec_inputs = spec.Component.g_inputs in
  let perms = distinct_permutations multiset in
  List.concat_map
    (fun order ->
      let wiring_choices =
        List.mapi
          (fun i c ->
            let per_input =
              List.map
                (fun kind -> sources ~spec_inputs ~line_idx:i kind)
                c.Component.inputs
            in
            List.map (fun args -> (c, args)) (cartesian per_input))
          order
      in
      let all = cartesian wiring_choices in
      List.filter_map
        (fun lines ->
          if well_formed ~spec lines then Some { sk_inputs = spec_inputs; sk_lines = lines }
          else None)
        all)
    perms

let attr_widths sk =
  List.concat_map (fun (c, _) -> c.Component.attrs) sk.sk_lines

let to_program sk attr_values =
  let rec split vs widths =
    match widths with
    | [] -> ([], vs)
    | w :: ws -> (
        match vs with
        | [] -> invalid_arg "Topology.to_program: not enough attributes"
        | v :: rest ->
            if Bv.width v <> w then
              invalid_arg "Topology.to_program: attribute width mismatch";
            let taken, remaining = split rest ws in
            (v :: taken, remaining))
  in
  let lines, leftover =
    List.fold_left
      (fun (acc, vs) (c, args) ->
        let taken, rest = split vs c.Component.attrs in
        ( { Program.comp = c; args; attr_values = taken } :: acc, rest ))
      ([], attr_values) sk.sk_lines
  in
  if leftover <> [] then invalid_arg "Topology.to_program: too many attributes";
  { Program.spec_inputs = sk.sk_inputs; lines = List.rev lines }
