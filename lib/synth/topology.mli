(** Enumeration of well-formed dataflow skeletons for a multiset of
    components (the ψ_wfp discipline of Gulwani et al. made explicit).

    A skeleton fixes the component order and the wiring of every component
    input to a program input or an earlier line; only the internal
    attribute values remain free (they are found by {!Cegis}).

    Well-formedness enforced here:
    - inputs connect only to sources of the same kind/width (register
      inputs to XLEN-wide sources, [Imm12] inputs to 12-bit program
      inputs);
    - no dead lines: every line but the last feeds a later line;
    - the paper's {e input constraint}: a component named like the
      specification must not be wired identically to the specification's
      own inputs (and a single-line program never reuses the
      specification's instruction at all), so synthesis cannot degenerate
      into plain duplication (SQED). *)

type skeleton = {
  sk_inputs : Component.input_kind list;
  sk_lines : (Component.t * Program.arg list) list;
}

val enumerate : spec:Component.spec -> Component.t list -> skeleton list
(** All well-formed skeletons for the given multiset (every distinct order
    and wiring). *)

val attr_widths : skeleton -> int list
(** Widths of all free attributes, in line order. *)

val to_program : skeleton -> Sqed_bv.Bv.t list -> Program.t
(** Fill in attribute values (must match {!attr_widths}). *)
