type outcome =
  | Synthesized of Program.t
  | Budget_exhausted
  | No_program

(* The classical algorithm is the symbolic-location engine applied to the
   whole library at once, each component available as one line, with dead
   components permitted. *)
let synthesize ~options ~spec ~library =
  let started = Engine.now () in
  let stats = Cegis.mk_stats () in
  let deadline =
    Option.map (fun b -> started +. b) options.Engine.time_budget
  in
  let programs, loc_outcome =
    Locsynth.synthesize ~config:options.Engine.config ~spec
      ~components:library ~require_all_used:false ~max_programs:1 ?deadline
      ~stats ()
  in
  let outcome =
    match (programs, loc_outcome) with
    | p :: _, _ -> Synthesized p
    | [], Locsynth.Budget_exhausted -> Budget_exhausted
    | [], Locsynth.Complete -> No_program
  in
  (outcome, stats, Engine.now () -. started)
