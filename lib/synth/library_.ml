module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term
module Insn = Sqed_isa.Insn
module Semantics = Sqed_isa.Semantics

let reg_src = function
  | `Reg r -> r
  | `Imm _ -> invalid_arg "component: expected register source"

let imm_src = function
  | `Imm v -> v
  | `Reg _ -> invalid_arg "component: expected immediate source"

let args2 = function
  | [ a; b ] -> (a, b)
  | _ -> invalid_arg "component: arity"

let args1 = function [ a ] -> a | _ -> invalid_arg "component: arity"

(* -- NIC: R-type instructions with all operands as inputs --------------- *)

let nic op =
  {
    Component.label = Insn.rop_name op;
    name = Insn.rop_name op;
    cls = Component.NIC;
    inputs = [ Component.Reg; Component.Reg ];
    attrs = [];
    sem =
      (fun ~xlen args _attrs ->
        let a, b = args2 args in
        Semantics.r_result ~xlen op a b);
    n_temps = 0;
    instantiate =
      (fun ~xlen:_ ~dst ~srcs ~attrs:_ ~temps:_ ->
        let a, b = args2 srcs in
        [ Insn.R (op, dst, reg_src a, reg_src b) ]);
  }

let nics =
  List.map nic
    [
      Insn.ADD;
      Insn.SUB;
      Insn.SLL;
      Insn.SLT;
      Insn.SLTU;
      Insn.XOR;
      Insn.SRL;
      Insn.SRA;
      Insn.OR;
      Insn.AND;
    ]

(* -- DIC: I-type instructions with the immediate as attribute ----------- *)

let is_shift = function
  | Insn.SLLI | Insn.SRLI | Insn.SRAI -> true
  | Insn.ADDI | Insn.SLTI | Insn.SLTIU | Insn.XORI | Insn.ORI | Insn.ANDI ->
      false

let dic op =
  let shift = is_shift op in
  let attr_width = if shift then 5 else 12 in
  {
    Component.label = Insn.iop_name op ^ "#";
    name = Insn.iop_name op;
    cls = Component.DIC;
    inputs = [ Component.Reg ];
    attrs = [ attr_width ];
    sem =
      (fun ~xlen args attrs ->
        let a = args1 args and imm = args1 attrs in
        let imm12 = if shift then Term.zext imm 12 else imm in
        Semantics.i_result ~xlen op a ~imm:imm12);
    n_temps = 0;
    instantiate =
      (fun ~xlen:_ ~dst ~srcs ~attrs ~temps:_ ->
        let a = args1 srcs and imm = args1 attrs in
        let v = if shift then Bv.to_int imm else Bv.to_signed_int imm in
        [ Insn.I (op, dst, reg_src a, v) ]);
  }

let dic_lui =
  {
    Component.label = "LUI#";
    name = "LUI";
    cls = Component.DIC;
    inputs = [];
    attrs = [ 20 ];
    sem =
      (fun ~xlen args attrs ->
        (match args with [] -> () | _ -> invalid_arg "LUI#: arity");
        Semantics.lui_result ~xlen (args1 attrs));
    n_temps = 0;
    instantiate =
      (fun ~xlen:_ ~dst ~srcs:_ ~attrs ~temps:_ ->
        [ Insn.Lui (dst, Bv.to_int (args1 attrs)) ]);
  }

let dics =
  List.map dic
    [
      Insn.ADDI;
      Insn.SLTI;
      Insn.SLTIU;
      Insn.XORI;
      Insn.ORI;
      Insn.ANDI;
      Insn.SLLI;
      Insn.SRLI;
      Insn.SRAI;
    ]
  @ [ dic_lui ]

(* -- CIC: fixed short instruction sequences as single components -------- *)

let cic ~label ~name ~inputs ~attrs ~n_temps ~sem ~instantiate =
  { Component.label; name; cls = Component.CIC; inputs; attrs; sem; n_temps; instantiate }

let cic_neg =
  cic ~label:"NEG" ~name:"SUB" ~inputs:[ Component.Reg ] ~attrs:[] ~n_temps:0
    ~sem:(fun ~xlen:_ args _ -> Term.neg (args1 args))
    ~instantiate:(fun ~xlen:_ ~dst ~srcs ~attrs:_ ~temps:_ ->
      [ Insn.R (Insn.SUB, dst, 0, reg_src (args1 srcs)) ])

let cic_not =
  cic ~label:"NOT" ~name:"XORI" ~inputs:[ Component.Reg ] ~attrs:[] ~n_temps:0
    ~sem:(fun ~xlen:_ args _ -> Term.not_ (args1 args))
    ~instantiate:(fun ~xlen:_ ~dst ~srcs ~attrs:_ ~temps:_ ->
      [ Insn.I (Insn.XORI, dst, reg_src (args1 srcs), -1) ])

(* Multiplication by a constant (Section 4.1's CIC example): keeps MUL in
   reach of the bit-vector solver by fixing one operand. *)
let cic_mulc =
  cic ~label:"MULC" ~name:"MUL" ~inputs:[ Component.Reg ] ~attrs:[ 12 ]
    ~n_temps:1
    ~sem:(fun ~xlen args attrs ->
      Term.mul (args1 args) (Semantics.ext_imm ~xlen (args1 attrs)))
    ~instantiate:(fun ~xlen:_ ~dst ~srcs ~attrs ~temps ->
      let t = args1 temps in
      [
        Insn.I (Insn.ADDI, t, 0, Bv.to_signed_int (args1 attrs));
        Insn.R (Insn.MUL, dst, reg_src (args1 srcs), t);
      ])

(* Sign smear: all-ones when negative (one SRAI by XLEN-1). *)
let cic_smear =
  cic ~label:"SMEAR" ~name:"SRAI" ~inputs:[ Component.Reg ] ~attrs:[]
    ~n_temps:0
    ~sem:(fun ~xlen args _ ->
      Term.ashr (args1 args) (Term.of_int ~width:xlen (xlen - 1)))
    ~instantiate:(fun ~xlen ~dst ~srcs ~attrs:_ ~temps:_ ->
      [ Insn.I (Insn.SRAI, dst, reg_src (args1 srcs), xlen - 1) ])

(* The xor/shift core of the arithmetic right shift decomposition:
   srl(a ^ smear(a), b). *)
let cic_sra_core =
  cic ~label:"SRACORE" ~name:"SRL" ~inputs:[ Component.Reg; Component.Reg ]
    ~attrs:[] ~n_temps:2
    ~sem:(fun ~xlen args _ ->
      let a, b = args2 args in
      let smear = Term.ashr a (Term.of_int ~width:xlen (xlen - 1)) in
      Term.lshr (Term.xor a smear) (Semantics.shamt_mask ~xlen b))
    ~instantiate:(fun ~xlen ~dst ~srcs ~attrs:_ ~temps ->
      let a, b = args2 srcs in
      let t1, t2 = args2 temps in
      [
        Insn.I (Insn.SRAI, t1, reg_src a, xlen - 1);
        Insn.R (Insn.XOR, t2, reg_src a, t1);
        Insn.R (Insn.SRL, dst, t2, reg_src b);
      ])

(* Unsigned high multiply exposed as a composite (Section 4.1's device for
   keeping multiplication within the solver's reach). *)
let cic_mulhu =
  cic ~label:"MULHUC" ~name:"MULHU" ~inputs:[ Component.Reg; Component.Reg ]
    ~attrs:[] ~n_temps:0
    ~sem:(fun ~xlen args _ ->
      let a, b = args2 args in
      Semantics.r_result ~xlen Insn.MULHU a b)
    ~instantiate:(fun ~xlen:_ ~dst ~srcs ~attrs:_ ~temps:_ ->
      let a, b = args2 srcs in
      [ Insn.R (Insn.MULHU, dst, reg_src a, reg_src b) ])

(* The signed-high correction (a<0 ? b : 0) + (b<0 ? a : 0). *)
let cic_mulh_corr =
  cic ~label:"MHCORR" ~name:"AND" ~inputs:[ Component.Reg; Component.Reg ]
    ~attrs:[] ~n_temps:2
    ~sem:(fun ~xlen args _ ->
      let a, b = args2 args in
      let sm x = Term.ashr x (Term.of_int ~width:xlen (xlen - 1)) in
      Term.add (Term.and_ (sm a) b) (Term.and_ (sm b) a))
    ~instantiate:(fun ~xlen ~dst ~srcs ~attrs:_ ~temps ->
      let a, b = args2 srcs in
      let t1, t2 = args2 temps in
      [
        Insn.I (Insn.SRAI, t1, reg_src a, xlen - 1);
        Insn.R (Insn.AND, t1, t1, reg_src b);
        Insn.I (Insn.SRAI, t2, reg_src b, xlen - 1);
        Insn.R (Insn.AND, t2, t2, reg_src a);
        Insn.R (Insn.ADD, dst, t1, t2);
      ])

let args3 = function
  | [ a; b; c ] -> (a, b, c)
  | _ -> invalid_arg "component: arity"

let cic_add3 =
  cic ~label:"ADD3" ~name:"ADD"
    ~inputs:[ Component.Reg; Component.Reg; Component.Reg ] ~attrs:[]
    ~n_temps:1
    ~sem:(fun ~xlen:_ args _ ->
      let a, b, c = args3 args in
      Term.add (Term.add a b) c)
    ~instantiate:(fun ~xlen:_ ~dst ~srcs ~attrs:_ ~temps ->
      let a, b, c = args3 srcs in
      let t = args1 temps in
      [
        Insn.R (Insn.ADD, t, reg_src a, reg_src b);
        Insn.R (Insn.ADD, dst, t, reg_src c);
      ])

let two_insn_logic ~label ~name ~sem mk =
  cic ~label ~name ~inputs:[ Component.Reg; Component.Reg ] ~attrs:[]
    ~n_temps:1
    ~sem:(fun ~xlen:_ args _ ->
      let a, b = args2 args in
      sem a b)
    ~instantiate:(fun ~xlen:_ ~dst ~srcs ~attrs:_ ~temps ->
      let a, b = args2 srcs in
      mk ~dst ~a:(reg_src a) ~b:(reg_src b) ~t:(args1 temps))

let cic_andn =
  two_insn_logic ~label:"ANDN" ~name:"AND"
    ~sem:(fun a b -> Term.and_ a (Term.not_ b))
    (fun ~dst ~a ~b ~t ->
      [ Insn.I (Insn.XORI, t, b, -1); Insn.R (Insn.AND, dst, a, t) ])

let cics =
  [
    cic_neg;
    cic_not;
    cic_mulc;
    cic_add3;
    cic_andn;
    cic_smear;
    cic_sra_core;
    cic_mulhu;
    cic_mulh_corr;
  ]

(* -- the immediate-input form -------------------------------------------- *)

let imm_input =
  {
    Component.label = "IMMIN";
    name = "ADDI";
    cls = Component.NIC;
    inputs = [ Component.Imm12 ];
    attrs = [];
    sem =
      (fun ~xlen args _ -> Semantics.ext_imm ~xlen (args1 args));
    n_temps = 0;
    instantiate =
      (fun ~xlen:_ ~dst ~srcs ~attrs:_ ~temps:_ ->
        [ Insn.I (Insn.ADDI, dst, 0, imm_src (args1 srcs)) ]);
  }

let default = nics @ dics @ cics @ [ imm_input ]

let find label = List.find (fun c -> c.Component.label = label) default

(* -- specs ---------------------------------------------------------------- *)

let spec name =
  match List.find_opt (fun op -> Insn.rop_name op = name) Insn.all_rops with
  | Some op -> Component.spec_of_rop op
  | None -> (
      match List.find_opt (fun op -> Insn.iop_name op = name) Insn.all_iops with
      | Some op -> Component.spec_of_iop op
      | None -> invalid_arg ("Library_.spec: unknown instruction " ^ name))

let specs =
  List.map spec
    [
      "ADD"; "SUB"; "XOR"; "OR"; "AND"; "SLT"; "SLTU"; "SRA"; "MULH";
      "XORI"; "SLLI"; "SRAI";
    ]
