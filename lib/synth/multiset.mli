(** Combinations with replacement over the component library (the multiset
    generation of the iterative CEGIS algorithm, Section 2.2). *)

val combinations_with_replacement : 'a list -> int -> 'a list list
(** All size-[n] multisets (as sorted-by-position lists); the count is
    ((N over n)) = C(N + n - 1, n). *)

val up_to : 'a list -> int -> 'a list list
(** All multisets of sizes 1..n, concatenated smallest-first. *)

val count : int -> int -> int
(** [count n k] = C(n + k - 1, k), the number of size-[k] multisets from
    [n] elements. *)

val shuffle : seed:int -> 'a list -> 'a list
(** Deterministic Fisher–Yates shuffle (the paper shuffles all multisets
    before iterative CEGIS "to prevent the clustering of similar data
    types"). *)
