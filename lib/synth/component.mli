(** Library components for component-based program synthesis (Section 4.1).

    A component is a specification ⟨I, A, O, Φ⟩: register-value inputs [I]
    (width XLEN at synthesis time), internal attributes [A] whose values the
    synthesizer chooses (e.g. a 12-bit immediate), and one output [O].  The
    three classes of the paper:

    - {b NIC} (native instruction class): semantics of one instruction with
      all operands as inputs;
    - {b DIC} (derived instruction class): an I-type instruction whose
      immediate operand became an internal attribute;
    - {b CIC} (composite instruction class): a short fixed instruction
      sequence exposed as a single component (e.g. multiply-by-constant,
      which keeps multiplication tractable for the bit-vector solver).

    Every component also knows how to {!instantiate} itself back into real
    instructions, which is how synthesized programs become the EDSEP-V
    equivalent sequences. *)

module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term

type cls = NIC | DIC | CIC

type input_kind = Reg | Imm12
(** [Imm12] inputs connect only to 12-bit program inputs (the original
    instruction's immediate field), never to register values. *)

type t = {
  label : string;  (** unique identifier within the library *)
  name : string;
      (** mnemonic of the instruction whose datapath the component
          exercises; used by the paper's [Name(...)] comparisons (the χ
          characteristic function and the input constraint) *)
  cls : cls;
  inputs : input_kind list;
  attrs : int list;  (** widths of the internal attributes *)
  sem : xlen:int -> Term.t list -> Term.t list -> Term.t;
      (** [sem ~xlen inputs attrs] builds Φ's output term. *)
  n_temps : int;
  instantiate :
    xlen:int ->
    dst:int ->
    srcs:[ `Reg of int | `Imm of int ] list ->
    attrs:Bv.t list ->
    temps:int list ->
    Sqed_isa.Insn.t list;
      (** Expand to concrete instructions writing [dst]; [srcs] mirror
          [inputs] ([`Imm] carries the immediate field value for [Imm12]
          inputs); [temps] supplies [n_temps] scratch registers. *)
}

val arity : t -> int
(** Number of register-value inputs. *)

val imm_arity : t -> int

val cls_name : cls -> string

val pp : Format.formatter -> t -> unit

(** {1 Specifications (the original instructions g)} *)

type spec = {
  g_name : string;
  g_inputs : input_kind list;
  g_sem : xlen:int -> Term.t list -> Term.t;
}

val spec_of_rop : Sqed_isa.Insn.rop -> spec
val spec_of_iop : Sqed_isa.Insn.iop -> spec
val spec_input_width : xlen:int -> input_kind -> int
