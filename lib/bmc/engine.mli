(** Incremental bounded model checking of a QED verification model.

    Unrolls the model one step at a time into a single SMT solver
    (clauses are shared across bounds), permanently asserting the
    input-constraint obligations and the QED-consistent initial state, and
    querying the [bad] output at each depth under an assumption literal.
    This is the BMC engine role Pono plays in the paper. *)

type outcome =
  | Counterexample of Trace.t
  | No_counterexample  (** the property holds up to the bound *)
  | Gave_up of int
      (** solver budget exhausted at this depth; [stats.gave_up] says
          whether the wall-clock deadline or the conflict cap ran out *)

type stats = {
  bounds_checked : int;
  solve_time : float;
  clauses : int;
  sat_conflicts : int;
  sat : Sqed_sat.Sat.stats;
      (** full solver counters (decisions, propagations, restarts, ...) *)
  gave_up : Sqed_resil.Budget.reason option;
      (** why the run gave up ([Deadline], [Conflicts], [Cancelled]),
          when the outcome is [Gave_up]/[Proof_gave_up]; [None] on a
          definitive verdict *)
}

val default_portfolio_from : int
(** Default depth threshold past which a BMC query opts into portfolio
    solving (when the solver was created with width above 1). *)

val check :
  ?max_conflicts:int ->
  ?time_budget:float ->
  ?start_bound:int ->
  ?portfolio_from:int ->
  ?progress:(int -> float -> unit) ->
  bound:int ->
  Sqed_qed.Qed_top.t ->
  outcome * stats
(** [progress] is called after each depth with the depth and the elapsed
    seconds.  [start_bound] skips the (expensive, necessarily clean)
    property checks below the given depth when the shortest possible
    counterexample length is known; constraints are still asserted for
    every step.  [portfolio_from] (default
    {!default_portfolio_from}) gates portfolio solving on for depths at
    or past it — shallow queries are cheap enough that clone/spawn
    overhead would dominate — and has no effect unless the run sets a
    portfolio width above 1 ({!Sqed_smt.Solver.portfolio_default}). *)

val replay : Sqed_qed.Qed_top.t -> Trace.t -> bool
(** Witness validation: re-run the counterexample's exact inputs and
    initial state on the concrete cycle simulator and confirm the model's
    [bad] output fires at the recorded depth.  A sound trace always
    replays; this cross-checks the symbolic unrolling, the bit-blaster and
    the SAT model against the independent simulation semantics. *)

(** {1 k-induction} *)

type proof_outcome =
  | Proved of int  (** the property is inductive at this k: holds at all depths *)
  | Base_cex of Trace.t  (** the base case found a real counterexample *)
  | Not_inductive of int  (** no k up to the limit closed the induction *)
  | Proof_gave_up of int

val prove :
  ?max_conflicts:int ->
  ?time_budget:float ->
  max_k:int ->
  Sqed_qed.Qed_top.t ->
  proof_outcome * stats
(** Temporal (k-)induction, the unbounded-proof engine Pono pairs with
    BMC: the base case checks depths 1..k from the initial states; the
    inductive step starts from an arbitrary state satisfying the input
    constraints with k clean steps and asks whether step k+1 can fail.
    UNSAT closes the property for every depth.  Properties whose
    invariant depends on reachability (like QED-consistency over the
    commit counters) typically need auxiliary invariants and come back
    [Not_inductive]; the engine is exercised on circuits with inductive
    properties in the test suite. *)

val shrink : Sqed_qed.Qed_top.t -> Trace.t -> Trace.t
(** Greedy counterexample reduction by concrete replay: try suppressing
    each injected original instruction (forcing [orig_valid] low at that
    step) and keep the suppression whenever the violation still fires;
    finally trim idle suffix cycles.  The result replays by
    construction. *)
