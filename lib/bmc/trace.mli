(** Decoded counterexample traces. *)

module Bv = Sqed_bv.Bv

type step = {
  cycle : int;
  orig_instr : Sqed_isa.Insn.t option;
      (** the original instruction presented (and accepted) this cycle *)
  core_instr : Sqed_isa.Insn.t option;
      (** what actually entered the pipeline *)
  is_orig : bool;  (** original (true) or transformed dispatch *)
  stall : bool;
  qed_ready : bool;
  consistent : bool;
  raw_inputs : (string * Bv.t) list;
      (** the exact circuit input valuation of this step, for replay *)
}

type t = {
  steps : step list;
  length : int;  (** cycles until the property violation *)
  instructions : int;  (** instructions consumed by the core *)
  originals : int;  (** original instructions among them *)
  final_regs : (int * Bv.t) list;  (** register file when [bad] fired *)
  initial_state : (string * Bv.t) list;
      (** values of the symbolic initial-state variables in the witness *)
}

val to_string : t -> string
(** A human-readable per-cycle rendering of the trace (instruction
    stream, stall/ready flags, consistency verdicts). *)

val waveform : t -> string
(** The counterexample's input stimulus rendered as an ASCII waveform
    (one row per circuit input). *)

val pp : Format.formatter -> t -> unit
(** [Format] pretty-printer wrapping {!to_string} (for Alcotest
    testables and error messages). *)
