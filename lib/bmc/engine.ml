module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term
module Solver = Sqed_smt.Solver
module Unroll = Sqed_rtl.Unroll
module Qed_top = Sqed_qed.Qed_top
module Encode = Sqed_isa.Encode

(* [Span], not [Trace]: this library's own [Trace] module is the
   counterexample trace. *)
module Span = Sqed_obs.Trace
module Metrics = Sqed_obs.Metrics
module Budget = Sqed_resil.Budget

let sp_depth = Span.kind ~cat:"bmc" "bmc.depth"
let sp_unroll = Span.kind ~cat:"bmc" "bmc.unroll"
let sp_base = Span.kind ~cat:"bmc" "bmc.base"
let sp_step = Span.kind ~cat:"bmc" "bmc.step"
let m_bounds = Metrics.counter "bmc.bounds_checked"
let h_depth_us = Metrics.histogram "bmc.depth_solve_us"

type outcome =
  | Counterexample of Trace.t
  | No_counterexample
  | Gave_up of int

type stats = {
  bounds_checked : int;
  solve_time : float;
  clauses : int;
  sat_conflicts : int;
  sat : Sqed_sat.Sat.stats;
  gave_up : Sqed_resil.Budget.reason option;
}

(* Shallow bounds solve in milliseconds; cloning the clause database and
   spawning domains there would cost more than the search.  The
   portfolio engages once the unrolling is deep enough that single-core
   solve time dominates. *)
let default_portfolio_from = 4

let bool_of bv = not (Bv.is_zero bv)

let extract_trace model u solver depth =
  let value_out step name =
    Solver.model_value solver (Unroll.output u ~step name)
  in
  let input_names =
    List.map fst (Sqed_rtl.Circuit.inputs model.Qed_top.circuit)
  in
  let steps =
    List.init depth (fun t ->
        let core_valid = bool_of (value_out t "core_valid") in
        let consumed = bool_of (value_out t "consumed") in
        let is_orig = bool_of (value_out t "is_orig") in
        let core_instr =
          if core_valid then Encode.decode (value_out t "core_instr") else None
        in
        let orig_instr =
          if consumed && is_orig then core_instr else None
        in
        let raw_inputs =
          List.map
            (fun name ->
              (name, Solver.model_value solver (Unroll.input u ~step:t name)))
            input_names
        in
        {
          Trace.cycle = t;
          orig_instr;
          core_instr = (if consumed then core_instr else None);
          is_orig;
          stall = bool_of (value_out t "stall");
          qed_ready = bool_of (value_out t "qed_ready");
          consistent = bool_of (value_out t "consistent");
          raw_inputs;
        })
  in
  let consumed_steps = List.filter (fun s -> s.Trace.core_instr <> None) steps in
  let cfg = model.Qed_top.cfg in
  let final_regs =
    List.init (cfg.Sqed_qed.Qed_top.Config.nregs - 1) (fun i ->
        let name = Printf.sprintf "x%d" (i + 1) in
        ( i + 1,
          Solver.model_value solver (Unroll.reg_at u ~step:(depth - 1) name) ))
  in
  let initial_state =
    List.map
      (fun (name, w) ->
        (name, Solver.model_value solver (Term.var name w)))
      (Unroll.init_vars u)
  in
  {
    Trace.steps;
    length = depth;
    instructions = List.length consumed_steps;
    originals =
      List.length (List.filter (fun s -> s.Trace.is_orig) consumed_steps);
    final_regs;
    initial_state;
  }

let check ?max_conflicts ?time_budget ?(start_bound = 1)
    ?(portfolio_from = default_portfolio_from) ?(progress = fun _ _ -> ())
    ~bound model =
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> started +. b) time_budget in
  let solver = Solver.create () in
  (* Bound the whole bounded run, unrolling and encoding included: the
     time budget is installed as a solver budget, so deep unrolls that
     never reach the CDCL loop still respect it. *)
  Option.iter
    (fun d -> Solver.set_budget solver (Budget.create ~deadline:d ()))
    deadline;
  let u = Unroll.create model.Qed_top.circuit in
  (* QED-consistent symbolic initial state. *)
  List.iter
    (fun (_label, t) -> Solver.assert_ solver t)
    (Qed_top.init_assumptions model);
  let result = ref No_counterexample in
  let bounds = ref 0 in
  let gave_up_reason = ref None in
  (try
     for k = 1 to bound do
       try
       (* The whole depth (unrolling included) sits in one span; [Exit]
          raised on a counterexample still closes it via Fun.protect. *)
       Span.with_span ~args:[ ("k", string_of_int k) ] sp_depth @@ fun () ->
       Span.with_span sp_unroll (fun () -> Unroll.extend_to u k);
       let t = k - 1 in
       Solver.assert_ solver
         (Term.eq (Unroll.output u ~step:t "assume_ok") Term.tt);
       let bad = Term.eq (Unroll.output u ~step:t "bad") Term.tt in
       if k < start_bound then
         (* Below the shortest possible violation: record the fact without
            paying for the solver call. *)
         Solver.assert_ solver (Term.not_ bad)
       else begin
       incr bounds;
       Metrics.incr m_bounds;
       (* Deep bounds opt into portfolio solving (a no-op at width 1). *)
       Solver.set_portfolio_active solver (k >= portfolio_from);
       let t0 = if !Metrics.enabled then Unix.gettimeofday () else 0.0 in
       let r =
         Solver.check ~assumptions:[ bad ] ?max_conflicts ?deadline solver
       in
       if !Metrics.enabled then
         Metrics.observe_us h_depth_us ((Unix.gettimeofday () -. t0) *. 1e6);
       (match r with
       | Solver.Sat ->
           result := Counterexample (extract_trace model u solver k);
           raise Exit
       | Solver.Unsat ->
           (* The property is now known to hold at this depth; telling the
              solver so strengthens later queries. *)
           Solver.assert_ solver (Term.not_ bad)
       | Solver.Unknown ->
           result := Gave_up k;
           gave_up_reason := Solver.last_unknown solver;
           raise Exit)
       end;
       progress k (Unix.gettimeofday () -. started);
       (match time_budget with
       | Some budget when Unix.gettimeofday () -. started > budget ->
           result := Gave_up k;
           gave_up_reason := Some Budget.Deadline;
           raise Exit
       | _ -> ())
       with Budget.Exhausted r ->
         (* Budget died during unrolling/encoding (Solver.check maps its
            own exhaustion to Unknown): an inconclusive depth. *)
         result := Gave_up k;
         gave_up_reason := Some r;
         raise Exit
     done
   with Exit -> ());
  let st = Solver.stats solver in
  ( !result,
    {
      bounds_checked = !bounds;
      solve_time = Unix.gettimeofday () -. started;
      clauses = Solver.num_clauses solver;
      sat_conflicts = st.Sqed_sat.Sat.conflicts;
      sat = st;
      gave_up = !gave_up_reason;
    } )

let replay model trace =
  let init = Hashtbl.create 32 in
  List.iter
    (fun (name, v) -> Hashtbl.replace init name v)
    trace.Trace.initial_state;
  let sim =
    Sqed_rtl.Sim.create ~initial:(Hashtbl.find_opt init)
      model.Qed_top.circuit
  in
  let bad_at_end = ref false in
  List.iter
    (fun step ->
      let outs = Sqed_rtl.Sim.cycle sim step.Trace.raw_inputs in
      bad_at_end := not (Bv.is_zero (List.assoc "bad" outs)))
    trace.Trace.steps;
  !bad_at_end

type proof_outcome =
  | Proved of int
  | Base_cex of Trace.t
  | Not_inductive of int
  | Proof_gave_up of int

let prove ?max_conflicts ?time_budget ~max_k model =
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> started +. b) time_budget in
  let over_budget () =
    match time_budget with
    | Some b -> Unix.gettimeofday () -. started > b
    | None -> false
  in
  (* Base case: ordinary BMC up to max_k. *)
  let base_solver = Solver.create () in
  Option.iter
    (fun d -> Solver.set_budget base_solver (Budget.create ~deadline:d ()))
    deadline;
  let base = Unroll.create model.Qed_top.circuit in
  List.iter
    (fun (_label, t) -> Solver.assert_ base_solver t)
    (Qed_top.init_assumptions model);
  (* Inductive step: arbitrary start, constraints at every step. *)
  let step_solver = Solver.create () in
  Option.iter
    (fun d -> Solver.set_budget step_solver (Budget.create ~deadline:d ()))
    deadline;
  let step = Unroll.create ~free_initial_state:true model.Qed_top.circuit in
  let bounds = ref 0 in
  let result = ref (Not_inductive max_k) in
  let gave_up_reason = ref None in
  (try
     for k = 1 to max_k do
       try
       Solver.set_portfolio_active base_solver (k >= default_portfolio_from);
       Solver.set_portfolio_active step_solver (k >= default_portfolio_from);
       (* base: no counterexample of depth k *)
       Unroll.extend_to base k;
       let t = k - 1 in
       Solver.assert_ base_solver
         (Term.eq (Unroll.output base ~step:t "assume_ok") Term.tt);
       let bad_base = Term.eq (Unroll.output base ~step:t "bad") Term.tt in
       incr bounds;
       Metrics.incr m_bounds;
       (match
          Span.with_span ~args:[ ("k", string_of_int k) ] sp_base (fun () ->
              Solver.check ~assumptions:[ bad_base ] ?max_conflicts ?deadline
                base_solver)
        with
       | Solver.Sat ->
           result := Base_cex (extract_trace model base base_solver k);
           raise Exit
       | Solver.Unsat -> Solver.assert_ base_solver (Term.not_ bad_base)
       | Solver.Unknown ->
           result := Proof_gave_up k;
           gave_up_reason := Solver.last_unknown base_solver;
           raise Exit);
       (* step: from any clean k-prefix, step k cannot fail *)
       Unroll.extend_to step (k + 1);
       Solver.assert_ step_solver
         (Term.eq (Unroll.output step ~step:t "assume_ok") Term.tt);
       Solver.assert_ step_solver
         (Term.not_ (Term.eq (Unroll.output step ~step:t "bad") Term.tt));
       Solver.assert_ step_solver
         (Term.eq (Unroll.output step ~step:k "assume_ok") Term.tt);
       let bad_step = Term.eq (Unroll.output step ~step:k "bad") Term.tt in
       incr bounds;
       Metrics.incr m_bounds;
       (match
          Span.with_span ~args:[ ("k", string_of_int k) ] sp_step (fun () ->
              Solver.check ~assumptions:[ bad_step ] ?max_conflicts ?deadline
                step_solver)
        with
       | Solver.Unsat ->
           result := Proved k;
           raise Exit
       | Solver.Sat -> () (* spurious: deepen k *)
       | Solver.Unknown ->
           result := Proof_gave_up k;
           gave_up_reason := Solver.last_unknown step_solver;
           raise Exit);
       if over_budget () then begin
         result := Proof_gave_up k;
         gave_up_reason := Some Budget.Deadline;
         raise Exit
       end
       with Budget.Exhausted r ->
         result := Proof_gave_up k;
         gave_up_reason := Some r;
         raise Exit
     done
   with Exit -> ());
  let st = Solver.stats base_solver in
  ( !result,
    {
      bounds_checked = !bounds;
      solve_time = Unix.gettimeofday () -. started;
      clauses = Solver.num_clauses base_solver + Solver.num_clauses step_solver;
      sat_conflicts = st.Sqed_sat.Sat.conflicts;
      sat = st;
      gave_up = !gave_up_reason;
    } )

(* Replay a raw input stream and report at which cycle (if any) [bad]
   fires, together with the per-cycle outputs needed to rebuild a trace. *)
let replay_stream model ~initial inputs =
  let init = Hashtbl.create 32 in
  List.iter (fun (name, v) -> Hashtbl.replace init name v) initial;
  let sim =
    Sqed_rtl.Sim.create ~initial:(Hashtbl.find_opt init)
      model.Qed_top.circuit
  in
  let outs = List.map (fun step_inputs -> Sqed_rtl.Sim.cycle sim step_inputs) inputs in
  let bad_at =
    List.mapi (fun i o -> (i, not (Bv.is_zero (List.assoc "bad" o)))) outs
    |> List.find_opt snd
    |> Option.map fst
  in
  (bad_at, outs)

let rebuild_trace ~initial inputs outs depth =
  let flag o name = not (Bv.is_zero (List.assoc name o)) in
  let steps =
    List.filteri (fun i _ -> i < depth) (List.combine inputs outs)
    |> List.mapi (fun i (step_inputs, o) ->
           let consumed = flag o "consumed" in
           let is_orig = flag o "is_orig" in
           let core_instr =
             if flag o "core_valid" then
               Sqed_isa.Encode.decode (List.assoc "core_instr" o)
             else None
           in
           {
             Trace.cycle = i;
             orig_instr = (if consumed && is_orig then core_instr else None);
             core_instr = (if consumed then core_instr else None);
             is_orig;
             stall = flag o "stall";
             qed_ready = flag o "qed_ready";
             consistent = flag o "consistent";
             raw_inputs = step_inputs;
           })
  in
  let consumed_steps = List.filter (fun s -> s.Trace.core_instr <> None) steps in
  {
    Trace.steps;
    length = depth;
    instructions = List.length consumed_steps;
    originals =
      List.length (List.filter (fun s -> s.Trace.is_orig) consumed_steps);
    final_regs = [];
    initial_state = initial;
  }

let shrink model trace =
  let initial = trace.Trace.initial_state in
  let suppress inputs i =
    List.mapi
      (fun j step_inputs ->
        if j <> i then step_inputs
        else
          List.map
            (fun (name, v) ->
              if name = "orig_valid" then (name, Bv.zero 1) else (name, v))
            step_inputs)
      inputs
  in
  let current = ref (List.map (fun s -> s.Trace.raw_inputs) trace.Trace.steps) in
  let improved = ref true in
  while !improved do
    improved := false;
    let n = List.length !current in
    let i = ref 0 in
    while !i < n do
      let candidate = suppress !current !i in
      (match replay_stream model ~initial candidate with
      | Some _, _ ->
          if candidate <> !current then begin
            current := candidate;
            improved := true
          end
      | None, _ -> ());
      incr i
    done
  done;
  match replay_stream model ~initial !current with
  | Some d, outs -> rebuild_trace ~initial !current outs (d + 1)
  | None, _ -> trace
