module Bv = Sqed_bv.Bv
module Insn = Sqed_isa.Insn

type step = {
  cycle : int;
  orig_instr : Insn.t option;
  core_instr : Insn.t option;
  is_orig : bool;
  stall : bool;
  qed_ready : bool;
  consistent : bool;
  raw_inputs : (string * Bv.t) list;
}

type t = {
  steps : step list;
  length : int;
  instructions : int;
  originals : int;
  final_regs : (int * Bv.t) list;
  initial_state : (string * Bv.t) list;
}

let step_to_string s =
  let insn_str = function
    | Some i -> Insn.to_string i
    | None -> "-"
  in
  Printf.sprintf "  %2d | %-22s | %-22s %s%s%s" s.cycle
    (insn_str s.orig_instr)
    (insn_str s.core_instr)
    (if s.core_instr <> None then if s.is_orig then "[orig] " else "[equiv]"
     else "       ")
    (if s.stall then " stall" else "")
    (if s.qed_ready then
       if s.consistent then " READY(consistent)" else " READY(INCONSISTENT)"
     else "")

let to_string t =
  let header =
    Printf.sprintf
      "counterexample: %d cycles, %d instructions (%d originals)\n\
      \  cy | original accepted      | dispatched to core" t.length
      t.instructions t.originals
  in
  let regs =
    "  final registers: "
    ^ String.concat ", "
        (List.filter_map
           (fun (i, v) ->
             if Bv.is_zero v then None
             else Some (Printf.sprintf "x%d=%s" i (Bv.to_string v)))
           t.final_regs)
  in
  String.concat "\n" ((header :: List.map step_to_string t.steps) @ [ regs ])

let waveform t =
  let w = Sqed_rtl.Waveform.create () in
  List.iter (fun s -> Sqed_rtl.Waveform.record w s.raw_inputs) t.steps;
  Sqed_rtl.Waveform.to_string w

let pp fmt t = Format.pp_print_string fmt (to_string t)
