type slot = { mutable tasks : int; mutable busy : float }

type task = slot -> unit
(** A queued task receives the slot of the domain executing it, so batch
    bookkeeping inside the task can run after the slot's stats update. *)

type t = {
  n_jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  slots : slot array;
}

let default_jobs () =
  match Sys.getenv_opt "SEPE_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let worker p i =
  let slot = p.slots.(i) in
  let rec loop () =
    Mutex.lock p.mutex;
    while Queue.is_empty p.queue && not p.closed do
      Condition.wait p.nonempty p.mutex
    done;
    if Queue.is_empty p.queue then Mutex.unlock p.mutex (* closed: exit *)
    else begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.mutex;
      task slot;
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let n_jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let p =
    {
      n_jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      domains = [];
      slots = Array.init n_jobs (fun _ -> { tasks = 0; busy = 0.0 });
    }
  in
  p.domains <- List.init (n_jobs - 1) (fun i -> Domain.spawn (fun () -> worker p (i + 1)));
  p

let jobs p = p.n_jobs

let check_open p = if p.closed then invalid_arg "Pool: already shut down"

(* One batch: a completion counter guarded by the pool mutex, plus the
   first exception raised by any task (re-raised at the join point). *)
type batch = {
  mutable remaining : int;
  batch_done : Condition.t;
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

let submit_batch p wrap n =
  check_open p;
  let b =
    { remaining = n; batch_done = Condition.create (); failure = None }
  in
  let guarded i slot =
    let t0 = Unix.gettimeofday () in
    let fail =
      try wrap i; None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let dt = Unix.gettimeofday () -. t0 in
    (* One critical section: the slot's stats land before the batch-done
       signal, so a [stats] read after [map]/[iter] returns counts every
       task of the batch; [stats] itself never reads a torn pair. *)
    Mutex.lock p.mutex;
    (match fail with
     | Some _ when b.failure = None -> b.failure <- fail
     | _ -> ());
    slot.tasks <- slot.tasks + 1;
    slot.busy <- slot.busy +. dt;
    b.remaining <- b.remaining - 1;
    if b.remaining = 0 then Condition.broadcast b.batch_done;
    Mutex.unlock p.mutex
  in
  if p.n_jobs = 1 then
    (* Inline: deterministic submission order, no queueing. *)
    for i = 0 to n - 1 do
      guarded i p.slots.(0)
    done
  else begin
    Mutex.lock p.mutex;
    for i = 0 to n - 1 do
      Queue.push (guarded i) p.queue
    done;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.mutex;
    (* The caller's domain also works the queue until the batch drains, so
       [jobs = n] means n busy domains, not n workers plus an idle waiter. *)
    let slot = p.slots.(0) in
    let rec help () =
      Mutex.lock p.mutex;
      if b.remaining = 0 then Mutex.unlock p.mutex
      else if Queue.is_empty p.queue then begin
        (* Tasks of this batch are still running on workers: wait. *)
        while b.remaining > 0 do
          Condition.wait b.batch_done p.mutex
        done;
        Mutex.unlock p.mutex
      end
      else begin
        let task = Queue.pop p.queue in
        Mutex.unlock p.mutex;
        task slot;
        help ()
      end
    in
    help ()
  end;
  match b.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_array p f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    submit_batch p (fun i -> results.(i) <- Some (f xs.(i))) n;
    Array.map (function Some r -> r | None -> assert false) results
  end

let map p f xs = Array.to_list (map_array p f (Array.of_list xs))

let iter p f xs =
  let xs = Array.of_list xs in
  submit_batch p (fun i -> f xs.(i)) (Array.length xs)

type worker_stats = { worker : int; tasks : int; busy : float }

let stats p =
  Mutex.lock p.mutex;
  let out =
    Array.to_list
      (Array.mapi
         (fun i (s : slot) -> { worker = i; tasks = s.tasks; busy = s.busy })
         p.slots)
  in
  Mutex.unlock p.mutex;
  out

let shutdown p =
  if not p.closed then begin
    Mutex.lock p.mutex;
    p.closed <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.domains;
    p.domains <- []
  end

let with_pool ?jobs f =
  let p = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
