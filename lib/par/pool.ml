module Metrics = Sqed_obs.Metrics
module Trace = Sqed_obs.Trace
module Log = Sqed_obs.Log
module Progress = Sqed_obs.Progress
module Budget = Sqed_resil.Budget
module Fault = Sqed_resil.Fault

(* Supervision instruments ([add_always]: they must report under
   [--stats] with observability off, and the smoke checks assert their
   presence in every metrics snapshot). *)
let m_retries = Metrics.counter "resil.retries"
let m_task_failures = Metrics.counter "resil.task_failures"
let m_tasks_skipped = Metrics.counter "resil.tasks_skipped"
let sp_retry = Trace.kind ~cat:"resil" "resil.retry"

type task = int -> unit
(** A queued task receives the index of the worker slot executing it. *)

(* Per-worker stats live in the global metrics registry (counters named
   [par.worker.<i>.*], in microseconds) rather than in a pool-private
   record, so [--metrics] / [--metrics-json] see them like every other
   instrument.  They use [add_always]: [--stats] must keep working with
   observability off.  Each pool captures the counter values at [create]
   and [stats] reports the delta, giving per-pool numbers even though the
   registry aggregates across all pools ever created. *)

type worker_counters = {
  c_tasks : Metrics.counter;
  c_busy_us : Metrics.counter;
  c_wait_us : Metrics.counter;
}

let worker_counters i =
  {
    c_tasks = Metrics.counter (Printf.sprintf "par.worker.%d.tasks" i);
    c_busy_us = Metrics.counter (Printf.sprintf "par.worker.%d.busy_us" i);
    c_wait_us = Metrics.counter (Printf.sprintf "par.worker.%d.queue_wait_us" i);
  }

type t = {
  n_jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  counters : worker_counters array;
  baseline : (int * int * int) array; (* (tasks, busy_us, wait_us) at create *)
}

let default_jobs () =
  match Sys.getenv_opt "SEPE_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let worker p i =
  Log.info "pool.worker.start" [ ("worker", Log.I i) ];
  let rec loop () =
    Mutex.lock p.mutex;
    while Queue.is_empty p.queue && not p.closed do
      Condition.wait p.nonempty p.mutex
    done;
    if Queue.is_empty p.queue then begin
      Mutex.unlock p.mutex;
      (* closed: exit *)
      Log.info "pool.worker.exit" [ ("worker", Log.I i) ]
    end
    else begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.mutex;
      task i;
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let n_jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let counters = Array.init n_jobs worker_counters in
  let p =
    {
      n_jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      domains = [];
      counters;
      baseline =
        Array.map
          (fun c ->
            ( Metrics.counter_value c.c_tasks,
              Metrics.counter_value c.c_busy_us,
              Metrics.counter_value c.c_wait_us ))
          counters;
    }
  in
  p.domains <- List.init (n_jobs - 1) (fun i -> Domain.spawn (fun () -> worker p (i + 1)));
  p

let jobs p = p.n_jobs

let check_open p = if p.closed then invalid_arg "Pool: already shut down"

(* One batch: a completion counter guarded by the pool mutex, plus the
   first exception raised by any task (re-raised at the join point). *)
type batch = {
  mutable remaining : int;
  batch_done : Condition.t;
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

let to_us dt = int_of_float (dt *. 1e6)

let submit_batch p wrap n =
  check_open p;
  let b =
    { remaining = n; batch_done = Condition.create (); failure = None }
  in
  let guarded ~failfast i w =
    (* Fail-fast drain: once any task of the batch has failed, still-
       queued tasks are skipped (their work would be discarded by the
       re-raise anyway).  Only the queued path does this — [jobs = 1]
       keeps the historical run-everything-then-raise behavior. *)
    let skip =
      failfast
      && begin
           Mutex.lock p.mutex;
           let s = b.failure <> None in
           Mutex.unlock p.mutex;
           s
         end
    in
    if skip then begin
      Metrics.add_always m_tasks_skipped 1;
      Mutex.lock p.mutex;
      b.remaining <- b.remaining - 1;
      if b.remaining = 0 then Condition.broadcast b.batch_done;
      Mutex.unlock p.mutex
    end
    else begin
      let t0 = Unix.gettimeofday () in
      Progress.task_begin w;
      let fail =
        try wrap i; None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      let dt = Unix.gettimeofday () -. t0 in
      Progress.task_end dt;
      (match fail with
      | Some (e, _) ->
          Log.warn "pool.task.failed"
            [
              ("worker", Log.I w);
              ("task", Log.I i);
              ("error", Log.Str (Printexc.to_string e));
            ]
      | None -> ());
      (* Counter writes happen before the batch-done critical section: the
         mutex release/acquire pair is what makes them visible to a [stats]
         read issued after [map]/[iter] returns. *)
      let c = p.counters.(w) in
      Metrics.add_always c.c_tasks 1;
      Metrics.add_always c.c_busy_us (to_us dt);
      Mutex.lock p.mutex;
      (match fail with
       | Some _ when b.failure = None -> b.failure <- fail
       | _ -> ());
      b.remaining <- b.remaining - 1;
      if b.remaining = 0 then Condition.broadcast b.batch_done;
      Mutex.unlock p.mutex
    end
  in
  if p.n_jobs = 1 then
    (* Inline: deterministic submission order, no queueing (and hence no
       queue wait). *)
    for i = 0 to n - 1 do
      guarded ~failfast:false i 0
    done
  else begin
    Mutex.lock p.mutex;
    for i = 0 to n - 1 do
      let queued_at = Unix.gettimeofday () in
      Queue.push
        (fun w ->
          Metrics.add_always p.counters.(w).c_wait_us
            (to_us (Unix.gettimeofday () -. queued_at));
          guarded ~failfast:true i w)
        p.queue
    done;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.mutex;
    (* The caller's domain also works the queue until the batch drains, so
       [jobs = n] means n busy domains, not n workers plus an idle waiter. *)
    let rec help () =
      Mutex.lock p.mutex;
      if b.remaining = 0 then Mutex.unlock p.mutex
      else if Queue.is_empty p.queue then begin
        (* Tasks of this batch are still running on workers: wait. *)
        while b.remaining > 0 do
          Condition.wait b.batch_done p.mutex
        done;
        Mutex.unlock p.mutex
      end
      else begin
        let task = Queue.pop p.queue in
        Mutex.unlock p.mutex;
        task 0;
        help ()
      end
    in
    help ()
  end;
  match b.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_array p f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    submit_batch p (fun i -> results.(i) <- Some (f xs.(i))) n;
    Array.map (function Some r -> r | None -> assert false) results
  end

let map p f xs = Array.to_list (map_array p f (Array.of_list xs))

(* -- supervised mapping ------------------------------------------------- *)

type task_error = { error : string; attempts : int; exhausted : bool }

let run_supervised ~retries ~backoff ~task_deadline f x =
  let rec attempt k sleep =
    (* The soft deadline is per *attempt*: a retry gets a fresh window,
       bounded overall by the retry cap. *)
    let budget =
      match task_deadline with
      | None -> Budget.unlimited
      | Some d -> Budget.create ~deadline:(Unix.gettimeofday () +. d) ()
    in
    match
      Budget.with_current budget (fun () ->
          Fault.check "pool.task";
          f x)
    with
    | r -> Ok r
    | exception e ->
        let exhausted =
          match e with Budget.Exhausted _ -> true | _ -> false
        in
        let transient =
          (* Budget exhaustion would recur (the work is simply too big)
             and injected faults are deterministic by design; everything
             else is worth a bounded retry. *)
          match e with
          | Budget.Exhausted _ | Fault.Injected _ -> false
          | _ -> true
        in
        if transient && k < retries then begin
          Metrics.add_always m_retries 1;
          Log.warn "resil.task.retry"
            [
              ("attempt", Log.I (k + 1));
              ("backoff_s", Log.F sleep);
              ("error", Log.Str (Printexc.to_string e));
            ];
          Trace.with_span sp_retry (fun () -> Unix.sleepf sleep);
          attempt (k + 1) (sleep *. 2.)
        end
        else begin
          Metrics.add_always m_task_failures 1;
          Log.warn "resil.task.failed"
            [
              ("attempts", Log.I (k + 1));
              ("exhausted", Log.B exhausted);
              ("error", Log.Str (Printexc.to_string e));
            ];
          Error { error = Printexc.to_string e; attempts = k + 1; exhausted }
        end
  in
  attempt 0 backoff

let map_result p ?(retries = 1) ?(backoff = 0.05) ?task_deadline f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let results =
      Array.make n
        (Error { error = "task never ran"; attempts = 0; exhausted = false })
    in
    (* The wrap never raises, so the batch always runs to completion:
       supervision replaces fail-fast semantics with per-task verdicts. *)
    submit_batch p
      (fun i ->
        results.(i) <-
          run_supervised ~retries ~backoff ~task_deadline f xs.(i))
      n;
    Array.to_list results
  end

let iter p f xs =
  let xs = Array.of_list xs in
  submit_batch p (fun i -> f xs.(i)) (Array.length xs)

type worker_stats = {
  worker : int;
  tasks : int;
  busy : float;
  queue_wait : float;
}

let stats p =
  List.init p.n_jobs (fun i ->
      let c = p.counters.(i) in
      let t0, b0, w0 = p.baseline.(i) in
      {
        worker = i;
        tasks = Metrics.counter_value c.c_tasks - t0;
        busy = float_of_int (Metrics.counter_value c.c_busy_us - b0) /. 1e6;
        queue_wait =
          float_of_int (Metrics.counter_value c.c_wait_us - w0) /. 1e6;
      })

let shutdown p =
  if not p.closed then begin
    Mutex.lock p.mutex;
    p.closed <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.domains;
    p.domains <- []
  end

let with_pool ?jobs f =
  let p = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
