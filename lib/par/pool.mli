(** A fixed-size domain worker pool for embarrassingly parallel solver
    campaigns (per-instruction synthesis, per-bug BMC).

    The pool owns [jobs - 1] worker domains plus the caller's domain; a
    Mutex/Condition task queue feeds them.  Tasks must be independent: the
    SMT term universe is domain-local (see {!Sqed_smt.Term}), so a task
    must build every term it uses itself and must only return plain data
    (or terms it created) to the caller.

    Nested use of the same pool from inside a task deadlocks and is not
    supported; create an inner pool or run inline instead. *)

type t

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [SEPE_JOBS] environment
    variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] is clamped
    to at least 1).  With [jobs = 1] no domains are spawned and every task
    runs inline on the caller, in submission order. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving input order.  Blocks until the batch has
    drained.  If any task raised, the first exception observed is
    re-raised at the join point; with [jobs > 1] the failure also stops
    dispatch — tasks still queued when it is recorded are skipped
    (fail-fast drain; counted in [resil.tasks_skipped]).  With
    [jobs = 1] every task runs in submission order before the re-raise,
    exactly as before.  For campaigns that must survive failing cases,
    use {!map_result}. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val iter : t -> ('a -> unit) -> 'a list -> unit

(** {1 Supervised mapping} *)

type task_error = {
  error : string;  (** printed form of the final attempt's exception *)
  attempts : int;  (** attempts made, including the first *)
  exhausted : bool;
      (** the final failure was {!Sqed_resil.Budget.Exhausted} — an
          inconclusive timeout rather than a hard error *)
}

val map_result :
  t ->
  ?retries:int ->
  ?backoff:float ->
  ?task_deadline:float ->
  ('a -> 'b) ->
  'a list ->
  ('b, task_error) result list
(** Supervised parallel map: each task yields [Ok result] or
    [Error task_error]; the batch always runs to completion, so one
    crashing case cannot take down a campaign.

    Failed tasks are retried up to [retries] times (default 1) with
    exponentially growing sleep starting at [backoff] seconds (default
    0.05) — except {!Sqed_resil.Budget.Exhausted} (the work is simply
    over budget; retrying would recur) and {!Sqed_resil.Fault.Injected}
    (deterministic by design), which fail immediately.  Retries are
    counted in [resil.retries] and wrapped in [resil.retry] spans;
    final failures in [resil.task_failures].

    [task_deadline] imposes a soft per-attempt wall-clock budget,
    installed as the domain's ambient {!Sqed_resil.Budget.current} so
    budget-aware layers (SAT search, bit-blasting, preprocessing) honor
    it with no extra plumbing.  Tasks also hit the [pool.task] fault
    injection site before each attempt. *)

type worker_stats = {
  worker : int;  (** 0 is the slot used by inline execution ([jobs = 1]) *)
  tasks : int;  (** tasks completed by this worker *)
  busy : float;  (** wall-clock seconds spent inside tasks *)
  queue_wait : float;
      (** seconds tasks spent queued before this worker picked them up;
          always 0 with [jobs = 1] (inline execution never queues) *)
}

val stats : t -> worker_stats list
(** Per-worker task counts, busy time and queue wait since [create].
    The same numbers are visible globally (summed over every pool) as
    the registry counters [par.worker.<i>.tasks] / [.busy_us] /
    [.queue_wait_us]; this returns the per-pool delta. *)

val shutdown : t -> unit
(** Drain outstanding tasks, stop the workers and join their domains.
    Idempotent; using the pool afterwards raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exceptions. *)
