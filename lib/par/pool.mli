(** A fixed-size domain worker pool for embarrassingly parallel solver
    campaigns (per-instruction synthesis, per-bug BMC).

    The pool owns [jobs - 1] worker domains plus the caller's domain; a
    Mutex/Condition task queue feeds them.  Tasks must be independent: the
    SMT term universe is domain-local (see {!Sqed_smt.Term}), so a task
    must build every term it uses itself and must only return plain data
    (or terms it created) to the caller.

    Nested use of the same pool from inside a task deadlocks and is not
    supported; create an inner pool or run inline instead. *)

type t

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [SEPE_JOBS] environment
    variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] is clamped
    to at least 1).  With [jobs = 1] no domains are spawned and every task
    runs inline on the caller, in submission order. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving input order.  Blocks until every task has
    finished.  If any task raised, the first exception observed is
    re-raised after the whole batch has drained. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val iter : t -> ('a -> unit) -> 'a list -> unit

type worker_stats = {
  worker : int;  (** 0 is the slot used by inline execution ([jobs = 1]) *)
  tasks : int;  (** tasks completed by this worker *)
  busy : float;  (** wall-clock seconds spent inside tasks *)
  queue_wait : float;
      (** seconds tasks spent queued before this worker picked them up;
          always 0 with [jobs = 1] (inline execution never queues) *)
}

val stats : t -> worker_stats list
(** Per-worker task counts, busy time and queue wait since [create].
    The same numbers are visible globally (summed over every pool) as
    the registry counters [par.worker.<i>.tasks] / [.busy_us] /
    [.queue_wait_us]; this returns the per-pool delta. *)

val shutdown : t -> unit
(** Drain outstanding tasks, stop the workers and join their domains.
    Idempotent; using the pool afterwards raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exceptions. *)
