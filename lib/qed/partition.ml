type scheme = Eddi | Edsep

type t = {
  scheme : scheme;
  nregs : int;
  n_orig : int;
  n_temp : int;
  mem_words : int;
  mem_half : int;
}

let make scheme cfg =
  let nregs = cfg.Sqed_proc.Config.nregs in
  let mem_words = cfg.Sqed_proc.Config.mem_words in
  let n_orig =
    match scheme with
    | Eddi -> nregs / 2
    | Edsep -> nregs * 13 / 32
  in
  let n_temp = match scheme with Eddi -> 0 | Edsep -> nregs - (2 * n_orig) in
  if n_orig < 2 then invalid_arg "Partition.make: too few registers";
  { scheme; nregs; n_orig; n_temp; mem_words; mem_half = mem_words / 2 }

let map_reg p o =
  if o < 0 || o >= p.n_orig then invalid_arg "Partition.map_reg: not in O";
  o + p.n_orig

let temp_reg p i =
  if i < 0 || i >= p.n_temp then
    invalid_arg "Partition.temp_reg: temporary index out of range";
  (2 * p.n_orig) + i

let temps p = List.init p.n_temp (temp_reg p)

let in_orig p r = r >= 0 && r < p.n_orig
let in_equiv p r = r >= p.n_orig && r < 2 * p.n_orig

let orig_compare_pairs p = List.init p.n_orig (fun o -> (o, o + p.n_orig))

let random_original p ~ext_m ~ext_div rng =
  let module Insn = Sqed_isa.Insn in
  let o_src () = Random.State.int rng p.n_orig in
  let o_rd () = 1 + Random.State.int rng (p.n_orig - 1) in
  let mem_imm () = Random.State.int rng p.mem_half in
  let rops =
    List.filter
      (fun o ->
        (ext_m || not (Insn.rop_is_mul o))
        && (ext_div || not (Insn.rop_is_div o)))
      Insn.all_rops
  in
  match Random.State.int rng 10 with
  | 0 | 1 | 2 | 3 ->
      let op = List.nth rops (Random.State.int rng (List.length rops)) in
      Insn.R (op, o_rd (), o_src (), o_src ())
  | 4 | 5 | 6 ->
      let op =
        List.nth Insn.all_iops
          (Random.State.int rng (List.length Insn.all_iops))
      in
      let imm =
        match op with
        | Insn.SLLI | Insn.SRLI | Insn.SRAI -> Random.State.int rng 32
        | _ -> Random.State.int rng 4096 - 2048
      in
      Insn.I (op, o_rd (), o_src (), imm)
  | 7 -> Insn.Lui (o_rd (), Random.State.int rng 0x100000)
  | 8 -> Insn.Lw (o_rd (), 0, mem_imm ())
  | _ -> Insn.Sw (o_src (), 0, mem_imm ())

let to_string p =
  Printf.sprintf "%s O=[0..%d] E=[%d..%d] T=%d mem=%d/%d"
    (match p.scheme with Eddi -> "EDDI-V" | Edsep -> "EDSEP-V")
    (p.n_orig - 1) p.n_orig
    ((2 * p.n_orig) - 1)
    p.n_temp p.mem_half p.mem_words
