(** The correspondence store R of Algorithm 1: for every instruction class,
    a template for a semantically equivalent instruction sequence.

    Templates are written over {e roles} rather than concrete registers:
    [Rd]/[Rs1]/[Rs2] stand for the original instruction's (mapped) operand
    registers, [Tmp i] for partition temporaries, and immediates can copy
    the original's immediate field (optionally redirected into the shadow
    memory half).  The same machinery instantiates templates at three
    levels: concrete instruction sequences (program-level transform,
    Listing 2), and — in {!Qed_top} — combinational instruction words
    inside the QED module circuit.

    EDDI-V duplication is expressed in the same language: every class maps
    to the single-instruction template that reproduces the original with
    mapped operands, so one QED module implementation serves both methods. *)

module Insn = Sqed_isa.Insn

type treg = Rd | Rs1 | Rs2 | Tmp of int | X0

type timm =
  | Imm_const of int
  | Imm_orig  (** the original instruction's 12-bit immediate field *)
  | Imm_orig_shamt
      (** the original's 5-bit shift amount (the immediate field of shift
          instructions excludes the funct7 bits) *)
  | Imm_orig_shadow  (** [Imm_orig] plus the shadow-memory offset *)

type timm20 = Imm20_orig | Imm20_const of int

type tinsn =
  | TR of Insn.rop * treg * treg * treg
  | TI of Insn.iop * treg * treg * timm
  | TLui of treg * timm20  (** LUI with the original's or a fixed imm20 *)
  | TLw of treg * timm  (** load into [treg] from [timm](x0) *)
  | TSw of treg * timm  (** store [treg] to [timm](x0) *)

type key = Kr of Insn.rop | Ki of Insn.iop | Klui | Klw | Ksw

type t = (key * tinsn list) list

val key_of_insn : Insn.t -> key
val key_name : key -> string
val all_keys : ext_m:bool -> ext_div:bool -> key list

val builtin : xlen:int -> n_temp:int -> t
(** The built-in, property-tested EDSEP-V table.  Templates are chosen per
    datapath width (narrow widths admit shorter sign-flip tricks) and per
    available temporary count.  Raises if [n_temp] < 2. *)

val duplicate : t
(** The EDDI-V "table": each class expands to its own remapped copy. *)

val lookup : t -> key -> tinsn list
val seq_len : t -> key -> int
val max_seq_len : t -> int
val max_temps : t -> int

val expand : t -> Partition.t -> Insn.t -> Insn.t list
(** Program-level instantiation: original registers are mapped through the
    partition, temporaries drawn from T.  Raises on an original that is
    not confined to O or whose class is missing from the table. *)

val of_synthesis :
  (key * Sqed_synth.Program.t) list -> fallback:t -> t
(** Build a table from synthesized programs (classes not covered fall back
    to the given table).  The program's inputs are wired to [Rs1]/[Rs2] (or
    the immediate field for I-type specs), its temporaries to [Tmp]s. *)

val validate :
  cfg:Sqed_proc.Config.t ->
  partition:Partition.t ->
  ?samples:int ->
  ?seed:int ->
  t ->
  (unit, string) result
(** Independent sanity check of a table against the golden interpreter:
    for random original instructions and random QED-consistent states,
    executing the original on the O side and its expansion on the E side
    must leave the compared register pair (and, for stores, the shadow
    word) equal, with equivalent-sequence writes confined to E and T.
    Used by the synthesis flow before installing a synthesized table. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse the {!to_string} format (one class per line,
    [KEY -> [INSN; INSN; ...]]), so users can supply hand-written
    transformation tables to the verifier.  Round-trips with
    {!to_string}. *)
