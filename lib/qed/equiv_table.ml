module Insn = Sqed_isa.Insn

type treg = Rd | Rs1 | Rs2 | Tmp of int | X0

type timm = Imm_const of int | Imm_orig | Imm_orig_shamt | Imm_orig_shadow

type timm20 = Imm20_orig | Imm20_const of int

type tinsn =
  | TR of Insn.rop * treg * treg * treg
  | TI of Insn.iop * treg * treg * timm
  | TLui of treg * timm20
  | TLw of treg * timm
  | TSw of treg * timm

type key = Kr of Insn.rop | Ki of Insn.iop | Klui | Klw | Ksw

type t = (key * tinsn list) list

let key_of_insn = function
  | Insn.R (op, _, _, _) -> Kr op
  | Insn.I (op, _, _, _) -> Ki op
  | Insn.Lui _ -> Klui
  | Insn.Lw _ -> Klw
  | Insn.Sw _ -> Ksw

let key_name = function
  | Kr op -> Insn.rop_name op
  | Ki op -> Insn.iop_name op
  | Klui -> "LUI"
  | Klw -> "LW"
  | Ksw -> "SW"

let all_keys ~ext_m ~ext_div =
  let rops =
    List.filter
      (fun op ->
        (ext_m || not (Insn.rop_is_mul op))
        && (ext_div || not (Insn.rop_is_div op)))
      Insn.all_rops
  in
  List.map (fun op -> Kr op) rops
  @ List.map (fun op -> Ki op) Insn.all_iops
  @ [ Klui; Klw; Ksw ]

(* ------------------------------------------------------------------ *)
(* Built-in EDSEP-V templates                                          *)
(* ------------------------------------------------------------------ *)

let t0 = Tmp 0
let t1 = Tmp 1
let t2 = Tmp 2
let t3 = Tmp 3

(* Materialize an immediate and apply the register-register operation —
   the generic equivalent for I-type originals. *)
let via_materialized rop = [ TI (Insn.ADDI, t0, X0, Imm_orig); TR (rop, Rd, Rs1, t0) ]

let via_materialized_shamt rop =
  [ TI (Insn.ADDI, t0, X0, Imm_orig_shamt); TR (rop, Rd, Rs1, t0) ]

(* Pass the second operand through an ADDI-copy so the wiring differs from
   the original even when the same operation is reused (used for classes
   with no structurally different small equivalent, none of which appear
   in Table 1). *)
let via_passthrough rop = [ TI (Insn.ADDI, t0, Rs2, Imm_const 0); TR (rop, Rd, Rs1, t0) ]

let sub_template =
  (* Listing 2: rd = ~(~rs1 + rs2). *)
  [
    TI (Insn.XORI, t0, Rs1, Imm_const (-1));
    TR (Insn.ADD, t1, t0, Rs2);
    TI (Insn.XORI, Rd, t1, Imm_const (-1));
  ]

let slt_narrow ~min_signed =
  (* slt(a,b) = sltu(a ^ MIN, b ^ MIN); the sign flip fits the immediate
     field only at narrow XLEN. *)
  [
    TI (Insn.XORI, t0, Rs1, Imm_const min_signed);
    TI (Insn.XORI, t1, Rs2, Imm_const min_signed);
    TR (Insn.SLTU, Rd, t0, t1);
  ]

let sltu_narrow ~min_signed =
  [
    TI (Insn.XORI, t0, Rs1, Imm_const min_signed);
    TI (Insn.XORI, t1, Rs2, Imm_const min_signed);
    TR (Insn.SLT, Rd, t0, t1);
  ]

let slt_wide ~xlen =
  (* slt = (sa & (sa^sb)) | (~(sa^sb) & sltu(a,b)) over the sign bits. *)
  [
    TI (Insn.SRLI, t0, Rs1, Imm_const (xlen - 1));
    TI (Insn.SRLI, t1, Rs2, Imm_const (xlen - 1));
    TR (Insn.SLTU, t2, Rs1, Rs2);
    TR (Insn.XOR, t3, t0, t1);
    TR (Insn.AND, t0, t3, t0);
    TI (Insn.XORI, t3, t3, Imm_const 1);
    TR (Insn.AND, t3, t3, t2);
    TR (Insn.OR, Rd, t0, t3);
  ]

let sltu_wide ~xlen =
  (* Borrow of a-b: msb((~a & b) | ((~a | b) & (a - b))). *)
  [
    TI (Insn.XORI, t0, Rs1, Imm_const (-1));
    TR (Insn.AND, t1, t0, Rs2);
    TR (Insn.OR, t0, t0, Rs2);
    TR (Insn.SUB, t2, Rs1, Rs2);
    TR (Insn.AND, t0, t0, t2);
    TR (Insn.OR, t0, t1, t0);
    TI (Insn.SRLI, Rd, t0, Imm_const (xlen - 1));
  ]

let sra_template ~xlen =
  (* sra(a,s) = srl(a ^ m, s) ^ m with m the sign smear of a. *)
  [
    TI (Insn.SRLI, t0, Rs1, Imm_const (xlen - 1));
    TR (Insn.SUB, t0, X0, t0);
    TR (Insn.XOR, t1, Rs1, t0);
    TR (Insn.SRL, t1, t1, Rs2);
    TR (Insn.XOR, Rd, t1, t0);
  ]

let mulh_template ~xlen =
  (* mulh(a,b) = mulhu(a,b) - (a<0 ? b : 0) - (b<0 ? a : 0). *)
  [
    TI (Insn.SRAI, t0, Rs1, Imm_const (xlen - 1));
    TR (Insn.AND, t0, t0, Rs2);
    TI (Insn.SRAI, t1, Rs2, Imm_const (xlen - 1));
    TR (Insn.AND, t1, t1, Rs1);
    TR (Insn.ADD, t0, t0, t1);
    TR (Insn.MULHU, t1, Rs1, Rs2);
    TR (Insn.SUB, Rd, t1, t0);
  ]

let mulhu_template ~xlen =
  [
    TI (Insn.SRAI, t0, Rs1, Imm_const (xlen - 1));
    TR (Insn.AND, t0, t0, Rs2);
    TI (Insn.SRAI, t1, Rs2, Imm_const (xlen - 1));
    TR (Insn.AND, t1, t1, Rs1);
    TR (Insn.ADD, t0, t0, t1);
    TR (Insn.MULH, t1, Rs1, Rs2);
    TR (Insn.ADD, Rd, t1, t0);
  ]

let mul_schoolbook ~xlen =
  (* Low half of the product from half-width partial products; the masks
     fit the immediate field only when xlen/2 <= 11 bits. *)
  let h = xlen / 2 in
  let mask = (1 lsl h) - 1 in
  [
    TI (Insn.ANDI, t0, Rs1, Imm_const mask);
    TI (Insn.ANDI, t1, Rs2, Imm_const mask);
    TR (Insn.MUL, t2, t0, t1);
    TI (Insn.SRLI, t3, Rs2, Imm_const h);
    TR (Insn.MUL, t0, t0, t3);
    TI (Insn.SRLI, t3, Rs1, Imm_const h);
    TR (Insn.MUL, t1, t3, t1);
    TR (Insn.ADD, t0, t0, t1);
    TI (Insn.SLLI, t0, t0, Imm_const h);
    TR (Insn.ADD, Rd, t2, t0);
  ]

let builtin ~xlen ~n_temp =
  if n_temp < 2 then invalid_arg "Equiv_table.builtin: need at least 2 temps";
  let narrow = xlen <= 11 in
  let min_signed = 1 lsl (xlen - 1) in
  (* Narrow widths admit the 3-instruction sign-flip trick; wide widths
     need the generic decompositions (and enough temporaries), otherwise
     fall back to a via-copy variant (not Table-1 material then). *)
  let slt =
    if narrow then slt_narrow ~min_signed
    else if n_temp >= 4 then slt_wide ~xlen
    else via_passthrough Insn.SLT
  in
  let sltu =
    if narrow then sltu_narrow ~min_signed
    else if n_temp >= 3 then sltu_wide ~xlen
    else via_passthrough Insn.SLTU
  in
  let mul =
    if xlen / 2 <= 11 && n_temp >= 4 then mul_schoolbook ~xlen
    else via_passthrough Insn.MUL
  in
  [
    (Kr Insn.ADD, [ TR (Insn.SUB, t0, X0, Rs2); TR (Insn.SUB, Rd, Rs1, t0) ]);
    (Kr Insn.SUB, sub_template);
    ( Kr Insn.XOR,
      [ TR (Insn.OR, t0, Rs1, Rs2); TR (Insn.AND, t1, Rs1, Rs2); TR (Insn.SUB, Rd, t0, t1) ] );
    ( Kr Insn.OR,
      [ TR (Insn.XOR, t0, Rs1, Rs2); TR (Insn.AND, t1, Rs1, Rs2); TR (Insn.ADD, Rd, t0, t1) ] );
    ( Kr Insn.AND,
      [ TR (Insn.OR, t0, Rs1, Rs2); TR (Insn.XOR, t1, Rs1, Rs2); TR (Insn.SUB, Rd, t0, t1) ] );
    (Kr Insn.SLL, via_passthrough Insn.SLL);
    (Kr Insn.SRL, via_passthrough Insn.SRL);
    (Kr Insn.SRA, sra_template ~xlen);
    (Kr Insn.SLT, slt);
    (Kr Insn.SLTU, sltu);
    (Kr Insn.MUL, mul);
    (Kr Insn.MULH, mulh_template ~xlen);
    (Kr Insn.MULHU, mulhu_template ~xlen);
    (* No structurally different small decomposition exists for division;
       the via-copy transform keeps EDSEP-V total over the ISA (these
       classes are not Table-1 material). *)
    (Kr Insn.DIV, via_passthrough Insn.DIV);
    (Kr Insn.DIVU, via_passthrough Insn.DIVU);
    (Kr Insn.REM, via_passthrough Insn.REM);
    (Kr Insn.REMU, via_passthrough Insn.REMU);
    (Ki Insn.ADDI, via_materialized Insn.ADD);
    (Ki Insn.XORI, via_materialized Insn.XOR);
    (Ki Insn.ORI, via_materialized Insn.OR);
    (Ki Insn.ANDI, via_materialized Insn.AND);
    (Ki Insn.SLTI, via_materialized Insn.SLT);
    (Ki Insn.SLTIU, via_materialized Insn.SLTU);
    (Ki Insn.SLLI, via_materialized_shamt Insn.SLL);
    (Ki Insn.SRLI, via_materialized_shamt Insn.SRL);
    (Ki Insn.SRAI, via_materialized_shamt Insn.SRA);
    (Klui, [ TLui (t0, Imm20_orig); TI (Insn.ADDI, Rd, t0, Imm_const 0) ]);
    (Klw, [ TLw (t0, Imm_orig_shadow); TI (Insn.ADDI, Rd, t0, Imm_const 0) ]);
    (Ksw, [ TI (Insn.ADDI, t0, Rs2, Imm_const 0); TSw (t0, Imm_orig_shadow) ]);
  ]

let duplicate =
  List.map (fun op -> (Kr op, [ TR (op, Rd, Rs1, Rs2) ])) Insn.all_rops
  @ List.map
      (fun op ->
        let imm =
          match op with
          | Insn.SLLI | Insn.SRLI | Insn.SRAI -> Imm_orig_shamt
          | _ -> Imm_orig
        in
        (Ki op, [ TI (op, Rd, Rs1, imm) ]))
      Insn.all_iops
  @ [
      (Klui, [ TLui (Rd, Imm20_orig) ]);
      (Klw, [ TLw (Rd, Imm_orig_shadow) ]);
      (Ksw, [ TSw (Rs2, Imm_orig_shadow) ]);
    ]

let lookup table key =
  match List.assoc_opt key table with
  | Some seq -> seq
  | None -> failwith ("Equiv_table.lookup: no template for " ^ key_name key)

let seq_len table key = List.length (lookup table key)

let max_seq_len table =
  List.fold_left (fun acc (_, seq) -> max acc (List.length seq)) 0 table

let temps_of_tinsn ti =
  let of_reg = function Tmp i -> [ i ] | Rd | Rs1 | Rs2 | X0 -> [] in
  match ti with
  | TR (_, a, b, c) -> of_reg a @ of_reg b @ of_reg c
  | TI (_, a, b, _) -> of_reg a @ of_reg b
  | TLui (a, _) | TLw (a, _) | TSw (a, _) -> of_reg a

let max_temps table =
  List.fold_left
    (fun acc (_, seq) ->
      List.fold_left
        (fun acc ti -> List.fold_left (fun a i -> max a (i + 1)) acc (temps_of_tinsn ti))
        acc seq)
    0 table

(* ------------------------------------------------------------------ *)
(* Program-level instantiation                                         *)
(* ------------------------------------------------------------------ *)

let operand_fields insn =
  (* (rd, rs1, rs2, imm12, imm20) with don't-cares zeroed. *)
  match insn with
  | Insn.R (_, rd, rs1, rs2) -> (rd, rs1, rs2, 0, 0)
  | Insn.I (_, rd, rs1, imm) -> (rd, rs1, 0, imm, 0)
  | Insn.Lui (rd, imm) -> (rd, 0, 0, 0, imm)
  | Insn.Lw (rd, rs1, imm) -> (rd, rs1, 0, imm, 0)
  | Insn.Sw (rs2, rs1, imm) -> (0, rs1, rs2, imm, 0)

let expand table p insn =
  let rd, rs1, rs2, imm12, imm20 = operand_fields insn in
  let check_orig r =
    if not (Partition.in_orig p r) then
      failwith
        (Printf.sprintf "Equiv_table.expand: register x%d of %s not in O" r
           (Insn.to_string insn))
  in
  List.iter check_orig (Insn.sources insn);
  (match Insn.rd insn with
  | Some r -> check_orig r
  | None -> ());
  let reg = function
    | Rd -> Partition.map_reg p rd
    | Rs1 -> Partition.map_reg p rs1
    | Rs2 -> Partition.map_reg p rs2
    | Tmp i -> Partition.temp_reg p i
    | X0 -> 0
  in
  let imm = function
    | Imm_const v -> v
    | Imm_orig | Imm_orig_shamt -> imm12
    | Imm_orig_shadow -> imm12 + p.Partition.mem_half
  in
  List.map
    (function
      | TR (op, a, b, c) -> Insn.R (op, reg a, reg b, reg c)
      | TI (op, a, b, v) -> Insn.I (op, reg a, reg b, imm v)
      | TLui (a, v) ->
          Insn.Lui (reg a, match v with Imm20_orig -> imm20 | Imm20_const c -> c)
      | TLw (a, v) -> Insn.Lw (reg a, 0, imm v)
      | TSw (a, v) -> Insn.Sw (reg a, 0, imm v))
    (lookup table (key_of_insn insn))

(* ------------------------------------------------------------------ *)
(* Validation against the golden interpreter                           *)
(* ------------------------------------------------------------------ *)

let validate ~cfg ~partition:p ?(samples = 300) ?(seed = 0x7ab1e) table =
  let module Exec = Sqed_isa.Exec in
  let module Config = Sqed_proc.Config in
  let xlen = cfg.Config.xlen in
  let rng = Random.State.make [| seed |] in
  let consistent_state () =
    let st = Exec.create ~xlen ~mem_words:cfg.Config.mem_words in
    for i = 1 to p.Partition.n_orig - 1 do
      let v = Sqed_bv.Bv.random rng xlen in
      Exec.set_reg st i v;
      Exec.set_reg st (Partition.map_reg p i) v
    done;
    List.iter
      (fun t -> Exec.set_reg st t (Sqed_bv.Bv.random rng xlen))
      (Partition.temps p);
    for w = 0 to p.Partition.mem_half - 1 do
      let v = Sqed_bv.Bv.random rng xlen in
      Exec.store st (Sqed_bv.Bv.of_int ~width:xlen w) v;
      Exec.store st
        (Sqed_bv.Bv.of_int ~width:xlen (w + p.Partition.mem_half))
        v
    done;
    st
  in
  let check insn =
    let seq = expand table p insn in
    (* Write discipline: one final E write, temps in T. *)
    let e_writes = ref 0 in
    let discipline =
      List.for_all
        (fun i ->
          match Insn.rd i with
          | None -> true
          | Some rd ->
              if Partition.in_equiv p rd then begin
                incr e_writes;
                true
              end
              else List.mem rd (Partition.temps p))
        seq
    in
    let expected_e = match Insn.rd insn with Some _ -> 1 | None -> 0 in
    if not (discipline && !e_writes = expected_e) then
      Error
        (Printf.sprintf "write discipline violated for %s" (Insn.to_string insn))
    else begin
      let st = consistent_state () in
      let st_o = Exec.copy st and st_e = Exec.copy st in
      Exec.exec st_o insn;
      List.iter (Exec.exec st_e) seq;
      let ok_rd =
        match Insn.rd insn with
        | Some rd when rd <> 0 ->
            Sqed_bv.Bv.equal (Exec.reg st_o rd)
              (Exec.reg st_e (Partition.map_reg p rd))
        | _ -> true
      in
      let ok_mem =
        match insn with
        | Insn.Sw (_, _, imm) ->
            Sqed_bv.Bv.equal
              (Exec.load st_o (Sqed_bv.Bv.of_int ~width:xlen imm))
              (Exec.load st_e
                 (Sqed_bv.Bv.of_int ~width:xlen (imm + p.Partition.mem_half)))
        | _ -> true
      in
      if ok_rd && ok_mem then Ok ()
      else
        Error
          (Printf.sprintf "inequivalent expansion for %s" (Insn.to_string insn))
    end
  in
  let rec go n =
    if n = 0 then Ok ()
    else
      let insn =
        Partition.random_original p ~ext_m:cfg.Config.ext_m
          ~ext_div:cfg.Config.ext_div rng
      in
      match check insn with Ok () -> go (n - 1) | Error e -> Error e
  in
  go samples

(* ------------------------------------------------------------------ *)
(* Tables from synthesized programs                                    *)
(* ------------------------------------------------------------------ *)

(* Sentinel registers/immediates let us reuse Program.to_insns and read the
   roles back off the concrete instructions. *)
let sent_rd = 40
let sent_rs1 = 41
let sent_rs2 = 42
let sent_tmp = 50
let sent_imm = 4097 (* outside any 12-bit signed immediate *)

let template_of_program (program : Sqed_synth.Program.t) =
  let inputs =
    List.mapi
      (fun i kind ->
        match kind with
        | Sqed_synth.Component.Reg -> `Reg (if i = 0 then sent_rs1 else sent_rs2)
        | Sqed_synth.Component.Imm12 -> `Imm sent_imm)
      program.Sqed_synth.Program.spec_inputs
  in
  let temps =
    List.init (Sqed_synth.Program.temps_needed program) (fun i -> sent_tmp + i)
  in
  let insns =
    Sqed_synth.Program.to_insns ~xlen:32 program ~dst:sent_rd ~inputs ~temps
  in
  let reg r =
    if r = sent_rd then Rd
    else if r = sent_rs1 then Rs1
    else if r = sent_rs2 then Rs2
    else if r = 0 then X0
    else if r >= sent_tmp then Tmp (r - sent_tmp)
    else failwith "Equiv_table.of_synthesis: unexpected register"
  in
  let imm v = if v = sent_imm then Imm_orig else Imm_const v in
  List.map
    (function
      | Insn.R (op, a, b, c) -> TR (op, reg a, reg b, reg c)
      | Insn.I (op, a, b, v) -> TI (op, reg a, reg b, imm v)
      | Insn.Lui (a, v) -> TLui (reg a, Imm20_const v)
      | Insn.Lw _ | Insn.Sw _ ->
          failwith "Equiv_table.of_synthesis: memory instruction in program")
    insns

let of_synthesis programs ~fallback =
  let synthesized =
    List.map (fun (key, p) -> (key, template_of_program p)) programs
  in
  let keys = List.map fst synthesized in
  synthesized
  @ List.filter (fun (k, _) -> not (List.mem k keys)) fallback

let treg_to_string = function
  | Rd -> "rd'"
  | Rs1 -> "rs1'"
  | Rs2 -> "rs2'"
  | Tmp i -> Printf.sprintf "t%d" i
  | X0 -> "x0"

let timm_to_string = function
  | Imm_const v -> string_of_int v
  | Imm_orig -> "imm"
  | Imm_orig_shamt -> "shamt"
  | Imm_orig_shadow -> "imm+half"

let tinsn_to_string = function
  | TR (op, a, b, c) ->
      Printf.sprintf "%s %s, %s, %s" (Insn.rop_name op) (treg_to_string a)
        (treg_to_string b) (treg_to_string c)
  | TI (op, a, b, v) ->
      Printf.sprintf "%s %s, %s, %s" (Insn.iop_name op) (treg_to_string a)
        (treg_to_string b) (timm_to_string v)
  | TLui (a, v) ->
      Printf.sprintf "LUI %s, %s" (treg_to_string a)
        (match v with Imm20_orig -> "imm20" | Imm20_const c -> string_of_int c)
  | TLw (a, v) -> Printf.sprintf "LW %s, %s(x0)" (treg_to_string a) (timm_to_string v)
  | TSw (a, v) -> Printf.sprintf "SW %s, %s(x0)" (treg_to_string a) (timm_to_string v)

let to_string table =
  String.concat "\n"
    (List.map
       (fun (k, seq) ->
         Printf.sprintf "%-6s -> [%s]" (key_name k)
           (String.concat "; " (List.map tinsn_to_string seq)))
       table)

(* ------------------------------------------------------------------ *)
(* Parsing the textual table format                                    *)
(* ------------------------------------------------------------------ *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

exception Table_error of string

let key_of_name name =
  match List.find_opt (fun op -> Insn.rop_name op = name) Insn.all_rops with
  | Some op -> Kr op
  | None -> (
      match
        List.find_opt (fun op -> Insn.iop_name op = name) Insn.all_iops
      with
      | Some op -> Ki op
      | None -> (
          match name with
          | "LUI" -> Klui
          | "LW" -> Klw
          | "SW" -> Ksw
          | _ -> raise (Table_error ("unknown instruction class " ^ name))))

let treg_of_string s =
  match strip s with
  | "rd'" -> Rd
  | "rs1'" -> Rs1
  | "rs2'" -> Rs2
  | "x0" -> X0
  | t when String.length t > 1 && t.[0] = 't' -> (
      match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
      | Some i when i >= 0 -> Tmp i
      | _ -> raise (Table_error ("bad register token " ^ t)))
  | t -> raise (Table_error ("bad register token " ^ t))

let timm_of_string s =
  match strip s with
  | "imm" -> Imm_orig
  | "shamt" -> Imm_orig_shamt
  | "imm+half" -> Imm_orig_shadow
  | t -> (
      match int_of_string_opt t with
      | Some v -> Imm_const v
      | None -> raise (Table_error ("bad immediate token " ^ t)))

let tinsn_of_string s =
  let s = strip s in
  match String.index_opt s ' ' with
  | None -> raise (Table_error ("cannot parse instruction " ^ s))
  | Some i -> (
      let mnemonic = String.sub s 0 i in
      let rest = String.sub s i (String.length s - i) in
      let ops = String.split_on_char ',' rest |> List.map strip in
      let mem_operand op =
        (* "imm+half(x0)" / "3(x0)" *)
        match String.index_opt op '(' with
        | Some k when String.length op > 0 && op.[String.length op - 1] = ')'
          ->
            let imm = timm_of_string (String.sub op 0 k) in
            let base = String.sub op (k + 1) (String.length op - k - 2) in
            if strip base <> "x0" then
              raise (Table_error "memory base must be x0");
            imm
        | _ -> raise (Table_error ("bad memory operand " ^ op))
      in
      match
        ( List.find_opt (fun op -> Insn.rop_name op = mnemonic) Insn.all_rops,
          List.find_opt (fun op -> Insn.iop_name op = mnemonic) Insn.all_iops,
          mnemonic,
          ops )
      with
      | Some op, _, _, [ a; b; c ] ->
          TR (op, treg_of_string a, treg_of_string b, treg_of_string c)
      | _, Some op, _, [ a; b; c ] ->
          TI (op, treg_of_string a, treg_of_string b, timm_of_string c)
      | _, _, "LUI", [ a; b ] ->
          let v =
            match strip b with
            | "imm20" -> Imm20_orig
            | t -> (
                match int_of_string_opt t with
                | Some c -> Imm20_const c
                | None -> raise (Table_error ("bad imm20 token " ^ t)))
          in
          TLui (treg_of_string a, v)
      | _, _, "LW", [ a; b ] -> TLw (treg_of_string a, mem_operand b)
      | _, _, "SW", [ a; b ] -> TSw (treg_of_string a, mem_operand b)
      | _ -> raise (Table_error ("cannot parse instruction " ^ s)))

let of_string text =
  try
    let entries =
      String.split_on_char '\n' text
      |> List.filter_map (fun line ->
             let line = strip line in
             if line = "" || line.[0] = '#' then None
             else
               match String.index_opt line '-' with
               | Some i
                 when i + 1 < String.length line && line.[i + 1] = '>' ->
                   let key = key_of_name (strip (String.sub line 0 i)) in
                   let body =
                     strip
                       (String.sub line (i + 2) (String.length line - i - 2))
                   in
                   let n = String.length body in
                   if n < 2 || body.[0] <> '[' || body.[n - 1] <> ']' then
                     raise (Table_error ("expected [...] in " ^ line));
                   let inner = String.sub body 1 (n - 2) in
                   let seq =
                     String.split_on_char ';' inner
                     |> List.map strip
                     |> List.filter (fun s -> s <> "")
                     |> List.map tinsn_of_string
                   in
                   if seq = [] then
                     raise (Table_error ("empty sequence in " ^ line));
                   Some (key, seq)
               | _ -> raise (Table_error ("expected '->' in " ^ line)))
    in
    Ok entries
  with Table_error e -> Error e
