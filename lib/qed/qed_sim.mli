(** Concrete QED testing (the post-silicon technique SQED symbolizes):
    drive randomized original-instruction programs through the QED-top
    circuit simulation and watch for property violations.

    This gives a falsification mode that needs no solver — useful both as
    a sanity oracle for the formal models (the unmutated design must never
    report [bad]) and to contrast concrete QED's probabilistic detection
    with BMC's exhaustive search, mirroring the QED -> SQED lineage of the
    paper's Section 2. *)

module Bv = Sqed_bv.Bv
module Insn = Sqed_isa.Insn

type run = {
  program : Insn.t list;  (** the original instructions injected *)
  cycles : int;
  bad_fired : bool;
  reached_ready : bool;  (** ended in a consistent QED-ready state *)
}

val random_original : Qed_top.t -> Random.State.t -> Insn.t
(** A random legal original instruction for the model's partition (fields
    in O, loads/stores confined to the original memory half). *)

val run_program :
  ?interleave:(Random.State.t -> bool) ->
  Qed_top.t ->
  Random.State.t ->
  Insn.t list ->
  run
(** Simulate one program.  [interleave] decides, each cycle where both a
    new original and a pending equivalent instruction are available, which
    to dispatch (default: random). *)

type campaign = {
  runs : int;
  detections : int;
  first_detection : int option;  (** run index of the first [bad] *)
  total_cycles : int;
}

val campaign :
  ?bug:Sqed_proc.Bug.t ->
  ?table:Equiv_table.t ->
  ?check_mem:bool ->
  scheme:Partition.scheme ->
  seed:int ->
  runs:int ->
  program_length:int ->
  Sqed_proc.Config.t ->
  campaign
(** Run [runs] random programs of the given length on a fresh model. *)
