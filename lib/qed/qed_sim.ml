module Bv = Sqed_bv.Bv
module Insn = Sqed_isa.Insn
module Sim = Sqed_rtl.Sim
module Config = Sqed_proc.Config

type run = {
  program : Insn.t list;
  cycles : int;
  bad_fired : bool;
  reached_ready : bool;
}

let random_original model rng =
  let cfg = model.Qed_top.cfg in
  Partition.random_original model.Qed_top.partition ~ext_m:cfg.Config.ext_m
    ~ext_div:cfg.Config.ext_div rng

let flag outs name = not (Bv.is_zero (List.assoc name outs))

let run_program ?interleave model rng program =
  let interleave =
    match interleave with Some f -> f | None -> Random.State.bool
  in
  (* Random (but QED-consistent) initial state. *)
  let p = model.Qed_top.partition in
  let cfg = model.Qed_top.cfg in
  let xlen = cfg.Config.xlen in
  let init_regs = Hashtbl.create 32 in
  for i = 1 to p.Partition.n_orig - 1 do
    let v = Bv.random rng xlen in
    Hashtbl.replace init_regs (Printf.sprintf "reg%d_init" i) v;
    Hashtbl.replace init_regs
      (Printf.sprintf "reg%d_init" (i + p.Partition.n_orig))
      v
  done;
  List.iter
    (fun t ->
      Hashtbl.replace init_regs
        (Printf.sprintf "reg%d_init" t)
        (Bv.random rng xlen))
    (Partition.temps p);
  for w = 0 to p.Partition.mem_half - 1 do
    let v = Bv.random rng xlen in
    Hashtbl.replace init_regs (Printf.sprintf "dmem_%d" w) v;
    Hashtbl.replace init_regs
      (Printf.sprintf "dmem_%d" (w + p.Partition.mem_half))
      v
  done;
  let sim =
    Sim.create ~initial:(Hashtbl.find_opt init_regs) model.Qed_top.circuit
  in
  let bad = ref false in
  let ready = ref false in
  let cycles = ref 0 in
  let cycle ~pending ~valid =
    incr cycles;
    let word =
      match pending with
      | Some insn -> Sqed_isa.Encode.encode insn
      | None -> Bv.zero 32
    in
    let sel = if valid && interleave rng then Bv.one 1 else Bv.zero 1 in
    let outs =
      Sim.cycle sim
        [
          ("orig_instr", word);
          ("orig_valid", Bv.of_bool valid);
          ("sel", sel);
        ]
    in
    if flag outs "bad" then bad := true;
    if flag outs "qed_ready" && flag outs "consistent" then ready := true;
    flag outs "consumed" && flag outs "is_orig"
  in
  let rec feed = function
    | [] -> ()
    | insn :: rest ->
        if !cycles > 64 * (List.length program + 4) then
          failwith "Qed_sim: model refused the program";
        if cycle ~pending:(Some insn) ~valid:true then feed rest
        else feed (insn :: rest)
  in
  feed program;
  (* Drain until QED-ready (or give up after a grace period). *)
  let grace = ref (16 * (Qed_top.(model.table) |> Equiv_table.max_seq_len) + 32) in
  while (not !ready) && (not !bad) && !grace > 0 do
    decr grace;
    ignore (cycle ~pending:None ~valid:false)
  done;
  { program; cycles = !cycles; bad_fired = !bad; reached_ready = !ready }

type campaign = {
  runs : int;
  detections : int;
  first_detection : int option;
  total_cycles : int;
}

let campaign ?bug ?table ?check_mem ~scheme ~seed ~runs ~program_length cfg =
  let model =
    match scheme with
    | Partition.Eddi -> Qed_top.eddi ?bug ?check_mem cfg
    | Partition.Edsep -> Qed_top.edsep ?bug ?check_mem ?table cfg
  in
  let rng = Random.State.make [| seed |] in
  let detections = ref 0 in
  let first = ref None in
  let total_cycles = ref 0 in
  for i = 0 to runs - 1 do
    let program =
      List.init program_length (fun _ -> random_original model rng)
    in
    let r = run_program model rng program in
    total_cycles := !total_cycles + r.cycles;
    if r.bad_fired then begin
      incr detections;
      if !first = None then first := Some i
    end
  done;
  {
    runs;
    detections = !detections;
    first_detection = !first;
    total_cycles = !total_cycles;
  }
