module C = Sqed_rtl.Circuit
module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Decode = Sqed_proc.Decode
module Pipeline = Sqed_proc.Pipeline
module Insn = Sqed_isa.Insn
module Term = Sqed_smt.Term

type t = {
  circuit : C.t;
  cfg : Config.t;
  partition : Partition.t;
  table : Equiv_table.t;
  check_mem : bool;
}

(* Major opcodes (duplicated from the ISA encoder; the QED module is real
   hardware and assembles instruction words by itself). *)
let op_rtype = 0b0110011
let op_itype = 0b0010011
let op_lui = 0b0110111
let op_load = 0b0000011
let op_store = 0b0100011

let rop_functs op =
  match op with
  | Insn.ADD -> (0b000, 0b0000000)
  | Insn.SUB -> (0b000, 0b0100000)
  | Insn.SLL -> (0b001, 0b0000000)
  | Insn.SLT -> (0b010, 0b0000000)
  | Insn.SLTU -> (0b011, 0b0000000)
  | Insn.XOR -> (0b100, 0b0000000)
  | Insn.SRL -> (0b101, 0b0000000)
  | Insn.SRA -> (0b101, 0b0100000)
  | Insn.OR -> (0b110, 0b0000000)
  | Insn.AND -> (0b111, 0b0000000)
  | Insn.MUL -> (0b000, 0b0000001)
  | Insn.MULH -> (0b001, 0b0000001)
  | Insn.MULHU -> (0b011, 0b0000001)
  | Insn.DIV -> (0b100, 0b0000001)
  | Insn.DIVU -> (0b101, 0b0000001)
  | Insn.REM -> (0b110, 0b0000001)
  | Insn.REMU -> (0b111, 0b0000001)

let iop_funct3 = function
  | Insn.ADDI -> 0b000
  | Insn.SLTI -> 0b010
  | Insn.SLTIU -> 0b011
  | Insn.XORI -> 0b100
  | Insn.ORI -> 0b110
  | Insn.ANDI -> 0b111
  | Insn.SLLI -> 0b001
  | Insn.SRLI -> 0b101
  | Insn.SRAI -> 0b101

let is_shift_iop = function
  | Insn.SLLI | Insn.SRLI | Insn.SRAI -> true
  | Insn.ADDI | Insn.SLTI | Insn.SLTIU | Insn.XORI | Insn.ORI | Insn.ANDI ->
      false

type core = Five_stage | Three_stage

let build ?bug ?(check_mem = true) ?focus ?(core = Five_stage) ~table
    ~partition cfg =
  Config.validate cfg;
  if Equiv_table.max_temps table > partition.Partition.n_temp then
    failwith "Qed_top.build: table needs more temporaries than the partition has";
  let p = partition in
  let n_orig = p.Partition.n_orig in
  let b = C.create "qed_top" in
  let ( &&& ) = C.and_ b and ( ||| ) = C.or_ b in
  let not_ = C.not_ b in
  let c5 v = C.consti b ~width:5 v in

  let orig_instr = C.input b "orig_instr" 32 in
  let orig_valid = C.input b "orig_valid" 1 in
  let sel = C.input b "sel" 1 in

  (* ---- queue of accepted originals (depth 2) ------------------------- *)
  let q0 = C.reg_const b ~name:"q0_instr" ~width:32 0 in
  let q0_valid = C.reg_const b ~name:"q0_valid" ~width:1 0 in
  let q1 = C.reg_const b ~name:"q1_instr" ~width:32 0 in
  let q1_valid = C.reg_const b ~name:"q1_valid" ~width:1 0 in
  let step = C.reg_const b ~name:"qed_step" ~width:5 0 in

  (* ---- input constraints on the original instruction ------------------ *)
  let dor = Decode.decode b cfg orig_instr in
  let in_o field = C.ult b field (c5 n_orig) in
  let rd_ok =
    (* Stores write no register; everything else must write into O \ {x0}. *)
    dor.Decode.is_store
    ||| (in_o dor.Decode.rd &&& C.neq b dor.Decode.rd (c5 0))
  in
  let rs1_ok = not_ dor.Decode.uses_rs1 ||| in_o dor.Decode.rs1 in
  let rs2_ok = not_ dor.Decode.uses_rs2 ||| in_o dor.Decode.rs2 in
  let imm_i_field = C.extract b ~hi:31 ~lo:20 orig_instr in
  let imm_s_field =
    C.concat b
      (C.extract b ~hi:31 ~lo:25 orig_instr)
      (C.extract b ~hi:11 ~lo:7 orig_instr)
  in
  let mem_ok =
    (* Loads and stores address the original half through x0. *)
    let half = p.Partition.mem_half in
    let imm_in_half imm12 = C.ult b imm12 (C.consti b ~width:12 half) in
    let base_x0 = C.eq b dor.Decode.rs1 (c5 0) in
    not_ (dor.Decode.is_load ||| dor.Decode.is_store)
    ||| (base_x0
        &&& C.mux b dor.Decode.is_store (imm_in_half imm_s_field)
              (imm_in_half imm_i_field))
  in
  let focus_ok =
    (* Optional class focus for witness queries (see the interface). *)
    match focus with
    | None -> C.vdd b
    | Some key -> (
        let alu v = C.eq b dor.Decode.alu_op (C.consti b ~width:5 v) in
        match key with
        | Equiv_table.Kr op ->
            dor.Decode.is_r &&& alu (Decode.alu_code_of_rop op)
        | Equiv_table.Ki op ->
            dor.Decode.is_i &&& alu (Decode.alu_code_of_iop op)
        | Equiv_table.Klui -> dor.Decode.is_lui
        | Equiv_table.Klw -> dor.Decode.is_load
        | Equiv_table.Ksw -> dor.Decode.is_store)
  in
  let input_ok =
    dor.Decode.legal &&& rd_ok &&& rs1_ok &&& rs2_ok &&& mem_ok &&& focus_ok
  in

  (* ---- template expansion of the queue head --------------------------- *)
  let dq = Decode.decode b cfg q0 in
  let q_imm_i = C.extract b ~hi:31 ~lo:20 q0 in
  let q_imm_s =
    C.concat b (C.extract b ~hi:31 ~lo:25 q0) (C.extract b ~hi:11 ~lo:7 q0)
  in
  let q_imm12 = C.mux b dq.Decode.is_store q_imm_s q_imm_i in
  let q_shamt12 = C.zext b (C.extract b ~hi:24 ~lo:20 q0) 12 in
  let q_imm_shadow =
    C.add b q_imm12 (C.consti b ~width:12 p.Partition.mem_half)
  in
  let q_imm20 = C.extract b ~hi:31 ~lo:12 q0 in
  let map_field f = C.add b f (c5 n_orig) in
  let treg = function
    | Equiv_table.Rd -> map_field dq.Decode.rd
    | Equiv_table.Rs1 -> map_field dq.Decode.rs1
    | Equiv_table.Rs2 -> map_field dq.Decode.rs2
    | Equiv_table.Tmp i -> c5 (Partition.temp_reg p i)
    | Equiv_table.X0 -> c5 0
  in
  let timm = function
    | Equiv_table.Imm_const v -> C.consti b ~width:12 v
    | Equiv_table.Imm_orig -> q_imm12
    | Equiv_table.Imm_orig_shamt -> q_shamt12
    | Equiv_table.Imm_orig_shadow -> q_imm_shadow
  in
  let word fields =
    (* Most-significant field first; widths must add up to 32. *)
    match fields with
    | [] -> invalid_arg "word"
    | f :: rest -> List.fold_left (fun acc g -> C.concat b acc g) f rest
  in
  let encode_tinsn ti =
    match ti with
    | Equiv_table.TR (op, d, a, bb) ->
        let f3, f7 = rop_functs op in
        word
          [
            C.consti b ~width:7 f7; treg bb; treg a; C.consti b ~width:3 f3;
            treg d; C.consti b ~width:7 op_rtype;
          ]
    | Equiv_table.TI (op, d, a, v) ->
        let imm = timm v in
        let imm12 =
          if is_shift_iop op then
            let f7 = if op = Insn.SRAI then 0b0100000 else 0 in
            C.concat b (C.consti b ~width:7 f7) (C.extract b ~hi:4 ~lo:0 imm)
          else imm
        in
        word
          [
            imm12; treg a; C.consti b ~width:3 (iop_funct3 op); treg d;
            C.consti b ~width:7 op_itype;
          ]
    | Equiv_table.TLui (d, v) ->
        let imm20 =
          match v with
          | Equiv_table.Imm20_orig -> q_imm20
          | Equiv_table.Imm20_const c -> C.consti b ~width:20 c
        in
        word [ imm20; treg d; C.consti b ~width:7 op_lui ]
    | Equiv_table.TLw (d, v) ->
        word
          [
            timm v; c5 0; C.consti b ~width:3 0b010; treg d;
            C.consti b ~width:7 op_load;
          ]
    | Equiv_table.TSw (src, v) ->
        let imm = timm v in
        word
          [
            C.extract b ~hi:11 ~lo:5 imm; treg src; c5 0;
            C.consti b ~width:3 0b010; C.extract b ~hi:4 ~lo:0 imm;
            C.consti b ~width:7 op_store;
          ]
  in
  let key_match = function
    | Equiv_table.Kr op ->
        dq.Decode.is_r
        &&& C.eq b dq.Decode.alu_op
              (C.consti b ~width:5 (Decode.alu_code_of_rop op))
    | Equiv_table.Ki op ->
        dq.Decode.is_i
        &&& C.eq b dq.Decode.alu_op
              (C.consti b ~width:5 (Decode.alu_code_of_iop op))
    | Equiv_table.Klui -> dq.Decode.is_lui
    | Equiv_table.Klw -> dq.Decode.is_load
    | Equiv_table.Ksw -> dq.Decode.is_store
  in
  let exp_len =
    C.onehot_mux b
      (List.map
         (fun (k, seq) ->
           (key_match k, C.consti b ~width:5 (List.length seq)))
         table)
      ~default:(C.consti b ~width:5 1)
  in
  let exp_insn =
    let cases =
      List.concat_map
        (fun (k, seq) ->
          let km = key_match k in
          List.mapi
            (fun i ti ->
              (km &&& C.eq b step (c5 i), encode_tinsn ti))
            seq)
        table
    in
    C.onehot_mux b cases ~default:(C.consti b ~width:32 0)
  in

  (* ---- dispatch --------------------------------------------------------- *)
  let queue_full = q1_valid in
  let orig_avail = orig_valid &&& input_ok &&& not_ queue_full in
  let equiv_avail = q0_valid in
  let dispatch_orig = orig_avail &&& (sel ||| not_ equiv_avail) in
  let dispatch_equiv = equiv_avail &&& not_ dispatch_orig in
  let core_instr = C.mux b dispatch_orig orig_instr exp_insn in
  let core_valid = dispatch_orig ||| dispatch_equiv in

  let core_build =
    match core with
    | Five_stage -> Pipeline.build
    | Three_stage -> Sqed_proc.Pipeline3.build
  in
  let pipe = core_build ~b ?bug cfg ~instr:core_instr ~instr_valid:core_valid in
  let consumed = core_valid &&& not_ pipe.Pipeline.stall in
  let orig_consumed = dispatch_orig &&& consumed in
  let equiv_consumed = dispatch_equiv &&& consumed in

  (* ---- queue update ------------------------------------------------------ *)
  let step_next = C.add b step (c5 1) in
  let seq_done = equiv_consumed &&& C.eq b step_next exp_len in
  let pop = seq_done in
  let push = orig_consumed in
  (* push and pop are mutually exclusive (one dispatch per cycle). *)
  C.connect b q0
    (C.mux b pop q1 (C.mux b (push &&& not_ q0_valid) orig_instr q0));
  C.connect b q0_valid
    (C.mux b pop q1_valid (q0_valid ||| push));
  C.connect b q1
    (C.mux b (push &&& q0_valid) orig_instr q1);
  C.connect b q1_valid
    (C.mux b pop (C.gnd b) (q1_valid ||| (push &&& q0_valid)));
  C.connect b step
    (C.mux b pop (c5 0) (C.mux b equiv_consumed step_next step));

  (* ---- commit counters ---------------------------------------------------- *)
  let cnt name = C.reg_const b ~name ~width:6 0 in
  let o_wb_cnt = cnt "o_wb_cnt" and e_wb_cnt = cnt "e_wb_cnt" in
  let o_st_cnt = cnt "o_st_cnt" and e_st_cnt = cnt "e_st_cnt" in
  let bump cond c = C.connect b c (C.mux b cond (C.add b c (C.consti b ~width:6 1)) c) in
  let wb_in_o = pipe.Pipeline.wb_valid &&& C.ult b pipe.Pipeline.wb_rd (c5 n_orig) in
  let wb_in_e =
    pipe.Pipeline.wb_valid
    &&& C.ule b (c5 n_orig) pipe.Pipeline.wb_rd
    &&& C.ult b pipe.Pipeline.wb_rd (c5 (2 * n_orig))
  in
  let abits = Config.addr_bits cfg in
  let addr_msb = C.bit b pipe.Pipeline.store_addr (abits - 1) in
  let st_in_o = pipe.Pipeline.store_valid &&& not_ addr_msb in
  let st_in_e = pipe.Pipeline.store_valid &&& addr_msb in
  bump wb_in_o o_wb_cnt;
  bump wb_in_e e_wb_cnt;
  bump st_in_o o_st_cnt;
  bump st_in_e e_st_cnt;

  (* ---- the universal property ------------------------------------------- *)
  let did_something =
    C.neq b o_wb_cnt (C.consti b ~width:6 0)
    ||| C.neq b o_st_cnt (C.consti b ~width:6 0)
  in
  let qed_ready =
    not_ q0_valid &&& not_ pipe.Pipeline.busy
    &&& C.eq b o_wb_cnt e_wb_cnt
    &&& C.eq b o_st_cnt e_st_cnt
    &&& did_something
  in
  let regs = pipe.Pipeline.regs in
  let reg_pairs_ok =
    let pairs =
      List.init (n_orig - 1) (fun i ->
          C.eq b regs.(i + 1) regs.(i + 1 + n_orig))
    in
    (* x0's partner must read as zero. *)
    let zero_ok =
      C.eq b regs.(n_orig) (C.consti b ~width:cfg.Config.xlen 0)
    in
    C.reduce_and b (zero_ok :: pairs)
  in
  let mem_ok_sig =
    if not check_mem then C.vdd b
    else begin
      let half = p.Partition.mem_half in
      let words = pipe.Pipeline.mem_words in
      C.reduce_and b
        (List.init half (fun w -> C.eq b words.(w) words.(w + half)))
    end
  in
  let consistent = reg_pairs_ok &&& mem_ok_sig in
  let bad = qed_ready &&& not_ consistent in
  let assume_ok = not_ orig_valid ||| input_ok in

  C.output b "bad" bad;
  C.output b "assume_ok" assume_ok;
  C.output b "qed_ready" qed_ready;
  C.output b "consistent" consistent;
  C.output b "core_instr" core_instr;
  C.output b "core_valid" core_valid;
  C.output b "is_orig" dispatch_orig;
  C.output b "stall" pipe.Pipeline.stall;
  C.output b "wb_valid" pipe.Pipeline.wb_valid;
  C.output b "wb_rd" pipe.Pipeline.wb_rd;
  C.output b "consumed" consumed;
  {
    circuit = C.finalize b;
    cfg;
    partition = p;
    table;
    check_mem;
  }

let eddi ?bug ?check_mem ?focus ?core cfg =
  let partition = Partition.make Partition.Eddi cfg in
  build ?bug ?check_mem ?focus ?core ~table:Equiv_table.duplicate ~partition
    cfg

let edsep ?bug ?check_mem ?focus ?core ?table cfg =
  let partition = Partition.make Partition.Edsep cfg in
  let table =
    match table with
    | Some t -> t
    | None ->
        Equiv_table.builtin ~xlen:cfg.Config.xlen
          ~n_temp:partition.Partition.n_temp
  in
  build ?bug ?check_mem ?focus ?core ~table ~partition cfg

let init_assumptions t =
  let xlen = t.cfg.Config.xlen in
  let p = t.partition in
  let n_orig = p.Partition.n_orig in
  let reg i = Term.var (Printf.sprintf "reg%d_init" i) xlen in
  let mem w = Term.var (Printf.sprintf "dmem_%d" w) xlen in
  let reg_consistency =
    List.init (n_orig - 1) (fun i ->
        ( Printf.sprintf "init x%d = x%d" (i + 1) (i + 1 + n_orig),
          Term.eq (reg (i + 1)) (reg (i + 1 + n_orig)) ))
  in
  let zero_shadow =
    [
      ( Printf.sprintf "init x%d = 0" n_orig,
        Term.eq (reg n_orig) (Term.of_int ~width:xlen 0) );
    ]
  in
  let mem_consistency =
    List.init p.Partition.mem_half (fun w ->
        ( Printf.sprintf "init dmem[%d] = dmem[%d]" w (w + p.Partition.mem_half),
          Term.eq (mem w) (mem (w + p.Partition.mem_half)) ))
  in
  reg_consistency @ zero_shadow @ mem_consistency
