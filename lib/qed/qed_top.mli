(** The complete verification model (Fig. 2): QED transformation module +
    DUV pipeline in one netlist, ready for bounded model checking.

    The QED module holds a small queue of accepted original instructions.
    Each cycle the environment may present a new original instruction
    (free input [orig_instr] with [orig_valid]); a free selection input
    [sel] (the paper's or||eq signal) chooses between dispatching the
    next original and the next step of a queued instruction's equivalent
    sequence, so the model checker explores every legal interleaving.
    Queued instructions expand combinationally through a template ROM
    built from the equivalence table, with the original's operand fields
    remapped into the partition's E registers (or duplicate half) and
    temporaries drawn from T.

    Commit counters track register write-backs landing in O vs E and
    stores landing in the original vs shadow memory half; [QED-ready]
    requires equal counts, an empty queue and a drained pipeline, and the
    [bad] output is [QED-ready /\ not QED-consistent]. *)

module C = Sqed_rtl.Circuit
module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug

type t = {
  circuit : C.t;
  cfg : Config.t;
  partition : Partition.t;
  table : Equiv_table.t;
  check_mem : bool;
}

type core = Five_stage | Three_stage
(** Which DUV substrate to attach the QED module to; the QED layer itself
    is identical for both, which is the microarchitecture-independence of
    the method. *)

val build :
  ?bug:Bug.t ->
  ?check_mem:bool ->
  ?focus:Equiv_table.key ->
  ?core:core ->
  table:Equiv_table.t ->
  partition:Partition.t ->
  Config.t ->
  t
(** Inputs: [orig_instr] (32), [orig_valid] (1), [sel] (1).
    Outputs: [bad], [assume_ok] (input-constraint obligation),
    [qed_ready], [consistent], [core_instr], [core_valid], [is_orig],
    [stall], [wb_valid], [wb_rd].
    [focus] additionally constrains every injected original instruction to
    the given class; this restricts the model's inputs, so it is sound for
    witness (SAT) queries — any counterexample found is a legal trace of
    the unrestricted model — but must not be used when proving absence of
    counterexamples.
    Raises if the table needs more temporaries than the partition has. *)

val eddi :
  ?bug:Bug.t ->
  ?check_mem:bool ->
  ?focus:Equiv_table.key ->
  ?core:core ->
  Config.t ->
  t
(** SQED's EDDI-V model: duplication table over the two-halves partition. *)

val edsep :
  ?bug:Bug.t ->
  ?check_mem:bool ->
  ?focus:Equiv_table.key ->
  ?core:core ->
  ?table:Equiv_table.t ->
  Config.t ->
  t
(** SEPE-SQED's EDSEP-V model; the table defaults to the built-in one for
    the configuration. *)

val init_assumptions : t -> (string * Sqed_smt.Term.t) list
(** QED-consistent initial-state constraints over the circuit's symbolic
    initial-state variables (labelled, as width-1 terms). *)
