(** Register-file and memory partitions for the QED transformations
    (Section 5).

    EDDI-V splits the register file into two halves related by a bijection
    (original o maps to duplicate o + n).  EDSEP-V splits it into three
    parts: originals O, their equivalents E (|E| = |O|, o maps to
    o + |O|), and temporaries T for the intermediate values of equivalent
    sequences — the paper's 32-register split is 13/13/6.  Data memory is
    always split into two halves (original and shadow). *)

type scheme = Eddi | Edsep

type t = {
  scheme : scheme;
  nregs : int;
  n_orig : int;  (** |O|; E is the next [n_orig] registers *)
  n_temp : int;  (** registers above O and E (zero for EDDI) *)
  mem_words : int;
  mem_half : int;
}

val make : scheme -> Sqed_proc.Config.t -> t
(** EDSEP sizes O as [floor (13/32 * nregs)], reproducing 13/13/6 at 32
    registers (6/6/4 at 16, 3/3/2 at 8). *)

val map_reg : t -> int -> int
(** Original register to its duplicate/equivalent partner. *)

val temp_reg : t -> int -> int
(** [temp_reg p i] is the i-th temporary register; raises if out of
    range (EDSEP only). *)

val temps : t -> int list

val in_orig : t -> int -> bool
val in_equiv : t -> int -> bool

val orig_compare_pairs : t -> (int * int) list
(** The (o, e) register pairs compared by QED-consistency, including
    (0, map 0) whose equivalent must read as zero. *)

val random_original :
  t -> ext_m:bool -> ext_div:bool -> Random.State.t -> Sqed_isa.Insn.t
(** A uniformly random legal original instruction for this partition:
    destination in O∖{x0}, sources in O, loads/stores through x0 into the
    original memory half, multiplier/divider classes gated by the
    extension flags. *)

val to_string : t -> string
