(** Fixed-width bitvectors of arbitrary positive width.

    Values are immutable and canonical: bits above [width] are always zero.
    All binary operations require operands of equal width and raise
    [Invalid_argument] otherwise.  Semantics follow SMT-LIB QF_BV (wraparound
    arithmetic, [udiv x 0 = ones], [urem x 0 = x], shifts saturate when the
    amount is at least the width). *)

type t

(** {1 Construction} *)

val width : t -> int

val zero : int -> t
(** [zero w] is the all-zero vector of width [w]. *)

val one : int -> t
(** [one w] is the vector of width [w] with value 1. *)

val ones : int -> t
(** [ones w] is the all-one vector of width [w]. *)

val min_signed : int -> t
(** [min_signed w] has only the sign bit set. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of [n]
    to [width] bits. Negative [n] yields the expected wraparound value. *)

val of_int64 : width:int -> int64 -> t

val of_bool : bool -> t
(** Width-1 vector: [true] is 1, [false] is 0. *)

val of_binary_string : string -> t
(** [of_binary_string "1010"] has width 4 and value 10.  Underscores are
    ignored.  Raises [Invalid_argument] on empty or non-binary input. *)

val of_hex_string : width:int -> string -> t

val of_bits : bool array -> t
(** Index 0 of the array is the least-significant bit. *)

val random : Random.State.t -> int -> t
(** [random st w] draws a uniformly random vector of width [w]. *)

(** {1 Observation} *)

val to_int : t -> int
(** Unsigned value; raises [Failure] if it does not fit in a non-negative
    OCaml [int]. *)

val to_int_opt : t -> int option

val to_signed_int : t -> int
(** Two's-complement value; raises [Failure] if out of [int] range. *)

val to_int64 : t -> int64
(** Low 64 bits, zero-extended; raises [Failure] if width exceeds 64 and a
    high bit is set. *)

val get : t -> int -> bool
(** [get v i] is bit [i] (LSB is bit 0). *)

val msb : t -> bool
val is_zero : t -> bool

val popcount : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned order; widths compared first. *)

val hash : t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t

(** {1 Bitwise logic} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Shifts} *)

val shl : t -> int -> t
val lshr : t -> int -> t
val ashr : t -> int -> t

val shl_bv : t -> t -> t
(** Shift amount given as an (unsigned) bitvector of any width. *)

val lshr_bv : t -> t -> t
val ashr_bv : t -> t -> t

(** {1 Comparisons} *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool

(** {1 Structure} *)

val extract : hi:int -> lo:int -> t -> t
(** Inclusive bounds; result width is [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] occupies the most-significant bits. *)

val zext : t -> int -> t
(** [zext v w] zero-extends to width [w] (which must be >= width v). *)

val sext : t -> int -> t

val redor : t -> bool
val redand : t -> bool

(** {1 Printing} *)

val to_binary_string : t -> string
val to_hex_string : t -> string
val to_string : t -> string
(** Decimal (unsigned) with width suffix, e.g. ["42:8"]. *)

val pp : Format.formatter -> t -> unit
