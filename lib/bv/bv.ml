(* Little-endian int64 limbs; the top limb is masked so that the
   representation is canonical and [equal]/[hash] can be structural. *)

type t = { width : int; limbs : int64 array }

let limb_bits = 64

let nlimbs width = (width + limb_bits - 1) / limb_bits

let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then -1L else Int64.sub (Int64.shift_left 1L r) 1L

let width v = v.width

let normalize v =
  let n = Array.length v.limbs in
  v.limbs.(n - 1) <- Int64.logand v.limbs.(n - 1) (top_mask v.width);
  v

let make width =
  if width <= 0 then invalid_arg "Bv: width must be positive";
  { width; limbs = Array.make (nlimbs width) 0L }

let zero width = make width

let one width =
  let v = make width in
  v.limbs.(0) <- 1L;
  normalize v

let ones width =
  let v = make width in
  Array.fill v.limbs 0 (Array.length v.limbs) (-1L);
  normalize v

let min_signed width =
  let v = make width in
  let n = Array.length v.limbs in
  let r = (width - 1) mod limb_bits in
  v.limbs.(n - 1) <- Int64.shift_left 1L r;
  v

let of_int64 ~width n =
  let v = make width in
  v.limbs.(0) <- n;
  (* Sign-extend a negative value across higher limbs so that of_int64 of a
     negative number gives the two's-complement wraparound. *)
  if Int64.compare n 0L < 0 then
    for i = 1 to Array.length v.limbs - 1 do
      v.limbs.(i) <- -1L
    done;
  normalize v

let of_int ~width n = of_int64 ~width (Int64.of_int n)

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let get v i =
  if i < 0 || i >= v.width then invalid_arg "Bv.get: index out of range";
  let limb = v.limbs.(i / limb_bits) in
  Int64.logand (Int64.shift_right_logical limb (i mod limb_bits)) 1L = 1L

let set_bit v i b =
  let j = i / limb_bits and k = i mod limb_bits in
  let mask = Int64.shift_left 1L k in
  if b then v.limbs.(j) <- Int64.logor v.limbs.(j) mask
  else v.limbs.(j) <- Int64.logand v.limbs.(j) (Int64.lognot mask)

let of_bits bits =
  let w = Array.length bits in
  let v = make w in
  Array.iteri (fun i b -> if b then set_bit v i true) bits;
  v

let of_binary_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  if digits = [] then invalid_arg "Bv.of_binary_string: empty";
  let w = List.length digits in
  let v = make w in
  List.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set_bit v (w - 1 - i) true
      | _ -> invalid_arg "Bv.of_binary_string: non-binary digit")
    digits;
  v

let of_hex_string ~width s =
  let v = make width in
  let pos = ref 0 in
  String.iter
    (fun c ->
      if c <> '_' then begin
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> invalid_arg "Bv.of_hex_string: non-hex digit"
        in
        incr pos;
        ignore d
      end)
    s;
  let ndigits = !pos in
  let idx = ref 0 in
  String.iter
    (fun c ->
      if c <> '_' then begin
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> assert false
        in
        let digit_lo = (ndigits - 1 - !idx) * 4 in
        for b = 0 to 3 do
          let bit = digit_lo + b in
          if bit < width && d land (1 lsl b) <> 0 then set_bit v bit true
        done;
        incr idx
      end)
    s;
  v

let random st w =
  let v = make w in
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- Random.State.int64 st Int64.max_int;
    if Random.State.bool st then v.limbs.(i) <- Int64.lognot v.limbs.(i)
  done;
  normalize v

let is_zero v = Array.for_all (fun l -> l = 0L) v.limbs

let msb v = get v (v.width - 1)

let to_int64 v =
  let ok = ref true in
  for i = 1 to Array.length v.limbs - 1 do
    if v.limbs.(i) <> 0L then ok := false
  done;
  if not !ok then failwith "Bv.to_int64: value exceeds 64 bits";
  v.limbs.(0)

let to_int_opt v =
  let rec high_clear i =
    i >= Array.length v.limbs || (v.limbs.(i) = 0L && high_clear (i + 1))
  in
  if not (high_clear 1) then None
  else
    let l = v.limbs.(0) in
    if Int64.compare l 0L >= 0 && Int64.compare l (Int64.of_int max_int) <= 0
    then Some (Int64.to_int l)
    else None

let to_int v =
  match to_int_opt v with
  | Some n -> n
  | None -> failwith "Bv.to_int: value out of int range"

let check_same_width op a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bv.%s: width mismatch (%d vs %d)" op a.width b.width)

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c
  else
    let rec go i =
      if i < 0 then 0
      else
        let c = Int64.unsigned_compare a.limbs.(i) b.limbs.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Array.length a.limbs - 1)

let hash v = Hashtbl.hash (v.width, v.limbs)

let popcount v =
  let count64 x =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
    done;
    !c
  in
  Array.fold_left (fun acc l -> acc + count64 l) 0 v.limbs

(* Addition with carry propagation across limbs. *)
let add a b =
  check_same_width "add" a b;
  let v = make a.width in
  let carry = ref 0L in
  for i = 0 to Array.length v.limbs - 1 do
    let s = Int64.add a.limbs.(i) b.limbs.(i) in
    let s' = Int64.add s !carry in
    (* Unsigned overflow detection: s < a  or  s' < s when carry added. *)
    let c1 = if Int64.unsigned_compare s a.limbs.(i) < 0 then 1L else 0L in
    let c2 = if Int64.unsigned_compare s' s < 0 then 1L else 0L in
    v.limbs.(i) <- s';
    carry := Int64.add c1 c2
  done;
  normalize v

let lognot a =
  let v = make a.width in
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- Int64.lognot a.limbs.(i)
  done;
  normalize v

let neg a = add (lognot a) (one a.width)

let sub a b =
  check_same_width "sub" a b;
  add a (neg b)

let map2 op a b =
  let v = make a.width in
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- op a.limbs.(i) b.limbs.(i)
  done;
  normalize v

let logand a b = check_same_width "logand" a b; map2 Int64.logand a b
let logor a b = check_same_width "logor" a b; map2 Int64.logor a b
let logxor a b = check_same_width "logxor" a b; map2 Int64.logxor a b

(* Schoolbook multiplication over 32-bit half-limbs. *)
let mul a b =
  check_same_width "mul" a b;
  let n = Array.length a.limbs in
  let halves v =
    let h = Array.make (2 * n) 0L in
    for i = 0 to n - 1 do
      h.(2 * i) <- Int64.logand v.limbs.(i) 0xFFFFFFFFL;
      h.(2 * i + 1) <- Int64.shift_right_logical v.limbs.(i) 32
    done;
    h
  in
  let ha = halves a and hb = halves b in
  let acc = Array.make (2 * n) 0L in
  for i = 0 to (2 * n) - 1 do
    for j = 0 to (2 * n) - 1 - i do
      let p = Int64.mul ha.(i) hb.(j) in
      (* Add p into acc starting at half-position i+j with carries. *)
      let k = ref (i + j) in
      let carry = ref p in
      while !carry <> 0L && !k < 2 * n do
        let s = Int64.add acc.(!k) (Int64.logand !carry 0xFFFFFFFFL) in
        acc.(!k) <- Int64.logand s 0xFFFFFFFFL;
        carry :=
          Int64.add (Int64.shift_right_logical !carry 32)
            (Int64.shift_right_logical s 32);
        incr k
      done
    done
  done;
  let v = make a.width in
  for i = 0 to n - 1 do
    v.limbs.(i) <- Int64.logor acc.(2 * i) (Int64.shift_left acc.(2 * i + 1) 32)
  done;
  normalize v

let ult a b = check_same_width "ult" a b; compare a b < 0
let ule a b = check_same_width "ule" a b; compare a b <= 0

let slt a b =
  check_same_width "slt" a b;
  match (msb a, msb b) with
  | true, false -> true
  | false, true -> false
  | _ -> ult a b

let sle a b = slt a b || equal a b

let shl a k =
  if k < 0 then invalid_arg "Bv.shl: negative amount";
  let v = make a.width in
  if k < a.width then
    for i = 0 to a.width - 1 - k do
      if get a i then set_bit v (i + k) true
    done;
  v

let lshr a k =
  if k < 0 then invalid_arg "Bv.lshr: negative amount";
  let v = make a.width in
  if k < a.width then
    for i = k to a.width - 1 do
      if get a i then set_bit v (i - k) true
    done;
  v

let ashr a k =
  if k < 0 then invalid_arg "Bv.ashr: negative amount";
  let s = msb a in
  let v = make a.width in
  for i = 0 to a.width - 1 do
    let src = i + k in
    let bit = if src >= a.width then s else get a src in
    if bit then set_bit v i true
  done;
  v

let amount_of_bv b =
  (* Saturate at the width: any amount >= width behaves like width. *)
  match to_int_opt b with
  | Some n -> n
  | None -> max_int

let shift_sat op a b =
  let k = amount_of_bv b in
  if k >= a.width then op a a.width else op a k

(* [shl]/[lshr]/[ashr] by bitvector amounts; full (unsaturated) shift
   semantics as in SMT-LIB bvshl. *)
let shl_bv a b = shift_sat (fun a k -> if k >= a.width then zero a.width else shl a k) a b
let lshr_bv a b = shift_sat (fun a k -> if k >= a.width then zero a.width else lshr a k) a b

let ashr_bv a b =
  let k = amount_of_bv b in
  if k >= a.width then if msb a then ones a.width else zero a.width
  else ashr a k

let extract ~hi ~lo a =
  if lo < 0 || hi < lo || hi >= a.width then
    invalid_arg "Bv.extract: bad bounds";
  let v = make (hi - lo + 1) in
  for i = lo to hi do
    if get a i then set_bit v (i - lo) true
  done;
  v

let concat hi lo =
  let v = make (hi.width + lo.width) in
  for i = 0 to lo.width - 1 do
    if get lo i then set_bit v i true
  done;
  for i = 0 to hi.width - 1 do
    if get hi i then set_bit v (i + lo.width) true
  done;
  v

let zext a w =
  if w < a.width then invalid_arg "Bv.zext: smaller target width";
  if w = a.width then a
  else
    let v = make w in
    Array.blit a.limbs 0 v.limbs 0 (Array.length a.limbs);
    v

let sext a w =
  if w < a.width then invalid_arg "Bv.sext: smaller target width";
  if w = a.width then a
  else if not (msb a) then zext a w
  else begin
    let v = make w in
    Array.fill v.limbs 0 (Array.length v.limbs) (-1L);
    for i = 0 to a.width - 1 do
      set_bit v i (get a i)
    done;
    normalize v
  end

let redor v = not (is_zero v)
let redand v = equal v (ones v.width)

(* Long division by shift-and-subtract; adequate for the widths we use. *)
let udivrem a b =
  check_same_width "udiv" a b;
  if is_zero b then (ones a.width, a)
  else begin
    let q = make a.width in
    let r = ref (zero a.width) in
    for i = a.width - 1 downto 0 do
      r := shl !r 1;
      if get a i then r := logor !r (one a.width);
      if ule b !r then begin
        r := sub !r b;
        set_bit q i true
      end
    done;
    (q, !r)
  end

let udiv a b = fst (udivrem a b)
let urem a b = snd (udivrem a b)

let sdiv a b =
  check_same_width "sdiv" a b;
  let na = msb a and nb = msb b in
  let ua = if na then neg a else a and ub = if nb then neg b else b in
  if is_zero b then if na then one a.width else ones a.width
  else
    let q = udiv ua ub in
    if na <> nb then neg q else q

let srem a b =
  check_same_width "srem" a b;
  let na = msb a in
  let ua = if na then neg a else a and ub = if msb b then neg b else b in
  if is_zero b then a
  else
    let r = urem ua ub in
    if na then neg r else r

let to_signed_int v =
  if msb v then
    let m = neg v in
    match to_int_opt m with
    | Some n when n <= max_int -> -n
    | _ -> failwith "Bv.to_signed_int: out of range"
  else to_int v

let to_binary_string v =
  String.init v.width (fun i -> if get v (v.width - 1 - i) then '1' else '0')

let to_hex_string v =
  let ndigits = (v.width + 3) / 4 in
  String.init ndigits (fun i ->
      let digit_lo = (ndigits - 1 - i) * 4 in
      let d = ref 0 in
      for b = 3 downto 0 do
        let bit = digit_lo + b in
        if bit < v.width && get v bit then d := !d lor (1 lsl b)
      done;
      "0123456789abcdef".[!d])

let to_string v =
  if v.width <= 62 then Printf.sprintf "%d:%d" (to_int v) v.width
  else Printf.sprintf "0x%s:%d" (to_hex_string v) v.width

let pp fmt v = Format.pp_print_string fmt (to_string v)
