(** Cycle-accurate concrete simulation of a finalized circuit.

    Each {!cycle} evaluates the combinational fabric from the current
    register state and the supplied inputs, returns all outputs as observed
    during that cycle (before the clock edge), then commits register
    next-values. *)

module Bv = Sqed_bv.Bv

type t

val create : ?initial:(string -> Bv.t option) -> Circuit.t -> t
(** [initial] supplies values for [Symbolic_init] registers (by their init
    name); unknown names default to zero. *)

val cycle : t -> (string * Bv.t) list -> (string * Bv.t) list
(** Run one clock cycle with the given input valuation (all inputs must be
    supplied) and return the outputs. *)

val peek_output : t -> string -> Bv.t
(** Output value from the most recent [cycle]. *)

val reg_value : t -> string -> Bv.t
(** Current value of a register, by register name. *)

val run : t -> (string * Bv.t) list list -> (string * Bv.t) list list
(** Convenience: run a list of cycles, collecting outputs. *)
