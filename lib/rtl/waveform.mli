(** ASCII waveform rendering of simulation traces. *)

module Bv = Sqed_bv.Bv

type t

val create : unit -> t

val record : t -> (string * Bv.t) list -> unit
(** Append one cycle's signal values (typically [Sim.cycle]'s outputs,
    possibly augmented with register values). *)

val record_outputs : t -> Sim.t -> (string * Bv.t) list -> unit
(** Convenience: run [Sim.cycle] and record its outputs. *)

val to_string : ?signals:string list -> t -> string
(** Render as one row per signal, one column per cycle.  Single-bit
    signals draw as [_] / [#]; wider signals print hex values with change
    markers.  [signals] restricts and orders the rows (default: every
    recorded signal, in first-seen order). *)

val pp : Format.formatter -> t -> unit
