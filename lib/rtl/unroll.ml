module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term

type step_map = Term.t array (* node signal -> term, one array per step *)

type t = {
  circuit : Circuit.t;
  free_initial_state : bool;
  mutable steps : step_map list; (* reverse order: head is the last step *)
  mutable nsteps : int;
  reg_by_name : (string, int) Hashtbl.t;
}

let dummy = Term.tt

let create ?(free_initial_state = false) circuit =
  let reg_by_name = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match Circuit.node circuit r with
      | Node.Reg rg -> Hashtbl.replace reg_by_name rg.Node.reg_name r
      | _ -> assert false)
    (Circuit.registers circuit);
  { circuit; free_initial_state; steps = []; nsteps = 0; reg_by_name }

let depth t = t.nsteps

let reg_term t ~prev r rg =
  match prev with
  | None when t.free_initial_state ->
      (* Arbitrary start (inductive step): ignore the initializer. *)
      Term.var ("ind!" ^ rg.Node.reg_name) (Circuit.node_width t.circuit r)
  | None -> (
      (* Initial state. *)
      match rg.Node.init with
      | Node.Const_init v -> Term.const v
      | Node.Symbolic_init name ->
          Term.var name (Circuit.node_width t.circuit r))
  | Some prev_map ->
      (* Value latched at the previous step's clock edge. *)
      prev_map.(rg.Node.next)

let extend t =
  let step = t.nsteps in
  let prev = match t.steps with [] -> None | m :: _ -> Some m in
  let n = Circuit.num_nodes t.circuit in
  let map = Array.make n dummy in
  for s = 0 to n - 1 do
    let term =
      match Circuit.node t.circuit s with
      | Node.Input (name, w) -> Term.var (Printf.sprintf "%s@%d" name step) w
      | Node.Const v -> Term.const v
      | Node.Unop (Node.Not, x) -> Term.not_ map.(x)
      | Node.Unop (Node.Neg, x) -> Term.neg map.(x)
      | Node.Binop (op, x, y) -> (
          let a = map.(x) and b = map.(y) in
          match op with
          | Node.And -> Term.and_ a b
          | Node.Or -> Term.or_ a b
          | Node.Xor -> Term.xor a b
          | Node.Add -> Term.add a b
          | Node.Sub -> Term.sub a b
          | Node.Mul -> Term.mul a b
          | Node.Udiv -> Term.udiv a b
          | Node.Urem -> Term.urem a b
          | Node.Eq -> Term.eq a b
          | Node.Ult -> Term.ult a b
          | Node.Slt -> Term.slt a b
          | Node.Shl -> Term.shl a b
          | Node.Lshr -> Term.lshr a b
          | Node.Ashr -> Term.ashr a b
          | Node.Concat -> Term.concat a b)
      | Node.Ite (c, x, y) -> Term.ite map.(c) map.(x) map.(y)
      | Node.Extract (hi, lo, x) -> Term.extract ~hi ~lo map.(x)
      | Node.Zext (w, x) -> Term.zext map.(x) w
      | Node.Sext (w, x) -> Term.sext map.(x) w
      | Node.Reg rg -> reg_term t ~prev s rg
    in
    map.(s) <- term
  done;
  t.steps <- map :: t.steps;
  t.nsteps <- step + 1

let extend_to t k =
  while t.nsteps < k do
    extend t
  done

let step_map t step =
  if step < 0 || step >= t.nsteps then invalid_arg "Unroll: step out of range";
  List.nth t.steps (t.nsteps - 1 - step)

let input t ~step name =
  if step < 0 || step >= t.nsteps then invalid_arg "Unroll: step out of range";
  (* Inputs are plain variables; reconstruct the name directly so callers
     can constrain inputs without hunting for the node id. *)
  let w =
    match List.assoc_opt name (Circuit.inputs t.circuit) with
    | Some w -> w
    | None -> failwith (Printf.sprintf "Unroll: no input %S" name)
  in
  Term.var (Printf.sprintf "%s@%d" name step) w

let output t ~step name =
  let map = step_map t step in
  map.(Circuit.output_signal t.circuit name)

let reg_at t ~step name =
  match Hashtbl.find_opt t.reg_by_name name with
  | Some r -> (step_map t step).(r)
  | None -> failwith (Printf.sprintf "Unroll: no register %S" name)

let init_vars t =
  List.filter_map
    (fun r ->
      match Circuit.node t.circuit r with
      | Node.Reg { Node.init = Node.Symbolic_init name; _ } ->
          Some (name, Circuit.node_width t.circuit r)
      | _ -> None)
    (Circuit.registers t.circuit)
