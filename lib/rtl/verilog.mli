(** Synthesizable Verilog-2001 export of finalized circuits.

    Produces one flat module: inputs become input ports, outputs become
    output ports, registers become flip-flops with synchronous next-state
    logic clocked on [clk] (constant initializers are applied on [rst];
    symbolic-initial registers simply keep their power-up value).  The
    combinational fabric is emitted as wire assignments in index order.

    This makes the DUV, and the complete QED-top verification models,
    consumable by standard EDA flows (simulation, or Yosys back into the
    BTOR2 route the paper used). *)

val to_string : ?module_name:string -> Circuit.t -> string

val write_file : ?module_name:string -> string -> Circuit.t -> unit
