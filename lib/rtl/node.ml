(* Internal node representation of the netlist.  Signals are indices into
   the circuit's node table; children always have smaller indices than
   their parents except for register [next] back-edges, so index order is a
   valid combinational evaluation order by construction. *)

module Bv = Sqed_bv.Bv

type unop = Not | Neg

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Eq
  | Ult
  | Slt
  | Shl
  | Lshr
  | Ashr
  | Concat

type init =
  | Const_init of Bv.t
  | Symbolic_init of string
      (** Register starts in an unconstrained state; the BMC layer exposes it
          as a free variable with this name, the simulator reads it from the
          initial-state environment. *)

type reg = { reg_name : string; init : init; mutable next : int }

type t =
  | Input of string * int
  | Const of Bv.t
  | Unop of unop * int
  | Binop of binop * int * int
  | Ite of int * int * int
  | Extract of int * int * int
  | Zext of int * int
  | Sext of int * int
  | Reg of reg

let binop_name = function
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Udiv -> "udiv"
  | Urem -> "urem"
  | Eq -> "eq"
  | Ult -> "ult"
  | Slt -> "slt"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"
  | Concat -> "concat"
