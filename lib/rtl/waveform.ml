module Bv = Sqed_bv.Bv

type t = {
  mutable order : string list; (* reverse first-seen order *)
  values : (string, Bv.t option list ref) Hashtbl.t;
  mutable cycles : int;
}

let create () = { order = []; values = Hashtbl.create 32; cycles = 0 }

let record t env =
  let cycle = t.cycles in
  t.cycles <- cycle + 1;
  List.iter
    (fun (name, v) ->
      let cell =
        match Hashtbl.find_opt t.values name with
        | Some c -> c
        | None ->
            t.order <- name :: t.order;
            let c = ref [] in
            Hashtbl.replace t.values name c;
            c
      in
      (* Pad with gaps if the signal was absent in earlier cycles. *)
      while List.length !cell < cycle do
        cell := None :: !cell
      done;
      cell := Some v :: !cell)
    env

let record_outputs t sim inputs = record t (Sim.cycle sim inputs)

let render_bit = function
  | None -> '.'
  | Some v -> if Bv.is_zero v then '_' else '#'

let to_string ?signals t =
  let names =
    match signals with Some s -> s | None -> List.rev t.order
  in
  let width_of name =
    match Hashtbl.find_opt t.values name with
    | Some { contents = Some v :: _ } -> Bv.width v
    | _ -> (
        match Hashtbl.find_opt t.values name with
        | Some cell ->
            List.fold_left
              (fun acc v -> match v with Some v -> max acc (Bv.width v) | None -> acc)
              1 !cell
        | None -> 1)
  in
  let label_w =
    List.fold_left (fun acc n -> max acc (String.length n)) 4 names
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.values name with
      | None -> ()
      | Some cell ->
          let vals =
            let l = List.rev !cell in
            (* Pad to the full trace length. *)
            l @ List.init (max 0 (t.cycles - List.length l)) (fun _ -> None)
          in
          Buffer.add_string buf (Printf.sprintf "%-*s " label_w name);
          if width_of name = 1 then
            List.iter (fun v -> Buffer.add_char buf (render_bit v)) vals
          else begin
            (* Hex cells separated by '|' when the value changes. *)
            let hexw = (width_of name + 3) / 4 in
            let prev = ref None in
            List.iter
              (fun v ->
                let s =
                  match v with
                  | None -> String.make hexw '.'
                  | Some v -> Bv.to_hex_string v
                in
                let changed =
                  match (!prev, v) with
                  | Some p, Some v -> not (Bv.equal p v)
                  | None, Some _ -> true
                  | _, None -> false
                in
                Buffer.add_char buf (if changed then '|' else ' ');
                Buffer.add_string buf s;
                prev := (match v with Some v -> Some v | None -> !prev))
              vals
          end;
          Buffer.add_char buf '\n')
    names;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
