(** Netlist node representation (internal to the RTL layer, but exposed so
    that exporters, simulators and the processor substrate can pattern
    match on circuits).

    Signals are indices into a circuit's node table; children always have
    smaller indices than their parents, except for register [next]
    back-edges, so index order is a valid combinational evaluation order by
    construction. *)

module Bv = Sqed_bv.Bv

type unop = Not | Neg

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Eq
  | Ult
  | Slt
  | Shl
  | Lshr
  | Ashr
  | Concat

type init =
  | Const_init of Bv.t
  | Symbolic_init of string
      (** Register starts in an unconstrained state; the BMC layer exposes
          it as a free variable with this name, the simulator reads it from
          the initial-state environment. *)

type reg = { reg_name : string; init : init; mutable next : int }

type t =
  | Input of string * int
  | Const of Bv.t
  | Unop of unop * int
  | Binop of binop * int * int
  | Ite of int * int * int
  | Extract of int * int * int
  | Zext of int * int
  | Sext of int * int
  | Reg of reg

val binop_name : binop -> string
