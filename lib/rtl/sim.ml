module Bv = Sqed_bv.Bv

type t = {
  circuit : Circuit.t;
  state : (int, Bv.t) Hashtbl.t; (* register signal -> current value *)
  vals : Bv.t option array; (* per-cycle node values *)
  reg_by_name : (string, int) Hashtbl.t;
  mutable last_outputs : (string * Bv.t) list;
}

let create ?(initial = fun _ -> None) circuit =
  let state = Hashtbl.create 64 in
  let reg_by_name = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match Circuit.node circuit r with
      | Node.Reg rg ->
          let w = Circuit.node_width circuit r in
          let v =
            match rg.Node.init with
            | Node.Const_init v -> v
            | Node.Symbolic_init name -> (
                match initial name with
                | Some v ->
                    if Bv.width v <> w then
                      invalid_arg
                        (Printf.sprintf "Sim: bad width for initial %s" name);
                    v
                | None -> Bv.zero w)
          in
          Hashtbl.replace state r v;
          Hashtbl.replace reg_by_name rg.Node.reg_name r
      | _ -> assert false)
    (Circuit.registers circuit);
  {
    circuit;
    state;
    vals = Array.make (Circuit.num_nodes circuit) None;
    reg_by_name;
    last_outputs = [];
  }

let eval_node t env s =
  let value x =
    match t.vals.(x) with
    | Some v -> v
    | None -> assert false (* index order is an evaluation order *)
  in
  match Circuit.node t.circuit s with
  | Node.Input (name, w) -> (
      match List.assoc_opt name env with
      | Some v ->
          if Bv.width v <> w then
            invalid_arg (Printf.sprintf "Sim: bad width for input %s" name);
          v
      | None -> failwith (Printf.sprintf "Sim: missing input %s" name))
  | Node.Const v -> v
  | Node.Unop (Node.Not, x) -> Bv.lognot (value x)
  | Node.Unop (Node.Neg, x) -> Bv.neg (value x)
  | Node.Binop (op, x, y) -> (
      let a = value x and b = value y in
      match op with
      | Node.And -> Bv.logand a b
      | Node.Or -> Bv.logor a b
      | Node.Xor -> Bv.logxor a b
      | Node.Add -> Bv.add a b
      | Node.Sub -> Bv.sub a b
      | Node.Mul -> Bv.mul a b
      | Node.Udiv -> Bv.udiv a b
      | Node.Urem -> Bv.urem a b
      | Node.Eq -> Bv.of_bool (Bv.equal a b)
      | Node.Ult -> Bv.of_bool (Bv.ult a b)
      | Node.Slt -> Bv.of_bool (Bv.slt a b)
      | Node.Shl -> Bv.shl_bv a b
      | Node.Lshr -> Bv.lshr_bv a b
      | Node.Ashr -> Bv.ashr_bv a b
      | Node.Concat -> Bv.concat a b)
  | Node.Ite (c, x, y) -> if Bv.is_zero (value c) then value y else value x
  | Node.Extract (hi, lo, x) -> Bv.extract ~hi ~lo (value x)
  | Node.Zext (w, x) -> Bv.zext (value x) w
  | Node.Sext (w, x) -> Bv.sext (value x) w
  | Node.Reg _ -> Hashtbl.find t.state s

let cycle t env =
  let n = Circuit.num_nodes t.circuit in
  Array.fill t.vals 0 n None;
  for s = 0 to n - 1 do
    t.vals.(s) <- Some (eval_node t env s)
  done;
  let outs =
    List.map
      (fun (name, s) ->
        match t.vals.(s) with Some v -> (name, v) | None -> assert false)
      (Circuit.outputs t.circuit)
  in
  (* Clock edge: commit next-values. *)
  List.iter
    (fun r ->
      match Circuit.node t.circuit r with
      | Node.Reg rg -> (
          match t.vals.(rg.Node.next) with
          | Some v -> Hashtbl.replace t.state r v
          | None -> assert false)
      | _ -> assert false)
    (Circuit.registers t.circuit);
  t.last_outputs <- outs;
  outs

let peek_output t name =
  match List.assoc_opt name t.last_outputs with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Sim: no output %S" name)

let reg_value t name =
  match Hashtbl.find_opt t.reg_by_name name with
  | Some r -> Hashtbl.find t.state r
  | None -> failwith (Printf.sprintf "Sim: no register %S" name)

let run t cycles = List.map (cycle t) cycles
