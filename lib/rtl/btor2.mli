(** BTOR2 export of finalized circuits.

    BTOR2 (Niemetz et al., CAV'18) is the word-level model-checking format
    the paper's toolchain uses (Yosys emits it, Pono consumes it).  This
    writer lets every model built here — including the complete QED-top
    verification models with their [bad] and [assume_ok] outputs — be
    cross-checked with external model checkers such as Pono or BtorMC.

    Mapping:
    - inputs            -> [input]
    - registers         -> [state] + [init] (constant initializers only;
                           symbolic-initial registers get no [init], which
                           is exactly BTOR2's unconstrained-state meaning)
    - register next     -> [next]
    - output ["bad"]    -> a [bad] property (asserted when the bit is 1)
    - output ["assume_ok"] -> a [constraint]
    - other outputs     -> named nodes (comment-labelled)

    Shift semantics match: BTOR2's [sll]/[srl]/[sra] are defined for any
    amount, like this library's. *)

val to_string :
  ?bad_output:string -> ?constraint_output:string -> Circuit.t -> string
(** Serialize the circuit.  [bad_output] (default ["bad"]) and
    [constraint_output] (default ["assume_ok"]) are looked up among the
    circuit outputs and skipped silently when absent. *)

val write_file :
  ?bad_output:string -> ?constraint_output:string -> string -> Circuit.t -> unit

val validate : string -> (unit, string) result
(** Well-formedness check of BTOR2 text (used to validate this module's
    own output and any hand-edited model): every line number strictly
    increases, operands refer to previously defined ids, sorts exist and
    are consistent for [state]/[init]/[next], and [bad]/[constraint]
    arguments are single bits. *)
