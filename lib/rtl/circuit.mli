(** Netlist builder and finalized circuits.

    A {!builder} accumulates nodes; {!finalize} checks that every register
    is driven and produces an immutable {!t} consumed by {!Sim} (concrete
    cycle simulation) and {!Unroll} (symbolic unrolling to SMT terms).

    Signals are plain integers valid only within their builder.  All
    operators are width-checked at construction time. *)

module Bv = Sqed_bv.Bv

type signal = int

type builder

val create : string -> builder
(** [create name] starts an empty netlist. *)

(** {1 Sources} *)

val input : builder -> string -> int -> signal
(** Fresh-per-cycle input port.  Names must be unique. *)

val const : builder -> Bv.t -> signal
val consti : builder -> width:int -> int -> signal
val vdd : builder -> signal
(** Width-1 constant 1. *)

val gnd : builder -> signal
(** Width-1 constant 0. *)

(** {1 Combinational operators} *)

val width : builder -> signal -> int
val not_ : builder -> signal -> signal
val neg : builder -> signal -> signal
val and_ : builder -> signal -> signal -> signal
val or_ : builder -> signal -> signal -> signal
val xor : builder -> signal -> signal -> signal
val add : builder -> signal -> signal -> signal
val sub : builder -> signal -> signal -> signal
val mul : builder -> signal -> signal -> signal

val udiv : builder -> signal -> signal -> signal
(** SMT-LIB convention: division by zero yields all-ones. *)

val urem : builder -> signal -> signal -> signal
(** SMT-LIB convention: remainder by zero yields the dividend. *)

val eq : builder -> signal -> signal -> signal
val neq : builder -> signal -> signal -> signal
val ult : builder -> signal -> signal -> signal
val ule : builder -> signal -> signal -> signal
val slt : builder -> signal -> signal -> signal
val shl : builder -> signal -> signal -> signal
val lshr : builder -> signal -> signal -> signal
val ashr : builder -> signal -> signal -> signal
val mux : builder -> signal -> signal -> signal -> signal
(** [mux b sel on_true on_false]; [sel] must have width 1. *)

val extract : builder -> hi:int -> lo:int -> signal -> signal
val bit : builder -> signal -> int -> signal
val zext : builder -> signal -> int -> signal
val sext : builder -> signal -> int -> signal
val concat : builder -> signal -> signal -> signal
(** [concat b hi lo]. *)

val reduce_or : builder -> signal list -> signal
val reduce_and : builder -> signal list -> signal
val onehot_mux : builder -> (signal * signal) list -> default:signal -> signal
(** [onehot_mux b [(sel, v); ...] ~default]: priority mux chain. *)

(** {1 State} *)

val reg : builder -> name:string -> init:Node.init -> width:int -> signal
(** Declare a register; drive it later with {!connect}.  Reading the signal
    yields the current (pre-clock-edge) value. *)

val reg_const : builder -> name:string -> width:int -> int -> signal
(** Register with a concrete initial value. *)

val connect : builder -> signal -> signal -> unit
(** [connect b r next] drives register [r].  Each register must be
    connected exactly once. *)

type memory = {
  read : signal -> signal;  (** asynchronous read port: address -> data *)
  words : signal array;  (** the underlying word registers *)
}

val memory :
  builder ->
  name:string ->
  words:int ->
  word_width:int ->
  init:Node.init ->
  wr_en:signal ->
  wr_addr:signal ->
  wr_data:signal ->
  memory
(** Word-register-based RAM with one synchronous write port and any number
    of asynchronous read ports.  [words] must be a power of two and the
    address width is [log2 words].  A [Symbolic_init] name is suffixed with
    the word index. *)

(** {1 Outputs} *)

val output : builder -> string -> signal -> unit
(** Name a signal as a circuit output / probe.  Names must be unique. *)

(** {1 Finalized circuits} *)

type t

val finalize : builder -> t
(** Raises [Failure] if a register was never connected. *)

val name : t -> string
val node : t -> signal -> Node.t
val node_width : t -> signal -> int
val num_nodes : t -> int
val inputs : t -> (string * int) list
val outputs : t -> (string * signal) list
val output_signal : t -> string -> signal
val registers : t -> signal list
val stats : t -> string
