module Bv = Sqed_bv.Bv

type signal = int

type builder = {
  bname : string;
  mutable nodes : Node.t array;
  mutable widths : int array;
  mutable n : int;
  mutable outs : (string * signal) list; (* reverse order *)
  mutable ins : (string * int) list; (* reverse order *)
  names : (string, unit) Hashtbl.t; (* input/output/register name uniqueness *)
}

let create bname =
  {
    bname;
    nodes = Array.make 64 (Node.Const (Bv.zero 1));
    widths = Array.make 64 0;
    n = 0;
    outs = [];
    ins = [];
    names = Hashtbl.create 64;
  }

let claim_name b kind name =
  let key = kind ^ ":" ^ name in
  if Hashtbl.mem b.names key then
    failwith (Printf.sprintf "Circuit %s: duplicate %s name %S" b.bname kind name);
  Hashtbl.add b.names key ()

let push b node w =
  if b.n = Array.length b.nodes then begin
    let nodes = Array.make (2 * b.n) (Node.Const (Bv.zero 1)) in
    let widths = Array.make (2 * b.n) 0 in
    Array.blit b.nodes 0 nodes 0 b.n;
    Array.blit b.widths 0 widths 0 b.n;
    b.nodes <- nodes;
    b.widths <- widths
  end;
  b.nodes.(b.n) <- node;
  b.widths.(b.n) <- w;
  b.n <- b.n + 1;
  b.n - 1

let width b s =
  if s < 0 || s >= b.n then invalid_arg "Circuit.width: bad signal";
  b.widths.(s)

let input b name w =
  claim_name b "input" name;
  b.ins <- (name, w) :: b.ins;
  push b (Node.Input (name, w)) w

let const b v = push b (Node.Const v) (Bv.width v)
let consti b ~width n = const b (Bv.of_int ~width n)
let vdd b = consti b ~width:1 1
let gnd b = consti b ~width:1 0

let check2 b op x y =
  if width b x <> width b y then
    invalid_arg
      (Printf.sprintf "Circuit.%s: width mismatch (%d vs %d)" op (width b x)
         (width b y))

let binop b op x y =
  check2 b (Node.binop_name op) x y;
  let w =
    match op with
    | Node.Eq | Node.Ult | Node.Slt -> 1
    | Node.Concat -> width b x + width b y
    | _ -> width b x
  in
  push b (Node.Binop (op, x, y)) w

let not_ b x = push b (Node.Unop (Node.Not, x)) (width b x)
let neg b x = push b (Node.Unop (Node.Neg, x)) (width b x)
let and_ b x y = binop b Node.And x y
let or_ b x y = binop b Node.Or x y
let xor b x y = binop b Node.Xor x y
let add b x y = binop b Node.Add x y
let sub b x y = binop b Node.Sub x y
let mul b x y = binop b Node.Mul x y
let udiv b x y = binop b Node.Udiv x y
let urem b x y = binop b Node.Urem x y
let eq b x y = binop b Node.Eq x y
let neq b x y = not_ b (eq b x y)
let ult b x y = binop b Node.Ult x y
let ule b x y = not_ b (ult b y x)
let slt b x y = binop b Node.Slt x y
let shl b x y = binop b Node.Shl x y
let lshr b x y = binop b Node.Lshr x y
let ashr b x y = binop b Node.Ashr x y

let concat b hi lo =
  let w = width b hi + width b lo in
  push b (Node.Binop (Node.Concat, hi, lo)) w

let mux b sel t f =
  if width b sel <> 1 then invalid_arg "Circuit.mux: selector width <> 1";
  check2 b "mux" t f;
  push b (Node.Ite (sel, t, f)) (width b t)

let extract b ~hi ~lo x =
  if lo < 0 || hi < lo || hi >= width b x then
    invalid_arg "Circuit.extract: bad bounds";
  push b (Node.Extract (hi, lo, x)) (hi - lo + 1)

let bit b x i = extract b ~hi:i ~lo:i x

let zext b x w =
  if w < width b x then invalid_arg "Circuit.zext: smaller target";
  if w = width b x then x else push b (Node.Zext (w, x)) w

let sext b x w =
  if w < width b x then invalid_arg "Circuit.sext: smaller target";
  if w = width b x then x else push b (Node.Sext (w, x)) w

let reduce_or b = function
  | [] -> gnd b
  | x :: xs -> List.fold_left (or_ b) x xs

let reduce_and b = function
  | [] -> vdd b
  | x :: xs -> List.fold_left (and_ b) x xs

let onehot_mux b cases ~default =
  List.fold_right (fun (sel, v) acc -> mux b sel v acc) cases default

let reg b ~name ~init ~width:w =
  claim_name b "register" name;
  push b (Node.Reg { Node.reg_name = name; init; next = -1 }) w

let reg_const b ~name ~width v =
  reg b ~name ~init:(Node.Const_init (Bv.of_int ~width v)) ~width

let connect b r next =
  match b.nodes.(r) with
  | Node.Reg rg ->
      if rg.Node.next >= 0 then
        failwith
          (Printf.sprintf "Circuit %s: register %s connected twice" b.bname
             rg.Node.reg_name);
      if width b r <> width b next then
        invalid_arg
          (Printf.sprintf "Circuit.connect: width mismatch for %s"
             rg.Node.reg_name);
      rg.Node.next <- next
  | _ -> invalid_arg "Circuit.connect: not a register"

type memory = { read : signal -> signal; words : signal array }

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  go 0

let memory b ~name ~words ~word_width ~init ~wr_en ~wr_addr ~wr_data =
  let abits = log2_exact words in
  if abits < 0 then invalid_arg "Circuit.memory: words must be a power of two";
  if abits = 0 then invalid_arg "Circuit.memory: need at least 2 words";
  if width b wr_addr <> abits then
    invalid_arg "Circuit.memory: write address width mismatch";
  if width b wr_data <> word_width then
    invalid_arg "Circuit.memory: write data width mismatch";
  if width b wr_en <> 1 then invalid_arg "Circuit.memory: enable width <> 1";
  let word_init i =
    match init with
    | Node.Const_init v -> Node.Const_init v
    | Node.Symbolic_init base -> Node.Symbolic_init (Printf.sprintf "%s_%d" base i)
  in
  let word_regs =
    Array.init words (fun i ->
        reg b
          ~name:(Printf.sprintf "%s[%d]" name i)
          ~init:(word_init i) ~width:word_width)
  in
  Array.iteri
    (fun i r ->
      let here = eq b wr_addr (consti b ~width:abits i) in
      let wr = and_ b wr_en here in
      connect b r (mux b wr wr_data r))
    word_regs;
  let read addr =
    if width b addr <> abits then
      invalid_arg "Circuit.memory: read address width mismatch";
    let rec tree lo n sel_bit =
      (* Balanced mux tree over the address bits. *)
      if n = 1 then word_regs.(lo)
      else
        let half = n / 2 in
        let low = tree lo half (sel_bit - 1) in
        let high = tree (lo + half) half (sel_bit - 1) in
        mux b (bit b addr sel_bit) high low
    in
    tree 0 words (abits - 1)
  in
  { read; words = word_regs }

let output b name s =
  claim_name b "output" name;
  b.outs <- (name, s) :: b.outs

(* -- finalized circuits -------------------------------------------------- *)

type t = {
  cname : string;
  cnodes : Node.t array;
  cwidths : int array;
  couts : (string * signal) list;
  cins : (string * int) list;
  cregs : signal list;
}

let finalize b =
  let cnodes = Array.sub b.nodes 0 b.n in
  let cregs = ref [] in
  Array.iteri
    (fun i n ->
      match n with
      | Node.Reg rg ->
          if rg.Node.next < 0 then
            failwith
              (Printf.sprintf "Circuit %s: register %s never connected"
                 b.bname rg.Node.reg_name);
          cregs := i :: !cregs
      | _ -> ())
    cnodes;
  {
    cname = b.bname;
    cnodes;
    cwidths = Array.sub b.widths 0 b.n;
    couts = List.rev b.outs;
    cins = List.rev b.ins;
    cregs = List.rev !cregs;
  }

let name c = c.cname
let node c s = c.cnodes.(s)
let node_width c s = c.cwidths.(s)
let num_nodes c = Array.length c.cnodes
let inputs c = c.cins
let outputs c = c.couts

let output_signal c n =
  match List.assoc_opt n c.couts with
  | Some s -> s
  | None -> failwith (Printf.sprintf "Circuit %s: no output %S" c.cname n)

let registers c = c.cregs

let stats c =
  let state_bits =
    List.fold_left (fun acc r -> acc + c.cwidths.(r)) 0 c.cregs
  in
  Printf.sprintf "%s: %d nodes, %d inputs, %d outputs, %d registers (%d state bits)"
    c.cname (num_nodes c) (List.length c.cins) (List.length c.couts)
    (List.length c.cregs) state_bits
