(** Symbolic unrolling of a circuit into QF_BV terms (bounded model
    checking front-end).

    Step [t] inputs become fresh variables named ["name@t"]; registers with
    [Symbolic_init] become variables named after their init name; register
    values at step [t+1] are the next-state terms of step [t]. *)

module Term = Sqed_smt.Term

type t

val create : ?free_initial_state:bool -> Circuit.t -> t
(** With [free_initial_state] every register starts from a fresh variable
    [ind!<name>] regardless of its declared initializer — the arbitrary
    starting state needed by the inductive step of k-induction. *)

val depth : t -> int
(** Number of steps unrolled so far. *)

val extend : t -> unit
(** Unroll one more step. *)

val extend_to : t -> int -> unit
(** Ensure at least the given number of steps. *)

val input : t -> step:int -> string -> Term.t
val output : t -> step:int -> string -> Term.t
val reg_at : t -> step:int -> string -> Term.t
(** Register value entering the given step (by register name). *)

val init_vars : t -> (string * int) list
(** Names and widths of the symbolic-initial-state variables. *)
