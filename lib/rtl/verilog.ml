module Bv = Sqed_bv.Bv

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let bv_literal v =
  Printf.sprintf "%d'b%s" (Bv.width v) (Bv.to_binary_string v)

let to_string ?(module_name = "qed_top") circuit =
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let n = Circuit.num_nodes circuit in
  let width s = Circuit.node_width circuit s in
  (* Every node gets a wire name; inputs and registers use their own. *)
  let name = Array.make n "" in
  for s = 0 to n - 1 do
    name.(s) <-
      (match Circuit.node circuit s with
      | Node.Input (nm, _) -> sanitize nm
      | Node.Reg rg -> "r_" ^ sanitize rg.Node.reg_name
      | _ -> Printf.sprintf "n%d" s)
  done;
  let range w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1) in
  let ins = Circuit.inputs circuit in
  let outs = Circuit.outputs circuit in
  out "// Verilog export of circuit %s" (Circuit.name circuit);
  out "// %s" (Circuit.stats circuit);
  out "module %s (" module_name;
  out "  input  wire clk,";
  out "  input  wire rst,";
  List.iter
    (fun (nm, w) -> out "  input  wire %s%s," (range w) (sanitize nm))
    ins;
  let rec emit_outs = function
    | [] -> ()
    | [ (nm, s) ] -> out "  output wire %s%s" (range (width s)) (sanitize nm)
    | (nm, s) :: rest ->
        out "  output wire %s%s," (range (width s)) (sanitize nm);
        emit_outs rest
  in
  emit_outs outs;
  out ");";
  out "";
  (* Declarations. *)
  for s = 0 to n - 1 do
    match Circuit.node circuit s with
    | Node.Input _ -> ()
    | Node.Reg _ -> out "  reg  %s%s;" (range (width s)) name.(s)
    | _ -> out "  wire %s%s;" (range (width s)) name.(s)
  done;
  out "";
  (* Combinational fabric. *)
  let v s = name.(s) in
  for s = 0 to n - 1 do
    let assign rhs = out "  assign %s = %s;" name.(s) rhs in
    match Circuit.node circuit s with
    | Node.Input _ | Node.Reg _ -> ()
    | Node.Const c -> assign (bv_literal c)
    | Node.Unop (Node.Not, x) -> assign (Printf.sprintf "~%s" (v x))
    | Node.Unop (Node.Neg, x) -> assign (Printf.sprintf "-%s" (v x))
    | Node.Binop (op, x, y) -> (
        let bin fmt = assign (Printf.sprintf fmt (v x) (v y)) in
        match op with
        | Node.And -> bin "%s & %s"
        | Node.Or -> bin "%s | %s"
        | Node.Xor -> bin "%s ^ %s"
        | Node.Add -> bin "%s + %s"
        | Node.Sub -> bin "%s - %s"
        | Node.Mul -> bin "%s * %s"
        (* Verilog x/0 is X, unlike the model's all-ones convention; the
           exported netlist is for synthesis flows that guard the divisor. *)
        | Node.Udiv -> bin "%s / %s"
        | Node.Urem -> bin "%s %% %s"
        | Node.Eq -> bin "%s == %s"
        | Node.Ult -> bin "%s < %s"
        | Node.Slt -> bin "$signed(%s) < $signed(%s)"
        | Node.Shl -> bin "%s << %s"
        | Node.Lshr -> bin "%s >> %s"
        | Node.Ashr -> bin "$signed(%s) >>> %s"
        | Node.Concat -> bin "{%s, %s}")
    | Node.Ite (c, x, y) ->
        assign (Printf.sprintf "%s ? %s : %s" (v c) (v x) (v y))
    | Node.Extract (hi, lo, x) ->
        if Circuit.node_width circuit x = 1 then assign (v x)
        else if hi = lo then assign (Printf.sprintf "%s[%d]" (v x) hi)
        else assign (Printf.sprintf "%s[%d:%d]" (v x) hi lo)
    | Node.Zext (w, x) ->
        let extra = w - Circuit.node_width circuit x in
        assign (Printf.sprintf "{{%d{1'b0}}, %s}" extra (v x))
    | Node.Sext (w, x) ->
        let xw = Circuit.node_width circuit x in
        let extra = w - xw in
        assign
          (Printf.sprintf "{{%d{%s[%d]}}, %s}" extra (v x) (xw - 1) (v x))
  done;
  out "";
  (* State. *)
  List.iter
    (fun r ->
      match Circuit.node circuit r with
      | Node.Reg rg -> (
          match rg.Node.init with
          | Node.Const_init c ->
              out "  always @(posedge clk)";
              out "    if (rst) %s <= %s;" name.(r) (bv_literal c);
              out "    else %s <= %s;" name.(r) name.(rg.Node.next)
          | Node.Symbolic_init _ ->
              (* Power-up value left free, as in the formal model. *)
              out "  always @(posedge clk) %s <= %s;" name.(r)
                name.(rg.Node.next))
      | _ -> assert false)
    (Circuit.registers circuit);
  out "";
  (* Output bindings. *)
  List.iter
    (fun (nm, s) -> out "  assign %s = %s;" (sanitize nm) name.(s))
    outs;
  out "";
  out "endmodule";
  Buffer.contents buf

let write_file ?module_name path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?module_name circuit))
