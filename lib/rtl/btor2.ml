module Bv = Sqed_bv.Bv

(* Identifier allocation: BTOR2 lines are numbered from 1; sorts, constants
   and nodes share one id space. *)

type writer = {
  buf : Buffer.t;
  mutable next_id : int;
  sorts : (int, int) Hashtbl.t; (* width -> sort id *)
  consts : (string, int) Hashtbl.t; (* "<width>:<binary>" -> id *)
}

let mk_writer () =
  {
    buf = Buffer.create 4096;
    next_id = 1;
    sorts = Hashtbl.create 16;
    consts = Hashtbl.create 64;
  }

let alloc w =
  let id = w.next_id in
  w.next_id <- id + 1;
  id

let line w fmt = Printf.ksprintf (fun s -> Buffer.add_string w.buf (s ^ "\n")) fmt

let sort w width =
  match Hashtbl.find_opt w.sorts width with
  | Some id -> id
  | None ->
      let id = alloc w in
      line w "%d sort bitvec %d" id width;
      Hashtbl.replace w.sorts width id;
      id

let const w bv =
  let key = Printf.sprintf "%d:%s" (Bv.width bv) (Bv.to_binary_string bv) in
  match Hashtbl.find_opt w.consts key with
  | Some id -> id
  | None ->
      let s = sort w (Bv.width bv) in
      let id = alloc w in
      line w "%d const %d %s" id s (Bv.to_binary_string bv);
      Hashtbl.replace w.consts key id;
      id

let binop_keyword = function
  | Node.And -> "and"
  | Node.Or -> "or"
  | Node.Xor -> "xor"
  | Node.Add -> "add"
  | Node.Sub -> "sub"
  | Node.Mul -> "mul"
  | Node.Udiv -> "udiv"
  | Node.Urem -> "urem"
  | Node.Eq -> "eq"
  | Node.Ult -> "ult"
  | Node.Slt -> "slt"
  | Node.Shl -> "sll"
  | Node.Lshr -> "srl"
  | Node.Ashr -> "sra"
  | Node.Concat -> "concat"

let to_string ?(bad_output = "bad") ?(constraint_output = "assume_ok") circuit =
  let w = mk_writer () in
  line w "; BTOR2 export of circuit %s" (Circuit.name circuit);
  line w "; %s" (Circuit.stats circuit);
  let n = Circuit.num_nodes circuit in
  let ids = Array.make n 0 in
  (* First pass: declare inputs and states so back-edges resolve. *)
  for s = 0 to n - 1 do
    match Circuit.node circuit s with
    | Node.Input (name, width) ->
        let srt = sort w width in
        let id = alloc w in
        line w "%d input %d %s" id srt name;
        ids.(s) <- id
    | Node.Reg rg ->
        let width = Circuit.node_width circuit s in
        let srt = sort w width in
        let id = alloc w in
        (* BTOR2 state names reject some characters; sanitize brackets. *)
        let name =
          String.map
            (fun c -> if c = '[' || c = ']' then '_' else c)
            rg.Node.reg_name
        in
        line w "%d state %d %s" id srt name;
        ids.(s) <- id
    | Node.Const _ | Node.Unop _ | Node.Binop _ | Node.Ite _
    | Node.Extract _ | Node.Zext _ | Node.Sext _ ->
        ()
  done;
  (* Second pass: combinational fabric in index order. *)
  for s = 0 to n - 1 do
    let width = Circuit.node_width circuit s in
    match Circuit.node circuit s with
    | Node.Input _ | Node.Reg _ -> ()
    | Node.Const v -> ids.(s) <- const w v
    | Node.Unop (Node.Not, x) ->
        (* The sort must be materialized before the node id so that ids
           stay strictly increasing in the output. *)
        let srt = sort w width in
        let id = alloc w in
        line w "%d not %d %d" id srt ids.(x);
        ids.(s) <- id
    | Node.Unop (Node.Neg, x) ->
        let srt = sort w width in
        let id = alloc w in
        line w "%d neg %d %d" id srt ids.(x);
        ids.(s) <- id
    | Node.Binop (op, x, y) ->
        let srt = sort w width in
        let id = alloc w in
        line w "%d %s %d %d %d" id (binop_keyword op) srt ids.(x) ids.(y);
        ids.(s) <- id
    | Node.Ite (c, x, y) ->
        let srt = sort w width in
        let id = alloc w in
        line w "%d ite %d %d %d %d" id srt ids.(c) ids.(x) ids.(y);
        ids.(s) <- id
    | Node.Extract (hi, lo, x) ->
        let srt = sort w width in
        let id = alloc w in
        line w "%d slice %d %d %d %d" id srt ids.(x) hi lo;
        ids.(s) <- id
    | Node.Zext (_, x) ->
        let srt = sort w width in
        let id = alloc w in
        let extra = width - Circuit.node_width circuit x in
        line w "%d uext %d %d %d" id srt ids.(x) extra;
        ids.(s) <- id
    | Node.Sext (_, x) ->
        let srt = sort w width in
        let id = alloc w in
        let extra = width - Circuit.node_width circuit x in
        line w "%d sext %d %d %d" id srt ids.(x) extra;
        ids.(s) <- id
  done;
  (* Third pass: initializers and next functions. *)
  List.iter
    (fun r ->
      match Circuit.node circuit r with
      | Node.Reg rg ->
          let width = Circuit.node_width circuit r in
          let srt = sort w width in
          (match rg.Node.init with
          | Node.Const_init v ->
              let cid = const w v in
              let id = alloc w in
              line w "%d init %d %d %d" id srt ids.(r) cid
          | Node.Symbolic_init _ ->
              (* Unconstrained initial state: no init line. *)
              ());
          let id = alloc w in
          line w "%d next %d %d %d" id srt ids.(r) ids.(rg.Node.next)
      | _ -> assert false)
    (Circuit.registers circuit);
  (* Properties and outputs. *)
  List.iter
    (fun (name, s) ->
      if name = bad_output then begin
        let id = alloc w in
        line w "%d bad %d %s" id ids.(s) name
      end
      else if name = constraint_output then begin
        let id = alloc w in
        line w "%d constraint %d %s" id ids.(s) name
      end
      else line w "; output %s = node %d" name ids.(s))
    (Circuit.outputs circuit);
  Buffer.contents w.buf

let write_file ?bad_output ?constraint_output path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?bad_output ?constraint_output circuit))

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

type entity = Sort of int (* width *) | Node of int (* sort id *)

let validate text =
  let table : (int, entity) Hashtbl.t = Hashtbl.create 256 in
  let last_id = ref 0 in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let sort_width sid =
    match Hashtbl.find_opt table sid with
    | Some (Sort w) -> Ok w
    | Some (Node _) -> err "id %d is a node, not a sort" sid
    | None -> err "undefined sort id %d" sid
  in
  let node_sort nid =
    match Hashtbl.find_opt table nid with
    | Some (Node s) -> Ok s
    | Some (Sort _) -> err "id %d is a sort, not a node" nid
    | None -> err "undefined node id %d" nid
  in
  let ( let* ) = Result.bind in
  let check_line line =
    let tokens =
      String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
    in
    match tokens with
    | [] -> Ok ()
    | first :: _ when String.length first > 0 && first.[0] = ';' -> Ok ()
    | id_s :: rest -> (
        match int_of_string_opt id_s with
        | None -> err "bad id in line %S" line
        | Some id ->
            if id <= !last_id then err "non-increasing id %d" id
            else begin
              last_id := id;
              match rest with
              | [ "sort"; "bitvec"; w ] -> (
                  match int_of_string_opt w with
                  | Some w when w > 0 ->
                      Hashtbl.replace table id (Sort w);
                      Ok ()
                  | _ -> err "bad sort width in %S" line)
              | "input" :: sid :: _ | "state" :: sid :: _ ->
                  let* _ = sort_width (int_of_string sid) in
                  Hashtbl.replace table id (Node (int_of_string sid));
                  Ok ()
              | [ "const"; sid; bits ] ->
                  let sid = int_of_string sid in
                  let* w = sort_width sid in
                  if String.length bits <> w then
                    err "const width mismatch in %S" line
                  else begin
                    Hashtbl.replace table id (Node sid);
                    Ok ()
                  end
              | [ ("not" | "neg"); sid; a ] ->
                  let sid = int_of_string sid in
                  let* _ = sort_width sid in
                  let* sa = node_sort (int_of_string a) in
                  if sa <> sid then err "unop sort mismatch in %S" line
                  else begin
                    Hashtbl.replace table id (Node sid);
                    Ok ()
                  end
              | [ op; sid; a; b ]
                when List.mem op
                       [
                         "and"; "or"; "xor"; "add"; "sub"; "mul"; "udiv";
                         "urem"; "sll"; "srl"; "sra"; "eq"; "ult"; "slt";
                         "concat"; "init"; "next";
                       ] ->
                  let sid = int_of_string sid in
                  let* _ = sort_width sid in
                  let* _ = node_sort (int_of_string a) in
                  let* _ = node_sort (int_of_string b) in
                  Hashtbl.replace table id (Node sid);
                  Ok ()
              | [ "ite"; sid; c; a; b ] ->
                  let sid = int_of_string sid in
                  let* _ = sort_width sid in
                  let* sc = node_sort (int_of_string c) in
                  let* cw = sort_width sc in
                  let* _ = node_sort (int_of_string a) in
                  let* _ = node_sort (int_of_string b) in
                  if cw <> 1 then err "ite condition not a bit in %S" line
                  else begin
                    Hashtbl.replace table id (Node sid);
                    Ok ()
                  end
              | [ "slice"; sid; a; hi; lo ] ->
                  let sid = int_of_string sid in
                  let* w = sort_width sid in
                  let* sa = node_sort (int_of_string a) in
                  let* wa = sort_width sa in
                  let hi = int_of_string hi and lo = int_of_string lo in
                  if lo < 0 || hi < lo || hi >= wa then
                    err "slice bounds in %S" line
                  else if w <> hi - lo + 1 then
                    err "slice width mismatch in %S" line
                  else begin
                    Hashtbl.replace table id (Node sid);
                    Ok ()
                  end
              | [ ("uext" | "sext"); sid; a; k ] ->
                  let sid = int_of_string sid in
                  let* w = sort_width sid in
                  let* sa = node_sort (int_of_string a) in
                  let* wa = sort_width sa in
                  if w <> wa + int_of_string k then
                    err "extension width mismatch in %S" line
                  else begin
                    Hashtbl.replace table id (Node sid);
                    Ok ()
                  end
              | ("bad" | "constraint") :: a :: _ ->
                  let* sa = node_sort (int_of_string a) in
                  let* wa = sort_width sa in
                  if wa <> 1 then err "property not a bit in %S" line
                  else Ok ()
              | _ -> err "unrecognized line %S" line
            end)
  in
  try
    List.fold_left
      (fun acc line -> match acc with Error _ -> acc | Ok () -> check_line line)
      (Ok ())
      (String.split_on_char '\n' text)
  with Failure _ -> Error "malformed integer"
