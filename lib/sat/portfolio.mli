(** Portfolio CDCL solving: K diversified workers race on one instance.

    Each worker is a {!Sat.clone} of the master solver — taken after
    {!Sat.prepare}, so clones snapshot the {e post-preprocessing} clause
    database — with its own {!Sat.strategy} (seeded polarity, restart
    schedule, VSIDS decay), its own cancellable
    {!Sqed_resil.Budget.t}, and exchange callbacks wired to a bounded
    shared clause ring.  Workers export low-LBD/short learnt clauses as
    they learn them and import peers' exports at restart boundaries.
    The first worker with a definitive verdict wins: it cancels the
    peers' budgets (observed at the CDCL loop's cooperative poll sites)
    and its model, interrupt reason and search counters are folded back
    into the master with {!Sat.adopt}.  The shared ring is banked into
    the master's learnt database afterwards, so later incremental
    queries (the next BMC depth) start ahead.

    Sharing is sound because learnt clauses are implied by the problem
    clauses alone: assumptions enter the search as reasonless decisions
    and are never resolved into learnt clauses (see docs/SOLVER.md).

    Observability: [sat.portfolio.*] counters (solves, workers,
    exported, imported, banked, cancelled, wins),
    [portfolio.worker.start]/[won]/[cancelled]/[exhausted] flight-recorder
    events with per-worker import/export totals, and — in parallel mode —
    per-worker sampler series for free, since each worker domain feeds
    its own {!Sqed_obs.Sampler} ring. *)

val solve :
  ?assumptions:Sat.lit list ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?deterministic:bool ->
  k:int ->
  Sat.t ->
  Sat.result
(** [solve ~k s] races [k] diversified workers on clones of [s] and
    returns the winning verdict through the master, exactly as a plain
    {!Sat.solve} would have: the model is read with {!Sat.value}, the
    interrupt reason with {!Sat.last_interrupt}, and [s] stays fully
    reusable (further clauses, further solves).  [k <= 1] falls through
    to {!Sat.solve} with zero portfolio overhead.

    Limits compose like {!Sat.solve}: the per-call [max_conflicts] /
    [deadline] are merged with the installed {!Sat.set_budget} budget
    and the ambient {!Sqed_resil.Budget.current} budget.  Each worker
    receives the full remaining conflict allowance (portfolio effort is
    accounted per engine); the winner's conflicts are charged to the
    installed and ambient budgets.  A conflict-cap exhaustion or an
    explicit cancellation of either caller budget mid-race is relayed to
    the workers by the controller.

    [deterministic] (for reproducible CI runs) keeps every worker on the
    calling domain and runs them in fixed round-robin slices with a
    deterministic exchange schedule; the verdict is the first definitive
    answer in worker order, so repeat runs produce bit-identical
    verdicts and {!Sat.stats}.  Parallel mode (the default) spawns one
    domain per worker and the verdict is the first finisher — faster,
    but which worker wins can vary run to run.

    On a host where the runtime recommends a single domain, parallel
    mode falls back to the round-robin scheduler: timesharing [k]
    domains on one core makes every worker [k] times slower, while
    round-robin harvests the same strategy diversity (a lucky worker
    still answers within its first slices) at sequential cost.  Set
    {!force_spawn} to suppress the fallback. *)

val force_spawn : bool ref
(** Test hook: when [true], {!solve}'s parallel mode always spawns
    domains, even on a single-core host where it would otherwise fall
    back to the round-robin scheduler.  Default [false]. *)
