type cnf = { num_vars : int; clauses : int list list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref 0 in
  let num_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let tokenize l =
    String.split_on_char ' ' l
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  List.iter
    (fun l ->
      if !error = None then
        match tokenize l with
        | [] -> ()
        | "c" :: _ -> ()
        | [ "p"; "cnf"; v; c ] -> (
            match (int_of_string_opt v, int_of_string_opt c) with
            | Some v, Some c ->
                num_vars := v;
                num_clauses := c
            | _ -> error := Some "malformed p-line")
        | tokens ->
            List.iter
              (fun tok ->
                match int_of_string_opt tok with
                | Some 0 ->
                    clauses := List.rev !current :: !clauses;
                    current := []
                | Some lit ->
                    if abs lit > !num_vars then
                      error :=
                        Some (Printf.sprintf "literal %d out of range" lit)
                    else current := lit :: !current
                | None -> error := Some ("bad token " ^ tok))
              tokens)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !current <> [] then clauses := List.rev !current :: !clauses;
      let cs = List.rev !clauses in
      if !num_clauses >= 0 && List.length cs <> !num_clauses then
        Error
          (Printf.sprintf "header says %d clauses, found %d" !num_clauses
             (List.length cs))
      else Ok { num_vars = !num_vars; clauses = cs }

let print cnf =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" cnf.num_vars (List.length cnf.clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    cnf.clauses;
  Buffer.contents buf

let solve ?(portfolio = 1) ?(deterministic = false) cnf =
  let s = Sat.create () in
  (* One-shot solving: preprocessing always pays for itself here, and the
     model-extension machinery keeps the returned assignment complete. *)
  Sat.set_simplify s true;
  let vars = Array.init cnf.num_vars (fun _ -> Sat.new_var s) in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let v = vars.(abs l - 1) in
             if l > 0 then Sat.pos v else Sat.neg_of_var v)
           clause))
    cnf.clauses;
  Sat.simplify_now s;
  let result =
    (* A standalone instance is exactly the portfolio's sweet spot: one
       hard query, no incremental follow-up to amortize against. *)
    if portfolio > 1 then Portfolio.solve ~deterministic ~k:portfolio s
    else Sat.solve s
  in
  match result with
  | Sat.Sat -> (Sat.Sat, Some (Array.map (fun v -> Sat.value s v) vars))
  | r -> (r, None)

let of_solver_instance gen num_vars = { num_vars; clauses = gen num_vars }
