(* SatELite-style preprocessing (Eén & Biere, SAT'05) on an extracted
   clause set.  The module is deliberately standalone — it knows nothing
   about watches, trails or activities — so the CDCL core can rebuild its
   own state from the outcome and the DIMACS front end can reuse the same
   pass.  Everything is budgeted: occurrence-bounded elimination, capped
   subset checks, capped probe visits.  The budgets are sized for the
   bit-blasted CEGIS/BMC queries this repository issues (thousands of
   clauses, solved in milliseconds), where the pass must cost less than
   the search time it saves. *)

let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type stats = {
  eliminated_vars : int;
  subsumed : int;
  strengthened : int;
  probe_failures : int;
  units : int;
  resolvents : int;
}

type outcome = {
  clauses : int array list;
  units : int list;
  eliminated : (int * int array list) list;
  unsat : bool;
  stats : stats;
}

type cls = {
  mutable lits : int array; (* sorted, duplicate-free *)
  mutable sg : int; (* 62-bit variable signature *)
  mutable dead : bool;
}

(* Budgets.  [max_occ]: both occurrence lists of an elimination candidate
   must be at most this long (gate variables sit at 3–6).  [max_cls_len]:
   clauses longer than this are skipped as subsumers and as elimination
   material.  The check caps bound the quadratic corners. *)
let max_occ = 10
let max_cls_len = 24
let max_subset_checks = 400_000
let max_probe_visits = 60_000
let bve_rounds = 3

exception Unsat_found

(* Raised internally when the caller's [stop] poll turns true; each pass
   catches it at an operation boundary (unit queue drained), so the
   partial outcome is always consistent and sound to install. *)
exception Stopped

type state = {
  nvars : int;
  value : int array; (* per var: -1 undef, 0 false, 1 true *)
  occ : cls list array; (* per literal; dead entries filtered lazily *)
  mutable all : cls list;
  mutable unit_queue : int list;
  mutable unit_trail : int list; (* assignment order, newest first *)
  mutable elim : (int * int array list) list; (* newest first *)
  is_frozen : int -> bool;
  mutable n_elim : int;
  mutable n_subsumed : int;
  mutable n_strengthened : int;
  mutable n_probe : int;
  mutable n_resolvents : int;
}

let clause_sig lits =
  Array.fold_left (fun s l -> s lor (1 lsl ((l lsr 1) mod 62))) 0 lits

let lit_value st l =
  let v = st.value.(var_of l) in
  if v < 0 then -1 else v lxor (l land 1)

(* -- unit assignment ---------------------------------------------------- *)

let enqueue_unit st l =
  match lit_value st l with
  | 1 -> ()
  | 0 -> raise Unsat_found
  | _ -> st.unit_queue <- l :: st.unit_queue

let remove_lit c l =
  let n = Array.length c.lits in
  let a = Array.make (n - 1) 0 in
  let k = ref 0 in
  Array.iter
    (fun x ->
      if x <> l then begin
        a.(!k) <- x;
        incr k
      end)
    c.lits;
  c.lits <- a;
  c.sg <- clause_sig a

let rec propagate_units st =
  match st.unit_queue with
  | [] -> ()
  | l :: rest ->
      st.unit_queue <- rest;
      (match lit_value st l with
      | 1 -> ()
      | 0 -> raise Unsat_found
      | _ ->
          st.value.(var_of l) <- (if is_pos l then 1 else 0);
          st.unit_trail <- l :: st.unit_trail;
          (* Clauses containing [l] are satisfied. *)
          List.iter (fun c -> c.dead <- true) st.occ.(l);
          st.occ.(l) <- [];
          (* Clauses containing [negate l] lose that literal. *)
          let falsified = negate l in
          List.iter
            (fun c ->
              if not c.dead then begin
                remove_lit c falsified;
                match Array.length c.lits with
                | 0 -> raise Unsat_found
                | 1 ->
                    c.dead <- true;
                    enqueue_unit st c.lits.(0)
                | _ -> ()
              end)
            st.occ.(falsified);
          st.occ.(falsified) <- []);
      propagate_units st

(* -- clause construction ------------------------------------------------ *)

let attach st c =
  st.all <- c :: st.all;
  Array.iter (fun l -> st.occ.(l) <- c :: st.occ.(l)) c.lits

(* Add a clause given sorted, duplicate-free, tautology-free, unassigned
   literals. *)
let add_clean st lits =
  match Array.length lits with
  | 0 -> raise Unsat_found
  | 1 -> enqueue_unit st lits.(0)
  | _ -> attach st { lits; sg = clause_sig lits; dead = false }

(* Add a raw input clause: sort, drop duplicates and assigned literals,
   detect tautologies and satisfied clauses. *)
let add_input st lits =
  let lits = Array.copy lits in
  Array.sort compare lits;
  let out = ref [] and n = ref 0 in
  let sat_ = ref false in
  let last = ref (-2) in
  Array.iter
    (fun l ->
      if l = negate !last then sat_ := true (* tautology *)
      else if l <> !last then begin
        last := l;
        match lit_value st l with
        | 1 -> sat_ := true
        | 0 -> ()
        | _ ->
            out := l :: !out;
            incr n
      end)
    lits;
  if not !sat_ then begin
    let a = Array.make !n 0 in
    List.iteri (fun i l -> a.(!n - 1 - i) <- l) !out;
    add_clean st a
  end

let live_occ st l =
  let live = List.filter (fun c -> not c.dead) st.occ.(l) in
  st.occ.(l) <- live;
  live

(* -- subsumption / self-subsuming resolution ---------------------------- *)

(* Is [a] (with literal [flip] of it read negated; pass -1 for none) a
   subset of [b]?  Both sorted; flipping a literal preserves order because
   [2v] and [2v+1] are adjacent and [b] is tautology-free. *)
let subset_flip a b flip =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else begin
      let x = if a.(i) = flip then negate a.(i) else a.(i) in
      if x = b.(j) then go (i + 1) (j + 1)
      else if x > b.(j) then go i (j + 1)
      else false
    end
  in
  na <= nb && go 0 0

let subsumption_pass ?(stop = fun () -> false) st =
  let checks = ref 0 in
  let snapshot = List.filter (fun c -> not c.dead) st.all in
  try
  List.iter
    (fun a ->
      if stop () then raise Stopped;
      if
        (not a.dead)
        && Array.length a.lits <= max_cls_len
        && !checks < max_subset_checks
      then begin
        let alen = Array.length a.lits in
        (* Backward subsumption: scan the shortest occurrence list among
           [a]'s literals — every clause containing all of [a] contains
           that literal. *)
        let best = ref a.lits.(0) in
        Array.iter
          (fun l ->
            if List.compare_lengths st.occ.(l) st.occ.(!best) < 0 then
              best := l)
          a.lits;
        List.iter
          (fun b ->
            if (not b.dead) && b != a && Array.length b.lits >= alen then begin
              incr checks;
              if
                a.sg land lnot b.sg = 0
                && subset_flip a.lits b.lits (-1)
              then begin
                b.dead <- true;
                st.n_subsumed <- st.n_subsumed + 1
              end
            end)
          (live_occ st !best);
        (* Self-subsuming resolution: if [a] with [p] flipped subsumes
           [b], resolving on [p] yields [b] minus [negate p] — remove it. *)
        if not a.dead then
          Array.iter
            (fun p ->
              let np = negate p in
              let occ = live_occ st np in
              let survivors =
                List.filter
                  (fun b ->
                    if
                      b.dead
                      || Array.length b.lits < alen
                      || !checks >= max_subset_checks
                    then not b.dead
                    else begin
                      incr checks;
                      if
                        a.sg land lnot b.sg = 0
                        && subset_flip a.lits b.lits p
                      then begin
                        remove_lit b np;
                        st.n_strengthened <- st.n_strengthened + 1;
                        (if Array.length b.lits = 1 then begin
                           b.dead <- true;
                           enqueue_unit st b.lits.(0)
                         end);
                        (* [b] no longer contains [np]: drop it from this
                           occurrence list. *)
                        false
                      end
                      else true
                    end)
                  occ
              in
              st.occ.(np) <- survivors)
            a.lits;
        propagate_units st
      end)
    snapshot
  with Stopped -> ()

(* -- failed-literal probing on the binary implication graph ------------- *)

let probe_pass ?(stop = fun () -> false) st =
  (* Adjacency from the current binary clauses: (a, b) yields the edges
     [¬a -> b] and [¬b -> a].  Edges from clauses later satisfied or
     strengthened stay logically implied by the original set plus units,
     so a stale graph can only find sound failed literals. *)
  let adj = Array.make (2 * st.nvars) [] in
  List.iter
    (fun c ->
      if (not c.dead) && Array.length c.lits = 2 then begin
        let a = c.lits.(0) and b = c.lits.(1) in
        adj.(negate a) <- b :: adj.(negate a);
        adj.(negate b) <- a :: adj.(negate b)
      end)
    st.all;
  let mark = Array.make (2 * st.nvars) (-1) in
  let stamp = ref 0 in
  let visits = ref 0 in
  let probe root =
    (* BFS of everything implied by [root]; a contradiction (both
       polarities reached, or a top-level-false literal reached) fails the
       probe and forces [negate root]. *)
    incr stamp;
    let this = !stamp in
    let queue = Queue.create () in
    let failed = ref false in
    let visit l =
      if (not !failed) && mark.(l) <> this then begin
        mark.(l) <- this;
        incr visits;
        if mark.(negate l) = this || lit_value st l = 0 then failed := true
        else if lit_value st l <> 1 then Queue.add l queue
      end
    in
    visit root;
    while (not !failed) && not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      List.iter visit adj.(l)
    done;
    if !failed then begin
      st.n_probe <- st.n_probe + 1;
      enqueue_unit st (negate root);
      propagate_units st
    end
  in
  (* Probe only literals that actually root an implication chain. *)
  (try
     for v = 0 to st.nvars - 1 do
       if !visits >= max_probe_visits || stop () then raise Exit;
       if st.value.(v) < 0 then begin
         let p = 2 * v in
         if adj.(p) <> [] then probe p;
         if st.value.(v) < 0 && adj.(p + 1) <> [] then probe (p + 1)
       end
     done
   with Exit -> ())

(* -- bounded variable elimination --------------------------------------- *)

(* Resolvent of [a] and [b] on variable [v] (sorted merge, skipping the
   pivot literals); returns [None] for tautologies. *)
let resolve a b v =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb - 2) 0 in
  let k = ref 0 in
  let taut = ref false in
  let push l =
    if !k > 0 && out.(!k - 1) = l then ()
    else begin
      if !k > 0 && out.(!k - 1) = negate l then taut := true;
      out.(!k) <- l;
      incr k
    end
  in
  let i = ref 0 and j = ref 0 in
  while (not !taut) && (!i < na || !j < nb) do
    let take_a =
      if !i >= na then false
      else if !j >= nb then true
      else a.(!i) <= b.(!j)
    in
    let l = if take_a then a.(!i) else b.(!j) in
    if take_a then incr i else incr j;
    if var_of l <> v then push l
  done;
  if !taut then None else Some (Array.sub out 0 !k)

let try_eliminate st v =
  if st.value.(v) >= 0 || st.is_frozen v then false
  else begin
    let pos = live_occ st (2 * v) and neg = live_occ st ((2 * v) + 1) in
    let np = List.length pos and nn = List.length neg in
    if np = 0 && nn = 0 then false
    else if np > max_occ || nn > max_occ then false
    else if
      List.exists (fun c -> Array.length c.lits > max_cls_len) pos
      || List.exists (fun c -> Array.length c.lits > max_cls_len) neg
    then false
    else begin
      (* Count non-tautological resolvents; accept the elimination only
         if it does not grow the clause set (SatELite's rule). *)
      let limit = np + nn in
      let resolvents = ref [] in
      let count = ref 0 in
      (try
         List.iter
           (fun p ->
             List.iter
               (fun n ->
                 match resolve p.lits n.lits v with
                 | None -> ()
                 | Some r ->
                     incr count;
                     if !count > limit then raise Exit;
                     resolvents := r :: !resolvents)
               neg)
           pos;
         (* Accepted: store the original clauses for model extension,
            remove them, add the resolvents. *)
         let stored =
           List.rev_map (fun c -> Array.copy c.lits) (List.rev_append pos neg)
         in
         List.iter (fun c -> c.dead <- true) pos;
         List.iter (fun c -> c.dead <- true) neg;
         st.occ.(2 * v) <- [];
         st.occ.((2 * v) + 1) <- [];
         st.elim <- (v, stored) :: st.elim;
         st.n_elim <- st.n_elim + 1;
         st.n_resolvents <- st.n_resolvents + List.length !resolvents;
         List.iter (fun r -> add_clean st r) !resolvents;
         propagate_units st;
         true
       with Exit -> false)
    end
  end

let bve_pass ?(stop = fun () -> false) st =
  let eliminated = ref 0 in
  let round = ref 0 in
  let progress = ref true in
  while !progress && !round < bve_rounds do
    incr round;
    progress := false;
    (* Cheapest candidates first: elimination of a low-occurrence variable
       is both most likely to be accepted and most likely to shrink the
       occurrence lists of its neighbours. *)
    let cand = ref [] in
    for v = st.nvars - 1 downto 0 do
      if st.value.(v) < 0 && not (st.is_frozen v) then begin
        let np = List.length st.occ.(2 * v)
        and nn = List.length st.occ.((2 * v) + 1) in
        if np + nn > 0 && np <= max_occ && nn <= max_occ then
          cand := (np * nn, v) :: !cand
      end
    done;
    let cand = List.sort compare !cand in
    (try
       List.iter
         (fun (_, v) ->
           if stop () then raise Stopped;
           if try_eliminate st v then begin
             incr eliminated;
             progress := true
           end)
         cand
     with Stopped -> progress := false)
  done;
  !eliminated

(* -- driver ------------------------------------------------------------- *)

let run ~nvars ~frozen ?(stop = fun () -> false) input =
  let st =
    {
      nvars;
      value = Array.make (max 1 nvars) (-1);
      occ = Array.make (max 1 (2 * nvars)) [];
      all = [];
      unit_queue = [];
      unit_trail = [];
      elim = [];
      is_frozen = frozen;
      n_elim = 0;
      n_subsumed = 0;
      n_strengthened = 0;
      n_probe = 0;
      n_resolvents = 0;
    }
  in
  let unsat =
    try
      List.iter (fun c -> add_input st c) input;
      propagate_units st;
      probe_pass ~stop st;
      subsumption_pass ~stop st;
      ignore (bve_pass ~stop st);
      false
    with Unsat_found -> true
  in
  let clauses =
    if unsat then []
    else
      List.filter_map
        (fun c -> if c.dead then None else Some c.lits)
        st.all
  in
  {
    clauses;
    units = List.rev st.unit_trail;
    eliminated = List.rev st.elim;
    unsat;
    stats =
      {
        eliminated_vars = st.n_elim;
        subsumed = st.n_subsumed;
        strengthened = st.n_strengthened;
        probe_failures = st.n_probe;
        units = List.length st.unit_trail;
        resolvents = st.n_resolvents;
      };
  }
