(** SatELite-style CNF preprocessing: bounded variable elimination,
    subsumption / self-subsuming resolution, and failed-literal probing on
    the binary implication graph.

    [run] consumes a clause set (literals in the solver's [2*var (+1)]
    encoding) and returns an equisatisfiable simplified set together with
    everything the caller needs to stay sound:

    - [units]: literals forced true at top level (by strengthening chains,
      failed-literal probes, or unit resolvents);
    - [eliminated]: for every variable removed by elimination, the clauses
      that mentioned it at removal time, in elimination order — a model of
      the simplified set extends to a model of the original by walking
      this list {e newest-first} and picking each variable's value from
      its stored clauses (see {!Sat}'s model extension);
    - [unsat]: the preprocessor itself derived the empty clause.

    Variables for which [frozen] holds are never eliminated (but still
    benefit from subsumption, strengthening and probing): the caller
    freezes variables whose clauses must survive verbatim — bit-blaster
    cache outputs that future incremental blasts will reference, and
    assumption variables.  All transformations are standard and preserve
    equisatisfiability; elimination additionally requires the stored
    clauses for model reconstruction.

    The pass is budgeted (bounded occurrence counts for elimination,
    capped subset checks, capped probe visits) so its cost stays linear-ish
    in the formula size; it is designed to run in a few milliseconds on the
    ~10k-clause bit-blasted CEGIS/BMC queries this repository issues. *)

type stats = {
  eliminated_vars : int;
  subsumed : int;  (** clauses removed by backward subsumption *)
  strengthened : int;  (** literals removed by self-subsuming resolution *)
  probe_failures : int;  (** failed literals found by binary-graph probing *)
  units : int;  (** top-level assignments discovered by the pass *)
  resolvents : int;  (** clauses added by variable elimination *)
}

type outcome = {
  clauses : int array list;  (** surviving clauses (each length >= 2) *)
  units : int list;  (** literals true at top level *)
  eliminated : (int * int array list) list;
      (** (var, clauses containing it when eliminated), oldest first *)
  unsat : bool;
  stats : stats;
}

val run :
  nvars:int ->
  frozen:(int -> bool) ->
  ?stop:(unit -> bool) ->
  int array list ->
  outcome
(** Simplify the clause set.  Input clauses may be unsorted, contain
    duplicate literals, tautologies or units; literals must be
    [< 2*nvars].  The result mentions no eliminated variable.

    [stop] is polled at operation boundaries (per subsumption clause,
    per probe, per elimination candidate); once it turns true the pass
    degrades — it finishes the current atomic operation, skips the rest,
    and returns the (sound, equisatisfiable) outcome accumulated so far.
    It never raises on account of [stop]. *)
