(* Portfolio CDCL: K diversified workers race on clones of one instance,
   sharing low-LBD learnt clauses through a bounded ring and stopping
   each other through Budget cancellation.  See portfolio.mli and
   docs/SOLVER.md for the soundness argument and the determinism
   story. *)

module Budget = Sqed_resil.Budget
module Metrics = Sqed_obs.Metrics
module Log = Sqed_obs.Log

let m_solves = Metrics.counter "sat.portfolio.solves"
let m_workers = Metrics.counter "sat.portfolio.workers"
let m_exported = Metrics.counter "sat.portfolio.exported"
let m_imported = Metrics.counter "sat.portfolio.imported"
let m_banked = Metrics.counter "sat.portfolio.banked"
let m_cancelled = Metrics.counter "sat.portfolio.cancelled"
let m_wins = Metrics.counter "sat.portfolio.wins"

(* Clauses worth the exchange traffic: glue-ish (low LBD) or short. *)
let export_max_lbd = 4
let export_max_len = 4

(* Deterministic mode runs each worker for this many conflicts per
   round-robin slice. *)
let det_quantum = 2048

(* On a single-core host the parallel path degrades to OS timesharing
   between K domains: every worker runs K times slower and the race
   loses to the round-robin scheduler, which harvests the same strategy
   diversity without the context-switch and clone-contention tax.
   [solve] therefore falls back to round-robin when the runtime
   recommends a single domain; tests set [force_spawn] to exercise the
   Domain.spawn path regardless. *)
let force_spawn = ref false

(* Bounded shared exchange buffer: a fixed ring of clause entries under
   one mutex.  Workers touch it only at restart boundaries (a flush of
   their local pending list plus a drain of peers' news), so the lock is
   uncontended in practice — the hot CDCL loop never sees it.  Overflow
   silently overwrites the oldest entries: the exchange is best-effort,
   losing a clause costs only rediscovery. *)
module Ring = struct
  type entry = { lits : Sat.lit array; lbd : int; owner : int }

  let capacity = 4096
  let dummy = { lits = [||]; lbd = 0; owner = -1 }

  type t = {
    lock : Mutex.t;
    slots : entry array;
    mutable total : int; (* monotone count of entries ever appended *)
  }

  let create () =
    { lock = Mutex.create (); slots = Array.make capacity dummy; total = 0 }

  let append_locked t owner pending =
    List.iter
      (fun (lits, lbd) ->
        t.slots.(t.total mod capacity) <- { lits; lbd; owner };
        t.total <- t.total + 1)
      pending

  (* Flush [pending] (oldest first) and return every peer entry appended
     since [cursor], oldest first, in one critical section. *)
  let swap t ~owner ~cursor pending =
    Mutex.lock t.lock;
    append_locked t owner pending;
    let hi = t.total in
    let lo = max !cursor (hi - capacity) in
    let out = ref [] in
    for i = hi - 1 downto lo do
      let e = t.slots.(i mod capacity) in
      if e.owner >= 0 && e.owner <> owner then out := (e.lits, e.lbd) :: !out
    done;
    cursor := hi;
    Mutex.unlock t.lock;
    !out

  let flush t ~owner pending =
    Mutex.lock t.lock;
    append_locked t owner pending;
    Mutex.unlock t.lock

  (* Everything currently buffered, oldest first (for the master
     bank-back after the race). *)
  let contents t =
    Mutex.lock t.lock;
    let hi = t.total in
    let lo = max 0 (hi - capacity) in
    let out = ref [] in
    for i = hi - 1 downto lo do
      let e = t.slots.(i mod capacity) in
      if e.owner >= 0 then out := (e.lits, e.lbd) :: !out
    done;
    Mutex.unlock t.lock;
    !out
end

(* Deterministic diversification table.  Worker 0 keeps the stock
   strategy (so a one-worker portfolio searches like the single-engine
   solver); higher indices vary the VSIDS decay, the restart schedule,
   the initial phase and — from worker 4 on — sprinkle random decision
   polarities. *)
let strategy_for i =
  if i = 0 then Sat.default_strategy
  else begin
    let decays = [| 0.95; 0.92; 0.97; 0.90; 0.94; 0.96; 0.91; 0.93 |] in
    {
      Sat.var_decay = decays.(i mod Array.length decays);
      restart_luby = i land 1 = 0;
      restart_base = (if i land 1 = 0 then 100.0 else 32.0);
      restart_growth = 1.3 +. (0.1 *. Float.of_int (i mod 3));
      seed = 0x9E37 + (7919 * i);
      random_pol_freq = (if i >= 4 then 64 else 0);
      invert_pol = i land 1 = 1;
    }
  end

let sum a = Array.fold_left ( + ) 0 a

let reason_str = function
  | Some r -> Budget.string_of_reason r
  | None -> "none"

let solve ?(assumptions = []) ?max_conflicts ?deadline ?(deterministic = false)
    ~k s =
  if k <= 1 then Sat.solve ~assumptions ?max_conflicts ?deadline s
  else if not (Sat.prepare ~assumptions s) then Sat.Unsat
  else begin
    let installed = Sat.budget s in
    let task = Budget.current () in
    (* Merge the per-call limits with the installed and ambient budgets
       once, exactly as a single-engine [Sat.solve] would. *)
    let eff_deadline =
      Float.min
        (match deadline with Some d -> d | None -> infinity)
        (Float.min (Budget.deadline installed) (Budget.deadline task))
    in
    let eff_conflicts =
      let cap =
        min
          (Budget.conflicts_remaining installed)
          (Budget.conflicts_remaining task)
      in
      match max_conflicts with
      | Some m -> Some (min m cap)
      | None -> if cap = max_int then None else Some cap
    in
    let already_over =
      match Budget.over installed with
      | Some _ as r -> r
      | None -> Budget.over task
    in
    match already_over with
    | Some r ->
        (* Spent before any worker could start: report it without paying
           for clones or domains. *)
        Sat.note_interrupt s r;
        Sat.Unknown
    | None ->
        Metrics.incr m_solves;
        Metrics.add m_workers k;
        let clones = Array.init k (fun _ -> Sat.clone s) in
        let ring = Ring.create () in
        (* Per-worker exchange state: [pending.(i)] and [cursor.(i)] are
           only ever touched from worker [i]'s domain; the controller
           reads them after the joins (which synchronize). *)
        let pending = Array.make k [] in
        let cursor = Array.init k (fun _ -> ref 0) in
        let exported = Array.make k 0 in
        let imported = Array.make k 0 in
        let results = Array.make k Sat.Unknown in
        let winner = Atomic.make (-1) in
        (* Each worker gets its own cancellable budget carrying the
           merged deadline (conflict caps ride on the per-call argument
           instead: every worker gets the full remaining allowance, the
           usual portfolio accounting where "effort" is per engine). *)
        let budgets =
          Array.init k (fun _ -> Budget.create ~deadline:eff_deadline ())
        in
        let exchange_for i =
          {
            Sat.max_lbd = export_max_lbd;
            max_len = export_max_len;
            export =
              (fun lits lbd ->
                pending.(i) <- (lits, lbd) :: pending.(i);
                exported.(i) <- exported.(i) + 1);
            import =
              (fun () ->
                let mine = List.rev pending.(i) in
                pending.(i) <- [];
                let got = Ring.swap ring ~owner:i ~cursor:cursor.(i) mine in
                imported.(i) <- imported.(i) + List.length got;
                got);
          }
        in
        let round_robin =
          deterministic
          || ((not !force_spawn) && Domain.recommended_domain_count () <= 1)
        in
        let setup i =
          let w = clones.(i) in
          Sat.set_strategy w (strategy_for i);
          Sat.set_exchange w (Some (exchange_for i));
          Sat.set_budget w budgets.(i);
          Log.info "portfolio.worker.start"
            [
              ("worker", Log.I i);
              ("deterministic", Log.B deterministic);
              ( "scheduler",
                Log.Str (if round_robin then "round-robin" else "parallel") );
              ("seed", Log.I (strategy_for i).Sat.seed);
              ("luby", Log.B (strategy_for i).Sat.restart_luby);
            ];
          w
        in
        if round_robin then begin
          (* Round-robin mode — [deterministic], or a single-core host:
             the workers run on this domain in fixed round-robin slices
             of [det_quantum] conflicts, the exchange schedule is a
             deterministic function of the search, and the verdict is
             the first definitive answer in worker order. *)
          let workers = Array.init k setup in
          let total = ref 0 in
          let stop = ref None in
          let deadline_opt =
            if eff_deadline = infinity then None else Some eff_deadline
          in
          while Atomic.get winner < 0 && !stop = None do
            let i = ref 0 in
            while !i < k && Atomic.get winner < 0 && !stop = None do
              let w = workers.(!i) in
              let slice =
                match eff_conflicts with
                | Some cap -> min det_quantum (cap - !total)
                | None -> det_quantum
              in
              if slice <= 0 then stop := Some Budget.Conflicts
              else begin
                let c0 = (Sat.stats w).Sat.conflicts in
                let r =
                  Sat.solve ~assumptions ~max_conflicts:slice
                    ?deadline:deadline_opt w
                in
                total := !total + ((Sat.stats w).Sat.conflicts - c0);
                (match r with
                | Sat.Unknown -> (
                    match Sat.last_interrupt w with
                    | Some Budget.Conflicts | None ->
                        () (* slice spent; next worker *)
                    | Some r -> stop := Some r)
                | _ ->
                    results.(!i) <- r;
                    ignore (Atomic.compare_and_set winner (-1) !i))
              end;
              incr i
            done
          done;
          Array.iteri (fun i p -> Ring.flush ring ~owner:i (List.rev p)) pending
        end
        else begin
          (* Parallel mode: one domain per worker; the first definitive
             finisher takes the winner slot and cancels the peers'
             budgets, which their solve loops observe at the restart /
             1024-conflict / reduce-db poll sites. *)
          let finished = Atomic.make 0 in
          let run i =
            let w = setup i in
            let r =
              try Sat.solve ~assumptions ?max_conflicts:eff_conflicts w
              with e ->
                Log.warn "portfolio.worker.error"
                  [
                    ("worker", Log.I i);
                    ("exn", Log.Str (Printexc.to_string e));
                  ];
                Sat.Unknown
            in
            results.(i) <- r;
            (* Flush straggler exports so the bank-back below sees them. *)
            Ring.flush ring ~owner:i (List.rev pending.(i));
            pending.(i) <- [];
            if r <> Sat.Unknown && Atomic.compare_and_set winner (-1) i then
              Array.iteri
                (fun j b -> if j <> i then Budget.cancel b)
                budgets
          in
          let domains =
            Array.init k (fun i ->
                Domain.spawn (fun () ->
                    Fun.protect
                      ~finally:(fun () -> Atomic.incr finished)
                      (fun () -> run i)))
          in
          (* The controller watches for exhaustion/cancellation of the
             caller's budgets while the race runs (the deadline was
             merged at entry, but a conflict-cap or an explicit cancel
             can only be seen by polling) and relays it to the workers. *)
          while Atomic.get finished < k do
            (match
               match Budget.over installed with
               | Some _ as r -> r
               | None -> Budget.over task
             with
            | Some _ -> Array.iter Budget.cancel budgets
            | None -> ());
            Unix.sleepf 0.001
          done;
          Array.iter Domain.join domains
        end;
        (* Verdict, adoption and bank-back. *)
        let w = Atomic.get winner in
        let adopted =
          if w >= 0 then w
          else begin
            (* All workers gave up: surface a real reason (deadline or
               conflict cap) over a relayed cancellation when one
               exists. *)
            let rep = ref 0 in
            Array.iteri
              (fun i c ->
                match Sat.last_interrupt c with
                | Some Budget.Deadline | Some Budget.Conflicts ->
                    if
                      (match Sat.last_interrupt clones.(!rep) with
                      | Some Budget.Deadline | Some Budget.Conflicts -> false
                      | _ -> true)
                    then rep := i
                | _ -> ())
              clones;
            !rep
          end
        in
        let banked = Ring.contents ring in
        Sat.import_clauses s banked;
        Sat.adopt s ~winner:clones.(adopted);
        let used = (Sat.stats clones.(adopted)).Sat.conflicts in
        Budget.charge installed used;
        Budget.charge task used;
        Metrics.add m_exported (sum exported);
        Metrics.add m_imported (sum imported);
        Metrics.add m_banked (List.length banked);
        if w >= 0 then begin
          Metrics.incr m_wins;
          Metrics.add m_cancelled (k - 1)
        end;
        Array.iteri
          (fun i r ->
            let st = Sat.stats clones.(i) in
            let fields =
              [
                ("worker", Log.I i);
                ("conflicts", Log.I st.Sat.conflicts);
                ("exported", Log.I exported.(i));
                ("imported", Log.I imported.(i));
              ]
            in
            if i = w then
              Log.info "portfolio.worker.won"
                (( "result",
                   Log.Str (match r with Sat.Sat -> "sat" | _ -> "unsat") )
                :: fields)
            else if w >= 0 then Log.info "portfolio.worker.cancelled" fields
            else
              Log.info "portfolio.worker.exhausted"
                (("reason", Log.Str (reason_str (Sat.last_interrupt clones.(i))))
                :: fields))
          results;
        if w >= 0 then results.(w)
        else begin
          (* [adopt] already copied the representative's interrupt
             reason onto the master. *)
          Sat.Unknown
        end
  end
