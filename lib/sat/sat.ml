(* CDCL solver in the MiniSat lineage: two-watched literals, VSIDS with a
   binary heap, phase saving, 1UIP learning with local minimization, Luby
   restarts and learnt-clause reduction.  Performance matters here: the
   bit-blasted BMC instances reach hundreds of thousands of clauses. *)

module Metrics = Sqed_obs.Metrics
module Trace = Sqed_obs.Trace
module Log = Sqed_obs.Log
module Sampler = Sqed_obs.Sampler
module Budget = Sqed_resil.Budget
module Fault = Sqed_resil.Fault

(* Registry handles, interned once at module init.  Clause counters are
   bumped at the (relatively cold) clause-push points; the per-search
   counters (propagations, conflicts, ...) stay in the solver's own
   mutable fields on the hot path and are flushed into the registry as
   deltas when [solve] returns — including on exceptions. *)
let m_clauses = Metrics.counter "sat.clauses"
let m_learnt_clauses = Metrics.counter "sat.learnt_clauses"
let m_decisions = Metrics.counter "sat.decisions"
let m_propagations = Metrics.counter "sat.propagations"
let m_conflicts = Metrics.counter "sat.conflicts"
let m_restarts = Metrics.counter "sat.restarts"
let h_learnt_len = Metrics.histogram "sat.learnt_clause_len"
let h_restart_conflicts = Metrics.histogram "sat.restart_conflicts"
let sp_solve = Trace.kind ~cat:"sat" "sat.solve"

(* Preprocessing counters (see Simplify).  Registered eagerly so they
   appear in every metrics snapshot — the smoke tests assert on them. *)
let m_simp_passes = Metrics.counter "sat.simplify.passes"
let m_simp_elim = Metrics.counter "sat.simplify.eliminated_vars"
let m_simp_subsumed = Metrics.counter "sat.simplify.subsumed"
let m_simp_strengthened = Metrics.counter "sat.simplify.strengthened"
let m_simp_probe = Metrics.counter "sat.simplify.probe_failures"
let m_simp_units = Metrics.counter "sat.simplify.units"
let m_simp_resolvents = Metrics.counter "sat.simplify.resolvents"
let sp_simplify = Trace.kind ~cat:"sat" "sat.simplify"

type lit = int

let pos v = 2 * v
let neg_of_var v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type clause = {
  mutable lits : lit array;
  mutable act : float;
  mutable lbd : int;
  learnt : bool;
  mutable deleted : bool;
}

(* Growable array of clauses (clause databases). *)
module Cvec = struct
  type t = { mutable data : clause array; mutable sz : int }

  let dummy_clause =
    { lits = [||]; act = 0.0; lbd = 0; learnt = false; deleted = true }
  let create () = { data = Array.make 4 dummy_clause; sz = 0 }

  let push v c =
    if v.sz = Array.length v.data then begin
      let d = Array.make (2 * v.sz) dummy_clause in
      Array.blit v.data 0 d 0 v.sz;
      v.data <- d
    end;
    v.data.(v.sz) <- c;
    v.sz <- v.sz + 1

  let clear v = v.sz <- 0
end

(* Binary clauses get dedicated watch lists that store only the blocker
   literal — the clause's other literal, which for a binary clause is
   also the implied literal.  A binary watcher is therefore one immediate
   int: visiting it is a single array load plus an assignment lookup, and
   binary propagation never dereferences clause memory at all.  The
   backing array starts as a shared empty sentinel and is materialised on
   first push (most binary-watch slots are never used, and a fresh solver
   is created for every CEGIS candidate, so per-literal setup allocation
   is itself on the hot path). *)
module Ivec = struct
  type t = { mutable data : int array; mutable sz : int }

  let no_data : int array = [||]
  let create () = { data = no_data; sz = 0 }

  let push v x =
    if v.sz = Array.length v.data then begin
      let cap = if v.sz = 0 then 4 else 2 * v.sz in
      let d = Array.make cap 0 in
      Array.blit v.data 0 d 0 v.sz;
      v.data <- d
    end;
    v.data.(v.sz) <- x;
    v.sz <- v.sz + 1
end

(* Reasons are stored unboxed in a single [Obj.t] array: an immediate -1
   for "decision / no reason", an immediate literal for a binary
   implication (the antecedent is the clause's other literal — the clause
   itself is never needed again, binary clauses being immune to
   [reduce_db]), or the reason clause itself for longer clauses.  This
   keeps binary propagation completely allocation-free: no [Some] cell,
   no clause pointer.  [Obj] only bypasses the compile-time type, which
   the accessors below re-impose; mixing immediates and pointers in one
   array is fine for the GC. *)
let no_reason : Obj.t = Obj.repr (-1)
let[@inline] reason_of_clause (c : clause) : Obj.t = Obj.repr c
let[@inline] reason_of_lit (l : lit) : Obj.t = Obj.repr (l : int)
let[@inline] reason_is_lit (r : Obj.t) = Obj.is_int r && (Obj.obj r : int) >= 0
let[@inline] reason_is_none (r : Obj.t) = Obj.is_int r && (Obj.obj r : int) < 0

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
}

(* Search-strategy knobs, uniform across a solver's lifetime.  The
   defaults reproduce the historical constants exactly (Luby restarts
   with base 100, VSIDS decay 0.95, saved-phase polarity), so a solver
   that never calls [set_strategy] behaves bit-for-bit as before — the
   portfolio layer is the only caller that diversifies these. *)
type strategy = {
  var_decay : float;
  restart_luby : bool;
  restart_base : float;
  restart_growth : float;
  seed : int;
  random_pol_freq : int;
  invert_pol : bool;
}

let default_strategy =
  {
    var_decay = 0.95;
    restart_luby = true;
    restart_base = 100.0;
    restart_growth = 1.5;
    seed = 0;
    random_pol_freq = 0;
    invert_pol = false;
  }

(* Learnt-clause exchange hooks (portfolio).  [export] fires inside
   [record_learnt] for clauses worth sharing (LBD or length under the
   caps) with a fresh literal-array copy; [import] fires at restart
   boundaries, at decision level 0, and returns peer clauses (with their
   LBD) to splice into the learnt database.  Both callbacks run on the
   solver's own domain. *)
type exchange = {
  max_lbd : int;
  max_len : int;
  export : lit array -> int -> unit;
  import : unit -> (lit array * int) list;
}

type t = {
  mutable nvars : int;
  clauses : Cvec.t; (* problem clauses *)
  learnts : Cvec.t;
  mutable watches : Cvec.t array; (* clauses of length >= 3, by literal *)
  mutable bin_watches : Ivec.t array; (* binary blockers, by literal *)
  mutable assign : int array; (* per var: -1 undef, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : Obj.t array; (* see the reason encoding above *)
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable seen : bool array;
  mutable trail : int array;
  mutable trail_sz : int;
  mutable trail_lim : int array;
  mutable trail_lim_sz : int;
  mutable qhead : int;
  mutable heap : int array;
  mutable heap_sz : int;
  mutable heap_pos : int array; (* -1 if not in heap *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool; (* false once the empty clause was derived *)
  mutable model : bool array;
  mutable has_model : bool;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learnt_lits : int;
  mutable max_learnts : float;
  (* Preprocessing state (see Simplify and DESIGN.md "Solver
     preprocessing").  [frozen] vars are never eliminated; [elim] vars
     have been resolved away, their defining clauses pushed (newest
     first) onto [elim_stack] for model extension and restoration. *)
  mutable frozen : bool array;
  mutable elim : bool array;
  mutable elim_stack : (int * lit array list) list;
  mutable simplify_on : bool;
  mutable clauses_at_simplify : int;
  mutable n_solves : int;
  (* Installed resource budget (deadline + conflict cap), merged with the
     ambient per-task budget at every cooperative cancellation point. *)
  mutable budget : Budget.t;
  (* Portfolio hooks: the diversification strategy (with [var_inc_scale]
     caching 1/var_decay so the per-conflict path pays no division), the
     xorshift state for randomized polarity (0 keeps saved-phase only),
     the clause-exchange callbacks, and the reason the last [solve]
     returned [Unknown] (None after Sat/Unsat). *)
  mutable strat : strategy;
  mutable var_inc_scale : float;
  mutable rand_state : int;
  mutable exchange : exchange option;
  mutable last_interrupt : Budget.reason option;
}

let clause_decay = 1.0 /. 0.999

let create () =
  {
    nvars = 0;
    clauses = Cvec.create ();
    learnts = Cvec.create ();
    watches = Array.init 2 (fun _ -> Cvec.create ());
    bin_watches = Array.init 2 (fun _ -> Ivec.create ());
    assign = Array.make 1 (-1);
    level = Array.make 1 0;
    reason = Array.make 1 no_reason;
    activity = Array.make 1 0.0;
    polarity = Array.make 1 false;
    seen = Array.make 1 false;
    trail = Array.make 16 0;
    trail_sz = 0;
    trail_lim = Array.make 16 0;
    trail_lim_sz = 0;
    qhead = 0;
    heap = Array.make 16 0;
    heap_sz = 0;
    heap_pos = Array.make 1 (-1);
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    model = [||];
    has_model = false;
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_restarts = 0;
    n_learnt_lits = 0;
    max_learnts = 0.0;
    frozen = Array.make 1 false;
    elim = Array.make 1 false;
    elim_stack = [];
    simplify_on = false;
    clauses_at_simplify = 0;
    n_solves = 0;
    budget = Budget.unlimited;
    strat = default_strategy;
    var_inc_scale = 1.0 /. default_strategy.var_decay;
    rand_state = 0;
    exchange = None;
    last_interrupt = None;
  }

let num_vars s = s.nvars
let num_clauses s = s.clauses.Cvec.sz

let stats s =
  {
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    conflicts = s.n_conflicts;
    restarts = s.n_restarts;
    learnt_literals = s.n_learnt_lits;
  }

let set_budget s b = s.budget <- b
let budget s = s.budget

(* Cooperative cancellation point for encoding-side work (bit-blaster
   word loops, AIG conversion): honors both the installed budget and
   the worker pool's ambient per-task budget. *)
let check_budget s =
  (* Doubles as a flight-recorder touch point: a sampling opportunity
     plus a progress heartbeat, each one boolean load when off. *)
  Sampler.poll_quick ();
  Budget.check s.budget;
  Budget.check (Budget.current ())

let last_interrupt s = s.last_interrupt
let note_interrupt s r = s.last_interrupt <- Some r

let set_strategy s st =
  if st.var_decay <= 0.0 || st.var_decay > 1.0 then
    invalid_arg "Sat.set_strategy: var_decay must be in (0, 1]";
  s.strat <- st;
  s.var_inc_scale <- 1.0 /. st.var_decay;
  s.rand_state <- (if st.seed = 0 then 0 else (st.seed * 0x2545F49) lor 1);
  if st.invert_pol then
    for v = 0 to s.nvars - 1 do
      s.polarity.(v) <- not s.polarity.(v)
    done

let set_exchange s ex = s.exchange <- ex

(* xorshift PRNG for randomized decision polarity; only consulted when
   the strategy asks for it, so the default decision path stays
   branch-predictable. *)
let next_rand s =
  let x = s.rand_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then 1 else x in
  s.rand_state <- x;
  x

(* -- variable order heap (max-heap on activity) ---------------------- *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_sz && heap_lt s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_sz && heap_lt s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_sz = Array.length s.heap then begin
      let d = Array.make (2 * s.heap_sz) 0 in
      Array.blit s.heap 0 d 0 s.heap_sz;
      s.heap <- d
    end;
    s.heap.(s.heap_sz) <- v;
    s.heap_pos.(v) <- s.heap_sz;
    s.heap_sz <- s.heap_sz + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_sz <- s.heap_sz - 1;
  s.heap.(0) <- s.heap.(s.heap_sz);
  s.heap_pos.(s.heap.(0)) <- 0;
  s.heap_pos.(v) <- -1;
  if s.heap_sz > 0 then heap_down s 0;
  v

(* -- variable allocation --------------------------------------------- *)

let grow_array a n dflt =
  let len = Array.length a in
  if n <= len then a
  else begin
    let d = Array.make (max n (2 * len)) dflt in
    Array.blit a 0 d 0 len;
    d
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  let n = s.nvars in
  s.assign <- grow_array s.assign n (-1);
  s.level <- grow_array s.level n 0;
  s.reason <- grow_array s.reason n no_reason;
  s.activity <- grow_array s.activity n 0.0;
  s.polarity <- grow_array s.polarity n false;
  s.seen <- grow_array s.seen n false;
  s.frozen <- grow_array s.frozen n false;
  s.elim <- grow_array s.elim n false;
  s.heap_pos <- grow_array s.heap_pos n (-1);
  if Array.length s.watches < 2 * n then begin
    let len = max (2 * n) (2 * Array.length s.watches) in
    let old = Array.length s.watches in
    let d = Array.init len (fun i -> if i < old then s.watches.(i) else Cvec.create ()) in
    s.watches <- d;
    let db = Array.init len (fun i -> if i < old then s.bin_watches.(i) else Ivec.create ()) in
    s.bin_watches <- db
  end;
  if Array.length s.trail < n then s.trail <- grow_array s.trail n 0;
  heap_insert s v;
  v

(* -- assignment ------------------------------------------------------- *)

let lit_val s l =
  (* -1 undef, 0 false, 1 true *)
  let a = s.assign.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = s.trail_lim_sz

let enqueue s l reason =
  s.assign.(var_of l) <- 1 lxor (l land 1);
  s.level.(var_of l) <- decision_level s;
  s.reason.(var_of l) <- reason;
  s.polarity.(var_of l) <- is_pos l;
  s.trail.(s.trail_sz) <- l;
  s.trail_sz <- s.trail_sz + 1

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to s.learnts.Cvec.sz - 1 do
      let d = s.learnts.Cvec.data.(i) in
      d.act <- d.act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(* -- clause addition -------------------------------------------------- *)

let watch s c =
  if Array.length c.lits = 2 then begin
    (* Both literals stay watched forever (binary watchers are never moved
       and binary clauses are never deleted by reduce_db), so only the
       blocker — the other, implied literal — needs to be recorded. *)
    Ivec.push s.bin_watches.(c.lits.(0)) c.lits.(1);
    Ivec.push s.bin_watches.(c.lits.(1)) c.lits.(0)
  end
  else begin
    Cvec.push s.watches.(c.lits.(0)) c;
    Cvec.push s.watches.(c.lits.(1)) c
  end

exception Early_unsat

let rec add_clause_internal s lits =
  if s.ok then begin
    (* A clause over an eliminated variable re-opens it: restore the
       stored clauses (transitively) before the new one lands. *)
    if s.elim_stack <> [] then
      Array.iter
        (fun l -> if s.elim.(var_of l) then restore_vars s (var_of l))
        lits;
    (* Simplify: drop duplicate and false (level-0) literals; detect
       tautologies and satisfied clauses.  This is the encoder's hot path
       (every Tseitin/AIG clause lands here), so it sorts monomorphically
       and compacts in place instead of going through lists. *)
    let lits = Array.copy lits in
    let n = Array.length lits in
    for i = 1 to n - 1 do
      let x = lits.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && lits.(!j) > x do
        lits.(!j + 1) <- lits.(!j);
        decr j
      done;
      lits.(!j + 1) <- x
    done;
    let taut = ref false in
    let k = ref 0 in
    let last = ref (-2) in
    for i = 0 to n - 1 do
      let l = lits.(i) in
      if l = negate !last then taut := true;
      if l <> !last then begin
        last := l;
        let v = lit_val s l in
        if v >= 0 && s.level.(var_of l) = 0 then begin
          if v = 1 then taut := true (* satisfied at top level *)
          (* false at top level: drop *)
        end
        else begin
          lits.(!k) <- l;
          incr k
        end
      end
    done;
    if not !taut then begin
      match !k with
      | 0 ->
          s.ok <- false;
          raise Early_unsat
      | 1 ->
          let l = lits.(0) in
          if decision_level s <> 0 then
            invalid_arg "Sat.add_clause: units only at level 0";
          (match lit_val s l with
          | 1 -> ()
          | 0 ->
              s.ok <- false;
              raise Early_unsat
          | _ -> enqueue s l no_reason)
      | m ->
          let c =
            {
              lits = (if m = n then lits else Array.sub lits 0 m);
              act = 0.0;
              lbd = 0;
              learnt = false;
              deleted = false;
            }
          in
          Cvec.push s.clauses c;
          watch s c;
          Metrics.incr m_clauses
    end
  end

(* Un-eliminate [v0]: put its stored clauses back into the live set.
   Stored clauses may mention variables eliminated after [v0], whose own
   stored clauses then also come back — the closure is computed first and
   every member unmarked before any clause is re-added, so the nested
   [add_clause_internal] calls see no eliminated variables. *)
and restore_vars s v0 =
  if s.elim.(v0) then begin
    let affected = Hashtbl.create 8 in
    Hashtbl.replace affected v0 ();
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (v, stored) ->
          if Hashtbl.mem affected v then
            List.iter
              (fun lits ->
                Array.iter
                  (fun l ->
                    let w = var_of l in
                    if s.elim.(w) && not (Hashtbl.mem affected w) then begin
                      Hashtbl.replace affected w ();
                      changed := true
                    end)
                  lits)
              stored)
        s.elim_stack
    done;
    let restored, kept =
      List.partition (fun (v, _) -> Hashtbl.mem affected v) s.elim_stack
    in
    s.elim_stack <- kept;
    List.iter
      (fun (v, _) ->
        s.elim.(v) <- false;
        heap_insert s v)
      restored;
    List.iter
      (fun (_, stored) -> List.iter (add_clause_internal s) stored)
      restored
  end

let add_clause_a s lits =
  try add_clause_internal s lits with Early_unsat -> ()

let add_clause s lits = add_clause_a s (Array.of_list lits)

let freeze s v =
  if v < 0 || v >= s.nvars then invalid_arg "Sat.freeze";
  (try restore_vars s v with Early_unsat -> ());
  s.frozen.(v) <- true

let is_eliminated s v = v >= 0 && v < s.nvars && s.elim.(v)
let set_simplify s b = s.simplify_on <- b

(* -- propagation ------------------------------------------------------ *)

let propagate s =
  (* The conflict flag is a clause with a physical-equality sentinel:
     comparing against [None] per watcher visit would call the
     polymorphic equality primitive in the hottest loop of the solver. *)
  let none = Cvec.dummy_clause in
  let confl = ref none in
  while !confl == none && s.qhead < s.trail_sz do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let false_lit = negate p in
    (* Binary clauses first: each visit is one int load plus an
       assignment lookup — the blocker is the implied literal, so neither
       propagation nor the recorded reason ever touches clause memory.  A
       conflicting binary clause is materialised on the spot (conflicts
       are orders of magnitude rarer than visits). *)
    let bw = s.bin_watches.(false_lit) in
    let nb = bw.Ivec.sz in
    let bi = ref 0 in
    while !confl == none && !bi < nb do
      let blit = bw.Ivec.data.(!bi) in
      (match lit_val s blit with
      | 1 -> ()
      | 0 ->
          s.qhead <- s.trail_sz;
          confl :=
            {
              lits = [| blit; false_lit |];
              act = 0.0;
              lbd = 0;
              learnt = false;
              deleted = false;
            }
      | _ -> enqueue s blit (reason_of_lit false_lit));
      incr bi
    done;
    if !confl == none then begin
      let ws = s.watches.(false_lit) in
      let i = ref 0 and j = ref 0 in
      let n = ws.Cvec.sz in
      (try
         while !i < n do
           let c = ws.Cvec.data.(!i) in
           incr i;
           if c.deleted then () (* dropped lazily *)
           else begin
             (* Make sure the false literal is at position 1. *)
             if c.lits.(0) = false_lit then begin
               c.lits.(0) <- c.lits.(1);
               c.lits.(1) <- false_lit
             end;
             let first = c.lits.(0) in
             if lit_val s first = 1 then begin
               ws.Cvec.data.(!j) <- c;
               incr j
             end
             else begin
               (* Look for a new literal to watch. *)
               let len = Array.length c.lits in
               let k = ref 2 in
               while !k < len && lit_val s c.lits.(!k) = 0 do
                 incr k
               done;
               if !k < len then begin
                 c.lits.(1) <- c.lits.(!k);
                 c.lits.(!k) <- false_lit;
                 Cvec.push s.watches.(c.lits.(1)) c
               end
               else begin
                 ws.Cvec.data.(!j) <- c;
                 incr j;
                 if lit_val s first = 0 then begin
                   (* Conflict: copy the remaining watchers back. *)
                   s.qhead <- s.trail_sz;
                   while !i < n do
                     ws.Cvec.data.(!j) <- ws.Cvec.data.(!i);
                     incr i;
                     incr j
                   done;
                   confl := c;
                   raise Exit
                 end
                 else enqueue s first (reason_of_clause c)
               end
             end
           end
         done
       with Exit -> ());
      ws.Cvec.sz <- !j
    end
  done;
  if !confl == none then None else Some !confl

(* -- preprocessing ----------------------------------------------------- *)

(* Run one Simplify pass over the problem clauses and rebuild the solver
   around the outcome.  Must be called at decision level 0; sets [ok]
   false if the pass derives the empty clause. *)
let simplify_body s =
  (match propagate s with
  | Some _ -> s.ok <- false
  | None -> ());
  if s.ok then begin
    (* Extract the live problem clauses with level-0 values folded in.
       After a full level-0 propagation every unsatisfied clause has at
       least two unassigned literals. *)
    let input = ref [] in
    for i = 0 to s.clauses.Cvec.sz - 1 do
      let c = s.clauses.Cvec.data.(i) in
      if not c.deleted then begin
        let sat_ = ref false and n = ref 0 in
        Array.iter
          (fun l ->
            match lit_val s l with
            | 1 -> sat_ := true
            | 0 -> ()
            | _ -> incr n)
          c.lits;
        if not !sat_ then begin
          let a = Array.make !n 0 in
          let k = ref 0 in
          Array.iter
            (fun l ->
              if lit_val s l = -1 then begin
                a.(!k) <- l;
                incr k
              end)
            c.lits;
          input := a :: !input
        end
      end
    done;
    (* Preprocessing degrades rather than raising: Simplify stops at the
       next consistent boundary when the budget runs out, and the pass
       result so far is still sound to install. *)
    let stop () =
      Budget.over s.budget <> None || Budget.over (Budget.current ()) <> None
    in
    let o =
      Simplify.run ~nvars:s.nvars ~frozen:(fun v -> s.frozen.(v)) ~stop !input
    in
    Metrics.incr m_simp_passes;
    Metrics.add m_simp_elim o.Simplify.stats.Simplify.eliminated_vars;
    Metrics.add m_simp_subsumed o.Simplify.stats.Simplify.subsumed;
    Metrics.add m_simp_strengthened o.Simplify.stats.Simplify.strengthened;
    Metrics.add m_simp_probe o.Simplify.stats.Simplify.probe_failures;
    Metrics.add m_simp_units o.Simplify.stats.Simplify.units;
    Metrics.add m_simp_resolvents o.Simplify.stats.Simplify.resolvents;
    if o.Simplify.unsat then s.ok <- false
    else begin
      List.iter (fun (v, _) -> s.elim.(v) <- true) o.Simplify.eliminated;
      s.elim_stack <- List.rev_append o.Simplify.eliminated s.elim_stack;
      (* The whole clause database is rebuilt, so every watch list —
         including the blocker-only binary lists, which cannot express
         deletion — is cleared and re-filled. *)
      Array.iter (fun w -> Cvec.clear w) s.watches;
      Array.iter (fun (w : Ivec.t) -> w.Ivec.sz <- 0) s.bin_watches;
      Cvec.clear s.clauses;
      List.iter
        (fun lits ->
          let c = { lits; act = 0.0; lbd = 0; learnt = false; deleted = false } in
          Cvec.push s.clauses c;
          watch s c)
        o.Simplify.clauses;
      (try
         List.iter
           (fun l ->
             match lit_val s l with
             | 1 -> ()
             | 0 ->
                 s.ok <- false;
                 raise Exit
             | _ -> enqueue s l no_reason)
           o.Simplify.units
       with Exit -> ());
      (* Old reason clauses no longer exist; level-0 implications need no
         justification anyway (analyze never looks at level-0 reasons). *)
      for i = 0 to s.trail_sz - 1 do
        s.reason.(var_of s.trail.(i)) <- no_reason
      done;
      (* Learnt clauses are implied, so they may stay — unless they
         mention an eliminated variable (those clauses must disappear
         with it) or simplify at level 0. *)
      if s.ok then begin
        let old = Array.sub s.learnts.Cvec.data 0 s.learnts.Cvec.sz in
        Cvec.clear s.learnts;
        (try
           Array.iter
             (fun c ->
               if not c.deleted then begin
                 let keep = ref true and sat_ = ref false and n = ref 0 in
                 Array.iter
                   (fun l ->
                     if s.elim.(var_of l) then keep := false
                     else
                       match lit_val s l with
                       | 1 -> sat_ := true
                       | 0 -> ()
                       | _ -> incr n)
                   c.lits;
                 if !keep && not !sat_ then
                   if !n = 0 then begin
                     s.ok <- false;
                     raise Exit
                   end
                   else if !n = 1 then
                     Array.iter
                       (fun l ->
                         if lit_val s l = -1 then enqueue s l no_reason)
                       c.lits
                   else begin
                     if !n < Array.length c.lits then begin
                       let a = Array.make !n 0 in
                       let k = ref 0 in
                       Array.iter
                         (fun l ->
                           if lit_val s l = -1 then begin
                             a.(!k) <- l;
                             incr k
                           end)
                         c.lits;
                       c.lits <- a
                     end;
                     Cvec.push s.learnts c;
                     watch s c
                   end
               end)
             old
         with Exit -> ())
      end;
      (* Re-propagate the whole level-0 trail against the new database:
         resolvents can propagate under literals that were already set. *)
      if s.ok then begin
        s.qhead <- 0;
        match propagate s with
        | Some _ -> s.ok <- false
        | None -> ()
      end;
      s.clauses_at_simplify <- s.clauses.Cvec.sz
    end
  end

let simplify_now s =
  if s.ok && s.trail_lim_sz = 0 then
    Trace.with_span sp_simplify (fun () -> simplify_body s)

(* Minimum new problem clauses since the last pass before [solve]
   re-simplifies. *)
let simplify_threshold = 256

(* A pass costs a full rebuild of the clause database, so [solve] only
   triggers one automatically where the investment amortizes: on solvers
   that are being *re*-solved incrementally (BMC depth sweeps, the CEGIS
   guess loop), never on a freshly-built one-shot query — those are
   dominated by encoding time and die after one search, so stripping
   their Tseitin plumbing costs more than it saves.  Re-triggering is
   geometric (the database must grow by a quarter since the last pass)
   so long incremental runs pay O(log growth) passes, not one per batch.
   One-shot callers that do want a pass (DIMACS solving, tests) call
   [simplify_now] explicitly. *)
let maybe_simplify s =
  if
    s.simplify_on && s.ok && s.trail_lim_sz = 0 && s.n_solves > 0
    && s.clauses.Cvec.sz - s.clauses_at_simplify
       >= max simplify_threshold (s.clauses_at_simplify / 4)
  then Trace.with_span sp_simplify (fun () -> simplify_body s)

(* Extend a model of the simplified formula to the eliminated variables.
   [elim_stack] is newest-first, i.e. reverse elimination order: a stored
   clause mentions only its own variable, never-eliminated variables
   (already valued) and later-eliminated variables (walked earlier), so
   evaluation is total.  Setting each variable to satisfy its stored
   clauses cannot conflict — the accepted resolvents guarantee that when
   all other literals of some positive-occurrence clause are false, every
   negative-occurrence clause is satisfied by another literal. *)
let extend_model s =
  List.iter
    (fun (v, stored) ->
      s.model.(v) <- false;
      if
        List.exists
          (fun lits ->
            Array.exists (fun l -> var_of l = v && is_pos l) lits
            && not
                 (Array.exists
                    (fun l ->
                      let w = var_of l in
                      w <> v
                      && (if is_pos l then s.model.(w) else not s.model.(w)))
                    lits))
          stored
      then s.model.(v) <- true)
    s.elim_stack

(* -- backtracking ------------------------------------------------------ *)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_sz - 1 downto bound do
      let v = var_of s.trail.(i) in
      s.assign.(v) <- -1;
      s.reason.(v) <- no_reason;
      heap_insert s v
    done;
    s.trail_sz <- bound;
    s.qhead <- bound;
    s.trail_lim_sz <- lvl
  end

let new_decision_level s =
  if s.trail_lim_sz = Array.length s.trail_lim then
    s.trail_lim <- grow_array s.trail_lim (2 * s.trail_lim_sz) 0;
  s.trail_lim.(s.trail_lim_sz) <- s.trail_sz;
  s.trail_lim_sz <- s.trail_lim_sz + 1

(* -- conflict analysis (first UIP) ------------------------------------- *)

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_sz - 1) in
  let confl = ref (reason_of_clause confl) in
  let bt_level = ref 0 in
  let continue = ref true in
  (* Mark one antecedent literal of the current reason/conflict. *)
  let[@inline] mark q =
    let v = var_of q in
    if (not s.seen.(v)) && s.level.(v) > 0 then begin
      s.seen.(v) <- true;
      var_bump s v;
      if s.level.(v) >= decision_level s then incr path
      else begin
        learnt := q :: !learnt;
        if s.level.(v) > !bt_level then bt_level := s.level.(v)
      end
    end
  in
  while !continue do
    (if reason_is_lit !confl then
       (* Binary implication: the stored literal is the whole antecedent
          (the implied side is skipped exactly as start=1 does below). *)
       mark (Obj.obj !confl : int)
     else begin
       assert (not (reason_is_none !confl));
       let c : clause = Obj.obj !confl in
       if c.learnt then cla_bump s c;
       let start = if !p = -1 then 0 else 1 in
       for k = start to Array.length c.lits - 1 do
         mark c.lits.(k)
       done
     end);
    (* Walk the trail backwards to the next marked literal. *)
    while not s.seen.(var_of s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    decr idx;
    s.seen.(var_of q) <- false;
    confl := s.reason.(var_of q);
    decr path;
    if !path = 0 then begin
      p := negate q;
      continue := false
    end
    else begin
      (* [q]'s reason contributes; mark that the first literal of the reason
         (q itself) is skipped via start=1 in the next round. *)
      p := q
    end
  done;
  (* Clause minimization: a literal is redundant when every path through
     its implication-graph ancestry ends in literals already in the learnt
     clause (or fixed at level 0).  The walk is iterative — an explicit
     stack of (literal, reason, next-antecedent) frames — so deep chains
     cost heap, not OCaml stack.  The probe gives up beyond 49 frames
     (failing is always sound, it only keeps a removable literal); giving
     up cheaply matters, because on parity-heavy instances most probes
     fail and an eager abort is what keeps minimization off the
     profile. *)
  List.iter (fun l -> s.seen.(var_of l) <- true) !learnt;
  let extra_seen = ref [] in
  let lit_redundant l0 =
    let r0 = s.reason.(var_of l0) in
    if reason_is_none r0 then false
    else begin
      let nant r =
        if reason_is_lit r then 1 else Array.length (Obj.obj r : clause).lits
      in
      let stack = ref [ (l0, r0, nant r0, ref 0) ] in
      let depth = ref 1 in
      let ok = ref true in
      (try
         while !stack <> [] do
           match !stack with
           | [] -> assert false
           | (l, r, n, k) :: rest ->
               if !k >= n then begin
                 (* Every antecedent is covered: [l] is redundant.  Mark
                    it so sibling probes and later top-level probes reuse
                    the result (the top literal is already seen). *)
                 stack := rest;
                 decr depth;
                 if rest <> [] then begin
                   s.seen.(var_of l) <- true;
                   extra_seen := l :: !extra_seen
                 end
               end
               else begin
                 let q =
                   if reason_is_lit r then (Obj.obj r : int)
                   else (Obj.obj r : clause).lits.(!k)
                 in
                 incr k;
                 if
                   q = negate l
                   || s.level.(var_of q) = 0
                   || s.seen.(var_of q)
                 then ()
                 else if !depth >= 49 then begin
                   ok := false;
                   raise Exit
                 end
                 else begin
                   let rq = s.reason.(var_of q) in
                   if reason_is_none rq then begin
                     ok := false;
                     raise Exit
                   end
                   else begin
                     stack := (q, rq, nant rq, ref 0) :: !stack;
                     incr depth
                   end
                 end
               end
         done
       with Exit -> ());
      !ok
    end
  in
  let kept = List.filter (fun l -> not (lit_redundant l)) !learnt in
  List.iter (fun l -> s.seen.(var_of l) <- false) !learnt;
  List.iter (fun l -> s.seen.(var_of l) <- false) !extra_seen;
  (* Recompute the backtrack level from the kept literals. *)
  let bt = List.fold_left (fun acc l -> max acc (s.level.(var_of l))) 0 kept in
  bt_level := if kept = [] then 0 else bt;
  (* Literal-block distance: number of distinct decision levels. *)
  let lbd =
    let levels = List.sort_uniq compare (List.map (fun l -> s.level.(var_of l)) (!p :: kept)) in
    List.length levels
  in
  (!p :: kept, !bt_level, lbd)

let record_learnt s lits lbd =
  match lits with
  | [] -> s.ok <- false
  | [ l ] ->
      cancel_until s 0;
      if lit_val s l = 0 then s.ok <- false
      else if lit_val s l = -1 then enqueue s l no_reason;
      (* Learnt units are implied by the problem clauses alone
         (assumptions enter the search as reasonless decisions and are
         never resolved into learnt clauses), so they are always worth
         exporting to portfolio peers. *)
      (match s.exchange with
      | Some ex -> ex.export [| l |] 1
      | None -> ())
  | asserting :: _ ->
      let arr = Array.of_list lits in
      (* Put a highest-level literal (other than the asserting one) in
         position 1 so the watches are correct after backjumping. *)
      let best = ref 1 in
      for k = 2 to Array.length arr - 1 do
        if s.level.(var_of arr.(k)) > s.level.(var_of arr.(!best)) then best := k
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!best);
      arr.(!best) <- tmp;
      let c = { lits = arr; act = 0.0; lbd; learnt = true; deleted = false } in
      cla_bump s c;
      Cvec.push s.learnts c;
      watch s c;
      s.n_learnt_lits <- s.n_learnt_lits + Array.length arr;
      Metrics.incr m_learnt_clauses;
      Metrics.observe h_learnt_len (Array.length arr);
      (* Export a fresh copy: [propagate] reorders [c.lits] in place, so
         the shared buffer must never alias live clause memory. *)
      (match s.exchange with
      | Some ex when lbd <= ex.max_lbd || Array.length arr <= ex.max_len ->
          ex.export (Array.copy arr) lbd
      | _ -> ());
      if Array.length arr = 2 then enqueue s asserting (reason_of_lit arr.(1))
      else enqueue s asserting (reason_of_clause c)

(* Splice one peer-learnt clause into the database at decision level 0.
   Imported clauses are implied by the shared problem formula (see
   [record_learnt] on why learnt clauses never depend on assumptions), so
   adding them preserves equisatisfiability — including clauses that
   mention variables this solver has since eliminated, though in practice
   peers share the clone-time elimination state and the defensive skip
   below never fires.  Sorts/dedups like [add_clause_internal] but lands
   the clause in [learnts] with its LBD so [reduce_db] can manage it. *)
let import_learnt s lits lbd =
  if s.ok && s.trail_lim_sz = 0 then begin
    let keep = ref true in
    Array.iter (fun l -> if s.elim.(var_of l) then keep := false) lits;
    if !keep then begin
      let lits = Array.copy lits in
      let n = Array.length lits in
      for i = 1 to n - 1 do
        let x = lits.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && lits.(!j) > x do
          lits.(!j + 1) <- lits.(!j);
          decr j
        done;
        lits.(!j + 1) <- x
      done;
      let taut = ref false in
      let k = ref 0 in
      let last = ref (-2) in
      for i = 0 to n - 1 do
        let l = lits.(i) in
        if l = negate !last then taut := true;
        if l <> !last then begin
          last := l;
          match lit_val s l with
          | 1 -> taut := true (* satisfied at top level *)
          | 0 -> () (* false at top level: drop *)
          | _ ->
              lits.(!k) <- l;
              incr k
        end
      done;
      if not !taut then
        match !k with
        | 0 -> s.ok <- false
        | 1 -> enqueue s lits.(0) no_reason
        | m ->
            let c =
              {
                lits = (if m = n then lits else Array.sub lits 0 m);
                act = 0.0;
                lbd = min lbd m;
                learnt = true;
                deleted = false;
              }
            in
            Cvec.push s.learnts c;
            watch s c
    end
  end

let import_clauses s cls =
  List.iter (fun (lits, lbd) -> import_learnt s lits lbd) cls;
  (* New units (or an empty clause) must propagate before the caller
     relies on the solver state again. *)
  if s.ok && s.trail_lim_sz = 0 then
    match propagate s with Some _ -> s.ok <- false | None -> ()

(* -- learnt clause DB reduction ---------------------------------------- *)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = var_of c.lits.(0) in
  let r = s.reason.(v) in
  (not (Obj.is_int r)) && (Obj.obj r : clause) == c && s.assign.(v) >= 0

let reduce_db s =
  let l = s.learnts in
  let arr = Array.sub l.Cvec.data 0 l.Cvec.sz in
  (* Worst first: high LBD, then low activity (glue clauses survive). *)
  Array.sort
    (fun a b ->
      let c = Stdlib.compare b.lbd a.lbd in
      if c <> 0 then c else Stdlib.compare a.act b.act)
    arr;
  let half = Array.length arr / 2 in
  Array.iteri
    (fun i c ->
      if
        i < half && c.lbd > 3 && Array.length c.lits > 2 && not (locked s c)
      then c.deleted <- true)
    arr;
  Cvec.clear l;
  Array.iter (fun c -> if not c.deleted then Cvec.push l c) arr

(* -- decision ----------------------------------------------------------- *)

let pick_branch_var s =
  let v = ref (-1) in
  while !v = -1 && s.heap_sz > 0 do
    let cand = heap_pop s in
    if s.assign.(cand) < 0 && not s.elim.(cand) then v := cand
  done;
  !v

(* -- Luby sequence ------------------------------------------------------ *)

let luby x =
  (* MiniSat's finite-subsequence formulation of the Luby sequence. *)
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  Float.of_int (1 lsl !seq)

type result = Sat | Unsat | Unknown

exception Found of result

let solve_body ?(assumptions = []) ?max_conflicts ?deadline s =
  s.has_model <- false;
  s.last_interrupt <- None;
  Fault.check "sat.solve";
  (* Merge the per-call limits with the installed budget and the worker
     pool's ambient per-task budget into one effective deadline and
     conflict allowance for this search. *)
  let task_budget = Budget.current () in
  let eff_deadline =
    let d =
      Float.min
        (match deadline with Some d -> d | None -> infinity)
        (Float.min (Budget.deadline s.budget) (Budget.deadline task_budget))
    in
    if d = infinity then None else Some d
  in
  let eff_max_conflicts =
    let cap =
      min
        (Budget.conflicts_remaining s.budget)
        (Budget.conflicts_remaining task_budget)
    in
    match max_conflicts with
    | Some m -> Some (min m cap)
    | None -> if cap = max_int then None else Some cap
  in
  let deadline_passed () =
    match eff_deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  (* Cooperative stop poll, shared by the restart / 1024-conflict /
     reduce-db boundaries.  Beyond the effective deadline it also asks
     the installed and ambient budgets directly, which is what makes
     [Budget.cancel] from a portfolio arbiter (or a pool supervisor on
     another domain) actually stop this search: the deadline/conflict
     caps were merged once at entry, but a cancellation arrives later. *)
  let interrupted () =
    if deadline_passed () then Some Budget.Deadline
    else
      match Budget.over s.budget with
      | Some _ as r -> r
      | None -> Budget.over task_budget
  in
  let stop r =
    s.last_interrupt <- Some r;
    raise (Found Unknown)
  in
  if not s.ok then Unsat
  else begin
    let assumptions = Array.of_list assumptions in
    (* Assumption variables must survive elimination: restore any that an
       earlier pass removed and pin them against future passes. *)
    Array.iter (fun a -> freeze s (var_of a)) assumptions;
    (match propagate s with
    | Some _ -> s.ok <- false
    | None -> ());
    maybe_simplify s;
    s.n_solves <- s.n_solves + 1;
    if not s.ok then Unsat
    else begin
      let restart_limit = ref 0.0 in
      let conflicts_here = ref 0 in
      let start_conflicts = s.n_conflicts in
      if s.max_learnts = 0.0 then
        s.max_learnts <- max 4000.0 (Float.of_int s.clauses.Cvec.sz /. 3.0);
      let result =
        try
          s.n_restarts <- s.n_restarts - 1;
          (* restart loop *)
          let round = ref 0 in
          while true do
            s.n_restarts <- s.n_restarts + 1;
            restart_limit :=
              (if s.strat.restart_luby then luby !round *. s.strat.restart_base
               else s.strat.restart_base *. (s.strat.restart_growth ** Float.of_int !round));
            incr round;
            conflicts_here := 0;
            cancel_until s 0;
            (* Restart boundary: cheap, and restarts fire every ~100+
               conflicts, so propagation-heavy instances that rarely hit
               the modular conflict check still see the deadline here.
               Also the clause-import point: the trail is at level 0, so
               peer clauses can splice in (and propagate) safely. *)
            (match s.exchange with
            | Some ex ->
                List.iter (fun (lits, lbd) -> import_learnt s lits lbd) (ex.import ());
                (match propagate s with
                | Some _ -> s.ok <- false
                | None -> ());
                if not s.ok then raise (Found Unsat)
            | None -> ());
            (match interrupted () with Some r -> stop r | None -> ());
            (* search *)
            (try
               while true do
                 match propagate s with
                 | Some confl ->
                     s.n_conflicts <- s.n_conflicts + 1;
                     incr conflicts_here;
                     (match eff_max_conflicts with
                     | Some m when s.n_conflicts - start_conflicts >= m ->
                         stop Budget.Conflicts
                     | _ -> ());
                     if s.n_conflicts land 1023 = 0 then begin
                       (* The sampler reads live totals here because the
                          registry only sees them as deltas at solve
                          exit. *)
                       Sampler.poll_sat ~conflicts:s.n_conflicts
                         ~propagations:s.n_propagations
                         ~learnts:s.learnts.Cvec.sz;
                       match interrupted () with
                       | Some r -> stop r
                       | None -> ()
                     end;
                     if decision_level s = 0 then begin
                       s.ok <- false;
                       raise (Found Unsat)
                     end;
                     let learnt, bt, lbd = analyze s confl in
                     cancel_until s bt;
                     record_learnt s learnt lbd;
                     if not s.ok then raise (Found Unsat);
                     s.var_inc <- s.var_inc *. s.var_inc_scale;
                     s.cla_inc <- s.cla_inc *. clause_decay;
                     if Float.of_int !conflicts_here >= !restart_limit then
                       raise Exit
                 | None ->
                     if Float.of_int s.learnts.Cvec.sz -. Float.of_int s.trail_sz
                        >= s.max_learnts
                     then begin
                       (* Learnt-DB reductions are rare and follow long
                          propagation-heavy stretches — another natural
                          deadline boundary. *)
                       (match interrupted () with
                       | Some r -> stop r
                       | None -> ());
                       reduce_db s;
                       s.max_learnts <- s.max_learnts *. 1.05
                     end;
                     (* Assumption and decision handling. *)
                     if decision_level s < Array.length assumptions then begin
                       let a = assumptions.(decision_level s) in
                       match lit_val s a with
                       | 1 -> new_decision_level s
                       | 0 -> raise (Found Unsat)
                       | _ ->
                           new_decision_level s;
                           enqueue s a no_reason
                     end
                     else begin
                       let v = pick_branch_var s in
                       if v = -1 then begin
                         (* All variables assigned: model found. *)
                         s.model <- Array.make s.nvars false;
                         for i = 0 to s.nvars - 1 do
                           s.model.(i) <- s.assign.(i) = 1
                         done;
                         extend_model s;
                         s.has_model <- true;
                         raise (Found Sat)
                       end;
                       s.n_decisions <- s.n_decisions + 1;
                       new_decision_level s;
                       let l =
                         if
                           s.strat.random_pol_freq > 0
                           && next_rand s mod s.strat.random_pol_freq = 0
                         then if next_rand s land 1 = 0 then pos v else neg_of_var v
                         else if s.polarity.(v) then pos v
                         else neg_of_var v
                       in
                       enqueue s l no_reason
                     end
               done
             with Exit -> Metrics.observe h_restart_conflicts !conflicts_here)
          done;
          assert false
        with Found r -> r
      in
      (* [cancel_until 0] restores the solver to its root state, so an
         interrupted (Unknown) solver remains fully reusable. *)
      cancel_until s 0;
      let used = s.n_conflicts - start_conflicts in
      Budget.charge s.budget used;
      Budget.charge task_budget used;
      result
    end
  end

let solve_traced ?assumptions ?max_conflicts ?deadline s =
  if not (!Metrics.enabled || !Trace.enabled) then
    solve_body ?assumptions ?max_conflicts ?deadline s
  else
    Trace.with_span sp_solve (fun () ->
        let d0 = s.n_decisions
        and p0 = s.n_propagations
        and c0 = s.n_conflicts
        and r0 = s.n_restarts in
        Fun.protect
          ~finally:(fun () ->
            Metrics.add m_decisions (s.n_decisions - d0);
            Metrics.add m_propagations (s.n_propagations - p0);
            Metrics.add m_conflicts (s.n_conflicts - c0);
            Metrics.add m_restarts (s.n_restarts - r0))
          (fun () -> solve_body ?assumptions ?max_conflicts ?deadline s))

let solve ?assumptions ?max_conflicts ?deadline s =
  (* Solve-lifecycle record: solves are frequent (once per BMC bound per
     candidate), so this is Debug-level and captured only while a Debug
     sink is attached. *)
  if not (Log.logs Log.Debug) then
    solve_traced ?assumptions ?max_conflicts ?deadline s
  else begin
    let c0 = s.n_conflicts and t0 = Unix.gettimeofday () in
    let r = solve_traced ?assumptions ?max_conflicts ?deadline s in
    Log.debug "sat.solve"
      [
        ( "result",
          Log.Str
            (match r with Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown")
        );
        ("vars", Log.I s.nvars);
        ("conflicts", Log.I (s.n_conflicts - c0));
        ("us", Log.F ((Unix.gettimeofday () -. t0) *. 1e6));
      ];
    r
  end

(* -- portfolio plumbing ------------------------------------------------- *)

(* Run the pre-search phase of [solve] on the master solver so portfolio
   workers clone the *post-preprocessing* clause database: assumption
   variables frozen (and restored if eliminated), level-0 propagation at
   fixpoint, and the same auto-simplify decision an ordinary [solve]
   would have made — including the [n_solves] bump that keeps the
   "first solve never simplifies" heuristic intact for portfolio
   queries.  Returns [false] when the instance is already UNSAT. *)
let prepare ?(assumptions = []) s =
  s.has_model <- false;
  s.last_interrupt <- None;
  if not s.ok then false
  else begin
    List.iter (fun a -> freeze s (var_of a)) assumptions;
    (match propagate s with
    | Some _ -> s.ok <- false
    | None -> ());
    if s.ok then maybe_simplify s;
    s.n_solves <- s.n_solves + 1;
    s.ok
  end

let clone s =
  if s.trail_lim_sz <> 0 then invalid_arg "Sat.clone: only at decision level 0";
  let c = create () in
  c.nvars <- s.nvars;
  c.assign <- Array.copy s.assign;
  c.level <- Array.copy s.level;
  (* Level-0 implications need no justification (analyze never follows
     level-0 reasons), so the clone drops them rather than aliasing the
     master's clause objects across domains. *)
  c.reason <- Array.make (Array.length s.reason) no_reason;
  c.activity <- Array.copy s.activity;
  c.polarity <- Array.copy s.polarity;
  c.seen <- Array.make (Array.length s.seen) false;
  c.frozen <- Array.copy s.frozen;
  c.elim <- Array.copy s.elim;
  (* Immutable spine and literal arrays that are only ever read (model
     extension, restore): structural sharing across domains is safe. *)
  c.elim_stack <- s.elim_stack;
  c.trail <- Array.copy s.trail;
  c.trail_sz <- s.trail_sz;
  c.qhead <- s.qhead;
  c.var_inc <- s.var_inc;
  c.cla_inc <- s.cla_inc;
  c.ok <- s.ok;
  c.max_learnts <- s.max_learnts;
  (* Workers never re-simplify: a mid-search pass would rebuild the
     clause database under the exchange buffer's feet, and the master
     already ran the profitable pass in [prepare]. *)
  c.simplify_on <- false;
  c.clauses_at_simplify <- s.clauses_at_simplify;
  c.n_solves <- s.n_solves;
  let wlen = Array.length s.watches in
  c.watches <- Array.init wlen (fun _ -> Cvec.create ());
  c.bin_watches <- Array.init wlen (fun _ -> Ivec.create ());
  c.heap_pos <- Array.make (Array.length s.heap_pos) (-1);
  c.heap <- Array.make (max 16 s.nvars) 0;
  c.heap_sz <- 0;
  for v = 0 to s.nvars - 1 do
    heap_insert c v
  done;
  (* Deep-copy both clause databases: [propagate] reorders [lits] in
     place, so literal arrays must never be shared between domains.
     Copying preserves literal order, and watching positions 0/1
     replicates the master's exact (valid) watch state. *)
  let copy_into dst (src : Cvec.t) =
    for i = 0 to src.Cvec.sz - 1 do
      let cl = src.Cvec.data.(i) in
      if not cl.deleted then begin
        let cc =
          {
            lits = Array.copy cl.lits;
            act = cl.act;
            lbd = cl.lbd;
            learnt = cl.learnt;
            deleted = false;
          }
        in
        Cvec.push dst cc;
        watch c cc
      end
    done
  in
  copy_into c.clauses s.clauses;
  copy_into c.learnts s.learnts;
  c

let adopt s ~winner =
  if winner.has_model then begin
    s.model <- Array.copy winner.model;
    s.has_model <- true
  end;
  s.last_interrupt <- winner.last_interrupt;
  (* Fold the winner's search counters into the master's [stats] so BMC
     and CLI summaries account the work (the flight-recorder registry
     already saw every worker's deltas when their own [solve] calls
     flushed, so this touches only the local fields). *)
  s.n_decisions <- s.n_decisions + winner.n_decisions;
  s.n_propagations <- s.n_propagations + winner.n_propagations;
  s.n_conflicts <- s.n_conflicts + winner.n_conflicts;
  s.n_restarts <- s.n_restarts + winner.n_restarts;
  s.n_learnt_lits <- s.n_learnt_lits + winner.n_learnt_lits

let value s v =
  if not s.has_model then failwith "Sat.value: no model available";
  if v < Array.length s.model then s.model.(v) else false

let lit_value s l =
  let b = value s (var_of l) in
  if is_pos l then b else not b

let to_dimacs s =
  let buf = Buffer.create 4096 in
  (* Unit clauses never reach [clauses]: they are enqueued on the trail at
     level 0 (both user-added units and top-level propagations, which are
     implied anyway).  Export them as unit clauses so the CNF is
     equisatisfiable with the solver state. *)
  let root_sz = if s.trail_lim_sz = 0 then s.trail_sz else s.trail_lim.(0) in
  let n_total =
    s.clauses.Cvec.sz + root_sz + (if s.ok then 0 else 1)
  in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" s.nvars n_total);
  let emit_lit l =
    let v = var_of l + 1 in
    Buffer.add_string buf (string_of_int (if is_pos l then v else -v));
    Buffer.add_char buf ' '
  in
  for i = 0 to root_sz - 1 do
    emit_lit s.trail.(i);
    Buffer.add_string buf "0\n"
  done;
  for i = 0 to s.clauses.Cvec.sz - 1 do
    let c = s.clauses.Cvec.data.(i) in
    Array.iter emit_lit c.lits;
    Buffer.add_string buf "0\n"
  done;
  (* A derived empty clause cannot be represented by the stored clauses;
     emit it explicitly so the export stays unsatisfiable. *)
  if not s.ok then Buffer.add_string buf "0\n";
  Buffer.contents buf
