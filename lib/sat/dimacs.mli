(** DIMACS CNF import/export, for cross-checking the CDCL solver against
    external SAT solvers and for archiving hard instances. *)

type cnf = { num_vars : int; clauses : int list list }
(** Literals in DIMACS convention: variable indices from 1, negative for
    negated; no trailing 0s. *)

val parse : string -> (cnf, string) result
(** Parse DIMACS text ([c] comments and a [p cnf V C] header). *)

val print : cnf -> string
(** Render a CNF back to DIMACS text (header plus one clause per line). *)

val solve :
  ?portfolio:int -> ?deterministic:bool -> cnf -> Sat.result * bool array option
(** Run the CDCL solver on a parsed instance; on SAT, the array maps
    variable i (1-based, index i-1) to its value.  [portfolio] above 1
    races that many diversified workers via {!Portfolio.solve}
    ([deterministic] for the reproducible round-robin mode). *)

val of_solver_instance : (int -> int list list) -> int -> cnf
(** Build a CNF from a clause generator (used by tests). *)
