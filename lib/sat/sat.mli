(** A CDCL SAT solver.

    Features: two-watched-literal propagation with dedicated binary-clause
    watch lists (a binary watcher is a single blocker literal, so binary
    propagation never touches clause memory), VSIDS decision heuristic with
    phase saving, first-UIP conflict analysis with iterative clause
    minimization, Luby restarts, learnt-clause database reduction, and
    solving under assumptions.  Built for the bit-blasted QF_BV queries
    issued by {!Sqed_smt} (CEGIS and BMC workloads).

    For the cross-layer invariants this solver's incremental API rests on
    (frozen variables, restore-on-add, budget poll sites, clause-database
    cloning for the portfolio), see [docs/SOLVER.md]. *)

type t
(** A solver instance: clause database, assignment trail and heuristic
    state.  Single-owner mutable — never share one instance across
    domains (the portfolio layer {!clone}s instead). *)

type lit = int
(** Literals are [2 * var] (positive) or [2 * var + 1] (negated). *)

val create : unit -> t
(** A fresh, empty solver (no variables, no clauses, default
    {!default_strategy}, no budget). *)

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val num_vars : t -> int
(** Number of variables allocated so far. *)

val num_clauses : t -> int
(** Number of live problem clauses (learnt clauses not included). *)

val pos : int -> lit
(** Positive literal of a variable. *)

val neg_of_var : int -> lit
(** Negative literal of a variable. *)

val negate : lit -> lit
(** The opposite-polarity literal of the same variable. *)

val var_of : lit -> int
(** The variable a literal mentions. *)

val is_pos : lit -> bool
(** Whether a literal is the positive occurrence of its variable. *)

val add_clause : t -> lit list -> unit
(** Add a clause.  Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable. *)

val add_clause_a : t -> lit array -> unit
(** Array variant of {!add_clause} (the encoder hot path; the array is
    copied, not captured). *)

(** {2 Preprocessing}

    A SatELite-style simplifier ({!Simplify}: bounded variable
    elimination, subsumption, self-subsuming resolution, failed-literal
    probing) can run between [solve] calls.  It is off by default on a
    raw solver; {!Sqed_smt.Solver} turns it on.  Eliminated variables are
    transparent to the caller: models are extended over them, and adding
    a clause (or assuming a literal) that mentions one restores its
    defining clauses first, so the incremental API keeps its meaning. *)

val set_simplify : t -> bool -> unit
(** Enable/disable automatic simplification.  When enabled, [solve] runs
    a pass on solvers that are being re-solved incrementally, once enough
    new problem clauses have arrived since the last pass (the database
    must also have grown geometrically, so long runs pay few passes).
    The very first [solve] of a fresh instance never simplifies — one-shot
    queries are encoding-bound and a pass would cost more than it saves;
    use {!simplify_now} to force one. *)

val simplify_now : t -> unit
(** Run one simplification pass immediately (no-op unless the solver is
    at decision level 0 and still satisfiable-so-far). *)

val freeze : t -> int -> unit
(** Exempt a variable from elimination, restoring it first if a previous
    pass eliminated it.  Callers freeze variables whose clauses must
    survive verbatim — e.g. the bit-blaster freezes every literal it
    caches, because future blasts emit new clauses over those literals.
    Assumption variables are frozen automatically by [solve]. *)

val is_eliminated : t -> int -> bool
(** Has the variable been eliminated (and not restored)?  Mostly for
    tests and debugging. *)

type result = Sat | Unsat | Unknown
(** Verdict of a {!solve} call; [Unknown] means a budget/limit interrupt
    (see {!last_interrupt} for which one). *)

val solve :
  ?assumptions:lit list -> ?max_conflicts:int -> ?deadline:float -> t -> result
(** Solve under the given assumptions.  The solver is reusable: further
    clauses may be added and [solve] called again (incremental use) —
    including after an interrupted ([Unknown]) search, which backtracks
    to the root state before returning.  [max_conflicts] bounds the
    search effort and [deadline] (an absolute [Unix.gettimeofday]
    instant, polled every 1024 conflicts and at restart and learnt-DB
    reduction boundaries) bounds wall time; when either is exceeded the
    answer is [Unknown].  Per-call limits are merged with the installed
    {!set_budget} budget and the ambient per-task
    {!Sqed_resil.Budget.current} budget; the same poll sites also
    observe {!Sqed_resil.Budget.cancel} on either budget, which is how a
    portfolio arbiter stops a losing worker. *)

val last_interrupt : t -> Sqed_resil.Budget.reason option
(** Why the most recent {!solve} returned [Unknown] — [Deadline] for a
    wall-clock limit, [Conflicts] for a conflict cap, [Cancelled] for an
    explicit {!Sqed_resil.Budget.cancel}.  [None] after [Sat]/[Unsat]
    (and before any solve). *)

val note_interrupt : t -> Sqed_resil.Budget.reason -> unit
(** Record an interrupt reason on behalf of the solver ({!Portfolio}
    plumbing, for [Unknown]s decided outside the CDCL loop — e.g. a
    budget found spent before any worker was spawned). *)

(** {1 Resource budgets}

    See {!Sqed_resil.Budget}.  An installed budget governs every
    subsequent [solve] (deadline and conflict cap, charged as searches
    consume conflicts) and is polled by the encoding layers through
    {!check_budget} so bit-blasting and preprocessing are bounded too,
    not just the CDCL loop. *)

val set_budget : t -> Sqed_resil.Budget.t -> unit
(** Install a budget ({!Sqed_resil.Budget.unlimited} to clear). *)

val budget : t -> Sqed_resil.Budget.t
(** The installed budget ({!Sqed_resil.Budget.unlimited} when none). *)

val check_budget : t -> unit
(** Cooperative cancellation point for work feeding this solver: raises
    {!Sqed_resil.Budget.Exhausted} when the installed or ambient
    per-task budget is spent. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer.  Unconstrained variables
    read [false].  Raises [Failure] if the last call did not return [Sat]. *)

val lit_value : t -> lit -> bool
(** Model value of a literal (see {!value}). *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
}
(** Cumulative search counters over the solver's lifetime. *)

val stats : t -> stats
(** Read the counters (cheap; plain field loads). *)

(** {1 Portfolio hooks}

    The building blocks {!Portfolio} assembles into K diversified
    workers racing on one instance.  They are exposed here rather than
    kept private because the portfolio lives in a separate module of
    this library; ordinary clients never need them. *)

type strategy = {
  var_decay : float;
      (** VSIDS activity decay factor in (0, 1]; default 0.95.  Smaller
          values make the heuristic more reactive to recent conflicts. *)
  restart_luby : bool;
      (** Luby restarts (default) vs. geometric when [false]. *)
  restart_base : float;
      (** Conflicts before the first restart (Luby unit / geometric
          start); default 100. *)
  restart_growth : float;
      (** Geometric growth factor, used only when [restart_luby] is
          [false]; default 1.5. *)
  seed : int;
      (** PRNG seed for randomized polarity; 0 (default) keeps the
          solver fully deterministic. *)
  random_pol_freq : int;
      (** Pick a random phase on roughly 1 in [random_pol_freq]
          decisions; 0 (default) always uses the saved phase. *)
  invert_pol : bool;
      (** Flip every saved phase once when the strategy is installed, so
          the worker starts its search in the complementary half of the
          assignment space. *)
}
(** Search-diversification knobs.  {!default_strategy} reproduces the
    solver's historical constants exactly, so installing it is a no-op
    behavior-wise. *)

val default_strategy : strategy
(** The stock strategy every fresh solver starts with. *)

val set_strategy : t -> strategy -> unit
(** Install a strategy.  [invert_pol] takes effect immediately (the
    saved-phase array is flipped once); the other knobs steer subsequent
    {!solve} calls.  Raises [Invalid_argument] if [var_decay] is outside
    (0, 1]. *)

type exchange = {
  max_lbd : int;  (** export learnt clauses with LBD at most this... *)
  max_len : int;  (** ...or at most this many literals. *)
  export : lit array -> int -> unit;
      (** Called inside conflict analysis for each export-worthy learnt
          clause with a fresh literal-array copy and its LBD.  Learnt
          units are always exported (with LBD 1).  Runs on the solver's
          domain; must not block. *)
  import : unit -> (lit array * int) list;
      (** Called at restart boundaries (decision level 0); returned
          clauses are spliced into the learnt database and propagated.
          Runs on the solver's domain. *)
}
(** Learnt-clause exchange callbacks.  Learnt clauses are implied by the
    problem clauses alone — assumptions enter the search as reasonless
    decisions and are never resolved into learnt clauses — so they are
    sound to share between solvers working on clones of one instance. *)

val set_exchange : t -> exchange option -> unit
(** Install (or with [None] remove) the exchange callbacks. *)

val prepare : ?assumptions:lit list -> t -> bool
(** Run the pre-search phase of {!solve} — freeze assumption variables,
    propagate to the level-0 fixpoint, auto-simplify if due — so that
    {!clone} snapshots the post-preprocessing clause database.  Returns
    [false] when the instance is already UNSAT (no portfolio needed). *)

val clone : t -> t
(** Deep-copy the solver for an independent worker: problem and learnt
    clauses (fresh literal arrays — propagation mutates them in place),
    level-0 trail, saved phases, activities and elimination state.  The
    clone has auto-simplify off, no budget, no exchange, zero counters
    and {!default_strategy}.  Only valid at decision level 0. *)

val adopt : t -> winner:t -> unit
(** After a portfolio race, fold the winning clone back into the master:
    copy its model (if any) and {!last_interrupt}, and add its search
    counters to the master's {!stats}. *)

val import_clauses : t -> (lit array * int) list -> unit
(** Splice peer-learnt clauses (with their LBDs) into the learnt
    database at decision level 0 and propagate any resulting units; used
    to bank a portfolio's shared clauses in the master so later
    incremental queries start ahead.  Clauses mentioning eliminated
    variables are skipped defensively. *)

val to_dimacs : t -> string
(** The problem clauses (not learnt ones) in DIMACS format, for
    cross-checking instances with external SAT solvers.  Level-0 trail
    literals are exported as unit clauses (units are absorbed into the
    trail when added, so they never appear in the clause database) and a
    derived empty clause is exported explicitly: the result is always
    equisatisfiable with the solver state. *)
