(** A CDCL SAT solver.

    Features: two-watched-literal propagation with dedicated binary-clause
    watch lists (a binary watcher is a single blocker literal, so binary
    propagation never touches clause memory), VSIDS decision heuristic with
    phase saving, first-UIP conflict analysis with iterative clause
    minimization, Luby restarts, learnt-clause database reduction, and
    solving under assumptions.  Built for the bit-blasted QF_BV queries
    issued by {!Sqed_smt} (CEGIS and BMC workloads). *)

type t

type lit = int
(** Literals are [2 * var] (positive) or [2 * var + 1] (negated). *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val num_vars : t -> int
val num_clauses : t -> int

val pos : int -> lit
(** Positive literal of a variable. *)

val neg_of_var : int -> lit
(** Negative literal of a variable. *)

val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool

val add_clause : t -> lit list -> unit
(** Add a clause.  Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable. *)

val add_clause_a : t -> lit array -> unit

(** {2 Preprocessing}

    A SatELite-style simplifier ({!Simplify}: bounded variable
    elimination, subsumption, self-subsuming resolution, failed-literal
    probing) can run between [solve] calls.  It is off by default on a
    raw solver; {!Sqed_smt.Solver} turns it on.  Eliminated variables are
    transparent to the caller: models are extended over them, and adding
    a clause (or assuming a literal) that mentions one restores its
    defining clauses first, so the incremental API keeps its meaning. *)

val set_simplify : t -> bool -> unit
(** Enable/disable automatic simplification.  When enabled, [solve] runs
    a pass on solvers that are being re-solved incrementally, once enough
    new problem clauses have arrived since the last pass (the database
    must also have grown geometrically, so long runs pay few passes).
    The very first [solve] of a fresh instance never simplifies — one-shot
    queries are encoding-bound and a pass would cost more than it saves;
    use {!simplify_now} to force one. *)

val simplify_now : t -> unit
(** Run one simplification pass immediately (no-op unless the solver is
    at decision level 0 and still satisfiable-so-far). *)

val freeze : t -> int -> unit
(** Exempt a variable from elimination, restoring it first if a previous
    pass eliminated it.  Callers freeze variables whose clauses must
    survive verbatim — e.g. the bit-blaster freezes every literal it
    caches, because future blasts emit new clauses over those literals.
    Assumption variables are frozen automatically by [solve]. *)

val is_eliminated : t -> int -> bool
(** Has the variable been eliminated (and not restored)?  Mostly for
    tests and debugging. *)

type result = Sat | Unsat | Unknown

val solve :
  ?assumptions:lit list -> ?max_conflicts:int -> ?deadline:float -> t -> result
(** Solve under the given assumptions.  The solver is reusable: further
    clauses may be added and [solve] called again (incremental use) —
    including after an interrupted ([Unknown]) search, which backtracks
    to the root state before returning.  [max_conflicts] bounds the
    search effort and [deadline] (an absolute [Unix.gettimeofday]
    instant, polled every 1024 conflicts and at restart and learnt-DB
    reduction boundaries) bounds wall time; when either is exceeded the
    answer is [Unknown].  Per-call limits are merged with the installed
    {!set_budget} budget and the ambient per-task
    {!Sqed_resil.Budget.current} budget. *)

(** {1 Resource budgets}

    See {!Sqed_resil.Budget}.  An installed budget governs every
    subsequent [solve] (deadline and conflict cap, charged as searches
    consume conflicts) and is polled by the encoding layers through
    {!check_budget} so bit-blasting and preprocessing are bounded too,
    not just the CDCL loop. *)

val set_budget : t -> Sqed_resil.Budget.t -> unit
(** Install a budget ({!Sqed_resil.Budget.unlimited} to clear). *)

val budget : t -> Sqed_resil.Budget.t

val check_budget : t -> unit
(** Cooperative cancellation point for work feeding this solver: raises
    {!Sqed_resil.Budget.Exhausted} when the installed or ambient
    per-task budget is spent. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer.  Unconstrained variables
    read [false].  Raises [Failure] if the last call did not return [Sat]. *)

val lit_value : t -> lit -> bool

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
}

val stats : t -> stats

val to_dimacs : t -> string
(** The problem clauses (not learnt ones) in DIMACS format, for
    cross-checking instances with external SAT solvers.  Level-0 trail
    literals are exported as unit clauses (units are absorbed into the
    trail when added, so they never appear in the clause database) and a
    derived empty clause is exported explicitly: the result is always
    equisatisfiable with the solver state. *)
