(** Paper Fig. 3: HPF-CEGIS vs iterative CEGIS synthesis times.

    Shared by the bench harness and the [sepe fig3] subcommand. *)

val run :
  ?fast:bool ->
  ?jobs:int ->
  ?witness:bool ->
  ?checkpoint:string ->
  ?cases:string list ->
  ?seeds:int list ->
  ?k:int ->
  ?time_budget:float ->
  unit ->
  Sqed_resil.Verdict.summary
(** [run ~fast ~jobs ~witness ()] prints the Fig. 3 table and returns
    the campaign's verdict summary (all-ok on a clean run).  [jobs <= 0]
    means [Pool.default_jobs ()].  [witness] appends one tiny BMC
    verification (SEPE-SQED on the ADD mutation) so traces of this
    command also exercise the BMC layer.

    The per-cell fan-out is supervised: a cell whose task crashes or
    exhausts its budget prints a [FAILED]/[UNKNOWN] line after the table
    (its row shows ["-"] for the missing mean) instead of aborting the
    run.  [?checkpoint FILE] journals each completed cell to [FILE]
    ({!Sqed_resil.Journal}); a rerun with the same file resumes, skipping
    journaled cells and reusing their stored numbers.  [?cases], [?seeds],
    [?k] and [?time_budget] override the fast/full defaults (used by the
    resilience smoke test to shrink the campaign). *)
