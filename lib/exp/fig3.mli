(** Paper Fig. 3: HPF-CEGIS vs iterative CEGIS synthesis times.

    Shared by the bench harness and the [sepe fig3] subcommand. *)

val run : ?fast:bool -> ?jobs:int -> ?witness:bool -> unit -> unit
(** [run ~fast ~jobs ~witness ()] prints the Fig. 3 table.  [jobs <= 0]
    means [Pool.default_jobs ()].  [witness] appends one tiny BMC
    verification (SEPE-SQED on the ADD mutation) so traces of this
    command also exercise the BMC layer. *)
