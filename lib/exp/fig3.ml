(* The flagship experiment (paper Fig. 3): time to synthesize equivalent
   programs per original instruction, HPF-CEGIS vs iterative CEGIS.

   Shared between the bench harness and the `sepe fig3` subcommand so the
   workload is identical wherever it runs.  The optional witness phase
   appends one tiny BMC verification so a `sepe fig3 --trace` trace also
   contains bmc.depth spans; the bench harness keeps it off to preserve
   the historical fig3 workload. *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module V = Sepe_sqed.Verifier
module Synth = Sqed_synth
module Pool = Sqed_par.Pool

let line = String.make 72 '-'

let section title = Printf.printf "\n%s\n%s\n%s\n%!" line title line

let run ?(fast = false) ?(jobs = 0) ?(witness = false) () =
  let jobs = if jobs > 0 then jobs else Pool.default_jobs () in
  section
    "Fig. 3 - time to synthesize equivalent programs per original \
     instruction\n(HPF-CEGIS vs iterative CEGIS; the classical baseline is \
     E4)";
  let cases =
    if fast then [ "ADD"; "SUB"; "XOR"; "OR" ]
    else List.map (fun s -> s.Synth.Component.g_name) Synth.Library_.specs
  in
  let k = if fast then 2 else 8 in
  let seeds = if fast then [ 1 ] else [ 1; 2; 3 ] in
  let budget = if fast then 60.0 else 300.0 in
  let mk_options seed =
    {
      Synth.Engine.default_options with
      Synth.Engine.k;
      n_max = 3;
      seed;
      time_budget = Some budget;
      config = { Synth.Cegis.default_config with Synth.Cegis.xlen = 8 };
    }
  in
  Printf.printf
    "library: 30 components; k=%d programs of >=3 components; multisets of \
     size 3; xlen=8; budget %.0fs/run; mean over %d seeds\n\n"
    k budget (List.length seeds);
  Printf.printf "%-8s %12s %12s %10s %14s\n" "case" "HPF (s)" "iter (s)"
    "HPF/iter" "HPF multisets";
  (* One pool task per (case, engine, seed) cell.  Cells are seeded and
     independent, so the numbers are identical for any jobs value; rows
     are aggregated and printed in case order afterwards. *)
  let tasks =
    List.concat_map
      (fun case ->
        List.concat_map
          (fun seed -> [ (case, `Hpf, seed); (case, `Iter, seed) ])
          seeds)
      cases
  in
  let run_cell (case, engine, seed) =
    let spec = Synth.Library_.spec case in
    let options = mk_options seed in
    match engine with
    | `Hpf ->
        let r =
          Synth.Hpf.synthesize ~options ~spec ~library:Synth.Library_.default
            ()
        in
        ( case,
          engine,
          seed,
          r.Synth.Engine.elapsed,
          r.Synth.Engine.stats.Synth.Cegis.multisets_tried,
          r.Synth.Engine.multisets_total )
    | `Iter ->
        let r =
          Synth.Iterative.synthesize ~options ~spec
            ~library:Synth.Library_.default
        in
        (case, engine, seed, r.Synth.Engine.elapsed, 0, 0)
  in
  let cells = Pool.with_pool ~jobs (fun p -> Pool.map p run_cell tasks) in
  let rows = ref [] in
  List.iter
    (fun case ->
      let mean engine =
        let ts =
          List.filter_map
            (fun (c, e, _, t, _, _) ->
              if c = case && e = engine then Some t else None)
            cells
        in
        List.fold_left ( +. ) 0.0 ts /. Float.of_int (List.length ts)
      in
      (* Mirror the sequential report: the multiset counters of the last
         seed's HPF run. *)
      let tried, total_ms =
        let last_seed = List.nth seeds (List.length seeds - 1) in
        match
          List.find_opt
            (fun (c, e, s, _, _, _) -> c = case && e = `Hpf && s = last_seed)
            cells
        with
        | Some (_, _, _, _, tried, total) -> (tried, total)
        | None -> (0, 0)
      in
      let th = mean `Hpf and ti = mean `Iter in
      rows := (case, th, ti) :: !rows;
      Printf.printf "%-8s %12.2f %12.2f %10.2f %9d/%d\n%!" case th ti
        (th /. ti) tried total_ms)
    cases;
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 !rows in
  let th = total (fun (_, a, _) -> a) and ti = total (fun (_, _, b) -> b) in
  Printf.printf
    "\noverall: HPF %.1fs vs iterative %.1fs -> %.0f%% time reduction \
     (paper: ~50%% average)\n"
    th ti
    (100.0 *. (1.0 -. (th /. ti)));
  if witness then begin
    Printf.printf
      "\nwitness BMC: SEPE-SQED detecting the ADD mutation on the tiny core\n%!";
    let r =
      V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10 ~time_budget:120.0
        Config.tiny
    in
    Printf.printf "witness: %s\n%!" (V.outcome_to_string r)
  end
