(* The flagship experiment (paper Fig. 3): time to synthesize equivalent
   programs per original instruction, HPF-CEGIS vs iterative CEGIS.

   Shared between the bench harness and the `sepe fig3` subcommand so the
   workload is identical wherever it runs.  The optional witness phase
   appends one tiny BMC verification so a `sepe fig3 --trace` trace also
   contains bmc.depth spans; the bench harness keeps it off to preserve
   the historical fig3 workload.

   The fan-out is supervised: each (case, engine, seed) cell reports a
   verdict, a crashing cell degrades to a FAILED row instead of killing
   the campaign, and `?checkpoint` journals completed cells so an
   interrupted run can resume skipping them. *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module V = Sepe_sqed.Verifier
module Synth = Sqed_synth
module Pool = Sqed_par.Pool
module Json = Sqed_obs.Json
module Metrics = Sqed_obs.Metrics
module Log = Sqed_obs.Log
module Progress = Sqed_obs.Progress
module Report = Sqed_obs.Report
module Journal = Sqed_resil.Journal
module Verdict = Sqed_resil.Verdict

let line = String.make 72 '-'

let section title = Printf.printf "\n%s\n%s\n%s\n%!" line title line

let engine_name = function `Hpf -> "hpf" | `Iter -> "iter"

let cell_key (case, engine, seed) =
  Printf.sprintf "fig3/%s/%s/%d" case (engine_name engine) seed

let cell_to_json (_, _, _, elapsed, tried, total) =
  Json.Obj
    [
      ("elapsed", Json.Float elapsed);
      ("tried", Json.Int tried);
      ("total", Json.Int total);
    ]

let cell_of_json (case, engine, seed) j =
  match
    ( Option.bind (Json.member "elapsed" j) Json.to_float_opt,
      Option.bind (Json.member "tried" j) Json.to_int_opt,
      Option.bind (Json.member "total" j) Json.to_int_opt )
  with
  | Some elapsed, Some tried, Some total ->
      Some (case, engine, seed, elapsed, tried, total)
  | _ -> None

let run ?(fast = false) ?(jobs = 0) ?(witness = false) ?checkpoint ?cases
    ?seeds ?k ?time_budget () =
  let jobs = if jobs > 0 then jobs else Pool.default_jobs () in
  section
    "Fig. 3 - time to synthesize equivalent programs per original \
     instruction\n(HPF-CEGIS vs iterative CEGIS; the classical baseline is \
     E4)";
  let cases =
    match cases with
    | Some cs -> cs
    | None ->
        if fast then [ "ADD"; "SUB"; "XOR"; "OR" ]
        else List.map (fun s -> s.Synth.Component.g_name) Synth.Library_.specs
  in
  let k = match k with Some k -> k | None -> if fast then 2 else 8 in
  let seeds =
    match seeds with Some s -> s | None -> if fast then [ 1 ] else [ 1; 2; 3 ]
  in
  let budget =
    match time_budget with
    | Some b -> b
    | None -> if fast then 60.0 else 300.0
  in
  let mk_options seed =
    {
      Synth.Engine.default_options with
      Synth.Engine.k;
      n_max = 3;
      seed;
      time_budget = Some budget;
      config = { Synth.Cegis.default_config with Synth.Cegis.xlen = 8 };
    }
  in
  Printf.printf
    "library: 30 components; k=%d programs of >=3 components; multisets of \
     size 3; xlen=8; budget %.0fs/run; mean over %d seeds\n\n"
    k budget (List.length seeds);
  (* One pool task per (case, engine, seed) cell.  Cells are seeded and
     independent, so the numbers are identical for any jobs value; rows
     are aggregated and printed in case order afterwards. *)
  let tasks =
    List.concat_map
      (fun case ->
        List.concat_map
          (fun seed -> [ (case, `Hpf, seed); (case, `Iter, seed) ])
          seeds)
      cases
  in
  (* Checkpoint/resume: journaled cells are skipped, their stored numbers
     enter the table as if just computed. *)
  let journal = Option.map Journal.open_ checkpoint in
  let resumed, to_run =
    match journal with
    | None -> ([], tasks)
    | Some j ->
        List.partition_map
          (fun task ->
            match Option.bind (Journal.find j (cell_key task)) (cell_of_json task) with
            | Some cell -> Either.Left cell
            | None -> Either.Right task)
          tasks
  in
  if resumed <> [] then
    Printf.printf "checkpoint: resuming, %d of %d cells already journaled\n%!"
      (List.length resumed) (List.length tasks);
  Log.info "fig3.start"
    [
      ("cases", Log.I (List.length cases));
      ("cells", Log.I (List.length tasks));
      ("resumed", Log.I (List.length resumed));
      ("jobs", Log.I jobs);
      ("budget_s", Log.F budget);
    ];
  List.iter
    (fun cell ->
      let case, engine, seed, _, _, _ = cell in
      Report.note_case
        {
          Report.rc_key = cell_key (case, engine, seed);
          rc_status = Report.Skipped;
          rc_detail = "resumed from checkpoint";
          rc_dur = 0.0;
        })
    resumed;
  let run_cell ((case, engine, seed) as task) =
    let spec = Synth.Library_.spec case in
    let options = mk_options seed in
    let cell =
      match engine with
      | `Hpf ->
          let r =
            Synth.Hpf.synthesize ~options ~spec ~library:Synth.Library_.default
              ()
          in
          ( case,
            engine,
            seed,
            r.Synth.Engine.elapsed,
            r.Synth.Engine.stats.Synth.Cegis.multisets_tried,
            r.Synth.Engine.multisets_total )
      | `Iter ->
          let r =
            Synth.Iterative.synthesize ~options ~spec
              ~library:Synth.Library_.default
          in
          (case, engine, seed, r.Synth.Engine.elapsed, 0, 0)
    in
    (* Journal immediately (workers record concurrently; the journal is
       mutex-protected) so a crash mid-campaign loses at most in-flight
       cells.  A failed append — injected or real — degrades to an
       unjournaled cell: the result still enters this run's table, only
       a future resume will recompute it. *)
    (match journal with
    | Some j -> (
        match Journal.try_record j (cell_key task) (cell_to_json cell) with
        | Ok () -> ()
        | Error msg ->
            Printf.printf "checkpoint: write failed for %s (%s); continuing\n%!"
              (cell_key task) msg)
    | None -> ());
    cell
  in
  let outcomes =
    Progress.with_campaign ~task_budget:budget ~jobs
      ~total:(List.length to_run) "fig3" (fun () ->
        Pool.with_pool ~jobs (fun p -> Pool.map_result p run_cell to_run))
  in
  let verdicts =
    List.map2
      (fun task outcome ->
        match outcome with
        | Ok cell -> (task, Verdict.Ok cell)
        | Error (e : Pool.task_error) ->
            let msg =
              Printf.sprintf "%s (attempts: %d)" e.Pool.error e.Pool.attempts
            in
            if e.Pool.exhausted then (task, Verdict.Unknown msg)
            else (task, Verdict.Failed msg))
      to_run outcomes
  in
  List.iter
    (fun (task, v) ->
      let key = cell_key task in
      match v with
      | Verdict.Ok (_, _, _, elapsed, _, _) ->
          Report.note_case
            {
              Report.rc_key = key;
              rc_status = Report.Ok;
              rc_detail = "synthesized";
              rc_dur = elapsed;
            }
      | Verdict.Unknown msg ->
          Report.note_case
            {
              Report.rc_key = key;
              rc_status = Report.Unknown;
              rc_detail = msg;
              rc_dur = 0.0;
            }
      | Verdict.Failed msg ->
          Report.note_case
            {
              Report.rc_key = key;
              rc_status = Report.Failed;
              rc_detail = msg;
              rc_dur = 0.0;
            })
    verdicts;
  let cells =
    resumed
    @ List.filter_map
        (fun (_, v) -> match v with Verdict.Ok c -> Some c | _ -> None)
        verdicts
  in
  Printf.printf "%-8s %12s %12s %10s %14s\n" "case" "HPF (s)" "iter (s)"
    "HPF/iter" "HPF multisets";
  let rows = ref [] in
  List.iter
    (fun case ->
      let times engine =
        List.filter_map
          (fun (c, e, _, t, _, _) ->
            if c = case && e = engine then Some t else None)
          cells
      in
      let mean = function
        | [] -> Float.nan
        | ts -> List.fold_left ( +. ) 0.0 ts /. Float.of_int (List.length ts)
      in
      (* Mirror the sequential report: the multiset counters of the last
         seed's HPF run. *)
      let tried, total_ms =
        let last_seed = List.nth seeds (List.length seeds - 1) in
        match
          List.find_opt
            (fun (c, e, s, _, _, _) -> c = case && e = `Hpf && s = last_seed)
            cells
        with
        | Some (_, _, _, _, tried, total) -> (tried, total)
        | None -> (0, 0)
      in
      let th = mean (times `Hpf) and ti = mean (times `Iter) in
      let fmt t = if Float.is_nan t then "-" else Printf.sprintf "%.2f" t in
      rows := (case, th, ti) :: !rows;
      Printf.printf "%-8s %12s %12s %10s %9d/%d\n%!" case (fmt th) (fmt ti)
        (fmt (th /. ti))
        tried total_ms)
    cases;
  (* Degraded cells, one line each, after the table. *)
  List.iter
    (fun (task, v) ->
      match v with
      | Verdict.Ok _ -> ()
      | Verdict.Unknown msg ->
          Printf.printf "UNKNOWN %s: %s\n%!" (cell_key task) msg
      | Verdict.Failed msg ->
          Printf.printf "FAILED  %s: %s\n%!" (cell_key task) msg)
    verdicts;
  let complete = List.filter (fun (_, t, i) -> not (Float.is_nan (t +. i))) !rows in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 complete in
  let th = total (fun (_, a, _) -> a) and ti = total (fun (_, _, b) -> b) in
  (* Publish the headline totals as gauges so ledger'd runs archive the
     paper's Fig-3 claim (the run ledger flattens gauges for cross-run
     comparison) from either driver, not just the bench harness. *)
  Metrics.set (Metrics.gauge "fig3.hpf_total_ms") (int_of_float (th *. 1e3));
  Metrics.set (Metrics.gauge "fig3.iter_total_ms") (int_of_float (ti *. 1e3));
  if ti > 0.0 then
    Printf.printf
      "\noverall: HPF %.1fs vs iterative %.1fs -> %.0f%% time reduction \
       (paper: ~50%% average)\n"
      th ti
      (100.0 *. (1.0 -. (th /. ti)));
  if witness then begin
    Printf.printf
      "\nwitness BMC: SEPE-SQED detecting the ADD mutation on the tiny core\n%!";
    let r =
      V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10 ~time_budget:120.0
        Config.tiny
    in
    Printf.printf "witness: %s\n%!" (V.outcome_to_string r)
  end;
  Option.iter Journal.close journal;
  let summary =
    Verdict.count ~skipped:(List.length resumed) (List.map snd verdicts)
  in
  if Verdict.degraded summary || summary.Verdict.skipped > 0 then
    Printf.printf "%s\n%!" (Verdict.summary_line summary);
  Log.info "fig3.done"
    [
      ("ok", Log.I summary.Verdict.ok);
      ("unknown", Log.I summary.Verdict.unknown);
      ("failed", Log.I summary.Verdict.failed);
      ("skipped", Log.I summary.Verdict.skipped);
    ];
  summary
