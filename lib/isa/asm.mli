(** A small two-way assembler for the supported subset.

    Syntax is the usual one: ["ADD x1, x2, x3"], ["ADDI x4, x5, -12"],
    ["LW x1, 4(x2)"], ["SW x3, 0(x0)"], ["LUI x1, 0x1f"].  Mnemonics are
    case-insensitive; [#] starts a comment. *)

val parse_insn : string -> (Insn.t, string) result
val parse_program : string -> (Insn.t list, string) result
(** One instruction per line; blank lines and comments are skipped. *)

val print_program : Insn.t list -> string
