let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let split_operands s =
  String.split_on_char ',' s |> List.map strip |> List.filter (fun x -> x <> "")

let parse_reg s =
  let s = strip s in
  if String.length s >= 2 && (s.[0] = 'x' || s.[0] = 'X') then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r < 32 -> Ok r
    | _ -> Error (Printf.sprintf "bad register %S" s)
  else Error (Printf.sprintf "bad register %S" s)

let parse_int s =
  match int_of_string_opt (strip s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad immediate %S" s)

(* "imm(xN)" for loads and stores. *)
let parse_mem_operand s =
  let s = strip s in
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      let imm_str = String.sub s 0 i in
      let reg_str = String.sub s (i + 1) (String.length s - i - 2) in
      Result.bind (parse_int imm_str) (fun imm ->
          Result.map (fun r -> (imm, r)) (parse_reg reg_str))
  | _ -> Error (Printf.sprintf "bad memory operand %S" s)

let rop_of_string s =
  List.find_opt (fun op -> Insn.rop_name op = s) Insn.all_rops

let iop_of_string s =
  List.find_opt (fun op -> Insn.iop_name op = s) Insn.all_iops

let ( let* ) = Result.bind

let parse_insn line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  match String.index_opt line ' ' with
  | None -> Error (Printf.sprintf "cannot parse %S" line)
  | Some i ->
      let mnemonic = String.uppercase_ascii (String.sub line 0 i) in
      let rest = String.sub line i (String.length line - i) in
      let ops = split_operands rest in
      let insn =
        match (rop_of_string mnemonic, iop_of_string mnemonic, mnemonic, ops) with
        | Some op, _, _, [ a; b; c ] ->
            let* rd = parse_reg a in
            let* rs1 = parse_reg b in
            let* rs2 = parse_reg c in
            Ok (Insn.R (op, rd, rs1, rs2))
        | _, Some op, _, [ a; b; c ] ->
            let* rd = parse_reg a in
            let* rs1 = parse_reg b in
            let* imm = parse_int c in
            Ok (Insn.I (op, rd, rs1, imm))
        | _, _, "LUI", [ a; b ] ->
            let* rd = parse_reg a in
            let* imm = parse_int b in
            Ok (Insn.Lui (rd, imm))
        | _, _, "LW", [ a; b ] ->
            let* rd = parse_reg a in
            let* imm, rs1 = parse_mem_operand b in
            Ok (Insn.Lw (rd, rs1, imm))
        | _, _, "SW", [ a; b ] ->
            let* rs2 = parse_reg a in
            let* imm, rs1 = parse_mem_operand b in
            Ok (Insn.Sw (rs2, rs1, imm))
        | _ -> Error (Printf.sprintf "cannot parse %S" line)
      in
      let* insn = insn in
      if Insn.valid insn then Ok insn
      else Error (Printf.sprintf "operand out of range in %S" line)

let parse_program text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let body =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        if strip body = "" then go acc (lineno + 1) rest
        else
          (match parse_insn line with
          | Ok insn -> go (insn :: acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let print_program insns =
  String.concat "\n" (List.map Insn.to_string insns)
