(** Symbolic single-instruction semantics (the formal semantic models
    φ_instr of Section 4.1), as QF_BV terms parameterised by XLEN.

    Immediates are 12-bit terms (20-bit for LUI) so that the synthesizer
    can treat them as free {e internal attributes}; they are sign-extended
    (or truncated, when XLEN < 12) exactly like the concrete interpreter
    does. *)

module Term = Sqed_smt.Term

val ext_imm : xlen:int -> Term.t -> Term.t
(** Sign-extend / truncate a 12-bit immediate term to XLEN. *)

val shamt_mask : xlen:int -> Term.t -> Term.t
(** Keep only the low log2(XLEN) bits of a shift amount, zero-extended to
    XLEN. *)

val r_result : xlen:int -> Insn.rop -> Term.t -> Term.t -> Term.t
(** [r_result ~xlen op rs1 rs2]: the value written to rd. *)

val i_result : xlen:int -> Insn.iop -> Term.t -> imm:Term.t -> Term.t
(** [i_result ~xlen op rs1 ~imm] with [imm] of width 12. *)

val lui_result : xlen:int -> Term.t -> Term.t
(** [lui_result ~xlen imm20] with [imm20] of width 20. *)

val result :
  xlen:int -> Insn.t -> rs1:Term.t -> rs2:Term.t -> Term.t option
(** Register result of a concrete instruction applied to symbolic source
    values ([None] for loads and stores, whose result involves memory). *)

val effective_address : xlen:int -> Insn.t -> rs1:Term.t -> Term.t option
(** Symbolic effective address of a load/store. *)
