(** Binary encoding and decoding of the supported subset, using the
    standard RV32 instruction formats (R/I/U/S). *)

module Bv = Sqed_bv.Bv

val encode : Insn.t -> Bv.t
(** 32-bit encoding.  Raises [Invalid_argument] on an invalid instruction
    (see {!Insn.valid}). *)

val decode : Bv.t -> Insn.t option
(** Decode a 32-bit word; [None] if it is not a supported instruction. *)

val opcode_field : Bv.t -> int
val funct3_field : Bv.t -> int
val funct7_field : Bv.t -> int
val rd_field : Bv.t -> int
val rs1_field : Bv.t -> int
val rs2_field : Bv.t -> int
val imm_i_field : Bv.t -> int
(** Sign-extended I-type immediate as an OCaml int. *)

val imm_s_field : Bv.t -> int
