module Bv = Sqed_bv.Bv

(* Major opcodes of the supported formats. *)
let op_rtype = 0b0110011
let op_itype = 0b0010011
let op_lui = 0b0110111
let op_load = 0b0000011
let op_store = 0b0100011

let rop_functs = function
  | Insn.ADD -> (0b000, 0b0000000)
  | Insn.SUB -> (0b000, 0b0100000)
  | Insn.SLL -> (0b001, 0b0000000)
  | Insn.SLT -> (0b010, 0b0000000)
  | Insn.SLTU -> (0b011, 0b0000000)
  | Insn.XOR -> (0b100, 0b0000000)
  | Insn.SRL -> (0b101, 0b0000000)
  | Insn.SRA -> (0b101, 0b0100000)
  | Insn.OR -> (0b110, 0b0000000)
  | Insn.AND -> (0b111, 0b0000000)
  | Insn.MUL -> (0b000, 0b0000001)
  | Insn.MULH -> (0b001, 0b0000001)
  | Insn.MULHU -> (0b011, 0b0000001)
  | Insn.DIV -> (0b100, 0b0000001)
  | Insn.DIVU -> (0b101, 0b0000001)
  | Insn.REM -> (0b110, 0b0000001)
  | Insn.REMU -> (0b111, 0b0000001)

let iop_funct3 = function
  | Insn.ADDI -> 0b000
  | Insn.SLTI -> 0b010
  | Insn.SLTIU -> 0b011
  | Insn.XORI -> 0b100
  | Insn.ORI -> 0b110
  | Insn.ANDI -> 0b111
  | Insn.SLLI -> 0b001
  | Insn.SRLI -> 0b101
  | Insn.SRAI -> 0b101

let word fields =
  (* fields: (value, width) from most-significant to least-significant. *)
  let v, w =
    List.fold_left
      (fun (acc, accw) (v, w) -> ((acc lsl w) lor (v land ((1 lsl w) - 1)), accw + w))
      (0, 0) fields
  in
  assert (w = 32);
  Bv.of_int ~width:32 v

let encode insn =
  if not (Insn.valid insn) then
    invalid_arg ("Encode.encode: invalid instruction " ^ Insn.to_string insn);
  match insn with
  | Insn.R (op, rd, rs1, rs2) ->
      let f3, f7 = rop_functs op in
      word [ (f7, 7); (rs2, 5); (rs1, 5); (f3, 3); (rd, 5); (op_rtype, 7) ]
  | Insn.I (op, rd, rs1, imm) ->
      let f3 = iop_funct3 op in
      let imm12 =
        match op with
        | Insn.SLLI | Insn.SRLI -> imm
        | Insn.SRAI -> 0b0100000 lsl 5 lor imm
        | _ -> imm
      in
      word [ (imm12, 12); (rs1, 5); (f3, 3); (rd, 5); (op_itype, 7) ]
  | Insn.Lui (rd, imm) -> word [ (imm, 20); (rd, 5); (op_lui, 7) ]
  | Insn.Lw (rd, rs1, imm) ->
      word [ (imm, 12); (rs1, 5); (0b010, 3); (rd, 5); (op_load, 7) ]
  | Insn.Sw (rs2, rs1, imm) ->
      word
        [
          ((imm asr 5) land 0x7F, 7);
          (rs2, 5);
          (rs1, 5);
          (0b010, 3);
          (imm land 0x1F, 5);
          (op_store, 7);
        ]

let field bv ~hi ~lo = Bv.to_int (Bv.extract ~hi ~lo bv)

let opcode_field bv = field bv ~hi:6 ~lo:0
let funct3_field bv = field bv ~hi:14 ~lo:12
let funct7_field bv = field bv ~hi:31 ~lo:25
let rd_field bv = field bv ~hi:11 ~lo:7
let rs1_field bv = field bv ~hi:19 ~lo:15
let rs2_field bv = field bv ~hi:24 ~lo:20

let sext12 v = if v land 0x800 <> 0 then v - 4096 else v

let imm_i_field bv = sext12 (field bv ~hi:31 ~lo:20)

let imm_s_field bv =
  sext12 ((field bv ~hi:31 ~lo:25 lsl 5) lor field bv ~hi:11 ~lo:7)

let decode bv =
  if Bv.width bv <> 32 then invalid_arg "Encode.decode: width <> 32";
  let opcode = opcode_field bv in
  let f3 = funct3_field bv in
  let f7 = funct7_field bv in
  let rd = rd_field bv and rs1 = rs1_field bv and rs2 = rs2_field bv in
  if opcode = op_rtype then
    let op =
      match (f3, f7) with
      | 0b000, 0b0000000 -> Some Insn.ADD
      | 0b000, 0b0100000 -> Some Insn.SUB
      | 0b001, 0b0000000 -> Some Insn.SLL
      | 0b010, 0b0000000 -> Some Insn.SLT
      | 0b011, 0b0000000 -> Some Insn.SLTU
      | 0b100, 0b0000000 -> Some Insn.XOR
      | 0b101, 0b0000000 -> Some Insn.SRL
      | 0b101, 0b0100000 -> Some Insn.SRA
      | 0b110, 0b0000000 -> Some Insn.OR
      | 0b111, 0b0000000 -> Some Insn.AND
      | 0b000, 0b0000001 -> Some Insn.MUL
      | 0b001, 0b0000001 -> Some Insn.MULH
      | 0b011, 0b0000001 -> Some Insn.MULHU
      | 0b100, 0b0000001 -> Some Insn.DIV
      | 0b101, 0b0000001 -> Some Insn.DIVU
      | 0b110, 0b0000001 -> Some Insn.REM
      | 0b111, 0b0000001 -> Some Insn.REMU
      | _ -> None
    in
    Option.map (fun op -> Insn.R (op, rd, rs1, rs2)) op
  else if opcode = op_itype then
    match f3 with
    | 0b000 -> Some (Insn.I (Insn.ADDI, rd, rs1, imm_i_field bv))
    | 0b010 -> Some (Insn.I (Insn.SLTI, rd, rs1, imm_i_field bv))
    | 0b011 -> Some (Insn.I (Insn.SLTIU, rd, rs1, imm_i_field bv))
    | 0b100 -> Some (Insn.I (Insn.XORI, rd, rs1, imm_i_field bv))
    | 0b110 -> Some (Insn.I (Insn.ORI, rd, rs1, imm_i_field bv))
    | 0b111 -> Some (Insn.I (Insn.ANDI, rd, rs1, imm_i_field bv))
    | 0b001 -> if f7 = 0 then Some (Insn.I (Insn.SLLI, rd, rs1, rs2)) else None
    | 0b101 ->
        if f7 = 0 then Some (Insn.I (Insn.SRLI, rd, rs1, rs2))
        else if f7 = 0b0100000 then Some (Insn.I (Insn.SRAI, rd, rs1, rs2))
        else None
    | _ -> None
  else if opcode = op_lui then Some (Insn.Lui (rd, field bv ~hi:31 ~lo:12))
  else if opcode = op_load && f3 = 0b010 then
    Some (Insn.Lw (rd, rs1, imm_i_field bv))
  else if opcode = op_store && f3 = 0b010 then
    Some (Insn.Sw (rs2, rs1, imm_s_field bv))
  else None
