module Bv = Sqed_bv.Bv

type t = { xlen : int; regs : Bv.t array; mem : Bv.t array }

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  go 0

let create ~xlen ~mem_words =
  if log2_exact xlen < 0 then invalid_arg "Exec.create: xlen not a power of two";
  if log2_exact mem_words < 0 then
    invalid_arg "Exec.create: mem_words not a power of two";
  {
    xlen;
    regs = Array.make 32 (Bv.zero xlen);
    mem = Array.make mem_words (Bv.zero xlen);
  }

let copy t = { t with regs = Array.copy t.regs; mem = Array.copy t.mem }

let reg t i = if i = 0 then Bv.zero t.xlen else t.regs.(i)

let set_reg t i v =
  if i <> 0 then begin
    if Bv.width v <> t.xlen then invalid_arg "Exec.set_reg: width";
    t.regs.(i) <- v
  end

let word_index t addr =
  let abits = log2_exact (Array.length t.mem) in
  if abits = 0 then 0 else Bv.to_int (Bv.extract ~hi:(abits - 1) ~lo:0 addr)

let load t addr = t.mem.(word_index t addr)
let store t addr v = t.mem.(word_index t addr) <- v

let imm_bv ~xlen imm = Bv.of_int ~width:xlen imm

let shamt_mask ~xlen v =
  (* RISC-V semantics: only the low log2(xlen) bits of the amount count. *)
  let bits = log2_exact xlen in
  if bits = 0 then Bv.zero xlen else Bv.zext (Bv.extract ~hi:(bits - 1) ~lo:0 v) xlen

let bool_res ~xlen b = if b then Bv.one xlen else Bv.zero xlen

let mul_high ~xlen ~signed_a ~signed_b a b =
  let w2 = 2 * xlen in
  let ea = if signed_a then Bv.sext a w2 else Bv.zext a w2 in
  let eb = if signed_b then Bv.sext b w2 else Bv.zext b w2 in
  Bv.extract ~hi:(w2 - 1) ~lo:xlen (Bv.mul ea eb)

let alu_r ~xlen op a b =
  match op with
  | Insn.ADD -> Bv.add a b
  | Insn.SUB -> Bv.sub a b
  | Insn.SLL -> Bv.shl_bv a (shamt_mask ~xlen b)
  | Insn.SLT -> bool_res ~xlen (Bv.slt a b)
  | Insn.SLTU -> bool_res ~xlen (Bv.ult a b)
  | Insn.XOR -> Bv.logxor a b
  | Insn.SRL -> Bv.lshr_bv a (shamt_mask ~xlen b)
  | Insn.SRA -> Bv.ashr_bv a (shamt_mask ~xlen b)
  | Insn.OR -> Bv.logor a b
  | Insn.AND -> Bv.logand a b
  | Insn.MUL -> Bv.mul a b
  | Insn.MULH -> mul_high ~xlen ~signed_a:true ~signed_b:true a b
  | Insn.MULHU -> mul_high ~xlen ~signed_a:false ~signed_b:false a b
  (* RISC-V M semantics: x/0 = all-ones (signed: -1), x%0 = x; the signed
     overflow case MIN/-1 gives MIN with remainder 0 (Bv.sdiv/srem already
     wrap that way). *)
  | Insn.DIV -> if Bv.is_zero b then Bv.ones xlen else Bv.sdiv a b
  | Insn.DIVU -> Bv.udiv a b
  | Insn.REM -> Bv.srem a b
  | Insn.REMU -> Bv.urem a b

let alu_i ~xlen op a imm =
  let iv = imm_bv ~xlen imm in
  match op with
  | Insn.ADDI -> Bv.add a iv
  | Insn.SLTI -> bool_res ~xlen (Bv.slt a iv)
  | Insn.SLTIU -> bool_res ~xlen (Bv.ult a iv)
  | Insn.XORI -> Bv.logxor a iv
  | Insn.ORI -> Bv.logor a iv
  | Insn.ANDI -> Bv.logand a iv
  | Insn.SLLI -> Bv.shl_bv a (shamt_mask ~xlen iv)
  | Insn.SRLI -> Bv.lshr_bv a (shamt_mask ~xlen iv)
  | Insn.SRAI -> Bv.ashr_bv a (shamt_mask ~xlen iv)

let exec t insn =
  let xlen = t.xlen in
  match insn with
  | Insn.R (op, rd, rs1, rs2) -> set_reg t rd (alu_r ~xlen op (reg t rs1) (reg t rs2))
  | Insn.I (op, rd, rs1, imm) -> set_reg t rd (alu_i ~xlen op (reg t rs1) imm)
  | Insn.Lui (rd, imm) -> set_reg t rd (Bv.of_int ~width:xlen (imm lsl 12))
  | Insn.Lw (rd, rs1, imm) ->
      set_reg t rd (load t (Bv.add (reg t rs1) (imm_bv ~xlen imm)))
  | Insn.Sw (rs2, rs1, imm) ->
      store t (Bv.add (reg t rs1) (imm_bv ~xlen imm)) (reg t rs2)

let run t insns = List.iter (exec t) insns

let equal a b =
  a.xlen = b.xlen
  && Array.for_all2 Bv.equal a.regs b.regs
  && Array.for_all2 Bv.equal a.mem b.mem
