type rop =
  | ADD
  | SUB
  | SLL
  | SLT
  | SLTU
  | XOR
  | SRL
  | SRA
  | OR
  | AND
  | MUL
  | MULH
  | MULHU
  | DIV
  | DIVU
  | REM
  | REMU

type iop = ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI

type t =
  | R of rop * int * int * int
  | I of iop * int * int * int
  | Lui of int * int
  | Lw of int * int * int
  | Sw of int * int * int

let all_rops =
  [
    ADD; SUB; SLL; SLT; SLTU; XOR; SRL; SRA; OR; AND; MUL; MULH; MULHU; DIV;
    DIVU; REM; REMU;
  ]

let rop_is_mul = function
  | MUL | MULH | MULHU -> true
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND | DIV | DIVU
  | REM | REMU ->
      false

let rop_is_div = function
  | DIV | DIVU | REM | REMU -> true
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND | MUL | MULH
  | MULHU ->
      false

let all_iops = [ ADDI; SLTI; SLTIU; XORI; ORI; ANDI; SLLI; SRLI; SRAI ]

let rop_name = function
  | ADD -> "ADD"
  | SUB -> "SUB"
  | SLL -> "SLL"
  | SLT -> "SLT"
  | SLTU -> "SLTU"
  | XOR -> "XOR"
  | SRL -> "SRL"
  | SRA -> "SRA"
  | OR -> "OR"
  | AND -> "AND"
  | MUL -> "MUL"
  | MULH -> "MULH"
  | MULHU -> "MULHU"
  | DIV -> "DIV"
  | DIVU -> "DIVU"
  | REM -> "REM"
  | REMU -> "REMU"

let iop_name = function
  | ADDI -> "ADDI"
  | SLTI -> "SLTI"
  | SLTIU -> "SLTIU"
  | XORI -> "XORI"
  | ORI -> "ORI"
  | ANDI -> "ANDI"
  | SLLI -> "SLLI"
  | SRLI -> "SRLI"
  | SRAI -> "SRAI"

let name = function
  | R (op, _, _, _) -> rop_name op
  | I (op, _, _, _) -> iop_name op
  | Lui _ -> "LUI"
  | Lw _ -> "LW"
  | Sw _ -> "SW"

let rd = function
  | R (_, rd, _, _) | I (_, rd, _, _) | Lui (rd, _) | Lw (rd, _, _) -> Some rd
  | Sw _ -> None

let sources = function
  | R (_, _, rs1, rs2) -> [ rs1; rs2 ]
  | I (_, _, rs1, _) | Lw (_, rs1, _) -> [ rs1 ]
  | Lui _ -> []
  | Sw (rs2, rs1, _) -> [ rs1; rs2 ]

let is_load = function Lw _ -> true | R _ | I _ | Lui _ | Sw _ -> false
let is_store = function Sw _ -> true | R _ | I _ | Lui _ | Lw _ -> false

let is_shift_iop = function
  | SLLI | SRLI | SRAI -> true
  | ADDI | SLTI | SLTIU | XORI | ORI | ANDI -> false

let reg_ok r = r >= 0 && r < 32
let imm12_ok imm = imm >= -2048 && imm <= 2047
let shamt_ok s = s >= 0 && s <= 31

let valid = function
  | R (_, rd, rs1, rs2) -> reg_ok rd && reg_ok rs1 && reg_ok rs2
  | I (op, rd, rs1, imm) ->
      reg_ok rd && reg_ok rs1
      && (if is_shift_iop op then shamt_ok imm else imm12_ok imm)
  | Lui (rd, imm) -> reg_ok rd && imm >= 0 && imm <= 0xFFFFF
  | Lw (rd, rs1, imm) -> reg_ok rd && reg_ok rs1 && imm12_ok imm
  | Sw (rs2, rs1, imm) -> reg_ok rs2 && reg_ok rs1 && imm12_ok imm

let map_regs f = function
  | R (op, rd, rs1, rs2) -> R (op, f rd, f rs1, f rs2)
  | I (op, rd, rs1, imm) -> I (op, f rd, f rs1, imm)
  | Lui (rd, imm) -> Lui (f rd, imm)
  | Lw (rd, rs1, imm) -> Lw (f rd, f rs1, imm)
  | Sw (rs2, rs1, imm) -> Sw (f rs2, f rs1, imm)

let nop = I (ADDI, 0, 0, 0)

let to_string = function
  | R (op, rd, rs1, rs2) ->
      Printf.sprintf "%s x%d, x%d, x%d" (rop_name op) rd rs1 rs2
  | I (op, rd, rs1, imm) ->
      Printf.sprintf "%s x%d, x%d, %d" (iop_name op) rd rs1 imm
  | Lui (rd, imm) -> Printf.sprintf "LUI x%d, 0x%x" rd imm
  | Lw (rd, rs1, imm) -> Printf.sprintf "LW x%d, %d(x%d)" rd imm rs1
  | Sw (rs2, rs1, imm) -> Printf.sprintf "SW x%d, %d(x%d)" rs2 imm rs1

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal = ( = )
let compare = Stdlib.compare

let random rng ~max_reg =
  let reg () = Random.State.int rng max_reg in
  match Random.State.int rng 5 with
  | 0 ->
      let op = List.nth all_rops (Random.State.int rng (List.length all_rops)) in
      R (op, reg (), reg (), reg ())
  | 1 ->
      let op = List.nth all_iops (Random.State.int rng (List.length all_iops)) in
      let imm =
        if is_shift_iop op then Random.State.int rng 32
        else Random.State.int rng 4096 - 2048
      in
      I (op, reg (), reg (), imm)
  | 2 -> Lui (reg (), Random.State.int rng 0x100000)
  | 3 -> Lw (reg (), reg (), Random.State.int rng 4096 - 2048)
  | _ -> Sw (reg (), reg (), Random.State.int rng 4096 - 2048)
