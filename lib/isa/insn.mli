(** The RV32IM subset used throughout the reproduction (the paper: "a
    portion of the RV32IM instruction set").

    Covered: the ten RV32I register-register ALU instructions, the three
    RV32M multiply instructions, the nine I-type ALU instructions, [LUI],
    and word load/store.  Control flow is excluded, as in SQED-style
    verification, where instructions are injected symbolically and the PC
    plays no architectural role. *)

type rop =
  | ADD
  | SUB
  | SLL
  | SLT
  | SLTU
  | XOR
  | SRL
  | SRA
  | OR
  | AND
  | MUL
  | MULH
  | MULHU
  | DIV
  | DIVU
  | REM
  | REMU

type iop = ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI

type t =
  | R of rop * int * int * int  (** [R (op, rd, rs1, rs2)] *)
  | I of iop * int * int * int
      (** [I (op, rd, rs1, imm)]; [imm] is the signed 12-bit immediate in
          [-2048, 2047], or the shift amount in [0, 31] for SLLI/SRLI/SRAI. *)
  | Lui of int * int  (** [Lui (rd, imm20)] with [imm20] in [0, 0xFFFFF]. *)
  | Lw of int * int * int  (** [Lw (rd, rs1, imm)]: rd <- mem[rs1 + imm]. *)
  | Sw of int * int * int  (** [Sw (rs2, rs1, imm)]: mem[rs1 + imm] <- rs2. *)

val all_rops : rop list
val all_iops : iop list

val rop_name : rop -> string
val iop_name : iop -> string

val rop_is_mul : rop -> bool
(** MUL / MULH / MULHU (the multiplier datapath). *)

val rop_is_div : rop -> bool
(** DIV / DIVU / REM / REMU (the divider datapath). *)

val name : t -> string
(** Mnemonic, e.g. ["ADD"]; used for the paper's [Name(...)] comparisons. *)

val rd : t -> int option
(** Destination register, if the instruction writes one ([Sw] does not;
    writes to x0 still report x0). *)

val sources : t -> int list
(** Source registers read by the instruction. *)

val is_load : t -> bool
val is_store : t -> bool

val valid : t -> bool
(** Register indices in [0, 31] and immediate fields within range. *)

val map_regs : (int -> int) -> t -> t
(** Apply a register renaming to all register operands. *)

val nop : t
(** [ADDI x0, x0, 0]. *)

val to_string : t -> string
(** Assembly-ish rendering, e.g. ["ADD x1, x2, x3"], ["LW x1, 4(x0)"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val random : Random.State.t -> max_reg:int -> t
(** A uniformly random valid instruction with register operands below
    [max_reg] (exclusive). *)
