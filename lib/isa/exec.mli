(** Concrete architectural interpreter (golden reference model).

    State is parameterised by XLEN and by the word count of the toy
    word-addressed data memory (effective addresses are taken modulo the
    memory size, matching the pipeline substrate). *)

module Bv = Sqed_bv.Bv

type t = {
  xlen : int;
  regs : Bv.t array;  (** 32 entries; index 0 is hardwired to zero. *)
  mem : Bv.t array;
}

val create : xlen:int -> mem_words:int -> t
(** All-zero initial state. *)

val copy : t -> t
val reg : t -> int -> Bv.t
val set_reg : t -> int -> Bv.t -> unit
(** Writes to x0 are discarded. *)

val load : t -> Bv.t -> Bv.t
(** Word read at an effective address (wrapped into the memory). *)

val store : t -> Bv.t -> Bv.t -> unit

val exec : t -> Insn.t -> unit
(** Execute one instruction in place. *)

val run : t -> Insn.t list -> unit

val equal : t -> t -> bool

val alu_r : xlen:int -> Insn.rop -> Bv.t -> Bv.t -> Bv.t
(** Pure R-type ALU semantics (also used by tests as an oracle). *)

val alu_i : xlen:int -> Insn.iop -> Bv.t -> int -> Bv.t
