module Term = Sqed_smt.Term

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  go 0

let ext_imm ~xlen imm =
  if Term.width imm <> 12 then invalid_arg "Semantics.ext_imm: width <> 12";
  if xlen >= 12 then Term.sext imm xlen
  else Term.extract ~hi:(xlen - 1) ~lo:0 imm

let shamt_mask ~xlen amount =
  let bits = log2_exact xlen in
  if bits < 0 then invalid_arg "Semantics.shamt_mask: xlen not a power of two";
  if bits = 0 then Term.of_int ~width:xlen 0
  else Term.zext (Term.extract ~hi:(bits - 1) ~lo:0 amount) xlen

let bool_res ~xlen c = Term.zext c xlen

let mul_high ~xlen ~signed a b =
  let w2 = 2 * xlen in
  let ext = if signed then Term.sext else Term.zext in
  Term.extract ~hi:(w2 - 1) ~lo:xlen (Term.mul (ext a w2) (ext b w2))

(* Signed division/remainder with RISC-V M conventions, built from the
   unsigned operators via sign handling.  x/0 = -1 and x%0 = x; the
   overflow case MIN/-1 falls out of the wraparound of |MIN|. *)
let abs_t ~xlen a =
  Term.ite (Term.slt a (Term.of_int ~width:xlen 0)) (Term.neg a) a

let div_signed ~xlen a b =
  let qu = Term.udiv (abs_t ~xlen a) (abs_t ~xlen b) in
  let zero = Term.of_int ~width:xlen 0 in
  let sign_differs = Term.xor (Term.slt a zero) (Term.slt b zero) in
  let q = Term.ite sign_differs (Term.neg qu) qu in
  Term.ite (Term.eq b zero) (Term.const (Sqed_bv.Bv.ones xlen)) q

let rem_signed ~xlen a b =
  let ru = Term.urem (abs_t ~xlen a) (abs_t ~xlen b) in
  let zero = Term.of_int ~width:xlen 0 in
  Term.ite (Term.slt a zero) (Term.neg ru) ru

let r_result ~xlen op a b =
  match op with
  | Insn.ADD -> Term.add a b
  | Insn.SUB -> Term.sub a b
  | Insn.SLL -> Term.shl a (shamt_mask ~xlen b)
  | Insn.SLT -> bool_res ~xlen (Term.slt a b)
  | Insn.SLTU -> bool_res ~xlen (Term.ult a b)
  | Insn.XOR -> Term.xor a b
  | Insn.SRL -> Term.lshr a (shamt_mask ~xlen b)
  | Insn.SRA -> Term.ashr a (shamt_mask ~xlen b)
  | Insn.OR -> Term.or_ a b
  | Insn.AND -> Term.and_ a b
  | Insn.MUL -> Term.mul a b
  | Insn.MULH -> mul_high ~xlen ~signed:true a b
  | Insn.MULHU -> mul_high ~xlen ~signed:false a b
  | Insn.DIV -> div_signed ~xlen a b
  | Insn.DIVU -> Term.udiv a b
  | Insn.REM -> rem_signed ~xlen a b
  | Insn.REMU -> Term.urem a b

let i_result ~xlen op a ~imm =
  let iv = ext_imm ~xlen imm in
  match op with
  | Insn.ADDI -> Term.add a iv
  | Insn.SLTI -> bool_res ~xlen (Term.slt a iv)
  | Insn.SLTIU -> bool_res ~xlen (Term.ult a iv)
  | Insn.XORI -> Term.xor a iv
  | Insn.ORI -> Term.or_ a iv
  | Insn.ANDI -> Term.and_ a iv
  | Insn.SLLI -> Term.shl a (shamt_mask ~xlen iv)
  | Insn.SRLI -> Term.lshr a (shamt_mask ~xlen iv)
  | Insn.SRAI -> Term.ashr a (shamt_mask ~xlen iv)

let lui_result ~xlen imm20 =
  if Term.width imm20 <> 20 then invalid_arg "Semantics.lui_result: width <> 20";
  if xlen >= 32 then Term.shl (Term.zext imm20 xlen) (Term.of_int ~width:xlen 12)
  else if xlen > 12 then
    Term.concat (Term.extract ~hi:(xlen - 13) ~lo:0 imm20) (Term.of_int ~width:12 0)
  else
    (* All useful bits are shifted out at such narrow widths. *)
    Term.of_int ~width:xlen 0

let imm_term ~imm = Term.of_int ~width:12 imm

let result ~xlen insn ~rs1 ~rs2 =
  match insn with
  | Insn.R (op, _, _, _) -> Some (r_result ~xlen op rs1 rs2)
  | Insn.I (op, _, _, imm) -> Some (i_result ~xlen op rs1 ~imm:(imm_term ~imm))
  | Insn.Lui (_, imm) ->
      Some (lui_result ~xlen (Term.of_int ~width:20 imm))
  | Insn.Lw _ | Insn.Sw _ -> None

let effective_address ~xlen insn ~rs1 =
  match insn with
  | Insn.Lw (_, _, imm) | Insn.Sw (_, _, imm) ->
      Some (Term.add rs1 (ext_imm ~xlen (imm_term ~imm)))
  | Insn.R _ | Insn.I _ | Insn.Lui _ -> None
