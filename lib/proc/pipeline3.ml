module C = Sqed_rtl.Circuit
module Node = Sqed_rtl.Node

let build ~b ?bug cfg ~instr ~instr_valid =
  Config.validate cfg;
  let xlen = cfg.Config.xlen in
  let rbits = Config.reg_bits cfg in
  let abits = Config.addr_bits cfg in
  let has b' = bug = Some b' in
  let ( &&& ) = C.and_ b and ( ||| ) = C.or_ b in
  let czero w = C.consti b ~width:w 0 in
  let flag name = C.reg_const b ~name ~width:1 0 in
  let field name w = C.reg_const b ~name ~width:w 0 in

  (* ---- pipeline state -------------------------------------------------- *)
  let id_valid = flag "id_valid" in
  let id_rd = field "id_rd" 5 in
  let id_rs1 = field "id_rs1" 5 in
  let id_rs2 = field "id_rs2" 5 in
  let id_imm = field "id_imm" xlen in
  let id_alu_op = field "id_alu_op" 5 in
  let id_is_r = flag "id_is_r" in
  let id_is_i = flag "id_is_i" in
  let id_is_load = flag "id_is_load" in
  let id_is_store = flag "id_is_store" in
  let id_uses_rs1 = flag "id_uses_rs1" in
  let id_uses_rs2 = flag "id_uses_rs2" in
  let id_writes_rd = flag "id_writes_rd" in
  let id_op1 = field "id_op1" xlen in
  let id_op2 = field "id_op2" xlen in

  let wb_valid_r = flag "wb_valid" in
  let wb_rd_r = field "wb_rd" 5 in
  let wb_writes = flag "wb_writes" in
  let wb_data_r = field "wb_data" xlen in

  (* ---- architectural register file ------------------------------------- *)
  let regfile =
    Array.init cfg.Config.nregs (fun i ->
        if i = 0 then czero xlen
        else
          C.reg b
            ~name:(Printf.sprintf "x%d" i)
            ~init:(Node.Symbolic_init (Printf.sprintf "reg%d_init" i))
            ~width:xlen)
  in
  let reg_read idx5 =
    let idx = C.extract b ~hi:(rbits - 1) ~lo:0 idx5 in
    let rec tree lo n bitpos =
      if n = 1 then regfile.(lo)
      else
        let half = n / 2 in
        C.mux b (C.bit b idx bitpos)
          (tree (lo + half) half (bitpos - 1))
          (tree lo half (bitpos - 1))
    in
    tree 0 cfg.Config.nregs (rbits - 1)
  in

  (* ---- decode and register read (the ID stage) -------------------------- *)
  let d = Decode.decode b cfg instr in
  let wb_en = wb_valid_r &&& wb_writes in
  let bypass rs raw =
    if has Bug.Bug_wb_bypass then raw
    else C.mux b (wb_en &&& C.eq b wb_rd_r rs) wb_data_r raw
  in
  C.connect b id_valid (instr_valid &&& d.Decode.legal);
  C.connect b id_rd d.Decode.rd;
  C.connect b id_rs1 d.Decode.rs1;
  C.connect b id_rs2 d.Decode.rs2;
  C.connect b id_imm d.Decode.imm;
  C.connect b id_alu_op d.Decode.alu_op;
  C.connect b id_is_r d.Decode.is_r;
  C.connect b id_is_i d.Decode.is_i;
  C.connect b id_is_load d.Decode.is_load;
  C.connect b id_is_store d.Decode.is_store;
  C.connect b id_uses_rs1 d.Decode.uses_rs1;
  C.connect b id_uses_rs2 d.Decode.uses_rs2;
  C.connect b id_writes_rd d.Decode.writes_rd;
  C.connect b id_op1 (bypass d.Decode.rs1 (reg_read d.Decode.rs1));
  C.connect b id_op2 (bypass d.Decode.rs2 (reg_read d.Decode.rs2));

  (* ---- execute + memory (the EX stage) ----------------------------------- *)
  (* The only in-flight producer whose result is not yet in the regfile is
     the instruction one ahead, now at WB. *)
  let forward rs uses raw =
    let hit =
      let base = wb_en &&& C.eq b wb_rd_r rs &&& uses in
      if has Bug.Bug_fwd_wb then C.gnd b else base
    in
    C.mux b hit wb_data_r raw
  in
  let fwd_rs2_active = wb_en &&& C.eq b wb_rd_r id_rs2 &&& id_uses_rs2 in
  let op1 = forward id_rs1 id_uses_rs1 id_op1 in
  let op2 = forward id_rs2 id_uses_rs2 id_op2 in
  let alu =
    Alu.build ~b ?bug cfg ~op1 ~op2 ~imm:id_imm ~alu_op:id_alu_op
      ~is_r:id_is_r ~is_i:id_is_i ~is_store:id_is_store
      ~store_fwd_active:fwd_rs2_active ()
  in
  let addr = C.extract b ~hi:(abits - 1) ~lo:0 alu.Alu.value in
  let store_en = id_valid &&& id_is_store in
  let dmem =
    C.memory b ~name:"dmem" ~words:cfg.Config.mem_words ~word_width:xlen
      ~init:(Node.Symbolic_init "dmem") ~wr_en:store_en ~wr_addr:addr
      ~wr_data:alu.Alu.store_data
  in
  let load_data = dmem.C.read addr in
  let ex_result = C.mux b id_is_load load_data alu.Alu.value in

  (* ---- write-back ----------------------------------------------------------- *)
  C.connect b wb_valid_r id_valid;
  C.connect b wb_rd_r id_rd;
  C.connect b wb_writes id_writes_rd;
  C.connect b wb_data_r ex_result;
  Array.iteri
    (fun i r ->
      if i > 0 then begin
        let here = wb_en &&& C.eq b wb_rd_r (C.consti b ~width:5 i) in
        C.connect b r (C.mux b here wb_data_r r)
      end)
    regfile;

  let busy = id_valid ||| wb_valid_r in
  {
    Pipeline.stall = C.gnd b;
    wb_valid = wb_en;
    wb_rd = wb_rd_r;
    wb_data = wb_data_r;
    store_valid = store_en;
    store_addr = addr;
    store_data = alu.Alu.store_data;
    busy;
    regs = regfile;
    mem_words = dmem.C.words;
    in_legal = d.Decode.legal;
  }
