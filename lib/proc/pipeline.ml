module C = Sqed_rtl.Circuit
module Node = Sqed_rtl.Node

type ports = {
  stall : C.signal;
  wb_valid : C.signal;
  wb_rd : C.signal;
  wb_data : C.signal;
  store_valid : C.signal;
  store_addr : C.signal;
  store_data : C.signal;
  busy : C.signal;
  regs : C.signal array;
  mem_words : C.signal array;
  in_legal : C.signal;
}

let build ~b ?bug cfg ~instr ~instr_valid =
  Config.validate cfg;
  let xlen = cfg.Config.xlen in
  let rbits = Config.reg_bits cfg in
  let abits = Config.addr_bits cfg in
  let has b' = bug = Some b' in
  let ( &&& ) = C.and_ b and ( ||| ) = C.or_ b in
  let not_ = C.not_ b in
  let czero w = C.consti b ~width:w 0 in
  let one_x = C.consti b ~width:xlen 1 in
  let flag name = C.reg_const b ~name ~width:1 0 in
  let field name w = C.reg_const b ~name ~width:w 0 in

  (* ---- pipeline state (declared up front, driven below) ------------- *)
  let id_valid = flag "id_valid" in
  let id_rd = field "id_rd" 5 in
  let id_rs1 = field "id_rs1" 5 in
  let id_rs2 = field "id_rs2" 5 in
  let id_imm = field "id_imm" xlen in
  let id_alu_op = field "id_alu_op" 5 in
  let id_is_r = flag "id_is_r" in
  let id_is_i = flag "id_is_i" in
  let id_is_load = flag "id_is_load" in
  let id_is_store = flag "id_is_store" in
  let id_uses_rs1 = flag "id_uses_rs1" in
  let id_uses_rs2 = flag "id_uses_rs2" in
  let id_writes_rd = flag "id_writes_rd" in

  let ex_valid = flag "ex_valid" in
  let ex_rd = field "ex_rd" 5 in
  let ex_rs1 = field "ex_rs1" 5 in
  let ex_rs2 = field "ex_rs2" 5 in
  let ex_imm = field "ex_imm" xlen in
  let ex_alu_op = field "ex_alu_op" 5 in
  let ex_is_r = flag "ex_is_r" in
  let ex_is_i = flag "ex_is_i" in
  let ex_is_load = flag "ex_is_load" in
  let ex_is_store = flag "ex_is_store" in
  let ex_uses_rs1 = flag "ex_uses_rs1" in
  let ex_uses_rs2 = flag "ex_uses_rs2" in
  let ex_writes_rd = flag "ex_writes_rd" in
  let ex_op1 = field "ex_op1" xlen in
  let ex_op2 = field "ex_op2" xlen in

  let mem_valid = flag "mem_valid" in
  let mem_rd = field "mem_rd" 5 in
  let mem_writes_rd = flag "mem_writes_rd" in
  let mem_is_load = flag "mem_is_load" in
  let mem_is_store = flag "mem_is_store" in
  let mem_alu = field "mem_alu" xlen in
  let mem_store_data = field "mem_store_data" xlen in

  let wb_valid_r = flag "wb_valid" in
  let wb_rd_r = field "wb_rd" 5 in
  let wb_writes = flag "wb_writes" in
  let wb_data_r = field "wb_data" xlen in

  (* ---- architectural register file ----------------------------------- *)
  let regfile =
    Array.init cfg.Config.nregs (fun i ->
        if i = 0 then czero xlen
        else
          C.reg b
            ~name:(Printf.sprintf "x%d" i)
            ~init:(Node.Symbolic_init (Printf.sprintf "reg%d_init" i))
            ~width:xlen)
  in
  let reg_read idx5 =
    let idx = C.extract b ~hi:(rbits - 1) ~lo:0 idx5 in
    let rec tree lo n bitpos =
      if n = 1 then regfile.(lo)
      else
        let half = n / 2 in
        C.mux b (C.bit b idx bitpos)
          (tree (lo + half) half (bitpos - 1))
          (tree lo half (bitpos - 1))
    in
    tree 0 cfg.Config.nregs (rbits - 1)
  in

  (* ---- input decode --------------------------------------------------- *)
  let d = Decode.decode b cfg instr in

  (* ---- WB write enable (needed early for the ID bypass) --------------- *)
  (* The WB data value, as consumed by the regfile write, the ID bypass
     and the WB->EX forwarding path. *)
  let wb_data_eff =
    if has Bug.Bug_wb_clobber_on_store then
      C.mux b (mem_valid &&& mem_is_store) (C.add b wb_data_r one_x) wb_data_r
    else wb_data_r
  in
  let wb_en = wb_valid_r &&& wb_writes in

  (* ---- ID stage -------------------------------------------------------- *)
  let bypass rs raw =
    (* Read-during-write: the value being written back this cycle wins. *)
    if has Bug.Bug_wb_bypass then raw
    else
      let hit = wb_en &&& C.eq b wb_rd_r rs in
      C.mux b hit wb_data_eff raw
  in
  let rs1_val = bypass id_rs1 (reg_read id_rs1) in
  let rs2_val = bypass id_rs2 (reg_read id_rs2) in
  let load_use_hazard =
    id_valid &&& ex_valid &&& ex_is_load &&& ex_writes_rd
    &&& ((id_uses_rs1 &&& C.eq b ex_rd id_rs1)
        ||| (id_uses_rs2 &&& C.eq b ex_rd id_rs2))
  in
  let stall = if has Bug.Bug_load_use_stall then C.gnd b else load_use_hazard in
  let hold held incoming = C.mux b stall held incoming in
  let id_rd_held =
    if has Bug.Bug_stall_corrupt then
      (* The held instruction's destination register field decays. *)
      C.xor b id_rd (C.consti b ~width:5 1)
    else id_rd
  in
  C.connect b id_valid (hold id_valid (instr_valid &&& d.Decode.legal));
  C.connect b id_rd (hold id_rd_held d.Decode.rd);
  C.connect b id_rs1 (hold id_rs1 d.Decode.rs1);
  C.connect b id_rs2 (hold id_rs2 d.Decode.rs2);
  C.connect b id_imm (hold id_imm d.Decode.imm);
  C.connect b id_alu_op (hold id_alu_op d.Decode.alu_op);
  C.connect b id_is_r (hold id_is_r d.Decode.is_r);
  C.connect b id_is_i (hold id_is_i d.Decode.is_i);
  C.connect b id_is_load (hold id_is_load d.Decode.is_load);
  C.connect b id_is_store (hold id_is_store d.Decode.is_store);
  C.connect b id_uses_rs1 (hold id_uses_rs1 d.Decode.uses_rs1);
  C.connect b id_uses_rs2 (hold id_uses_rs2 d.Decode.uses_rs2);
  C.connect b id_writes_rd (hold id_writes_rd d.Decode.writes_rd);

  (* ---- EX stage --------------------------------------------------------- *)
  C.connect b ex_valid (id_valid &&& not_ stall);
  C.connect b ex_rd id_rd;
  C.connect b ex_rs1 id_rs1;
  C.connect b ex_rs2 id_rs2;
  C.connect b ex_imm id_imm;
  C.connect b ex_alu_op id_alu_op;
  C.connect b ex_is_r id_is_r;
  C.connect b ex_is_i id_is_i;
  C.connect b ex_is_load id_is_load;
  C.connect b ex_is_store id_is_store;
  C.connect b ex_uses_rs1 id_uses_rs1;
  C.connect b ex_uses_rs2 id_uses_rs2;
  C.connect b ex_writes_rd id_writes_rd;
  C.connect b ex_op1 rs1_val;
  C.connect b ex_op2 rs2_val;

  (* Forwarding network. *)
  let mem_can_fwd = mem_valid &&& mem_writes_rd &&& not_ mem_is_load in
  let wb_can_fwd = wb_valid_r &&& wb_writes in
  let mem_fwd_value =
    if has Bug.Bug_fwd_value then C.add b mem_alu one_x else mem_alu
  in
  let forward ~disable_mem rs uses raw =
    let from_mem =
      let base = mem_can_fwd &&& C.eq b mem_rd rs &&& uses in
      if disable_mem then C.gnd b else base
    in
    let from_wb =
      let base = wb_can_fwd &&& C.eq b wb_rd_r rs &&& uses in
      if has Bug.Bug_fwd_wb then C.gnd b else base
    in
    if has Bug.Bug_fwd_priority then
      (* Stale WB value incorrectly wins over the newer MEM value. *)
      C.mux b from_wb wb_data_eff (C.mux b from_mem mem_fwd_value raw)
    else C.mux b from_mem mem_fwd_value (C.mux b from_wb wb_data_eff raw)
  in
  let fwd_rs2_active =
    (mem_can_fwd &&& C.eq b mem_rd ex_rs2 &&& ex_uses_rs2)
    ||| (wb_can_fwd &&& C.eq b wb_rd_r ex_rs2 &&& ex_uses_rs2)
  in
  let op1 =
    forward ~disable_mem:(has Bug.Bug_fwd_mem_rs1) ex_rs1 ex_uses_rs1 ex_op1
  in
  let op2 =
    forward ~disable_mem:(has Bug.Bug_fwd_mem_rs2) ex_rs2 ex_uses_rs2 ex_op2
  in

  (* Execution unit (shared with the other pipeline variants). *)
  let alu =
    Alu.build ~b ?bug cfg ~op1 ~op2 ~imm:ex_imm ~alu_op:ex_alu_op
      ~is_r:ex_is_r ~is_i:ex_is_i ~is_store:ex_is_store
      ~store_fwd_active:fwd_rs2_active ()
  in
  let alu_result = alu.Alu.value in
  let store_data_ex = alu.Alu.store_data in

  (* ---- MEM stage --------------------------------------------------------- *)
  C.connect b mem_valid ex_valid;
  C.connect b mem_rd ex_rd;
  C.connect b mem_writes_rd ex_writes_rd;
  C.connect b mem_is_load ex_is_load;
  C.connect b mem_is_store ex_is_store;
  C.connect b mem_alu alu_result;
  C.connect b mem_store_data store_data_ex;

  let mem_addr = C.extract b ~hi:(abits - 1) ~lo:0 mem_alu in
  let store_en = mem_valid &&& mem_is_store in
  let mem_store_data_eff =
    if has Bug.Bug_store_interference then
      C.mux b (ex_valid &&& ex_is_store)
        (C.add b mem_store_data one_x)
        mem_store_data
    else mem_store_data
  in
  let dmem =
    C.memory b ~name:"dmem" ~words:cfg.Config.mem_words ~word_width:xlen
      ~init:(Node.Symbolic_init "dmem") ~wr_en:store_en ~wr_addr:mem_addr
      ~wr_data:mem_store_data_eff
  in
  let load_data = dmem.C.read mem_addr in
  let mem_result = C.mux b mem_is_load load_data mem_alu in

  (* ---- WB stage ------------------------------------------------------------ *)
  C.connect b wb_valid_r mem_valid;
  C.connect b wb_rd_r mem_rd;
  C.connect b wb_writes mem_writes_rd;
  C.connect b wb_data_r mem_result;

  Array.iteri
    (fun i r ->
      if i > 0 then begin
        let here = wb_en &&& C.eq b wb_rd_r (C.consti b ~width:5 i) in
        C.connect b r (C.mux b here wb_data_eff r)
      end)
    regfile;

  let busy = id_valid ||| ex_valid ||| mem_valid ||| wb_valid_r in
  {
    stall;
    wb_valid = wb_en;
    wb_rd = wb_rd_r;
    wb_data = wb_data_eff;
    store_valid = store_en;
    store_addr = mem_addr;
    store_data = mem_store_data_eff;
    busy;
    regs = regfile;
    mem_words = dmem.C.words;
    in_legal = d.Decode.legal;
  }
