(** The DUV substrate: a parameterised in-order pipelined RV32IM core built
    in the RTL DSL (standing in for RIDECORE; see DESIGN.md for why the
    substitution preserves the experiments' shape).

    Pipeline structure (instructions are injected at ID; there is no fetch
    stage or PC, as in SQED-style verification):

    {v ID (decode, regfile read, WB bypass, load-use stall)
       EX (forwarding from MEM and WB, ALU, optional multiplier)
       MEM (data-memory access, store commit)
       WB (register write) v}

    The register file starts in a symbolic state (registers
    [reg<i>_init]); data memory likewise ([dmem_<w>]).  A {!Bug.t} can be
    injected at build time — mutation testing at the RTL level. *)

module C = Sqed_rtl.Circuit

type ports = {
  stall : C.signal;  (** input instruction not consumed this cycle *)
  wb_valid : C.signal;  (** a register write commits this cycle *)
  wb_rd : C.signal;  (** 5-bit destination of the committing write *)
  wb_data : C.signal;
  store_valid : C.signal;  (** a store commits this cycle *)
  store_addr : C.signal;  (** word address, [Config.addr_bits] wide *)
  store_data : C.signal;
  busy : C.signal;  (** some stage holds a valid instruction *)
  regs : C.signal array;  (** architectural registers, index 0 is zero *)
  mem_words : C.signal array;
  in_legal : C.signal;  (** the input instruction decodes as supported *)
}

val build :
  b:C.builder ->
  ?bug:Bug.t ->
  Config.t ->
  instr:C.signal ->
  instr_valid:C.signal ->
  ports
(** Instantiate the core inside an existing netlist.  [instr] must be 32
    bits wide, [instr_valid] one bit. *)
