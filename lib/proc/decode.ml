module C = Sqed_rtl.Circuit

let alu_add = 0
let alu_sub = 1
let alu_sll = 2
let alu_slt = 3
let alu_sltu = 4
let alu_xor = 5
let alu_srl = 6
let alu_sra = 7
let alu_or = 8
let alu_and = 9
let alu_mul = 10
let alu_mulh = 11
let alu_mulhu = 12
let alu_cpyb = 13
let alu_div = 14
let alu_divu = 15
let alu_rem = 16
let alu_remu = 17

let alu_code_of_rop = function
  | Sqed_isa.Insn.ADD -> alu_add
  | Sqed_isa.Insn.SUB -> alu_sub
  | Sqed_isa.Insn.SLL -> alu_sll
  | Sqed_isa.Insn.SLT -> alu_slt
  | Sqed_isa.Insn.SLTU -> alu_sltu
  | Sqed_isa.Insn.XOR -> alu_xor
  | Sqed_isa.Insn.SRL -> alu_srl
  | Sqed_isa.Insn.SRA -> alu_sra
  | Sqed_isa.Insn.OR -> alu_or
  | Sqed_isa.Insn.AND -> alu_and
  | Sqed_isa.Insn.MUL -> alu_mul
  | Sqed_isa.Insn.MULH -> alu_mulh
  | Sqed_isa.Insn.MULHU -> alu_mulhu
  | Sqed_isa.Insn.DIV -> alu_div
  | Sqed_isa.Insn.DIVU -> alu_divu
  | Sqed_isa.Insn.REM -> alu_rem
  | Sqed_isa.Insn.REMU -> alu_remu

let alu_code_of_iop = function
  | Sqed_isa.Insn.ADDI -> alu_add
  | Sqed_isa.Insn.SLTI -> alu_slt
  | Sqed_isa.Insn.SLTIU -> alu_sltu
  | Sqed_isa.Insn.XORI -> alu_xor
  | Sqed_isa.Insn.ORI -> alu_or
  | Sqed_isa.Insn.ANDI -> alu_and
  | Sqed_isa.Insn.SLLI -> alu_sll
  | Sqed_isa.Insn.SRLI -> alu_srl
  | Sqed_isa.Insn.SRAI -> alu_sra

type ctrl = {
  legal : C.signal;
  rd : C.signal;
  rs1 : C.signal;
  rs2 : C.signal;
  is_r : C.signal;
  is_i : C.signal;
  is_lui : C.signal;
  is_load : C.signal;
  is_store : C.signal;
  uses_rs1 : C.signal;
  uses_rs2 : C.signal;
  writes_rd : C.signal;
  alu_op : C.signal;
  imm : C.signal;
}

let ext12 b cfg imm12 =
  let xlen = cfg.Config.xlen in
  if xlen >= 12 then C.sext b imm12 xlen
  else C.extract b ~hi:(xlen - 1) ~lo:0 imm12

let decode b cfg instr =
  let xlen = cfg.Config.xlen in
  let f hi lo = C.extract b ~hi ~lo instr in
  let opcode = f 6 0 in
  let f3 = f 14 12 in
  let f7 = f 31 25 in
  let rd = f 11 7 in
  let rs1 = f 19 15 in
  let rs2 = f 24 20 in
  let imm_i = f 31 20 in
  let imm_s = C.concat b (f 31 25) (f 11 7) in
  let opc v = C.eq b opcode (C.consti b ~width:7 v) in
  let f3v v = C.eq b f3 (C.consti b ~width:3 v) in
  let f7v v = C.eq b f7 (C.consti b ~width:7 v) in
  let f7z = f7v 0b0000000 and f7s = f7v 0b0100000 and f7m = f7v 0b0000001 in
  let ( &&& ) = C.and_ b and ( ||| ) = C.or_ b in
  (* R-type legality. *)
  let r_std =
    f7z ||| (f7s &&& (f3v 0b000 ||| f3v 0b101))
  in
  let r_mul =
    if cfg.Config.ext_m then f7m &&& (f3v 0b000 ||| f3v 0b001 ||| f3v 0b011)
    else C.gnd b
  in
  let r_div =
    if cfg.Config.ext_div then
      f7m &&& (f3v 0b100 ||| f3v 0b101 ||| f3v 0b110 ||| f3v 0b111)
    else C.gnd b
  in
  let is_r = opc 0b0110011 &&& (r_std ||| r_mul ||| r_div) in
  (* I-type ALU legality. *)
  let i_shift_ok =
    (f3v 0b001 &&& f7z) ||| (f3v 0b101 &&& (f7z ||| f7s))
  in
  let i_plain = f3v 0b000 ||| f3v 0b010 ||| f3v 0b011 ||| f3v 0b100 ||| f3v 0b110 ||| f3v 0b111 in
  let is_i = opc 0b0010011 &&& (i_plain ||| i_shift_ok) in
  let is_lui = opc 0b0110111 in
  let is_load = opc 0b0000011 &&& f3v 0b010 in
  let is_store = opc 0b0100011 &&& f3v 0b010 in
  let legal = is_r ||| is_i ||| is_lui ||| is_load ||| is_store in
  (* ALU operation code. *)
  let code v = C.consti b ~width:5 v in
  let ( ==> ) sel v = (sel, v) in
  let alu_arith =
    (* For R/I by f3, with f7 disambiguation. *)
    C.onehot_mux b
      [
        (f3v 0b000 &&& is_r &&& f7s) ==> code alu_sub;
        (f3v 0b000 &&& is_r &&& f7m) ==> code alu_mul;
        f3v 0b000 ==> code alu_add;
        (f3v 0b001 &&& is_r &&& f7m) ==> code alu_mulh;
        f3v 0b001 ==> code alu_sll;
        f3v 0b010 ==> code alu_slt;
        (f3v 0b011 &&& is_r &&& f7m) ==> code alu_mulhu;
        f3v 0b011 ==> code alu_sltu;
        (f3v 0b100 &&& is_r &&& f7m) ==> code alu_div;
        f3v 0b100 ==> code alu_xor;
        (f3v 0b101 &&& is_r &&& f7m) ==> code alu_divu;
        (f3v 0b101 &&& f7s) ==> code alu_sra;
        f3v 0b101 ==> code alu_srl;
        (f3v 0b110 &&& is_r &&& f7m) ==> code alu_rem;
        f3v 0b110 ==> code alu_or;
        (f3v 0b111 &&& is_r &&& f7m) ==> code alu_remu;
      ]
      ~default:(code alu_and)
  in
  let alu_op =
    C.onehot_mux b
      [
        is_lui ==> code alu_cpyb;
        (is_load ||| is_store) ==> code alu_add;
      ]
      ~default:alu_arith
  in
  (* Immediate operand, XLEN wide. *)
  let imm_i_x = ext12 b cfg imm_i in
  let imm_s_x = ext12 b cfg imm_s in
  let imm_u_x =
    (* LUI places imm20 at bits 31:12; only bits below XLEN survive. *)
    if xlen <= 12 then C.consti b ~width:xlen 0
    else if xlen >= 32 then
      C.sext b (C.concat b (f 31 12) (C.consti b ~width:12 0)) xlen
    else C.concat b (f (xlen - 1) 12) (C.consti b ~width:12 0)
  in
  let imm =
    C.onehot_mux b
      [ is_store ==> imm_s_x; is_lui ==> imm_u_x ]
      ~default:imm_i_x
  in
  let uses_rs1 = is_r ||| is_i ||| is_load ||| is_store in
  let uses_rs2 = is_r ||| is_store in
  let rd_nonzero = C.neq b rd (C.consti b ~width:5 0) in
  let writes_rd = legal &&& C.not_ b is_store &&& rd_nonzero in
  {
    legal;
    rd;
    rs1;
    rs2;
    is_r;
    is_i;
    is_lui;
    is_load;
    is_store;
    uses_rs1;
    uses_rs2;
    writes_rd;
    alu_op;
    imm;
  }
