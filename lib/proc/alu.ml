module C = Sqed_rtl.Circuit

type result = { value : C.signal; store_data : C.signal }

let build ~b ?bug cfg ~op1 ~op2 ~imm ~alu_op ~is_r ~is_i ~is_store
    ~store_fwd_active () =
  let xlen = cfg.Config.xlen in
  let has b' = bug = Some b' in
  let ( &&& ) = C.and_ b in
  let one_x = C.consti b ~width:xlen 1 in
  let alu_b = C.mux b is_r op2 imm in
  let lxlen = Config.log2 xlen in
  let shamt_raw = C.extract b ~hi:(lxlen - 1) ~lo:0 alu_b in
  let shamt_bits =
    if has Bug.Bug_slli then
      (* Only SLLI's decoded amount decays. *)
      let is_slli =
        is_i &&& C.eq b alu_op (C.consti b ~width:5 Decode.alu_sll)
      in
      C.mux b is_slli (C.xor b shamt_raw (C.consti b ~width:lxlen 1)) shamt_raw
    else shamt_raw
  in
  let shamt = C.zext b shamt_bits xlen in
  let opv v = C.eq b alu_op (C.consti b ~width:5 v) in
  let results =
    [
      (Decode.alu_sub, C.sub b op1 alu_b);
      (Decode.alu_sll, C.shl b op1 shamt);
      (Decode.alu_slt, C.zext b (C.slt b op1 alu_b) xlen);
      (Decode.alu_sltu, C.zext b (C.ult b op1 alu_b) xlen);
      (Decode.alu_xor, C.xor b op1 alu_b);
      (Decode.alu_srl, C.lshr b op1 shamt);
      (Decode.alu_sra, C.ashr b op1 shamt);
      (Decode.alu_or, C.or_ b op1 alu_b);
      (Decode.alu_and, C.and_ b op1 alu_b);
      (Decode.alu_cpyb, alu_b);
    ]
    @ (if cfg.Config.ext_m then begin
         (* One shared unsigned 2w multiplier serves all three products:
            MUL is the low half, MULHU the high half, and MULH the high
            half with the standard signed correction
            mulh(a,b) = mulhu(a,b) - (a<0 ? b : 0) - (b<0 ? a : 0). *)
         let w2 = 2 * xlen in
         let zero = C.consti b ~width:xlen 0 in
         let p = C.mul b (C.zext b op1 w2) (C.zext b alu_b w2) in
         let hi = C.extract b ~hi:(w2 - 1) ~lo:xlen p in
         let corr =
           C.add b
             (C.mux b (C.slt b op1 zero) alu_b zero)
             (C.mux b (C.slt b alu_b zero) op1 zero)
         in
         [
           (Decode.alu_mul, C.extract b ~hi:(xlen - 1) ~lo:0 p);
           (Decode.alu_mulh, C.sub b hi corr);
           (Decode.alu_mulhu, hi);
         ]
       end
       else [])
    @ (if cfg.Config.ext_div then begin
         (* RISC-V M division: x/0 = all-ones, x%0 = x (the unsigned RTL
            operators already follow that convention), MIN/-1 wraps. *)
         let zero = C.consti b ~width:xlen 0 in
         let abs x = C.mux b (C.slt b x zero) (C.neg b x) x in
         let aa = abs op1 and ab = abs alu_b in
         let qu = C.udiv b aa ab in
         let ru = C.urem b aa ab in
         let sign_differs = C.xor b (C.slt b op1 zero) (C.slt b alu_b zero) in
         let q_signed = C.mux b sign_differs (C.neg b qu) qu in
         let div_res =
           C.mux b (C.eq b alu_b zero)
             (C.consti b ~width:xlen (-1))
             q_signed
         in
         let rem_res = C.mux b (C.slt b op1 zero) (C.neg b ru) ru in
         [
           (Decode.alu_div, div_res);
           (Decode.alu_divu, C.udiv b op1 alu_b);
           (Decode.alu_rem, rem_res);
           (Decode.alu_remu, C.urem b op1 alu_b);
         ]
       end
       else [])
  in
  let alu_result =
    C.onehot_mux b
      (List.map (fun (code, v) -> (opv code, v)) results)
      ~default:(C.add b op1 alu_b)
  in
  (* Single-instruction mutations on the execution result. *)
  let when_r code = is_r &&& opv code in
  let when_i code = is_i &&& opv code in
  let corrupt cond wrong = C.mux b cond wrong alu_result in
  let value =
    match bug with
    | Some Bug.Bug_add ->
        corrupt (when_r Decode.alu_add) (C.add b alu_result one_x)
    | Some Bug.Bug_sub ->
        corrupt (when_r Decode.alu_sub) (C.xor b alu_result one_x)
    | Some Bug.Bug_xor ->
        corrupt (when_r Decode.alu_xor)
          (C.xor b alu_result (C.consti b ~width:xlen (1 lsl (xlen - 1))))
    | Some Bug.Bug_or -> corrupt (when_r Decode.alu_or) (C.xor b op1 alu_b)
    | Some Bug.Bug_and ->
        corrupt (when_r Decode.alu_and) (C.and_ b op1 (C.not_ b alu_b))
    | Some Bug.Bug_slt ->
        corrupt (when_r Decode.alu_slt) (C.xor b alu_result one_x)
    | Some Bug.Bug_sltu ->
        corrupt (when_r Decode.alu_sltu) (C.xor b alu_result one_x)
    | Some Bug.Bug_sra -> corrupt (when_r Decode.alu_sra) (C.lshr b op1 shamt)
    | Some Bug.Bug_mulh ->
        corrupt (when_r Decode.alu_mulh) (C.add b alu_result one_x)
    | Some Bug.Bug_xori ->
        corrupt (when_i Decode.alu_xor) (C.or_ b op1 alu_b)
    | Some Bug.Bug_srai -> corrupt (when_i Decode.alu_sra) (C.lshr b op1 shamt)
    | _ -> alu_result
  in
  let store_data =
    let base = op2 in
    if has Bug.Bug_sw then
      C.mux b (is_store &&& store_fwd_active) (C.add b base one_x) base
    else base
  in
  { value; store_data }
