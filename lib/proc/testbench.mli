(** Concrete-simulation harness for the pipeline: feed an instruction
    sequence through the core (respecting stalls), drain, and return the
    final architectural state in {!Sqed_isa.Exec} form so it can be
    compared against the golden interpreter. *)

module Bv = Sqed_bv.Bv

type variant = Five_stage | Three_stage

val circuit : ?bug:Bug.t -> ?variant:variant -> Config.t -> Sqed_rtl.Circuit.t
(** A standalone core with inputs [instr]/[instr_valid] and outputs
    [stall], [busy], [wb_valid], [wb_rd], [wb_data], [store_valid],
    [legal]. *)

val run :
  ?bug:Bug.t ->
  ?variant:variant ->
  ?init_regs:(int * Bv.t) list ->
  ?init_mem:(int * Bv.t) list ->
  Config.t ->
  Sqed_isa.Insn.t list ->
  Sqed_isa.Exec.t
(** Execute the instruction sequence on the simulated pipeline and return
    the drained architectural state.  Raises [Failure] if an instruction
    is rejected as illegal or the pipeline fails to drain. *)

val golden :
  ?init_regs:(int * Bv.t) list ->
  ?init_mem:(int * Bv.t) list ->
  Config.t ->
  Sqed_isa.Insn.t list ->
  Sqed_isa.Exec.t
(** The same program on the instruction-set interpreter. *)
