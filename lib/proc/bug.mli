(** The mutation-testing catalog (Section 6.2).

    {b Single-instruction bugs} (one per Table-1 row) corrupt the datapath
    of exactly one decoded instruction, uniformly in its operands, so the
    original instruction and its EDDI-V duplicate misbehave identically and
    SQED's self-consistency cannot observe them.  The SW row follows the
    store-data forwarding reading of the paper's mutation: the corruption
    fires only when the stored register was produced by the immediately
    preceding instruction — the EDSEP-V transform always creates exactly
    that pattern (ADDI t, rs2'; SW t), while EDDI-V interleaving never
    does.

    {b Multiple-instruction bugs} (Fig. 4) sit in the pipeline's
    inter-instruction machinery — forwarding muxes, hazard stalls, write
    scheduling — and require specific instruction interleavings to fire;
    both SQED and SEPE-SQED can detect them. *)

type t =
  (* single-instruction bugs (Table 1) *)
  | Bug_add  (** R-type ADD computes a+b+1 *)
  | Bug_sub  (** R-type SUB result has bit 0 flipped *)
  | Bug_xor  (** R-type XOR result has its MSB flipped *)
  | Bug_or  (** R-type OR computes XOR instead *)
  | Bug_and  (** R-type AND computes a AND NOT b *)
  | Bug_slt  (** R-type SLT result inverted *)
  | Bug_sltu  (** R-type SLTU result inverted *)
  | Bug_sra  (** R-type SRA performs a logical shift *)
  | Bug_mulh  (** MULH result +1 *)
  | Bug_xori  (** XORI computes OR-immediate *)
  | Bug_slli  (** SLLI shift amount bit 0 flipped *)
  | Bug_srai  (** SRAI performs a logical shift *)
  | Bug_sw  (** store data +1 when the stored register is forwarded *)
  (* multiple-instruction bugs (Fig. 4) *)
  | Bug_fwd_mem_rs1  (** MEM->EX forwarding dropped for operand 1 *)
  | Bug_fwd_mem_rs2  (** MEM->EX forwarding dropped for operand 2 *)
  | Bug_fwd_wb  (** WB->EX forwarding dropped *)
  | Bug_fwd_priority  (** WB wins over MEM when both match (stale value) *)
  | Bug_load_use_stall  (** load-use hazard stall missing *)
  | Bug_wb_bypass  (** regfile read-during-write bypass missing *)
  | Bug_fwd_value  (** forwarded MEM value corrupted (+1) *)
  | Bug_store_interference
      (** store data corrupted when another store occupies EX *)
  | Bug_wb_clobber_on_store
      (** WB write-back data corrupted whenever a store occupies MEM *)
  | Bug_stall_corrupt  (** the held instruction's rd flips bit 0 on stall *)

val all_single : t list
val all_multi : t list
val all : t list

val name : t -> string
val describe : t -> string

val table1_row : t -> string option
(** The Table-1 "Type" column for single-instruction bugs. *)

val of_name : string -> t option

val is_single : t -> bool

val needs_m : t -> bool
(** True when the bug sits in the multiplier datapath (needs [ext_m]). *)
