(** A second DUV: a 3-stage in-order pipeline (ID / EX+MEM / WB) sharing
    the decoder and execution unit with the 5-stage core but with a
    different hazard structure — no load-use stall (memory resolves in
    EX), a single WB->EX forwarding path, and the regfile
    read-during-write bypass.

    Verifying this core with the unchanged QED layer demonstrates the
    microarchitecture-independence at the heart of SQED-style methods: the
    property, the transformation module and the bug catalog's
    single-instruction mutations carry over verbatim.  Multi-instruction
    mutations that target machinery this core does not have (MEM-stage
    forwarding, load-use stalls) are inert here. *)

module C = Sqed_rtl.Circuit

val build :
  b:C.builder ->
  ?bug:Bug.t ->
  Config.t ->
  instr:C.signal ->
  instr_valid:C.signal ->
  Pipeline.ports
(** Same interface and port contract as {!Pipeline.build}; [stall] is
    constant zero. *)
