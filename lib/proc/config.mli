(** Configuration of the DUV substrate (the pipelined core standing in for
    RIDECORE).

    The design is fully parametric in datapath width, register count and
    memory size, because bit-blasted BMC cost grows steeply with state
    bits; the paper-scale configuration ([rv32]) and the experiment-scale
    configurations ([small], [tiny]) share every line of RTL. *)

type t = {
  xlen : int;  (** datapath width; power of two *)
  nregs : int;  (** architectural registers (<= 32); power of two *)
  mem_words : int;  (** data-memory words; power of two, >= 2 *)
  ext_m : bool;  (** include the MUL/MULH/MULHU datapath *)
  ext_div : bool;  (** include the DIV/DIVU/REM/REMU datapath *)
}

val rv32 : t
(** 32-bit, 32 registers, 16 memory words, with M extension. *)

val small : t
(** 8-bit datapath, 16 registers, 4 memory words, no multiplier — the
    default configuration for BMC experiments. *)

val small_m : t
(** [small] plus the multiplier (for the MULH bug row). *)

val tiny : t
(** 4-bit datapath, 8 registers, 2 memory words — fastest checks. *)

val tiny_m : t
(** [tiny] plus the multiplier. *)

val validate : t -> unit
(** Raises [Invalid_argument] on malformed configurations. *)

val log2 : int -> int
(** Exact log2 of a power of two; raises otherwise. *)

val reg_bits : t -> int
(** Bits of a register index field that can address [nregs]. *)

val addr_bits : t -> int

val to_string : t -> string
