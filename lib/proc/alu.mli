(** The execution unit shared by the pipeline variants: ALU operation mux,
    shared multiplier/divider datapaths, and the single-instruction
    mutation points of the {!Bug} catalog.

    Factoring this out guarantees that every core variant exhibits the
    same instruction semantics and the same injected single-instruction
    bugs, which is what makes cross-microarchitecture QED comparisons
    meaningful. *)

module C = Sqed_rtl.Circuit

type result = {
  value : C.signal;  (** the (possibly mutated) execution result *)
  store_data : C.signal;  (** the (possibly mutated) store value *)
}

val build :
  b:C.builder ->
  ?bug:Bug.t ->
  Config.t ->
  op1:C.signal ->
  op2:C.signal ->
  imm:C.signal ->
  alu_op:C.signal ->
  is_r:C.signal ->
  is_i:C.signal ->
  is_store:C.signal ->
  store_fwd_active:C.signal ->
  unit ->
  result
(** [op1]/[op2] are the forwarded operand values, [imm] the XLEN-wide
    immediate; the second ALU operand is [op2] for R-type and [imm]
    otherwise.  [store_fwd_active] feeds the SW mutation's trigger
    condition. *)
