type t = { xlen : int; nregs : int; mem_words : int; ext_m : bool; ext_div : bool }

let rv32 =
  { xlen = 32; nregs = 32; mem_words = 16; ext_m = true; ext_div = true }

let small =
  { xlen = 8; nregs = 16; mem_words = 4; ext_m = false; ext_div = false }

let small_m = { small with ext_m = true }
let tiny = { xlen = 4; nregs = 8; mem_words = 2; ext_m = false; ext_div = false }
let tiny_m = { tiny with ext_m = true }

let log2 n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  let r = go 0 in
  if r < 0 then invalid_arg (Printf.sprintf "Config.log2: %d is not a power of two" n);
  r

let validate c =
  ignore (log2 c.xlen);
  ignore (log2 c.nregs);
  ignore (log2 c.mem_words);
  if c.xlen < 4 then invalid_arg "Config: xlen must be at least 4";
  if c.nregs < 8 || c.nregs > 32 then
    invalid_arg "Config: nregs must be between 8 and 32";
  if c.mem_words < 2 then invalid_arg "Config: mem_words must be at least 2"

let reg_bits c = log2 c.nregs
let addr_bits c = log2 c.mem_words

let to_string c =
  Printf.sprintf "xlen=%d nregs=%d mem=%d m=%b div=%b" c.xlen c.nregs
    c.mem_words c.ext_m c.ext_div
