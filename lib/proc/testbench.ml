module Bv = Sqed_bv.Bv
module C = Sqed_rtl.Circuit
module Sim = Sqed_rtl.Sim
module Insn = Sqed_isa.Insn
module Exec = Sqed_isa.Exec

type variant = Five_stage | Three_stage

let circuit ?bug ?(variant = Five_stage) cfg =
  let b = C.create "pipeline_tb" in
  let instr = C.input b "instr" 32 in
  let instr_valid = C.input b "instr_valid" 1 in
  let build =
    match variant with
    | Five_stage -> Pipeline.build
    | Three_stage -> Pipeline3.build
  in
  let p = build ~b ?bug cfg ~instr ~instr_valid in
  C.output b "stall" p.Pipeline.stall;
  C.output b "busy" p.Pipeline.busy;
  C.output b "wb_valid" p.Pipeline.wb_valid;
  C.output b "wb_rd" p.Pipeline.wb_rd;
  C.output b "wb_data" p.Pipeline.wb_data;
  C.output b "store_valid" p.Pipeline.store_valid;
  C.output b "legal" p.Pipeline.in_legal;
  C.finalize b

let initial_env ~init_regs ~init_mem name =
  let parse prefix suffix_of =
    if String.length name > String.length prefix
       && String.sub name 0 (String.length prefix) = prefix
    then suffix_of (String.sub name (String.length prefix)
                      (String.length name - String.length prefix))
    else None
  in
  match
    parse "reg" (fun rest ->
        (* "reg<i>_init" *)
        match String.index_opt rest '_' with
        | Some k -> int_of_string_opt (String.sub rest 0 k)
        | None -> None)
  with
  | Some i -> List.assoc_opt i init_regs
  | None -> (
      match parse "dmem_" int_of_string_opt with
      | Some w -> List.assoc_opt w init_mem
      | None -> None)

let run ?bug ?variant ?(init_regs = []) ?(init_mem = []) cfg insns =
  let c = circuit ?bug ?variant cfg in
  let sim = Sim.create ~initial:(initial_env ~init_regs ~init_mem) c in
  let nop_in = [ ("instr", Bv.zero 32); ("instr_valid", Bv.zero 1) ] in
  let feed insn =
    let word = Sqed_isa.Encode.encode insn in
    let inputs = [ ("instr", word); ("instr_valid", Bv.one 1) ] in
    (* Re-present the instruction until the pipeline consumes it. *)
    let rec go tries =
      if tries > 8 then failwith "Testbench.run: pipeline stuck in stall";
      let outs = Sim.cycle sim inputs in
      if Bv.is_zero (List.assoc "legal" outs) then
        failwith ("Testbench.run: illegal instruction " ^ Insn.to_string insn);
      if not (Bv.is_zero (List.assoc "stall" outs)) then go (tries + 1)
    in
    go 0
  in
  List.iter feed insns;
  (* Drain. *)
  let rec drain tries =
    if tries > 16 then failwith "Testbench.run: pipeline failed to drain";
    let outs = Sim.cycle sim nop_in in
    if not (Bv.is_zero (List.assoc "busy" outs)) then drain (tries + 1)
  in
  drain 0;
  (* Read back the architectural state. *)
  let st = Exec.create ~xlen:cfg.Config.xlen ~mem_words:cfg.Config.mem_words in
  for i = 1 to cfg.Config.nregs - 1 do
    Exec.set_reg st i (Sim.reg_value sim (Printf.sprintf "x%d" i))
  done;
  for w = 0 to cfg.Config.mem_words - 1 do
    Exec.store st
      (Bv.of_int ~width:cfg.Config.xlen w)
      (Sim.reg_value sim (Printf.sprintf "dmem[%d]" w))
  done;
  st

let golden ?(init_regs = []) ?(init_mem = []) cfg insns =
  let st = Exec.create ~xlen:cfg.Config.xlen ~mem_words:cfg.Config.mem_words in
  List.iter (fun (i, v) -> Exec.set_reg st i v) init_regs;
  List.iter
    (fun (w, v) -> Exec.store st (Bv.of_int ~width:cfg.Config.xlen w) v)
    init_mem;
  List.iter (Exec.exec st) insns;
  st
