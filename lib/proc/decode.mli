(** Combinational instruction decoder (shared by the pipeline's ID stage
    and by the QED transformation module, which must parse the original
    instruction to build its transformed counterpart). *)

module C = Sqed_rtl.Circuit

(** Internal ALU operation codes (4 bits wide in the datapath). *)
val alu_add : int
val alu_sub : int
val alu_sll : int
val alu_slt : int
val alu_sltu : int
val alu_xor : int
val alu_srl : int
val alu_sra : int
val alu_or : int
val alu_and : int
val alu_mul : int
val alu_mulh : int
val alu_mulhu : int
val alu_cpyb : int
(** Result is the immediate operand (used by LUI). *)

val alu_div : int
val alu_divu : int
val alu_rem : int
val alu_remu : int

val alu_code_of_rop : Sqed_isa.Insn.rop -> int
val alu_code_of_iop : Sqed_isa.Insn.iop -> int

type ctrl = {
  legal : C.signal;  (** recognized instruction of the supported subset *)
  rd : C.signal;  (** 5-bit destination field *)
  rs1 : C.signal;
  rs2 : C.signal;
  is_r : C.signal;
  is_i : C.signal;
  is_lui : C.signal;
  is_load : C.signal;
  is_store : C.signal;
  uses_rs1 : C.signal;
  uses_rs2 : C.signal;  (** reads rs2's value (R-type operand or store data) *)
  writes_rd : C.signal;  (** legal, writes a register, and rd <> x0 *)
  alu_op : C.signal;  (** 5-bit code *)
  imm : C.signal;  (** XLEN-wide immediate operand (I/S/U as appropriate) *)
}

val decode : C.builder -> Config.t -> C.signal -> ctrl
(** [decode b cfg instr] with [instr] a 32-bit signal. *)

val ext12 : C.builder -> Config.t -> C.signal -> C.signal
(** Sign-extend (or truncate) a 12-bit immediate field to XLEN. *)
