type t =
  | Bug_add
  | Bug_sub
  | Bug_xor
  | Bug_or
  | Bug_and
  | Bug_slt
  | Bug_sltu
  | Bug_sra
  | Bug_mulh
  | Bug_xori
  | Bug_slli
  | Bug_srai
  | Bug_sw
  | Bug_fwd_mem_rs1
  | Bug_fwd_mem_rs2
  | Bug_fwd_wb
  | Bug_fwd_priority
  | Bug_load_use_stall
  | Bug_wb_bypass
  | Bug_fwd_value
  | Bug_store_interference
  | Bug_wb_clobber_on_store
  | Bug_stall_corrupt

let all_single =
  [
    Bug_add; Bug_sub; Bug_xor; Bug_or; Bug_and; Bug_slt; Bug_sltu; Bug_sra;
    Bug_mulh; Bug_xori; Bug_slli; Bug_srai; Bug_sw;
  ]

let all_multi =
  [
    Bug_fwd_mem_rs1; Bug_fwd_mem_rs2; Bug_fwd_wb; Bug_fwd_priority;
    Bug_load_use_stall; Bug_wb_bypass; Bug_fwd_value; Bug_store_interference;
    Bug_wb_clobber_on_store; Bug_stall_corrupt;
  ]

let all = all_single @ all_multi

let name = function
  | Bug_add -> "add"
  | Bug_sub -> "sub"
  | Bug_xor -> "xor"
  | Bug_or -> "or"
  | Bug_and -> "and"
  | Bug_slt -> "slt"
  | Bug_sltu -> "sltu"
  | Bug_sra -> "sra"
  | Bug_mulh -> "mulh"
  | Bug_xori -> "xori"
  | Bug_slli -> "slli"
  | Bug_srai -> "srai"
  | Bug_sw -> "sw"
  | Bug_fwd_mem_rs1 -> "fwd-mem-rs1"
  | Bug_fwd_mem_rs2 -> "fwd-mem-rs2"
  | Bug_fwd_wb -> "fwd-wb"
  | Bug_fwd_priority -> "fwd-priority"
  | Bug_load_use_stall -> "load-use-stall"
  | Bug_wb_bypass -> "wb-bypass"
  | Bug_fwd_value -> "fwd-value"
  | Bug_store_interference -> "store-interference"
  | Bug_wb_clobber_on_store -> "wb-clobber-on-store"
  | Bug_stall_corrupt -> "stall-corrupt"

let describe = function
  | Bug_add -> "ADD computes a+b+1"
  | Bug_sub -> "SUB result bit 0 flipped"
  | Bug_xor -> "XOR result MSB flipped"
  | Bug_or -> "OR computes XOR"
  | Bug_and -> "AND computes a AND NOT b"
  | Bug_slt -> "SLT result inverted"
  | Bug_sltu -> "SLTU result inverted"
  | Bug_sra -> "SRA loses the sign fill"
  | Bug_mulh -> "MULH result +1"
  | Bug_xori -> "XORI computes ORI"
  | Bug_slli -> "SLLI shift amount bit 0 flipped"
  | Bug_srai -> "SRAI performs a logical shift"
  | Bug_sw -> "store data +1 when the stored register is forwarded"
  | Bug_fwd_mem_rs1 -> "MEM->EX forwarding dropped for operand 1"
  | Bug_fwd_mem_rs2 -> "MEM->EX forwarding dropped for operand 2"
  | Bug_fwd_wb -> "WB->EX forwarding dropped"
  | Bug_fwd_priority -> "stale WB value wins over MEM when both match"
  | Bug_load_use_stall -> "load-use hazard stall missing"
  | Bug_wb_bypass -> "regfile read-during-write bypass missing"
  | Bug_fwd_value -> "forwarded MEM value corrupted (+1)"
  | Bug_store_interference -> "store data corrupted when another store is at EX"
  | Bug_wb_clobber_on_store -> "WB write-back data corrupted while a store is at MEM"
  | Bug_stall_corrupt -> "held instruction's rd flips bit 0 on stall"

let table1_row = function
  | Bug_add -> Some "ADD"
  | Bug_sub -> Some "SUB"
  | Bug_xor -> Some "XOR"
  | Bug_or -> Some "OR"
  | Bug_and -> Some "AND"
  | Bug_slt -> Some "SLT"
  | Bug_sltu -> Some "SLTU"
  | Bug_sra -> Some "SRA"
  | Bug_mulh -> Some "MULH"
  | Bug_xori -> Some "XORI"
  | Bug_slli -> Some "SLLI"
  | Bug_srai -> Some "SRAI"
  | Bug_sw -> Some "SW"
  | Bug_fwd_mem_rs1 | Bug_fwd_mem_rs2 | Bug_fwd_wb | Bug_fwd_priority
  | Bug_load_use_stall | Bug_wb_bypass | Bug_fwd_value | Bug_store_interference
  | Bug_wb_clobber_on_store | Bug_stall_corrupt ->
      None

let of_name n = List.find_opt (fun b -> name b = n) all

let is_single b = List.mem b all_single

let needs_m = function Bug_mulh -> true | _ -> false
