type 'a t = Ok of 'a | Unknown of string | Failed of string

type summary = { ok : int; unknown : int; failed : int; skipped : int }

let empty = { ok = 0; unknown = 0; failed = 0; skipped = 0 }

let count ?(skipped = 0) verdicts =
  List.fold_left
    (fun s v ->
      match v with
      | Ok _ -> { s with ok = s.ok + 1 }
      | Unknown _ -> { s with unknown = s.unknown + 1 }
      | Failed _ -> { s with failed = s.failed + 1 })
    { empty with skipped } verdicts

let add a b =
  {
    ok = a.ok + b.ok;
    unknown = a.unknown + b.unknown;
    failed = a.failed + b.failed;
    skipped = a.skipped + b.skipped;
  }

let degraded s = s.unknown > 0 || s.failed > 0

let exit_code s = if s.failed > 0 then 4 else if s.unknown > 0 then 3 else 0

let summary_line s =
  Printf.sprintf "%s: %d ok, %d unknown, %d failed, %d resumed"
    (if degraded s then "degraded" else "complete")
    s.ok s.unknown s.failed s.skipped
