module Metrics = Sqed_obs.Metrics

let m_injected = Metrics.counter "resil.faults_injected"

exception Injected of string

type schedule =
  | Nth of int                    (* fire on exactly the n-th check *)
  | Every of int * int            (* fire on the n-th, then every m-th *)
  | Prob of int * int ref         (* percent, mutable xorshift state *)

type site = { mutable count : int; mutable sched : schedule }

(* [armed] is the fast-path gate: a single load when injection is off.
   Everything behind it is mutex-protected because worker domains hit
   sites concurrently. *)
let armed = ref false
let mutex = Mutex.create ()
let sites : (string, site) Hashtbl.t = Hashtbl.create 7
let env_read = ref false

let parse_clause clause =
  match String.index_opt clause ':' with
  | None | Some 0 ->
      invalid_arg (Printf.sprintf "fault spec %S: want site:N" clause)
  | Some i ->
      let name = String.sub clause 0 i in
      let arg = String.sub clause (i + 1) (String.length clause - i - 1) in
      let fail () =
        invalid_arg
          (Printf.sprintf "fault spec %S: want N, N/M or pP@S" clause)
      in
      let sched =
        if String.length arg > 0 && arg.[0] = 'p' then
          match
            String.split_on_char '@'
              (String.sub arg 1 (String.length arg - 1))
          with
          | [ p; s ] -> (
              match (int_of_string_opt p, int_of_string_opt s) with
              | Some p, Some s when p >= 0 && p <= 100 ->
                  (* Mix the seed so seed 0 still produces a live state. *)
                  Prob (p, ref (s lxor 0x9E3779B9))
              | _ -> fail ())
          | _ -> fail ()
        else
          match String.split_on_char '/' arg with
          | [ n ] -> (
              match int_of_string_opt n with
              | Some n when n >= 1 -> Nth n
              | _ -> fail ())
          | [ n; m ] -> (
              match (int_of_string_opt n, int_of_string_opt m) with
              | Some n, Some m when n >= 1 && m >= 1 -> Every (n, m)
              | _ -> fail ())
          | _ -> fail ()
      in
      (name, sched)

let configure spec =
  let parsed =
    if String.trim spec = "" then []
    else
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map parse_clause
  in
  Mutex.lock mutex;
  Hashtbl.reset sites;
  List.iter
    (fun (name, sched) -> Hashtbl.replace sites name { count = 0; sched })
    parsed;
  armed := parsed <> [];
  env_read := true;
  Mutex.unlock mutex

let load_env () =
  if not !env_read then begin
    env_read := true;
    match Sys.getenv_opt "SEPE_FAULT" with
    | Some spec when String.trim spec <> "" -> configure spec
    | _ -> ()
  end

let active () =
  load_env ();
  !armed

(* Deterministic per-site xorshift for the probabilistic form. *)
let next_prob st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) in
  let x = x land 0x3FFFFFFF in
  st := x;
  x mod 100

let check name =
  if not !env_read then load_env ();
  if !armed then begin
    Mutex.lock mutex;
    let fire =
      match Hashtbl.find_opt sites name with
      | None -> false
      | Some s ->
          s.count <- s.count + 1;
          (match s.sched with
          | Nth n -> s.count = n
          | Every (n, m) -> s.count >= n && (s.count - n) mod m = 0
          | Prob (p, st) -> next_prob st < p)
    in
    if fire then Metrics.add_always m_injected 1;
    Mutex.unlock mutex;
    if fire then begin
      Sqed_obs.Log.warn "resil.fault.injected"
        [ ("site", Sqed_obs.Log.Str name) ];
      raise (Injected name)
    end
  end

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset sites;
  armed := false;
  env_read := true;
  Mutex.unlock mutex
