(** Crash-safe append-only checkpoint journal.

    One JSON object per line: [{"key": <string>, "result": <json>}].
    Appends are a single buffered write followed by a flush, so a crash
    can lose at most the line being written; {!load} silently discards
    a torn trailing line, which makes resume after [kill -9] safe.

    A journal is mutex-protected — worker-pool tasks may {!record}
    concurrently.  Keys are free-form; campaigns use stable per-case
    identifiers (e.g. ["fig3/ADD/hpf/1"]) so a rerun with the same
    [--checkpoint FILE] can skip completed cases via {!mem}. *)

type t

val open_ : string -> t
(** [open_ path] loads existing entries from [path] (if any) and opens
    it for appending.  Raises [Sys_error] when the file cannot be
    created or read. *)

val mem : t -> string -> bool
(** Has a result for this key been journaled (including by a previous
    process)? *)

val find : t -> string -> Sqed_obs.Json.t option
(** The journaled result for a key, if any (last write wins). *)

val record : t -> string -> Sqed_obs.Json.t -> unit
(** [record t key result] appends one line and flushes.  Checks the
    [checkpoint.write] fault site first, so injected faults fail the
    append {e before} the in-memory table is updated — callers catch,
    count, and continue. *)

val try_record : t -> string -> Sqed_obs.Json.t -> (unit, string) result
(** Like {!record} but degrades instead of raising: a failed append
    (injected fault or real write error) is counted under
    [resil.checkpoint.errors] and returned as [Error msg].  The result
    is simply not journaled — the campaign keeps its in-memory copy and
    a future resume recomputes the case. *)

val entries : t -> int
(** Number of distinct journaled keys. *)

val close : t -> unit
