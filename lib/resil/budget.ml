module Metrics = Sqed_obs.Metrics

let m_exhausted = Metrics.counter "resil.budget.exhausted"

type reason = Deadline | Conflicts | Cancelled

exception Exhausted of reason

type t = {
  mutable deadline : float;        (* absolute; [infinity] = uncapped *)
  mutable conflicts_left : int;    (* [max_int] = uncapped *)
  mutable ticks : int;             (* check calls since last clock sample *)
  mutable dead : reason option;    (* sticky once exhausted *)
  limited : bool;                  (* false only for [unlimited] *)
}

let unlimited =
  { deadline = infinity; conflicts_left = max_int; ticks = 0;
    dead = None; limited = false }

let create ?deadline ?max_conflicts () =
  match (deadline, max_conflicts) with
  | None, None -> unlimited
  | _ ->
      {
        deadline = Option.value deadline ~default:infinity;
        conflicts_left = Option.value max_conflicts ~default:max_int;
        ticks = 0;
        dead = None;
        limited = true;
      }

let is_unlimited b = not b.limited
let deadline b = b.deadline
let conflicts_remaining b = b.conflicts_left

let string_of_reason = function
  | Deadline -> "deadline"
  | Conflicts -> "conflicts"
  | Cancelled -> "cancelled"

(* Sample the clock once per [poll_mask + 1] checks: gettimeofday is a
   vDSO call (~20 ns) but check points sit inside per-gate loops. *)
let poll_mask = 255

let die b r =
  b.dead <- Some r;
  Metrics.add_always m_exhausted 1;
  (* Fires once per budget ([dead] is sticky and re-raises above), so an
     Info record here is cold. *)
  Sqed_obs.Log.info "resil.budget.exhausted"
    [ ("reason", Sqed_obs.Log.Str (string_of_reason r)) ];
  raise (Exhausted r)

let check b =
  if b.limited then begin
    (match b.dead with Some r -> raise (Exhausted r) | None -> ());
    if b.conflicts_left <= 0 then die b Conflicts;
    b.ticks <- b.ticks + 1;
    if
      b.ticks land poll_mask = 0
      && b.deadline < infinity
      && Unix.gettimeofday () > b.deadline
    then die b Deadline
  end

let over b =
  if not b.limited then None
  else
    match b.dead with
    | Some _ as r -> r
    | None ->
        if b.conflicts_left <= 0 then begin
          b.dead <- Some Conflicts;
          Some Conflicts
        end
        else if b.deadline < infinity && Unix.gettimeofday () > b.deadline
        then begin
          b.dead <- Some Deadline;
          Some Deadline
        end
        else None

let charge b n =
  if b.limited && b.conflicts_left <> max_int then
    b.conflicts_left <- (if n >= b.conflicts_left then 0 else b.conflicts_left - n)

let cancel b = if b.limited then b.dead <- Some Cancelled

(* Ambient per-domain budget, installed by Pool.map_result for soft
   per-task deadlines.  DLS so worker domains see their own binding. *)
let current_key = Domain.DLS.new_key (fun () -> unlimited)

let current () = Domain.DLS.get current_key

let with_current b f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key b;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f
