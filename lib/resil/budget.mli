(** Cooperative resource budgets.

    A budget bounds a unit of work by an absolute wall-clock deadline
    and/or a conflict cap.  Work that honors a budget calls {!check} at
    cooperative cancellation points (bit-blaster word loops, AIG
    conversion, preprocessing passes, CDCL restart/reduce boundaries);
    when the budget is exhausted, {!check} raises {!Exhausted} and the
    caller unwinds to a consistent state, typically reporting [Unknown]
    rather than an error.

    Budgets are deliberately cheap to poll: an unlimited budget costs a
    single boolean load per {!check}, and limited budgets sample the
    clock only every few hundred ticks.  A budget is single-owner
    mutable state — share one across domains only through
    {!with_current}, which binds it to the calling domain. *)

type reason =
  | Deadline   (** absolute wall-clock deadline passed *)
  | Conflicts  (** conflict cap consumed *)
  | Cancelled  (** explicitly cancelled via {!cancel} *)

exception Exhausted of reason
(** Raised by {!check} (and only by {!check}) once the budget is spent.
    Subsequent {!check} calls keep raising until the budget is replaced. *)

type t

val unlimited : t
(** The shared never-exhausted budget.  {!check} on it is a boolean
    load; it is never mutated and is safe to share freely. *)

val create : ?deadline:float -> ?max_conflicts:int -> unit -> t
(** [create ?deadline ?max_conflicts ()] makes a fresh budget.
    [deadline] is an absolute {!Unix.gettimeofday} timestamp;
    [max_conflicts] a total conflict allowance consumed via {!charge}.
    With neither limit, returns {!unlimited}. *)

val is_unlimited : t -> bool

val deadline : t -> float
(** Absolute deadline, or [infinity] when none. *)

val conflicts_remaining : t -> int
(** Remaining conflict allowance, or [max_int] when uncapped. *)

val check : t -> unit
(** Cooperative cancellation point.  Raises {!Exhausted} if the budget
    is spent; otherwise returns quickly.  The wall clock is sampled
    every few hundred calls, so place checks at loop granularity
    without worrying about syscall cost. *)

val over : t -> reason option
(** Non-raising poll: [Some r] once the budget is spent.  Unlike
    {!check} this always samples the clock, so reserve it for coarse
    boundaries (per preprocessing operation, per restart). *)

val charge : t -> int -> unit
(** [charge b n] consumes [n] conflicts from the cap (no-op when
    uncapped).  Does not raise; the next {!check} will. *)

val cancel : t -> unit
(** Marks the budget spent with reason {!Cancelled}. *)

val string_of_reason : reason -> string

(** {1 Per-domain task budgets}

    A worker pool can impose a soft per-task budget without threading a
    parameter through every layer: {!with_current} binds a budget to
    the current domain for the extent of a callback, and budget-aware
    code merges {!current} into its own limits. *)

val with_current : t -> (unit -> 'a) -> 'a
(** [with_current b f] runs [f] with [b] as the calling domain's
    ambient budget, restoring the previous binding on exit. *)

val current : unit -> t
(** The calling domain's ambient budget ({!unlimited} when none). *)
