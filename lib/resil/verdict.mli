(** Per-case campaign verdicts and degradation summaries.

    Campaigns (fig3, table1, verifier sweeps) report one verdict per
    case instead of dying on the first failure: [Ok] carries the case
    result, [Unknown] an inconclusive reason (budget exhausted, solver
    gave up), [Failed] a hard error (task crashed after retries).  A
    {!summary} aggregates the verdicts — plus cases skipped because a
    checkpoint journal already had them — into the one-line degradation
    report and the process exit code. *)

type 'a t =
  | Ok of 'a
  | Unknown of string  (** inconclusive: budget/deadline/gave up *)
  | Failed of string   (** hard failure: crashed after retries *)

type summary = { ok : int; unknown : int; failed : int; skipped : int }

val empty : summary

val count : ?skipped:int -> 'a t list -> summary

val add : summary -> summary -> summary

val degraded : summary -> bool
(** True when any case ended [Unknown] or [Failed]. *)

val exit_code : summary -> int
(** [0] clean, [3] degraded by [Unknown] only, [4] any [Failed] —
    distinct from cmdliner's 123–125 internal codes. *)

val summary_line : summary -> string
(** One-line degradation report, e.g.
    ["degraded: 6 ok, 1 unknown, 1 failed, 2 resumed"]. *)
