module Json = Sqed_obs.Json
module Metrics = Sqed_obs.Metrics
module Log = Sqed_obs.Log

let m_records = Metrics.counter "resil.checkpoint.records"
let m_resumed = Metrics.counter "resil.checkpoint.resumed"
let m_torn = Metrics.counter "resil.checkpoint.torn_lines"
let m_errors = Metrics.counter "resil.checkpoint.errors"

type t = {
  oc : out_channel;
  table : (string, Json.t) Hashtbl.t;
  mutex : Mutex.t;
}

let parse_line line =
  match Json.parse line with
  | Ok j -> (
      match (Json.member "key" j, Json.member "result" j) with
      | Some (Json.String k), Some r -> Some (k, r)
      | _ -> None)
  | Error _ -> None

let load_existing table path =
  let resumed = ref 0 and torn = ref 0 in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match parse_line line with
              | Some (k, r) ->
                  Hashtbl.replace table k r;
                  incr resumed;
                  Metrics.add_always m_resumed 1
              | None ->
                  (* Torn or corrupt line — a crash mid-append.  Only
                     the trailing line can legitimately be torn, but we
                     tolerate (and count) any bad line rather than
                     refuse to resume. *)
                  incr torn;
                  Metrics.add_always m_torn 1
          done
        with End_of_file -> ())
  end;
  (!resumed, !torn)

(* A crash can leave the file without a trailing newline (a torn last
   line); appending straight after it would fuse the next record onto
   the torn bytes and corrupt it too. *)
let ends_with_newline path =
  if not (Sys.file_exists path) then true
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        len = 0
        ||
        (seek_in ic (len - 1);
         input_char ic = '\n'))
  end

let open_ path =
  let table = Hashtbl.create 64 in
  let resumed, torn = load_existing table path in
  if torn > 0 then
    Log.warn "resil.checkpoint.torn"
      [ ("path", Log.Str path); ("lines", Log.I torn) ];
  if resumed > 0 then
    Log.info "resil.checkpoint.resumed"
      [ ("path", Log.Str path); ("entries", Log.I resumed) ];
  let fresh_line = ends_with_newline path in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  if not fresh_line then begin
    output_char oc '\n';
    flush oc
  end;
  { oc; table; mutex = Mutex.create () }

let mem t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.mem t.table key in
  Mutex.unlock t.mutex;
  r

let find t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  r

let record t key result =
  (* Fault site first: an injected append failure must leave the
     in-memory table unchanged, like a real write error would. *)
  Fault.check "checkpoint.write";
  let line =
    Json.to_string (Json.Obj [ ("key", Json.String key); ("result", result) ])
  in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      (* One write + flush per line: with O_APPEND a line this short is
         atomic in practice, and flushing bounds loss to the last line. *)
      output_string t.oc (line ^ "\n");
      flush t.oc;
      Hashtbl.replace t.table key result;
      Metrics.add_always m_records 1)

let try_record t key result =
  match record t key result with
  | () -> Ok ()
  | exception e ->
      Metrics.add_always m_errors 1;
      Log.warn "resil.checkpoint.write_failed"
        [ ("key", Log.Str key); ("error", Log.Str (Printexc.to_string e)) ];
      Error (Printexc.to_string e)

let entries t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let close t =
  Mutex.lock t.mutex;
  close_out_noerr t.oc;
  Mutex.unlock t.mutex
