(** Deterministic fault injection.

    Named injection sites are compiled into the stack at negligible
    cost (a single boolean load when injection is disarmed).  A fault
    spec arms chosen sites; the [n]-th {!check} of an armed site raises
    {!Injected}, letting tests and operators prove that campaigns
    degrade — partial tables, [Failed] verdicts — instead of crashing.

    Current sites: [pool.task] (before a pool task body runs),
    [sat.solve] (SAT solve entry), [smt.bitblast] (bit-blaster entry),
    [checkpoint.write] (journal append).

    Spec grammar (comma-separated clauses):
    - [site:N]      — fire on exactly the [N]-th check of [site] (1-based)
    - [site:N/M]    — fire on the [N]-th, then every [M]-th check after
    - [site:pP@S]   — fire each check with probability [P]% using a
                      deterministic per-site generator seeded with [S]

    The spec comes from the [SEPE_FAULT] environment variable (read on
    first use) or from {!configure} ([--fault-inject] on the CLIs);
    {!configure} overrides the environment.  Counters are per-site and
    mutex-protected, so determinism of [site:N] holds across worker
    domains for the total order of checks, though which task observes
    the [N]-th check depends on scheduling. *)

exception Injected of string
(** [Injected site] — the simulated fault.  Deliberately deterministic:
    retry layers must treat it as a persistent failure, not transient. *)

val configure : string -> unit
(** Arm sites from a spec string; [""] disarms everything.  Raises
    [Invalid_argument] on a malformed spec. *)

val active : unit -> bool
(** True when any site is armed. *)

val check : string -> unit
(** [check site] — injection point.  Raises {!Injected} when the armed
    schedule for [site] says this call fails; otherwise a cheap no-op. *)

val reset : unit -> unit
(** Disarm all sites and zero the per-site counters (also forgets the
    [SEPE_FAULT] spec for the rest of the process). *)
