(* Post-run check for the @bench-smoke alias: parse the JSON summary the
   bench harness just wrote (with the checked parser — the same one that
   validates trace exports) and assert that the SAT preprocessor actually
   ran and did real work during the experiment.  This is the guard that
   keeps the `simplify` plumbing honest end-to-end: if the default ever
   silently flips off, or the counters stop being published, the smoke
   alias fails instead of the regression surfacing as a mystery slowdown
   in a full bench run. *)

module Json = Sqed_obs.Json

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n" name
  else begin
    Printf.printf "FAIL %s\n" name;
    incr failures
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_sepe.json" in
  match Json.parse (read_file path) with
  | Error e ->
      Printf.printf "FAIL %s does not parse: %s\n" path e;
      exit 1
  | Ok j ->
      check "summary records simplify=true"
        (Json.member "simplify" j = Some (Json.Bool true));
      check "summary records aig=true"
        (Json.member "aig" j = Some (Json.Bool true));
      let counter name =
        Option.bind (Json.member "metrics" j) (fun m ->
            Option.bind (Json.member "counters" m) (fun c ->
                Option.bind (Json.member name c) Json.to_int_opt))
      in
      List.iter
        (fun name ->
          check
            (Printf.sprintf "counter %s > 0" name)
            (match counter name with Some v -> v > 0 | None -> false))
        [
          "sat.simplify.passes"; "sat.simplify.eliminated_vars";
          (* The AIG gate layer is on by default: nodes were built, the
             structural hash answered repeats, and polarity-aware
             conversion skipped clause halves. *)
          "smt.aig.nodes"; "smt.aig.struct_hits"; "smt.aig.rewrites";
          "smt.aig.pg_skipped_clauses";
        ];
      (* The resilience layer's counters must be published even when the
         run was clean (value 0): operators grep for them to tell "no
         retries happened" from "retry accounting fell off". *)
      List.iter
        (fun name ->
          check
            (Printf.sprintf "counter %s present" name)
            (counter name <> None))
        [
          "resil.retries"; "resil.task_failures"; "resil.tasks_skipped";
          "resil.faults_injected"; "resil.budget.exhausted";
          "resil.checkpoint.records";
        ];
      (match Json.member "experiments" j with
      | Some (Json.List (_ :: _)) -> check "at least one experiment record" true
      | _ -> check "at least one experiment record" false);
      if !failures > 0 then begin
        Printf.printf "bench-smoke check: %d failure(s)\n" !failures;
        exit 1
      end;
      print_endline "bench-smoke check: all checks passed"
