(* Post-run check for the @bench-smoke alias: parse the JSON summary the
   bench harness just wrote (with the checked parser — the same one that
   validates trace exports) and assert that the SAT preprocessor actually
   ran and did real work during the experiment.  This is the guard that
   keeps the `simplify` plumbing honest end-to-end: if the default ever
   silently flips off, or the counters stop being published, the smoke
   alias fails instead of the regression surfacing as a mystery slowdown
   in a full bench run. *)

module Json = Sqed_obs.Json

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n" name
  else begin
    Printf.printf "FAIL %s\n" name;
    incr failures
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --report mode, used by the @report-smoke alias: validate the flight
   recorder's artifacts — the run.json sidecar, the JSONL event log and
   (optionally) the standalone metrics snapshot — all through the same
   checked parser.  The counter assertions pin the recorder's plumbing:
   if log records stop reaching the ring, the sampler stops firing, or
   the trace drop counter is unregistered, this fails in CI rather than
   leaving silent holes in every future report. *)
let check_report run_json log_jsonl metrics_json =
  (match Json.parse (read_file run_json) with
  | Error e ->
      Printf.printf "FAIL %s does not parse: %s\n" run_json e;
      incr failures
  | Ok j ->
      check "run.json schema is sepe.flight/1"
        (Json.member "schema" j = Some (Json.String "sepe.flight/1"));
      check "run.json records wall_s > 0"
        (match Option.bind (Json.member "wall_s" j) Json.to_float_opt with
        | Some w -> w > 0.0
        | None -> false);
      let counter name =
        Option.bind (Json.member "metrics" j) (fun m ->
            Option.bind (Json.member "counters" m) (fun c ->
                Option.bind (Json.member name c) Json.to_int_opt))
      in
      List.iter
        (fun name ->
          check
            (Printf.sprintf "counter %s > 0" name)
            (match counter name with Some v -> v > 0 | None -> false))
        [ "obs.log.records"; "obs.sampler.samples" ];
      (* Present even at 0: a clean run drops nothing, but the counters
         must stay published so drop spikes are visible when they come. *)
      List.iter
        (fun name ->
          check (Printf.sprintf "counter %s present" name)
            (counter name <> None))
        [ "obs.trace.dropped"; "obs.log.dropped" ];
      let nonempty_list name =
        match Json.member name j with
        | Some (Json.List (_ :: _)) -> true
        | _ -> false
      in
      check "sampler recorded at least one domain series"
        (match Option.bind (Json.member "samples" j) (Json.member "domains") with
        | Some (Json.List (d :: _)) -> (
            match Json.member "samples" d with
            | Some (Json.List (_ :: _)) -> true
            | _ -> false)
        | _ -> false);
      check "per-case verdict rows present" (nonempty_list "cases");
      check "log tail embedded" (nonempty_list "log_tail"));
  (* Every line of the JSONL sink must re-parse and carry the record
     envelope. *)
  let lines =
    String.split_on_char '\n' (read_file log_jsonl)
    |> List.filter (fun l -> String.trim l <> "")
  in
  check "JSONL log is non-empty" (lines <> []);
  List.iteri
    (fun i line ->
      match Json.parse line with
      | Error e ->
          check (Printf.sprintf "log line %d parses (%s)" (i + 1) e) false
      | Ok j ->
          check
            (Printf.sprintf "log line %d has ts_us/level/ev" (i + 1))
            (Json.member "ts_us" j <> None
            && Json.member "level" j <> None
            && Json.member "ev" j <> None))
    lines;
  (match metrics_json with
  | None -> ()
  | Some path -> (
      match Json.parse (read_file path) with
      | Ok _ -> check "metrics snapshot parses" true
      | Error e ->
          Printf.printf "FAIL %s does not parse: %s\n" path e;
          incr failures));
  if !failures > 0 then begin
    Printf.printf "report-smoke check: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "report-smoke check: all checks passed"

(* --portfolio mode, used by the @portfolio-smoke alias: after a
   `fig3 --fast --portfolio 2` run (witness BMC on), assert through the
   run.json sidecar that the portfolio actually raced — solves and
   workers counted, clauses exported into the exchange — and through the
   full JSONL stream (run.json only embeds a tail) that the per-worker
   flight-recorder events were emitted.  This pins the whole dispatch
   chain: flag -> Solver.create -> BMC depth gate -> Portfolio.solve ->
   counters/events. *)
let check_portfolio run_json log_jsonl =
  (match Json.parse (read_file run_json) with
  | Error e ->
      Printf.printf "FAIL %s does not parse: %s\n" run_json e;
      incr failures
  | Ok j ->
      let counter name =
        Option.bind (Json.member "metrics" j) (fun m ->
            Option.bind (Json.member "counters" m) (fun c ->
                Option.bind (Json.member name c) Json.to_int_opt))
      in
      List.iter
        (fun name ->
          check
            (Printf.sprintf "counter %s > 0" name)
            (match counter name with Some v -> v > 0 | None -> false))
        [
          "sat.portfolio.solves"; "sat.portfolio.workers";
          "sat.portfolio.exported"; "sat.portfolio.wins";
        ];
      (* Published even at 0, so sharing regressions stay visible. *)
      List.iter
        (fun name ->
          check
            (Printf.sprintf "counter %s present" name)
            (counter name <> None))
        [ "sat.portfolio.imported"; "sat.portfolio.banked";
          "sat.portfolio.cancelled" ]);
  let lines =
    String.split_on_char '\n' (read_file log_jsonl)
    |> List.filter (fun l -> String.trim l <> "")
  in
  let has_event name =
    List.exists
      (fun line ->
        match Json.parse line with
        | Ok j -> Json.member "ev" j = Some (Json.String name)
        | Error _ -> false)
      lines
  in
  check "portfolio.worker.start events logged" (has_event "portfolio.worker.start");
  check "a worker verdict event logged"
    (has_event "portfolio.worker.won"
    || has_event "portfolio.worker.cancelled"
    || has_event "portfolio.worker.exhausted");
  if !failures > 0 then begin
    Printf.printf "portfolio-smoke check: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "portfolio-smoke check: all checks passed"

(* --ledger mode, used by the @history-smoke alias: after bench runs have
   appended to a run ledger, re-read it line by line with the checked
   parser and assert every entry carries the sepe.ledger/1 envelope —
   schema tag, provenance block (commit, host, cores, compiler, the
   compat-gating config) and an embedded run payload — and that the file
   holds at least the expected number of entries.  Then corrupt a copy
   with a torn trailing line (the crash the append discipline is designed
   to survive) and assert History.load drops exactly that line while
   keeping every intact entry. *)
let check_ledger path min_entries =
  let module History = Sqed_obs.History in
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  check
    (Printf.sprintf "ledger holds >= %d entries (got %d)" min_entries
       (List.length lines))
    (List.length lines >= min_entries);
  List.iteri
    (fun i line ->
      let tag name ok = check (Printf.sprintf "entry %d %s" (i + 1) name) ok in
      match Json.parse line with
      | Error e -> tag (Printf.sprintf "parses (%s)" e) false
      | Ok j ->
          tag "schema is sepe.ledger/1"
            (Json.member "schema" j = Some (Json.String History.schema));
          tag "has kind/label/recorded_unix_s"
            (Json.member "kind" j <> None
            && Json.member "label" j <> None
            && Json.member "recorded_unix_s" j <> None);
          let prov = Json.member "provenance" j in
          tag "provenance fields present"
            (List.for_all
               (fun f -> Option.bind prov (Json.member f) <> None)
               [ "git_commit"; "hostname"; "cores"; "ocaml"; "config" ]);
          tag "config carries the compat-gate keys"
            (List.for_all
               (fun f ->
                 Option.bind prov (fun p ->
                     Option.bind (Json.member "config" p) (Json.member f))
                 <> None)
               [ "jobs"; "fast"; "simplify"; "aig"; "portfolio" ]);
          tag "embeds a run payload"
            (match Json.member "run" j with
            | Some (Json.Obj _) -> true
            | _ -> false))
    lines;
  let loaded = History.load path in
  check "History.load keeps every intact line"
    (List.length loaded.History.entries = List.length lines
    && loaded.History.dropped = 0);
  (* Torn-line rejection: a crash mid-append leaves a partial line. *)
  let torn = path ^ ".torn" in
  let oc = open_out_bin torn in
  output_string oc (read_file path);
  output_string oc "{\"schema\":\"sepe.ledger/1\",\"kind\":\"ben";
  close_out oc;
  let reloaded = History.load torn in
  check "torn trailing line is dropped, intact entries survive"
    (List.length reloaded.History.entries = List.length lines
    && reloaded.History.dropped = 1);
  if !failures > 0 then begin
    Printf.printf "history-smoke check: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "history-smoke check: all checks passed"

let () =
  if Array.length Sys.argv > 2 && Sys.argv.(1) = "--ledger" then begin
    let min_entries =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 1
    in
    check_ledger Sys.argv.(2) min_entries;
    exit 0
  end;
  if Array.length Sys.argv > 3 && Sys.argv.(1) = "--portfolio" then begin
    check_portfolio Sys.argv.(2) Sys.argv.(3);
    exit 0
  end;
  if Array.length Sys.argv > 3 && Sys.argv.(1) = "--report" then begin
    let metrics =
      if Array.length Sys.argv > 4 then Some Sys.argv.(4) else None
    in
    check_report Sys.argv.(2) Sys.argv.(3) metrics;
    exit 0
  end;
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_sepe.json" in
  match Json.parse (read_file path) with
  | Error e ->
      Printf.printf "FAIL %s does not parse: %s\n" path e;
      exit 1
  | Ok j ->
      check "summary records simplify=true"
        (Json.member "simplify" j = Some (Json.Bool true));
      check "summary records aig=true"
        (Json.member "aig" j = Some (Json.Bool true));
      let counter name =
        Option.bind (Json.member "metrics" j) (fun m ->
            Option.bind (Json.member "counters" m) (fun c ->
                Option.bind (Json.member name c) Json.to_int_opt))
      in
      List.iter
        (fun name ->
          check
            (Printf.sprintf "counter %s > 0" name)
            (match counter name with Some v -> v > 0 | None -> false))
        [
          "sat.simplify.passes"; "sat.simplify.eliminated_vars";
          (* The AIG gate layer is on by default: nodes were built, the
             structural hash answered repeats, and polarity-aware
             conversion skipped clause halves. *)
          "smt.aig.nodes"; "smt.aig.struct_hits"; "smt.aig.rewrites";
          "smt.aig.pg_skipped_clauses";
          (* Guards the sampler blind spot: bench keeps the sampler on
             whenever metrics are, and the first-poll fallback means even
             a short run records at least one sample.  A zero here means
             the time-series layer silently died. *)
          "obs.sampler.samples";
        ];
      (* The resilience layer's counters must be published even when the
         run was clean (value 0): operators grep for them to tell "no
         retries happened" from "retry accounting fell off". *)
      List.iter
        (fun name ->
          check
            (Printf.sprintf "counter %s present" name)
            (counter name <> None))
        [
          "resil.retries"; "resil.task_failures"; "resil.tasks_skipped";
          "resil.faults_injected"; "resil.budget.exhausted";
          "resil.checkpoint.records";
        ];
      (match Json.member "experiments" j with
      | Some (Json.List (_ :: _)) -> check "at least one experiment record" true
      | _ -> check "at least one experiment record" false);
      if !failures > 0 then begin
        Printf.printf "bench-smoke check: %d failure(s)\n" !failures;
        exit 1
      end;
      print_endline "bench-smoke check: all checks passed"
