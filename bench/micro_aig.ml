(* Microbenchmark of the bit-blaster's encoding backends, run by the
   @bench-micro alias: AIG construction + polarity-aware CNF conversion
   vs direct Tseitin emission, on a fixed adder/shifter/multiplier
   workload (no SAT solving — this isolates the encoder, so a regression
   in gate construction is caught without a full fig3 run).

   Prints Bechamel OLS estimates (ns/run) for both backends and their
   ratio; exits nonzero only if a backend fails to encode. *)

module Term = Sqed_smt.Term
module Solver = Sqed_smt.Solver

(* One run = blast a 32-bit adder/shifter cone and assert it.  The shape
   mirrors what the CEGIS queries emit: shared adder chains feeding
   shifters and comparators. *)
let workload ~aig () =
  let s = Solver.create ~simplify:false ~aig () in
  let x = Term.var "mb_x" 32 and y = Term.var "mb_y" 32 in
  let sum = Term.add (Term.add x y) (Term.sub y x) in
  let sh = Term.lshr (Term.shl sum (Term.of_int ~width:32 3)) y in
  let rhs = Term.add y (Term.shl x y) in
  Solver.assert_ s (Term.eq sh rhs);
  Solver.assert_ s (Term.ult (Term.add sh rhs) (Term.mul sum y));
  ignore (Solver.num_clauses s)

let () =
  (* Both backends must at least encode the workload. *)
  workload ~aig:true ();
  workload ~aig:false ();
  let open Bechamel in
  let tests =
    [
      ("aig", Test.make ~name:"blast: aig" (Staged.stage (workload ~aig:true)));
      ( "direct",
        Test.make ~name:"blast: direct tseitin"
          (Staged.stage (workload ~aig:false)) );
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 1.5) ~kde:(Some 300) ()
  in
  let results =
    List.map
      (fun (key, test) ->
        let t = List.hd (Test.elements test) in
        let m = Benchmark.run cfg [ instance ] t in
        let est = Analyze.one ols instance m in
        let ns =
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> ns
          | _ -> nan
        in
        Printf.printf "  %-32s %12.0f ns/run\n%!" (Test.Elt.name t) ns;
        (key, ns))
      tests
  in
  let aig = List.assoc "aig" results and direct = List.assoc "direct" results in
  if Float.is_nan aig || Float.is_nan direct then
    Printf.printf "  (no ratio: missing estimate)\n"
  else Printf.printf "  aig/direct encode-time ratio: %.2f\n" (aig /. direct)
