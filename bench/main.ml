(* Experiment harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index), plus Bechamel
   micro-benchmarks of the substrates.

     dune exec bench/main.exe                 -- everything (E1-E4 + micro)
     dune exec bench/main.exe -- fig3         -- one experiment
     dune exec bench/main.exe -- table1 --fast --jobs 4

   Wall-clock seconds are reported for the heavyweight experiments (each
   cell is one solver campaign, not a repeatable microbenchmark); micro
   uses Bechamel's OLS estimator.

   The synthesis campaign (fig3) and the per-bug BMC campaign (table1)
   fan their independent cells out over a Sqed_par.Pool of --jobs worker
   domains (default: the SEPE_JOBS environment knob, then the machine's
   core count).  Cells are fully independent (each owns its solvers and
   its domain-local term universe), so results are identical for every
   jobs value; only the wall clock changes.

   A machine-readable summary of every experiment run is written to
   BENCH_sepe.json (--json PATH overrides the location). *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module V = Sepe_sqed.Verifier
module Synth = Sqed_synth
module Trace = Sqed_bmc.Trace
module Pool = Sqed_par.Pool
module Metrics = Sqed_obs.Metrics
module Span = Sqed_obs.Trace

module Journal = Sqed_resil.Journal
module Verdict = Sqed_resil.Verdict
module Obs_log = Sqed_obs.Log
module Sampler = Sqed_obs.Sampler
module Progress = Sqed_obs.Progress
module Report = Sqed_obs.Report

let fast = ref false
let jobs = ref 0 (* 0 = Pool.default_jobs () *)
let json_path = ref "BENCH_sepe.json"
let metrics_on = ref true (* --no-metrics opts out *)
let trace_path = ref None
let metrics_json_path = ref None
let log_path = ref None (* --log FILE|-: JSONL event log *)
let report_path = ref None (* --report FILE: HTML report + run.json *)
let checkpoint = ref None (* --checkpoint FILE: journal + resume fig3/table1 *)
let ledger_path = ref None (* --ledger FILE: append this run to the ledger *)
let baseline_path = ref None (* --baseline FILE: gate against ledger history *)
let baseline_window = ref 20 (* --baseline-window N: history entries used *)
let baseline_k = ref 4.0 (* --baseline-k K: MAD multiplier of the band *)

(* --handicap F: sleep F x the measured wall inside every experiment
   timer, inflating br_wall deterministically.  Exists purely to let CI
   demonstrate the regression sentinel trips: a handicapped run against
   an honest baseline must exit with the regression code. *)
let handicap = ref 0.0
let line = String.make 72 '-'

(* Aggregated campaign verdicts across every experiment run this
   invocation; a degraded campaign turns into a nonzero exit at the end
   (after the JSON/trace artifacts are written). *)
let campaign = ref Verdict.empty

let note_summary s = campaign := Verdict.add !campaign s

let section title = Printf.printf "\n%s\n%s\n%s\n%!" line title line

let jobs_used () = if !jobs > 0 then !jobs else Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Machine-readable results: one record per experiment run             *)
(* ------------------------------------------------------------------ *)

type bench_record = {
  br_name : string;
  br_wall : float;  (** wall-clock seconds for the whole experiment *)
  br_clauses : int;  (** problem clauses across all solver instances *)
  br_conflicts : int;  (** SAT conflicts across all solver instances *)
}

let records : bench_record list ref = ref []

module Json = Sqed_obs.Json
module History = Sqed_obs.History
module Diff = Sqed_obs.Diff

(* The solver-configuration stamp: two runs are only comparable when
   these knobs match, so the ledger carries them in provenance and the
   sentinel filters its baseline through them. *)
let config_json () =
  [
    ("jobs", Json.Int (jobs_used ()));
    ("fast", Json.Bool !fast);
    ("simplify", Json.Bool !Sqed_smt.Solver.simplify_default);
    ("aig", Json.Bool !Sqed_smt.Solver.aig_default);
    ("portfolio", Json.Int !Sqed_smt.Solver.portfolio_default);
    ( "portfolio_deterministic",
      Json.Bool !Sqed_smt.Solver.portfolio_deterministic_default );
  ]

let bench_payload () =
  let experiments =
    List.rev_map
      (fun r ->
        Json.Obj
          [
            ("name", Json.String r.br_name);
            ("wall_s", Json.Float r.br_wall);
            ("clauses", Json.Int r.br_clauses);
            ("conflicts", Json.Int r.br_conflicts);
          ])
      !records
  in
  Json.Obj
    (config_json ()
    @ [
        ("experiments", Json.List experiments);
        ("metrics", Metrics.to_json ());
      ])

let write_json payload =
  let oc = open_out !json_path in
  output_string oc (Json.to_string payload);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" !json_path

(* Run one experiment inside a span, attributing the global SAT clause and
   conflict counters to it by delta.  The registry aggregates across every
   solver instance on every domain, which is what makes the totals real —
   synthesis experiments burn their SAT work inside per-candidate solvers
   that are discarded immediately.  The record is written (and the span
   closed) even if the experiment raises. *)
let timed name f =
  let t0 = Unix.gettimeofday () in
  let c0 = Metrics.find_counter "sat.clauses" in
  let k0 = Metrics.find_counter "sat.conflicts" in
  Fun.protect
    ~finally:(fun () ->
      (* Deliberate slowdown for sentinel testing: stretch the wall by
         the handicap factor before the record is cut. *)
      if !handicap > 0.0 then
        Unix.sleepf (!handicap *. (Unix.gettimeofday () -. t0));
      records :=
        {
          br_name = name;
          br_wall = Unix.gettimeofday () -. t0;
          br_clauses = Metrics.find_counter "sat.clauses" - c0;
          br_conflicts = Metrics.find_counter "sat.conflicts" - k0;
        }
        :: !records)
    (fun () -> Span.with_span_named ~cat:"bench" ("bench." ^ name) f)

(* ------------------------------------------------------------------ *)
(* E1 / Fig. 3: synthesis time, HPF-CEGIS vs iterative CEGIS           *)
(* ------------------------------------------------------------------ *)

(* The experiment itself lives in Sqed_exp.Fig3, shared with the
   `sepe fig3` subcommand; the bench keeps the witness phase off so the
   workload matches earlier bench runs. *)
let fig3 () =
  note_summary
    (Sqed_exp.Fig3.run ~fast:!fast ~jobs:(jobs_used ()) ~witness:false
       ?checkpoint:!checkpoint ())

(* ------------------------------------------------------------------ *)
(* E2 / Table 1: injected single-instruction bugs                      *)
(* ------------------------------------------------------------------ *)

let bug_config bug base =
  if Bug.needs_m bug then { base with Config.ext_m = true } else base

let sepe_min_depth cfg bug =
  match V.min_cex_depth ~method_:V.Sepe_sqed ~bug cfg with
  | Some d -> d
  | None -> 1

let table1_focus bug =
  Option.bind (Bug.table1_row bug) (fun row ->
      match
        List.find_opt (fun op -> Sqed_isa.Insn.rop_name op = row)
          Sqed_isa.Insn.all_rops
      with
      | Some op -> Some (Sqed_qed.Equiv_table.Kr op)
      | None -> (
          match
            List.find_opt (fun op -> Sqed_isa.Insn.iop_name op = row)
              Sqed_isa.Insn.all_iops
          with
          | Some op -> Some (Sqed_qed.Equiv_table.Ki op)
          | None -> if row = "SW" then Some Sqed_qed.Equiv_table.Ksw else None))

let table1 () =
  section
    "Table 1 - injected single-instruction bugs\n\
     (SEPE-SQED detects each; SQED, checked at the same depth with more \
     time, reports nothing)";
  let base = Config.tiny in
  let budget = if !fast then 120.0 else 600.0 in
  Printf.printf
    "core: %s (+m for MULH); budget %.0fs/cell.\n\
     The [bad] state is persistent (idle inputs freeze a violated state),\n\
     so one SAT query at depth D witnesses the bug and one UNSAT query at\n\
     depth D covers every depth <= D.\n\n"
    (Config.to_string base) budget;
  Printf.printf "%-6s | %-42s | %-16s | %s\n" "Type" "Function" "SEPE-SQED"
    "SQED";
  Printf.printf "%s\n" line;
  (* One pool task per injected bug; each task runs the full SEPE-SQED
     cell then its SQED control sequentially (the SQED budget depends on
     the SEPE trace).  Rows print in table order once all bugs finish. *)
  let run_bug bug =
      let cfg = bug_config bug base in
      let min_depth = sepe_min_depth cfg bug in
      (* Short equivalent sequences: incremental sweep from just below the
         class minimum (finds the shortest trace; the intermediate UNSAT
         depths are cheap).  Long sequences (MULH): one SAT query above
         the minimum, avoiding the expensive deep UNSAT sweep — sound by
         bad-persistence. *)
      (* Witness (SAT) queries may soundly focus the original-instruction
         stream on the mutated class. *)
      let focus = table1_focus bug in
      let sepe =
        if min_depth <= 10 then
          V.run ~bug ?focus ~method_:V.Sepe_sqed ~bound:(min_depth + 4)
            ~start_bound:(max 1 (min_depth - 2))
            ~time_budget:budget cfg
        else
          (* The witness query for a 7-instruction sequence over the
             multiplier is the hardest cell of the table (the paper's
             slowest row too); start exactly at the class minimum and
             give it a triple budget. *)
          V.run ~bug ?focus ~method_:V.Sepe_sqed ~bound:(min_depth + 4)
            ~start_bound:min_depth ~time_budget:(3.0 *. budget) cfg
      in
      let sepe_cell, sqed_bound, sqed_budget =
        match V.trace sepe with
        | Some t ->
            ( Printf.sprintf "%.2fs (d%s%d)"
                sepe.V.stats.Sqed_bmc.Engine.solve_time
                (if min_depth <= 10 then "=" else "<=")
                t.Trace.length,
              (* Cap the SQED sweep at a comparable shallow depth; beyond
                 the class minimum EDDI UNSAT proofs explode and add no
                 information. *)
              min t.Trace.length 9,
              Float.max 180.0 (3.0 *. sepe.V.stats.Sqed_bmc.Engine.solve_time)
            )
        | None -> (V.outcome_to_string sepe, 8, budget)
      in
      let sqed =
        V.run ~bug ~method_:V.Sqed ~bound:sqed_bound ~start_bound:6
          ~time_budget:sqed_budget cfg
      in
      let sqed_cell =
        if V.detected sqed then
          Printf.sprintf "DETECTED?! %.2fs"
            sqed.V.stats.Sqed_bmc.Engine.solve_time
        else
          match sqed.V.outcome with
          | Sqed_bmc.Engine.No_counterexample ->
              Printf.sprintf "-  (clean to d=%d)" sqed_bound
          | Sqed_bmc.Engine.Gave_up k ->
              let why =
                match sqed.V.stats.Sqed_bmc.Engine.gave_up with
                | Some r -> Sqed_resil.Budget.string_of_reason r
                | None -> "budget"
              in
              Printf.sprintf "-  (%s at d=%d)" why k
          | Sqed_bmc.Engine.Counterexample _ -> assert false
      in
      Printf.sprintf "%-6s | %-42s | %-16s | %s"
        (match Bug.table1_row bug with Some r -> r | None -> "?")
        (Bug.describe bug) sepe_cell sqed_cell
  in
  let bugs =
    if !fast then [ Bug.Bug_add; Bug.Bug_xor; Bug.Bug_sw ]
    else Bug.all_single
  in
  (* Supervised fan-out with checkpoint/resume, like fig3: journaled rows
     are reprinted verbatim, a failed bug degrades to one marked row. *)
  let key bug = "table1/" ^ Bug.name bug in
  let journal = Option.map Journal.open_ !checkpoint in
  let resumed_rows =
    match journal with
    | None -> []
    | Some j ->
        List.filter_map
          (fun bug ->
            Option.map
              (fun row -> (bug, row))
              (Option.bind (Journal.find j (key bug))
                 Sqed_obs.Json.to_string_opt))
          bugs
  in
  if resumed_rows <> [] then
    Printf.printf "checkpoint: resuming, %d of %d rows already journaled\n%!"
      (List.length resumed_rows) (List.length bugs);
  let to_run =
    List.filter (fun bug -> not (List.mem_assoc bug resumed_rows)) bugs
  in
  let run_bug bug =
    let row = run_bug bug in
    (match journal with
    | Some j -> (
        match Journal.try_record j (key bug) (Sqed_obs.Json.String row) with
        | Ok () -> ()
        | Error msg ->
            Printf.printf "checkpoint: write failed for %s (%s); continuing\n%!"
              (key bug) msg)
    | None -> ());
    row
  in
  let outcomes =
    Progress.with_campaign ~task_budget:budget ~jobs:(jobs_used ())
      ~total:(List.length to_run) "table1" (fun () ->
        Pool.with_pool ~jobs:(jobs_used ()) (fun p ->
            Pool.map_result p run_bug to_run))
  in
  let computed = List.combine to_run outcomes in
  let verdicts =
    List.filter_map
      (fun bug ->
        match List.assoc_opt bug computed with
        | None ->
            Printf.printf "%s\n" (List.assoc bug resumed_rows);
            None
        | Some (Ok row) ->
            Printf.printf "%s\n" row;
            Some (Verdict.Ok ())
        | Some (Error (e : Pool.task_error)) ->
            let msg =
              Printf.sprintf "%s (attempts: %d)" e.Pool.error e.Pool.attempts
            in
            Printf.printf "%-6s | %-42s | %s\n"
              (match Bug.table1_row bug with Some r -> r | None -> "?")
              (Bug.describe bug)
              ((if e.Pool.exhausted then "UNKNOWN: " else "FAILED: ") ^ msg);
            Some (if e.Pool.exhausted then Verdict.Unknown msg
                  else Verdict.Failed msg))
      bugs
  in
  Option.iter Journal.close journal;
  let summary = Verdict.count ~skipped:(List.length resumed_rows) verdicts in
  if Verdict.degraded summary || summary.Verdict.skipped > 0 then
    Printf.printf "%s\n%!" (Verdict.summary_line summary);
  note_summary summary

(* ------------------------------------------------------------------ *)
(* E3 / Fig. 4: multiple-instruction bugs                              *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section
    "Fig. 4 - multiple-instruction bugs: detection time and counterexample \
     length,\nSQED vs SEPE-SQED (both detect; ratios > 1 favour SEPE-SQED)";
  let base = Config.tiny in
  let bound = 14 in
  let budget = if !fast then 180.0 else 900.0 in
  Printf.printf "core: %s; BMC bound %d; budget %.0fs/cell\n\n"
    (Config.to_string base) bound budget;
  Printf.printf "%-18s %14s %14s %9s %9s\n" "bug" "SQED s(len)" "SEPE s(len)"
    "t-ratio" "len-ratio";
  let cell r =
    match V.trace r with
    | Some t ->
        ( Printf.sprintf "%8.2f(%2d)" r.V.stats.Sqed_bmc.Engine.solve_time
            t.Trace.length,
          Some (r.V.stats.Sqed_bmc.Engine.solve_time, t.Trace.length) )
    | None ->
        ( (match r.V.outcome with
          | Sqed_bmc.Engine.Gave_up _ -> "  gave-up"
          | _ -> "    clean"),
          None )
  in
  let bugs =
    if !fast then [ Bug.Bug_fwd_mem_rs1; Bug.Bug_load_use_stall ]
    else Bug.all_multi
  in
  List.iter
    (fun bug ->
      let cfg = bug_config bug base in
      let sqed = V.run ~bug ~method_:V.Sqed ~bound ~time_budget:budget cfg in
      let sepe =
        V.run ~bug ~method_:V.Sepe_sqed ~bound ~time_budget:budget cfg
      in
      let c1, m1 = cell sqed and c2, m2 = cell sepe in
      let ratios =
        match (m1, m2) with
        | Some (t1, l1), Some (t2, l2) ->
            Printf.sprintf "%9.2f %9.2f" (t1 /. t2)
              (Float.of_int l1 /. Float.of_int l2)
        | _ -> ""
      in
      Printf.printf "%-18s %14s %14s %s\n%!" (Bug.name bug) c1 c2 ratios)
    bugs

(* ------------------------------------------------------------------ *)
(* E4: classical CEGIS fails within budget                             *)
(* ------------------------------------------------------------------ *)

let classical () =
  section
    "E4 - classical (whole-library) CEGIS baseline\n\
     (paper: failed to synthesize a single instruction after several weeks)";
  let budget = if !fast then 30.0 else 120.0 in
  let options =
    {
      Synth.Engine.default_options with
      Synth.Engine.time_budget = Some budget;
      config =
        {
          Synth.Cegis.default_config with
          Synth.Cegis.xlen = 8;
          max_conflicts = Some 500_000;
        };
    }
  in
  List.iter
    (fun case ->
      let spec = Synth.Library_.spec case in
      let outcome, stats, elapsed =
        Synth.Brahma.synthesize ~options ~spec ~library:Synth.Library_.default
      in
      Printf.printf "%-6s: %s after %.1fs (%d CEGIS iterations)\n%!" case
        (match outcome with
        | Synth.Brahma.Synthesized p ->
            "synthesized " ^ Synth.Program.to_string p
        | Synth.Brahma.Budget_exhausted -> "budget exhausted"
        | Synth.Brahma.No_program -> "no program")
        elapsed stats.Synth.Cegis.cegis_iterations)
    [ "SUB"; "XOR" ]

(* ------------------------------------------------------------------ *)
(* Ablation: which HPF mechanism buys what                             *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section
    "ablation - HPF-CEGIS mechanisms (DESIGN.md design choices)\n\
     alpha=0 drops the same-name penalty; the no-learning variant is the \
     shuffled iterative baseline restricted to size-3 multisets";
  let cases = [ "ADD"; "SUB"; "XOR"; "SLT" ] in
  let budget = if !fast then 60.0 else 180.0 in
  let options =
    {
      Synth.Engine.default_options with
      Synth.Engine.k = 3;
      n_max = 3;
      time_budget = Some budget;
      config = { Synth.Cegis.default_config with Synth.Cegis.xlen = 8 };
    }
  in
  Printf.printf "%-8s %14s %14s %14s\n" "case" "HPF a=1 (s)" "HPF a=0 (s)"
    "no-learn (s)";
  List.iter
    (fun case ->
      let spec = Synth.Library_.spec case in
      let t1 =
        (Synth.Hpf.synthesize ~alpha:1 ~options ~spec
           ~library:Synth.Library_.default ())
          .Synth.Engine.elapsed
      in
      let t0 =
        (Synth.Hpf.synthesize ~alpha:0 ~options ~spec
           ~library:Synth.Library_.default ())
          .Synth.Engine.elapsed
      in
      (* No-learning baseline: iterative CEGIS over the same fixed-size
         multiset pool (priorities never change <=> random order). *)
      let tn =
        (Synth.Iterative.synthesize ~options ~spec
           ~library:Synth.Library_.default)
          .Synth.Engine.elapsed
      in
      Printf.printf "%-8s %14.2f %14.2f %14.2f\n%!" case t1 t0 tn)
    cases

(* ------------------------------------------------------------------ *)
(* Cross-core: the same QED layer on a different microarchitecture     *)
(* ------------------------------------------------------------------ *)

let crosscore () =
  section
    "cross-core - microarchitecture independence: the unchanged QED layer\n\
     verifying a 3-stage core next to the 5-stage one (ADD mutation)";
  let cfg = Config.tiny in
  Printf.printf "%-22s %-24s %s\n" "core" "SEPE-SQED" "SQED";
  List.iter
    (fun (label, core) ->
      let sepe =
        V.run ~core ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10
          ~time_budget:600.0 cfg
      in
      let sqed =
        V.run ~core ~bug:Bug.Bug_add ~method_:V.Sqed ~bound:8
          ~time_budget:600.0 cfg
      in
      Printf.printf "%-22s %-24s %s\n%!" label
        (V.outcome_to_string sepe)
        (if V.detected sqed then "DETECTED?!" else "-"))
    [
      ("5-stage pipeline", Sqed_qed.Qed_top.Five_stage);
      ("3-stage pipeline", Sqed_qed.Qed_top.Three_stage);
    ]

(* ------------------------------------------------------------------ *)
(* Scaling: BMC cost vs datapath width                                 *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section
    "scaling - SEPE-SQED detection cost vs configuration size\n\
     (why the experiments run on scaled cores; see DESIGN.md)";
  let budget = if !fast then 120.0 else 900.0 in
  let cases =
    [
      ("tiny  (xlen=4,  8 regs)", Config.tiny);
      ("small (xlen=8, 16 regs)", Config.small);
    ]
    @ (if !fast then [] else [ ("wide  (xlen=16, 16 regs)",
                                { Config.small with Config.xlen = 16 }) ])
  in
  Printf.printf "%-26s %-12s %14s %10s\n" "config" "state bits"
    "detect add (s)" "depth";
  List.iter
    (fun (label, cfg) ->
      let model = Sqed_qed.Qed_top.edsep ~bug:Bug.Bug_add cfg in
      let stats_str =
        let c = model.Sqed_qed.Qed_top.circuit in
        List.fold_left
          (fun acc r -> acc + Sqed_rtl.Circuit.node_width c r)
          0
          (Sqed_rtl.Circuit.registers c)
      in
      let r =
        V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10
          ~time_budget:budget cfg
      in
      let cell =
        match V.trace r with
        | Some t ->
            Printf.sprintf "%14.2f %10d" r.V.stats.Sqed_bmc.Engine.solve_time
              t.Trace.length
        | None -> Printf.sprintf "%14s %10s" "-" "-"
      in
      Printf.printf "%-26s %-12d %s\n%!" label stats_str cell)
    cases

(* ------------------------------------------------------------------ *)
(* Portfolio A/B: diversified CDCL workers on the hardest BMC query    *)
(* ------------------------------------------------------------------ *)

(* The hardest single BMC query in the suite is the table-1 MULH witness
   with the original-instruction stream left unconstrained (the table
   itself soundly focuses the stream on the mutated class, which is what
   keeps its cell cheap): one deep SAT query at the class-minimum depth,
   where single-engine solve time explodes with the unconstrained search
   space.  Both arms run the same cell on the same binary — width 1,
   then width K — and land in BENCH_sepe.json as portfolio/k1 and
   portfolio/kK next to the sat.portfolio.* counters. *)
let portfolio () =
  let k =
    let d = !Sqed_smt.Solver.portfolio_default in
    if d > 1 then d else 4
  in
  section
    (Printf.sprintf
       "portfolio - %d diversified CDCL workers racing on the hardest BMC \
        query\n\
        (table-1 MULH witness, unfocused instruction stream; width 1 vs %d \
        on the same binary)"
       k k);
  let cfg = Config.tiny_m in
  let bug = Bug.Bug_mulh in
  let min_depth = sepe_min_depth cfg bug in
  let budget = if !fast then 600.0 else 1800.0 in
  Printf.printf "core: %s; witness query at depth %d; budget %.0fs/arm\n\n"
    (Config.to_string cfg) min_depth budget;
  let arm label width =
    let saved = !Sqed_smt.Solver.portfolio_default in
    Sqed_smt.Solver.portfolio_default := width;
    Fun.protect
      ~finally:(fun () -> Sqed_smt.Solver.portfolio_default := saved)
      (fun () ->
        timed label (fun () ->
            let r =
              V.run ~bug ~method_:V.Sepe_sqed ~bound:min_depth
                ~start_bound:min_depth ~time_budget:budget cfg
            in
            Printf.printf "%-16s %s\n%!" label (V.outcome_to_string r)))
  in
  arm "portfolio/k1" 1;
  arm (Printf.sprintf "portfolio/k%d" k) k

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro-benchmarks of the substrates (Bechamel, OLS ns/run)";
  let open Bechamel in
  let sat_php () =
    let module Sat = Sqed_sat.Sat in
    let s = Sat.create () in
    let n = 5 in
    let p =
      Array.init n (fun _ -> Array.init (n - 1) (fun _ -> Sat.new_var s))
    in
    Array.iter
      (fun row -> Sat.add_clause s (Array.to_list (Array.map Sat.pos row)))
      p;
    for h = 0 to n - 2 do
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Sat.add_clause s
            [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
        done
      done
    done;
    assert (Sat.solve s = Sat.Unsat)
  in
  let smt_adder () =
    let module Term = Sqed_smt.Term in
    let module Solver = Sqed_smt.Solver in
    let s = Solver.create () in
    let x = Term.var "mb_x" 16 and y = Term.var "mb_y" 16 in
    Solver.assert_ s (Term.distinct (Term.add x y) (Term.add y x));
    assert (Solver.check s = Solver.Unsat)
  in
  let sim_cycles =
    let c = Sqed_proc.Testbench.circuit Config.small in
    fun () ->
      let sim = Sqed_rtl.Sim.create c in
      let inputs =
        [
          ("instr", Sqed_isa.Encode.encode Sqed_isa.Insn.nop);
          ("instr_valid", Sqed_bv.Bv.one 1);
        ]
      in
      for _ = 1 to 20 do
        ignore (Sqed_rtl.Sim.cycle sim inputs)
      done
  in
  let topo_enum () =
    let spec = Synth.Library_.spec "SUB" in
    let ms =
      [
        Synth.Library_.find "NOT";
        Synth.Library_.find "ADD";
        Synth.Library_.find "NOT";
      ]
    in
    ignore (Synth.Topology.enumerate ~spec ms)
  in
  let bv_mul () =
    let module Bv = Sqed_bv.Bv in
    let a = Bv.of_int ~width:128 0x123456789 in
    let b = Bv.of_int ~width:128 987654321 in
    ignore (Bv.mul a b)
  in
  let tests =
    [
      Test.make ~name:"sat: pigeonhole 5/4 unsat" (Staged.stage sat_php);
      Test.make ~name:"smt: 16-bit adder comm proof" (Staged.stage smt_adder);
      Test.make ~name:"rtl: 20 pipeline sim cycles" (Staged.stage sim_cycles);
      Test.make ~name:"synth: topology enumeration" (Staged.stage topo_enum);
      Test.make ~name:"bv: 128-bit multiply" (Staged.stage bv_mul);
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.8) ~kde:(Some 500) ()
  in
  List.iter
    (fun test ->
      List.iter
        (fun t ->
          let m = Benchmark.run cfg [ instance ] t in
          let est = Analyze.one ols instance m in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              Printf.printf "  %-32s %12.0f ns/run\n%!" (Test.Elt.name t) ns
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" (Test.Elt.name t))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* Flags: --fast, --jobs N, --json PATH, --no-metrics, --no-simplify,
     --no-aig, --portfolio K, --portfolio-deterministic, --trace PATH,
     --metrics-json PATH, --log PATH|-, --progress, --report PATH,
     --checkpoint FILE, --fault-inject SPEC, --ledger FILE,
     --baseline FILE, --baseline-window N, --baseline-k K,
     --handicap F; everything else names an experiment.  "-" for
     --trace/--metrics-json means stdout, for --log stderr. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--fast" :: rest ->
        fast := true;
        parse acc rest
    | "--no-simplify" :: rest ->
        (* A/B switch for the SAT core's CNF preprocessor; the
           sat.simplify.* counters in the JSON record the on-side. *)
        Sqed_smt.Solver.simplify_default := false;
        parse acc rest
    | "--no-aig" :: rest ->
        (* A/B switch for the bit-blaster's AIG gate layer; the smt.aig.*
           counters in the JSON record the on-side. *)
        Sqed_smt.Solver.aig_default := false;
        parse acc rest
    | "--portfolio" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k > 0 ->
            (* Portfolio width for every solver the run creates; only
               deep BMC bounds actually engage it (the sat.portfolio.*
               counters in the JSON record how often). *)
            Sqed_smt.Solver.portfolio_default := k;
            parse acc rest
        | _ ->
            Printf.eprintf "--portfolio expects a positive integer, got %S\n" n;
            exit 1)
    | "--portfolio-deterministic" :: rest ->
        Sqed_smt.Solver.portfolio_deterministic_default := true;
        parse acc rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k > 0 ->
            jobs := k;
            parse acc rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 1)
    | "--json" :: path :: rest ->
        json_path := path;
        parse acc rest
    | "--no-metrics" :: rest ->
        metrics_on := false;
        parse acc rest
    | "--trace" :: path :: rest ->
        trace_path := Some path;
        parse acc rest
    | "--metrics-json" :: path :: rest ->
        metrics_json_path := Some path;
        parse acc rest
    | "--log" :: path :: rest ->
        log_path := Some path;
        parse acc rest
    | "--progress" :: rest ->
        Progress.enabled := true;
        parse acc rest
    | "--report" :: path :: rest ->
        report_path := Some path;
        parse acc rest
    | "--checkpoint" :: path :: rest ->
        checkpoint := Some path;
        parse acc rest
    | "--ledger" :: path :: rest ->
        ledger_path := Some path;
        parse acc rest
    | "--baseline" :: path :: rest ->
        baseline_path := Some path;
        parse acc rest
    | "--baseline-window" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k > 0 ->
            baseline_window := k;
            parse acc rest
        | _ ->
            Printf.eprintf
              "--baseline-window expects a positive integer, got %S\n" n;
            exit 1)
    | "--baseline-k" :: v :: rest -> (
        match float_of_string_opt v with
        | Some k when k > 0.0 ->
            baseline_k := k;
            parse acc rest
        | _ ->
            Printf.eprintf "--baseline-k expects a positive number, got %S\n" v;
            exit 1)
    | "--handicap" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 ->
            handicap := f;
            parse acc rest
        | _ ->
            Printf.eprintf
              "--handicap expects a non-negative factor, got %S\n" v;
            exit 1)
    | "--fault-inject" :: spec :: rest -> (
        (* Deterministic fault injection (see Sqed_resil.Fault); overrides
           any SEPE_FAULT environment spec. *)
        match Sqed_resil.Fault.configure spec with
        | () -> parse acc rest
        | exception Invalid_argument msg ->
            Printf.eprintf "--fault-inject: %s\n" msg;
            exit 1)
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  Metrics.enabled := !metrics_on;
  (* The sampler rides along whenever metrics are on: a bench summary
     whose obs.sampler.samples is 0 was the blind spot that hid empty
     sparklines until someone opened a report. *)
  Sampler.enabled := !metrics_on;
  if !trace_path <> None then Span.enabled := true;
  Option.iter Obs_log.set_sink !log_path;
  if !report_path <> None then begin
    (* The report embeds the metrics snapshot and the sampler series. *)
    Metrics.enabled := true;
    Sampler.enabled := true
  end;
  let all =
    [
      ("fig3", fig3);
      ("table1", table1);
      ("fig4", fig4);
      ("classical", classical);
      ("ablation", ablation);
      ("scaling", scaling);
      ("crosscore", crosscore);
      ("portfolio", portfolio);
      ("micro", micro);
    ]
  in
  Printf.printf "worker domains: %d (SEPE_JOBS or --jobs N to change)\n%!"
    (jobs_used ());
  (match args with
  | [] -> List.iter (fun (name, f) -> timed name f) all
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n all with
          | Some f -> timed n f
          | None ->
              Printf.eprintf
                "unknown experiment %S (fig3|table1|fig4|classical|micro)\n" n;
              exit 1)
        names);
  let payload = bench_payload () in
  write_json payload;
  (match !trace_path with
  | Some path ->
      Span.export path;
      Printf.printf "wrote %s (%d events, %d dropped)\n%!"
        (if path = "-" then "<stdout>" else path)
        (List.length (Span.events ()))
        (Span.dropped ())
  | None -> ());
  (match !metrics_json_path with
  | Some path ->
      let json = Sqed_obs.Json.to_string (Metrics.to_json ()) in
      if path = "-" then print_endline json
      else begin
        let oc = open_out path in
        output_string oc json;
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n%!" path
      end
  | None -> ());
  (match !report_path with
  | Some path ->
      let cmdline = String.concat " " (Array.to_list Sys.argv) in
      (* When a ledger is in play the report grows its cross-run
         section: sparklines over the archived runs + band verdicts. *)
      let history =
        match (!baseline_path, !ledger_path) with
        | Some p, _ | None, Some p -> (History.load p).History.entries
        | None, None -> []
      in
      let sidecar = Report.write ~title:"bench run" ~cmdline ~history ~path () in
      Printf.printf "wrote %s (+ %s)\n%!" path sidecar
  | None -> ());
  (* Regression sentinel: this run against the config-compatible tail
     of the baseline ledger.  Runs before the ledger append below so a
     run is never its own baseline. *)
  let regressed =
    match !baseline_path with
    | None -> false
    | Some path ->
        section (Printf.sprintf "baseline - this run vs ledger %s" path);
        let loaded = History.load path in
        if loaded.History.dropped > 0 then
          Printf.printf "note: dropped %d torn/invalid ledger line(s)\n"
            loaded.History.dropped;
        let probe =
          History.entry ~kind:"bench" ~label:"probe"
            ~provenance:(History.provenance ~config:(config_json ()) ())
            ~run:Json.Null
        in
        let compatible =
          List.filter (History.compatible probe) loaded.History.entries
        in
        let incompatible =
          List.length loaded.History.entries - List.length compatible
        in
        if incompatible > 0 then
          Printf.printf
            "note: ignoring %d entr%s with a different {jobs,fast,simplify,\
             aig,portfolio} config\n"
            incompatible
            (if incompatible = 1 then "y" else "ies");
        let history = List.filter_map History.run_of compatible in
        let deltas =
          Diff.compare_history ~k:!baseline_k ~window:!baseline_window ~history
            ~cur:payload ()
        in
        (* Gated metrics always print; counters only when they left the
           band, so the table stays readable. *)
        List.iter
          (fun d ->
            if
              Diff.gated d.Diff.dl_metric
              || d.Diff.dl_verdict = Diff.Regressed
              || d.Diff.dl_verdict = Diff.Improved
            then Printf.printf "%s\n" (Diff.to_string d))
          deltas;
        let regs = Diff.regressions deltas in
        if regs = [] then begin
          Printf.printf
            "baseline: clean (%d compatible run(s), window %d, k=%.1f)\n%!"
            (List.length history) !baseline_window !baseline_k;
          false
        end
        else begin
          Printf.printf
            "baseline: PERF REGRESSION - %d gated metric(s) above the noise \
             band\n%!"
            (List.length regs);
          true
        end
  in
  (match !ledger_path with
  | None -> ()
  | Some path ->
      let label =
        match args with [] -> "all" | names -> String.concat "+" names
      in
      let entry =
        History.entry ~kind:"bench" ~label
          ~provenance:(History.provenance ~config:(config_json ()) ())
          ~run:payload
      in
      History.append path entry;
      Printf.printf "ledger: appended run to %s (%d entr%s)\n%!" path
        (List.length (History.load path).History.entries)
        (if List.length (History.load path).History.entries = 1 then "y"
         else "ies"));
  Obs_log.close_sink ();
  if Verdict.degraded !campaign then begin
    Printf.printf "%s\n%!" (Verdict.summary_line !campaign);
    (* Degraded exit: surface the recorder's last warnings first. *)
    let tail = Obs_log.tail ~min_level:Obs_log.Warn 10 in
    if tail <> [] then begin
      Printf.eprintf "last %d warning/error events:\n" (List.length tail);
      Obs_log.dump_tail ~min_level:Obs_log.Warn 10 stderr
    end;
    exit (Verdict.exit_code !campaign)
  end
  else if regressed then
    (* Exit 5: the perf-regression sentinel (distinct from 3/4 degraded
       campaigns); documented in README's exit-code table. *)
    exit 5
