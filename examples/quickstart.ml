(* Quickstart: the three things this library does.

   1. Synthesize programs semantically equivalent to an instruction
      (HPF-CEGIS over the 30-component library).
   2. Apply the EDSEP-V transformation (Listing 2 of the paper).
   3. Bounded-model-check a buggy core with SEPE-SQED.

   Run with:  dune exec examples/quickstart.exe *)

module Synth = Sqed_synth
module Insn = Sqed_isa.Insn
module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Qed = Sqed_qed
module V = Sepe_sqed.Verifier

let () =
  (* -- 1. program synthesis ------------------------------------------ *)
  print_endline "== synthesizing programs equivalent to SUB (8-bit) ==";
  let options =
    {
      Synth.Engine.default_options with
      Synth.Engine.k = 2;
      time_budget = Some 60.0;
    }
  in
  let result =
    Synth.Hpf.synthesize ~options
      ~spec:(Synth.Library_.spec "SUB")
      ~library:Synth.Library_.default ()
  in
  Printf.printf "found %d programs in %.1fs:\n"
    (List.length result.Synth.Engine.programs)
    result.Synth.Engine.elapsed;
  List.iter
    (fun p -> Printf.printf "  SUB(in0,in1) = %s\n" (Synth.Program.to_string p))
    result.Synth.Engine.programs;

  (* -- 2. the EDSEP-V transformation ---------------------------------- *)
  print_endline "\n== EDSEP-V transformation of SUB x1, x2, x3 (Listing 2) ==";
  let p32 = Qed.Partition.make Qed.Partition.Edsep Config.rv32 in
  let table = Qed.Equiv_table.builtin ~xlen:32 ~n_temp:p32.Qed.Partition.n_temp in
  let original = Insn.R (Insn.SUB, 1, 2, 3) in
  Printf.printf "original:   %s\n" (Insn.to_string original);
  List.iter
    (fun i -> Printf.printf "equivalent: %s\n" (Insn.to_string i))
    (Qed.Equiv_table.expand table p32 original);

  (* -- 3. verification -------------------------------------------------- *)
  print_endline "\n== SEPE-SQED vs an injected single-instruction ADD bug ==";
  let cfg = Config.tiny in
  let r = V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10 cfg in
  Printf.printf "SEPE-SQED: %s\n" (V.outcome_to_string r);
  (match V.trace r with
  | Some t -> print_endline (Sqed_bmc.Trace.to_string t)
  | None -> ());
  print_endline "\nquickstart done."
