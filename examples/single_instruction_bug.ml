(* The paper's headline scenario (Table 1): a single-instruction bug that
   corrupts one instruction uniformly.  SQED's self-consistency cannot see
   it — the original and its EDDI-V duplicate go wrong identically — while
   SEPE-SQED distinguishes the original from its structurally different
   equivalent program and produces a counterexample.

   Run with:  dune exec examples/single_instruction_bug.exe *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module V = Sepe_sqed.Verifier

let () =
  let cfg = Config.tiny in
  let bug = Bug.Bug_xor in
  Printf.printf "injected bug: %s (%s)\n" (Bug.name bug) (Bug.describe bug);
  Printf.printf "core: %s\n\n" (Config.to_string cfg);

  print_endline "--- SQED (EDDI-V duplication) ---";
  let sqed = V.run ~bug ~method_:V.Sqed ~bound:8 ~time_budget:600.0 cfg in
  Printf.printf "%s\n" (V.outcome_to_string sqed);
  if not (V.detected sqed) then
    print_endline
      "as expected: the duplicate XOR is corrupted exactly like the\n\
       original, so every QED-ready state remains QED-consistent.";

  print_endline "\n--- SEPE-SQED (EDSEP-V equivalent programs) ---";
  let sepe = V.run ~bug ~method_:V.Sepe_sqed ~bound:10 ~time_budget:600.0 cfg in
  Printf.printf "%s\n" (V.outcome_to_string sepe);
  (match V.trace sepe with
  | Some t ->
      print_endline "counterexample trace:";
      print_endline (Sqed_bmc.Trace.to_string t)
  | None -> ());
  if V.detected sepe && not (V.detected sqed) then
    print_endline "\nSEPE-SQED found the bug that SQED cannot express."
