(* The full Fig. 1 workflow, end to end:

   upper half — synthesize semantically equivalent programs for a couple of
   instruction classes with HPF-CEGIS and fold them into an EDSEP-V
   equivalence table (classes without a synthesized program keep the
   built-in template);

   lower half — attach the EDSEP-V module with *that* table to a mutated
   core and model-check the universal property.

   Run with:  dune exec examples/end_to_end.exe *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Flow = Sepe_sqed.Flow
module V = Sepe_sqed.Verifier
module Synth = Sqed_synth

let () =
  let cfg = Config.tiny in
  Printf.printf "core: %s\n\n" (Config.to_string cfg);

  print_endline "== Fig. 1 upper half: program synthesis (HPF-CEGIS) ==";
  let options =
    {
      Synth.Engine.default_options with
      Synth.Engine.k = 1;
      min_components = 2;
      time_budget = Some 120.0;
    }
  in
  let table, cases =
    Flow.synthesize_table ~options ~cases:[ "ADD"; "XOR" ] cfg
  in
  List.iter
    (fun c ->
      Printf.printf "%s: %d candidate programs in %.1fs%s\n" c.Flow.case
        (List.length c.Flow.programs)
        c.Flow.elapsed
        (match c.Flow.chosen with
        | Some p -> "\n  installed: " ^ Synth.Program.to_string p
        | None -> " (keeping built-in template)"))
    cases;
  print_endline "\nresulting equivalence table:";
  print_endline (Sqed_qed.Equiv_table.to_string table);

  print_endline "\n== Fig. 1 lower half: verification with the synthesized table ==";
  let bug = Bug.Bug_add in
  Printf.printf "injected bug: %s (%s)\n" (Bug.name bug) (Bug.describe bug);
  let r =
    V.run ~bug ~table ~method_:V.Sepe_sqed ~bound:12 ~time_budget:900.0 cfg
  in
  Printf.printf "SEPE-SQED: %s\n" (V.outcome_to_string r);
  match V.trace r with
  | Some t -> print_endline (Sqed_bmc.Trace.to_string t)
  | None -> ()
