(* QED's evolution in one example (Section 2 of the paper):

   - concrete QED testing runs *random* transformed programs and hopes a
     violation shows up — detection is probabilistic and a clean campaign
     proves nothing;
   - SQED/SEPE-SQED make the program symbolic and let a model checker
     search all programs up to a bound — detection is a proof of presence,
     a clean run a proof of absence (up to the bound).

   This example runs both modes against the same two mutations. *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Partition = Sqed_qed.Partition
module Qed_sim = Sqed_qed.Qed_sim
module V = Sepe_sqed.Verifier

let concrete label ?bug () =
  let c =
    Qed_sim.campaign ?bug ~scheme:Partition.Edsep ~seed:7 ~runs:100
      ~program_length:4 Config.small
  in
  Printf.printf "  concrete EDSEP-V, %-12s %3d/100 runs violated%s\n" label
    c.Qed_sim.detections
    (match c.Qed_sim.first_detection with
    | Some i -> Printf.sprintf " (first at run %d)" i
    | None -> "")

let symbolic label ?bug () =
  let r =
    V.run ?bug ~method_:V.Sepe_sqed ~bound:10 ~time_budget:600.0 Config.tiny
  in
  Printf.printf "  symbolic SEPE-SQED, %-10s %s\n" label
    (V.outcome_to_string r)

let () =
  print_endline "== concrete QED campaigns (random programs, xlen=8) ==";
  concrete "no bug:" ();
  concrete "add bug:" ~bug:Bug.Bug_add ();
  (* A subtle sequence bug: the store-interference corruption needs two
     stores in flight at once — rare under random stimulus. *)
  concrete "store bug:" ~bug:Bug.Bug_store_interference ();

  print_endline "\n== symbolic verification (BMC, xlen=4) ==";
  symbolic "no bug:" ();
  symbolic "add bug:" ~bug:Bug.Bug_add ();
  symbolic "store bug:" ~bug:Bug.Bug_store_interference ();

  print_endline
    "\nthe symbolic runs either prove the property to the bound or return\n\
     a definite counterexample; the concrete campaign's detection rate\n\
     depends on how often random stimulus happens to trigger the bug."
