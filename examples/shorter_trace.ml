(* Multiple-instruction bugs (Fig. 4): both methods detect them, and the
   richer instruction mix of EDSEP-V sometimes yields a *shorter*
   counterexample, because the bug-triggering dependency pattern already
   occurs inside a single equivalent sequence.

   Run with:  dune exec examples/shorter_trace.exe *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module V = Sepe_sqed.Verifier
module Trace = Sqed_bmc.Trace

let describe r =
  match V.trace r with
  | Some t ->
      Printf.printf
        "  found at depth %d: %d instructions dispatched (%d originals), %.1fs\n"
        t.Trace.length t.Trace.instructions t.Trace.originals
        r.V.stats.Sqed_bmc.Engine.solve_time
  | None -> Printf.printf "  %s\n" (V.outcome_to_string r)

let () =
  let cfg = Config.tiny in
  let bug = Bug.Bug_fwd_mem_rs1 in
  Printf.printf "injected bug: %s (%s)\n" (Bug.name bug) (Bug.describe bug);
  Printf.printf "core: %s\n\n" (Config.to_string cfg);

  print_endline "--- SQED ---";
  let sqed = V.run ~bug ~method_:V.Sqed ~bound:12 ~time_budget:900.0 cfg in
  describe sqed;

  print_endline "--- SEPE-SQED ---";
  let sepe = V.run ~bug ~method_:V.Sepe_sqed ~bound:12 ~time_budget:900.0 cfg in
  describe sepe;

  match (V.trace sqed, V.trace sepe) with
  | Some a, Some b ->
      Printf.printf
        "\ntrace-length ratio SQED/SEPE-SQED: %.2f  (paper Fig. 4's yellow curve)\n"
        (Float.of_int a.Trace.length /. Float.of_int b.Trace.length);
      if b.Trace.originals < a.Trace.originals then
        print_endline
          "SEPE-SQED needed fewer original instructions: the forwarding\n\
           pattern that fires the bug already occurs inside one equivalent\n\
           sequence."
  | _ -> ()
