(* The `sepe` command-line tool: program synthesis, equivalence tables and
   QED-based processor verification from the shell. *)

let () = Printexc.record_backtrace true

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module V = Sepe_sqed.Verifier
module Flow = Sepe_sqed.Flow
module Synth = Sqed_synth
module Pool = Sqed_par.Pool
module Metrics = Sqed_obs.Metrics
module Span = Sqed_obs.Trace
module Obs_log = Sqed_obs.Log
module Sampler = Sqed_obs.Sampler
module Progress = Sqed_obs.Progress
module Report = Sqed_obs.Report
module History = Sqed_obs.History
module Diff = Sqed_obs.Diff
module Json = Sqed_obs.Json
module Verdict = Sqed_resil.Verdict

open Cmdliner

(* Exit code for degraded (but completed) campaigns: 3 = inconclusive
   cases only, 4 = at least one hard failure.  Recorded here and applied
   after [Cmd.eval] returns, so [with_obs]'s finalizers (trace export,
   metrics report) still run — an [exit] inside a command body would
   skip them. *)
let degraded_exit = ref 0

let note_summary s = degraded_exit := max !degraded_exit (Verdict.exit_code s)

(* Set by `sepe runs compare --gate` when a gated metric leaves its
   ledger noise band; turns into exit code 5 unless a degraded campaign
   verdict (3/4) takes precedence. *)
let regression_exit = ref false

let degraded_exits =
  Cmd.Exit.info 3
    ~doc:
      "a campaign completed degraded: some cases inconclusive (budget \
       exhausted), none failed."
  :: Cmd.Exit.info 4
       ~doc:"a campaign completed degraded: at least one case failed hard."
  :: Cmd.Exit.info 5
       ~doc:
         "the perf-regression sentinel tripped: a gated metric left the \
          noise band of its ledger baseline."
  :: Cmd.Exit.defaults

(* Campaign shape for the ledger's provenance config: commands that know
   their --fast/--jobs values stamp them here before running, so ledger
   entries are only compared against config-compatible baselines. *)
let ledger_fast = ref false
let ledger_jobs = ref None

(* ---- observability ----------------------------------------------------- *)

(* Every subcommand takes the same three flags; [with_obs] flips the
   global switches before the command body runs and exports/reports in a
   [finally] so a raising command still leaves its trace behind. *)

type obs_opts = {
  obs_metrics : bool;
  obs_metrics_json : string option;
  obs_trace : string option;
  obs_log : string option;
  obs_log_level : string;
  obs_progress : bool;
  obs_report : string option;
  obs_ledger : string option;
  obs_no_simplify : bool;
  obs_no_aig : bool;
  obs_portfolio : int;
  obs_portfolio_det : bool;
  obs_fault : string option;
}

let obs_t =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "After the command finishes, print the observability report: \
             per-phase timers, solver counters, gauges and histogram \
             summaries.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the full metrics snapshot to $(docv) as JSON.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record phase spans and write a Chrome trace_event JSON array \
             to $(docv) (open in chrome://tracing or Perfetto).")
  in
  let no_simplify =
    Arg.(
      value & flag
      & info [ "no-simplify" ]
          ~doc:
            "Disable the SAT core's CNF preprocessing (variable \
             elimination, subsumption, failed-literal probing) for every \
             solver this command creates.  Mostly for A/B measurements; \
             the sat.simplify.* counters record what the preprocessor \
             did when it is on.")
  in
  let no_aig =
    Arg.(
      value & flag
      & info [ "no-aig" ]
          ~doc:
            "Bypass the AIG gate layer (structural hashing, rewriting, \
             polarity-aware CNF conversion) and bit-blast with direct \
             Tseitin emission, for every solver this command creates.  \
             For A/B measurements; the smt.aig.* counters record what \
             the layer did when it is on.")
  in
  let portfolio =
    Arg.(
      value & opt int 1
      & info [ "portfolio" ] ~docv:"K"
          ~doc:
            "Race $(docv) diversified CDCL workers (different seeds, \
             polarities, restart schedules, VSIDS decay) on hard SAT \
             queries, sharing low-LBD learnt clauses; the first \
             definitive verdict wins and cancels the rest.  Only BMC \
             depths at or past the engine's threshold pay the \
             clone/spawn cost — shallow queries and CEGIS candidates \
             stay single-engine.  The sat.portfolio.* counters and the \
             portfolio.worker.* event-log records show what each worker \
             did.")
  in
  let portfolio_det =
    Arg.(
      value & flag
      & info [ "portfolio-deterministic" ]
          ~doc:
            "Run the portfolio as a reproducible single-domain \
             round-robin instead of a parallel race: repeat runs give \
             bit-identical verdicts and solver statistics, at the cost \
             of the wall-clock speedup.  For CI and debugging.")
  in
  let log =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Stream structured JSONL event-log records (timestamp, domain, \
             level, event, fields) to $(docv); $(b,-) writes to stderr so \
             CI pipelines can capture the stream without temp files.")
  in
  let log_level =
    Arg.(
      value
      & opt (enum [ ("debug", "debug"); ("info", "info"); ("warn", "warn") ])
          "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Minimum level for $(b,--log) records. $(b,debug) adds \
             per-solve lifecycle records (noisy, but invaluable for \
             post-mortems).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Render a live single-line campaign status (cases done/total, \
             ETA from completed-case durations, in-flight workers, stall \
             warnings) to stderr while a campaign runs.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "After the command finishes, write a self-contained HTML run \
             report to $(docv): sampler sparklines, phase timers, \
             histogram summaries, per-case verdicts and the event-log \
             tail, plus a machine-readable $(b,run.json) sidecar.  \
             Implies metrics and enables the time-series sampler.")
  in
  let ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append this run's machine-readable snapshot (the $(b,run.json) \
             payload, stamped with git commit/dirty flag, hostname, core \
             count, OCaml version and solver config) to the append-only \
             JSONL run ledger at $(docv).  Browse and diff the archive \
             with $(b,sepe runs list|show|compare); when combined with \
             $(b,--report), the HTML report grows a cross-run history \
             section.  Implies metrics and the sampler.")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-inject" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault-injection sites, e.g. \
             $(b,pool.task:2,checkpoint.write:1) makes the 2nd pool task \
             and the 1st checkpoint append raise.  Sites: pool.task, \
             sat.solve, smt.bitblast, checkpoint.write; clause forms \
             site:N, site:N/M, site:pP\\@SEED.  Overrides the SEPE_FAULT \
             environment variable.  For exercising the degraded paths — \
             campaigns report the injected failures and keep going.")
  in
  Term.(
    const
      (fun obs_metrics obs_metrics_json obs_trace obs_log obs_log_level
           obs_progress obs_report obs_ledger obs_no_simplify obs_no_aig
           obs_portfolio obs_portfolio_det obs_fault ->
        {
          obs_metrics;
          obs_metrics_json;
          obs_trace;
          obs_log;
          obs_log_level;
          obs_progress;
          obs_report;
          obs_ledger;
          obs_no_simplify;
          obs_no_aig;
          obs_portfolio;
          obs_portfolio_det;
          obs_fault;
        })
    $ metrics $ metrics_json $ trace $ log $ log_level $ progress $ report
    $ ledger $ no_simplify $ no_aig $ portfolio $ portfolio_det $ fault)

let with_obs obs f =
  if obs.obs_no_simplify then Sqed_smt.Solver.simplify_default := false;
  if obs.obs_no_aig then Sqed_smt.Solver.aig_default := false;
  if obs.obs_portfolio > 1 then
    Sqed_smt.Solver.portfolio_default := obs.obs_portfolio;
  if obs.obs_portfolio_det then
    Sqed_smt.Solver.portfolio_deterministic_default := true;
  Option.iter Sqed_resil.Fault.configure obs.obs_fault;
  if obs.obs_metrics || obs.obs_metrics_json <> None then
    Metrics.enabled := true;
  if obs.obs_trace <> None then begin
    (* Tracing needs the timers too, so the trace and the phase table
       tell the same story. *)
    Metrics.enabled := true;
    Span.enabled := true
  end;
  (match obs.obs_log with
  | Some path ->
      let level =
        match obs.obs_log_level with
        | "debug" -> Obs_log.Debug
        | "warn" -> Obs_log.Warn
        | _ -> Obs_log.Info
      in
      Obs_log.set_sink ~level path
  | None -> ());
  if obs.obs_progress then Progress.enabled := true;
  if obs.obs_report <> None || obs.obs_ledger <> None then begin
    (* The report and the ledger snapshot embed the metrics and the
       sampler series, so both recorders must run. *)
    Metrics.enabled := true;
    Sampler.enabled := true
  end;
  Fun.protect
    ~finally:(fun () ->
      (match obs.obs_trace with
      | Some path ->
          Span.export path;
          let n = List.length (Span.events ()) in
          let d = Span.dropped () in
          Printf.printf "trace: %d events -> %s%s\n" n
            (if path = "-" then "<stdout>" else path)
            (if d > 0 then Printf.sprintf " (%d dropped)" d else "")
      | None -> ());
      (match obs.obs_metrics_json with
      | Some path ->
          let json = Sqed_obs.Json.to_string (Metrics.to_json ()) in
          if path = "-" then print_endline json
          else begin
            let oc = open_out path in
            output_string oc json;
            output_char oc '\n';
            close_out oc;
            Printf.printf "metrics: wrote %s\n" path
          end
      | None -> ());
      (match obs.obs_report with
      | Some path ->
          let cmdline = String.concat " " (Array.to_list Sys.argv) in
          let history =
            match obs.obs_ledger with
            | Some lp -> (History.load lp).History.entries
            | None -> []
          in
          let sidecar =
            Report.write ~title:"sepe run" ~cmdline ~history ~path ()
          in
          Printf.printf "report: wrote %s (+ %s)\n" path sidecar
      | None -> ());
      (match obs.obs_ledger with
      | Some path ->
          let cmdline = String.concat " " (Array.to_list Sys.argv) in
          let config =
            [
              ( "jobs",
                Json.Int
                  (match !ledger_jobs with
                  | Some j -> j
                  | None -> Pool.default_jobs ()) );
              ("fast", Json.Bool !ledger_fast);
              ("simplify", Json.Bool (not obs.obs_no_simplify));
              ("aig", Json.Bool (not obs.obs_no_aig));
              ("portfolio", Json.Int (max 1 obs.obs_portfolio));
              ("portfolio_deterministic", Json.Bool obs.obs_portfolio_det);
            ]
          in
          let label =
            if Array.length Sys.argv > 1 then Sys.argv.(1) else "sepe"
          in
          History.append path
            (History.entry ~kind:"sepe" ~label
               ~provenance:(History.provenance ~config ())
               ~run:(Report.run_payload ~title:"sepe run" ~cmdline ()));
          Printf.printf "ledger: appended run to %s\n" path
      | None -> ());
      if obs.obs_metrics then print_string (Metrics.report ());
      Obs_log.close_sink ())
    f

(* ---- shared arguments -------------------------------------------------- *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print solver counters (decisions, propagations, conflicts, \
           restarts) and, where a worker pool is used, per-worker task \
           counts.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel campaigns (default: the SEPE_JOBS \
           environment variable, then the machine's core count).")

let print_solver_stats (st : Sqed_bmc.Engine.stats) =
  let s = st.Sqed_bmc.Engine.sat in
  Printf.printf
    "solver: %d bounds checked, %.2fs solve time, %d clauses\n\
     sat:    %d decisions, %d propagations, %d conflicts, %d restarts, %d \
     learnt literals\n"
    st.Sqed_bmc.Engine.bounds_checked st.Sqed_bmc.Engine.solve_time
    st.Sqed_bmc.Engine.clauses s.Sqed_sat.Sat.decisions
    s.Sqed_sat.Sat.propagations s.Sqed_sat.Sat.conflicts
    s.Sqed_sat.Sat.restarts s.Sqed_sat.Sat.learnt_literals

let print_worker_stats ws =
  List.iter
    (fun w ->
      Printf.printf "worker %d: %d tasks, %.2fs busy, %.2fs queue wait\n"
        w.Pool.worker w.Pool.tasks w.Pool.busy w.Pool.queue_wait)
    ws

let config_of_string = function
  | "rv32" -> Ok Config.rv32
  | "small" -> Ok Config.small
  | "small-m" -> Ok Config.small_m
  | "tiny" -> Ok Config.tiny
  | s -> Error (`Msg (Printf.sprintf "unknown config %S (rv32|small|small-m|tiny)" s))

let config_conv =
  Arg.conv
    ( config_of_string,
      fun fmt c -> Format.pp_print_string fmt (Config.to_string c) )

let config_arg =
  Arg.(
    value
    & opt config_conv Config.small
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"Core configuration: rv32, small, small-m or tiny.")

let bug_conv =
  Arg.conv
    ( (fun s ->
        match Bug.of_name s with
        | Some b -> Ok b
        | None -> Error (`Msg ("unknown bug " ^ s ^ " (see `sepe bugs`)"))),
      fun fmt b -> Format.pp_print_string fmt (Bug.name b) )

(* ---- sepe bugs ---------------------------------------------------------- *)

let bugs_cmd =
  let run obs () =
    with_obs obs @@ fun () ->
    print_endline "Single-instruction bugs (Table 1):";
    List.iter
      (fun b -> Printf.printf "  %-18s %s\n" (Bug.name b) (Bug.describe b))
      Bug.all_single;
    print_endline "Multiple-instruction bugs (Fig. 4):";
    List.iter
      (fun b -> Printf.printf "  %-18s %s\n" (Bug.name b) (Bug.describe b))
      Bug.all_multi
  in
  Cmd.v (Cmd.info "bugs" ~doc:"List the mutation catalog.")
    Term.(const run $ obs_t $ const ())

(* ---- sepe synth ---------------------------------------------------------- *)

let synth_cmd =
  let case =
    Arg.(
      value & opt string "SUB"
      & info [ "case" ] ~docv:"INSN" ~doc:"Original instruction to synthesize.")
  in
  let engine =
    Arg.(
      value & opt string "hpf"
      & info [ "engine" ] ~doc:"Synthesis engine: hpf, iterative or classical.")
  in
  let xlen = Arg.(value & opt int 8 & info [ "xlen" ] ~doc:"Synthesis width.") in
  let k =
    Arg.(value & opt int 5 & info [ "k" ] ~doc:"Programs of >=3 components to find.")
  in
  let n_max = Arg.(value & opt int 3 & info [ "n-max" ] ~doc:"Largest multiset size.") in
  let budget =
    Arg.(value & opt float 120.0 & info [ "budget" ] ~doc:"Time budget (seconds).")
  in
  let run obs case engine xlen k n_max budget =
    with_obs obs @@ fun () ->
    let spec = Synth.Library_.spec case in
    let options =
      {
        Synth.Engine.default_options with
        Synth.Engine.k;
        n_max;
        time_budget = Some budget;
        config = { Synth.Cegis.default_config with Synth.Cegis.xlen };
      }
    in
    let library = Synth.Library_.default in
    match engine with
    | "classical" ->
        let outcome, stats, elapsed =
          Synth.Brahma.synthesize ~options ~spec ~library
        in
        Printf.printf "classical CEGIS on %s: %s (%.1fs, %d solver calls)\n"
          case
          (match outcome with
          | Synth.Brahma.Synthesized p -> "synthesized " ^ Synth.Program.to_string p
          | Synth.Brahma.Budget_exhausted -> "budget exhausted"
          | Synth.Brahma.No_program -> "no program")
          elapsed stats.Synth.Cegis.solver_calls
    | "hpf" | "iterative" ->
        let r =
          if engine = "hpf" then
            Synth.Hpf.synthesize ~options ~spec ~library ()
          else Synth.Iterative.synthesize ~options ~spec ~library
        in
        Printf.printf
          "%s on %s: %d programs in %.2fs (%d/%d multisets, %d solver calls)\n"
          engine case
          (List.length r.Synth.Engine.programs)
          r.Synth.Engine.elapsed
          r.Synth.Engine.stats.Synth.Cegis.multisets_tried
          r.Synth.Engine.multisets_total
          r.Synth.Engine.stats.Synth.Cegis.solver_calls;
        List.iter
          (fun p -> Printf.printf "  %s\n" (Synth.Program.to_string p))
          r.Synth.Engine.programs
    | other -> Printf.eprintf "unknown engine %S\n" other
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize semantically equivalent programs.")
    Term.(const run $ obs_t $ case $ engine $ xlen $ k $ n_max $ budget)

(* ---- sepe table ----------------------------------------------------------- *)

let table_cmd =
  let synthesize =
    Arg.(
      value & flag
      & info [ "synthesize" ]
          ~doc:"Produce the table with HPF-CEGIS instead of the built-in one.")
  in
  let run obs cfg synthesize jobs stats =
    with_obs obs @@ fun () ->
    let table =
      if synthesize then
        Pool.with_pool ?jobs (fun pool ->
            let table, cases = Flow.synthesize_table ~pool cfg in
            List.iter
              (fun c ->
                Printf.printf "# %s: %d programs, %.1fs%s\n" c.Flow.case
                  (List.length c.Flow.programs)
                  c.Flow.elapsed
                  (match c.Flow.chosen with
                  | Some p -> " -> " ^ Synth.Program.to_string p
                  | None -> " (fallback to builtin)"))
              cases;
            if stats then print_worker_stats (Pool.stats pool);
            table)
      else Flow.builtin_table cfg
    in
    print_endline (Sqed_qed.Equiv_table.to_string table)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Print the EDSEP-V equivalence table.")
    Term.(const run $ obs_t $ config_arg $ synthesize $ jobs_arg $ stats_arg)

(* ---- sepe verify ------------------------------------------------------------ *)

let verify_cmd =
  let method_ =
    Arg.(
      value & opt string "sepe"
      & info [ "m"; "method" ] ~doc:"Verification method: sepe or sqed.")
  in
  let bug =
    Arg.(
      value & opt (some bug_conv) None
      & info [ "bug" ] ~docv:"BUG" ~doc:"Mutation to inject (default: none).")
  in
  let bound = Arg.(value & opt int 10 & info [ "bound" ] ~doc:"BMC bound (cycles).") in
  let budget =
    Arg.(value & opt float 600.0 & info [ "budget" ] ~doc:"Time budget (seconds).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No trace output.") in
  let core =
    Arg.(
      value & opt int 5
      & info [ "core" ] ~docv:"STAGES"
          ~doc:"DUV variant: 5 (default) or 3 pipeline stages.")
  in
  let do_shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily reduce the counterexample by concrete replay.")
  in
  let table_file =
    Arg.(
      value & opt (some string) None
      & info [ "table" ] ~docv:"FILE"
          ~doc:"Custom EDSEP-V equivalence table (the `sepe table` format).")
  in
  let run obs cfg method_ bug bound budget quiet core do_shrink table_file
      stats =
    with_obs obs @@ fun () ->
    let core =
      match core with
      | 3 -> Sqed_qed.Qed_top.Three_stage
      | _ -> Sqed_qed.Qed_top.Five_stage
    in
    let method_ =
      match method_ with
      | "sqed" -> V.Sqed
      | "sepe" | "sepe-sqed" -> V.Sepe_sqed
      | other -> failwith ("unknown method " ^ other)
    in
    let cfg =
      match bug with
      | Some b when Bug.needs_m b && not cfg.Config.ext_m ->
          Printf.printf "note: %s needs the multiplier; using small-m\n"
            (Bug.name b);
          Config.small_m
      | _ -> cfg
    in
    let progress k el =
      if not quiet then Printf.printf "  depth %d clear (%.1fs)\n%!" k el
    in
    let table =
      Option.map
        (fun path ->
          let text = In_channel.with_open_text path In_channel.input_all in
          match Sqed_qed.Equiv_table.of_string text with
          | Ok t -> t
          | Error e -> failwith ("table parse error: " ^ e))
        table_file
    in
    let r =
      V.run ?bug ?table ~core ~method_ ~bound ~time_budget:budget ~progress
        cfg
    in
    Printf.printf "%s %s: %s\n" (V.method_name method_)
      (match bug with Some b -> "with bug " ^ Bug.name b | None -> "(no bug)")
      (V.outcome_to_string r);
    if stats then print_solver_stats r.V.stats;
    match V.trace r with
    | Some t when not quiet ->
        let t =
          if do_shrink then begin
            let model =
              match method_ with
              | V.Sqed -> Sqed_qed.Qed_top.eddi ?bug ~core cfg
              | V.Sepe_sqed -> Sqed_qed.Qed_top.edsep ?bug ~core ?table cfg
            in
            let s = Sqed_bmc.Engine.shrink model t in
            Printf.printf "shrunk: %d -> %d cycles, %d -> %d instructions\n"
              t.Sqed_bmc.Trace.length s.Sqed_bmc.Trace.length
              t.Sqed_bmc.Trace.instructions s.Sqed_bmc.Trace.instructions;
            s
          end
          else t
        in
        print_endline (Sqed_bmc.Trace.to_string t);
        print_endline "input stimulus:";
        print_string (Sqed_bmc.Trace.waveform t)
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run SQED / SEPE-SQED bounded model checking.")
    Term.(
      const run $ obs_t $ config_arg $ method_ $ bug $ bound $ budget $ quiet
      $ core $ do_shrink $ table_file $ stats_arg)

(* ---- sepe sweep ---------------------------------------------------------- *)

let sweep_cmd =
  let method_ =
    Arg.(
      value & opt string "sepe"
      & info [ "m"; "method" ] ~doc:"Verification method: sepe or sqed.")
  in
  let set =
    Arg.(
      value & opt string "single"
      & info [ "set" ] ~docv:"SET"
          ~doc:"Bug catalog to sweep: single, multi or all.")
  in
  let bound =
    Arg.(value & opt int 12 & info [ "bound" ] ~doc:"BMC bound (cycles).")
  in
  let budget =
    Arg.(
      value & opt float 600.0 & info [ "budget" ] ~doc:"Time budget per bug.")
  in
  let run obs cfg method_ set bound budget jobs stats =
    ledger_jobs := jobs;
    with_obs obs @@ fun () ->
    let method_ =
      match method_ with
      | "sqed" -> V.Sqed
      | "sepe" | "sepe-sqed" -> V.Sepe_sqed
      | other -> failwith ("unknown method " ^ other)
    in
    let bugs =
      match set with
      | "multi" -> Bug.all_multi
      | "all" -> Bug.all_single @ Bug.all_multi
      | _ -> Bug.all_single
    in
    (* One pool task per injected bug; each worker domain owns its solver
       and term universe, so checks share nothing and rows come back in
       catalog order regardless of the jobs count. *)
    let check bug =
      let cfg =
        if Bug.needs_m bug && not cfg.Config.ext_m then
          { cfg with Config.ext_m = true }
        else cfg
      in
      (bug, V.run ~bug ~method_ ~bound ~time_budget:budget cfg)
    in
    (* Supervised fan-out: a crashed or budget-exhausted check degrades
       to one marked row and a nonzero exit, not a dead sweep. *)
    let outcomes, workers =
      Progress.with_campaign ~task_budget:budget
        ?jobs ~total:(List.length bugs) "sweep" (fun () ->
          Pool.with_pool ?jobs (fun pool ->
              let rs = Pool.map_result pool check bugs in
              (rs, Pool.stats pool)))
    in
    let detected = ref 0 in
    let verdicts =
      List.map2
        (fun bug outcome ->
          let note status detail dur =
            Report.note_case
              {
                Report.rc_key = "sweep/" ^ Bug.name bug;
                rc_status = status;
                rc_detail = detail;
                rc_dur = dur;
              }
          in
          match outcome with
          | Ok ((_, r) as row) ->
              if V.detected r then incr detected;
              Printf.printf "%-18s %-24s %8.2fs  %d conflicts\n" (Bug.name bug)
                (V.outcome_to_string r)
                r.V.stats.Sqed_bmc.Engine.solve_time
                r.V.stats.Sqed_bmc.Engine.sat_conflicts;
              (match r.V.outcome with
              | Sqed_bmc.Engine.Gave_up k ->
                  let why =
                    match r.V.stats.Sqed_bmc.Engine.gave_up with
                    | Some reason ->
                        ", " ^ Sqed_resil.Budget.string_of_reason reason
                    | None -> ""
                  in
                  let msg = Printf.sprintf "gave up at depth %d%s" k why in
                  note Report.Unknown msg r.V.stats.Sqed_bmc.Engine.solve_time;
                  Verdict.Unknown msg
              | _ ->
                  note Report.Ok (V.outcome_to_string r)
                    r.V.stats.Sqed_bmc.Engine.solve_time;
                  Verdict.Ok row)
          | Error (e : Pool.task_error) ->
              let msg =
                Printf.sprintf "%s (attempts: %d)" e.Pool.error e.Pool.attempts
              in
              Printf.printf "%-18s %s\n" (Bug.name bug)
                ((if e.Pool.exhausted then "UNKNOWN: " else "FAILED: ") ^ msg);
              if e.Pool.exhausted then begin
                note Report.Unknown msg 0.0;
                Verdict.Unknown msg
              end
              else begin
                note Report.Failed msg 0.0;
                Verdict.Failed msg
              end)
        bugs outcomes
    in
    Printf.printf "detected %d/%d bugs (%s, bound %d)\n" !detected
      (List.length bugs)
      (V.method_name method_)
      bound;
    let summary = Verdict.count verdicts in
    if Verdict.degraded summary then
      Printf.printf "%s\n%!" (Verdict.summary_line summary);
    note_summary summary;
    if stats then begin
      print_worker_stats workers;
      List.iter
        (function
          | Verdict.Ok (bug, r) ->
              Printf.printf "-- %s\n" (Bug.name bug);
              print_solver_stats r.V.stats
          | Verdict.Unknown _ | Verdict.Failed _ -> ())
        verdicts
    end
  in
  Cmd.v
    (Cmd.info "sweep" ~exits:degraded_exits
       ~doc:
         "Run BMC against every bug in the catalog, fanning the checks out \
          over parallel worker domains.")
    Term.(
      const run $ obs_t $ config_arg $ method_ $ set $ bound $ budget
      $ jobs_arg $ stats_arg)

(* ---- sepe export --------------------------------------------------------- *)

let export_cmd =
  let format =
    Arg.(
      value & opt string "btor2"
      & info [ "f"; "format" ] ~doc:"Output format: btor2 or verilog.")
  in
  let method_ =
    Arg.(
      value & opt string "sepe"
      & info [ "m"; "method" ] ~doc:"QED model: sepe or sqed.")
  in
  let bug =
    Arg.(
      value & opt (some bug_conv) None
      & info [ "bug" ] ~docv:"BUG" ~doc:"Mutation to inject.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to a file (default: stdout).")
  in
  let run obs cfg format method_ bug out =
    with_obs obs @@ fun () ->
    let model =
      match method_ with
      | "sqed" -> Sqed_qed.Qed_top.eddi ?bug cfg
      | _ -> Sqed_qed.Qed_top.edsep ?bug cfg
    in
    let text =
      match format with
      | "verilog" -> Sqed_rtl.Verilog.to_string model.Sqed_qed.Qed_top.circuit
      | _ -> Sqed_rtl.Btor2.to_string model.Sqed_qed.Qed_top.circuit
    in
    match out with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export the QED verification model as BTOR2 or Verilog.")
    Term.(const run $ obs_t $ config_arg $ format $ method_ $ bug $ out)

(* ---- sepe sim -------------------------------------------------------------- *)

let sim_cmd =
  let file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Assembly file (one instruction per line).")
  in
  let bug =
    Arg.(
      value & opt (some bug_conv) None
      & info [ "bug" ] ~docv:"BUG" ~doc:"Mutation to inject.")
  in
  let run obs cfg file bug =
    with_obs obs @@ fun () ->
    let text = In_channel.with_open_text file In_channel.input_all in
    match Sqed_isa.Asm.parse_program text with
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 1
    | Ok program ->
        let piped = Sqed_proc.Testbench.run ?bug cfg program in
        let gold = Sqed_proc.Testbench.golden cfg program in
        Printf.printf "pipeline vs golden interpreter (%s):\n"
          (Config.to_string cfg);
        for i = 1 to cfg.Config.nregs - 1 do
          let a = Sqed_isa.Exec.reg piped i
          and b = Sqed_isa.Exec.reg gold i in
          if not (Sqed_bv.Bv.is_zero a) || not (Sqed_bv.Bv.is_zero b) then
            Printf.printf "  x%-2d  pipeline=%-12s golden=%-12s%s\n" i
              (Sqed_bv.Bv.to_string a) (Sqed_bv.Bv.to_string b)
              (if Sqed_bv.Bv.equal a b then "" else "  <-- DIVERGES")
        done;
        if Sqed_isa.Exec.equal piped gold then
          print_endline "states match."
        else print_endline "STATES DIVERGE."
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Run an assembly program on the pipeline and diff the golden model.")
    Term.(const run $ obs_t $ config_arg $ file $ bug)

(* ---- sepe campaign ----------------------------------------------------------- *)

let campaign_cmd =
  let method_ =
    Arg.(
      value & opt string "sepe"
      & info [ "m"; "method" ] ~doc:"QED scheme: sepe or sqed.")
  in
  let bug =
    Arg.(
      value & opt (some bug_conv) None
      & info [ "bug" ] ~docv:"BUG" ~doc:"Mutation to inject.")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Random programs.") in
  let len = Arg.(value & opt int 4 & info [ "len" ] ~doc:"Instructions per program.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let run obs cfg method_ bug runs len seed =
    with_obs obs @@ fun () ->
    let scheme =
      match method_ with
      | "sqed" -> Sqed_qed.Partition.Eddi
      | _ -> Sqed_qed.Partition.Edsep
    in
    let c =
      Sqed_qed.Qed_sim.campaign ?bug ~scheme ~seed ~runs ~program_length:len
        cfg
    in
    Printf.printf
      "concrete QED campaign (%s, %s): %d/%d runs detected a violation%s \
       (%d cycles total)\n"
      (match scheme with
      | Sqed_qed.Partition.Eddi -> "EDDI-V"
      | Sqed_qed.Partition.Edsep -> "EDSEP-V")
      (match bug with Some b -> Bug.name b | None -> "no bug")
      c.Sqed_qed.Qed_sim.detections c.Sqed_qed.Qed_sim.runs
      (match c.Sqed_qed.Qed_sim.first_detection with
      | Some i -> Printf.sprintf " (first at run %d)" i
      | None -> "")
      c.Sqed_qed.Qed_sim.total_cycles
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Concrete (non-symbolic) QED testing with random programs.")
    Term.(const run $ obs_t $ config_arg $ method_ $ bug $ runs $ len $ seed)

(* ---- sepe prove ----------------------------------------------------------- *)

let prove_cmd =
  let method_ =
    Arg.(
      value & opt string "sqed"
      & info [ "m"; "method" ] ~doc:"QED model: sepe or sqed.")
  in
  let bug =
    Arg.(
      value & opt (some bug_conv) None
      & info [ "bug" ] ~docv:"BUG" ~doc:"Mutation to inject.")
  in
  let max_k = Arg.(value & opt int 4 & info [ "max-k" ] ~doc:"Induction depth limit.") in
  let budget =
    Arg.(value & opt float 600.0 & info [ "budget" ] ~doc:"Time budget (seconds).")
  in
  let run obs cfg method_ bug max_k budget =
    with_obs obs @@ fun () ->
    let model =
      match method_ with
      | "sqed" -> Sqed_qed.Qed_top.eddi ?bug cfg
      | _ -> Sqed_qed.Qed_top.edsep ?bug cfg
    in
    let outcome, stats =
      Sqed_bmc.Engine.prove ~max_k ~time_budget:budget model
    in
    (match outcome with
    | Sqed_bmc.Engine.Proved k ->
        Printf.printf "PROVED: the property is %d-inductive (holds at every depth).\n" k
    | Sqed_bmc.Engine.Base_cex t ->
        Printf.printf "COUNTEREXAMPLE in the base case:\n%s\n"
          (Sqed_bmc.Trace.to_string t)
    | Sqed_bmc.Engine.Not_inductive k ->
        Printf.printf
          "inconclusive: not inductive up to k=%d (the property likely needs \
           auxiliary invariants).\n"
          k
    | Sqed_bmc.Engine.Proof_gave_up k ->
        let why =
          match stats.Sqed_bmc.Engine.gave_up with
          | Some reason -> Sqed_resil.Budget.string_of_reason reason
          | None -> "budget"
        in
        Printf.printf "gave up at k=%d (%s).\n" k why);
    Printf.printf "%.1fs, %d solver queries\n"
      stats.Sqed_bmc.Engine.solve_time stats.Sqed_bmc.Engine.bounds_checked
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Attempt an unbounded k-induction proof of the QED property.")
    Term.(const run $ obs_t $ config_arg $ method_ $ bug $ max_k $ budget)

(* ---- sepe solve ---------------------------------------------------------- *)

let solve_cmd =
  let file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A .smt2 (QF_BV) or .cnf (DIMACS) file.")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "max-conflicts" ] ~doc:"Conflict budget before giving up.")
  in
  let run obs file budget =
    with_obs obs @@ fun () ->
    let text = In_channel.with_open_text file In_channel.input_all in
    if Filename.check_suffix file ".cnf" then
      match Sqed_sat.Dimacs.parse text with
      | Error e ->
          Printf.eprintf "parse error: %s\n" e;
          exit 1
      | Ok cnf -> (
          match
            Sqed_sat.Dimacs.solve ~portfolio:obs.obs_portfolio
              ~deterministic:obs.obs_portfolio_det cnf
          with
          | Sqed_sat.Sat.Sat, Some model ->
              print_endline "sat";
              Array.iteri
                (fun i v ->
                  Printf.printf "%d " (if v then i + 1 else -(i + 1)))
                model;
              print_newline ()
          | Sqed_sat.Sat.Unsat, _ -> print_endline "unsat"
          | _ -> print_endline "unknown")
    else
      match Sqed_smt.Smtlib_parser.solve_script ?max_conflicts:budget text with
      | Error e ->
          Printf.eprintf "parse error: %s\n" e;
          exit 1
      | Ok (result, model) -> (
          match result with
          | Sqed_smt.Solver.Sat ->
              print_endline "sat";
              List.iter
                (fun (name, v) ->
                  Printf.printf "  %s = %s\n" name (Sqed_bv.Bv.to_string v))
                model
          | Sqed_smt.Solver.Unsat -> print_endline "unsat"
          | Sqed_smt.Solver.Unknown -> print_endline "unknown")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Run the built-in solvers on an SMT-LIB (QF_BV) or DIMACS file.")
    Term.(const run $ obs_t $ file $ budget)

(* ---- sepe doctor ----------------------------------------------------------- *)

let doctor_cmd =
  let run obs () =
    with_obs obs @@ fun () ->
    let check name f =
      Printf.printf "%-52s %!" (name ^ " ...");
      match f () with
      | Ok () -> print_endline "ok"
      | Error e ->
          print_endline ("FAILED: " ^ e);
          exit 1
    in
    let cfg = Config.tiny in
    check "equivalence table vs golden interpreter" (fun () ->
        let p = Sqed_qed.Partition.make Sqed_qed.Partition.Edsep cfg in
        Sqed_qed.Equiv_table.validate ~cfg ~partition:p
          (Sqed_qed.Equiv_table.builtin ~xlen:cfg.Config.xlen
             ~n_temp:p.Sqed_qed.Partition.n_temp));
    check "concrete QED campaign stays clean (no bug)" (fun () ->
        let c =
          Sqed_qed.Qed_sim.campaign ~scheme:Sqed_qed.Partition.Edsep ~seed:1
            ~runs:10 ~program_length:3 cfg
        in
        if c.Sqed_qed.Qed_sim.detections = 0 then Ok ()
        else Error "false positive in the unmutated design");
    check "BTOR2 export validates" (fun () ->
        let model = Sqed_qed.Qed_top.edsep cfg in
        Sqed_rtl.Btor2.validate
          (Sqed_rtl.Btor2.to_string model.Sqed_qed.Qed_top.circuit));
    check "BMC detects an injected bug (SEPE-SQED)" (fun () ->
        let r =
          V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10
            ~time_budget:300.0 cfg
        in
        if V.detected r then Ok () else Error "no counterexample found");
    check "counterexample replays on the simulator" (fun () ->
        let r =
          V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10
            ~time_budget:300.0 cfg
        in
        match V.trace r with
        | Some t ->
            let model = Sqed_qed.Qed_top.edsep ~bug:Bug.Bug_add cfg in
            if Sqed_bmc.Engine.replay model t then Ok ()
            else Error "witness did not replay"
        | None -> Error "no trace");
    check "SQED stays blind to the same bug" (fun () ->
        let r =
          V.run ~bug:Bug.Bug_add ~method_:V.Sqed ~bound:8 ~time_budget:300.0
            cfg
        in
        if V.detected r then Error "EDDI-V detected a uniform bug" else Ok ());
    print_endline "all checks passed."
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:"Self-check the whole stack on the smallest configuration.")
    Term.(const run $ obs_t $ const ())

(* ---- sepe fig3 ------------------------------------------------------------ *)

let fig3_cmd =
  let fast =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Reduced workload: 4 cases, k=2, one seed (same as `bench fig3 \
             --fast`).")
  in
  let no_witness =
    Arg.(
      value & flag
      & info [ "no-witness" ]
          ~doc:
            "Skip the trailing tiny BMC verification (keeps the run \
             synthesis-only).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Journal each completed (case, engine, seed) cell to $(docv) \
             (append-only JSON lines) and resume from it: a rerun with the \
             same file skips already-journaled cells and reuses their \
             numbers.")
  in
  let run obs fast no_witness jobs checkpoint =
    ledger_fast := fast;
    ledger_jobs := jobs;
    with_obs obs @@ fun () ->
    note_summary
      (Sqed_exp.Fig3.run ~fast
         ~jobs:(Option.value jobs ~default:0)
         ~witness:(not no_witness) ?checkpoint ())
  in
  Cmd.v
    (Cmd.info "fig3" ~exits:degraded_exits
       ~doc:
         "Run the paper's Fig. 3 synthesis experiment (plus a tiny BMC \
          witness), e.g. with --trace/--metrics to profile the whole \
          pipeline.")
    Term.(const run $ obs_t $ fast $ no_witness $ jobs_arg $ checkpoint)

(* ---- sepe runs ------------------------------------------------------------ *)

(* Browse and diff the persistent run ledger.  These commands are pure
   readers: they take their own --ledger argument (defaulting to the
   committed baseline archive) instead of the shared obs flags, so
   listing an archive never appends to it. *)

let runs_ledger_arg =
  Arg.(
    value
    & opt string "LEDGER_sepe.jsonl"
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "The run ledger to read: an append-only JSONL archive written by \
           $(b,sepe --ledger) / $(b,bench --ledger) (default: the committed \
           baseline ledger).")

let load_ledger path =
  let loaded = History.load path in
  if loaded.History.dropped > 0 then
    Printf.printf "note: dropped %d torn/invalid ledger line(s)\n"
      loaded.History.dropped;
  loaded.History.entries

(* 1-based index into the ledger, counted from the oldest entry, as
   printed by `runs list`; 0 or negative counts from the newest. *)
let nth_entry entries idx =
  let n = List.length entries in
  let i = if idx > 0 then idx - 1 else n - 1 + idx in
  if i < 0 || i >= n then None else Some (List.nth entries i)

let runs_list_cmd =
  let run path =
    match load_ledger path with
    | [] -> Printf.printf "ledger %s is empty\n" path
    | entries ->
        Printf.printf "idx  recorded          kind  label              \
                       commit   wall\n";
        List.iteri
          (fun i e -> print_endline (History.summary_line (i + 1) e))
          entries
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the archived runs, oldest first.")
    Term.(const run $ runs_ledger_arg)

let runs_show_cmd =
  let index =
    Arg.(
      value & pos 0 int 0
      & info [] ~docv:"INDEX"
          ~doc:
            "Entry to show, 1-based from the oldest (as printed by \
             $(b,runs list)); 0 or negative counts back from the newest.")
  in
  let run path idx =
    match nth_entry (load_ledger path) idx with
    | None ->
        Printf.eprintf "no entry %d in %s\n" idx path;
        exit 1
    | Some e -> print_endline (Json.to_string e)
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print one archived entry (default: the newest) as JSON.")
    Term.(const run $ runs_ledger_arg $ index)

let runs_compare_cmd =
  let base =
    Arg.(
      value & pos 0 int (-1)
      & info [] ~docv:"BASE"
          ~doc:
            "Baseline entry index (default: the second-newest).  1-based \
             from the oldest; 0 or negative counts back from the newest.")
  in
  let cur =
    Arg.(
      value & pos 1 int 0
      & info [] ~docv:"CURRENT"
          ~doc:"Entry to compare against BASE (default: the newest).")
  in
  let against_history =
    Arg.(
      value & flag
      & info [ "against-history" ]
          ~doc:
            "Instead of a two-run A/B diff, check CURRENT against the \
             noise band (median +- k*MAD) of every config-compatible \
             earlier entry — the same math as the $(b,bench --baseline) \
             sentinel.")
  in
  let gate =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Exit with the regression code (5) when a gated metric — \
             per-experiment wall/clauses/conflicts or the run wall — \
             regresses.  For CI.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Print every metric delta, counters included (default: gated \
             metrics plus anything that left its band).")
  in
  let run path base_idx cur_idx against_history gate all =
    let entries = load_ledger path in
    if List.length entries < 2 then begin
      Printf.eprintf
        "ledger %s has %d entr%s; comparing needs at least 2\n" path
        (List.length entries)
        (if List.length entries = 1 then "y" else "ies");
      exit 1
    end;
    let want e = match History.run_of e with Some r -> r | None -> Json.Null in
    match (nth_entry entries base_idx, nth_entry entries cur_idx) with
    | None, _ | _, None ->
        Printf.eprintf "entry index out of range for %s\n" path;
        exit 1
    | Some base_e, Some cur_e ->
        let deltas =
          if against_history then begin
            let earlier =
              (* Everything strictly before CURRENT, config-compatible. *)
              let rec before acc = function
                | [] -> List.rev acc
                | e :: _ when e == cur_e -> List.rev acc
                | e :: rest -> before (e :: acc) rest
              in
              before [] entries
              |> List.filter (History.compatible cur_e)
              |> List.filter_map History.run_of
            in
            Printf.printf
              "checking entry vs the noise band of %d compatible earlier \
               run(s)\n"
              (List.length earlier);
            Diff.compare_history ~history:earlier ~cur:(want cur_e) ()
          end
          else begin
            if not (History.compatible base_e cur_e) then
              Printf.printf
                "note: the two entries have different {jobs,fast,simplify,\
                 aig,portfolio} configs; deltas may reflect config, not \
                 code\n";
            Diff.compare_runs ~base:(want base_e) ~cur:(want cur_e) ()
          end
        in
        List.iter
          (fun d ->
            if
              all
              || Diff.gated d.Diff.dl_metric
              || d.Diff.dl_verdict = Diff.Regressed
              || d.Diff.dl_verdict = Diff.Improved
            then print_endline (Diff.to_string d))
          deltas;
        let regs = Diff.regressions deltas in
        if regs <> [] then begin
          Printf.printf "%d gated metric(s) regressed\n" (List.length regs);
          if gate then regression_exit := true
        end
        else Printf.printf "no gated regressions\n"
  in
  Cmd.v
    (Cmd.info "compare" ~exits:degraded_exits
       ~doc:
         "Diff two archived runs, or one run against the noise band of its \
          history.")
    Term.(const run $ runs_ledger_arg $ base $ cur $ against_history $ gate $ all)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs"
       ~doc:
         "Browse and diff the persistent run ledger (see $(b,--ledger) on \
          the other subcommands).")
    [ runs_list_cmd; runs_show_cmd; runs_compare_cmd ]

let main =
  Cmd.group
    (Cmd.info "sepe" ~version:"1.0"
       ~doc:
         "SEPE-SQED: symbolic quick error detection by semantically \
          equivalent program execution (DAC 2024 reproduction).")
    [
      bugs_cmd; synth_cmd; table_cmd; verify_cmd; sweep_cmd; export_cmd;
      sim_cmd; campaign_cmd; solve_cmd; prove_cmd; doctor_cmd; fig3_cmd;
      runs_cmd;
    ]

let () =
  let code =
    match Cmd.eval main with
    | 0 ->
        (* Degraded campaign verdicts (3/4) outrank the sentinel: a run
           that wasn't clean has no trustworthy perf numbers to gate. *)
        if !degraded_exit > 0 then !degraded_exit
        else if !regression_exit then 5
        else 0
    | n -> n
  in
  (* Degraded exit: close the flight recorder with the last warnings so
     the reason is visible without re-running under --log. *)
  if code = 3 || code = 4 then begin
    let tail = Obs_log.tail ~min_level:Obs_log.Warn 10 in
    if tail <> [] then begin
      Printf.eprintf "last %d warning/error events:\n" (List.length tail);
      Obs_log.dump_tail ~min_level:Obs_log.Warn 10 stderr
    end
  end;
  exit code
