(* QED layer tests: partitions, program-level template equivalence (the key
   property: executing an original instruction on the O-side and its
   expanded equivalent sequence on the E-side from a QED-consistent state
   leaves the compared pair equal), and concrete simulation of the full
   QED-top circuit with and without injected bugs. *)

module Bv = Sqed_bv.Bv
module Insn = Sqed_isa.Insn
module Exec = Sqed_isa.Exec
module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Partition = Sqed_qed.Partition
module Equiv_table = Sqed_qed.Equiv_table
module Qed_top = Sqed_qed.Qed_top
module Sim = Sqed_rtl.Sim

(* ---------------------------------------------------------------- *)
(* Partitions                                                        *)
(* ---------------------------------------------------------------- *)

let test_partition_sizes () =
  let p32 = Partition.make Partition.Edsep Config.rv32 in
  Alcotest.(check int) "rv32 |O|" 13 p32.Partition.n_orig;
  Alcotest.(check int) "rv32 |T|" 6 p32.Partition.n_temp;
  let p16 = Partition.make Partition.Edsep Config.small in
  Alcotest.(check int) "small |O|" 6 p16.Partition.n_orig;
  Alcotest.(check int) "small |T|" 4 p16.Partition.n_temp;
  let p8 = Partition.make Partition.Edsep Config.tiny in
  Alcotest.(check int) "tiny |O|" 3 p8.Partition.n_orig;
  Alcotest.(check int) "tiny |T|" 2 p8.Partition.n_temp;
  let e32 = Partition.make Partition.Eddi Config.rv32 in
  Alcotest.(check int) "eddi |O|" 16 e32.Partition.n_orig;
  Alcotest.(check int) "eddi |T|" 0 e32.Partition.n_temp

let test_partition_mapping () =
  let p = Partition.make Partition.Edsep Config.rv32 in
  Alcotest.(check int) "map 0" 13 (Partition.map_reg p 0);
  Alcotest.(check int) "map 12" 25 (Partition.map_reg p 12);
  Alcotest.(check int) "temp 0" 26 (Partition.temp_reg p 0);
  Alcotest.(check int) "temp 5" 31 (Partition.temp_reg p 5);
  Alcotest.(check bool) "in_orig" true (Partition.in_orig p 12);
  Alcotest.(check bool) "not in_orig" false (Partition.in_orig p 13);
  Alcotest.(check bool) "in_equiv" true (Partition.in_equiv p 13);
  Alcotest.(check int) "13 pairs" 13 (List.length (Partition.orig_compare_pairs p))

(* ---------------------------------------------------------------- *)
(* Template equivalence (program level)                              *)
(* ---------------------------------------------------------------- *)

(* Random legal original instruction confined to the partition's O set and
   original memory half. *)
let random_original cfg p rng =
  Partition.random_original p ~ext_m:cfg.Config.ext_m
    ~ext_div:cfg.Config.ext_div rng

(* A QED-consistent random state: E mirrors O, shadow memory mirrors the
   original half, temporaries arbitrary. *)
let consistent_state cfg p rng =
  let st = Exec.create ~xlen:cfg.Config.xlen ~mem_words:cfg.Config.mem_words in
  for i = 1 to p.Partition.n_orig - 1 do
    let v = Bv.random rng cfg.Config.xlen in
    Exec.set_reg st i v;
    Exec.set_reg st (Partition.map_reg p i) v
  done;
  List.iter
    (fun t -> Exec.set_reg st t (Bv.random rng cfg.Config.xlen))
    (Partition.temps p);
  for w = 0 to p.Partition.mem_half - 1 do
    let v = Bv.random rng cfg.Config.xlen in
    Exec.store st (Bv.of_int ~width:cfg.Config.xlen w) v;
    Exec.store st
      (Bv.of_int ~width:cfg.Config.xlen (w + p.Partition.mem_half))
      v
  done;
  st

let equivalent_after cfg p table st insn =
  (* Execute the original on one copy, its expansion on another, and
     compare the O/E views. *)
  let st_o = Exec.copy st and st_e = Exec.copy st in
  Exec.exec st_o insn;
  List.iter (Exec.exec st_e) (Equiv_table.expand table p insn);
  let ok_rd =
    match Insn.rd insn with
    | Some rd when rd <> 0 ->
        Bv.equal (Exec.reg st_o rd) (Exec.reg st_e (Partition.map_reg p rd))
    | _ -> true
  in
  let ok_mem =
    match insn with
    | Insn.Sw (_, _, imm) ->
        let a = Bv.of_int ~width:cfg.Config.xlen imm in
        let a' =
          Bv.of_int ~width:cfg.Config.xlen (imm + p.Partition.mem_half)
        in
        Bv.equal (Exec.load st_o a) (Exec.load st_e a')
    | _ -> true
  in
  ok_rd && ok_mem

let table_equivalence_prop cfg scheme =
  let p = Partition.make scheme cfg in
  let table =
    match scheme with
    | Partition.Eddi -> Equiv_table.duplicate
    | Partition.Edsep ->
        Equiv_table.builtin ~xlen:cfg.Config.xlen ~n_temp:p.Partition.n_temp
  in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s table equivalent (%s)"
         (match scheme with Partition.Eddi -> "EDDI" | Partition.Edsep -> "EDSEP")
         (Config.to_string cfg))
    ~count:400
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let insn = random_original cfg p rng in
      let st = consistent_state cfg p rng in
      equivalent_after cfg p table st insn)

(* EDSEP equivalent sequences must confine their writes to E and T. *)
let edsep_write_discipline cfg =
  let p = Partition.make Partition.Edsep cfg in
  let table =
    Equiv_table.builtin ~xlen:cfg.Config.xlen ~n_temp:p.Partition.n_temp
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "EDSEP write discipline (%s)" (Config.to_string cfg))
    ~count:400
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let insn = random_original cfg p rng in
      let seq = Equiv_table.expand table p insn in
      let e_writes = ref 0 in
      let ok =
        List.for_all
          (fun i ->
            match Insn.rd i with
            | None -> true
            | Some rd ->
                if Partition.in_equiv p rd then begin
                  incr e_writes;
                  true
                end
                else List.mem rd (Partition.temps p))
          seq
      in
      (* Exactly one E write iff the original writes a register. *)
      let expected_e = match Insn.rd insn with Some _ -> 1 | None -> 0 in
      ok && !e_writes = expected_e)

let test_table_shapes () =
  let table = Equiv_table.builtin ~xlen:8 ~n_temp:4 in
  Alcotest.(check int) "SUB is Listing 2 (3 insns)" 3
    (Equiv_table.seq_len table (Equiv_table.Kr Insn.SUB));
  Alcotest.(check int) "ADD 2 insns" 2
    (Equiv_table.seq_len table (Equiv_table.Kr Insn.ADD));
  Alcotest.(check int) "SLT narrow 3 insns" 3
    (Equiv_table.seq_len table (Equiv_table.Kr Insn.SLT));
  Alcotest.(check bool) "max temps within 4" true
    (Equiv_table.max_temps table <= 4);
  let wide = Equiv_table.builtin ~xlen:32 ~n_temp:6 in
  Alcotest.(check int) "SLT wide 8 insns" 8
    (Equiv_table.seq_len wide (Equiv_table.Kr Insn.SLT));
  Alcotest.(check bool) "table prints" true
    (String.length (Equiv_table.to_string table) > 100)

let test_expand_listing2 () =
  (* The paper's Listing 2 at the rv32 partition. *)
  let p = Partition.make Partition.Edsep Config.rv32 in
  let table = Equiv_table.builtin ~xlen:32 ~n_temp:6 in
  let seq = Equiv_table.expand table p (Insn.R (Insn.SUB, 1, 2, 3)) in
  Alcotest.(check (list string)) "listing 2"
    [ "XORI x26, x15, -1"; "ADD x27, x26, x16"; "XORI x14, x27, -1" ]
    (List.map Insn.to_string seq)

let test_table_text_roundtrip () =
  List.iter
    (fun table ->
      match Equiv_table.of_string (Equiv_table.to_string table) with
      | Error e -> Alcotest.fail e
      | Ok table' ->
          Alcotest.(check bool) "roundtrip equal" true (table = table'))
    [
      Equiv_table.builtin ~xlen:8 ~n_temp:4;
      Equiv_table.builtin ~xlen:32 ~n_temp:6;
      Equiv_table.duplicate;
    ]

let test_table_text_errors () =
  List.iter
    (fun src ->
      match Equiv_table.of_string src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ src))
    [
      "BOGUS -> [ADD rd', rs1', rs2']";
      "ADD -> ADD rd', rs1', rs2'";
      "ADD -> [ADD rd', rs1']";
      "ADD -> [ADD rd', rs1', r9]";
      "ADD -> []";
    ]

let test_table_validate () =
  let cfg = Config.small in
  let p = Partition.make Partition.Edsep cfg in
  let good = Equiv_table.builtin ~xlen:cfg.Config.xlen ~n_temp:p.Partition.n_temp in
  (match Equiv_table.validate ~cfg ~partition:p good with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* A wrong template must be caught. *)
  let bad =
    (Equiv_table.Kr Insn.ADD,
     [ Equiv_table.TR (Insn.SUB, Equiv_table.Rd, Equiv_table.Rs1, Equiv_table.Rs2) ])
    :: List.remove_assoc (Equiv_table.Kr Insn.ADD) good
  in
  match Equiv_table.validate ~cfg ~partition:p bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad table accepted"

let test_custom_table_in_model () =
  (* A user-supplied textual table drives the program-level transform. *)
  let src = "ADD -> [SUB t0, x0, rs2'; SUB rd', rs1', t0]" in
  match Equiv_table.of_string src with
  | Error e -> Alcotest.fail e
  | Ok table ->
      let p = Partition.make Partition.Edsep Config.small in
      let seq = Equiv_table.expand table p (Insn.R (Insn.ADD, 1, 2, 3)) in
      Alcotest.(check int) "two instructions" 2 (List.length seq)

let test_expand_rejects_outside_o () =
  let p = Partition.make Partition.Edsep Config.rv32 in
  let table = Equiv_table.builtin ~xlen:32 ~n_temp:6 in
  Alcotest.(check bool) "rejects rs outside O" true
    (try
       ignore (Equiv_table.expand table p (Insn.R (Insn.ADD, 1, 20, 3)));
       false
     with Failure _ -> true)

(* ---------------------------------------------------------------- *)
(* QED-top circuit: concrete simulation                              *)
(* ---------------------------------------------------------------- *)

(* Drive a sequence of originals through the model (sel=1: originals have
   priority; the queue drains in between), then drain and report whether
   [bad] ever fired and whether the run ended QED-ready. *)
let drive model origs =
  let sim = Sim.create model.Qed_top.circuit in
  let bad_seen = ref false in
  let ready_consistent = ref false in
  let observe outs =
    if not (Bv.is_zero (List.assoc "bad" outs)) then bad_seen := true;
    if
      (not (Bv.is_zero (List.assoc "qed_ready" outs)))
      && not (Bv.is_zero (List.assoc "consistent" outs))
    then ready_consistent := true
  in
  let inject insn =
    let word = Sqed_isa.Encode.encode insn in
    let rec go tries =
      if tries > 40 then failwith "drive: original never accepted";
      let outs =
        Sim.cycle sim
          [ ("orig_instr", word); ("orig_valid", Bv.one 1); ("sel", Bv.one 1) ]
      in
      observe outs;
      let consumed = not (Bv.is_zero (List.assoc "consumed" outs)) in
      let is_orig = not (Bv.is_zero (List.assoc "is_orig" outs)) in
      if not (consumed && is_orig) then go (tries + 1)
    in
    go 0
  in
  List.iter inject origs;
  for _ = 1 to 40 do
    let outs =
      Sim.cycle sim
        [ ("orig_instr", Bv.zero 32); ("orig_valid", Bv.zero 1); ("sel", Bv.zero 1) ]
    in
    observe outs
  done;
  (!bad_seen, !ready_consistent)

let addi rd rs1 imm = Insn.I (Insn.ADDI, rd, rs1, imm)

let test_sim_clean_run () =
  List.iter
    (fun model ->
      let bad, ready =
        drive model
          [ addi 1 0 5; Insn.R (Insn.ADD, 2, 1, 1); Insn.Sw (2, 0, 1); Insn.Lw (1, 0, 1) ]
      in
      Alcotest.(check bool) "no bad" false bad;
      Alcotest.(check bool) "reaches consistent ready" true ready)
    [ Qed_top.edsep Config.small; Qed_top.eddi Config.small ]

let test_sim_bug_detected_edsep () =
  let model = Qed_top.edsep ~bug:Bug.Bug_add Config.small in
  let bad, _ = drive model [ addi 1 0 5; Insn.R (Insn.ADD, 2, 1, 1) ] in
  Alcotest.(check bool) "EDSEP catches add bug" true bad

let test_sim_bug_missed_eddi () =
  (* The single-instruction bug perturbs original and duplicate equally:
     EDDI stays consistent on the same stimulus. *)
  let model = Qed_top.eddi ~bug:Bug.Bug_add Config.small in
  let bad, ready = drive model [ addi 1 0 5; Insn.R (Insn.ADD, 2, 1, 1) ] in
  Alcotest.(check bool) "EDDI misses add bug" false bad;
  Alcotest.(check bool) "still reaches ready" true ready

let test_sim_random_clean =
  (* No false positives: the unmutated model must never assert [bad]. *)
  QCheck.Test.make ~name:"no false positives (sim, both schemes)" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let cfg = Config.small in
      let scheme, model =
        if Random.State.bool rng then (Partition.Edsep, Qed_top.edsep cfg)
        else (Partition.Eddi, Qed_top.eddi cfg)
      in
      let p = Partition.make scheme cfg in
      let n = 1 + Random.State.int rng 4 in
      let origs = List.init n (fun _ -> random_original cfg p rng) in
      let bad, ready = drive model origs in
      (not bad) && ready)

let suite =
  [
    Alcotest.test_case "partition sizes" `Quick test_partition_sizes;
    Alcotest.test_case "partition mapping" `Quick test_partition_mapping;
    Alcotest.test_case "table shapes" `Quick test_table_shapes;
    Alcotest.test_case "expand listing 2" `Quick test_expand_listing2;
    Alcotest.test_case "expand rejects outside O" `Quick
      test_expand_rejects_outside_o;
    Alcotest.test_case "table text roundtrip" `Quick test_table_text_roundtrip;
    Alcotest.test_case "table text errors" `Quick test_table_text_errors;
    Alcotest.test_case "custom table in model" `Quick
      test_custom_table_in_model;
    Alcotest.test_case "table validate" `Quick test_table_validate;
    Alcotest.test_case "sim clean run" `Quick test_sim_clean_run;
    Alcotest.test_case "sim edsep detects" `Quick test_sim_bug_detected_edsep;
    Alcotest.test_case "sim eddi misses" `Quick test_sim_bug_missed_eddi;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [
        table_equivalence_prop Config.small_m Partition.Edsep;
        table_equivalence_prop Config.small_m Partition.Eddi;
        table_equivalence_prop Config.rv32 Partition.Edsep;
        table_equivalence_prop Config.tiny Partition.Edsep;
        edsep_write_discipline Config.small;
        edsep_write_discipline Config.rv32;
        test_sim_random_clean;
      ]
