(* Unit and property tests for the CDCL SAT solver.  Properties compare the
   solver's verdict against brute-force enumeration on small random CNFs. *)

module Sat = Sqed_sat.Sat

let result_t = Alcotest.testable
    (Fmt.of_to_string (function
      | Sat.Sat -> "SAT"
      | Sat.Unsat -> "UNSAT"
      | Sat.Unknown -> "UNKNOWN"))
    ( = )

let mk_vars s n = Array.init n (fun _ -> Sat.new_var s)

let test_trivial_sat () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ Sat.pos v ];
  Alcotest.check result_t "unit clause" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "model" true (Sat.value s v)

let test_trivial_unsat () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ Sat.pos v ];
  Sat.add_clause s [ Sat.neg_of_var v ];
  Alcotest.check result_t "x and not x" Sat.Unsat (Sat.solve s)

let test_empty_clause () =
  let s = Sat.create () in
  let _ = Sat.new_var s in
  Sat.add_clause s [];
  Alcotest.check result_t "empty clause" Sat.Unsat (Sat.solve s)

let test_no_clauses () =
  let s = Sat.create () in
  let _ = mk_vars s 3 in
  Alcotest.check result_t "no clauses" Sat.Sat (Sat.solve s)

let test_implication_chain () =
  (* x0 -> x1 -> ... -> x19, x0 asserted, ~x19 asserted: UNSAT. *)
  let s = Sat.create () in
  let v = mk_vars s 20 in
  for i = 0 to 18 do
    Sat.add_clause s [ Sat.neg_of_var v.(i); Sat.pos v.(i + 1) ]
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  Sat.add_clause s [ Sat.neg_of_var v.(19) ];
  Alcotest.check result_t "chain" Sat.Unsat (Sat.solve s)

let test_chain_sat_model () =
  let s = Sat.create () in
  let v = mk_vars s 20 in
  for i = 0 to 18 do
    Sat.add_clause s [ Sat.neg_of_var v.(i); Sat.pos v.(i + 1) ]
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  Alcotest.check result_t "chain sat" Sat.Sat (Sat.solve s);
  for i = 0 to 19 do
    Alcotest.(check bool) (Printf.sprintf "x%d true" i) true (Sat.value s v.(i))
  done

let test_xor_chain () =
  (* Parity constraints force a unique solution; check solver agrees. *)
  let s = Sat.create () in
  let v = mk_vars s 10 in
  let xor_true a b =
    (* a xor b = 1 *)
    Sat.add_clause s [ Sat.pos a; Sat.pos b ];
    Sat.add_clause s [ Sat.neg_of_var a; Sat.neg_of_var b ]
  in
  for i = 0 to 8 do
    xor_true v.(i) v.(i + 1)
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  Alcotest.check result_t "xor chain" Sat.Sat (Sat.solve s);
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "alternating %d" i)
      (i mod 2 = 0) (Sat.value s v.(i))
  done

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance. *)
  let s = Sat.create () in
  let p = Array.init 3 (fun _ -> mk_vars s 2) in
  (* Each pigeon in some hole. *)
  Array.iter (fun row -> Sat.add_clause s [ Sat.pos row.(0); Sat.pos row.(1) ]) p;
  (* No two pigeons share a hole. *)
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Sat.add_clause s [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
      done
    done
  done;
  Alcotest.check result_t "php(3,2)" Sat.Unsat (Sat.solve s)

let test_pigeonhole_6_5 () =
  let s = Sat.create () in
  let n = 6 in
  let p = Array.init n (fun _ -> mk_vars s (n - 1)) in
  Array.iter
    (fun row -> Sat.add_clause s (Array.to_list (Array.map Sat.pos row)))
    p;
  for h = 0 to n - 2 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Sat.add_clause s [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
      done
    done
  done;
  Alcotest.check result_t "php(6,5)" Sat.Unsat (Sat.solve s)

let test_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.neg_of_var a; Sat.pos b ];
  Alcotest.check result_t "assume a" Sat.Sat
    (Sat.solve ~assumptions:[ Sat.pos a ] s);
  Alcotest.(check bool) "b forced" true (Sat.value s b);
  Alcotest.check result_t "assume a, ~b" Sat.Unsat
    (Sat.solve ~assumptions:[ Sat.pos a; Sat.neg_of_var b ] s);
  (* Solver must remain usable after an assumption failure. *)
  Alcotest.check result_t "no assumptions still sat" Sat.Sat (Sat.solve s)

let test_incremental () =
  let s = Sat.create () in
  let v = mk_vars s 4 in
  Sat.add_clause s [ Sat.pos v.(0); Sat.pos v.(1) ];
  Alcotest.check result_t "first" Sat.Sat (Sat.solve s);
  Sat.add_clause s [ Sat.neg_of_var v.(0) ];
  Sat.add_clause s [ Sat.neg_of_var v.(1) ];
  Alcotest.check result_t "after strengthening" Sat.Unsat (Sat.solve s)

let test_duplicate_and_tautology () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  (* Tautological clause must be ignored, duplicated literals collapsed. *)
  Sat.add_clause s [ Sat.pos a; Sat.neg_of_var a ];
  Sat.add_clause s [ Sat.pos a; Sat.pos a ];
  Alcotest.check result_t "sat" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "a true" true (Sat.value s a)

let test_stats () =
  let s = Sat.create () in
  let v = mk_vars s 8 in
  for i = 0 to 6 do
    Sat.add_clause s [ Sat.neg_of_var v.(i); Sat.pos v.(i + 1) ]
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  ignore (Sat.solve s);
  let st = Sat.stats s in
  Alcotest.(check bool) "propagated" true (st.Sat.propagations > 0)

let test_dimacs_units_unsat () =
  (* An instance that is UNSAT only through absorbed unit clauses: units
     never reach the clause database (they are applied to the trail at add
     time), so an export without the level-0 trail would flip the
     re-parsed verdict to SAT. *)
  let module D = Sqed_sat.Dimacs in
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a ];
  Sat.add_clause s [ Sat.neg_of_var a; Sat.pos b ];
  Sat.add_clause s [ Sat.neg_of_var b ];
  (match D.parse (Sat.to_dimacs s) with
  | Error e -> Alcotest.fail ("parse: " ^ e)
  | Ok cnf ->
      Alcotest.(check bool) "exports a unit clause" true
        (List.exists (fun c -> List.length c <= 1) cnf.D.clauses);
      Alcotest.check result_t "reparsed verdict" Sat.Unsat (fst (D.solve cnf)));
  Alcotest.check result_t "direct verdict" Sat.Unsat (Sat.solve s)

let test_dimacs_units_pin_model () =
  (* SAT instance whose units pin part of the model: every model of the
     re-exported CNF must agree with the pinned values. *)
  let module D = Sqed_sat.Dimacs in
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  let c = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a ];
  Sat.add_clause s [ Sat.neg_of_var b ];
  Sat.add_clause s [ Sat.pos b; Sat.pos c; Sat.neg_of_var a ];
  match D.parse (Sat.to_dimacs s) with
  | Error e -> Alcotest.fail ("parse: " ^ e)
  | Ok cnf -> (
      match D.solve cnf with
      | Sat.Sat, Some m ->
          Alcotest.(check bool) "a pinned true" true m.(0);
          Alcotest.(check bool) "b pinned false" false m.(1);
          Alcotest.(check bool) "c forced by a, ~b" true m.(2)
      | _ -> Alcotest.fail "re-parsed instance should be SAT with a model")

(* ---------------------------------------------------------------- *)
(* Property: agreement with brute force on random 3-CNF              *)
(* ---------------------------------------------------------------- *)

type cnf = int list list (* positive ints 1..n, negative for negated *)

let gen_cnf ~nvars ~nclauses : cnf QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_lit =
    map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (nvars - 1)) bool
  in
  list_size (return nclauses) (list_size (int_range 1 3) gen_lit)

let brute_force ~nvars (cnf : cnf) =
  let rec go assignment i =
    if i = nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let v = abs l - 1 in
              if l > 0 then assignment.(v) else not assignment.(v))
            clause)
        cnf
    else begin
      assignment.(i) <- false;
      go assignment (i + 1)
      ||
      (assignment.(i) <- true;
       go assignment (i + 1))
    end
  in
  go (Array.make nvars false) 0

let solver_verdict ~nvars (cnf : cnf) =
  let s = Sat.create () in
  let v = mk_vars s nvars in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  Sat.solve s = Sat.Sat

let model_satisfies ~nvars (cnf : cnf) =
  let s = Sat.create () in
  let v = mk_vars s nvars in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  match Sat.solve s with
  | Sat.Unsat | Sat.Unknown -> true (* nothing to check *)
  | Sat.Sat ->
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let b = Sat.value s v.(abs l - 1) in
              if l > 0 then b else not b)
            clause)
        cnf

let cnf_print cnf =
  String.concat " & "
    (List.map
       (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
       cnf)

let dimacs_roundtrip ~nvars (cnf : cnf) =
  (* Loading the CNF into a solver and re-exporting it must preserve the
     exact verdict: level-0 trail literals (absorbed units and their
     propagations) are exported as unit clauses and a derived empty clause
     is exported explicitly. *)
  let module D = Sqed_sat.Dimacs in
  let s = Sat.create () in
  let v = mk_vars s nvars in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  (* Export before solving: the harder direction, since the trail holds
     only load-time units at this point. *)
  match D.parse (Sat.to_dimacs s) with
  | Error _ -> false
  | Ok reparsed -> fst (D.solve reparsed) = Sat.solve s

(* The fuzz check exercises all three propagation paths: unit clauses
   (level-0 trail), binary clauses (dedicated watch lists) and longer
   clauses (blocker-guarded watch lists). *)
let fuzz_check ~nvars (cnf : cnf) =
  let s = Sat.create () in
  let v = mk_vars s nvars in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  match Sat.solve s with
  | Sat.Unknown -> false
  | Sat.Unsat -> not (brute_force ~nvars cnf)
  | Sat.Sat ->
      brute_force ~nvars cnf
      && List.for_all
           (fun clause ->
             List.exists
               (fun l ->
                 let b = Sat.value s v.(abs l - 1) in
                 if l > 0 then b else not b)
               clause)
           cnf

let gen_cnf_mixed ~nvars ~max_len : cnf QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_lit =
    map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (nvars - 1)) bool
  in
  int_range 10 60 >>= fun ncl ->
  list_size (return ncl) (list_size (int_range 1 max_len) gen_lit)

let props =
  let nvars = 8 in
  let arb n = QCheck.make ~print:cnf_print (gen_cnf ~nvars ~nclauses:n) in
  let arb_mixed ~nvars ~max_len =
    QCheck.make ~print:cnf_print (gen_cnf_mixed ~nvars ~max_len)
  in
  [
    QCheck.Test.make ~name:"agrees with brute force (sparse)" ~count:200
      (arb 12)
      (fun cnf -> solver_verdict ~nvars cnf = brute_force ~nvars cnf);
    QCheck.Test.make ~name:"agrees with brute force (dense)" ~count:200
      (arb 40)
      (fun cnf -> solver_verdict ~nvars cnf = brute_force ~nvars cnf);
    QCheck.Test.make ~name:"models satisfy the formula" ~count:200 (arb 25)
      (fun cnf -> model_satisfies ~nvars cnf);
    QCheck.Test.make ~name:"dimacs export exact verdict" ~count:150 (arb 20)
      (fun cnf -> dimacs_roundtrip ~nvars cnf);
    (* >= 500 random instances vs brute force (the ISSUE's fuzz floor):
       binary-heavy CNFs stress the dedicated binary watch lists, mixed
       widths at 14 variables stress the blocker fast path. *)
    QCheck.Test.make ~name:"fuzz vs brute force (binary-heavy)" ~count:300
      (arb_mixed ~nvars:10 ~max_len:2)
      (fun cnf -> fuzz_check ~nvars:10 cnf);
    QCheck.Test.make ~name:"fuzz vs brute force (mixed, 14 vars)" ~count:300
      (arb_mixed ~nvars:14 ~max_len:4)
      (fun cnf -> fuzz_check ~nvars:14 cnf);
    QCheck.Test.make ~name:"dimacs roundtrip (mixed, 12 vars)" ~count:150
      (arb_mixed ~nvars:12 ~max_len:4)
      (fun cnf -> dimacs_roundtrip ~nvars:12 cnf);
  ]

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "no clauses" `Quick test_no_clauses;
    Alcotest.test_case "implication chain unsat" `Quick test_implication_chain;
    Alcotest.test_case "implication chain model" `Quick test_chain_sat_model;
    Alcotest.test_case "xor chain" `Quick test_xor_chain;
    Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
    Alcotest.test_case "pigeonhole 6/5" `Quick test_pigeonhole_6_5;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental" `Quick test_incremental;
    Alcotest.test_case "tautology handling" `Quick test_duplicate_and_tautology;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "dimacs keeps units (unsat)" `Quick
      test_dimacs_units_unsat;
    Alcotest.test_case "dimacs keeps units (model)" `Quick
      test_dimacs_units_pin_model;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
