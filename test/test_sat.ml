(* Unit and property tests for the CDCL SAT solver.  Properties compare the
   solver's verdict against brute-force enumeration on small random CNFs. *)

module Sat = Sqed_sat.Sat

let result_t = Alcotest.testable
    (Fmt.of_to_string (function
      | Sat.Sat -> "SAT"
      | Sat.Unsat -> "UNSAT"
      | Sat.Unknown -> "UNKNOWN"))
    ( = )

let mk_vars s n = Array.init n (fun _ -> Sat.new_var s)

let test_trivial_sat () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ Sat.pos v ];
  Alcotest.check result_t "unit clause" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "model" true (Sat.value s v)

let test_trivial_unsat () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ Sat.pos v ];
  Sat.add_clause s [ Sat.neg_of_var v ];
  Alcotest.check result_t "x and not x" Sat.Unsat (Sat.solve s)

let test_empty_clause () =
  let s = Sat.create () in
  let _ = Sat.new_var s in
  Sat.add_clause s [];
  Alcotest.check result_t "empty clause" Sat.Unsat (Sat.solve s)

let test_no_clauses () =
  let s = Sat.create () in
  let _ = mk_vars s 3 in
  Alcotest.check result_t "no clauses" Sat.Sat (Sat.solve s)

let test_implication_chain () =
  (* x0 -> x1 -> ... -> x19, x0 asserted, ~x19 asserted: UNSAT. *)
  let s = Sat.create () in
  let v = mk_vars s 20 in
  for i = 0 to 18 do
    Sat.add_clause s [ Sat.neg_of_var v.(i); Sat.pos v.(i + 1) ]
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  Sat.add_clause s [ Sat.neg_of_var v.(19) ];
  Alcotest.check result_t "chain" Sat.Unsat (Sat.solve s)

let test_chain_sat_model () =
  let s = Sat.create () in
  let v = mk_vars s 20 in
  for i = 0 to 18 do
    Sat.add_clause s [ Sat.neg_of_var v.(i); Sat.pos v.(i + 1) ]
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  Alcotest.check result_t "chain sat" Sat.Sat (Sat.solve s);
  for i = 0 to 19 do
    Alcotest.(check bool) (Printf.sprintf "x%d true" i) true (Sat.value s v.(i))
  done

let test_xor_chain () =
  (* Parity constraints force a unique solution; check solver agrees. *)
  let s = Sat.create () in
  let v = mk_vars s 10 in
  let xor_true a b =
    (* a xor b = 1 *)
    Sat.add_clause s [ Sat.pos a; Sat.pos b ];
    Sat.add_clause s [ Sat.neg_of_var a; Sat.neg_of_var b ]
  in
  for i = 0 to 8 do
    xor_true v.(i) v.(i + 1)
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  Alcotest.check result_t "xor chain" Sat.Sat (Sat.solve s);
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "alternating %d" i)
      (i mod 2 = 0) (Sat.value s v.(i))
  done

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance. *)
  let s = Sat.create () in
  let p = Array.init 3 (fun _ -> mk_vars s 2) in
  (* Each pigeon in some hole. *)
  Array.iter (fun row -> Sat.add_clause s [ Sat.pos row.(0); Sat.pos row.(1) ]) p;
  (* No two pigeons share a hole. *)
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Sat.add_clause s [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
      done
    done
  done;
  Alcotest.check result_t "php(3,2)" Sat.Unsat (Sat.solve s)

let test_pigeonhole_6_5 () =
  let s = Sat.create () in
  let n = 6 in
  let p = Array.init n (fun _ -> mk_vars s (n - 1)) in
  Array.iter
    (fun row -> Sat.add_clause s (Array.to_list (Array.map Sat.pos row)))
    p;
  for h = 0 to n - 2 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Sat.add_clause s [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
      done
    done
  done;
  Alcotest.check result_t "php(6,5)" Sat.Unsat (Sat.solve s)

let test_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.neg_of_var a; Sat.pos b ];
  Alcotest.check result_t "assume a" Sat.Sat
    (Sat.solve ~assumptions:[ Sat.pos a ] s);
  Alcotest.(check bool) "b forced" true (Sat.value s b);
  Alcotest.check result_t "assume a, ~b" Sat.Unsat
    (Sat.solve ~assumptions:[ Sat.pos a; Sat.neg_of_var b ] s);
  (* Solver must remain usable after an assumption failure. *)
  Alcotest.check result_t "no assumptions still sat" Sat.Sat (Sat.solve s)

let test_incremental () =
  let s = Sat.create () in
  let v = mk_vars s 4 in
  Sat.add_clause s [ Sat.pos v.(0); Sat.pos v.(1) ];
  Alcotest.check result_t "first" Sat.Sat (Sat.solve s);
  Sat.add_clause s [ Sat.neg_of_var v.(0) ];
  Sat.add_clause s [ Sat.neg_of_var v.(1) ];
  Alcotest.check result_t "after strengthening" Sat.Unsat (Sat.solve s)

let test_duplicate_and_tautology () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  (* Tautological clause must be ignored, duplicated literals collapsed. *)
  Sat.add_clause s [ Sat.pos a; Sat.neg_of_var a ];
  Sat.add_clause s [ Sat.pos a; Sat.pos a ];
  Alcotest.check result_t "sat" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "a true" true (Sat.value s a)

let test_stats () =
  let s = Sat.create () in
  let v = mk_vars s 8 in
  for i = 0 to 6 do
    Sat.add_clause s [ Sat.neg_of_var v.(i); Sat.pos v.(i + 1) ]
  done;
  Sat.add_clause s [ Sat.pos v.(0) ];
  ignore (Sat.solve s);
  let st = Sat.stats s in
  Alcotest.(check bool) "propagated" true (st.Sat.propagations > 0)

(* ---------------------------------------------------------------- *)
(* Property: agreement with brute force on random 3-CNF              *)
(* ---------------------------------------------------------------- *)

type cnf = int list list (* positive ints 1..n, negative for negated *)

let gen_cnf ~nvars ~nclauses : cnf QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_lit =
    map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (nvars - 1)) bool
  in
  list_size (return nclauses) (list_size (int_range 1 3) gen_lit)

let brute_force ~nvars (cnf : cnf) =
  let rec go assignment i =
    if i = nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let v = abs l - 1 in
              if l > 0 then assignment.(v) else not assignment.(v))
            clause)
        cnf
    else begin
      assignment.(i) <- false;
      go assignment (i + 1)
      ||
      (assignment.(i) <- true;
       go assignment (i + 1))
    end
  in
  go (Array.make nvars false) 0

let solver_verdict ~nvars (cnf : cnf) =
  let s = Sat.create () in
  let v = mk_vars s nvars in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  Sat.solve s = Sat.Sat

let model_satisfies ~nvars (cnf : cnf) =
  let s = Sat.create () in
  let v = mk_vars s nvars in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  match Sat.solve s with
  | Sat.Unsat | Sat.Unknown -> true (* nothing to check *)
  | Sat.Sat ->
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let b = Sat.value s v.(abs l - 1) in
              if l > 0 then b else not b)
            clause)
        cnf

let cnf_print cnf =
  String.concat " & "
    (List.map
       (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
       cnf)

let dimacs_roundtrip ~nvars (cnf : cnf) =
  (* Loading the CNF into a solver and re-exporting it must preserve
     satisfiability (clauses may be simplified or dropped as tautologies). *)
  let module D = Sqed_sat.Dimacs in
  let s = Sat.create () in
  let v = mk_vars s nvars in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  match D.parse (Sat.to_dimacs s) with
  | Error _ -> false
  | Ok reparsed ->
      let direct = Sat.solve s = Sat.Sat in
      (* [s] now carries a model or refutation; a fresh solve of the
         re-parsed instance must agree whenever no unit clauses were
         absorbed at load time (units are applied eagerly and don't appear
         in the export, so only equi-satisfiability can be required). *)
      let reparsed_sat = fst (D.solve reparsed) in
      (not direct) || reparsed_sat <> Sat.Unsat

let props =
  let nvars = 8 in
  let arb n = QCheck.make ~print:cnf_print (gen_cnf ~nvars ~nclauses:n) in
  [
    QCheck.Test.make ~name:"agrees with brute force (sparse)" ~count:200
      (arb 12)
      (fun cnf -> solver_verdict ~nvars cnf = brute_force ~nvars cnf);
    QCheck.Test.make ~name:"agrees with brute force (dense)" ~count:200
      (arb 40)
      (fun cnf -> solver_verdict ~nvars cnf = brute_force ~nvars cnf);
    QCheck.Test.make ~name:"models satisfy the formula" ~count:200 (arb 25)
      (fun cnf -> model_satisfies ~nvars cnf);
    QCheck.Test.make ~name:"dimacs export equisatisfiable" ~count:150 (arb 20)
      (fun cnf -> dimacs_roundtrip ~nvars cnf);
  ]

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "no clauses" `Quick test_no_clauses;
    Alcotest.test_case "implication chain unsat" `Quick test_implication_chain;
    Alcotest.test_case "implication chain model" `Quick test_chain_sat_model;
    Alcotest.test_case "xor chain" `Quick test_xor_chain;
    Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
    Alcotest.test_case "pigeonhole 6/5" `Quick test_pigeonhole_6_5;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental" `Quick test_incremental;
    Alcotest.test_case "tautology handling" `Quick test_duplicate_and_tautology;
    Alcotest.test_case "stats" `Quick test_stats;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
