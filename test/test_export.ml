(* Tests for the interchange layers: DIMACS CNF, BTOR2 and Verilog export,
   waveforms, and the concrete QED simulation campaigns. *)

module Bv = Sqed_bv.Bv
module Sat = Sqed_sat.Sat
module Dimacs = Sqed_sat.Dimacs
module C = Sqed_rtl.Circuit
module Node = Sqed_rtl.Node
module Btor2 = Sqed_rtl.Btor2
module Verilog = Sqed_rtl.Verilog
module Waveform = Sqed_rtl.Waveform
module Sim = Sqed_rtl.Sim
module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Qed_top = Sqed_qed.Qed_top
module Qed_sim = Sqed_qed.Qed_sim
module Partition = Sqed_qed.Partition

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------------------------------------------------------- *)
(* DIMACS                                                            *)
(* ---------------------------------------------------------------- *)

let test_dimacs_parse () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  match Dimacs.parse text with
  | Error e -> Alcotest.fail e
  | Ok cnf ->
      Alcotest.(check int) "vars" 3 cnf.Dimacs.num_vars;
      Alcotest.(check int) "clauses" 2 (List.length cnf.Dimacs.clauses);
      Alcotest.(check (list (list int))) "content" [ [ 1; -2 ]; [ 2; 3 ] ]
        cnf.Dimacs.clauses

let test_dimacs_errors () =
  Alcotest.(check bool) "bad token" true
    (match Dimacs.parse "p cnf 1 1\nx 0\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "literal out of range" true
    (match Dimacs.parse "p cnf 1 1\n5 0\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "clause count mismatch" true
    (match Dimacs.parse "p cnf 1 2\n1 0\n" with Error _ -> true | Ok _ -> false)

let test_dimacs_roundtrip_solve () =
  let cnf = { Dimacs.num_vars = 2; clauses = [ [ 1 ]; [ -1; 2 ] ] } in
  (match Dimacs.parse (Dimacs.print cnf) with
  | Ok cnf' -> Alcotest.(check bool) "roundtrip" true (cnf = cnf')
  | Error e -> Alcotest.fail e);
  match Dimacs.solve cnf with
  | Sat.Sat, Some model ->
      Alcotest.(check bool) "x1" true model.(0);
      Alcotest.(check bool) "x2" true model.(1)
  | _ -> Alcotest.fail "expected SAT with model"

let test_dimacs_unsat () =
  let cnf = { Dimacs.num_vars = 1; clauses = [ [ 1 ]; [ -1 ] ] } in
  match Dimacs.solve cnf with
  | Sat.Unsat, None -> ()
  | _ -> Alcotest.fail "expected UNSAT"

(* ---------------------------------------------------------------- *)
(* BTOR2 / Verilog                                                   *)
(* ---------------------------------------------------------------- *)

let sample_circuit () =
  let b = C.create "sample" in
  let x = C.input b "x" 4 in
  let r = C.reg_const b ~name:"acc" ~width:4 0 in
  C.connect b r (C.add b r x);
  let sym = C.reg b ~name:"free" ~init:(Node.Symbolic_init "free0") ~width:2 in
  C.connect b sym sym;
  C.output b "acc" r;
  C.output b "bad" (C.eq b r (C.consti b ~width:4 15));
  C.output b "assume_ok" (C.ule b x (C.consti b ~width:4 7));
  C.finalize b

let test_btor2_structure () =
  let s = Btor2.to_string (sample_circuit ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "sort bitvec 4"; "input"; "state"; "next"; "init"; "bad"; "constraint" ];
  (* The symbolic register must have no init line: count inits = 1. *)
  let inits =
    String.split_on_char '\n' s
    |> List.filter (fun l -> contains l " init ")
  in
  Alcotest.(check int) "one init" 1 (List.length inits)

let test_btor2_qed_top () =
  (* Export of the full verification model must succeed and carry a bad
     property plus a constraint. *)
  let model = Qed_top.edsep ~bug:Bug.Bug_add Config.tiny in
  let s = Btor2.to_string model.Qed_top.circuit in
  Alcotest.(check bool) "bad" true (contains s " bad ");
  Alcotest.(check bool) "constraint" true (contains s " constraint ");
  Alcotest.(check bool) "substantial" true (String.length s > 10_000)

let test_btor2_validates () =
  (* Our own exports must pass the well-formedness checker. *)
  List.iter
    (fun circuit ->
      match Btor2.validate (Btor2.to_string circuit) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [
      sample_circuit ();
      (Qed_top.edsep Config.tiny).Qed_top.circuit;
      (Qed_top.eddi ~bug:Bug.Bug_sw Config.tiny).Qed_top.circuit;
    ]

let test_btor2_validator_rejects () =
  List.iter
    (fun (label, text) ->
      match Btor2.validate text with
      | Error _ -> ()
      | Ok () -> Alcotest.fail ("accepted " ^ label))
    [
      ("non-increasing ids", "1 sort bitvec 4\n1 input 1 x\n");
      ("undefined operand", "1 sort bitvec 4\n2 not 1 9\n");
      ("const width mismatch", "1 sort bitvec 4\n2 const 1 01\n");
      ("bad as word", "1 sort bitvec 4\n2 input 1 x\n3 bad 2\n");
      ( "slice out of range",
        "1 sort bitvec 4\n2 input 1 x\n3 sort bitvec 2\n4 slice 3 2 7 6\n" );
    ]

let test_verilog_structure () =
  let s = Verilog.to_string ~module_name:"sample" (sample_circuit ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [
      "module sample"; "input  wire clk"; "output wire"; "always @(posedge clk)";
      "endmodule"; "assign";
    ]

let test_verilog_qed_top () =
  let model = Qed_top.eddi Config.tiny in
  let s = Verilog.to_string model.Qed_top.circuit in
  Alcotest.(check bool) "emits" true (String.length s > 10_000);
  Alcotest.(check bool) "no unsanitized brackets in identifiers" true
    (not (contains s "r_dmem["))

(* ---------------------------------------------------------------- *)
(* Waveform                                                          *)
(* ---------------------------------------------------------------- *)

let test_waveform () =
  let w = Waveform.create () in
  Waveform.record w [ ("clk", Bv.one 1); ("data", Bv.of_int ~width:8 5) ];
  Waveform.record w [ ("clk", Bv.zero 1); ("data", Bv.of_int ~width:8 5) ];
  Waveform.record w [ ("clk", Bv.one 1); ("data", Bv.of_int ~width:8 9) ];
  let s = Waveform.to_string w in
  Alcotest.(check bool) "clk row" true (contains s "clk");
  Alcotest.(check bool) "bit drawing" true (contains s "#_#");
  Alcotest.(check bool) "hex value" true (contains s "09");
  let only = Waveform.to_string ~signals:[ "data" ] w in
  Alcotest.(check bool) "filtered" true (not (contains only "clk"))

let test_waveform_from_sim () =
  let b = C.create "cnt" in
  let en = C.input b "en" 1 in
  let r = C.reg_const b ~name:"n" ~width:4 0 in
  C.connect b r (C.mux b en (C.add b r (C.consti b ~width:4 1)) r);
  C.output b "n" r;
  let c = C.finalize b in
  let sim = Sim.create c in
  let w = Waveform.create () in
  for _ = 1 to 5 do
    Waveform.record_outputs w sim [ ("en", Bv.one 1) ]
  done;
  Alcotest.(check bool) "counts up" true
    (contains (Waveform.to_string w) "4")

(* ---------------------------------------------------------------- *)
(* Concrete QED campaigns                                            *)
(* ---------------------------------------------------------------- *)

let test_campaign_clean () =
  (* No bug: zero detections, every run must reach a consistent ready
     state. *)
  let c =
    Qed_sim.campaign ~scheme:Partition.Edsep ~seed:11 ~runs:20
      ~program_length:3 Config.small
  in
  Alcotest.(check int) "no detections" 0 c.Qed_sim.detections;
  Alcotest.(check int) "ran all" 20 c.Qed_sim.runs

let test_campaign_detects () =
  (* A single-instruction bug is eventually caught by concrete EDSEP
     testing (probabilistically, hence many short runs). *)
  let c =
    Qed_sim.campaign ~bug:Bug.Bug_add ~scheme:Partition.Edsep ~seed:3
      ~runs:60 ~program_length:4 Config.small
  in
  Alcotest.(check bool) "some detection" true (c.Qed_sim.detections > 0)

let test_campaign_eddi_blind () =
  (* Concrete EDDI testing shares SQED's blindness to uniform bugs. *)
  let c =
    Qed_sim.campaign ~bug:Bug.Bug_add ~scheme:Partition.Eddi ~seed:3 ~runs:40
      ~program_length:4 Config.small
  in
  Alcotest.(check int) "no detections" 0 c.Qed_sim.detections

let suite =
  [
    Alcotest.test_case "dimacs parse" `Quick test_dimacs_parse;
    Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
    Alcotest.test_case "dimacs roundtrip+solve" `Quick
      test_dimacs_roundtrip_solve;
    Alcotest.test_case "dimacs unsat" `Quick test_dimacs_unsat;
    Alcotest.test_case "btor2 structure" `Quick test_btor2_structure;
    Alcotest.test_case "btor2 qed-top" `Quick test_btor2_qed_top;
    Alcotest.test_case "btor2 validates own output" `Quick test_btor2_validates;
    Alcotest.test_case "btor2 validator rejects" `Quick
      test_btor2_validator_rejects;
    Alcotest.test_case "verilog structure" `Quick test_verilog_structure;
    Alcotest.test_case "verilog qed-top" `Quick test_verilog_qed_top;
    Alcotest.test_case "waveform" `Quick test_waveform;
    Alcotest.test_case "waveform from sim" `Quick test_waveform_from_sim;
    Alcotest.test_case "campaign clean" `Quick test_campaign_clean;
    Alcotest.test_case "campaign detects" `Quick test_campaign_detects;
    Alcotest.test_case "campaign eddi blind" `Quick test_campaign_eddi_blind;
  ]
