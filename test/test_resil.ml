(* The resilience layer: budgets, fault injection, the checkpoint
   journal, supervised pool mapping, and — the property the whole
   cancellation design hangs on — that a budget-interrupted solve leaves
   the incremental solver in exactly the state an uninterrupted one
   would be in. *)

module Budget = Sqed_resil.Budget
module Fault = Sqed_resil.Fault
module Journal = Sqed_resil.Journal
module Verdict = Sqed_resil.Verdict
module Json = Sqed_obs.Json
module Pool = Sqed_par.Pool
module Sat = Sqed_sat.Sat
module Term = Sqed_smt.Term
module Solver = Sqed_smt.Solver

(* ---- budgets --------------------------------------------------------- *)

let test_budget_unlimited () =
  let b = Budget.create () in
  Alcotest.(check bool) "no limits is unlimited" true (Budget.is_unlimited b);
  for _ = 1 to 10_000 do
    Budget.check b
  done;
  Alcotest.(check bool) "never over" true (Budget.over b = None)

let spin_until_exhausted b =
  try
    (* The clock is only sampled every few hundred ticks, so give the
       check loop plenty of iterations. *)
    for _ = 1 to 100_000 do
      Budget.check b
    done;
    None
  with Budget.Exhausted r -> Some r

let test_budget_deadline () =
  let b = Budget.create ~deadline:(Unix.gettimeofday () -. 1.0) () in
  Alcotest.(check bool)
    "over reports deadline" true
    (Budget.over b = Some Budget.Deadline);
  let b = Budget.create ~deadline:(Unix.gettimeofday () -. 1.0) () in
  Alcotest.(check bool)
    "check raises Deadline" true
    (spin_until_exhausted b = Some Budget.Deadline)

let test_budget_conflicts () =
  let b = Budget.create ~max_conflicts:5 () in
  Budget.charge b 3;
  Budget.check b;
  Budget.charge b 2;
  Alcotest.(check bool)
    "cap consumed" true
    (spin_until_exhausted b = Some Budget.Conflicts);
  Alcotest.(check bool)
    "keeps raising" true
    (spin_until_exhausted b = Some Budget.Conflicts)

let test_budget_cancel () =
  let b = Budget.create ~max_conflicts:1000 () in
  Budget.cancel b;
  Alcotest.(check bool)
    "cancelled" true
    (spin_until_exhausted b = Some Budget.Cancelled)

let test_budget_ambient () =
  Alcotest.(check bool)
    "default ambient is unlimited" true
    (Budget.is_unlimited (Budget.current ()));
  let b = Budget.create ~max_conflicts:7 () in
  Budget.with_current b (fun () ->
      Alcotest.(check bool) "bound inside" true (Budget.current () == b));
  Alcotest.(check bool)
    "restored outside" true
    (Budget.is_unlimited (Budget.current ()))

(* ---- fault injection ------------------------------------------------- *)

let test_fault_nth () =
  Fault.configure "site_a:2";
  Fault.check "site_a";
  (* 1st: armed but not yet *)
  Alcotest.check_raises "2nd check fires" (Fault.Injected "site_a") (fun () ->
      Fault.check "site_a");
  Fault.check "site_a";
  (* 3rd: Nth fires once *)
  Fault.check "other_site";
  (* other sites unaffected *)
  Fault.reset ()

let test_fault_every () =
  Fault.configure "site_b:1/2";
  let fired i =
    match Fault.check "site_b" with
    | () -> false
    | exception Fault.Injected _ -> i |> ignore; true
  in
  Alcotest.(check (list bool))
    "fires on 1, 3, 5"
    [ true; false; true; false; true ]
    (List.map fired [ 1; 2; 3; 4; 5 ]);
  Fault.reset ()

let test_fault_spec_errors () =
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | () -> Alcotest.failf "accepted malformed spec %S" spec
      | exception Invalid_argument _ -> ())
    [ "nocolon"; "site:"; "site:0"; "site:x"; "site:p200@1" ];
  Fault.reset ()

(* ---- checkpoint journal ---------------------------------------------- *)

let with_temp_journal f =
  let path = Filename.temp_file "sepe_test_journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_journal_roundtrip () =
  with_temp_journal @@ fun path ->
  let j = Journal.open_ path in
  Alcotest.(check bool) "empty journal" false (Journal.mem j "a");
  Journal.record j "a" (Json.Int 1);
  Journal.record j "b" (Json.String "row");
  Journal.close j;
  let j2 = Journal.open_ path in
  Alcotest.(check bool) "a resumed" true (Journal.mem j2 "a");
  Alcotest.(check bool)
    "b value survives" true
    (Journal.find j2 "b" = Some (Json.String "row"));
  Alcotest.(check int) "two entries" 2 (Journal.entries j2);
  Journal.close j2

let test_journal_torn_line () =
  with_temp_journal @@ fun path ->
  let j = Journal.open_ path in
  Journal.record j "a" (Json.Int 1);
  Journal.close j;
  (* Simulate a crash mid-append: a torn trailing line, no newline. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"key\":\"b\",\"resu";
  close_out oc;
  let j2 = Journal.open_ path in
  Alcotest.(check int) "torn line dropped" 1 (Journal.entries j2);
  (* Appending after the torn line must not fuse onto its bytes. *)
  Journal.record j2 "c" (Json.Int 3);
  Journal.close j2;
  let j3 = Journal.open_ path in
  Alcotest.(check bool) "post-torn record readable" true (Journal.mem j3 "c");
  Alcotest.(check int) "a and c survive" 2 (Journal.entries j3);
  Journal.close j3

let test_journal_fault () =
  with_temp_journal @@ fun path ->
  let j = Journal.open_ path in
  Fault.configure "checkpoint.write:1";
  (match Journal.try_record j "a" (Json.Int 1) with
  | Ok () -> Alcotest.fail "injected append did not fail"
  | Error _ -> ());
  Fault.reset ();
  Alcotest.(check bool)
    "failed append left no entry" false (Journal.mem j "a");
  Alcotest.(check bool)
    "next append works" true
    (Journal.try_record j "a" (Json.Int 1) = Ok ());
  Journal.close j

(* ---- supervised pool mapping ----------------------------------------- *)

let test_map_result_ok () =
  Pool.with_pool ~jobs:2 @@ fun p ->
  let rs = Pool.map_result p (fun x -> x * x) [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int))
    "all ok in order" [ 1; 4; 9; 16 ]
    (List.map (function Ok v -> v | Error _ -> -1) rs)

let test_map_result_transient_retry () =
  Pool.with_pool ~jobs:1 @@ fun p ->
  let attempts = ref 0 in
  let rs =
    Pool.map_result p ~backoff:0.001
      (fun x ->
        incr attempts;
        if !attempts = 1 then failwith "flaky";
        x * 2)
      [ 21 ]
  in
  Alcotest.(check bool) "retried to success" true (rs = [ Ok 42 ]);
  Alcotest.(check int) "two attempts" 2 !attempts

let test_map_result_persistent_failure () =
  Pool.with_pool ~jobs:1 @@ fun p ->
  match Pool.map_result p ~retries:2 ~backoff:0.001 (fun _ -> failwith "boom") [ () ] with
  | [ Error e ] ->
      Alcotest.(check int) "initial + 2 retries" 3 e.Pool.attempts;
      Alcotest.(check bool) "not a budget failure" false e.Pool.exhausted
  | _ -> Alcotest.fail "expected one Error"

let test_map_result_injected_not_retried () =
  Fault.configure "pool.task:1";
  let rs =
    Pool.with_pool ~jobs:1 (fun p ->
        Pool.map_result p ~retries:3 ~backoff:0.001 (fun x -> x) [ 1; 2 ])
  in
  Fault.reset ();
  match rs with
  | [ Error e; Ok 2 ] ->
      Alcotest.(check int) "injected fault fails immediately" 1 e.Pool.attempts
  | _ -> Alcotest.fail "expected first task injected, second ok"

let test_map_result_task_deadline () =
  Pool.with_pool ~jobs:1 @@ fun p ->
  let rs =
    Pool.map_result p ~task_deadline:0.0
      (fun x ->
        for _ = 1 to 100_000 do
          Budget.check (Budget.current ())
        done;
        x)
      [ 1 ]
  in
  match rs with
  | [ Error e ] ->
      Alcotest.(check bool) "deadline maps to exhausted" true e.Pool.exhausted;
      Alcotest.(check int) "budget exhaustion is not retried" 1 e.Pool.attempts
  | _ -> Alcotest.fail "expected the task's ambient budget to expire"

let test_map_failfast_jobs1_runs_all () =
  let ran = ref 0 in
  (try
     Pool.with_pool ~jobs:1 (fun p ->
         ignore
           (Pool.map p
              (fun x ->
                incr ran;
                if x = 3 then failwith "task 3 crashed";
                x)
              [ 1; 2; 3; 4; 5 ]));
     Alcotest.fail "map swallowed the exception"
   with Failure msg -> Alcotest.(check string) "first error" "task 3 crashed" msg);
  Alcotest.(check int) "jobs=1 runs every task before re-raising" 5 !ran

let test_map_failfast_pool_reusable () =
  Pool.with_pool ~jobs:3 @@ fun p ->
  (try
     ignore
       (Pool.map p
          (fun x -> if x = 1 then failwith "early crash" else x)
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
     Alcotest.fail "map swallowed the exception"
   with Failure _ -> ());
  Alcotest.(check (list int))
    "pool survives a failed batch" [ 10; 20 ]
    (Pool.map p (fun x -> x * 10) [ 1; 2 ])

(* ---- verdicts --------------------------------------------------------- *)

let test_verdict_summary () =
  let s =
    Verdict.count ~skipped:2
      [ Verdict.Ok (); Verdict.Ok (); Verdict.Unknown "slow"; Verdict.Failed "x" ]
  in
  Alcotest.(check bool) "degraded" true (Verdict.degraded s);
  Alcotest.(check int) "failed dominates exit" 4 (Verdict.exit_code s);
  Alcotest.(check int) "unknown-only exits 3" 3
    (Verdict.exit_code (Verdict.count [ Verdict.Ok (); Verdict.Unknown "u" ]));
  Alcotest.(check int) "clean exits 0" 0
    (Verdict.exit_code (Verdict.count [ Verdict.Ok () ]))

(* ---- cancellation soundness (SAT level) ------------------------------- *)

(* An interrupted (Unknown) solve must leave the solver in a state where
   continued incremental use agrees with a solver that was never
   interrupted: same clauses, same final answers. *)

let random_cnf st ids nclauses =
  List.init nclauses (fun _ ->
      let len = 1 + Random.State.int st 3 in
      List.init len (fun _ ->
          let v = ids.(Random.State.int st (Array.length ids)) in
          if Random.State.bool st then Sat.pos v else Sat.neg_of_var v))

let test_sat_interrupted_agrees () =
  let st = Random.State.make [| 0x5e9e |] in
  for _round = 1 to 25 do
    let nvars = 8 + Random.State.int st 8 in
    let s_int = Sat.create () and s_ref = Sat.create () in
    let ids = Array.init nvars (fun _ -> Sat.new_var s_int) in
    let ids_ref = Array.init nvars (fun _ -> Sat.new_var s_ref) in
    Alcotest.(check bool)
      "fresh solvers allocate identical ids" true (ids = ids_ref);
    let first = random_cnf st ids (2 * nvars) in
    let second = random_cnf st ids nvars in
    List.iter (Sat.add_clause s_int) first;
    List.iter (Sat.add_clause s_ref) first;
    (* Interrupt: a conflict cap of zero stops the search at the first
       conflict; trivially decided instances may still answer. *)
    (match Sat.solve ~max_conflicts:0 s_int with
    | Sat.Sat | Sat.Unsat | Sat.Unknown -> ());
    (* Also interrupt via an installed budget that is already spent. *)
    Sat.set_budget s_int (Budget.create ~deadline:(Unix.gettimeofday () -. 1.0) ());
    (match Sat.solve s_int with
    | Sat.Unknown -> ()
    | Sat.Sat | Sat.Unsat -> ());
    Sat.set_budget s_int Budget.unlimited;
    (* Continue incrementally on both and compare final verdicts. *)
    List.iter (Sat.add_clause s_int) second;
    List.iter (Sat.add_clause s_ref) second;
    let a = Sat.solve s_int and b = Sat.solve s_ref in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: interrupted solver agrees" _round)
      true (a = b);
    Alcotest.(check bool) "reference answered" true (b <> Sat.Unknown)
  done

(* ---- cancellation soundness (SMT level, simplify x AIG matrix) -------- *)

let rec random_term st vars depth =
  if depth = 0 then
    match Random.State.int st 3 with
    | 0 -> Term.of_int ~width:8 (Random.State.int st 256)
    | _ -> vars.(Random.State.int st (Array.length vars))
  else
    let a = random_term st vars (depth - 1) in
    let b = random_term st vars (depth - 1) in
    match Random.State.int st 7 with
    | 0 -> Term.add a b
    | 1 -> Term.sub a b
    | 2 -> Term.and_ a b
    | 3 -> Term.or_ a b
    | 4 -> Term.xor a b
    | 5 -> Term.mul a b
    | _ -> Term.ite (Term.ult a b) a b

let random_constraint st vars =
  let a = random_term st vars 3 and b = random_term st vars 3 in
  match Random.State.int st 3 with
  | 0 -> Term.eq a b
  | 1 -> Term.ult a b
  | _ -> Term.distinct a b

let test_smt_interrupted_agrees () =
  let vars = Array.init 3 (fun i -> Term.var (Printf.sprintf "rz%d" i) 8) in
  List.iter
    (fun (simplify, aig) ->
      let st = Random.State.make [| 0xca11; Bool.to_int simplify; Bool.to_int aig |] in
      for round = 1 to 6 do
        let phi1 = random_constraint st vars in
        let phi2 = random_constraint st vars in
        let s_int = Solver.create ~simplify ~aig () in
        let s_ref = Solver.create ~simplify ~aig () in
        Solver.assert_ s_int phi1;
        Solver.assert_ s_ref phi1;
        (* Interrupted check: a deadline in the past bounds the whole
           call, so it must answer Unknown without corrupting state. *)
        Alcotest.(check bool)
          (Printf.sprintf "simplify=%b aig=%b round %d: past deadline is \
                           Unknown" simplify aig round)
          true
          (Solver.check ~deadline:(Unix.gettimeofday () -. 1.0) s_int
          = Solver.Unknown);
        Solver.assert_ s_int phi2;
        Solver.assert_ s_ref phi2;
        let a = Solver.check s_int and b = Solver.check s_ref in
        Alcotest.(check bool)
          (Printf.sprintf "simplify=%b aig=%b round %d: verdicts agree"
             simplify aig round)
          true (a = b);
        (* A Sat answer must come with a model satisfying both
           constraints — on the previously interrupted solver too. *)
        if a = Solver.Sat then
          Alcotest.(check bool)
            "model satisfies the assertions" true
            (Sqed_bv.Bv.to_int
               (Solver.model_value s_int (Term.and_ phi1 phi2))
            = 1)
      done)
    [ (true, true); (true, false); (false, true); (false, false) ]

(* ---- acceptance: deadline below bit-blast time ------------------------ *)

let test_deadline_below_bitblast () =
  let s = Solver.create () in
  (* Heavy encoding: wide multiplies and a divider chain blast far more
     gates than a 50 ms budget allows.  Passed as an assumption so the
     blasting happens inside the budgeted check, not at assert time. *)
  let x = Term.var "heavy_x" 64 and y = Term.var "heavy_y" 64 in
  let heavy = ref (Term.mul x y) in
  for _ = 1 to 6 do
    heavy := Term.mul (Term.udiv !heavy (Term.add y (Term.of_int ~width:64 3))) x
  done;
  let assumption = Term.distinct !heavy (Term.of_int ~width:64 1) in
  let budget_s = 0.05 in
  let t0 = Unix.gettimeofday () in
  let r = Solver.check ~assumptions:[ assumption ] ~deadline:(t0 +. budget_s) s in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "mid-blast deadline answers Unknown" true (r = Solver.Unknown);
  (* The issue's acceptance bound is 2x the deadline; allow generous CI
     slack on top — the point is seconds-vs-milliseconds, not jitter. *)
  Alcotest.(check bool)
    (Printf.sprintf "returned within bound (%.3fs)" elapsed)
    true
    (elapsed < Float.max (2.0 *. budget_s) 1.0);
  (* The solver must remain usable: finish with a trivial check. *)
  let z = Term.var "heavy_z" 8 in
  Solver.assert_ s (Term.eq z (Term.of_int ~width:8 5));
  Alcotest.(check bool) "solver reusable after Unknown" true (Solver.check s = Solver.Sat);
  Alcotest.(check bool)
    "model readable" true
    (Sqed_bv.Bv.to_int (Solver.model_var s z) = 5)

let suite =
  [
    Alcotest.test_case "budget: unlimited" `Quick test_budget_unlimited;
    Alcotest.test_case "budget: deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget: conflict cap" `Quick test_budget_conflicts;
    Alcotest.test_case "budget: cancel" `Quick test_budget_cancel;
    Alcotest.test_case "budget: ambient binding" `Quick test_budget_ambient;
    Alcotest.test_case "fault: site:N" `Quick test_fault_nth;
    Alcotest.test_case "fault: site:N/M" `Quick test_fault_every;
    Alcotest.test_case "fault: malformed specs" `Quick test_fault_spec_errors;
    Alcotest.test_case "journal: roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal: torn line" `Quick test_journal_torn_line;
    Alcotest.test_case "journal: injected write fault" `Quick test_journal_fault;
    Alcotest.test_case "map_result: all ok" `Quick test_map_result_ok;
    Alcotest.test_case "map_result: transient retry" `Quick
      test_map_result_transient_retry;
    Alcotest.test_case "map_result: persistent failure" `Quick
      test_map_result_persistent_failure;
    Alcotest.test_case "map_result: injected not retried" `Quick
      test_map_result_injected_not_retried;
    Alcotest.test_case "map_result: task deadline" `Quick
      test_map_result_task_deadline;
    Alcotest.test_case "map: jobs=1 runs all then re-raises" `Quick
      test_map_failfast_jobs1_runs_all;
    Alcotest.test_case "map: pool reusable after failure" `Quick
      test_map_failfast_pool_reusable;
    Alcotest.test_case "verdict: summary and exit codes" `Quick
      test_verdict_summary;
    Alcotest.test_case "sat: interrupted solver agrees (fuzz)" `Quick
      test_sat_interrupted_agrees;
    Alcotest.test_case "smt: interrupted solver agrees (matrix fuzz)" `Quick
      test_smt_interrupted_agrees;
    Alcotest.test_case "smt: deadline below bit-blast time" `Quick
      test_deadline_below_bitblast;
  ]
