(* Unit and property tests for the Bv bitvector substrate. *)

module Bv = Sqed_bv.Bv

let check_bv msg expected actual =
  Alcotest.(check string) msg (Bv.to_string expected) (Bv.to_string actual)

let bv = Bv.of_int

(* ---------------------------------------------------------------- *)
(* Unit tests                                                        *)
(* ---------------------------------------------------------------- *)

let test_construct () =
  Alcotest.(check int) "width" 8 (Bv.width (Bv.zero 8));
  Alcotest.(check int) "to_int zero" 0 (Bv.to_int (Bv.zero 8));
  Alcotest.(check int) "to_int one" 1 (Bv.to_int (Bv.one 8));
  Alcotest.(check int) "ones 8" 255 (Bv.to_int (Bv.ones 8));
  Alcotest.(check int) "min_signed 8" 128 (Bv.to_int (Bv.min_signed 8));
  Alcotest.(check int) "of_int trunc" 0x34 (Bv.to_int (bv ~width:8 0x1234));
  Alcotest.(check int) "of_int neg" 0xFF (Bv.to_int (bv ~width:8 (-1)));
  Alcotest.(check int) "of_int neg wide" 0xFFFF (Bv.to_int (bv ~width:16 (-1)))

let test_construct_wide () =
  let v = Bv.ones 100 in
  Alcotest.(check int) "popcount ones 100" 100 (Bv.popcount v);
  Alcotest.(check bool) "redand" true (Bv.redand v);
  let w = Bv.zero 100 in
  Alcotest.(check bool) "redor zero" false (Bv.redor w);
  Alcotest.(check bool) "wide add wraps" true
    (Bv.equal (Bv.add v (Bv.one 100)) (Bv.zero 100))

let test_strings () =
  Alcotest.(check int) "bin" 10 (Bv.to_int (Bv.of_binary_string "1010"));
  Alcotest.(check int) "bin underscore" 10 (Bv.to_int (Bv.of_binary_string "10_10"));
  Alcotest.(check int) "hex" 0xAB (Bv.to_int (Bv.of_hex_string ~width:8 "ab"));
  Alcotest.(check string) "to_bin" "1010" (Bv.to_binary_string (bv ~width:4 10));
  Alcotest.(check string) "to_hex" "0ff" (Bv.to_hex_string (bv ~width:12 255));
  Alcotest.(check string) "to_string" "42:8" (Bv.to_string (bv ~width:8 42))

let test_arith () =
  check_bv "add" (bv ~width:8 30) (Bv.add (bv ~width:8 10) (bv ~width:8 20));
  check_bv "add wrap" (bv ~width:8 4) (Bv.add (bv ~width:8 250) (bv ~width:8 10));
  check_bv "sub" (bv ~width:8 246) (Bv.sub (bv ~width:8 0) (bv ~width:8 10));
  check_bv "neg" (bv ~width:8 246) (Bv.neg (bv ~width:8 10));
  check_bv "mul" (bv ~width:8 200) (Bv.mul (bv ~width:8 10) (bv ~width:8 20));
  check_bv "mul wrap" (bv ~width:8 144) (Bv.mul (bv ~width:8 20) (bv ~width:8 20));
  check_bv "udiv" (bv ~width:8 6) (Bv.udiv (bv ~width:8 20) (bv ~width:8 3));
  check_bv "urem" (bv ~width:8 2) (Bv.urem (bv ~width:8 20) (bv ~width:8 3));
  check_bv "udiv by 0" (Bv.ones 8) (Bv.udiv (bv ~width:8 20) (Bv.zero 8));
  check_bv "urem by 0" (bv ~width:8 20) (Bv.urem (bv ~width:8 20) (Bv.zero 8))

let test_sdiv () =
  let s = Bv.of_int ~width:8 in
  check_bv "sdiv -6/2" (s (-3)) (Bv.sdiv (s (-6)) (s 2));
  check_bv "sdiv 6/-2" (s (-3)) (Bv.sdiv (s 6) (s (-2)));
  check_bv "sdiv -6/-2" (s 3) (Bv.sdiv (s (-6)) (s (-2)));
  check_bv "srem -7/2" (s (-1)) (Bv.srem (s (-7)) (s 2));
  check_bv "srem 7/-2" (s 1) (Bv.srem (s 7) (s (-2)))

let test_logic () =
  check_bv "and" (bv ~width:8 0x0C) (Bv.logand (bv ~width:8 0x3C) (bv ~width:8 0x0F));
  check_bv "or" (bv ~width:8 0x3F) (Bv.logor (bv ~width:8 0x3C) (bv ~width:8 0x0F));
  check_bv "xor" (bv ~width:8 0x33) (Bv.logxor (bv ~width:8 0x3C) (bv ~width:8 0x0F));
  check_bv "not" (bv ~width:8 0xC3) (Bv.lognot (bv ~width:8 0x3C))

let test_shift () =
  check_bv "shl" (bv ~width:8 0xF0) (Bv.shl (bv ~width:8 0x3C) 2);
  check_bv "lshr" (bv ~width:8 0x0F) (Bv.lshr (bv ~width:8 0x3C) 2);
  check_bv "ashr pos" (bv ~width:8 0x0F) (Bv.ashr (bv ~width:8 0x3C) 2);
  check_bv "ashr neg" (bv ~width:8 0xF0) (Bv.ashr (bv ~width:8 0xC0) 2);
  check_bv "shl overflow amt" (Bv.zero 8) (Bv.shl_bv (bv ~width:8 0xFF) (bv ~width:8 9));
  check_bv "ashr_bv neg sat" (Bv.ones 8) (Bv.ashr_bv (bv ~width:8 0x80) (bv ~width:8 200));
  check_bv "shl_bv" (bv ~width:8 0x08) (Bv.shl_bv (bv ~width:8 1) (bv ~width:4 3))

let test_compare () =
  Alcotest.(check bool) "ult" true (Bv.ult (bv ~width:8 3) (bv ~width:8 200));
  Alcotest.(check bool) "ult msb" false (Bv.ult (bv ~width:8 200) (bv ~width:8 3));
  Alcotest.(check bool) "slt neg" true (Bv.slt (bv ~width:8 200) (bv ~width:8 3));
  Alcotest.(check bool) "slt pos" true (Bv.slt (bv ~width:8 2) (bv ~width:8 3));
  Alcotest.(check bool) "sle eq" true (Bv.sle (bv ~width:8 3) (bv ~width:8 3));
  Alcotest.(check bool) "ule" true (Bv.ule (bv ~width:8 3) (bv ~width:8 3))

let test_structure () =
  check_bv "extract" (bv ~width:4 0x3) (Bv.extract ~hi:5 ~lo:2 (bv ~width:8 0x0C));
  check_bv "concat" (bv ~width:8 0xAB) (Bv.concat (bv ~width:4 0xA) (bv ~width:4 0xB));
  check_bv "zext" (bv ~width:16 0x80) (Bv.zext (bv ~width:8 0x80) 16);
  check_bv "sext" (bv ~width:16 0xFF80) (Bv.sext (bv ~width:8 0x80) 16);
  check_bv "sext pos" (bv ~width:16 0x7F) (Bv.sext (bv ~width:8 0x7F) 16);
  Alcotest.(check int) "signed" (-128) (Bv.to_signed_int (bv ~width:8 0x80));
  Alcotest.(check int) "signed pos" 127 (Bv.to_signed_int (bv ~width:8 0x7F))

let test_bits () =
  let v = Bv.of_bits [| true; false; true |] in
  Alcotest.(check int) "of_bits" 5 (Bv.to_int v);
  Alcotest.(check bool) "get 0" true (Bv.get v 0);
  Alcotest.(check bool) "get 1" false (Bv.get v 1);
  Alcotest.(check bool) "msb" true (Bv.msb v)

let test_errors () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bv: width must be positive")
    (fun () -> ignore (Bv.zero 0));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bv.add: width mismatch (8 vs 4)") (fun () ->
      ignore (Bv.add (Bv.zero 8) (Bv.zero 4)))

(* ---------------------------------------------------------------- *)
(* Properties: Bv agrees with OCaml int64 arithmetic at width 64,    *)
(* and algebraic identities hold at odd widths.                      *)
(* ---------------------------------------------------------------- *)

let arb_pair_bv width =
  let gen =
    QCheck.Gen.map2
      (fun a b -> (Bv.of_int64 ~width a, Bv.of_int64 ~width b))
      QCheck.Gen.int64 QCheck.Gen.int64
  in
  QCheck.make ~print:(fun (a, b) -> Bv.to_string a ^ ", " ^ Bv.to_string b) gen

let prop name width f = QCheck.Test.make ~name ~count:500 (arb_pair_bv width) f

let mask64 width x =
  if width = 64 then x
  else Int64.logand x (Int64.sub (Int64.shift_left 1L width) 1L)

let props =
  [
    prop "add matches int64" 64 (fun (a, b) ->
        Bv.to_int64 (Bv.add a b) = Int64.add (Bv.to_int64 a) (Bv.to_int64 b));
    prop "mul matches int64" 64 (fun (a, b) ->
        Bv.to_int64 (Bv.mul a b) = Int64.mul (Bv.to_int64 a) (Bv.to_int64 b));
    prop "sub then add roundtrip" 37 (fun (a, b) ->
        Bv.equal a (Bv.add (Bv.sub a b) b));
    prop "neg is 0 - x" 37 (fun (a, _) ->
        Bv.equal (Bv.neg a) (Bv.sub (Bv.zero 37) a));
    prop "de morgan" 37 (fun (a, b) ->
        Bv.equal
          (Bv.lognot (Bv.logand a b))
          (Bv.logor (Bv.lognot a) (Bv.lognot b)));
    prop "xor self-inverse" 37 (fun (a, b) ->
        Bv.equal a (Bv.logxor (Bv.logxor a b) b));
    prop "udivrem reconstruction" 23 (fun (a, b) ->
        let a = Bv.extract ~hi:22 ~lo:0 a and b = Bv.extract ~hi:22 ~lo:0 b in
        Bv.is_zero b
        || Bv.equal a (Bv.add (Bv.mul (Bv.udiv a b) b) (Bv.urem a b)));
    prop "concat extract roundtrip" 40 (fun (a, _) ->
        let hi = Bv.extract ~hi:39 ~lo:20 a and lo = Bv.extract ~hi:19 ~lo:0 a in
        Bv.equal a (Bv.concat hi lo));
    prop "slt antisymmetric-ish" 37 (fun (a, b) ->
        not (Bv.slt a b && Bv.slt b a));
    prop "ashr sign preserved" 37 (fun (a, _) ->
        Bv.msb (Bv.ashr a 5) = Bv.msb a);
    prop "shl then lshr clears high" 37 (fun (a, _) ->
        let k = 7 in
        Bv.equal (Bv.lshr (Bv.shl a k) k)
          (Bv.logand a (Bv.lshr (Bv.ones 37) k)));
    prop "sext then extract is id" 24 (fun (a, _) ->
        let a = Bv.extract ~hi:23 ~lo:0 a in
        Bv.equal a (Bv.extract ~hi:23 ~lo:0 (Bv.sext a 64)));
    prop "mulhu via 128-bit" 64 (fun (a, b) ->
        (* high 64 bits of the 128-bit product, cross-checked against the
           wide multiplier itself at a different width split *)
        let wa = Bv.zext a 128 and wb = Bv.zext b 128 in
        let p = Bv.mul wa wb in
        let lo = Bv.extract ~hi:63 ~lo:0 p in
        Bv.equal lo (Bv.mul a b));
    prop "to/of int64 roundtrip" 64 (fun (a, _) ->
        Bv.equal a (Bv.of_int64 ~width:64 (Bv.to_int64 a)));
    prop "compare consistent with ult" 37 (fun (a, b) ->
        if Bv.ult a b then Bv.compare a b < 0
        else if Bv.equal a b then Bv.compare a b = 0
        else Bv.compare a b > 0);
    prop "udiv matches int64 unsigned" 64 (fun (a, b) ->
        Bv.is_zero b
        || Bv.to_int64 (Bv.udiv a b)
           = Int64.unsigned_div (Bv.to_int64 a) (Bv.to_int64 b));
    prop "lshr matches int64" 64 (fun (a, _) ->
        Bv.to_int64 (Bv.lshr a 13)
        = Int64.shift_right_logical (Bv.to_int64 a) 13);
    prop "mask64 sanity" 17 (fun (a, _) ->
        Bv.to_int64 a = mask64 17 (Bv.to_int64 a));
    prop "hex roundtrip" 23 (fun (a, _) ->
        let a = Bv.extract ~hi:22 ~lo:0 a in
        Bv.equal a (Bv.of_hex_string ~width:23 (Bv.to_hex_string a)));
    prop "binary roundtrip" 37 (fun (a, _) ->
        Bv.equal a (Bv.of_binary_string (Bv.to_binary_string a)));
    prop "popcount of not" 37 (fun (a, _) ->
        Bv.popcount a + Bv.popcount (Bv.lognot a) = 37);
    prop "sdiv matches int64" 64 (fun (a, b) ->
        Bv.is_zero b
        || Bv.equal (Bv.min_signed 64) a && Bv.equal (Bv.ones 64) b
        || Bv.to_int64 (Bv.sdiv a b)
           = Int64.div (Bv.to_int64 a) (Bv.to_int64 b));
    prop "srem matches int64" 64 (fun (a, b) ->
        Bv.is_zero b
        || Bv.equal (Bv.min_signed 64) a && Bv.equal (Bv.ones 64) b
        || Bv.to_int64 (Bv.srem a b)
           = Int64.rem (Bv.to_int64 a) (Bv.to_int64 b));
    prop "sdiv/srem reconstruction" 19 (fun (a, b) ->
        let a = Bv.extract ~hi:18 ~lo:0 a and b = Bv.extract ~hi:18 ~lo:0 b in
        Bv.is_zero b
        || Bv.equal a (Bv.add (Bv.mul (Bv.sdiv a b) b) (Bv.srem a b)));
  ]

let suite =
  [
    Alcotest.test_case "construct" `Quick test_construct;
    Alcotest.test_case "construct wide" `Quick test_construct_wide;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "sdiv/srem" `Quick test_sdiv;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "shift" `Quick test_shift;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "bits" `Quick test_bits;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
