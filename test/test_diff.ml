(* Tests for the differential engine (Sqed_obs.Diff) and the run ledger
   (Sqed_obs.History).  Diff is pure — no clock, no filesystem — so most
   of this file is straight-line value checks plus qcheck properties over
   the noise-band math (the part whose edge cases bite: empty history,
   MAD=0 degeneracy, NaN baselines, window trimming).  The History tests
   exercise the append/load round-trip and the torn-line recovery against
   a real temp file. *)

module Json = Sqed_obs.Json
module Diff = Sqed_obs.Diff
module History = Sqed_obs.History

let close = Alcotest.(check (float 1e-9))

(* -- payload builders ---------------------------------------------------- *)

(* A bench-summary shape: experiment records + counters. *)
let bench_payload ?(name = "fig3") ~wall ~clauses ~conflicts () =
  Json.Obj
    [
      ( "experiments",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String name);
                ("wall_s", Json.Float wall);
                ("clauses", Json.Int clauses);
                ("conflicts", Json.Int conflicts);
              ];
          ] );
      ( "metrics",
        Json.Obj
          [ ("counters", Json.Obj [ ("sat.decisions", Json.Int 1000) ]) ] );
    ]

(* A flight-recorder sidecar shape: top-level wall_s + counters. *)
let flight_payload ~wall =
  Json.Obj
    [
      ("schema", Json.String "sepe.flight/1");
      ("wall_s", Json.Float wall);
      ( "metrics",
        Json.Obj
          [
            ("counters", Json.Obj [ ("obs.log.records", Json.Int 7) ]);
            ("gauges", Json.Obj [ ("fig3.hpf_total_ms", Json.Int 23_700) ]);
          ] );
    ]

let find metric ds = List.find (fun d -> d.Diff.dl_metric = metric) ds

let verdict_of metric ds = (find metric ds).Diff.dl_verdict

let pp_verdict = function
  | Diff.Improved -> "Improved"
  | Diff.Within -> "Within"
  | Diff.Regressed -> "Regressed"
  | Diff.Insufficient -> "Insufficient"
  | Diff.Fresh -> "Fresh"

let check_verdict msg expect got =
  Alcotest.(check string) msg (pp_verdict expect) (pp_verdict got)

(* -- median / band ------------------------------------------------------- *)

let test_median () =
  close "odd length" 42.0 (Diff.median [ 54.0; 42.0; 39.0 ]);
  close "even length averages the middle pair" 40.5
    (Diff.median [ 54.0; 39.0; 42.0; 12.0 ]);
  Alcotest.(check bool) "empty list is nan" true
    (Float.is_nan (Diff.median []))

let test_band_empty_and_nan () =
  Alcotest.(check bool) "empty history has no band" true
    (Diff.band [] = None);
  Alcotest.(check bool) "all-NaN history has no band" true
    (Diff.band [ Float.nan; Float.nan ] = None);
  match Diff.band [ 10.0; Float.nan; 12.0 ] with
  | None -> Alcotest.fail "mixed NaN history must still band"
  | Some b ->
      Alcotest.(check int) "NaN points dropped from the count" 2 b.Diff.bd_n

let test_band_mad_zero_degenerate () =
  (* Identical history values: MAD = 0, so the relative floor must keep
     the band from collapsing to a point. *)
  match Diff.band [ 10.0; 10.0; 10.0 ] with
  | None -> Alcotest.fail "constant history must band"
  | Some b ->
      close "MAD is zero" 0.0 b.Diff.bd_mad;
      close "half-width is the relative floor" 6.5 b.Diff.bd_lo;
      close "band is symmetric" 13.5 b.Diff.bd_hi

let test_band_zero_baseline () =
  (* All-zero history: median 0 kills the relative floor too; only the
     absolute floor keeps the band non-degenerate. *)
  (match Diff.band [ 0.0; 0.0; 0.0 ] with
  | None -> Alcotest.fail "zero history must band"
  | Some b ->
      close "degenerate zero band collapses to a point" 0.0 b.Diff.bd_hi);
  match Diff.band ~abs_floor:1.0 [ 0.0; 0.0; 0.0 ] with
  | None -> Alcotest.fail "zero history must band"
  | Some b ->
      close "absolute floor opens the band" 1.0 b.Diff.bd_hi;
      close "symmetrically" (-1.0) b.Diff.bd_lo

let test_band_jitter_tolerance () =
  (* The documented fig3 --fast jitter: 39-54s across same-machine runs.
     Any value inside the observed spread must stay within band. *)
  let history = [ 42.2; 54.1; 39.4; 47.0 ] in
  match Diff.band history with
  | None -> Alcotest.fail "jitter history must band"
  | Some b ->
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "%.1fs is inside the band" v)
            true
            (v >= b.Diff.bd_lo && v <= b.Diff.bd_hi))
        history;
      Alcotest.(check bool) "a doubled wall is outside" true
        (2.0 *. Diff.median history > b.Diff.bd_hi)

(* -- flattening / gating -------------------------------------------------- *)

let test_metrics_of_payload () =
  let ms =
    Diff.metrics_of_payload
      (bench_payload ~wall:42.0 ~clauses:120_000 ~conflicts:3_000 ())
  in
  close "experiment wall" 42.0 (List.assoc "exp.fig3.wall_s" ms);
  close "experiment clauses" 120_000.0 (List.assoc "exp.fig3.clauses" ms);
  close "experiment conflicts" 3_000.0 (List.assoc "exp.fig3.conflicts" ms);
  close "counters flatten" 1000.0 (List.assoc "counter.sat.decisions" ms);
  let fs = Diff.metrics_of_payload (flight_payload ~wall:7.5) in
  close "flight wall" 7.5 (List.assoc "run.wall_s" fs);
  close "flight counters" 7.0 (List.assoc "counter.obs.log.records" fs);
  close "gauges flatten too" 23_700.0 (List.assoc "gauge.fig3.hpf_total_ms" fs);
  Alcotest.(check bool) "gauges are not gated" false
    (Diff.gated "gauge.fig3.hpf_total_ms");
  Alcotest.(check int) "unknown shapes flatten to nothing" 0
    (List.length (Diff.metrics_of_payload (Json.String "junk")))

let test_gated () =
  Alcotest.(check bool) "whole-run wall is gated" true
    (Diff.gated "run.wall_s");
  Alcotest.(check bool) "experiment metrics are gated" true
    (Diff.gated "exp.fig3.wall_s");
  Alcotest.(check bool) "counters are not gated" false
    (Diff.gated "counter.sat.decisions");
  Alcotest.(check bool) "bare exp. prefix is not a metric" false
    (Diff.gated "exp.")

(* -- two-run compare ------------------------------------------------------ *)

let test_compare_runs () =
  let base = bench_payload ~wall:40.0 ~clauses:1000 ~conflicts:100 () in
  let cur = bench_payload ~wall:41.0 ~clauses:2000 ~conflicts:50 () in
  let ds = Diff.compare_runs ~base ~cur () in
  check_verdict "small wall delta is within" Diff.Within
    (verdict_of "exp.fig3.wall_s" ds);
  check_verdict "doubled clauses regress" Diff.Regressed
    (verdict_of "exp.fig3.clauses" ds);
  check_verdict "halved conflicts improve" Diff.Improved
    (verdict_of "exp.fig3.conflicts" ds);
  check_verdict "counters never regress a run" Diff.Within
    (verdict_of "counter.sat.decisions" ds);
  (* A metric the baseline never saw. *)
  let cur2 = bench_payload ~name:"sweep" ~wall:5.0 ~clauses:10 ~conflicts:1 () in
  let ds2 = Diff.compare_runs ~base ~cur:cur2 () in
  check_verdict "unknown experiment is fresh" Diff.Fresh
    (verdict_of "exp.sweep.wall_s" ds2);
  Alcotest.(check bool) "fresh base is nan" true
    (Float.is_nan (find "exp.sweep.wall_s" ds2).Diff.dl_base)

let test_compare_runs_zero_base () =
  let base = bench_payload ~wall:0.0 ~clauses:0 ~conflicts:0 () in
  let cur = bench_payload ~wall:0.0 ~clauses:0 ~conflicts:5 () in
  let ds = Diff.compare_runs ~base ~cur () in
  check_verdict "0 -> 0 is within" Diff.Within (verdict_of "exp.fig3.wall_s" ds);
  check_verdict "0 -> 5 regresses (zero base has zero slack)" Diff.Regressed
    (verdict_of "exp.fig3.conflicts" ds);
  Alcotest.(check bool) "delta_pct undefined on a zero base" true
    (Diff.delta_pct (find "exp.fig3.conflicts" ds) = None)

let test_delta_pct () =
  let base = bench_payload ~wall:40.0 ~clauses:1000 ~conflicts:100 () in
  let cur = bench_payload ~wall:50.0 ~clauses:1000 ~conflicts:100 () in
  let ds = Diff.compare_runs ~base ~cur () in
  match Diff.delta_pct (find "exp.fig3.wall_s" ds) with
  | Some p -> close "+25%" 25.0 p
  | None -> Alcotest.fail "finite nonzero base must yield a pct"

(* -- history compare ------------------------------------------------------ *)

let hist walls =
  List.map (fun w -> bench_payload ~wall:w ~clauses:1000 ~conflicts:100 ()) walls

let test_history_empty () =
  let ds =
    Diff.compare_history ~history:[]
      ~cur:(bench_payload ~wall:42.0 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  check_verdict "no history: everything is fresh" Diff.Fresh
    (verdict_of "exp.fig3.wall_s" ds);
  Alcotest.(check int) "no regressions to report" 0
    (List.length (Diff.regressions ds))

let test_history_single_entry () =
  let ds =
    Diff.compare_history ~history:(hist [ 40.0 ])
      ~cur:(bench_payload ~wall:400.0 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  check_verdict "one point is insufficient even for a 10x blowup"
    Diff.Insufficient
    (verdict_of "exp.fig3.wall_s" ds);
  Alcotest.(check int) "and the sentinel passes" 0
    (List.length (Diff.regressions ds))

let test_history_banded () =
  let history = hist [ 42.2; 54.1; 39.4 ] in
  let within =
    Diff.compare_history ~history
      ~cur:(bench_payload ~wall:47.0 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  check_verdict "in-spread wall is within" Diff.Within
    (verdict_of "exp.fig3.wall_s" within);
  let slow =
    Diff.compare_history ~history
      ~cur:(bench_payload ~wall:95.0 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  check_verdict "doubled wall regresses" Diff.Regressed
    (verdict_of "exp.fig3.wall_s" slow);
  Alcotest.(check int) "exactly one gated regression" 1
    (List.length (Diff.regressions slow));
  let fast =
    Diff.compare_history ~history
      ~cur:(bench_payload ~wall:10.0 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  check_verdict "a 4x speedup is an improvement" Diff.Improved
    (verdict_of "exp.fig3.wall_s" fast)

let test_history_window () =
  (* Ancient slow runs beyond the window must not widen the band. *)
  let history = hist [ 500.0; 510.0; 40.0; 41.0; 42.0 ] in
  let ds =
    Diff.compare_history ~window:3 ~history
      ~cur:(bench_payload ~wall:300.0 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  check_verdict "window trims the old slow era" Diff.Regressed
    (verdict_of "exp.fig3.wall_s" ds);
  match (find "exp.fig3.wall_s" ds).Diff.dl_band with
  | Some b -> Alcotest.(check int) "band spans the window only" 3 b.Diff.bd_n
  | None -> Alcotest.fail "banded metric must carry its band"

let test_history_abs_floor () =
  (* Sub-second metrics: 0.1s -> 0.9s is a huge relative jump but under
     the one-second absolute floor, so it must not flag. *)
  let history = hist [ 0.1; 0.12; 0.11 ] in
  let ds =
    Diff.compare_history ~history
      ~cur:(bench_payload ~wall:0.9 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  check_verdict "sub-second jitter stays within" Diff.Within
    (verdict_of "exp.fig3.wall_s" ds)

let test_to_string () =
  let ds =
    Diff.compare_history
      ~history:(hist [ 40.0; 41.0; 42.0 ])
      ~cur:(bench_payload ~wall:200.0 ~clauses:1000 ~conflicts:100 ())
      ()
  in
  let line = Diff.to_string (find "exp.fig3.wall_s" ds) in
  let contains needle =
    let n = String.length needle and h = String.length line in
    let rec go i = i + n <= h && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "line names the metric" true (contains "exp.fig3.wall_s");
  Alcotest.(check bool) "line shouts the verdict" true (contains "REGRESSED");
  Alcotest.(check bool) "line shows the band" true (contains "band [")

(* -- History: ledger file ------------------------------------------------- *)

let with_temp f =
  let path = Filename.temp_file "sepe_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let config =
  [
    ("jobs", Json.Int 1);
    ("fast", Json.Bool true);
    ("simplify", Json.Bool true);
    ("aig", Json.Bool true);
    ("portfolio", Json.Int 1);
  ]

let mk_entry ?(config = config) label wall =
  History.entry ~kind:"bench" ~label
    ~provenance:(History.provenance ~config ())
    ~run:(bench_payload ~wall ~clauses:1000 ~conflicts:100 ())

let test_ledger_roundtrip () =
  with_temp (fun path ->
      Sys.remove path;
      (* load of a missing file is an empty ledger, not an error *)
      let empty = History.load path in
      Alcotest.(check int) "missing file is empty" 0
        (List.length empty.History.entries);
      History.append path (mk_entry "a" 40.0);
      History.append path (mk_entry "b" 41.0);
      let l = History.load path in
      Alcotest.(check int) "both entries back" 2 (List.length l.History.entries);
      Alcotest.(check int) "nothing dropped" 0 l.History.dropped;
      let first = List.hd l.History.entries in
      Alcotest.(check (option string))
        "oldest first"
        (Some "a")
        (Option.bind (Json.member "label" first) Json.to_string_opt);
      Alcotest.(check bool) "run payload survives the round-trip" true
        (match History.run_of first with
        | Some run ->
            List.mem_assoc "exp.fig3.wall_s" (Diff.metrics_of_payload run)
        | None -> false))

let test_ledger_torn_line () =
  with_temp (fun path ->
      History.append path (mk_entry "a" 40.0);
      History.append path (mk_entry "b" 41.0);
      (* simulate a crash mid-append *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"schema\":\"sepe.ledger/1\",\"kind";
      close_out oc;
      let l = History.load path in
      Alcotest.(check int) "intact entries survive" 2
        (List.length l.History.entries);
      Alcotest.(check int) "torn line counted" 1 l.History.dropped;
      (* and the ledger is still appendable *)
      History.append path (mk_entry "c" 42.0))

let test_ledger_provenance () =
  let e = mk_entry "a" 40.0 in
  let prov = Json.member "provenance" e in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "provenance has %s" f)
        true
        (Option.bind prov (Json.member f) <> None))
    [ "git_commit"; "hostname"; "cores"; "ocaml"; "config" ]

let test_ledger_compatible () =
  let a = mk_entry "a" 40.0 in
  let b = mk_entry "b" 41.0 in
  Alcotest.(check bool) "same config is compatible" true
    (History.compatible a b);
  let other = mk_entry ~config:(("jobs", Json.Int 8) :: List.tl config) "c" 9.0 in
  Alcotest.(check bool) "different jobs is not" false
    (History.compatible a other);
  let bare = Json.Obj [ ("schema", Json.String History.schema) ] in
  Alcotest.(check bool) "entries without a config never match" false
    (History.compatible a bare)

(* -- properties ----------------------------------------------------------- *)

let finite_list =
  QCheck.(list_of_size Gen.(1 -- 12) (float_bound_exclusive 1000.0))

let prop_median_bounded =
  QCheck.Test.make ~name:"median lies between min and max" ~count:200
    finite_list (fun vs ->
      let m = Diff.median vs in
      m >= List.fold_left Float.min Float.infinity vs
      && m <= List.fold_left Float.max Float.neg_infinity vs)

let prop_band_contains_median =
  QCheck.Test.make ~name:"band always contains its median" ~count:200
    finite_list (fun vs ->
      match Diff.band vs with
      | None -> false
      | Some b -> b.Diff.bd_lo <= b.Diff.bd_median && b.Diff.bd_median <= b.Diff.bd_hi)

let prop_band_monotone_in_k =
  QCheck.Test.make ~name:"larger k never narrows the band" ~count:200
    QCheck.(pair finite_list (pair (float_bound_exclusive 8.0) (float_bound_exclusive 8.0)))
    (fun (vs, (k1, k2)) ->
      let k_lo = Float.min k1 k2 and k_hi = Float.max k1 k2 in
      match (Diff.band ~k:k_lo vs, Diff.band ~k:k_hi vs) with
      | Some narrow, Some wide ->
          wide.Diff.bd_lo <= narrow.Diff.bd_lo
          && narrow.Diff.bd_hi <= wide.Diff.bd_hi
      | _ -> false)

let prop_history_median_within =
  QCheck.Test.make ~name:"re-running the median of history is never a regression"
    ~count:100
    QCheck.(list_of_size Gen.(2 -- 8) (float_bound_exclusive 500.0))
    (fun walls ->
      let ds =
        Diff.compare_history ~history:(hist walls)
          ~cur:
            (bench_payload ~wall:(Diff.median walls) ~clauses:1000
               ~conflicts:100 ())
          ()
      in
      Diff.regressions ds = [])

let suite =
  [
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "band: empty and NaN history" `Quick
      test_band_empty_and_nan;
    Alcotest.test_case "band: MAD=0 falls back to relative floor" `Quick
      test_band_mad_zero_degenerate;
    Alcotest.test_case "band: zero baseline needs the absolute floor" `Quick
      test_band_zero_baseline;
    Alcotest.test_case "band: tolerates documented fig3 jitter" `Quick
      test_band_jitter_tolerance;
    Alcotest.test_case "payload flattening" `Quick test_metrics_of_payload;
    Alcotest.test_case "gate set" `Quick test_gated;
    Alcotest.test_case "two-run compare" `Quick test_compare_runs;
    Alcotest.test_case "two-run compare: zero baselines" `Quick
      test_compare_runs_zero_base;
    Alcotest.test_case "delta percentage" `Quick test_delta_pct;
    Alcotest.test_case "history: empty" `Quick test_history_empty;
    Alcotest.test_case "history: single entry is insufficient" `Quick
      test_history_single_entry;
    Alcotest.test_case "history: banded verdicts" `Quick test_history_banded;
    Alcotest.test_case "history: window trims old eras" `Quick
      test_history_window;
    Alcotest.test_case "history: absolute floor for sub-second metrics" `Quick
      test_history_abs_floor;
    Alcotest.test_case "delta rendering" `Quick test_to_string;
    Alcotest.test_case "ledger append/load round-trip" `Quick
      test_ledger_roundtrip;
    Alcotest.test_case "ledger drops a torn trailing line" `Quick
      test_ledger_torn_line;
    Alcotest.test_case "ledger entries carry provenance" `Quick
      test_ledger_provenance;
    Alcotest.test_case "config compatibility gate" `Quick
      test_ledger_compatible;
    QCheck_alcotest.to_alcotest prop_median_bounded;
    QCheck_alcotest.to_alcotest prop_band_contains_median;
    QCheck_alcotest.to_alcotest prop_band_monotone_in_k;
    QCheck_alcotest.to_alcotest prop_history_median_within;
  ]
