(* Tests for the observability layer (Sqed_obs): the hand-rolled checked
   JSON parser, the sharded metrics registry, and the span tracer.  The
   registry and tracer are global state shared with the instrumented
   libraries, so every test runs under [isolated], which resets both and
   restores the enabled flags to off (their library default). *)

module Json = Sqed_obs.Json
module Metrics = Sqed_obs.Metrics
module Trace = Sqed_obs.Trace
module Log = Sqed_obs.Log
module Progress = Sqed_obs.Progress
module Sampler = Sqed_obs.Sampler
module Report = Sqed_obs.Report

let reset_all () =
  Metrics.reset ();
  Trace.reset ();
  Log.reset ();
  Sampler.reset ();
  Report.reset ()

let isolated f () =
  reset_all ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.enabled := false;
      Trace.enabled := false;
      Progress.enabled := false;
      Sampler.enabled := false;
      Sampler.set_interval_us 50_000;
      Log.close_sink ();
      reset_all ())
    f

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)
(* ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("n", Json.Int (-42));
        ("pi", Json.Float 3.25);
        ("s", Json.String "a\"b\\c\nd\te\r \x01");
        ("empty", Json.Obj []);
        ("nested", Json.List [ Json.Obj [ ("k", Json.Int 1) ] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' ->
      Alcotest.(check string)
        "print/parse/print fixpoint" (Json.to_string v) (Json.to_string v')
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)

let test_json_accept () =
  let ok s =
    match Json.parse s with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "%S rejected: %s" s e)
  in
  ok "null";
  ok " [ 1 , 2.5 , -3e2 ] ";
  ok {|{"a":[],"b":{},"c":"é\n"}|};
  ok "\"\"";
  match Json.parse "\"\\u0041\"" with
  | Ok (Json.String "A") -> ()
  | _ -> Alcotest.fail "\\u0041 should decode to A"

let test_json_reject () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" s)
  in
  bad "";
  bad "{} trailing";
  bad "[1,]";
  bad "{\"a\":}";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "\"bad \\q escape\"";
  bad "\"raw \x01 control\"";
  bad "tru";
  bad "[1 2]";
  bad "--3"

(* ---------------------------------------------------------------- *)
(* Metrics                                                           *)
(* ---------------------------------------------------------------- *)

let test_counter_gating () =
  let c = Metrics.counter "test.gated" in
  Metrics.incr c;
  Alcotest.(check int) "disabled increments are dropped" 0
    (Metrics.counter_value c);
  Metrics.enabled := true;
  Metrics.add c 5;
  Alcotest.(check int) "enabled increments land" 5 (Metrics.counter_value c);
  Alcotest.(check int) "find_counter sees the same value" 5
    (Metrics.find_counter "test.gated");
  Alcotest.(check int) "unknown counter reads 0" 0
    (Metrics.find_counter "test.never-registered")

let test_counter_domains () =
  (* The sharded-store design means concurrent increments from several
     domains must sum exactly, with no atomics on the hot path. *)
  Metrics.enabled := true;
  let c = Metrics.counter "test.domains" in
  let per_domain = 50_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  Alcotest.(check int) "4 domains + caller sum exactly" (5 * per_domain)
    (Metrics.counter_value c)

let test_histogram_buckets () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (Metrics.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (Metrics.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 1" 1 (Metrics.bucket_of 3);
  Alcotest.(check int) "4 -> bucket 2" 2 (Metrics.bucket_of 4);
  Alcotest.(check int) "7 -> bucket 2" 2 (Metrics.bucket_of 7);
  Alcotest.(check int) "8 -> bucket 3" 3 (Metrics.bucket_of 8);
  Alcotest.(check int) "1024 -> bucket 10" 10 (Metrics.bucket_of 1024);
  Metrics.enabled := true;
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
  let j = Metrics.to_json () in
  let hist =
    match Json.member "histograms" j with
    | Some hs -> Json.member "test.hist" hs
    | None -> None
  in
  match hist with
  | None -> Alcotest.fail "test.hist missing from snapshot"
  | Some hj ->
      Alcotest.(check (option int))
        "count" (Some 7)
        (Option.bind (Json.member "count" hj) Json.to_int_opt);
      Alcotest.(check (option int))
        "sum" (Some 25)
        (Option.bind (Json.member "sum" hj) Json.to_int_opt)

let test_metrics_json_roundtrip () =
  Metrics.enabled := true;
  let c = Metrics.counter "test.json.counter" in
  let g = Metrics.gauge "test.json.gauge" in
  let t = Metrics.timer "test.json.timer" in
  Metrics.add c 7;
  Metrics.set g 31;
  Metrics.timer_add t 1500.0;
  let text = Json.to_string (Metrics.to_json ()) in
  match Json.parse text with
  | Error e -> Alcotest.fail ("snapshot does not re-parse: " ^ e)
  | Ok j ->
      let counter_of name =
        Option.bind (Json.member "counters" j) (fun cs ->
            Option.bind (Json.member name cs) Json.to_int_opt)
      in
      Alcotest.(check (option int))
        "counter survives" (Some 7)
        (counter_of "test.json.counter");
      Alcotest.(check bool) "gauges present" true
        (Json.member "gauges" j <> None);
      Alcotest.(check bool) "timers present" true
        (Json.member "timers" j <> None)

let test_reset () =
  Metrics.enabled := true;
  let c = Metrics.counter "test.reset" in
  Metrics.add c 9;
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes but keeps the registration" 0
    (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "counter usable after reset" 1
    (Metrics.counter_value c)

(* ---------------------------------------------------------------- *)
(* Tracing                                                           *)
(* ---------------------------------------------------------------- *)

let k_outer = Trace.kind ~cat:"test" "test.outer"
let k_inner = Trace.kind ~cat:"test" "test.inner"
let k_boom = Trace.kind ~cat:"test" "test.boom"

let test_span_nesting () =
  Trace.enabled := true;
  let r =
    Trace.with_span k_outer (fun () ->
        Trace.with_span k_inner (fun () -> 41) + 1)
  in
  Alcotest.(check int) "with_span returns f's value" 42 r;
  match Trace.events () with
  | [ outer; inner ] ->
      (* Sorted by start time: the outer span opens first even though it
         closes (and is recorded) last. *)
      Alcotest.(check string) "outer first" "test.outer" outer.Trace.ev_name;
      Alcotest.(check string) "inner second" "test.inner" inner.Trace.ev_name;
      Alcotest.(check int) "outer depth" 0 outer.Trace.ev_depth;
      Alcotest.(check int) "inner depth" 1 inner.Trace.ev_depth;
      Alcotest.(check bool) "inner starts inside outer" true
        (inner.Trace.ev_ts >= outer.Trace.ev_ts);
      Alcotest.(check bool) "inner ends inside outer" true
        (inner.Trace.ev_ts +. inner.Trace.ev_dur
        <= outer.Trace.ev_ts +. outer.Trace.ev_dur)
  | evs ->
      Alcotest.fail (Printf.sprintf "expected 2 events, got %d"
                       (List.length evs))

let test_span_exception_safe () =
  Trace.enabled := true;
  (try Trace.with_span k_boom (fun () -> failwith "boom")
   with Failure _ -> ());
  (match Trace.events () with
  | [ ev ] -> Alcotest.(check string) "span recorded" "test.boom"
                ev.Trace.ev_name
  | evs ->
      Alcotest.fail (Printf.sprintf "expected 1 event, got %d"
                       (List.length evs)));
  (* Depth bookkeeping must have unwound: a fresh span sits at depth 0. *)
  Trace.with_span k_outer (fun () -> ());
  match Trace.events () with
  | [ _; ev ] -> Alcotest.(check int) "depth unwound" 0 ev.Trace.ev_depth
  | _ -> Alcotest.fail "expected 2 events"

let test_span_disabled_is_transparent () =
  Alcotest.(check int) "value passes through" 7
    (Trace.with_span k_outer (fun () -> 7));
  Alcotest.(check int) "no events recorded" 0 (List.length (Trace.events ()))

let test_span_feeds_timer () =
  (* Metrics on, tracing off: spans must feed the phase timer without
     buffering any events. *)
  Metrics.enabled := true;
  Trace.with_span k_outer (fun () -> ());
  Alcotest.(check int) "no events buffered" 0 (List.length (Trace.events ()));
  let j = Metrics.to_json () in
  let calls =
    Option.bind (Json.member "timers" j) (fun ts ->
        Option.bind (Json.member "test.outer" ts) (fun t ->
            Option.bind (Json.member "calls" t) Json.to_int_opt))
  in
  Alcotest.(check (option int)) "timer counted the call" (Some 1) calls

let test_export_roundtrip () =
  Trace.enabled := true;
  Trace.with_span ~args:[ ("k", "3") ] k_outer (fun () ->
      Trace.with_span k_inner (fun () -> ()));
  let path = Filename.temp_file "sepe_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export path;
      match Trace.validate_export path with
      | Ok n -> Alcotest.(check int) "every span exported and re-parsed" 2 n
      | Error e -> Alcotest.fail ("exported trace invalid: " ^ e))

(* ---------------------------------------------------------------- *)
(* Flight recorder: log, sampler, progress, report                   *)
(* ---------------------------------------------------------------- *)

let test_log_ring_wrap () =
  let cap = Log.ring_capacity in
  let extra = 50 in
  for i = 0 to cap + extra - 1 do
    Log.info "test.wrap" [ ("i", Log.I i) ]
  done;
  let evs = Log.tail (cap + extra) in
  Alcotest.(check int) "ring keeps exactly its capacity" cap
    (List.length evs);
  Alcotest.(check int) "overwrites are counted" extra (Log.dropped ());
  (* The survivors are the newest [cap] records: the first retained
     event is the one that displaced record 0. *)
  (match evs with
  | first :: _ -> (
      match List.assoc_opt "i" first.Log.lg_fields with
      | Some (Log.I i) -> Alcotest.(check int) "oldest survivor" extra i
      | _ -> Alcotest.fail "field i missing")
  | [] -> Alcotest.fail "empty tail");
  Alcotest.(check int) "tail n truncates to the newest n" 7
    (List.length (Log.tail 7))

let test_log_multidomain_merge () =
  let per_domain = 100 in
  let emit () =
    for i = 1 to per_domain do
      Log.info "test.interleave" [ ("i", Log.I i) ]
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn emit) in
  emit ();
  Array.iter Domain.join domains;
  let evs = Log.tail (8 * per_domain) in
  Alcotest.(check int) "all records captured across domains"
    (4 * per_domain) (List.length evs);
  let doms = List.sort_uniq compare (List.map (fun e -> e.Log.lg_dom) evs) in
  Alcotest.(check bool) "records from several domains" true
    (List.length doms >= 2);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Log.lg_ts <= b.Log.lg_ts && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "merged tail is in timestamp order" true (sorted evs)

let test_log_level_filter () =
  Log.debug "test.quiet" [];
  Log.info "test.loud" [];
  Log.warn "test.louder" [];
  Alcotest.(check int) "debug is not captured without a debug sink" 2
    (List.length (Log.tail 10));
  Alcotest.(check int) "min_level filters the tail" 1
    (List.length (Log.tail ~min_level:Log.Warn 10))

let test_sampler_series_monotone () =
  Sampler.enabled := true;
  Sampler.set_interval_us 0;
  for i = 1 to 20 do
    Sampler.poll_sat ~conflicts:(i * 100) ~propagations:(i * 1000)
      ~learnts:i
  done;
  match Sampler.series () with
  | [ (_, samples) ] ->
      Alcotest.(check int) "one sample per poll at interval 0" 20
        (List.length samples);
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            a.Sampler.sm_ts <= b.Sampler.sm_ts && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "timestamps nondecreasing" true
        (monotone samples);
      List.iter
        (fun s ->
          Alcotest.(check bool) "rates are nonnegative" true
            (s.Sampler.sm_conflicts_s >= 0.0 && s.Sampler.sm_props_s >= 0.0);
          Alcotest.(check bool) "heap words sampled" true
            (s.Sampler.sm_heap_words > 0))
        samples;
      let last = List.nth samples 19 in
      Alcotest.(check int) "learnt DB size tracks the live value" 20
        last.Sampler.sm_learnts
  | series ->
      Alcotest.fail
        (Printf.sprintf "expected 1 domain series, got %d"
           (List.length series))

let test_sampler_disabled_is_silent () =
  Sampler.poll_sat ~conflicts:1000 ~propagations:10000 ~learnts:5;
  Sampler.poll_quick ();
  Alcotest.(check int) "no series recorded while disabled" 0
    (List.length (Sampler.series ()))

let test_sampler_first_poll_samples () =
  (* The empty-series blind spot: at the default 50ms interval a short
     run used to record nothing because poll_quick's 1/64 tick mask ate
     the few polls it made.  The mask is bypassed until the domain's
     first sample, so even a single quick poll leaves a series. *)
  Sampler.enabled := true;
  Sampler.set_interval_us 50_000;
  Sampler.poll_quick ();
  match Sampler.series () with
  | [ (_, [ _ ]) ] -> ()
  | series ->
      Alcotest.fail
        (Printf.sprintf "expected one 1-sample series, got %d series"
           (List.length series))

let test_progress_eta () =
  Alcotest.(check (option (float 1e-9))) "no ETA before the first case"
    None
    (Progress.eta ~done_:0 ~total:10 ~sum_dur:0.0 ~jobs:2);
  Alcotest.(check (option (float 1e-9)))
    "mean 2s x 8 remaining / 2 jobs = 8s" (Some 8.0)
    (Progress.eta ~done_:2 ~total:10 ~sum_dur:4.0 ~jobs:2);
  Alcotest.(check (option (float 1e-9))) "done campaign has zero ETA"
    (Some 0.0)
    (Progress.eta ~done_:10 ~total:10 ~sum_dur:30.0 ~jobs:4);
  (* Degenerate jobs values must not divide by zero. *)
  match Progress.eta ~done_:1 ~total:3 ~sum_dur:1.0 ~jobs:0 with
  | Some eta -> Alcotest.(check bool) "jobs=0 clamps" true (Float.is_finite eta)
  | None -> Alcotest.fail "jobs=0 should still project"

let test_progress_disabled_transparent () =
  Alcotest.(check int) "with_campaign passes the value through" 41
    (Progress.with_campaign ~total:5 "test" (fun () -> 41));
  Alcotest.(check string) "no status line without a campaign" ""
    (Progress.render_line ())

let test_report_roundtrip () =
  Metrics.enabled := true;
  Sampler.enabled := true;
  Sampler.set_interval_us 0;
  Log.info "test.report" [ ("phase", Log.Str "unit") ];
  Sampler.poll_sat ~conflicts:512 ~propagations:4096 ~learnts:3;
  Report.note_case
    { Report.rc_key = "unit/ok"; rc_status = Report.Ok;
      rc_detail = "synthesized"; rc_dur = 1.25 };
  Report.note_case
    { Report.rc_key = "unit/skip"; rc_status = Report.Skipped;
      rc_detail = "resumed from checkpoint"; rc_dur = 0.0 };
  let path = Filename.temp_file "sepe_report" ".html" in
  let sidecar = ref "" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      if !sidecar <> "" && Sys.file_exists !sidecar then Sys.remove !sidecar)
    (fun () ->
      sidecar :=
        Report.write ~title:"unit run" ~cmdline:"test" ~path ();
      Alcotest.(check bool) "sidecar sits next to the report" true
        (Filename.check_suffix !sidecar ".json");
      let read_all p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let html = read_all path in
      Alcotest.(check bool) "report is self-contained HTML" true
        (String.length html > 0
        && String.starts_with ~prefix:"<!DOCTYPE html>" html);
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "sparkline SVG inlined" true
        (contains html "<svg");
      Alcotest.(check bool) "case rows rendered" true
        (contains html "unit/ok");
      match Json.parse (read_all !sidecar) with
      | Error e -> Alcotest.fail ("run.json does not re-parse: " ^ e)
      | Ok j ->
          Alcotest.(check (option string))
            "schema tag" (Some "sepe.flight/1")
            (Option.bind (Json.member "schema" j) Json.to_string_opt);
          let n_cases =
            match Json.member "cases" j with
            | Some (Json.List cs) -> List.length cs
            | _ -> -1
          in
          Alcotest.(check int) "both case rows in the sidecar" 2 n_cases;
          Alcotest.(check bool) "metrics snapshot embedded" true
            (Json.member "metrics" j <> None);
          Alcotest.(check bool) "sampler series embedded" true
            (Json.member "samples" j <> None);
          Alcotest.(check bool) "log tail embedded" true
            (Json.member "log_tail" j <> None))

let test_report_run_payload_and_history () =
  let module History = Sqed_obs.History in
  Metrics.enabled := true;
  Report.note_case
    { Report.rc_key = "unit/a"; rc_status = Report.Ok; rc_detail = "ok";
      rc_dur = 0.01 };
  let payload = Report.run_payload ~title:"unit" ~cmdline:"test" () in
  (match Json.parse (Json.to_string payload) with
  | Error e -> Alcotest.fail ("run_payload does not re-parse: " ^ e)
  | Ok j ->
      Alcotest.(check (option string))
        "payload carries the flight schema" (Some "sepe.flight/1")
        (Option.bind (Json.member "schema" j) Json.to_string_opt);
      Alcotest.(check bool) "payload has wall_s" true
        (Json.member "wall_s" j <> None);
      Alcotest.(check bool) "payload embeds metrics" true
        (Json.member "metrics" j <> None));
  (* A ledger history renders a cross-run section in the report. *)
  let entry wall =
    History.entry ~kind:"sepe" ~label:"unit"
      ~provenance:(History.provenance ~config:[ ("jobs", Json.Int 1) ] ())
      ~run:(Json.Obj [ ("wall_s", Json.Float wall) ])
  in
  let path = Filename.temp_file "sepe_report" ".html" in
  let sidecar = ref "" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      if !sidecar <> "" && Sys.file_exists !sidecar then Sys.remove !sidecar)
    (fun () ->
      sidecar :=
        Report.write ~title:"unit" ~cmdline:"test"
          ~history:[ entry 0.01; entry 0.02 ] ~path ();
      let ic = open_in_bin path in
      let html =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let contains needle =
        let n = String.length needle and h = String.length html in
        let rec go i = i + n <= h && (String.sub html i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "history section rendered" true
        (contains "History (2 archived runs)");
      Alcotest.(check bool) "whole-run wall row present" true
        (contains "run.wall_s"))

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick (isolated test_json_roundtrip);
    Alcotest.test_case "json accepts valid input" `Quick
      (isolated test_json_accept);
    Alcotest.test_case "json rejects invalid input" `Quick
      (isolated test_json_reject);
    Alcotest.test_case "counter gating" `Quick (isolated test_counter_gating);
    Alcotest.test_case "counters sum across domains" `Quick
      (isolated test_counter_domains);
    Alcotest.test_case "histogram bucket boundaries" `Quick
      (isolated test_histogram_buckets);
    Alcotest.test_case "metrics snapshot re-parses" `Quick
      (isolated test_metrics_json_roundtrip);
    Alcotest.test_case "reset keeps registrations" `Quick
      (isolated test_reset);
    Alcotest.test_case "span nesting and ordering" `Quick
      (isolated test_span_nesting);
    Alcotest.test_case "spans close on exception" `Quick
      (isolated test_span_exception_safe);
    Alcotest.test_case "disabled tracer is transparent" `Quick
      (isolated test_span_disabled_is_transparent);
    Alcotest.test_case "spans feed phase timers" `Quick
      (isolated test_span_feeds_timer);
    Alcotest.test_case "export validates" `Quick
      (isolated test_export_roundtrip);
    Alcotest.test_case "log ring wraps and counts drops" `Quick
      (isolated test_log_ring_wrap);
    Alcotest.test_case "log tail merges domains in order" `Quick
      (isolated test_log_multidomain_merge);
    Alcotest.test_case "log level filtering" `Quick
      (isolated test_log_level_filter);
    Alcotest.test_case "sampler series is monotone" `Quick
      (isolated test_sampler_series_monotone);
    Alcotest.test_case "disabled sampler records nothing" `Quick
      (isolated test_sampler_disabled_is_silent);
    Alcotest.test_case "progress ETA projection" `Quick
      (isolated test_progress_eta);
    Alcotest.test_case "disabled progress is transparent" `Quick
      (isolated test_progress_disabled_transparent);
    Alcotest.test_case "report round-trips through run.json" `Quick
      (isolated test_report_roundtrip);
    Alcotest.test_case "a single quick poll records the first sample" `Quick
      (isolated test_sampler_first_poll_samples);
    Alcotest.test_case "run payload and report history section" `Quick
      (isolated test_report_run_payload_and_history);
  ]
