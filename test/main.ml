let () =
  Alcotest.run "sepe_sqed"
    [
      ("obs", Test_obs.suite);
      ("diff", Test_diff.suite);
      ("bv", Test_bv.suite);
      ("sat", Test_sat.suite);
      ("simplify", Test_simplify.suite);
      ("par", Test_par.suite);
      ("resil", Test_resil.suite);
      ("smt", Test_smt.suite);
      ("aig", Test_aig.suite);
      ("rtl", Test_rtl.suite);
      ("isa", Test_isa.suite);
      ("proc", Test_proc.suite);
      ("qed", Test_qed.suite);
      ("synth", Test_synth.suite);
      ("export", Test_export.suite);
      ("bmc", Test_bmc.suite);
      ("portfolio", Test_portfolio.suite);
    ]
