(* Tests for the domain worker pool (Sqed_par.Pool) and the parallel
   synthesis campaign built on it.  The cross-check at the bottom is the
   correctness anchor for the whole multicore design: a parallel campaign
   must synthesize exactly the same programs as the sequential one. *)

module Pool = Sqed_par.Pool
module Synth = Sqed_synth

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      let ys = Pool.map p (fun x -> x * x) xs in
      Alcotest.(check (list int))
        "squares in order"
        (List.map (fun x -> x * x) xs)
        ys)

let test_map_inline () =
  (* jobs = 1 runs tasks inline on the caller, in order, no domains. *)
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "one worker" 1 (Pool.jobs p);
      let ys = Pool.map p (fun x -> x + 1) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "inline path" [ 2; 3; 4 ] ys)

let test_batch_reuse () =
  (* A pool must survive several map batches. *)
  Pool.with_pool ~jobs:3 (fun p ->
      for i = 1 to 5 do
        let ys = Pool.map p (fun x -> x * i) [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "batch" [ i; 2 * i; 3 * i ] ys
      done)

let test_iter () =
  Pool.with_pool ~jobs:4 (fun p ->
      let total = Atomic.make 0 in
      Pool.iter p (fun x -> ignore (Atomic.fetch_and_add total x))
        (List.init 50 Fun.id);
      Alcotest.(check int) "side effects all ran" (50 * 49 / 2)
        (Atomic.get total))

let test_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun p ->
      match
        Pool.map p
          (fun x -> if x = 7 then failwith "boom" else x)
          (List.init 16 Fun.id)
      with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* The pool that raised must still be usable for the next batch. *)
  Pool.with_pool ~jobs:2 (fun p ->
      (try ignore (Pool.map p (fun _ -> failwith "x") [ 1 ]) with _ -> ());
      Alcotest.(check (list int)) "usable after failure" [ 4 ]
        (Pool.map p (fun x -> x * 2) [ 2 ]))

let test_stats () =
  Pool.with_pool ~jobs:2 (fun p ->
      ignore (Pool.map p Fun.id (List.init 10 Fun.id));
      let ws = Pool.stats p in
      Alcotest.(check int) "one slot per worker" (Pool.jobs p) (List.length ws);
      let total = List.fold_left (fun acc w -> acc + w.Pool.tasks) 0 ws in
      Alcotest.(check int) "all tasks accounted" 10 total)

let test_env_knob () =
  Unix.putenv "SEPE_JOBS" "3";
  let d = Pool.default_jobs () in
  Unix.putenv "SEPE_JOBS" "";
  Alcotest.(check int) "SEPE_JOBS honoured" 3 d;
  Alcotest.(check bool) "fallback positive" true (Pool.default_jobs () >= 1)

(* ---------------------------------------------------------------- *)
(* Parallel synthesis equals sequential synthesis                    *)
(* ---------------------------------------------------------------- *)

let campaign_fingerprint jobs =
  let options =
    {
      Synth.Engine.default_options with
      Synth.Engine.k = 1;
      n_max = 3;
      time_budget = Some 60.0;
      config = { Synth.Cegis.default_config with Synth.Cegis.xlen = 8 };
    }
  in
  Synth.Campaign.synthesize_all ~jobs ~options
    ~library:Synth.Library_.default [ "ADD"; "XOR"; "SUB" ]
  |> List.map (fun c ->
         ( c.Synth.Campaign.case,
           List.sort compare
             (List.map Synth.Program.to_string
                c.Synth.Campaign.result.Synth.Engine.programs) ))

let test_parallel_matches_sequential () =
  let seq = campaign_fingerprint 1 in
  let par = campaign_fingerprint 3 in
  Alcotest.(check (list (pair string (list string))))
    "same programs modulo order" seq par;
  Alcotest.(check bool) "something was synthesized" true
    (List.exists (fun (_, ps) -> ps <> []) seq)

let suite =
  [
    Alcotest.test_case "map keeps order" `Quick test_map_order;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_map_inline;
    Alcotest.test_case "pool survives batches" `Quick test_batch_reuse;
    Alcotest.test_case "iter runs every task" `Quick test_iter;
    Alcotest.test_case "task exception re-raises" `Quick
      test_exception_propagates;
    Alcotest.test_case "per-worker stats" `Quick test_stats;
    Alcotest.test_case "SEPE_JOBS knob" `Quick test_env_knob;
    Alcotest.test_case "parallel = sequential synthesis" `Slow
      test_parallel_matches_sequential;
  ]
