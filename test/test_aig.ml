(* Differential fuzz for the AIG gate layer (Sqed_smt.Aig and its
   integration into the bit-blaster): the AIG-backed solver must return
   the same SAT/UNSAT verdict as the direct-Tseitin one on random QF_BV
   problems, SAT models must satisfy the asserted terms, assumptions and
   incremental assertion must keep their meaning (exercising the
   Plaisted–Greenbaum polarity halves emitted across [check] calls), and
   the DIMACS export of an AIG-encoded instance must round-trip to the
   same verdict. *)

module Sat = Sqed_sat.Sat
module Dimacs = Sqed_sat.Dimacs
module Smt = Sqed_smt
module Aig = Sqed_smt.Aig
module Term = Smt.Term
module Solver = Smt.Solver

(* -- raw graph unit tests ------------------------------------------------ *)

let test_structural_hashing () =
  let s = Sat.create () in
  let g = Aig.create s in
  let a = Aig.fresh_input g and b = Aig.fresh_input g in
  let x = Aig.and_ g a b in
  let before = Aig.num_nodes g in
  Alcotest.(check int) "repeat is shared" x (Aig.and_ g a b);
  Alcotest.(check int) "commuted is shared" x (Aig.and_ g b a);
  Alcotest.(check int) "no new nodes" before (Aig.num_nodes g)

let test_folding () =
  let s = Sat.create () in
  let g = Aig.create s in
  let a = Aig.fresh_input g and b = Aig.fresh_input g in
  Alcotest.(check int) "x & true = x" a (Aig.and_ g a Aig.etrue);
  Alcotest.(check int) "x & false = false" Aig.efalse (Aig.and_ g a Aig.efalse);
  Alcotest.(check int) "x & x = x" a (Aig.and_ g a a);
  Alcotest.(check int) "x & ~x = false" Aig.efalse (Aig.and_ g a (Aig.enot a));
  Alcotest.(check int) "x ^ x = false" Aig.efalse (Aig.xor_ g a a);
  Alcotest.(check int) "x ^ ~x = true" Aig.etrue (Aig.xor_ g a (Aig.enot a));
  Alcotest.(check int) "x ^ false = x" a (Aig.xor_ g a Aig.efalse);
  Alcotest.(check int) "x ^ true = ~x" (Aig.enot a) (Aig.xor_ g a Aig.etrue);
  Alcotest.(check int) "mux const sel" a (Aig.mux g Aig.etrue a b);
  Alcotest.(check int) "mux same arms" a (Aig.mux g b a a)

let test_rewrites () =
  let s = Sat.create () in
  let g = Aig.create s in
  let a = Aig.fresh_input g and b = Aig.fresh_input g in
  let ab = Aig.and_ g a b in
  (* idempotence over a child *)
  Alcotest.(check int) "(a&b)&a = a&b" ab (Aig.and_ g ab a);
  (* contradiction over a child *)
  Alcotest.(check int) "(a&b)&~a = false" Aig.efalse
    (Aig.and_ g ab (Aig.enot a));
  (* subsumption *)
  Alcotest.(check int) "~(a&b)&~a = ~a" (Aig.enot a)
    (Aig.and_ g (Aig.enot ab) (Aig.enot a));
  (* substitution: ~(a&b) & a = a & ~b *)
  Alcotest.(check int) "~(a&b)&a = a&~b"
    (Aig.and_ g a (Aig.enot b))
    (Aig.and_ g (Aig.enot ab) a);
  (* resolution: ~(a&b) & ~(a&~b) = ~a *)
  let ab' = Aig.and_ g a (Aig.enot b) in
  Alcotest.(check int) "resolution" (Aig.enot a)
    (Aig.and_ g (Aig.enot ab) (Aig.enot ab'))

(* Exhaustive truth tables for the gate primitives through the full
   encode/solve pipeline, driven by assumptions (so both polarity halves
   of each cone get exercised). *)
let test_truth_tables () =
  let s = Sat.create () in
  let g = Aig.create s in
  let a = Aig.fresh_input g and b = Aig.fresh_input g and c = Aig.fresh_input g in
  let gates =
    [
      ("and", Aig.and_ g a b, fun va vb _ -> va && vb);
      ("or", Aig.or_ g a b, fun va vb _ -> va || vb);
      ("xor", Aig.xor_ g a b, fun va vb _ -> va <> vb);
      ("mux", Aig.mux g a b c, fun va vb vc -> if va then vb else vc);
    ]
  in
  List.iter
    (fun (name, e, f) ->
      List.iter
        (fun (va, vb, vc) ->
          let want = f va vb vc in
          let lit_of edge v =
            Aig.assume_lit g (if v then edge else Aig.enot edge)
          in
          let assums e' =
            [ lit_of a va; lit_of b vb; lit_of c vc; Aig.assume_lit g e' ]
          in
          let ok =
            Sat.solve ~assumptions:(assums (if want then e else Aig.enot e)) s
          in
          let bad =
            Sat.solve ~assumptions:(assums (if want then Aig.enot e else e)) s
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s(%b,%b,%b) consistent" name va vb vc)
            true
            (ok = Sat.Sat && bad = Sat.Unsat))
        [
          (false, false, false);
          (false, false, true);
          (false, true, false);
          (false, true, true);
          (true, false, false);
          (true, false, true);
          (true, true, false);
          (true, true, true);
        ])
    gates

(* Polarity-awareness is observable from outside: asserting a wide
   conjunction needs only the lit -> cone halves, so the AIG path must
   produce strictly fewer clauses than full Tseitin on the same term. *)
let test_pg_fewer_clauses () =
  let width = 16 in
  let x = Term.var "x" width and y = Term.var "y" width in
  let prop = Term.eq (Term.add x y) (Term.sub y x) in
  let direct = Solver.create ~simplify:false ~aig:false () in
  let aig = Solver.create ~simplify:false ~aig:true () in
  Solver.assert_ direct prop;
  Solver.assert_ aig prop;
  Alcotest.(check bool) "same verdict" true
    (Solver.check direct = Solver.check aig);
  Alcotest.(check bool)
    (Printf.sprintf "fewer clauses (%d aig vs %d direct)"
       (Solver.num_clauses aig) (Solver.num_clauses direct))
    true
    (Solver.num_clauses aig < Solver.num_clauses direct)

(* -- random QF_BV differential ------------------------------------------ *)

let random_term rng vars depth width =
  let rec go depth =
    if depth = 0 then
      match Random.State.int rng 3 with
      | 0 -> Term.var (List.nth vars (Random.State.int rng (List.length vars))) width
      | 1 -> Term.const (Sqed_bv.Bv.of_int ~width (Random.State.int rng 256))
      | _ -> Term.var (List.nth vars (Random.State.int rng (List.length vars))) width
    else
      let a = go (depth - 1) and b = go (depth - 1) in
      match Random.State.int rng 11 with
      | 0 -> Term.add a b
      | 1 -> Term.sub a b
      | 2 -> Term.and_ a b
      | 3 -> Term.or_ a b
      | 4 -> Term.xor a b
      | 5 -> Term.not_ a
      | 6 -> Term.mul a b
      | 7 -> Term.ite (Term.eq a b) a b
      | 8 -> Term.ite (Term.ult a b) b a
      | 9 ->
          Term.lshr a
            (Term.const (Sqed_bv.Bv.of_int ~width (Random.State.int rng width)))
      | _ ->
          Term.shl a
            (Term.const (Sqed_bv.Bv.of_int ~width (Random.State.int rng width)))
  in
  go depth

let random_prop rng vars width =
  let t1 = random_term rng vars 3 width and t2 = random_term rng vars 3 width in
  match Random.State.int rng 3 with
  | 0 -> Term.eq t1 t2
  | 1 -> Term.ult t1 t2
  | _ -> Term.distinct (Term.add t1 t2) t2

let width = 6
let vars = [ "x"; "y"; "z" ]

let model_satisfies solver prop =
  Sqed_bv.Bv.to_int (Solver.model_value solver prop) = 1

(* Verdict + model agreement between the two bit-blasting backends, then
   a follow-up check under assumptions on the same (incremental) pair. *)
let aig_differential seed =
  let rng = Random.State.make [| seed |] in
  let prop = random_prop rng vars width in
  let direct = Solver.create ~simplify:false ~aig:false () in
  let aig = Solver.create ~simplify:false ~aig:true () in
  Solver.assert_ direct prop;
  Solver.assert_ aig prop;
  let r_direct = Solver.check direct and r_aig = Solver.check aig in
  (match (r_direct, r_aig) with
  | Solver.Sat, Solver.Sat -> model_satisfies aig prop
  | Solver.Unsat, Solver.Unsat -> true
  | _ -> false)
  &&
  let assum = random_prop rng vars width in
  Solver.check ~assumptions:[ assum ] direct
  = Solver.check ~assumptions:[ assum ] aig

(* Incremental adds after a check: later assertions extend already
   converted cones, forcing the encoder to emit missing polarity halves
   for shared nodes. *)
let aig_incremental seed =
  let rng = Random.State.make [| seed |] in
  let p1 = random_prop rng vars width in
  let p2 = random_prop rng vars width in
  let direct = Solver.create ~simplify:false ~aig:false () in
  let aig = Solver.create ~simplify:false ~aig:true () in
  Solver.assert_ direct p1;
  Solver.assert_ aig p1;
  let r1 = Solver.check direct = Solver.check aig in
  Solver.assert_ direct p2;
  Solver.assert_ aig p2;
  let rd = Solver.check direct and ra = Solver.check aig in
  r1 && rd = ra
  && (ra <> Solver.Sat
     || (model_satisfies aig p1 && model_satisfies aig p2))

(* Full matrix point: AIG and the CNF preprocessor together must agree
   with both features off (eliminated gate variables vs late polarity
   halves is the risky interaction). *)
let aig_simplify_matrix seed =
  let rng = Random.State.make [| seed |] in
  let p1 = random_prop rng vars width in
  let p2 = random_prop rng vars width in
  let plain = Solver.create ~simplify:false ~aig:false () in
  let full = Solver.create ~simplify:true ~aig:true () in
  Solver.assert_ plain p1;
  Solver.assert_ full p1;
  let r1 = Solver.check plain = Solver.check full in
  Solver.assert_ plain p2;
  Solver.assert_ full p2;
  let rp = Solver.check plain and rf = Solver.check full in
  r1 && rp = rf && (rf <> Solver.Sat || model_satisfies full p2)

(* DIMACS export of the post-AIG clause stream must be equisatisfiable
   with the instance: parse it back and re-solve from scratch. *)
let dimacs_roundtrip ~aig seed =
  let rng = Random.State.make [| seed |] in
  let prop = random_prop rng vars width in
  let s = Solver.create ~simplify:false ~aig () in
  Solver.assert_ s prop;
  let verdict = Solver.check s in
  match Dimacs.parse (Solver.to_dimacs s) with
  | Error e -> Alcotest.failf "export did not parse: %s" e
  | Ok cnf ->
      let r, model = Dimacs.solve cnf in
      let same =
        match (verdict, r) with
        | Solver.Sat, Sat.Sat -> model <> None
        | Solver.Unsat, Sat.Unsat -> true
        | _ -> false
      in
      same && cnf.Dimacs.num_vars >= 1

let props =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  [
    QCheck.Test.make ~name:"aig = direct (verdicts, models, assumptions)"
      ~count:200 arb aig_differential;
    QCheck.Test.make ~name:"aig = direct (incremental adds)" ~count:150 arb
      aig_incremental;
    QCheck.Test.make ~name:"aig+simplify = plain" ~count:100 arb
      aig_simplify_matrix;
    QCheck.Test.make ~name:"dimacs round-trip (aig)" ~count:40 arb
      (dimacs_roundtrip ~aig:true);
    QCheck.Test.make ~name:"dimacs round-trip (direct)" ~count:20 arb
      (dimacs_roundtrip ~aig:false);
  ]

let suite =
  [
    Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
    Alcotest.test_case "constant folding" `Quick test_folding;
    Alcotest.test_case "one-level rewrites" `Quick test_rewrites;
    Alcotest.test_case "gate truth tables through SAT" `Quick
      test_truth_tables;
    Alcotest.test_case "polarity-aware conversion emits fewer clauses" `Quick
      test_pg_fewer_clauses;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
