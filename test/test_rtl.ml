(* Tests for the RTL netlist DSL: builder checks, concrete simulation,
   memory behaviour, and a differential property that the symbolic unroller
   agrees with the simulator on random circuits/inputs. *)

module Bv = Sqed_bv.Bv
module C = Sqed_rtl.Circuit
module Node = Sqed_rtl.Node
module Sim = Sqed_rtl.Sim
module Unroll = Sqed_rtl.Unroll
module Term = Sqed_smt.Term

let bv8 = Bv.of_int ~width:8

(* An 8-bit counter with enable. *)
let counter_circuit () =
  let b = C.create "counter" in
  let en = C.input b "en" 1 in
  let count = C.reg_const b ~name:"count" ~width:8 0 in
  let next = C.mux b en (C.add b count (C.consti b ~width:8 1)) count in
  C.connect b count next;
  C.output b "count" count;
  C.finalize b

let test_counter () =
  let sim = Sim.create (counter_circuit ()) in
  let on = [ ("en", Bv.one 1) ] and off = [ ("en", Bv.zero 1) ] in
  let out1 = Sim.cycle sim on in
  Alcotest.(check int) "count pre-edge" 0 (Bv.to_int (List.assoc "count" out1));
  let out2 = Sim.cycle sim on in
  Alcotest.(check int) "count 1" 1 (Bv.to_int (List.assoc "count" out2));
  let out3 = Sim.cycle sim off in
  Alcotest.(check int) "count 2" 2 (Bv.to_int (List.assoc "count" out3));
  let out4 = Sim.cycle sim on in
  Alcotest.(check int) "held" 2 (Bv.to_int (List.assoc "count" out4))

let test_unconnected_register () =
  let b = C.create "bad" in
  let _ = C.reg_const b ~name:"r" ~width:4 0 in
  Alcotest.(check bool) "finalize fails" true
    (try
       ignore (C.finalize b);
       false
     with Failure _ -> true)

let test_double_connect () =
  let b = C.create "bad2" in
  let r = C.reg_const b ~name:"r" ~width:4 0 in
  C.connect b r r;
  Alcotest.(check bool) "second connect fails" true
    (try
       C.connect b r r;
       false
     with Failure _ -> true)

let test_width_check () =
  let b = C.create "bad3" in
  let x = C.consti b ~width:4 1 and y = C.consti b ~width:8 1 in
  Alcotest.(check bool) "add width mismatch" true
    (try
       ignore (C.add b x y);
       false
     with Invalid_argument _ -> true)

let test_duplicate_names () =
  let b = C.create "bad4" in
  let _ = C.input b "x" 4 in
  Alcotest.(check bool) "duplicate input" true
    (try
       ignore (C.input b "x" 4);
       false
     with Failure _ -> true)

let test_symbolic_init () =
  let b = C.create "sym" in
  let r = C.reg b ~name:"r" ~init:(Node.Symbolic_init "r0") ~width:8 in
  C.connect b r r;
  C.output b "r" r;
  let c = C.finalize b in
  let sim =
    Sim.create ~initial:(fun n -> if n = "r0" then Some (bv8 42) else None) c
  in
  let out = Sim.cycle sim [] in
  Alcotest.(check int) "symbolic init honoured" 42
    (Bv.to_int (List.assoc "r" out))

let memory_circuit () =
  let b = C.create "mem" in
  let wr_en = C.input b "wr_en" 1 in
  let wr_addr = C.input b "wr_addr" 2 in
  let wr_data = C.input b "wr_data" 8 in
  let rd_addr = C.input b "rd_addr" 2 in
  let mem =
    C.memory b ~name:"m" ~words:4 ~word_width:8
      ~init:(Node.Const_init (Bv.zero 8)) ~wr_en ~wr_addr ~wr_data
  in
  C.output b "rd_data" (mem.C.read rd_addr);
  C.finalize b

let test_memory () =
  let sim = Sim.create (memory_circuit ()) in
  let wr addr data rd =
    [
      ("wr_en", Bv.one 1);
      ("wr_addr", Bv.of_int ~width:2 addr);
      ("wr_data", bv8 data);
      ("rd_addr", Bv.of_int ~width:2 rd);
    ]
  in
  let rd addr =
    [
      ("wr_en", Bv.zero 1);
      ("wr_addr", Bv.of_int ~width:2 0);
      ("wr_data", bv8 0);
      ("rd_addr", Bv.of_int ~width:2 addr);
    ]
  in
  ignore (Sim.cycle sim (wr 1 0xAA 0));
  ignore (Sim.cycle sim (wr 3 0x55 0));
  let o = Sim.cycle sim (rd 1) in
  Alcotest.(check int) "word 1" 0xAA (Bv.to_int (List.assoc "rd_data" o));
  let o = Sim.cycle sim (rd 3) in
  Alcotest.(check int) "word 3" 0x55 (Bv.to_int (List.assoc "rd_data" o));
  let o = Sim.cycle sim (rd 0) in
  Alcotest.(check int) "word 0 untouched" 0 (Bv.to_int (List.assoc "rd_data" o))

let test_memory_read_during_write () =
  (* Asynchronous read returns the pre-edge value during the write cycle. *)
  let sim = Sim.create (memory_circuit ()) in
  let o =
    Sim.cycle sim
      [
        ("wr_en", Bv.one 1);
        ("wr_addr", Bv.of_int ~width:2 2);
        ("wr_data", bv8 9);
        ("rd_addr", Bv.of_int ~width:2 2);
      ]
  in
  Alcotest.(check int) "old value during write" 0
    (Bv.to_int (List.assoc "rd_data" o))

let test_stats () =
  let c = counter_circuit () in
  Alcotest.(check bool) "stats string" true (String.length (C.stats c) > 0);
  Alcotest.(check int) "one register" 1 (List.length (C.registers c))

(* -- unroller ------------------------------------------------------- *)

let test_unroll_counter () =
  let c = counter_circuit () in
  let u = Unroll.create c in
  Unroll.extend_to u 3;
  Alcotest.(check int) "depth" 3 (Unroll.depth u);
  (* With en=1 every step, count@2 (entering step 2) must equal 2. *)
  let s = Sqed_smt.Solver.create () in
  for t = 0 to 2 do
    Sqed_smt.Solver.assert_ s
      (Term.eq (Unroll.input u ~step:t "en") (Term.of_int ~width:1 1))
  done;
  let count2 = Unroll.output u ~step:2 "count" in
  Sqed_smt.Solver.assert_ s (Term.eq count2 (Term.of_int ~width:8 2));
  Alcotest.(check bool) "count@2 = 2 sat" true
    (Sqed_smt.Solver.check s = Sqed_smt.Solver.Sat)

let test_unroll_counter_unsat () =
  let c = counter_circuit () in
  let u = Unroll.create c in
  Unroll.extend_to u 3;
  let s = Sqed_smt.Solver.create () in
  for t = 0 to 2 do
    Sqed_smt.Solver.assert_ s
      (Term.eq (Unroll.input u ~step:t "en") (Term.of_int ~width:1 1))
  done;
  (* count@2 cannot be 5 after only two increments. *)
  Sqed_smt.Solver.assert_ s
    (Term.eq (Unroll.output u ~step:2 "count") (Term.of_int ~width:8 5));
  Alcotest.(check bool) "count@2 = 5 unsat" true
    (Sqed_smt.Solver.check s = Sqed_smt.Solver.Unsat)

let test_unroll_init_vars () =
  let b = C.create "symu" in
  let r = C.reg b ~name:"r" ~init:(Node.Symbolic_init "r0") ~width:8 in
  C.connect b r (C.add b r (C.consti b ~width:8 1)) ;
  C.output b "r" r;
  let c = C.finalize b in
  let u = Unroll.create c in
  Unroll.extend_to u 2;
  Alcotest.(check (list (pair string int))) "init vars" [ ("r0", 8) ]
    (Unroll.init_vars u);
  (* r@1 = r0 + 1 must be valid. *)
  let r1 = Unroll.output u ~step:1 "r" in
  let expected = Term.add (Term.var "r0" 8) (Term.of_int ~width:8 1) in
  let v, _ = Sqed_smt.Solver.check_valid (Term.eq r1 expected) in
  Alcotest.(check bool) "r@1 = r0+1" true (v = Sqed_smt.Solver.Unsat)

(* Differential property: random dataflow circuit, random inputs; the
   unroller's step-t output term evaluated at the trace inputs equals the
   simulator's observed output. *)
let random_circuit rng =
  let b = C.create "rand" in
  let i0 = C.input b "i0" 8 and i1 = C.input b "i1" 8 in
  let r0 = C.reg_const b ~name:"r0" ~width:8 3 in
  let r1 = C.reg_const b ~name:"r1" ~width:8 7 in
  let pool = ref [ i0; i1; r0; r1 ] in
  let pick () =
    List.nth !pool (Random.State.int rng (List.length !pool))
  in
  for _ = 1 to 12 do
    let x = pick () and y = pick () in
    let s =
      match Random.State.int rng 10 with
      | 0 -> C.add b x y
      | 1 -> C.sub b x y
      | 2 -> C.and_ b x y
      | 3 -> C.or_ b x y
      | 4 -> C.xor b x y
      | 5 -> C.mux b (C.bit b x 0) y x
      | 6 -> C.shl b x (C.consti b ~width:8 (Random.State.int rng 8))
      | 7 -> C.udiv b x y
      | 8 -> C.urem b x y
      | _ -> C.mul b x y
    in
    pool := s :: !pool
  done;
  C.connect b r0 (pick ());
  C.connect b r1 (pick ());
  C.output b "o0" (pick ());
  C.output b "o1" (pick ());
  C.finalize b

let unroll_vs_sim_once seed =
  let rng = Random.State.make [| seed |] in
  let c = random_circuit rng in
  let steps = 4 in
  let inputs =
    List.init steps (fun _ ->
        [
          ("i0", Bv.random rng 8);
          ("i1", Bv.random rng 8);
        ])
  in
  let sim = Sim.create c in
  let sim_outs = Sim.run sim inputs in
  let u = Unroll.create c in
  Unroll.extend_to u steps;
  (* Parse "<input>@<step>" variable names back into trace positions. *)
  let lookup name =
    match String.index_opt name '@' with
    | Some k ->
        let base = String.sub name 0 k in
        let step =
          int_of_string (String.sub name (k + 1) (String.length name - k - 1))
        in
        List.assoc base (List.nth inputs step)
    | None -> failwith ("unexpected var " ^ name)
  in
  List.for_all
    (fun t ->
      List.for_all
        (fun out ->
          let term = Unroll.output u ~step:t out in
          let symbolic = Term.eval lookup term in
          let concrete = List.assoc out (List.nth sim_outs t) in
          Bv.equal symbolic concrete)
        [ "o0"; "o1" ])
    (List.init steps Fun.id)

let unroll_vs_sim_prop =
  QCheck.Test.make ~name:"unroller agrees with simulator" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    unroll_vs_sim_once

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "unconnected register" `Quick test_unconnected_register;
    Alcotest.test_case "double connect" `Quick test_double_connect;
    Alcotest.test_case "width check" `Quick test_width_check;
    Alcotest.test_case "duplicate names" `Quick test_duplicate_names;
    Alcotest.test_case "symbolic init" `Quick test_symbolic_init;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "memory read during write" `Quick
      test_memory_read_during_write;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "unroll counter sat" `Quick test_unroll_counter;
    Alcotest.test_case "unroll counter unsat" `Quick test_unroll_counter_unsat;
    Alcotest.test_case "unroll init vars" `Quick test_unroll_init_vars;
  ]
  @ [ QCheck_alcotest.to_alcotest ~long:false unroll_vs_sim_prop ]
