(* End-to-end resilience smoke (the @resil-smoke alias).

   A small fig3-style synthesis campaign runs under injected faults —
   one pool-task crash plus one failed checkpoint append — and must
   complete with partial results: one FAILED cell, every other cell
   normal, the completed cells journaled.  A second run over the same
   journal must resume, skipping the journaled cells and recomputing
   only the crashed-or-unjournaled ones.  Finally a solve whose deadline
   sits below its bit-blast time must come back Unknown promptly with
   the solver still usable.

   Everything runs with jobs=1 so the fault schedule is deterministic:
   the four cells run in order (ADD/hpf, ADD/iter, SUB/hpf, SUB/iter),
   the first checkpoint append fails (ADD/hpf stays unjournaled), and
   the second pool task (ADD/iter) crashes. *)

module Fault = Sqed_resil.Fault
module Verdict = Sqed_resil.Verdict
module Metrics = Sqed_obs.Metrics
module Term = Sqed_smt.Term
module Solver = Sqed_smt.Solver

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    Printf.printf "FAIL %s\n%!" name;
    incr failures
  end

let () =
  let ckpt = Filename.temp_file "sepe_resil_smoke" ".jsonl" in
  let campaign () =
    Sqed_exp.Fig3.run ~jobs:1 ~witness:false ~checkpoint:ckpt
      ~cases:[ "ADD"; "SUB" ] ~seeds:[ 1 ] ~k:1 ~time_budget:5.0 ()
  in
  (* Run 1: degraded but complete. *)
  Fault.configure "pool.task:2,checkpoint.write:1";
  let s1 = campaign () in
  Fault.reset ();
  check "run 1 completed degraded" (Verdict.degraded s1);
  check "run 1: exactly one injected task failure" (s1.Verdict.failed = 1);
  check "run 1: the other three cells are ok" (s1.Verdict.ok = 3);
  check "run 1: nothing skipped" (s1.Verdict.skipped = 0);
  check "run 1: degraded exit code is 4" (Verdict.exit_code s1 = 4);
  check "faults were actually injected"
    (Metrics.find_counter "resil.faults_injected" >= 2);
  (* Run 2: resume over the same journal.  The crashed cell and the one
     whose append was failed get recomputed; the two journaled cells are
     skipped. *)
  let s2 = campaign () in
  check "run 2: resumed the two journaled cells" (s2.Verdict.skipped = 2);
  check "run 2: recomputed the remaining two" (s2.Verdict.ok = 2);
  check "run 2: clean this time" (not (Verdict.degraded s2));
  (try Sys.remove ckpt with Sys_error _ -> ());
  (* Mid-solve deadline: heavy encoding as an assumption so bit-blasting
     happens inside the budgeted check. *)
  let s = Solver.create () in
  let x = Term.var "smoke_x" 64 and y = Term.var "smoke_y" 64 in
  let heavy = ref (Term.mul x y) in
  for _ = 1 to 6 do
    heavy :=
      Term.mul (Term.udiv !heavy (Term.add y (Term.of_int ~width:64 3))) x
  done;
  let t0 = Unix.gettimeofday () in
  let r =
    Solver.check
      ~assumptions:[ Term.distinct !heavy (Term.of_int ~width:64 1) ]
      ~deadline:(t0 +. 0.05) s
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check "mid-blast deadline answers Unknown" (r = Solver.Unknown);
  check
    (Printf.sprintf "deadline honored promptly (%.3fs)" elapsed)
    (elapsed < 1.0);
  let z = Term.var "smoke_z" 8 in
  Solver.assert_ s (Term.eq z (Term.of_int ~width:8 7));
  check "solver reusable after interrupted solve" (Solver.check s = Solver.Sat);
  if !failures > 0 then begin
    Printf.printf "resil-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "resil-smoke: all checks passed"
