(* Differential fuzz for the CNF preprocessor (Sqed_sat.Simplify and its
   integration into the CDCL core): a simplified solver must return the
   same SAT/UNSAT verdict as an unsimplified one on random CNFs and random
   QF_BV terms, SAT models must still satisfy the *original* clauses
   (exercising model extension over eliminated variables), and the
   incremental API — adding clauses or assuming literals over possibly
   eliminated variables — must keep its meaning (exercising restore). *)

module Sat = Sqed_sat.Sat
module Simplify = Sqed_sat.Simplify
module Smt = Sqed_smt

type cnf = int list list (* positive ints 1..n, negative for negated *)

let cnf_print cnf =
  String.concat " & "
    (List.map
       (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
       cnf)

let gen_cnf ~nvars ~max_len : cnf QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_lit =
    map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (nvars - 1)) bool
  in
  int_range 5 60 >>= fun ncl ->
  list_size (return ncl) (list_size (int_range 1 max_len) gen_lit)

let load ~simplify ~nvars (cnf : cnf) =
  let s = Sat.create () in
  Sat.set_simplify s simplify;
  let v = Array.init nvars (fun _ -> Sat.new_var s) in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  (s, v)

let model_ok s v (cnf : cnf) =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let b = Sat.value s v.(abs l - 1) in
          if l > 0 then b else not b)
        clause)
    cnf

(* Verdict + original-model agreement, with the pass forced so that small
   instances exercise it too (the automatic trigger needs hundreds of
   clauses). *)
let differential ~nvars (cnf : cnf) =
  let plain, _ = load ~simplify:false ~nvars cnf in
  let simp, v = load ~simplify:true ~nvars cnf in
  Sat.simplify_now simp;
  let r_plain = Sat.solve plain and r_simp = Sat.solve simp in
  r_plain = r_simp
  && (r_simp <> Sat.Sat || model_ok simp v cnf)

(* Same under assumptions: assumption variables may have been eliminated
   by the forced pass and must be restored + frozen by [solve]. *)
let differential_assumptions ~nvars (cnf, assumed) =
  let to_lit v l =
    if l > 0 then Sat.pos v.(abs l - 1) else Sat.neg_of_var v.(abs l - 1)
  in
  let plain, vp = load ~simplify:false ~nvars cnf in
  let simp, vs = load ~simplify:true ~nvars cnf in
  Sat.simplify_now simp;
  let r_plain = Sat.solve ~assumptions:(List.map (to_lit vp) assumed) plain in
  let r_simp = Sat.solve ~assumptions:(List.map (to_lit vs) assumed) simp in
  r_plain = r_simp
  && (r_simp <> Sat.Sat
     || (model_ok simp vs cnf
        && List.for_all
             (fun l ->
               let b = Sat.value simp vs.(abs l - 1) in
               if l > 0 then b else not b)
             assumed))

(* Incremental use: solve (with a pass), then add clauses that may
   mention eliminated variables, then solve again — against a fresh
   unsimplified solver on the union. *)
let differential_incremental ~nvars (cnf1, cnf2) =
  let simp, v = load ~simplify:true ~nvars cnf1 in
  Sat.simplify_now simp;
  let _ = Sat.solve simp in
  List.iter
    (fun clause ->
      Sat.add_clause simp
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf2;
  Sat.simplify_now simp;
  let r_simp = Sat.solve simp in
  let plain, _ = load ~simplify:false ~nvars (cnf1 @ cnf2) in
  let r_plain = Sat.solve plain in
  r_plain = r_simp && (r_simp <> Sat.Sat || model_ok simp v (cnf1 @ cnf2))

(* -- unit tests --------------------------------------------------------- *)

let test_standalone_run () =
  (* (a | b) & (~a | b) & (~b | c): b is forced by resolution probing or
     elimination; c must follow in any model.  Check the raw outcome
     invariants: no eliminated variable in the output clauses. *)
  let pos v = 2 * v and neg v = (2 * v) + 1 in
  let o =
    Simplify.run ~nvars:3
      ~frozen:(fun _ -> false)
      [ [| pos 0; pos 1 |]; [| neg 0; pos 1 |]; [| neg 1; pos 2 |] ]
  in
  Alcotest.(check bool) "not unsat" false o.Simplify.unsat;
  let elim_vars = List.map fst o.Simplify.eliminated in
  List.iter
    (fun c ->
      Array.iter
        (fun l ->
          Alcotest.(check bool) "no eliminated var in clauses" false
            (List.mem (l lsr 1) elim_vars))
        c)
    o.Simplify.clauses;
  Alcotest.(check bool) "did something" true
    (o.Simplify.stats.Simplify.eliminated_vars > 0
    || o.Simplify.stats.Simplify.units > 0)

let test_frozen_not_eliminated () =
  (* A pure chain would be eliminated wholesale; freezing pins the middle
     variable. *)
  let s = Sat.create () in
  let v = Array.init 5 (fun _ -> Sat.new_var s) in
  for i = 0 to 3 do
    Sat.add_clause s [ Sat.neg_of_var v.(i); Sat.pos v.(i + 1) ]
  done;
  Sat.freeze s v.(2);
  Sat.set_simplify s true;
  Sat.simplify_now s;
  Alcotest.(check bool) "frozen survives" false (Sat.is_eliminated s v.(2));
  Alcotest.check
    (Alcotest.testable
       (Fmt.of_to_string (function
         | Sat.Sat -> "SAT"
         | Sat.Unsat -> "UNSAT"
         | Sat.Unknown -> "UNKNOWN"))
       ( = ))
    "still sat" Sat.Sat (Sat.solve s)

let test_restore_on_add () =
  (* Eliminate a gate-style variable, then constrain it directly: the
     stored clauses must come back, and the combination must be UNSAT. *)
  let s = Sat.create () in
  let a = Sat.new_var s and g = Sat.new_var s and b = Sat.new_var s in
  (* g <-> (a & b) *)
  Sat.add_clause s [ Sat.neg_of_var g; Sat.pos a ];
  Sat.add_clause s [ Sat.neg_of_var g; Sat.pos b ];
  Sat.add_clause s [ Sat.pos g; Sat.neg_of_var a; Sat.neg_of_var b ];
  Sat.set_simplify s true;
  Sat.simplify_now s;
  (* Whether or not g was eliminated, asserting g & ~a must now be UNSAT. *)
  Sat.add_clause s [ Sat.pos g ];
  Sat.add_clause s [ Sat.neg_of_var a ];
  Alcotest.(check bool) "restored semantics" true (Sat.solve s = Sat.Unsat)

(* -- QF_BV differential ------------------------------------------------- *)

let random_term rng vars depth width =
  let module Term = Smt.Term in
  let rec go depth =
    if depth = 0 then
      match Random.State.int rng 3 with
      | 0 -> Term.var (List.nth vars (Random.State.int rng (List.length vars))) width
      | 1 -> Term.const (Sqed_bv.Bv.of_int ~width (Random.State.int rng 256))
      | _ -> Term.var (List.nth vars (Random.State.int rng (List.length vars))) width
    else
      let a = go (depth - 1) and b = go (depth - 1) in
      match Random.State.int rng 9 with
      | 0 -> Term.add a b
      | 1 -> Term.sub a b
      | 2 -> Term.and_ a b
      | 3 -> Term.or_ a b
      | 4 -> Term.xor a b
      | 5 -> Term.not_ a
      | 6 -> Term.mul a b
      | 7 -> Term.ite (Term.eq a b) a b
      | _ -> Term.shl a (Term.const (Sqed_bv.Bv.of_int ~width (Random.State.int rng width)))
  in
  go depth

let qfbv_differential seed =
  let module Term = Smt.Term in
  let module Solver = Smt.Solver in
  let rng = Random.State.make [| seed |] in
  let width = 6 in
  let vars = [ "x"; "y"; "z" ] in
  let t1 = random_term rng vars 3 width and t2 = random_term rng vars 3 width in
  let prop = Term.eq t1 t2 in
  let plain = Solver.create ~simplify:false () in
  let simp = Solver.create ~simplify:true () in
  Solver.assert_ plain prop;
  Solver.assert_ simp prop;
  let r_plain = Solver.check plain and r_simp = Solver.check simp in
  (match (r_plain, r_simp) with
  | Solver.Sat, Solver.Sat ->
      (* The model must actually satisfy the asserted property. *)
      Sqed_bv.Bv.to_int (Solver.model_value simp prop) = 1
  | Solver.Unsat, Solver.Unsat -> true
  | _ -> false)
  (* And checking under assumptions after the first check stays sound. *)
  &&
  let assum = Term.eq (Term.var "x" width) (Term.var "y" width) in
  Solver.check ~assumptions:[ assum ] plain
  = Solver.check ~assumptions:[ assum ] simp

let props =
  let arb ~nvars ~max_len =
    QCheck.make ~print:cnf_print (gen_cnf ~nvars ~max_len)
  in
  let arb_pair ~nvars ~max_len =
    QCheck.make
      ~print:(fun (a, b) -> cnf_print a ^ " ++ " ^ cnf_print b)
      QCheck.Gen.(pair (gen_cnf ~nvars ~max_len) (gen_cnf ~nvars ~max_len))
  in
  let arb_assumed ~nvars ~max_len =
    QCheck.make
      ~print:(fun (c, a) ->
        cnf_print c ^ " assuming " ^ String.concat "," (List.map string_of_int a))
      QCheck.Gen.(
        pair (gen_cnf ~nvars ~max_len)
          (list_size (int_range 0 3)
             (map2
                (fun v s -> if s then v + 1 else -(v + 1))
                (int_bound (nvars - 1)) bool)))
  in
  [
    QCheck.Test.make ~name:"simplified = plain (binary-heavy)" ~count:300
      (arb ~nvars:10 ~max_len:2)
      (fun cnf -> differential ~nvars:10 cnf);
    QCheck.Test.make ~name:"simplified = plain (mixed)" ~count:300
      (arb ~nvars:14 ~max_len:4)
      (fun cnf -> differential ~nvars:14 cnf);
    QCheck.Test.make ~name:"simplified = plain (wide clauses)" ~count:150
      (arb ~nvars:20 ~max_len:7)
      (fun cnf -> differential ~nvars:20 cnf);
    QCheck.Test.make ~name:"assumptions over eliminated vars" ~count:300
      (arb_assumed ~nvars:12 ~max_len:3)
      (fun x -> differential_assumptions ~nvars:12 x);
    QCheck.Test.make ~name:"incremental adds over eliminated vars" ~count:200
      (arb_pair ~nvars:12 ~max_len:3)
      (fun x -> differential_incremental ~nvars:12 x);
    QCheck.Test.make ~name:"qf_bv: simplified = plain" ~count:60
      (QCheck.make ~print:string_of_int QCheck.Gen.nat)
      qfbv_differential;
  ]

let suite =
  [
    Alcotest.test_case "standalone outcome invariants" `Quick
      test_standalone_run;
    Alcotest.test_case "frozen vars survive" `Quick test_frozen_not_eliminated;
    Alcotest.test_case "restore on direct add" `Quick test_restore_on_add;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
