(* Structural documentation lint, run by the @doc-lint alias (wired into
   `dune runtest`).

   The container this repo builds in has no odoc binary, so `dune build
   @doc` cannot be part of CI; this lint keeps the odoc sweep honest
   instead.  Every public interface passed on the command line (the
   dune rule globs the documented libraries' *.mli files) must open with
   a module-level odoc doc-comment as its first token, and that comment
   must have some substance rather than being empty.

   The solver-stack interfaces (lib/sat, lib/bmc) are held to a stricter
   standard: every exported [val] must carry its own doc comment,
   attached the way odoc attaches them — either immediately before the
   declaration or immediately after it.  A comment sitting between two
   vals attaches to the one before it (the odoc rule), so it cannot
   excuse the next one.  With odoc installed, `dune build @doc` renders
   the same comments; see docs/ARCHITECTURE.md and docs/SOLVER.md. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* First doc comment must be the first token of the file. *)
let starts_with_doc s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && ws s.[!i] do
    incr i
  done;
  !i + 3 <= n && String.sub s !i 3 = "(**"

(* ...and must contain at least one sentence worth of text. *)
let doc_nonempty s =
  match String.index_opt s '*' with
  | Some i ->
      let rest = String.sub s (i + 2) (min 200 (String.length s - i - 2)) in
      String.exists (fun c -> not (ws c) && c <> '*' && c <> ')') rest
  | None -> false

(* ------------------------------------------------------------------ *)
(* Strict per-val check for the solver-stack interfaces                *)
(* ------------------------------------------------------------------ *)

(* The .mli is cut into an ordered element stream: doc comments and
   keyword-led declarations.  That is all the structure the attachment
   rule needs — no type-expression parsing. *)
type elt =
  | Doc  (** a [(** ... *)] comment *)
  | Decl of string * string * int  (** keyword, following name, line *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let keywords =
  [ "val"; "type"; "module"; "exception"; "include"; "open"; "external" ]

let elements s =
  let n = String.length s in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  (* Skip a (possibly nested) comment body, [i] just past the opener. *)
  let rec skip_comment () =
    if !i + 1 < n && s.[!i] = '(' && s.[!i + 1] = '*' then begin
      i := !i + 2;
      skip_comment ();
      skip_comment_tail ()
    end
    else if !i + 1 < n && s.[!i] = '*' && s.[!i + 1] = ')' then i := !i + 2
    else if !i < n then begin
      bump s.[!i];
      incr i;
      skip_comment ()
    end
  and skip_comment_tail () = skip_comment () in
  while !i < n do
    if !i + 1 < n && s.[!i] = '(' && s.[!i + 1] = '*' then begin
      let is_doc = !i + 2 < n && s.[!i + 2] = '*' in
      i := !i + 2;
      skip_comment ();
      if is_doc then out := Doc :: !out
    end
    else if s.[!i] = '"' then begin
      (* String literals cannot hide keywords. *)
      incr i;
      while !i < n && s.[!i] <> '"' do
        bump s.[!i];
        if s.[!i] = '\\' then incr i;
        incr i
      done;
      if !i < n then incr i
    end
    else if
      is_ident_char s.[!i] && (!i = 0 || not (is_ident_char s.[!i - 1]))
    then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      if List.mem word keywords then begin
        let at = !line in
        (* The declared name is the next identifier (skipping ws). *)
        let j = ref !i in
        while !j < n && ws s.[!j] do
          incr j
        done;
        let k = ref !j in
        while !k < n && is_ident_char s.[!k] do
          incr k
        done;
        let name = if !k > !j then String.sub s !j (!k - !j) else "?" in
        out := Decl (word, name, at) :: !out
      end
    end
    else begin
      bump s.[!i];
      incr i
    end
  done;
  List.rev !out

(* odoc attachment: a doc immediately before a val, or immediately after
   it, documents it; a doc after val X does not also excuse val Y. *)
let undocumented_vals s =
  let rec walk acc = function
    | Doc :: Decl ("val", _, _) :: rest -> walk acc rest
    | Decl ("val", _, _) :: Doc :: rest -> walk acc rest
    | Decl ("val", name, line) :: rest -> walk ((name, line) :: acc) rest
    | _ :: rest -> walk acc rest
    | [] -> List.rev acc
  in
  walk [] (elements s)

(* Path-keyed strictness: the solver stack must document every export. *)
let strict path =
  let p = String.concat "/" (String.split_on_char '\\' path) in
  let has sub =
    let ls = String.length sub and lp = String.length p in
    let rec at i = i + ls <= lp && (String.sub p i ls = sub || at (i + 1)) in
    at 0
  in
  has "lib/sat/" || has "lib/bmc/"

let () =
  let failures = ref 0 in
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "doc_lint: no .mli files passed";
    exit 1
  end;
  List.iter
    (fun path ->
      let s = read_file path in
      if not (starts_with_doc s && doc_nonempty s) then begin
        Printf.printf "FAIL %s: missing module-level (** ... *) doc comment\n"
          path;
        incr failures
      end
      else if strict path then begin
        match undocumented_vals s with
        | [] -> Printf.printf "ok   %s (all exports documented)\n"
                  (Filename.basename path)
        | missing ->
            List.iter
              (fun (name, line) ->
                Printf.printf "FAIL %s:%d: exported [val %s] has no doc comment\n"
                  path line name)
              missing;
            incr failures
      end
      else Printf.printf "ok   %s\n" (Filename.basename path))
    files;
  if !failures > 0 then begin
    Printf.printf "doc-lint: %d interface(s) with missing docs\n" !failures;
    exit 1
  end;
  Printf.printf "doc-lint: %d interfaces documented\n" (List.length files)
