(* Structural documentation lint, run by the @doc-lint alias (wired into
   `dune runtest`).

   The container this repo builds in has no odoc binary, so `dune build
   @doc` cannot be part of CI; this lint keeps the odoc sweep honest
   instead.  Every public interface passed on the command line (the
   dune rule globs the documented libraries' *.mli files) must open with
   a module-level odoc doc-comment as its first token, and that comment
   must have some substance rather than being empty.  With odoc
   installed, `dune build @doc` renders the same comments; see
   docs/ARCHITECTURE.md. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* First doc comment must be the first token of the file. *)
let starts_with_doc s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && ws s.[!i] do
    incr i
  done;
  !i + 3 <= n && String.sub s !i 3 = "(**"

(* ...and must contain at least one sentence worth of text. *)
let doc_nonempty s =
  match String.index_opt s '*' with
  | Some i ->
      let rest = String.sub s (i + 2) (min 200 (String.length s - i - 2)) in
      String.exists (fun c -> not (ws c) && c <> '*' && c <> ')') rest
  | None -> false

let () =
  let failures = ref 0 in
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "doc_lint: no .mli files passed";
    exit 1
  end;
  List.iter
    (fun path ->
      let s = read_file path in
      if starts_with_doc s && doc_nonempty s then
        Printf.printf "ok   %s\n" (Filename.basename path)
      else begin
        Printf.printf "FAIL %s: missing module-level (** ... *) doc comment\n"
          path;
        incr failures
      end)
    files;
  if !failures > 0 then begin
    Printf.printf "doc-lint: %d interface(s) undocumented\n" !failures;
    exit 1
  end;
  Printf.printf "doc-lint: %d interfaces documented\n" (List.length files)
