(* ISA layer tests: encode/decode roundtrips against the standard RV32
   encodings, interpreter unit tests, assembler roundtrips, and the key
   differential property that symbolic semantics agree with the concrete
   interpreter for every opcode. *)

module Bv = Sqed_bv.Bv
module Insn = Sqed_isa.Insn
module Encode = Sqed_isa.Encode
module Exec = Sqed_isa.Exec
module Semantics = Sqed_isa.Semantics
module Asm = Sqed_isa.Asm
module Term = Sqed_smt.Term

let test_known_encodings () =
  (* Golden words cross-checked against the RISC-V spec tables. *)
  let check insn expected =
    Alcotest.(check string)
      (Insn.to_string insn) expected
      (Bv.to_hex_string (Encode.encode insn))
  in
  check (Insn.R (Insn.ADD, 1, 2, 3)) "003100b3";
  check (Insn.R (Insn.SUB, 1, 2, 3)) "403100b3";
  check (Insn.R (Insn.MUL, 5, 6, 7)) "027302b3";
  check (Insn.I (Insn.ADDI, 1, 2, -1)) "fff10093";
  check (Insn.I (Insn.SRAI, 1, 2, 4)) "40415093";
  check (Insn.Lw (1, 0, 4)) "00402083";
  check (Insn.Sw (1, 0, 4)) "00102223";
  check (Insn.Lui (1, 0x12345)) "123450b7"

let test_decode_garbage () =
  Alcotest.(check bool) "all ones undecodable" true
    (Encode.decode (Bv.ones 32) = None);
  Alcotest.(check bool) "zero undecodable" true
    (Encode.decode (Bv.zero 32) = None)

let test_fields () =
  let w = Encode.encode (Insn.R (Insn.ADD, 1, 2, 3)) in
  Alcotest.(check int) "rd" 1 (Encode.rd_field w);
  Alcotest.(check int) "rs1" 2 (Encode.rs1_field w);
  Alcotest.(check int) "rs2" 3 (Encode.rs2_field w);
  let w = Encode.encode (Insn.Sw (7, 3, -4)) in
  Alcotest.(check int) "store imm" (-4) (Encode.imm_s_field w)

let test_insn_metadata () =
  Alcotest.(check (option int)) "rd of R" (Some 1)
    (Insn.rd (Insn.R (Insn.ADD, 1, 2, 3)));
  Alcotest.(check (option int)) "rd of SW" None (Insn.rd (Insn.Sw (1, 2, 0)));
  Alcotest.(check (list int)) "sources of SW" [ 2; 1 ]
    (Insn.sources (Insn.Sw (1, 2, 0)));
  Alcotest.(check bool) "load" true (Insn.is_load (Insn.Lw (1, 0, 0)));
  Alcotest.(check bool) "valid imm range" false
    (Insn.valid (Insn.I (Insn.ADDI, 1, 1, 5000)));
  Alcotest.(check bool) "valid shamt range" false
    (Insn.valid (Insn.I (Insn.SLLI, 1, 1, 32)));
  Alcotest.(check string) "map_regs" "ADD x11, x12, x13"
    (Insn.to_string (Insn.map_regs (fun r -> r + 10) (Insn.R (Insn.ADD, 1, 2, 3))))

let test_exec_basic () =
  let st = Exec.create ~xlen:32 ~mem_words:8 in
  Exec.run st
    [
      Insn.I (Insn.ADDI, 1, 0, 5);
      Insn.I (Insn.ADDI, 2, 0, 7);
      Insn.R (Insn.ADD, 3, 1, 2);
      Insn.R (Insn.MUL, 4, 1, 2);
      Insn.R (Insn.SUB, 5, 1, 2);
    ];
  Alcotest.(check int) "add" 12 (Bv.to_int (Exec.reg st 3));
  Alcotest.(check int) "mul" 35 (Bv.to_int (Exec.reg st 4));
  Alcotest.(check int) "sub wraps" (-2)
    (Bv.to_signed_int (Exec.reg st 5))

let test_exec_x0 () =
  let st = Exec.create ~xlen:32 ~mem_words:8 in
  Exec.run st [ Insn.I (Insn.ADDI, 0, 0, 42) ];
  Alcotest.(check int) "x0 stays zero" 0 (Bv.to_int (Exec.reg st 0))

let test_exec_memory () =
  let st = Exec.create ~xlen:32 ~mem_words:8 in
  Exec.run st
    [
      Insn.I (Insn.ADDI, 1, 0, 123);
      Insn.Sw (1, 0, 3);
      Insn.Lw (2, 0, 3);
      (* Address wraps modulo the 8-word memory: 11 mod 8 = 3. *)
      Insn.Lw (3, 0, 11);
    ];
  Alcotest.(check int) "load back" 123 (Bv.to_int (Exec.reg st 2));
  Alcotest.(check int) "wrapped load" 123 (Bv.to_int (Exec.reg st 3))

let test_exec_shifts_narrow () =
  (* At XLEN=8 only the low 3 bits of the shift amount count. *)
  let st = Exec.create ~xlen:8 ~mem_words:2 in
  Exec.run st
    [
      Insn.I (Insn.ADDI, 1, 0, 1);
      Insn.I (Insn.ADDI, 2, 0, 9);
      (* 9 & 7 = 1 *)
      Insn.R (Insn.SLL, 3, 1, 2);
    ];
  Alcotest.(check int) "sll masked" 2 (Bv.to_int (Exec.reg st 3))

let test_exec_mulh () =
  let st = Exec.create ~xlen:8 ~mem_words:2 in
  Exec.run st
    [
      Insn.I (Insn.ADDI, 1, 0, -1);
      (* -1 * -1 = 1: high byte 0 *)
      Insn.R (Insn.MULH, 2, 1, 1);
      Insn.I (Insn.ADDI, 3, 0, 100);
      (* 100*100 = 10000 = 0x2710; high byte signed = 0x27 *)
      Insn.R (Insn.MULH, 4, 3, 3);
      Insn.R (Insn.MULHU, 5, 3, 3);
    ];
  Alcotest.(check int) "mulh -1 -1" 0 (Bv.to_int (Exec.reg st 2));
  Alcotest.(check int) "mulh 100 100" 0x27 (Bv.to_int (Exec.reg st 4));
  Alcotest.(check int) "mulhu 100 100" 0x27 (Bv.to_int (Exec.reg st 5))

let test_exec_div () =
  (* RISC-V M division conventions. *)
  let st = Exec.create ~xlen:8 ~mem_words:2 in
  Exec.run st
    [
      Insn.I (Insn.ADDI, 1, 0, -7);
      Insn.I (Insn.ADDI, 2, 0, 2);
      Insn.R (Insn.DIV, 3, 1, 2);
      Insn.R (Insn.REM, 4, 1, 2);
      Insn.R (Insn.DIVU, 5, 1, 2);
      (* division by zero *)
      Insn.R (Insn.DIV, 6, 1, 0);
      Insn.R (Insn.REM, 7, 1, 0);
      Insn.R (Insn.DIVU, 8, 1, 0);
      Insn.R (Insn.REMU, 9, 1, 0);
      (* signed overflow: MIN / -1 *)
      Insn.I (Insn.ADDI, 10, 0, -128);
      Insn.I (Insn.ADDI, 11, 0, -1);
      Insn.R (Insn.DIV, 12, 10, 11);
      Insn.R (Insn.REM, 13, 10, 11);
    ];
  Alcotest.(check int) "-7/2" (-3) (Bv.to_signed_int (Exec.reg st 3));
  Alcotest.(check int) "-7%2" (-1) (Bv.to_signed_int (Exec.reg st 4));
  (* -7 unsigned at 8 bits is 249: 249/2 = 124 *)
  Alcotest.(check int) "divu" 124 (Bv.to_int (Exec.reg st 5));
  Alcotest.(check int) "div/0 = -1" (-1) (Bv.to_signed_int (Exec.reg st 6));
  Alcotest.(check int) "rem/0 = a" (-7) (Bv.to_signed_int (Exec.reg st 7));
  Alcotest.(check int) "divu/0 = ones" 255 (Bv.to_int (Exec.reg st 8));
  Alcotest.(check int) "remu/0 = a" 249 (Bv.to_int (Exec.reg st 9));
  Alcotest.(check int) "MIN/-1 = MIN" (-128) (Bv.to_signed_int (Exec.reg st 12));
  Alcotest.(check int) "MIN%-1 = 0" 0 (Bv.to_int (Exec.reg st 13))

let test_asm_roundtrip () =
  let cases =
    [
      "ADD x1, x2, x3";
      "SLTU x4, x5, x6";
      "ADDI x1, x2, -12";
      "SRAI x1, x2, 4";
      "LUI x1, 0x12";
      "LW x1, 4(x2)";
      "SW x3, 0(x0)";
    ]
  in
  List.iter
    (fun src ->
      match Asm.parse_insn src with
      | Ok insn -> (
          match Asm.parse_insn (Insn.to_string insn) with
          | Ok insn2 ->
              Alcotest.(check bool) src true (Insn.equal insn insn2)
          | Error e -> Alcotest.fail (src ^ ": " ^ e))
      | Error e -> Alcotest.fail (src ^ ": " ^ e))
    cases

let test_asm_errors () =
  let bad = [ "BOGUS x1, x2, x3"; "ADD x1, x2"; "ADDI x1, x2, 99999"; "ADD x1, x2, x99" ] in
  List.iter
    (fun src ->
      match Asm.parse_insn src with
      | Ok _ -> Alcotest.fail ("accepted: " ^ src)
      | Error _ -> ())
    bad

let test_asm_program () =
  let src = "# listing 2\nXORI x26, x15, -1\nADD x27, x26, x16\n\nXORI x14, x27, -1\n" in
  match Asm.parse_program src with
  | Ok insns -> Alcotest.(check int) "three insns" 3 (List.length insns)
  | Error e -> Alcotest.fail e

(* ---------------------------------------------------------------- *)
(* Properties                                                        *)
(* ---------------------------------------------------------------- *)

let arb_insn =
  QCheck.make ~print:Insn.to_string
    (QCheck.Gen.map
       (fun seed -> Insn.random (Random.State.make [| seed |]) ~max_reg:32)
       QCheck.Gen.nat)

let encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500 arb_insn
    (fun insn -> Encode.decode (Encode.encode insn) = Some insn)

(* Concrete interpreter vs symbolic semantics for register results. *)
let symbolic_matches_concrete ~xlen =
  QCheck.Test.make
    ~name:(Printf.sprintf "symbolic = concrete (xlen %d)" xlen)
    ~count:300
    (QCheck.pair arb_insn (QCheck.pair QCheck.int64 QCheck.int64))
    (fun (insn, (a64, b64)) ->
      let a = Bv.of_int64 ~width:xlen a64 and b = Bv.of_int64 ~width:xlen b64 in
      match Semantics.result ~xlen insn ~rs1:(Term.const a) ~rs2:(Term.const b) with
      | None -> true
      | Some term -> (
          (* Constant folding alone should reduce this to a constant. *)
          let v = Term.eval (fun _ -> assert false) term in
          match insn with
          | Insn.R (op, _, _, _) -> Bv.equal v (Exec.alu_r ~xlen op a b)
          | Insn.I (op, _, _, imm) -> Bv.equal v (Exec.alu_i ~xlen op a imm)
          | Insn.Lui (_, imm) ->
              Bv.equal v (Bv.of_int ~width:xlen (imm lsl 12))
          | Insn.Lw _ | Insn.Sw _ -> true))

(* exec respects the golden rule: result only depends on sources. *)
let exec_rd_only =
  QCheck.Test.make ~name:"exec writes only rd" ~count:300 arb_insn
    (fun insn ->
      let st = Exec.create ~xlen:16 ~mem_words:4 in
      (* Seed registers deterministically. *)
      for i = 1 to 31 do
        Exec.set_reg st i (Bv.of_int ~width:16 (i * 17))
      done;
      let before = Exec.copy st in
      Exec.exec st insn;
      let changed = ref [] in
      for i = 0 to 31 do
        if not (Bv.equal (Exec.reg st i) (Exec.reg before i)) then
          changed := i :: !changed
      done;
      match (Insn.rd insn, !changed) with
      | _, [] -> true (* wrote the same value, or no register write *)
      | Some rd, [ r ] -> r = rd
      | None, _ :: _ -> false
      | Some _, _ :: _ :: _ -> false)

let suite =
  [
    Alcotest.test_case "known encodings" `Quick test_known_encodings;
    Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
    Alcotest.test_case "fields" `Quick test_fields;
    Alcotest.test_case "insn metadata" `Quick test_insn_metadata;
    Alcotest.test_case "exec basic" `Quick test_exec_basic;
    Alcotest.test_case "exec x0" `Quick test_exec_x0;
    Alcotest.test_case "exec memory" `Quick test_exec_memory;
    Alcotest.test_case "exec narrow shifts" `Quick test_exec_shifts_narrow;
    Alcotest.test_case "exec mulh" `Quick test_exec_mulh;
    Alcotest.test_case "exec div family" `Quick test_exec_div;
    Alcotest.test_case "asm roundtrip" `Quick test_asm_roundtrip;
    Alcotest.test_case "asm errors" `Quick test_asm_errors;
    Alcotest.test_case "asm program" `Quick test_asm_program;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [
        encode_roundtrip;
        symbolic_matches_concrete ~xlen:32;
        symbolic_matches_concrete ~xlen:8;
        exec_rd_only;
      ]
