(* End-to-end observability smoke check, run by the @obs-smoke alias
   (wired into `dune runtest`).

   With metrics and tracing enabled it drives one tiny flow through every
   instrumented layer — an HPF-CEGIS synthesis (SAT/SMT/synth spans) plus
   one tiny-core BMC verification (BMC spans) — exports the Chrome trace,
   re-parses it with the checked JSON parser and asserts the span names
   and solver counters the instrumentation promises.  Exits nonzero on
   any failure, so a silent regression in the plumbing fails `runtest`. *)

module Json = Sqed_obs.Json
module Metrics = Sqed_obs.Metrics
module Trace = Sqed_obs.Trace
module Synth = Sqed_synth
module V = Sepe_sqed.Verifier

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n" name
  else begin
    Printf.printf "FAIL %s\n" name;
    incr failures
  end

let () =
  Metrics.enabled := true;
  Trace.enabled := true;

  (* Synthesis leg: exercises sat.solve / smt.bitblast / synth spans. *)
  let options =
    {
      Synth.Engine.default_options with
      Synth.Engine.k = 1;
      n_max = 3;
      time_budget = Some 60.0;
      config = { Synth.Cegis.default_config with Synth.Cegis.xlen = 4 };
    }
  in
  let r =
    Synth.Hpf.synthesize ~options ~spec:(Synth.Library_.spec "SUB")
      ~library:Synth.Library_.default ()
  in
  check "synthesis found a program" (r.Synth.Engine.programs <> []);

  (* BMC leg: exercises bmc.depth / bmc.unroll spans. *)
  let v =
    V.run ~bug:Sqed_proc.Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10
      ~time_budget:120.0 Sqed_proc.Config.tiny
  in
  check "BMC witness detected the bug" (V.detected v);

  (* The trace must round-trip through the checked parser. *)
  let path = Filename.temp_file "sepe_obs_smoke" ".json" in
  Trace.export path;
  (match Trace.validate_export path with
  | Ok n ->
      check "trace validates" true;
      check "trace is non-trivial" (n > 10);
      check "no events dropped" (Trace.dropped () = 0)
  | Error e ->
      Printf.printf "FAIL trace validates: %s\n" e;
      incr failures);
  Sys.remove path;

  (* Every instrumented layer must have produced its spans... *)
  let names =
    List.fold_left
      (fun acc ev -> ev.Trace.ev_name :: acc)
      [] (Trace.events ())
  in
  List.iter
    (fun n -> check ("span " ^ n) (List.mem n names))
    [
      "sat.solve"; "sat.simplify"; "smt.check"; "smt.bitblast";
      "synth.multiset"; "cegis.iteration"; "bmc.depth"; "bmc.unroll";
    ];

  (* ...and the registry must hold real solver work. *)
  List.iter
    (fun c -> check ("counter " ^ c) (Metrics.find_counter c > 0))
    [
      "sat.clauses"; "sat.propagations"; "sat.conflicts"; "smt.gates";
      "smt.check_calls"; "synth.cegis_iterations"; "bmc.bounds_checked";
      (* Preprocessing is on by default, and any bit-blasted problem has
         Tseitin-internal gates to eliminate — the simplifier must have
         both run and done real work. *)
      "sat.simplify.passes"; "sat.simplify.eliminated_vars";
      (* The AIG gate layer is on by default: blasting any circuit must
         allocate nodes, hit the structural hash on shared subterms, and
         skip clause halves via polarity-aware conversion. *)
      "smt.aig.nodes"; "smt.aig.struct_hits";
      "smt.aig.pg_skipped_clauses";
    ];

  (* The metrics snapshot must itself be valid JSON. *)
  (match Json.parse (Json.to_string (Metrics.to_json ())) with
  | Ok _ -> check "metrics snapshot re-parses" true
  | Error e ->
      Printf.printf "FAIL metrics snapshot re-parses: %s\n" e;
      incr failures);

  if !failures > 0 then begin
    Printf.printf "obs-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "obs-smoke: all checks passed"
