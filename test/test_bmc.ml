(* End-to-end bounded-model-checking tests at the tiny configuration: the
   headline behaviours of the paper, checked as part of the test suite.
   These are the slowest tests in the repository (each runs a real BMC
   campaign through the full stack). *)

module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module V = Sepe_sqed.Verifier
module Engine = Sqed_bmc.Engine
module Trace = Sqed_bmc.Trace

let cfg = Config.tiny

let test_no_bug_clean () =
  (* Soundness: the unmutated core satisfies the property (both schemes). *)
  List.iter
    (fun method_ ->
      let r = V.run ~method_ ~bound:7 ~time_budget:300.0 cfg in
      Alcotest.(check bool)
        (V.method_name method_ ^ " clean")
        false (V.detected r))
    [ V.Sepe_sqed; V.Sqed ]

let test_sepe_detects_single () =
  let r =
    V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10 ~time_budget:300.0
      cfg
  in
  Alcotest.(check bool) "detected" true (V.detected r);
  match V.trace r with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      Alcotest.(check bool) "has original instructions" true
        (t.Trace.originals >= 1);
      Alcotest.(check bool) "inconsistent at the end" true
        (List.exists
           (fun s -> s.Trace.qed_ready && not s.Trace.consistent)
           t.Trace.steps);
      Alcotest.(check bool) "trace prints" true
        (String.length (Trace.to_string t) > 0)

let test_sqed_misses_single () =
  (* The same single-instruction bug, same depth: SQED proves consistency. *)
  let r =
    V.run ~bug:Bug.Bug_add ~method_:V.Sqed ~bound:8 ~time_budget:600.0 cfg
  in
  Alcotest.(check bool) "not detected" false (V.detected r);
  Alcotest.(check bool) "completed all bounds" true
    (match r.V.outcome with
    | Engine.No_counterexample -> true
    | Engine.Gave_up _ | Engine.Counterexample _ -> false)

let test_sepe_detects_multi () =
  let r =
    V.run ~bug:Bug.Bug_fwd_mem_rs1 ~method_:V.Sepe_sqed ~bound:10
      ~time_budget:300.0 cfg
  in
  Alcotest.(check bool) "forwarding bug detected" true (V.detected r)

let test_start_bound_same_result () =
  (* Skipping provably clean depths must not change the counterexample. *)
  let full =
    V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10 ~time_budget:300.0
      cfg
  in
  let skipping =
    V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10 ~start_bound:6
      ~time_budget:300.0 cfg
  in
  match (V.trace full, V.trace skipping) with
  | Some a, Some b ->
      Alcotest.(check int) "same depth" a.Trace.length b.Trace.length
  | _ -> Alcotest.fail "detection expected in both runs"

let test_replay_witness () =
  (* Every counterexample must replay concretely (witness validation). *)
  List.iter
    (fun (bug, method_) ->
      let r = V.run ~bug ~method_ ~bound:12 ~time_budget:300.0 cfg in
      match V.trace r with
      | None -> Alcotest.fail "expected a counterexample"
      | Some t ->
          let model =
            match method_ with
            | V.Sqed -> Sqed_qed.Qed_top.eddi ~bug cfg
            | V.Sepe_sqed -> Sqed_qed.Qed_top.edsep ~bug cfg
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s replays" (Bug.name bug)
               (V.method_name method_))
            true
            (Engine.replay model t))
    [
      (Bug.Bug_add, V.Sepe_sqed);
      (Bug.Bug_fwd_mem_rs1, V.Sepe_sqed);
      (Bug.Bug_load_use_stall, V.Sepe_sqed);
    ]

let test_focus () =
  (* Focusing the original stream on the mutated class is sound for
     witness queries: detection persists and the trace's originals are all
     of that class. *)
  let focus = Sqed_qed.Equiv_table.Kr Sqed_isa.Insn.ADD in
  let r =
    V.run ~bug:Bug.Bug_add ~focus ~method_:V.Sepe_sqed ~bound:10
      ~time_budget:300.0 cfg
  in
  match V.trace r with
  | None -> Alcotest.fail "focused query should still detect"
  | Some t ->
      List.iter
        (fun s ->
          match s.Trace.orig_instr with
          | Some (Sqed_isa.Insn.R (Sqed_isa.Insn.ADD, _, _, _)) | None -> ()
          | Some i ->
              Alcotest.fail
                ("non-ADD original in focused trace: "
                ^ Sqed_isa.Insn.to_string i))
        t.Trace.steps;
      let model = Sqed_qed.Qed_top.edsep ~bug:Bug.Bug_add ~focus cfg in
      Alcotest.(check bool) "focused witness replays" true
        (Engine.replay model t)

let test_shrink () =
  let bug = Bug.Bug_fwd_mem_rs1 in
  let r = V.run ~bug ~method_:V.Sepe_sqed ~bound:12 ~time_budget:300.0 cfg in
  match V.trace r with
  | None -> Alcotest.fail "expected detection"
  | Some t ->
      let model = Sqed_qed.Qed_top.edsep ~bug cfg in
      let s = Engine.shrink model t in
      Alcotest.(check bool) "no longer than original" true
        (s.Trace.length <= t.Trace.length);
      Alcotest.(check bool) "not more originals" true
        (s.Trace.originals <= t.Trace.originals);
      Alcotest.(check bool) "shrunk trace replays" true
        (Engine.replay model s)

let test_three_stage_core () =
  (* Microarchitecture independence: the unchanged QED layer verifies the
     3-stage core — SEPE-SQED detects the uniform ADD bug, SQED stays
     blind, and the unmutated core is clean. *)
  let core = Sqed_qed.Qed_top.Three_stage in
  let clean = V.run ~core ~method_:V.Sepe_sqed ~bound:8 ~time_budget:300.0 cfg in
  Alcotest.(check bool) "3-stage clean" false (V.detected clean);
  let sepe =
    V.run ~core ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10
      ~time_budget:300.0 cfg
  in
  Alcotest.(check bool) "3-stage sepe detects" true (V.detected sepe);
  let sqed =
    V.run ~core ~bug:Bug.Bug_add ~method_:V.Sqed ~bound:8 ~time_budget:600.0
      cfg
  in
  Alcotest.(check bool) "3-stage sqed blind" false (V.detected sqed)

let test_bad_persistence () =
  (* A violated state stays violated under idle inputs, so a cex at depth d
     extends to any deeper bound; Table 1 relies on this to use single
     deep queries in both directions. *)
  let shallow =
    V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:10 ~time_budget:300.0
      cfg
  in
  let d =
    match V.trace shallow with
    | Some t -> t.Trace.length
    | None -> Alcotest.fail "expected detection"
  in
  let deep =
    V.run ~bug:Bug.Bug_add ~method_:V.Sepe_sqed ~bound:(d + 3)
      ~start_bound:(d + 3) ~time_budget:300.0 cfg
  in
  (match V.trace deep with
  | Some t -> Alcotest.(check int) "single deep query hits" (d + 3) t.Trace.length
  | None -> Alcotest.fail "cex did not persist to the deeper bound");
  (* And the clean direction: SQED single deep query stays clean. *)
  let sqed =
    V.run ~bug:Bug.Bug_add ~method_:V.Sqed ~bound:d ~start_bound:d
      ~time_budget:600.0 cfg
  in
  Alcotest.(check bool) "sqed single-query clean" false (V.detected sqed)

let test_kinduction_no_bug () =
  (* The engine's behaviour on the real model: the no-bug EDSEP property is
     not expected to be inductive at tiny k (its invariant involves
     reachability of the commit counters), but it must never return a
     base-case counterexample. *)
  let model = Sqed_qed.Qed_top.edsep cfg in
  let outcome, _ = Engine.prove ~max_k:2 ~time_budget:240.0 model in
  match outcome with
  | Engine.Base_cex _ -> Alcotest.fail "no-bug model produced a base cex"
  | Engine.Proved _ | Engine.Not_inductive _ | Engine.Proof_gave_up _ -> ()

let test_kinduction_base_cex () =
  (* With a detectable bug the base case must surface the counterexample. *)
  let model = Sqed_qed.Qed_top.edsep ~bug:Bug.Bug_add cfg in
  let outcome, _ = Engine.prove ~max_k:10 ~time_budget:240.0 model in
  match outcome with
  | Engine.Base_cex t ->
      Alcotest.(check bool) "cex depth sane" true (t.Trace.length >= 5)
  | Engine.Proved k ->
      Alcotest.fail (Printf.sprintf "claimed proved at k=%d with a bug" k)
  | Engine.Not_inductive _ | Engine.Proof_gave_up _ ->
      Alcotest.fail "expected the base case to find the bug"

let test_gave_up_on_tiny_budget () =
  let r =
    V.run ~bug:Bug.Bug_add ~method_:V.Sqed ~bound:12 ~max_conflicts:100 cfg
  in
  Alcotest.(check bool) "gave up" true
    (match r.V.outcome with Engine.Gave_up _ -> true | _ -> false)

let test_synthesized_table_verifies () =
  (* Fig. 1 end to end: table from HPF-CEGIS, then detection with it. *)
  let options =
    {
      Sqed_synth.Engine.default_options with
      Sqed_synth.Engine.k = 1;
      min_components = 2;
      time_budget = Some 60.0;
      config =
        { Sqed_synth.Cegis.default_config with Sqed_synth.Cegis.xlen = cfg.Config.xlen };
    }
  in
  let table, cases =
    Sepe_sqed.Flow.synthesize_table ~options ~cases:[ "ADD" ] cfg
  in
  Alcotest.(check int) "one case" 1 (List.length cases);
  let r =
    V.run ~bug:Bug.Bug_add ~table ~method_:V.Sepe_sqed ~bound:12
      ~time_budget:300.0 cfg
  in
  Alcotest.(check bool) "bug detected with synthesized table" true
    (V.detected r)

let suite =
  [
    Alcotest.test_case "no bug: both schemes clean" `Slow test_no_bug_clean;
    Alcotest.test_case "sepe detects single bug" `Slow test_sepe_detects_single;
    Alcotest.test_case "sqed misses single bug" `Slow test_sqed_misses_single;
    Alcotest.test_case "sepe detects multi bug" `Slow test_sepe_detects_multi;
    Alcotest.test_case "start_bound equivalence" `Slow
      test_start_bound_same_result;
    Alcotest.test_case "witness replay" `Slow test_replay_witness;
    Alcotest.test_case "three-stage core" `Slow test_three_stage_core;
    Alcotest.test_case "bad persistence" `Slow test_bad_persistence;
    Alcotest.test_case "cex shrinking" `Slow test_shrink;
    Alcotest.test_case "class focus" `Slow test_focus;
    Alcotest.test_case "k-induction no-bug" `Slow test_kinduction_no_bug;
    Alcotest.test_case "k-induction base cex" `Slow test_kinduction_base_cex;
    Alcotest.test_case "budget exhaustion" `Quick test_gave_up_on_tiny_budget;
    Alcotest.test_case "synthesized table verifies" `Slow
      test_synthesized_table_verifies;
  ]
