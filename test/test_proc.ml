(* Pipeline substrate tests: differential simulation against the golden
   interpreter on directed hazard scenarios and random programs, per-config
   coverage, and checks that every catalogued bug actually perturbs some
   program (and that the unmutated core never diverges). *)

module Bv = Sqed_bv.Bv
module Insn = Sqed_isa.Insn
module Exec = Sqed_isa.Exec
module Config = Sqed_proc.Config
module Bug = Sqed_proc.Bug
module Testbench = Sqed_proc.Testbench

let cfg = Config.small
let cfg_m = Config.small_m
let cfg_div = { Config.small_m with Config.ext_div = true }

let check_match ?bug ?(config = cfg) name insns =
  let piped = Testbench.run ?bug config insns in
  let gold = Testbench.golden config insns in
  Alcotest.(check bool) name true (Exec.equal piped gold)

let addi rd rs1 imm = Insn.I (Insn.ADDI, rd, rs1, imm)

let test_straightline () =
  check_match "independent alu ops"
    [
      addi 1 0 5;
      addi 2 0 7;
      Insn.R (Insn.ADD, 3, 1, 2);
      Insn.R (Insn.XOR, 4, 1, 2);
      Insn.R (Insn.AND, 5, 1, 2);
      Insn.R (Insn.OR, 6, 1, 2);
      Insn.R (Insn.SUB, 7, 1, 2);
    ]

let test_forward_mem () =
  (* Back-to-back dependency: MEM->EX forwarding. *)
  check_match "ex->ex dependency" [ addi 1 0 3; Insn.R (Insn.ADD, 2, 1, 1) ]

let test_forward_wb () =
  (* Two-apart dependency: WB->EX forwarding. *)
  check_match "wb->ex dependency"
    [ addi 1 0 3; addi 5 0 1; Insn.R (Insn.ADD, 2, 1, 1) ]

let test_wb_bypass () =
  (* Three-apart dependency: regfile read-during-write bypass. *)
  check_match "read during write"
    [ addi 1 0 3; addi 5 0 1; addi 6 0 1; Insn.R (Insn.ADD, 2, 1, 1) ]

let test_load_use () =
  check_match "load-use stall"
    [
      addi 1 0 77;
      Insn.Sw (1, 0, 2);
      Insn.Lw (2, 0, 2);
      Insn.R (Insn.ADD, 3, 2, 2);
    ]

let test_store_load_sequences () =
  check_match "store then load same addr"
    [ addi 1 0 9; Insn.Sw (1, 0, 1); Insn.Lw (2, 0, 1) ];
  check_match "store forwarded data"
    [ addi 1 0 9; addi 2 1 1; Insn.Sw (2, 0, 1); Insn.Lw (3, 0, 1) ];
  check_match "back to back stores"
    [ addi 1 0 9; Insn.Sw (1, 0, 1); Insn.Sw (1, 0, 0); Insn.Lw (3, 0, 1) ]

let test_x0_discard () =
  check_match "write to x0 discarded" [ addi 0 0 7; Insn.R (Insn.ADD, 1, 0, 0) ]

let test_shifts () =
  check_match "shift ops"
    [
      addi 1 0 (-5);
      addi 2 0 3;
      Insn.R (Insn.SLL, 3, 1, 2);
      Insn.R (Insn.SRL, 4, 1, 2);
      Insn.R (Insn.SRA, 5, 1, 2);
      Insn.I (Insn.SRAI, 6, 1, 2);
      Insn.I (Insn.SLLI, 7, 1, 7);
    ]

let test_multiplier () =
  check_match ~config:cfg_m "multiplier ops"
    [
      addi 1 0 (-3);
      addi 2 0 100;
      Insn.R (Insn.MUL, 3, 1, 2);
      Insn.R (Insn.MULH, 4, 1, 2);
      Insn.R (Insn.MULHU, 5, 1, 2);
      Insn.R (Insn.MULH, 6, 2, 2);
    ]

let test_divider () =
  check_match ~config:cfg_div "divider ops"
    [
      addi 1 0 (-7);
      addi 2 0 2;
      Insn.R (Insn.DIV, 3, 1, 2);
      Insn.R (Insn.DIVU, 4, 1, 2);
      Insn.R (Insn.REM, 5, 1, 2);
      Insn.R (Insn.REMU, 6, 1, 2);
      Insn.R (Insn.DIV, 7, 1, 0);
      Insn.R (Insn.REM, 8, 1, 0);
      (* forwarding into the divider *)
      Insn.R (Insn.DIV, 9, 3, 2);
    ]

let test_rv32_config () =
  check_match ~config:Config.rv32 "rv32 config"
    [
      Insn.Lui (1, 0x12345);
      addi 2 1 0x111;
      Insn.R (Insn.MULHU, 3, 2, 2);
      Insn.R (Insn.SLT, 4, 2, 3);
    ]

let test_illegal_rejected () =
  Alcotest.(check bool) "illegal instruction rejected" true
    (try
       (* MULH without the M extension in [small]. *)
       ignore (Testbench.run cfg [ Insn.R (Insn.MULH, 1, 2, 3) ]);
       false
     with Failure _ -> true)

(* Every single-instruction bug must corrupt a directed program that
   exercises its instruction... *)
let directed_for_bug = function
  | Bug.Bug_add -> Some [ addi 1 0 3; Insn.R (Insn.ADD, 2, 1, 1) ]
  | Bug.Bug_sub -> Some [ addi 1 0 3; Insn.R (Insn.SUB, 2, 1, 1) ]
  | Bug.Bug_xor -> Some [ addi 1 0 3; addi 2 0 5; Insn.R (Insn.XOR, 3, 1, 2) ]
  | Bug.Bug_or -> Some [ addi 1 0 3; addi 2 0 5; Insn.R (Insn.OR, 3, 1, 2) ]
  | Bug.Bug_and -> Some [ addi 1 0 3; addi 2 0 6; Insn.R (Insn.AND, 3, 1, 2) ]
  | Bug.Bug_slt -> Some [ addi 1 0 3; Insn.R (Insn.SLT, 2, 1, 0) ]
  | Bug.Bug_sltu -> Some [ addi 1 0 3; Insn.R (Insn.SLTU, 2, 0, 1) ]
  | Bug.Bug_sra -> Some [ addi 1 0 (-8); addi 2 0 2; Insn.R (Insn.SRA, 3, 1, 2) ]
  | Bug.Bug_mulh -> Some [ addi 1 0 (-3); Insn.R (Insn.MULH, 2, 1, 1) ]
  | Bug.Bug_xori -> Some [ addi 1 0 3; Insn.I (Insn.XORI, 2, 1, 6) ]
  | Bug.Bug_slli -> Some [ addi 1 0 3; Insn.I (Insn.SLLI, 2, 1, 2) ]
  | Bug.Bug_srai -> Some [ addi 1 0 (-8); Insn.I (Insn.SRAI, 2, 1, 1) ]
  | Bug.Bug_sw ->
      (* Stored register produced by the immediately preceding insn. *)
      Some [ addi 1 0 9; addi 2 1 1; Insn.Sw (2, 0, 1); Insn.Lw (3, 0, 1) ]
  | Bug.Bug_fwd_mem_rs1 -> Some [ addi 1 0 3; Insn.R (Insn.ADD, 2, 1, 0) ]
  | Bug.Bug_fwd_mem_rs2 -> Some [ addi 1 0 3; Insn.R (Insn.ADD, 2, 0, 1) ]
  | Bug.Bug_fwd_wb -> Some [ addi 1 0 3; addi 5 0 1; Insn.R (Insn.ADD, 2, 1, 0) ]
  | Bug.Bug_fwd_priority ->
      (* Same rd written twice in flight; MEM has the newer value. *)
      Some [ addi 1 0 3; addi 1 1 4; Insn.R (Insn.ADD, 2, 1, 0) ]
  | Bug.Bug_load_use_stall ->
      Some
        [ addi 1 0 9; Insn.Sw (1, 0, 1); Insn.Lw (2, 0, 1); Insn.R (Insn.ADD, 3, 2, 0) ]
  | Bug.Bug_wb_bypass ->
      Some [ addi 1 0 3; addi 5 0 1; addi 6 0 1; Insn.R (Insn.ADD, 2, 1, 0) ]
  | Bug.Bug_fwd_value -> Some [ addi 1 0 3; Insn.R (Insn.ADD, 2, 1, 0) ]
  | Bug.Bug_store_interference ->
      Some [ addi 1 0 9; Insn.Sw (1, 0, 1); Insn.Sw (1, 0, 0); Insn.Lw (2, 0, 1) ]
  | Bug.Bug_wb_clobber_on_store ->
      (* The dropped write is observed by a reader far enough behind to
         miss every forwarding path. *)
      Some
        [ addi 1 0 3; Insn.Sw (1, 0, 0); addi 9 0 1; addi 10 0 1;
          Insn.R (Insn.ADD, 2, 1, 0) ]
  | Bug.Bug_stall_corrupt ->
      Some
        [ addi 1 0 9; Insn.Sw (1, 0, 1); Insn.Lw (2, 0, 1); Insn.R (Insn.ADD, 3, 2, 0) ]

let test_bugs_visible () =
  List.iter
    (fun bug ->
      match directed_for_bug bug with
      | None -> ()
      | Some insns ->
          let config = if Bug.needs_m bug then cfg_m else cfg in
          let piped = Testbench.run ~bug config insns in
          let gold = Testbench.golden config insns in
          Alcotest.(check bool)
            (Printf.sprintf "bug %s diverges" (Bug.name bug))
            false (Exec.equal piped gold))
    Bug.all

let test_bugs_dormant () =
  (* A program that exercises none of the buggy conditions must match. *)
  let quiet = [ addi 1 0 1; addi 9 0 2; addi 10 0 3; addi 11 9 4 ] in
  List.iter
    (fun bug ->
      let config = if Bug.needs_m bug then cfg_m else cfg in
      let piped = Testbench.run ~bug config quiet in
      let gold = Testbench.golden config quiet in
      Alcotest.(check bool)
        (Printf.sprintf "bug %s dormant" (Bug.name bug))
        true (Exec.equal piped gold))
    Bug.all_single

let test_bug_metadata () =
  Alcotest.(check int) "13 single bugs" 13 (List.length Bug.all_single);
  Alcotest.(check int) "10 multi bugs" 10 (List.length Bug.all_multi);
  List.iter
    (fun b ->
      Alcotest.(check bool) "roundtrip name" true (Bug.of_name (Bug.name b) = Some b);
      Alcotest.(check bool) "describe" true (String.length (Bug.describe b) > 0);
      Alcotest.(check bool) "table1 iff single"
        (Bug.is_single b)
        (Bug.table1_row b <> None))
    Bug.all

let test_three_stage_directed () =
  (* The same hazard scenarios on the 3-stage core. *)
  let check name insns =
    let piped = Testbench.run ~variant:Testbench.Three_stage cfg insns in
    let gold = Testbench.golden cfg insns in
    Alcotest.(check bool) name true (Exec.equal piped gold)
  in
  check "back-to-back dependency" [ addi 1 0 3; Insn.R (Insn.ADD, 2, 1, 1) ];
  check "two apart" [ addi 1 0 3; addi 5 0 1; Insn.R (Insn.ADD, 2, 1, 1) ];
  check "load use"
    [ addi 1 0 7; Insn.Sw (1, 0, 1); Insn.Lw (2, 0, 1); Insn.R (Insn.ADD, 3, 2, 2) ];
  check "store then load" [ addi 1 0 9; Insn.Sw (1, 0, 1); Insn.Lw (2, 0, 1) ]

(* Random legal program generator (fields restricted to the config). *)
let random_program cfg rng len =
  let max_reg = cfg.Config.nregs in
  let reg () = Random.State.int rng max_reg in
  let mem_imm () = Random.State.int rng cfg.Config.mem_words in
  List.init len (fun _ ->
      match Random.State.int rng 10 with
      | 0 | 1 | 2 | 3 ->
          let rops =
            List.filter
              (fun o ->
                (cfg.Config.ext_m || not (Insn.rop_is_mul o))
                && (cfg.Config.ext_div || not (Insn.rop_is_div o)))
              Insn.all_rops
          in
          let op = List.nth rops (Random.State.int rng (List.length rops)) in
          Insn.R (op, reg (), reg (), reg ())
      | 4 | 5 | 6 ->
          let op =
            List.nth Insn.all_iops
              (Random.State.int rng (List.length Insn.all_iops))
          in
          let imm =
            match op with
            | Insn.SLLI | Insn.SRLI | Insn.SRAI -> Random.State.int rng 32
            | _ -> Random.State.int rng 4096 - 2048
          in
          Insn.I (op, reg (), reg (), imm)
      | 7 -> Insn.Lui (reg (), Random.State.int rng 0x100000)
      | 8 -> Insn.Lw (reg (), 0, mem_imm ())
      | _ -> Insn.Sw (reg (), 0, mem_imm ()))

let pipeline_matches_iss ?variant ?(label = "") config =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "pipeline%s = ISS on random programs (%s)" label
         (Config.to_string config))
    ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let program = random_program config rng (4 + Random.State.int rng 8) in
      let piped = Testbench.run ?variant config program in
      let gold = Testbench.golden config program in
      Exec.equal piped gold)

let suite =
  [
    Alcotest.test_case "straightline" `Quick test_straightline;
    Alcotest.test_case "forward mem" `Quick test_forward_mem;
    Alcotest.test_case "forward wb" `Quick test_forward_wb;
    Alcotest.test_case "wb bypass" `Quick test_wb_bypass;
    Alcotest.test_case "load use" `Quick test_load_use;
    Alcotest.test_case "store/load sequences" `Quick test_store_load_sequences;
    Alcotest.test_case "x0 discard" `Quick test_x0_discard;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "multiplier" `Quick test_multiplier;
    Alcotest.test_case "divider" `Quick test_divider;
    Alcotest.test_case "rv32 config" `Quick test_rv32_config;
    Alcotest.test_case "illegal rejected" `Quick test_illegal_rejected;
    Alcotest.test_case "bugs visible" `Quick test_bugs_visible;
    Alcotest.test_case "bugs dormant on quiet code" `Quick test_bugs_dormant;
    Alcotest.test_case "bug metadata" `Quick test_bug_metadata;
    Alcotest.test_case "three-stage directed" `Quick test_three_stage_directed;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [
        pipeline_matches_iss Config.small;
        pipeline_matches_iss Config.small_m;
        pipeline_matches_iss Config.tiny;
        pipeline_matches_iss { Config.small_m with Config.ext_div = true };
        pipeline_matches_iss ~variant:Testbench.Three_stage ~label:"3"
          Config.small;
        pipeline_matches_iss ~variant:Testbench.Three_stage ~label:"3"
          { Config.small_m with Config.ext_div = true };
      ]
