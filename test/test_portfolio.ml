(* Differential fuzz and unit tests for Sqed_sat.Portfolio: a portfolio
   solve must return the same verdict as a single-engine solve on the
   same instance (models checked against the original clauses), across
   the simplify × AIG matrix and through the incremental/assumption API;
   deterministic mode must be bit-identical across repeat runs; a
   cancelled or budget-exhausted portfolio must leave the master solver
   fully reusable. *)

module Sat = Sqed_sat.Sat
module Portfolio = Sqed_sat.Portfolio
module Budget = Sqed_resil.Budget
module Smt = Sqed_smt

(* The CI container is single-core, where parallel mode would fall back
   to the round-robin scheduler; force real Domain.spawn races so the
   ring, the cancellation path and the controller loop stay covered. *)
let () = Portfolio.force_spawn := true

type cnf = int list list (* positive ints 1..n, negative for negated *)

let cnf_print cnf =
  String.concat " & "
    (List.map
       (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
       cnf)

let gen_cnf ~nvars ~max_len : cnf QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_lit =
    map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (nvars - 1)) bool
  in
  int_range 5 60 >>= fun ncl ->
  list_size (return ncl) (list_size (int_range 1 max_len) gen_lit)

let load ~simplify ~nvars (cnf : cnf) =
  let s = Sat.create () in
  Sat.set_simplify s simplify;
  let v = Array.init nvars (fun _ -> Sat.new_var s) in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf;
  (s, v)

let model_ok s v (cnf : cnf) =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let b = Sat.value s v.(abs l - 1) in
          if l > 0 then b else not b)
        clause)
    cnf

(* Pigeonhole: n+1 pigeons into n holes, UNSAT and hard enough to burn a
   controlled number of conflicts (for the budget tests). *)
let php n : cnf =
  let var p h = (p * n) + h + 1 in
  let at_least = List.init (n + 1) (fun p -> List.init n (fun h -> var p h)) in
  let at_most = ref [] in
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        at_most := [ -var p1 h; -var p2 h ] :: !at_most
      done
    done
  done;
  at_least @ !at_most

let php_nvars n = (n + 1) * n

(* -- differential fuzz: portfolio verdict = single-engine verdict ------- *)

let differential ~deterministic ~k ~simplify ~nvars (cnf : cnf) =
  let plain, _ = load ~simplify:false ~nvars cnf in
  let port, v = load ~simplify ~nvars cnf in
  let r_plain = Sat.solve plain in
  let r_port = Portfolio.solve ~deterministic ~k port in
  r_plain = r_port && (r_port <> Sat.Sat || model_ok port v cnf)

(* Assumptions through the portfolio: the verdict must match a plain
   solve under the same assumptions, and a SAT model must honour them. *)
let differential_assumptions ~k ~nvars (cnf, assumed) =
  let to_lit v l =
    if l > 0 then Sat.pos v.(abs l - 1) else Sat.neg_of_var v.(abs l - 1)
  in
  let plain, vp = load ~simplify:false ~nvars cnf in
  let port, vs = load ~simplify:true ~nvars cnf in
  let r_plain = Sat.solve ~assumptions:(List.map (to_lit vp) assumed) plain in
  let r_port =
    Portfolio.solve ~deterministic:true ~k
      ~assumptions:(List.map (to_lit vs) assumed)
      port
  in
  r_plain = r_port
  && (r_port <> Sat.Sat
     || (model_ok port vs cnf
        && List.for_all
             (fun l ->
               let b = Sat.value port vs.(abs l - 1) in
               if l > 0 then b else not b)
             assumed))

(* Incremental use: portfolio solve, add more clauses to the master,
   portfolio solve again — against a fresh plain solver on the union. *)
let differential_incremental ~k ~nvars (cnf1, cnf2) =
  let port, v = load ~simplify:true ~nvars cnf1 in
  let r1 = Portfolio.solve ~deterministic:true ~k port in
  List.iter
    (fun clause ->
      Sat.add_clause port
        (List.map
           (fun l ->
             let var = v.(abs l - 1) in
             if l > 0 then Sat.pos var else Sat.neg_of_var var)
           clause))
    cnf2;
  let r2 = Portfolio.solve ~deterministic:true ~k port in
  let plain1, _ = load ~simplify:false ~nvars cnf1 in
  let plain2, _ = load ~simplify:false ~nvars (cnf1 @ cnf2) in
  r1 = Sat.solve plain1
  && r2 = Sat.solve plain2
  && (r2 <> Sat.Sat || model_ok port v (cnf1 @ cnf2))

(* -- unit tests --------------------------------------------------------- *)

let result_t =
  Alcotest.testable
    (Fmt.of_to_string (function
      | Sat.Sat -> "SAT"
      | Sat.Unsat -> "UNSAT"
      | Sat.Unknown -> "UNKNOWN"))
    ( = )

(* Deterministic mode: repeat runs are bit-identical — same verdict and
   the exact same solver statistics on the master. *)
let test_deterministic_identical () =
  let run () =
    let s, _ = load ~simplify:true ~nvars:(php_nvars 5) (php 5) in
    let r = Portfolio.solve ~deterministic:true ~k:4 s in
    (r, Sat.stats s)
  in
  let r1, st1 = run () in
  let r2, st2 = run () in
  Alcotest.check result_t "same verdict" r1 r2;
  Alcotest.check result_t "unsat" Sat.Unsat r1;
  Alcotest.(check bool) "bit-identical stats" true (st1 = st2)

(* Parallel cancellation: the losers are cancelled mid-search; the
   master must stay fully reusable afterwards — model readable, more
   clauses addable, further (portfolio and plain) solves sound. *)
let test_cancellation_reusable () =
  let nvars = 30 in
  (* Satisfiable: a chain x1 -> x2 -> ... with a free tail, so every
     worker races towards a model and the winner cancels the rest. *)
  let cnf =
    List.init (nvars - 1) (fun i -> [ -(i + 1); i + 2 ]) @ [ [ 1 ] ]
  in
  let s, v = load ~simplify:true ~nvars cnf in
  let r = Portfolio.solve ~deterministic:false ~k:3 s in
  Alcotest.check result_t "sat" Sat.Sat r;
  Alcotest.(check bool) "model satisfies original" true (model_ok s v cnf);
  (* The chain forces every variable true; contradict the tail. *)
  Sat.add_clause s [ Sat.neg_of_var v.(nvars - 1) ];
  Alcotest.check result_t "unsat after contradiction" Sat.Unsat
    (Portfolio.solve ~deterministic:false ~k:3 s);
  Alcotest.check result_t "plain solve agrees" Sat.Unsat (Sat.solve s)

(* Budget exhaustion mid-portfolio: an installed conflict budget far too
   small for the instance must yield Unknown with the Conflicts reason,
   charge the caller's budget, and leave the master reusable once the
   budget is lifted. *)
let test_budget_exhaustion () =
  List.iter
    (fun deterministic ->
      let s, _ = load ~simplify:false ~nvars:(php_nvars 7) (php 7) in
      let b = Budget.create ~max_conflicts:40 () in
      Sat.set_budget s b;
      let r = Portfolio.solve ~deterministic ~k:3 s in
      Alcotest.check result_t "unknown under tiny budget" Sat.Unknown r;
      (match Sat.last_interrupt s with
      | Some (Budget.Conflicts | Budget.Deadline) -> ()
      | other ->
          Alcotest.failf "expected a budget reason, got %s"
            (match other with
            | None -> "none"
            | Some r -> Budget.string_of_reason r));
      Alcotest.(check bool)
        "caller budget charged" true
        (Budget.conflicts_remaining b < 40);
      (* Lift the budget: the master must still finish the instance. *)
      Sat.set_budget s Budget.unlimited;
      Alcotest.check result_t "reusable after exhaustion" Sat.Unsat
        (Portfolio.solve ~deterministic ~k:3 s))
    [ true; false ]

(* A one-worker portfolio is exactly the single engine. *)
let test_k1_passthrough () =
  let s, v = load ~simplify:true ~nvars:12 [ [ 1; 2 ]; [ -1; 3 ]; [ -3 ] ] in
  let r = Portfolio.solve ~deterministic:false ~k:1 s in
  Alcotest.check result_t "sat" Sat.Sat r;
  Alcotest.(check bool)
    "model ok" true
    (model_ok s v [ [ 1; 2 ]; [ -1; 3 ]; [ -3 ] ])

(* -- QF_BV through Smt.Solver over the simplify × AIG matrix ----------- *)

let qfbv_matrix_differential seed =
  let module Term = Smt.Term in
  let module Solver = Smt.Solver in
  let rng = Random.State.make [| seed |] in
  let width = 6 in
  let vars = [ "x"; "y"; "z" ] in
  let rec random_term depth =
    if depth = 0 then
      match Random.State.int rng 3 with
      | 0 | 2 ->
          Term.var
            (List.nth vars (Random.State.int rng (List.length vars)))
            width
      | _ -> Term.const (Sqed_bv.Bv.of_int ~width (Random.State.int rng 256))
    else
      let a = random_term (depth - 1) and b = random_term (depth - 1) in
      match Random.State.int rng 8 with
      | 0 -> Term.add a b
      | 1 -> Term.sub a b
      | 2 -> Term.and_ a b
      | 3 -> Term.or_ a b
      | 4 -> Term.xor a b
      | 5 -> Term.not_ a
      | 6 -> Term.mul a b
      | _ -> Term.ite (Term.eq a b) a b
  in
  let prop = Term.eq (random_term 3) (random_term 3) in
  let assum = Term.eq (Term.var "x" width) (Term.var "y" width) in
  let extra = Term.eq (Term.var "y" width) (Term.var "z" width) in
  let reference simplify aig =
    let s = Solver.create ~simplify ~aig ~portfolio:1 () in
    Solver.assert_ s prop;
    let r1 = Solver.check s in
    let r2 = Solver.check ~assumptions:[ assum ] s in
    Solver.assert_ s extra;
    (r1, r2, Solver.check s)
  in
  let want = reference true true in
  List.for_all
    (fun (simplify, aig) ->
      reference simplify aig = want
      &&
      let s =
        Solver.create ~simplify ~aig ~portfolio:3 ~portfolio_deterministic:true
          ()
      in
      Solver.set_portfolio_active s true;
      Solver.assert_ s prop;
      let r1 = Solver.check s in
      let ok_model =
        r1 <> Solver.Sat
        || Sqed_bv.Bv.to_int (Solver.model_value s prop) = 1
      in
      let r2 = Solver.check ~assumptions:[ assum ] s in
      Solver.assert_ s extra;
      let r3 = Solver.check s in
      ok_model && (r1, r2, r3) = want)
    [ (true, true); (true, false); (false, true); (false, false) ]

let props =
  let arb ~nvars ~max_len =
    QCheck.make ~print:cnf_print (gen_cnf ~nvars ~max_len)
  in
  let arb_pair ~nvars ~max_len =
    QCheck.make
      ~print:(fun (a, b) -> cnf_print a ^ " ++ " ^ cnf_print b)
      QCheck.Gen.(pair (gen_cnf ~nvars ~max_len) (gen_cnf ~nvars ~max_len))
  in
  let arb_assumed ~nvars ~max_len =
    QCheck.make
      ~print:(fun (c, a) ->
        cnf_print c ^ " assuming " ^ String.concat "," (List.map string_of_int a))
      QCheck.Gen.(
        pair (gen_cnf ~nvars ~max_len)
          (list_size (int_range 0 3)
             (map2
                (fun v s -> if s then v + 1 else -(v + 1))
                (int_bound (nvars - 1)) bool)))
  in
  [
    (* Deterministic mode carries the bulk of the fuzz: no domain spawns,
       so the counts can stay high. *)
    QCheck.Test.make ~name:"portfolio(det) = single (binary-heavy)" ~count:200
      (arb ~nvars:10 ~max_len:2)
      (differential ~deterministic:true ~k:3 ~simplify:true ~nvars:10);
    QCheck.Test.make ~name:"portfolio(det) = single (mixed, no simplify)"
      ~count:200
      (arb ~nvars:14 ~max_len:4)
      (differential ~deterministic:true ~k:4 ~simplify:false ~nvars:14);
    QCheck.Test.make ~name:"portfolio(det) = single (wide clauses)" ~count:100
      (arb ~nvars:20 ~max_len:7)
      (differential ~deterministic:true ~k:3 ~simplify:true ~nvars:20);
    QCheck.Test.make ~name:"portfolio(parallel) = single" ~count:40
      (arb ~nvars:14 ~max_len:4)
      (differential ~deterministic:false ~k:2 ~simplify:true ~nvars:14);
    QCheck.Test.make ~name:"portfolio assumptions" ~count:150
      (arb_assumed ~nvars:12 ~max_len:3)
      (differential_assumptions ~k:3 ~nvars:12);
    QCheck.Test.make ~name:"portfolio incremental adds" ~count:100
      (arb_pair ~nvars:12 ~max_len:3)
      (differential_incremental ~k:3 ~nvars:12);
    QCheck.Test.make ~name:"qf_bv portfolio over simplify x aig" ~count:25
      (QCheck.make ~print:string_of_int QCheck.Gen.nat)
      qfbv_matrix_differential;
  ]

let suite =
  [
    Alcotest.test_case "deterministic repeat runs bit-identical" `Quick
      test_deterministic_identical;
    Alcotest.test_case "cancellation leaves solver reusable" `Quick
      test_cancellation_reusable;
    Alcotest.test_case "budget exhaustion mid-portfolio" `Quick
      test_budget_exhaustion;
    Alcotest.test_case "k=1 is the single engine" `Quick test_k1_passthrough;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
